//===- ir/Parser.cpp - Text format parser for traces ----------------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Parser.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <vector>

using namespace ursa;

namespace {

/// Line-oriented parsing state.
class ParserImpl {
public:
  ParserImpl(const std::string &Src, Trace &Out) : Source(Src), T(Out) {}

  bool run(std::string &Err);

  const std::map<std::string, int> &registerNames() const { return VRegs; }

private:
  bool parseLine(const std::string &Line);
  bool fail(const std::string &Msg) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "line %u: ", LineNo);
    Error = Buf + Msg;
    return false;
  }

  /// Splits a line into tokens: identifiers/numbers, '=' and ','.
  static std::vector<std::string> tokenize(const std::string &Line);

  static bool isIdent(const std::string &Tok) {
    if (Tok.empty() || !(std::isalpha((unsigned char)Tok[0]) || Tok[0] == '_'))
      return false;
    for (char C : Tok)
      if (!(std::isalnum((unsigned char)C) || C == '_'))
        return false;
    return true;
  }

  static bool isNumber(const std::string &Tok) {
    if (Tok.empty())
      return false;
    size_t I = (Tok[0] == '-' || Tok[0] == '+') ? 1 : 0;
    if (I == Tok.size())
      return false;
    for (; I != Tok.size(); ++I)
      if (!(std::isdigit((unsigned char)Tok[I]) || Tok[I] == '.' ||
            Tok[I] == 'e' || Tok[I] == 'E' || Tok[I] == '-' || Tok[I] == '+'))
        return false;
    return true;
  }

  bool lookupVReg(const std::string &Tok, int &VReg) {
    auto It = VRegs.find(Tok);
    if (It == VRegs.end())
      return fail("use of undefined register '" + Tok + "'");
    VReg = It->second;
    return true;
  }

  const std::string &Source;
  Trace &T;
  std::map<std::string, int> VRegs;
  std::string Error;
  unsigned LineNo = 0;
};

} // namespace

std::vector<std::string> ParserImpl::tokenize(const std::string &Line) {
  std::vector<std::string> Toks;
  size_t I = 0, E = Line.size();
  while (I != E) {
    char C = Line[I];
    if (C == '#')
      break;
    if (std::isspace((unsigned char)C)) {
      ++I;
      continue;
    }
    if (C == '=' || C == ',') {
      Toks.push_back(std::string(1, C));
      ++I;
      continue;
    }
    size_t J = I;
    while (J != E && !std::isspace((unsigned char)Line[J]) &&
           Line[J] != '=' && Line[J] != ',' && Line[J] != '#')
      ++J;
    Toks.push_back(Line.substr(I, J - I));
    I = J;
  }
  return Toks;
}

bool ParserImpl::parseLine(const std::string &Line) {
  std::vector<std::string> Toks = tokenize(Line);
  if (Toks.empty())
    return true;

  // Optional "dest =" prefix.
  std::string DestName;
  size_t P = 0;
  if (Toks.size() >= 2 && Toks[1] == "=") {
    if (!isIdent(Toks[0]))
      return fail("bad destination '" + Toks[0] + "'");
    DestName = Toks[0];
    P = 2;
  }
  if (P >= Toks.size())
    return fail("missing opcode");

  Opcode Op;
  if (!opcodeByMnemonic(Toks[P], Op))
    return fail("unknown opcode '" + Toks[P] + "'");
  if (isSpillOp(Op))
    return fail("spill opcodes are compiler-internal");
  ++P;

  // Collect comma-separated argument tokens.
  std::vector<std::string> Args;
  bool ExpectArg = true;
  for (; P != Toks.size(); ++P) {
    if (Toks[P] == ",") {
      if (ExpectArg)
        return fail("unexpected ','");
      ExpectArg = true;
      continue;
    }
    if (!ExpectArg)
      return fail("missing ',' before '" + Toks[P] + "'");
    Args.push_back(Toks[P]);
    ExpectArg = false;
  }
  if (ExpectArg && !Args.empty())
    return fail("trailing ','");

  const OpcodeInfo &Info = opcodeInfo(Op);
  if (Info.HasDest && DestName.empty())
    return fail(std::string("opcode '") + Info.Mnemonic +
                "' requires a destination");
  if (!Info.HasDest && !DestName.empty())
    return fail(std::string("opcode '") + Info.Mnemonic +
                "' has no destination");

  Instruction I(Op);
  I.setDomain(Info.Dom);
  unsigned ArgIdx = 0;

  // Leading non-register payloads.
  switch (Info.Effect) {
  case OpEffect::MemLoad:
  case OpEffect::MemStore: {
    if (ArgIdx >= Args.size() || !isIdent(Args[ArgIdx]))
      return fail("expected variable name");
    I.setSymbol(T.internSymbol(Args[ArgIdx++]));
    break;
  }
  default:
    break;
  }
  if (Op == Opcode::LoadImm) {
    if (ArgIdx >= Args.size() || !isNumber(Args[ArgIdx]))
      return fail("expected integer immediate");
    I.setIntImm(std::strtoll(Args[ArgIdx++].c_str(), nullptr, 10));
  } else if (Op == Opcode::FLoadImm) {
    if (ArgIdx >= Args.size() || !isNumber(Args[ArgIdx]))
      return fail("expected float immediate");
    I.setFltImm(std::strtod(Args[ArgIdx++].c_str(), nullptr));
  }

  // Register sources.
  for (unsigned S = 0; S != Info.NumSrcs; ++S) {
    if (ArgIdx >= Args.size())
      return fail(std::string("opcode '") + Info.Mnemonic +
                  "' expects more operands");
    int VReg;
    if (!lookupVReg(Args[ArgIdx++], VReg))
      return false;
    I.setOperand(S, VReg);
  }
  if (ArgIdx != Args.size())
    return fail("too many operands");

  if (Info.HasDest) {
    if (VRegs.count(DestName))
      return fail("register '" + DestName + "' redefined (traces are SSA)");
    int VReg = T.newVReg(Info.Dom);
    VRegs.emplace(DestName, VReg);
    I.setDest(VReg);
  }
  T.append(I);
  return true;
}

bool ParserImpl::run(std::string &Err) {
  size_t Pos = 0;
  while (Pos <= Source.size()) {
    size_t Nl = Source.find('\n', Pos);
    std::string Line = Source.substr(
        Pos, Nl == std::string::npos ? std::string::npos : Nl - Pos);
    ++LineNo;
    if (!parseLine(Line)) {
      Err = Error;
      return false;
    }
    if (Nl == std::string::npos)
      break;
    Pos = Nl + 1;
  }
  return true;
}

bool ursa::parseTrace(const std::string &Source, Trace &Out,
                      std::string &Err,
                      std::map<std::string, int> *NameMap) {
  ParserImpl P(Source, Out);
  bool Ok = P.run(Err);
  if (Ok && NameMap)
    *NameMap = P.registerNames();
  return Ok;
}

StatusOr<Trace> ursa::parseTraceStatus(const std::string &Source,
                                       const std::string &Name,
                                       std::map<std::string, int> *NameMap) {
  Trace T(Name);
  std::string Err;
  if (!parseTrace(Source, T, Err, NameMap))
    return Status::error("parse", Name + ": " + Err);
  return T;
}

Trace ursa::parseTraceOrDie(const std::string &Source,
                            const std::string &Name) {
  StatusOr<Trace> R = parseTraceStatus(Source, Name);
  if (!R.isOk()) {
    std::fprintf(stderr, "parseTraceOrDie: %s\n", R.status().str().c_str());
    std::abort();
  }
  return std::move(*R);
}
