//===- ir/Instruction.h - Three-address instructions ------------*- C++ -*-===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The three-address instruction of the mini IR that stands in for the
/// paper's "C compiler front end" output. Virtual registers are single
/// assignment within a trace, so the only register dependences are flow
/// dependences — exactly the model the paper's dependence DAGs assume.
///
//===----------------------------------------------------------------------===//

#ifndef URSA_IR_INSTRUCTION_H
#define URSA_IR_INSTRUCTION_H

#include "machine/MachineModel.h"

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace ursa {

/// Every operation of the mini IR. See ir/Opcodes.def for the table.
enum class Opcode : uint8_t {
#define URSA_OPCODE(Name, Mnemonic, NumSrcs, HasDest, FU, Domain, Effect) Name,
#include "ir/Opcodes.def"
};

/// Number of opcodes (for dense per-opcode tables).
unsigned numOpcodes();

/// Side-effect category of an opcode.
enum class OpEffect : uint8_t {
  None,
  MemLoad,    ///< reads a named program variable
  MemStore,   ///< writes a named program variable
  SpillLoad,  ///< reads a compiler spill slot
  SpillStore, ///< writes a compiler spill slot
  Branch      ///< trace branch; ordered against stores and branches
};

/// Value domain of an operation / its defined register.
enum class Domain : uint8_t { Int, Float };

/// Static per-opcode properties.
struct OpcodeInfo {
  const char *Mnemonic;
  uint8_t NumSrcs;
  bool HasDest;
  FUKind FU;
  Domain Dom;
  OpEffect Effect;
};

/// Returns the static properties of \p Op.
const OpcodeInfo &opcodeInfo(Opcode Op);

/// Convenience accessors.
inline const char *mnemonic(Opcode Op) { return opcodeInfo(Op).Mnemonic; }
inline unsigned numSrcs(Opcode Op) { return opcodeInfo(Op).NumSrcs; }
inline bool definesValue(Opcode Op) { return opcodeInfo(Op).HasDest; }
inline OpEffect effect(Opcode Op) { return opcodeInfo(Op).Effect; }
inline bool isMemoryOp(Opcode Op) { return effect(Op) != OpEffect::None; }
inline bool isBranch(Opcode Op) { return effect(Op) == OpEffect::Branch; }
inline bool isSpillOp(Opcode Op) {
  OpEffect E = effect(Op);
  return E == OpEffect::SpillLoad || E == OpEffect::SpillStore;
}

/// Looks up an opcode by mnemonic; returns false if unknown.
bool opcodeByMnemonic(const std::string &Mnemonic, Opcode &Out);

/// One three-address instruction. Operand slots not used by the opcode
/// hold -1. The instruction does not know its position; traces index them.
class Instruction {
public:
  Instruction() = default;
  explicit Instruction(Opcode Opc) : Op(Opc) {}

  Opcode opcode() const { return Op; }
  const OpcodeInfo &info() const { return opcodeInfo(Op); }

  /// Defined virtual register, or -1 when the op has no destination.
  int dest() const { return Dest; }
  void setDest(int VReg) {
    assert(definesValue(Op) && "opcode defines no value");
    Dest = VReg;
  }

  unsigned numOperands() const { return numSrcs(Op); }
  int operand(unsigned I) const {
    assert(I < numOperands() && "operand index out of range");
    return Srcs[I];
  }
  void setOperand(unsigned I, int VReg) {
    assert(I < numOperands() && "operand index out of range");
    Srcs[I] = VReg;
  }

  /// Immediate payload (LoadImm / FLoadImm).
  int64_t intImm() const { return IntImm; }
  double fltImm() const { return FltImm; }
  void setIntImm(int64_t V) { IntImm = V; }
  void setFltImm(double V) { FltImm = V; }

  /// Named-variable symbol (Load/Store family), -1 otherwise.
  int symbol() const { return Sym; }
  void setSymbol(int S) { Sym = S; }

  /// Spill slot number (SpillLoad/SpillStore), -1 otherwise.
  int spillSlot() const { return Slot; }
  void setSpillSlot(int S) { Slot = S; }

  /// Domain of the defined value. Spill reloads inherit the domain of the
  /// value they restore, so it is stored per instruction.
  Domain domain() const { return Dom; }
  void setDomain(Domain D) { Dom = D; }

  /// Register class of the destination under a split register file.
  RegClassKind destRegClass() const {
    return Dom == Domain::Float ? RegClassKind::FPR : RegClassKind::GPR;
  }

  /// FU class required on a classed machine. Spill traffic always runs on
  /// the memory unit regardless of value domain.
  FUKind fuKind() const { return info().FU; }

  /// Renders e.g. "v3 = add v1, v2". Variables are spelled through
  /// \p SymNames when provided, else as "@<index>".
  std::string str(const std::vector<std::string> *SymNames = nullptr) const;

private:
  Opcode Op = Opcode::Add;
  Domain Dom = Domain::Int;
  int Dest = -1;
  int Srcs[3] = {-1, -1, -1};
  int Sym = -1;
  int Slot = -1;
  int64_t IntImm = 0;
  double FltImm = 0.0;
};

} // namespace ursa

#endif // URSA_IR_INSTRUCTION_H
