//===- ir/Trace.h - Straight-line instruction traces ------------*- C++ -*-===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Trace is the unit URSA operates on: a straight-line sequence of
/// three-address instructions, possibly containing trace branches (the
/// paper builds DAGs of traces à la trace scheduling, so branches appear
/// mid-sequence with fall-through semantics). The trace owns its virtual
/// register and variable-symbol namespaces.
///
//===----------------------------------------------------------------------===//

#ifndef URSA_IR_TRACE_H
#define URSA_IR_TRACE_H

#include "ir/Instruction.h"

#include <map>
#include <string>
#include <vector>

namespace ursa {

/// A straight-line trace of instructions with its symbol tables.
class Trace {
public:
  explicit Trace(std::string TraceName = "trace") : Name(std::move(TraceName)) {}

  const std::string &name() const { return Name; }

  unsigned size() const { return Instrs.size(); }
  bool empty() const { return Instrs.empty(); }

  Instruction &instr(unsigned I) {
    assert(I < Instrs.size() && "instruction index out of range");
    return Instrs[I];
  }
  const Instruction &instr(unsigned I) const {
    assert(I < Instrs.size() && "instruction index out of range");
    return Instrs[I];
  }

  const std::vector<Instruction> &instructions() const { return Instrs; }

  /// Appends \p I and returns its index.
  unsigned append(Instruction I) {
    Instrs.push_back(I);
    return Instrs.size() - 1;
  }

  /// Replaces the whole instruction sequence (used by trace-level spill
  /// rewriting); symbol/vreg tables are untouched.
  void replaceInstructions(std::vector<Instruction> New) {
    Instrs = std::move(New);
  }

  /// Allocates a fresh virtual register of the given \p Dom.
  int newVReg(Domain Dom) {
    VRegDomains.push_back(Dom);
    return int(VRegDomains.size()) - 1;
  }

  unsigned numVRegs() const { return VRegDomains.size(); }

  Domain vregDomain(int VReg) const {
    assert(VReg >= 0 && unsigned(VReg) < VRegDomains.size() && "bad vreg");
    return VRegDomains[VReg];
  }

  RegClassKind vregClass(int VReg) const {
    return vregDomain(VReg) == Domain::Float ? RegClassKind::FPR
                                             : RegClassKind::GPR;
  }

  /// Interns variable \p Name and returns its symbol index.
  int internSymbol(const std::string &Name);

  unsigned numSymbols() const { return SymNames.size(); }
  const std::string &symbolName(int Sym) const {
    assert(Sym >= 0 && unsigned(Sym) < SymNames.size() && "bad symbol");
    return SymNames[Sym];
  }
  const std::vector<std::string> &symbolNames() const { return SymNames; }

  /// Allocates a fresh compiler spill slot.
  int newSpillSlot() { return int(NumSpillSlots++); }
  unsigned numSpillSlots() const { return NumSpillSlots; }

  /// Renders the whole trace, one instruction per line.
  std::string str() const;

  //===--- Builder helpers -------------------------------------------------===//
  // These append a fully-formed instruction and return the defined vreg
  // (or the instruction index for ops without destinations). They keep
  // tests, examples and generators concise.

  /// v = ldi Imm
  int emitLoadImm(int64_t Imm);
  /// v = fldi Imm
  int emitFLoadImm(double Imm);
  /// v = load Var / fload Var
  int emitLoad(const std::string &Var, Domain Dom = Domain::Int);
  /// store Var, Src; returns instruction index.
  unsigned emitStore(const std::string &Var, int Src);
  /// Binary/unary/ternary arithmetic: v = op Srcs...
  int emitOp(Opcode Op, int A);
  int emitOp(Opcode Op, int A, int B);
  int emitOp(Opcode Op, int A, int B, int C);
  /// br Cond; returns instruction index.
  unsigned emitBranch(int Cond);

private:
  std::string Name;
  std::vector<Instruction> Instrs;
  std::vector<Domain> VRegDomains;
  std::vector<std::string> SymNames;
  std::map<std::string, int> SymIndex;
  unsigned NumSpillSlots = 0;
};

} // namespace ursa

#endif // URSA_IR_TRACE_H
