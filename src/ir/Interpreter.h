//===- ir/Interpreter.h - Reference executor for traces ---------*- C++ -*-===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The sequential reference interpreter. It defines the semantics every
/// compiled VLIW program must preserve: differential tests run a trace
/// here and in the VLIW simulator and require identical observable state
/// (final memory plus the branch-direction log).
///
/// Deliberately total semantics so random programs always execute:
/// integer division/remainder by zero yields 0, shifts mask their amount
/// to [0,63], float-to-int conversion of non-finite/out-of-range values
/// yields 0, and loads of uninitialized variables yield 0.
///
//===----------------------------------------------------------------------===//

#ifndef URSA_IR_INTERPRETER_H
#define URSA_IR_INTERPRETER_H

#include "ir/Trace.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ursa {

/// A runtime value: a tagged int64 / double union.
struct Value {
  bool IsFloat = false;
  int64_t I = 0;
  double F = 0.0;

  static Value ofInt(int64_t V) { return {false, V, 0.0}; }
  static Value ofFloat(double V) { return {true, 0, V}; }

  /// Bit-exact equality (schedules must preserve dataflow exactly).
  bool operator==(const Value &O) const;
};

/// Initial and final program memory, keyed by variable name.
using MemoryState = std::map<std::string, Value>;

/// Observable outcome of executing a trace.
struct ExecResult {
  MemoryState Memory;
  std::vector<uint8_t> BranchLog; ///< 1 = branch condition was non-zero

  bool operator==(const ExecResult &O) const {
    return Memory == O.Memory && BranchLog == O.BranchLog;
  }
};

/// Scalar evaluation of a single operation, shared by the interpreter and
/// the VLIW simulator so both ends of differential tests agree by
/// construction. \p Srcs holds numOperands() values; \p Imm-style payloads
/// come from \p I itself.
Value evalOperation(const Instruction &I, const Value *Srcs);

/// Executes \p T sequentially starting from \p Initial memory.
ExecResult interpret(const Trace &T, const MemoryState &Initial = {});

} // namespace ursa

#endif // URSA_IR_INTERPRETER_H
