//===- ir/Trace.cpp - Straight-line instruction traces --------------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Trace.h"

using namespace ursa;

int Trace::internSymbol(const std::string &SymName) {
  auto It = SymIndex.find(SymName);
  if (It != SymIndex.end())
    return It->second;
  int Idx = int(SymNames.size());
  SymNames.push_back(SymName);
  SymIndex.emplace(SymName, Idx);
  return Idx;
}

std::string Trace::str() const {
  std::string S;
  for (const Instruction &I : Instrs) {
    S += I.str(&SymNames);
    S += '\n';
  }
  return S;
}

int Trace::emitLoadImm(int64_t Imm) {
  Instruction I(Opcode::LoadImm);
  I.setDomain(Domain::Int);
  I.setDest(newVReg(Domain::Int));
  I.setIntImm(Imm);
  append(I);
  return I.dest();
}

int Trace::emitFLoadImm(double Imm) {
  Instruction I(Opcode::FLoadImm);
  I.setDomain(Domain::Float);
  I.setDest(newVReg(Domain::Float));
  I.setFltImm(Imm);
  append(I);
  return I.dest();
}

int Trace::emitLoad(const std::string &Var, Domain Dom) {
  Instruction I(Dom == Domain::Float ? Opcode::FLoad : Opcode::Load);
  I.setDomain(Dom);
  I.setDest(newVReg(Dom));
  I.setSymbol(internSymbol(Var));
  append(I);
  return I.dest();
}

unsigned Trace::emitStore(const std::string &Var, int Src) {
  bool IsFloat = vregDomain(Src) == Domain::Float;
  Instruction I(IsFloat ? Opcode::FStore : Opcode::Store);
  I.setDomain(IsFloat ? Domain::Float : Domain::Int);
  I.setSymbol(internSymbol(Var));
  I.setOperand(0, Src);
  return append(I);
}

int Trace::emitOp(Opcode Op, int A) {
  assert(numSrcs(Op) == 1 && definesValue(Op) && "wrong emit arity");
  Instruction I(Op);
  I.setDomain(opcodeInfo(Op).Dom);
  I.setDest(newVReg(I.domain()));
  I.setOperand(0, A);
  append(I);
  return I.dest();
}

int Trace::emitOp(Opcode Op, int A, int B) {
  assert(numSrcs(Op) == 2 && definesValue(Op) && "wrong emit arity");
  Instruction I(Op);
  I.setDomain(opcodeInfo(Op).Dom);
  I.setDest(newVReg(I.domain()));
  I.setOperand(0, A);
  I.setOperand(1, B);
  append(I);
  return I.dest();
}

int Trace::emitOp(Opcode Op, int A, int B, int C) {
  assert(numSrcs(Op) == 3 && definesValue(Op) && "wrong emit arity");
  Instruction I(Op);
  I.setDomain(opcodeInfo(Op).Dom);
  I.setDest(newVReg(I.domain()));
  I.setOperand(0, A);
  I.setOperand(1, B);
  I.setOperand(2, C);
  append(I);
  return I.dest();
}

unsigned Trace::emitBranch(int Cond) {
  Instruction I(Opcode::Br);
  I.setOperand(0, Cond);
  return append(I);
}
