//===- ir/Verifier.h - Structural checks on traces --------------*- C++ -*-===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural verifier for traces: single assignment, def-before-use,
/// domain agreement between operands and opcodes, and well-formed payloads
/// (symbols, spill slots). Transformations are verified with this after
/// every DAG mutation in debug builds.
///
//===----------------------------------------------------------------------===//

#ifndef URSA_IR_VERIFIER_H
#define URSA_IR_VERIFIER_H

#include "ir/Trace.h"

#include <string>
#include <vector>

namespace ursa {

/// Returns all structural problems in \p T; empty means well-formed.
/// \p RequireDefBeforeUse additionally enforces that every operand's
/// definition appears earlier in the trace (true for source programs;
/// transformed traces keep dominance in the DAG instead).
std::vector<std::string> verifyTrace(const Trace &T,
                                     bool RequireDefBeforeUse = true);

/// Asserts that \p T verifies; prints problems to stderr otherwise.
void assertValid(const Trace &T, bool RequireDefBeforeUse = true);

} // namespace ursa

#endif // URSA_IR_VERIFIER_H
