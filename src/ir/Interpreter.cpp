//===- ir/Interpreter.cpp - Reference executor for traces -----------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Interpreter.h"

#include <cmath>
#include <cstring>

using namespace ursa;

bool Value::operator==(const Value &O) const {
  if (IsFloat != O.IsFloat)
    return false;
  if (!IsFloat)
    return I == O.I;
  // Bit-exact comparison; NaNs with equal payloads compare equal.
  uint64_t A, B;
  std::memcpy(&A, &F, sizeof(A));
  std::memcpy(&B, &O.F, sizeof(B));
  return A == B;
}

/// Total float-to-int conversion (see header).
static int64_t toIntTotal(double F) {
  if (!std::isfinite(F) || F >= 9.2233720368547758e18 ||
      F <= -9.2233720368547758e18)
    return 0;
  return int64_t(F);
}

Value ursa::evalOperation(const Instruction &Ins, const Value *S) {
  auto I2 = [&](int64_t V) { return Value::ofInt(V); };
  auto F2 = [&](double V) { return Value::ofFloat(V); };
  switch (Ins.opcode()) {
  case Opcode::LoadImm:
    return I2(Ins.intImm());
  case Opcode::FLoadImm:
    return F2(Ins.fltImm());
  case Opcode::Add:
    return I2(int64_t(uint64_t(S[0].I) + uint64_t(S[1].I)));
  case Opcode::Sub:
    return I2(int64_t(uint64_t(S[0].I) - uint64_t(S[1].I)));
  case Opcode::Mul:
    return I2(int64_t(uint64_t(S[0].I) * uint64_t(S[1].I)));
  case Opcode::Div:
    if (S[1].I == 0 || (S[0].I == INT64_MIN && S[1].I == -1))
      return I2(0);
    return I2(S[0].I / S[1].I);
  case Opcode::Rem:
    if (S[1].I == 0 || (S[0].I == INT64_MIN && S[1].I == -1))
      return I2(0);
    return I2(S[0].I % S[1].I);
  case Opcode::And:
    return I2(S[0].I & S[1].I);
  case Opcode::Or:
    return I2(S[0].I | S[1].I);
  case Opcode::Xor:
    return I2(S[0].I ^ S[1].I);
  case Opcode::Shl:
    return I2(int64_t(uint64_t(S[0].I) << (uint64_t(S[1].I) & 63)));
  case Opcode::Shr:
    return I2(S[0].I >> (uint64_t(S[1].I) & 63));
  case Opcode::Min:
    return I2(S[0].I < S[1].I ? S[0].I : S[1].I);
  case Opcode::Max:
    return I2(S[0].I > S[1].I ? S[0].I : S[1].I);
  case Opcode::Neg:
    return I2(int64_t(0 - uint64_t(S[0].I)));
  case Opcode::Not:
    return I2(~S[0].I);
  case Opcode::Mov:
    return I2(S[0].I);
  case Opcode::CmpEq:
    return I2(S[0].I == S[1].I ? 1 : 0);
  case Opcode::CmpLt:
    return I2(S[0].I < S[1].I ? 1 : 0);
  case Opcode::Sel:
    return I2(S[0].I != 0 ? S[1].I : S[2].I);
  case Opcode::FAdd:
    return F2(S[0].F + S[1].F);
  case Opcode::FSub:
    return F2(S[0].F - S[1].F);
  case Opcode::FMul:
    return F2(S[0].F * S[1].F);
  case Opcode::FDiv:
    return F2(S[0].F / S[1].F);
  case Opcode::FNeg:
    return F2(-S[0].F);
  case Opcode::FMov:
    return F2(S[0].F);
  case Opcode::CvtIF:
    return F2(double(S[0].I));
  case Opcode::CvtFI:
    return I2(toIntTotal(S[0].F));
  case Opcode::Load:
  case Opcode::FLoad:
  case Opcode::Store:
  case Opcode::FStore:
  case Opcode::SpillLoad:
  case Opcode::SpillStore:
  case Opcode::Br:
    assert(false && "memory/branch ops are handled by the executor");
    return I2(0);
  }
  assert(false && "covered switch");
  return I2(0);
}

ExecResult ursa::interpret(const Trace &T, const MemoryState &Initial) {
  ExecResult R;
  std::vector<Value> Regs(T.numVRegs());
  std::vector<Value> Slots(T.numSpillSlots());
  std::map<int, Value> Mem;
  for (const auto &KV : Initial) {
    // Only variables the trace mentions are addressable; others are kept
    // so the final state echoes the full input environment.
    R.Memory.emplace(KV.first, KV.second);
  }
  auto MemBySym = [&](int Sym) -> Value & {
    return R.Memory[T.symbolName(Sym)];
  };

  for (unsigned Idx = 0, E = T.size(); Idx != E; ++Idx) {
    const Instruction &Ins = T.instr(Idx);
    switch (effect(Ins.opcode())) {
    case OpEffect::MemLoad: {
      Value V = MemBySym(Ins.symbol());
      if (Ins.domain() == Domain::Float && !V.IsFloat)
        V = Value::ofFloat(V.F); // uninitialized float var reads as 0.0
      Regs[Ins.dest()] = V;
      break;
    }
    case OpEffect::MemStore:
      MemBySym(Ins.symbol()) = Regs[Ins.operand(0)];
      break;
    case OpEffect::SpillStore:
      Slots[Ins.spillSlot()] = Regs[Ins.operand(0)];
      break;
    case OpEffect::SpillLoad:
      Regs[Ins.dest()] = Slots[Ins.spillSlot()];
      break;
    case OpEffect::Branch:
      R.BranchLog.push_back(Regs[Ins.operand(0)].I != 0 ? 1 : 0);
      break;
    case OpEffect::None: {
      Value Srcs[3];
      for (unsigned S = 0; S != Ins.numOperands(); ++S)
        Srcs[S] = Regs[Ins.operand(S)];
      Regs[Ins.dest()] = evalOperation(Ins, Srcs);
      break;
    }
    }
  }
  return R;
}
