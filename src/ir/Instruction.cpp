//===- ir/Instruction.cpp - Three-address instructions --------------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Instruction.h"

#include <cstdio>

using namespace ursa;

static const OpcodeInfo OpcodeTable[] = {
#define URSA_OPCODE(Name, Mnemonic, NumSrcs, HasDest, FU, Dom, Effect)        \
  {Mnemonic, NumSrcs, HasDest != 0, FUKind::FU, Domain::Dom, OpEffect::Effect},
#include "ir/Opcodes.def"
};

unsigned ursa::numOpcodes() {
  return sizeof(OpcodeTable) / sizeof(OpcodeTable[0]);
}

const OpcodeInfo &ursa::opcodeInfo(Opcode Op) {
  unsigned Idx = unsigned(Op);
  assert(Idx < numOpcodes() && "bad opcode");
  return OpcodeTable[Idx];
}

bool ursa::opcodeByMnemonic(const std::string &Mnemonic, Opcode &Out) {
  for (unsigned I = 0, E = numOpcodes(); I != E; ++I) {
    if (Mnemonic == OpcodeTable[I].Mnemonic) {
      Out = Opcode(I);
      return true;
    }
  }
  return false;
}

std::string
Instruction::str(const std::vector<std::string> *SymNames) const {
  std::string S;
  char Buf[64];
  auto VReg = [&](int R) {
    std::snprintf(Buf, sizeof(Buf), "v%d", R);
    return std::string(Buf);
  };
  auto Symbol = [&](int SymId) {
    if (SymNames && SymId >= 0 && unsigned(SymId) < SymNames->size())
      return (*SymNames)[SymId];
    std::snprintf(Buf, sizeof(Buf), "@%d", SymId);
    return std::string(Buf);
  };

  if (Dest >= 0)
    S += VReg(Dest) + " = ";
  S += mnemonic(Op);

  bool First = true;
  auto Sep = [&]() -> std::string {
    if (First) {
      First = false;
      return " ";
    }
    return ", ";
  };

  switch (effect(Op)) {
  case OpEffect::MemLoad:
    S += Sep() + Symbol(Sym);
    break;
  case OpEffect::MemStore:
    S += Sep() + Symbol(Sym);
    break;
  case OpEffect::SpillLoad:
  case OpEffect::SpillStore: {
    std::snprintf(Buf, sizeof(Buf), "slot%d", Slot);
    S += Sep() + Buf;
    break;
  }
  case OpEffect::None:
  case OpEffect::Branch:
    break;
  }

  if (Op == Opcode::LoadImm) {
    std::snprintf(Buf, sizeof(Buf), "%lld", (long long)IntImm);
    S += Sep() + Buf;
  } else if (Op == Opcode::FLoadImm) {
    std::snprintf(Buf, sizeof(Buf), "%g", FltImm);
    S += Sep() + Buf;
  }

  for (unsigned I = 0, E = numOperands(); I != E; ++I)
    S += Sep() + VReg(Srcs[I]);
  return S;
}
