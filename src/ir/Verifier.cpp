//===- ir/Verifier.cpp - Structural checks on traces ----------------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Verifier.h"

#include <cstdio>
#include <cstdlib>

using namespace ursa;

/// Expected operand domain for operand \p Idx of \p Op, given the trace.
static Domain operandDomain(Opcode Op, unsigned Idx) {
  switch (Op) {
  case Opcode::FStore:
  case Opcode::FNeg:
  case Opcode::FMov:
  case Opcode::CvtFI:
    return Domain::Float;
  case Opcode::FAdd:
  case Opcode::FSub:
  case Opcode::FMul:
  case Opcode::FDiv:
    return Domain::Float;
  case Opcode::SpillStore:
    // Spill stores carry the spilled value's domain on the instruction.
    return Domain::Int; // caller overrides; see below
  default:
    (void)Idx;
    return Domain::Int;
  }
}

std::vector<std::string> ursa::verifyTrace(const Trace &T,
                                           bool RequireDefBeforeUse) {
  std::vector<std::string> Problems;
  std::vector<int> DefSite(T.numVRegs(), -1);
  auto Note = [&](unsigned Idx, const std::string &Msg) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "instr %u: ", Idx);
    Problems.push_back(Buf + Msg);
  };

  for (unsigned Idx = 0, E = T.size(); Idx != E; ++Idx) {
    const Instruction &I = T.instr(Idx);
    const OpcodeInfo &Info = I.info();

    // Destination checks.
    if (Info.HasDest) {
      int D = I.dest();
      if (D < 0 || unsigned(D) >= T.numVRegs()) {
        Note(Idx, "destination register out of range");
        continue;
      }
      if (DefSite[D] >= 0)
        Note(Idx, "register defined twice (traces are SSA)");
      DefSite[D] = int(Idx);
      Domain Expect =
          isSpillOp(I.opcode()) ? I.domain() : Info.Dom;
      if (T.vregDomain(D) != Expect)
        Note(Idx, "destination domain disagrees with opcode");
    } else if (I.dest() >= 0) {
      Note(Idx, "opcode without destination has one set");
    }

    // Operand checks.
    for (unsigned S = 0; S != Info.NumSrcs; ++S) {
      int V = I.operand(S);
      if (V < 0 || unsigned(V) >= T.numVRegs()) {
        Note(Idx, "operand register out of range");
        continue;
      }
      if (RequireDefBeforeUse && DefSite[V] < 0)
        Note(Idx, "operand used before definition");
      Domain Expect = I.opcode() == Opcode::SpillStore
                          ? I.domain()
                          : operandDomain(I.opcode(), S);
      if (T.vregDomain(V) != Expect)
        Note(Idx, "operand domain disagrees with opcode");
    }

    // Payload checks.
    OpEffect Eff = Info.Effect;
    if (Eff == OpEffect::MemLoad || Eff == OpEffect::MemStore) {
      if (I.symbol() < 0 || unsigned(I.symbol()) >= T.numSymbols())
        Note(Idx, "memory op with bad symbol");
    }
    if (Eff == OpEffect::SpillLoad || Eff == OpEffect::SpillStore) {
      if (I.spillSlot() < 0 || unsigned(I.spillSlot()) >= T.numSpillSlots())
        Note(Idx, "spill op with bad slot");
    }
  }
  return Problems;
}

void ursa::assertValid(const Trace &T, bool RequireDefBeforeUse) {
  std::vector<std::string> Problems = verifyTrace(T, RequireDefBeforeUse);
  if (Problems.empty())
    return;
  std::fprintf(stderr, "trace '%s' failed verification:\n", T.name().c_str());
  for (const std::string &P : Problems)
    std::fprintf(stderr, "  %s\n", P.c_str());
  std::abort();
}
