//===- ir/Parser.h - Text format parser for traces --------------*- C++ -*-===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parser for the mini IR's assembly text, one instruction per line:
///
/// \code
///   # dot product step
///   x  = load a
///   y  = load b
///   p  = mul x, y
///   s0 = load sum
///   s1 = add s0, p
///   store sum, s1
///   br s1
/// \endcode
///
/// Virtual registers are named identifiers defined once; memory variables
/// live in a separate namespace (first operand of load/store). Spill
/// opcodes are compiler-internal and rejected by the parser.
///
//===----------------------------------------------------------------------===//

#ifndef URSA_IR_PARSER_H
#define URSA_IR_PARSER_H

#include "ir/Trace.h"
#include "support/Status.h"

#include <map>
#include <string>

namespace ursa {

/// Parses \p Source into \p Out. Returns true on success; on failure
/// returns false and sets \p Err to a "line N: ..." diagnostic.
/// \p NameMap, when given, receives the register-name -> vreg mapping
/// (the CFG front end uses it to resolve branch condition names).
bool parseTrace(const std::string &Source, Trace &Out, std::string &Err,
                std::map<std::string, int> *NameMap = nullptr);

/// Fallible entry point: the trace, or a Status whose diagnostic carries
/// the "line N: ..." parse error. Never aborts.
StatusOr<Trace> parseTraceStatus(const std::string &Source,
                                 const std::string &Name = "trace",
                                 std::map<std::string, int> *NameMap = nullptr);

/// Convenience wrapper over parseTraceStatus that prints the diagnostic
/// and aborts on failure; for tests and embedded kernels whose sources
/// are known-good.
Trace parseTraceOrDie(const std::string &Source,
                      const std::string &Name = "trace");

} // namespace ursa

#endif // URSA_IR_PARSER_H
