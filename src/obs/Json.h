//===- obs/Json.h - Minimal JSON writer and parser --------------*- C++ -*-===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The JSON substrate behind every machine-readable artifact the system
/// emits: the span tracer's Chrome trace files, `ursa_cc --report-json`,
/// and the bench `BENCH_*.json` artifacts. Two halves:
///
///  * JsonWriter — a streaming writer with automatic comma/nesting
///    management and full string escaping; misuse (value without a key
///    inside an object, unbalanced end()) asserts.
///
///  * JsonValue / parseJson — a small recursive-descent parser producing
///    a generic tree, used by the tests to prove emitted artifacts are
///    well-formed and schema-stable, and available to tools that want to
///    read the reports back.
///
/// Deliberately minimal (no external dependency): objects preserve
/// insertion order, numbers are doubles, no \u surrogate pairs beyond
/// pass-through escaping.
///
//===----------------------------------------------------------------------===//

#ifndef URSA_OBS_JSON_H
#define URSA_OBS_JSON_H

#include "support/Status.h"

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace ursa::obs {

/// Streaming JSON writer. Usage:
/// \code
///   JsonWriter W;
///   W.beginObject().key("rounds").value(uint64_t(3)).endObject();
///   std::string S = W.str();
/// \endcode
class JsonWriter {
public:
  JsonWriter &beginObject();
  JsonWriter &endObject();
  JsonWriter &beginArray();
  JsonWriter &endArray();

  /// Emits the key of the next object member.
  JsonWriter &key(std::string_view K);

  JsonWriter &value(std::string_view V);
  JsonWriter &value(const char *V) { return value(std::string_view(V)); }
  JsonWriter &value(const std::string &V) {
    return value(std::string_view(V));
  }
  JsonWriter &value(uint64_t V);
  JsonWriter &value(int64_t V);
  JsonWriter &value(unsigned V) { return value(uint64_t(V)); }
  JsonWriter &value(int V) { return value(int64_t(V)); }
  JsonWriter &value(double V);
  JsonWriter &value(bool V);
  JsonWriter &null();

  /// Embeds \p Json verbatim in value position. The caller vouches that it
  /// is a complete, well-formed JSON value (e.g. another writer's str()).
  JsonWriter &raw(std::string_view Json);

  /// key+value in one call.
  template <typename T> JsonWriter &kv(std::string_view K, T V) {
    key(K);
    return value(V);
  }

  /// The document so far; call once nesting is balanced.
  std::string str() const { return OS.str(); }

  static std::string escape(std::string_view S);

private:
  void preValue();

  std::ostringstream OS;
  /// 'O' in object awaiting key, 'V' in object awaiting value (key just
  /// written), 'A' in array.
  std::vector<char> Stack;
  std::vector<bool> NeedComma;
};

/// A parsed JSON tree.
struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind K = Kind::Null;
  bool B = false;
  double Num = 0;
  std::string Str;
  std::vector<JsonValue> Arr;
  std::vector<std::pair<std::string, JsonValue>> Obj;

  bool isObject() const { return K == Kind::Object; }
  bool isArray() const { return K == Kind::Array; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue *find(std::string_view Key) const;
};

/// Parses \p S into \p Out. On failure returns false and sets \p Err to a
/// message with the byte offset. Trailing whitespace is allowed; trailing
/// garbage is an error. Meant for trusted input (our own artifacts read
/// back): no payload cap, but nesting is still bounded (256 levels) so a
/// corrupt file cannot overflow the parser's stack.
bool parseJson(std::string_view S, JsonValue &Out, std::string &Err);

/// Resource limits for parsing untrusted input (service requests arriving
/// over a socket). Exceeding either limit is a clean parse error, never
/// an abort or unbounded recursion.
struct JsonParseLimits {
  /// Maximum object/array nesting depth. The parser is recursive-descent,
  /// so this bounds its stack use.
  size_t MaxDepth = 64;
  /// Maximum document size in bytes; 0 = unlimited.
  size_t MaxBytes = 8u << 20;
};

/// Parses \p S into \p Out under \p Limits, returning a Status (phase
/// "json") instead of a bool+string. This is the entry point for
/// untrusted input: malformed documents, over-deep nesting, and oversized
/// payloads all come back as ordinary errors.
Status parseJsonLimited(std::string_view S, JsonValue &Out,
                        const JsonParseLimits &Limits = {});

} // namespace ursa::obs

#endif // URSA_OBS_JSON_H
