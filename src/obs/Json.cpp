//===- obs/Json.cpp - Minimal JSON writer and parser ----------------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/Json.h"

#include <cassert>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace ursa;
using namespace ursa::obs;

//===----------------------------------------------------------------------===//
// JsonWriter
//===----------------------------------------------------------------------===//

std::string JsonWriter::escape(std::string_view S) {
  std::string Out;
  Out.reserve(S.size() + 2);
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

void JsonWriter::preValue() {
  if (Stack.empty())
    return;
  if (Stack.back() == 'V') {
    Stack.back() = 'O'; // the pending key gets this value
    return;
  }
  assert(Stack.back() == 'A' && "value inside an object requires key()");
  if (NeedComma.back())
    OS << ',';
  NeedComma.back() = true;
}

JsonWriter &JsonWriter::beginObject() {
  preValue();
  OS << '{';
  Stack.push_back('O');
  NeedComma.push_back(false);
  return *this;
}

JsonWriter &JsonWriter::endObject() {
  assert(!Stack.empty() && Stack.back() == 'O' && "unbalanced endObject");
  OS << '}';
  Stack.pop_back();
  NeedComma.pop_back();
  return *this;
}

JsonWriter &JsonWriter::beginArray() {
  preValue();
  OS << '[';
  Stack.push_back('A');
  NeedComma.push_back(false);
  return *this;
}

JsonWriter &JsonWriter::endArray() {
  assert(!Stack.empty() && Stack.back() == 'A' && "unbalanced endArray");
  OS << ']';
  Stack.pop_back();
  NeedComma.pop_back();
  return *this;
}

JsonWriter &JsonWriter::key(std::string_view K) {
  assert(!Stack.empty() && Stack.back() == 'O' && "key() outside object");
  if (NeedComma.back())
    OS << ',';
  NeedComma.back() = true;
  OS << '"' << escape(K) << "\":";
  Stack.back() = 'V';
  return *this;
}

JsonWriter &JsonWriter::value(std::string_view V) {
  preValue();
  OS << '"' << escape(V) << '"';
  return *this;
}

JsonWriter &JsonWriter::value(uint64_t V) {
  preValue();
  OS << V;
  return *this;
}

JsonWriter &JsonWriter::value(int64_t V) {
  preValue();
  OS << V;
  return *this;
}

JsonWriter &JsonWriter::value(double V) {
  preValue();
  if (!std::isfinite(V)) { // JSON has no inf/nan
    OS << "null";
    return *this;
  }
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%.17g", V);
  OS << Buf;
  return *this;
}

JsonWriter &JsonWriter::value(bool V) {
  preValue();
  OS << (V ? "true" : "false");
  return *this;
}

JsonWriter &JsonWriter::null() {
  preValue();
  OS << "null";
  return *this;
}

JsonWriter &JsonWriter::raw(std::string_view Json) {
  preValue();
  OS << Json;
  return *this;
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

const JsonValue *JsonValue::find(std::string_view Key) const {
  if (K != Kind::Object)
    return nullptr;
  for (const auto &[Name, V] : Obj)
    if (Name == Key)
      return &V;
  return nullptr;
}

namespace {

class Parser {
public:
  Parser(std::string_view Text, std::string &ErrOut, size_t MaxDepthIn)
      : S(Text), Err(ErrOut), MaxDepth(MaxDepthIn) {}

  bool parse(JsonValue &Out) {
    skipWs();
    if (!parseValue(Out))
      return false;
    skipWs();
    if (Pos != S.size())
      return fail("trailing characters after document");
    return true;
  }

private:
  bool fail(const std::string &Msg) {
    Err = Msg + " at offset " + std::to_string(Pos);
    return false;
  }

  void skipWs() {
    while (Pos < S.size() && (S[Pos] == ' ' || S[Pos] == '\t' ||
                              S[Pos] == '\n' || S[Pos] == '\r'))
      ++Pos;
  }

  bool consume(char C) {
    if (Pos < S.size() && S[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool parseValue(JsonValue &Out) {
    if (Pos >= S.size())
      return fail("unexpected end of input");
    char C = S[Pos];
    if (C == '{' || C == '[') {
      // The parser is recursive-descent: depth is literal stack depth, so
      // untrusted input must not choose it.
      if (Depth >= MaxDepth)
        return fail("nesting exceeds the depth limit (" +
                    std::to_string(MaxDepth) + ")");
      ++Depth;
      bool Ok = C == '{' ? parseObject(Out) : parseArray(Out);
      --Depth;
      return Ok;
    }
    if (C == '"') {
      Out.K = JsonValue::Kind::String;
      return parseString(Out.Str);
    }
    if (C == 't' || C == 'f')
      return parseKeyword(Out);
    if (C == 'n') {
      if (S.substr(Pos, 4) != "null")
        return fail("bad keyword");
      Pos += 4;
      Out.K = JsonValue::Kind::Null;
      return true;
    }
    return parseNumber(Out);
  }

  bool parseKeyword(JsonValue &Out) {
    Out.K = JsonValue::Kind::Bool;
    if (S.substr(Pos, 4) == "true") {
      Pos += 4;
      Out.B = true;
      return true;
    }
    if (S.substr(Pos, 5) == "false") {
      Pos += 5;
      Out.B = false;
      return true;
    }
    return fail("bad keyword");
  }

  bool parseNumber(JsonValue &Out) {
    size_t Start = Pos;
    if (Pos < S.size() && (S[Pos] == '-' || S[Pos] == '+'))
      ++Pos;
    bool Digits = false;
    while (Pos < S.size() &&
           (std::isdigit(static_cast<unsigned char>(S[Pos])) ||
            S[Pos] == '.' || S[Pos] == 'e' || S[Pos] == 'E' ||
            S[Pos] == '-' || S[Pos] == '+')) {
      Digits |= std::isdigit(static_cast<unsigned char>(S[Pos])) != 0;
      ++Pos;
    }
    if (!Digits) {
      Pos = Start;
      return fail("expected a value");
    }
    Out.K = JsonValue::Kind::Number;
    Out.Num = std::strtod(std::string(S.substr(Start, Pos - Start)).c_str(),
                          nullptr);
    return true;
  }

  bool parseString(std::string &Out) {
    if (!consume('"'))
      return fail("expected '\"'");
    Out.clear();
    while (Pos < S.size()) {
      char C = S[Pos++];
      if (C == '"')
        return true;
      if (C == '\\') {
        if (Pos >= S.size())
          return fail("unterminated escape");
        char E = S[Pos++];
        switch (E) {
        case '"':
          Out += '"';
          break;
        case '\\':
          Out += '\\';
          break;
        case '/':
          Out += '/';
          break;
        case 'n':
          Out += '\n';
          break;
        case 'r':
          Out += '\r';
          break;
        case 't':
          Out += '\t';
          break;
        case 'b':
          Out += '\b';
          break;
        case 'f':
          Out += '\f';
          break;
        case 'u': {
          if (Pos + 4 > S.size())
            return fail("bad \\u escape");
          unsigned Code =
              unsigned(std::strtoul(std::string(S.substr(Pos, 4)).c_str(),
                                    nullptr, 16));
          Pos += 4;
          // ASCII-only decoding; anything wider round-trips as '?'.
          Out += Code < 0x80 ? char(Code) : '?';
          break;
        }
        default:
          return fail("bad escape");
        }
      } else {
        Out += C;
      }
    }
    return fail("unterminated string");
  }

  bool parseObject(JsonValue &Out) {
    Out.K = JsonValue::Kind::Object;
    Out.Obj.clear(); // a reused JsonValue must not accumulate keys
    consume('{');
    skipWs();
    if (consume('}'))
      return true;
    while (true) {
      skipWs();
      std::string Key;
      if (!parseString(Key))
        return false;
      skipWs();
      if (!consume(':'))
        return fail("expected ':'");
      skipWs();
      JsonValue V;
      if (!parseValue(V))
        return false;
      Out.Obj.emplace_back(std::move(Key), std::move(V));
      skipWs();
      if (consume(','))
        continue;
      if (consume('}'))
        return true;
      return fail("expected ',' or '}'");
    }
  }

  bool parseArray(JsonValue &Out) {
    Out.K = JsonValue::Kind::Array;
    Out.Arr.clear(); // a reused JsonValue must not accumulate elements
    consume('[');
    skipWs();
    if (consume(']'))
      return true;
    while (true) {
      skipWs();
      JsonValue V;
      if (!parseValue(V))
        return false;
      Out.Arr.push_back(std::move(V));
      skipWs();
      if (consume(','))
        continue;
      if (consume(']'))
        return true;
      return fail("expected ',' or ']'");
    }
  }

  std::string_view S;
  std::string &Err;
  size_t MaxDepth;
  size_t Pos = 0;
  size_t Depth = 0;
};

} // namespace

bool obs::parseJson(std::string_view S, JsonValue &Out, std::string &Err) {
  return Parser(S, Err, /*MaxDepth=*/256).parse(Out);
}

Status obs::parseJsonLimited(std::string_view S, JsonValue &Out,
                             const JsonParseLimits &Limits) {
  if (Limits.MaxBytes && S.size() > Limits.MaxBytes)
    return Status::error("json",
                         "document of " + std::to_string(S.size()) +
                             " bytes exceeds the payload limit (" +
                             std::to_string(Limits.MaxBytes) + ")");
  std::string Err;
  if (!Parser(S, Err, Limits.MaxDepth).parse(Out))
    return Status::error("json", Err);
  return Status::ok();
}
