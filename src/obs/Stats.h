//===- obs/Stats.h - Process-wide named statistics registry -----*- C++ -*-===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A registry of named counters and gauges, LLVM-STATISTIC style: each
/// instrumentation site defines one static `Statistic` with a dotted name
/// ("ursa.driver.rounds") and bumps it through the URSA_STAT_* macros.
/// Increments are relaxed atomic adds behind a single global enable flag,
/// so a disabled site costs one predictable branch — cheap enough to leave
/// compiled into release builds (bench_obs_overhead keeps this honest).
///
/// Naming convention (see docs/OBSERVABILITY.md): `<layer>.<module>.<what>`
/// all lower-case, dots as separators, underscores within a component —
/// e.g. `order.matching.augmenting_paths`, `ursa.transforms.kept.spill`.
///
/// The registry is process-wide: snapshotStats() returns every registered
/// statistic (sorted by name) for reports and bench artifacts, and
/// resetStats() zeroes them between measurements. Stats default to
/// enabled; set URSA_STATS=0 (or call setStatsEnabled(false)) to turn the
/// counting off entirely.
///
//===----------------------------------------------------------------------===//

#ifndef URSA_OBS_STATS_H
#define URSA_OBS_STATS_H

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace ursa::obs {

/// Whether statistic sites count at all (default on; URSA_STATS=0 env or
/// setStatsEnabled(false) turns them off).
bool statsEnabled();
void setStatsEnabled(bool Enabled);

/// One named counter/gauge. Define at file scope via URSA_STAT; the
/// constructor registers it with the process-wide registry.
class Statistic {
public:
  Statistic(const char *Name, const char *Desc);

  /// Counter: add \p N (relaxed; sites may race, totals stay exact).
  void add(uint64_t N = 1) {
    if (statsEnabled())
      Value.fetch_add(N, std::memory_order_relaxed);
  }
  /// Gauge: overwrite with the latest observation.
  void set(uint64_t V) {
    if (statsEnabled())
      Value.store(V, std::memory_order_relaxed);
  }
  /// High-water gauge: keep the maximum observation.
  void noteMax(uint64_t V) {
    if (!statsEnabled())
      return;
    uint64_t Cur = Value.load(std::memory_order_relaxed);
    while (V > Cur &&
           !Value.compare_exchange_weak(Cur, V, std::memory_order_relaxed))
      ;
  }

  uint64_t value() const { return Value.load(std::memory_order_relaxed); }
  void reset() { Value.store(0, std::memory_order_relaxed); }

  const char *name() const { return Name; }
  const char *desc() const { return Desc; }

private:
  const char *Name;
  const char *Desc;
  std::atomic<uint64_t> Value{0};
};

/// One row of a snapshot.
struct StatValue {
  std::string Name;
  std::string Desc;
  uint64_t Value = 0;
};

/// Every registered statistic, sorted by name. With \p NonZeroOnly only
/// statistics that have counted something are returned (the form reports
/// embed, so artifacts stay readable).
std::vector<StatValue> snapshotStats(bool NonZeroOnly = false);

/// Zeroes every registered statistic (between bench measurements/tests).
void resetStats();

} // namespace ursa::obs

/// Defines a file-local statistic. Use at namespace scope:
///   URSA_STAT(StatRounds, "ursa.driver.rounds", "transformation rounds");
///   ... StatRounds.add();
#define URSA_STAT(Var, Name, Desc)                                            \
  static ::ursa::obs::Statistic Var(Name, Desc)

#endif // URSA_OBS_STATS_H
