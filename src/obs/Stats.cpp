//===- obs/Stats.cpp - Process-wide named statistics registry -------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/Stats.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <mutex>

using namespace ursa;
using namespace ursa::obs;

namespace {

/// Registration order follows static-init order, so snapshots sort by
/// name to stay deterministic across link orders.
struct Registry {
  std::mutex Mu;
  std::vector<Statistic *> Stats;
};

Registry &registry() {
  static Registry R; // function-local: safe across static-init order
  return R;
}

std::atomic<bool> &enabledFlag() {
  static std::atomic<bool> Enabled = [] {
    const char *E = std::getenv("URSA_STATS");
    return !(E && (!std::strcmp(E, "0") || !std::strcmp(E, "off") ||
                   !std::strcmp(E, "false")));
  }();
  return Enabled;
}

} // namespace

bool obs::statsEnabled() {
  return enabledFlag().load(std::memory_order_relaxed);
}

void obs::setStatsEnabled(bool Enabled) {
  enabledFlag().store(Enabled, std::memory_order_relaxed);
}

Statistic::Statistic(const char *StatName, const char *StatDesc)
    : Name(StatName), Desc(StatDesc) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mu);
  R.Stats.push_back(this);
}

std::vector<StatValue> obs::snapshotStats(bool NonZeroOnly) {
  Registry &R = registry();
  std::vector<StatValue> Out;
  {
    std::lock_guard<std::mutex> Lock(R.Mu);
    for (const Statistic *S : R.Stats) {
      uint64_t V = S->value();
      if (NonZeroOnly && V == 0)
        continue;
      Out.push_back({S->name(), S->desc(), V});
    }
  }
  std::sort(Out.begin(), Out.end(),
            [](const StatValue &A, const StatValue &B) {
              return A.Name < B.Name;
            });
  return Out;
}

void obs::resetStats() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mu);
  for (Statistic *S : R.Stats)
    S->reset();
}
