//===- obs/Histogram.h - Log-bucketed latency histograms --------*- C++ -*-===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lock-cheap latency histograms, registered beside `Statistic` in the
/// process-wide registry: each instrumentation site defines one static
/// `Histogram` with a dotted name ("ursa.service.e2e_us") and records
/// observations through record(). Recording is a handful of relaxed
/// atomic adds behind the same global enable flag the counters use, so a
/// disabled site costs one predictable branch and an enabled one never
/// takes a lock (bench_obs_overhead keeps this honest).
///
/// Buckets are logarithmic with four linear sub-buckets per octave:
/// values 0..15 get exact buckets, larger values land in a bucket whose
/// width is 1/4 of its octave, so any quantile read from the buckets is
/// an upper bound at most ~12.5% above the true value. Values beyond
/// 2^38-1 (about 76 hours in microseconds) fall into one overflow
/// bucket. Snapshots are plain vectors of counts and merge by addition,
/// so per-shard histograms can be folded into fleet-wide ones.
///
/// Units are the site's business; the convention (docs/OBSERVABILITY.md)
/// is microseconds with a `_us` name suffix.
///
//===----------------------------------------------------------------------===//

#ifndef URSA_OBS_HISTOGRAM_H
#define URSA_OBS_HISTOGRAM_H

#include "obs/Stats.h"

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace ursa::obs {

/// One registered histogram's data, decoupled from the live atomics.
struct HistogramSnapshot {
  std::string Name;
  std::string Desc;
  uint64_t Count = 0;
  uint64_t Sum = 0;
  uint64_t Max = 0;
  std::vector<uint64_t> Buckets; ///< dense, Histogram::NumBuckets long

  /// Upper-bound estimate of the \p P quantile (P in [0,1]): the upper
  /// edge of the bucket holding the ceil(P*Count)-th observation,
  /// clamped to the observed Max. 0 when empty.
  uint64_t percentile(double P) const;

  /// Adds \p O's observations into this snapshot (fleet roll-up). Merging
  /// snapshots of differently-sized bucket layouts asserts.
  void merge(const HistogramSnapshot &O);
};

/// One named histogram. Define at file scope via URSA_HISTO; the
/// constructor registers it with the process-wide registry.
class Histogram {
public:
  /// 0..15 exact, then 4 sub-buckets per octave for octaves 4..37, then
  /// one overflow bucket.
  static constexpr unsigned FirstOctave = 4;
  static constexpr unsigned LastOctave = 37;
  static constexpr unsigned NumBuckets =
      16 + (LastOctave - FirstOctave + 1) * 4 + 1;

  Histogram(const char *Name, const char *Desc);

  /// Records one observation (relaxed atomics; sites may race, totals
  /// stay exact). One branch when stats are disabled.
  void record(uint64_t V) {
    if (statsEnabled())
      recordAlways(V);
  }
  /// Milliseconds convenience for callers holding a double.
  void recordMs(double Ms) {
    if (Ms > 0)
      record(uint64_t(Ms * 1000.0));
  }
  void recordAlways(uint64_t V);

  HistogramSnapshot snapshot() const;
  void reset();

  uint64_t count() const { return Count.load(std::memory_order_relaxed); }
  const char *name() const { return Name; }
  const char *desc() const { return Desc; }

  /// The bucket an observation of \p V lands in.
  static unsigned bucketIndex(uint64_t V);
  /// Inclusive lower edge of bucket \p I.
  static uint64_t bucketLo(unsigned I);
  /// Exclusive upper edge of bucket \p I (UINT64_MAX for the overflow
  /// bucket).
  static uint64_t bucketHi(unsigned I);

private:
  const char *Name;
  const char *Desc;
  std::atomic<uint64_t> Count{0};
  std::atomic<uint64_t> Sum{0};
  std::atomic<uint64_t> Max{0};
  std::array<std::atomic<uint64_t>, NumBuckets> Buckets{};
};

/// Every registered histogram, sorted by name. With \p NonZeroOnly only
/// histograms that have recorded something are returned.
std::vector<HistogramSnapshot> snapshotHistograms(bool NonZeroOnly = false);

/// Zeroes every registered histogram (between bench measurements/tests).
void resetHistograms();

} // namespace ursa::obs

/// Defines a file-local histogram. Use at namespace scope:
///   URSA_HISTO(HistE2E, "ursa.service.e2e_us", "end-to-end latency");
///   ... HistE2E.record(Us);
#define URSA_HISTO(Var, Name, Desc)                                           \
  static ::ursa::obs::Histogram Var(Name, Desc)

#endif // URSA_OBS_HISTOGRAM_H
