//===- obs/Histogram.cpp - Log-bucketed latency histograms ----------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/Histogram.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <mutex>

using namespace ursa;
using namespace ursa::obs;

namespace {

struct HistoRegistry {
  std::mutex Mu;
  std::vector<Histogram *> Histos;
};

HistoRegistry &registry() {
  static HistoRegistry R; // function-local: safe across static-init order
  return R;
}

/// floor(log2(V)) for V >= 1.
unsigned ilog2(uint64_t V) {
  unsigned O = 0;
  while (V >>= 1)
    ++O;
  return O;
}

} // namespace

Histogram::Histogram(const char *HName, const char *HDesc)
    : Name(HName), Desc(HDesc) {
  HistoRegistry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mu);
  R.Histos.push_back(this);
}

unsigned Histogram::bucketIndex(uint64_t V) {
  if (V < 16)
    return unsigned(V);
  unsigned O = ilog2(V);
  if (O > LastOctave)
    return NumBuckets - 1; // overflow bucket
  unsigned Sub = unsigned((V >> (O - 2)) & 3);
  return 16 + (O - FirstOctave) * 4 + Sub;
}

uint64_t Histogram::bucketLo(unsigned I) {
  if (I < 16)
    return I;
  if (I >= NumBuckets - 1)
    return uint64_t(1) << (LastOctave + 1);
  unsigned O = FirstOctave + (I - 16) / 4;
  unsigned Sub = (I - 16) % 4;
  return (uint64_t(1) << O) + uint64_t(Sub) * (uint64_t(1) << (O - 2));
}

uint64_t Histogram::bucketHi(unsigned I) {
  if (I >= NumBuckets - 1)
    return UINT64_MAX;
  if (I < 16)
    return I + 1;
  unsigned O = FirstOctave + (I - 16) / 4;
  return bucketLo(I) + (uint64_t(1) << (O - 2));
}

void Histogram::recordAlways(uint64_t V) {
  Count.fetch_add(1, std::memory_order_relaxed);
  Sum.fetch_add(V, std::memory_order_relaxed);
  uint64_t Cur = Max.load(std::memory_order_relaxed);
  while (V > Cur &&
         !Max.compare_exchange_weak(Cur, V, std::memory_order_relaxed))
    ;
  Buckets[bucketIndex(V)].fetch_add(1, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot S;
  S.Name = Name;
  S.Desc = Desc;
  S.Buckets.resize(NumBuckets);
  // Buckets first, then the totals: a racing record() may make the
  // totals momentarily exceed the bucket sum, never the reverse by more
  // than the in-flight adds — quantiles stay bounded either way.
  for (unsigned I = 0; I != NumBuckets; ++I)
    S.Buckets[I] = Buckets[I].load(std::memory_order_relaxed);
  S.Count = Count.load(std::memory_order_relaxed);
  S.Sum = Sum.load(std::memory_order_relaxed);
  S.Max = Max.load(std::memory_order_relaxed);
  return S;
}

void Histogram::reset() {
  Count.store(0, std::memory_order_relaxed);
  Sum.store(0, std::memory_order_relaxed);
  Max.store(0, std::memory_order_relaxed);
  for (auto &B : Buckets)
    B.store(0, std::memory_order_relaxed);
}

uint64_t HistogramSnapshot::percentile(double P) const {
  uint64_t Total = 0;
  for (uint64_t B : Buckets)
    Total += B;
  if (Total == 0)
    return 0;
  P = std::min(1.0, std::max(0.0, P));
  uint64_t Rank = uint64_t(std::ceil(P * double(Total)));
  if (Rank == 0)
    Rank = 1;
  uint64_t Seen = 0;
  for (unsigned I = 0; I != Buckets.size(); ++I) {
    Seen += Buckets[I];
    if (Seen >= Rank) {
      uint64_t Hi = Histogram::bucketHi(I);
      return Max && Max < Hi ? Max : Hi;
    }
  }
  return Max;
}

void HistogramSnapshot::merge(const HistogramSnapshot &O) {
  assert(Buckets.size() == O.Buckets.size() &&
         "merging incompatible bucket layouts");
  Count += O.Count;
  Sum += O.Sum;
  Max = std::max(Max, O.Max);
  for (size_t I = 0; I != Buckets.size(); ++I)
    Buckets[I] += O.Buckets[I];
}

std::vector<HistogramSnapshot> obs::snapshotHistograms(bool NonZeroOnly) {
  HistoRegistry &R = registry();
  std::vector<HistogramSnapshot> Out;
  {
    std::lock_guard<std::mutex> Lock(R.Mu);
    for (const Histogram *H : R.Histos) {
      if (NonZeroOnly && H->count() == 0)
        continue;
      Out.push_back(H->snapshot());
    }
  }
  std::sort(Out.begin(), Out.end(),
            [](const HistogramSnapshot &A, const HistogramSnapshot &B) {
              return A.Name < B.Name;
            });
  return Out;
}

void obs::resetHistograms() {
  HistoRegistry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mu);
  for (Histogram *H : R.Histos)
    H->reset();
}
