//===- obs/Tracer.h - Chrome-trace-event span tracer ------------*- C++ -*-===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Scoped RAII timing spans that emit Chrome trace-event JSON — the format
/// Perfetto (ui.perfetto.dev) and chrome://tracing load directly. The
/// pipeline brackets its phases with URSA_SPAN so one trace file shows the
/// whole measure→transform→remeasure loop, each tentative transform
/// evaluation, scheduling, and simulation on a common timeline.
///
/// Enabling: set the URSA_TRACE environment variable to an output path
/// (picked up at process start), pass `--trace-out FILE` to ursa_cc, or
/// call startTrace()/endTrace() programmatically. When disabled a span
/// construction is one relaxed atomic load — cheap enough to leave spans
/// on every hot path (bench_obs_overhead keeps this honest).
///
/// Events buffer in memory and flush as `{"traceEvents":[...]}` on
/// endTrace() or at process exit. Timestamps are microseconds since
/// startTrace; nesting is implied by containment, the Chrome "X"
/// (complete) event semantics.
///
//===----------------------------------------------------------------------===//

#ifndef URSA_OBS_TRACER_H
#define URSA_OBS_TRACER_H

#include <atomic>
#include <cstdint>
#include <string>

namespace ursa::obs {

namespace detail {
extern std::atomic<bool> TraceActive;
} // namespace detail

/// Whether spans currently record (a trace file is open).
inline bool traceEnabled() {
  return detail::TraceActive.load(std::memory_order_relaxed);
}

/// Starts buffering trace events, to be written to \p Path. Replaces any
/// trace already in progress (flushing it first).
void startTrace(const std::string &Path);

/// Flushes buffered events to the startTrace() path and stops recording.
/// No-op when no trace is active. Returns false when the file could not
/// be written.
bool endTrace();

/// The trace JSON for the events buffered so far, without ending the
/// trace (tests use this to validate well-formedness in-process).
std::string traceJson();

/// Low-level event append (spans use this; instants for point events).
void recordCompleteEvent(const char *Name, const char *Cat, uint64_t TsUs,
                         uint64_t DurUs);
void recordInstantEvent(const char *Name, const char *Cat);

/// Microseconds since the active trace began (0 when disabled).
uint64_t traceNowUs();

/// RAII span: construction records the start time, destruction emits one
/// complete event. Cheap (one atomic load, no clock read) when tracing is
/// off.
class Span {
public:
  explicit Span(const char *SpanName, const char *SpanCat = "ursa")
      : Name(SpanName), Cat(SpanCat), Active(traceEnabled()) {
    if (Active)
      StartUs = traceNowUs();
  }
  ~Span() {
    if (Active)
      recordCompleteEvent(Name, Cat, StartUs, traceNowUs() - StartUs);
  }
  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;

private:
  const char *Name;
  const char *Cat;
  uint64_t StartUs = 0;
  bool Active;
};

} // namespace ursa::obs

/// Times the enclosing scope under \p Name (a string literal or other
/// pointer that outlives the scope).
#define URSA_SPAN(Var, Name, Cat) ::ursa::obs::Span Var(Name, Cat)

#endif // URSA_OBS_TRACER_H
