//===- obs/Tracer.h - Chrome-trace-event span tracer ------------*- C++ -*-===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Scoped RAII timing spans that emit Chrome trace-event JSON — the format
/// Perfetto (ui.perfetto.dev) and chrome://tracing load directly. The
/// pipeline brackets its phases with URSA_SPAN so one trace file shows the
/// whole measure→transform→remeasure loop, each tentative transform
/// evaluation, scheduling, and simulation on a common timeline.
///
/// Enabling: set the URSA_TRACE environment variable to an output path
/// (picked up at process start), pass `--trace-out FILE` to ursa_cc, or
/// call startTrace()/endTrace() programmatically. When disabled a span
/// construction is one relaxed atomic load plus one thread-local read —
/// cheap enough to leave spans on every hot path (bench_obs_overhead
/// keeps this honest).
///
/// Request-scoped collection: a thread may install a SpanCollector
/// (CollectorScope), after which every span that closes on that thread is
/// also appended to the collector — name, start, duration — tagged with
/// the collector's trace id. The compile service wraps each request's
/// compile in one collector, which is how a request's stage timeline
/// reaches the flight recorder and the per-stage latency histograms, and
/// how trace-file events gain a "trace_id" arg attributing them to the
/// request that caused them.
///
/// Events buffer in memory and flush as `{"traceEvents":[...]}` on
/// endTrace() or at process exit. Timestamps are microseconds since
/// startTrace; nesting is implied by containment, the Chrome "X"
/// (complete) event semantics.
///
//===----------------------------------------------------------------------===//

#ifndef URSA_OBS_TRACER_H
#define URSA_OBS_TRACER_H

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace ursa::obs {

class SpanCollector;

namespace detail {
extern std::atomic<bool> TraceActive;
extern thread_local SpanCollector *TlsCollector;
} // namespace detail

/// Whether spans currently record (a trace file is open).
inline bool traceEnabled() {
  return detail::TraceActive.load(std::memory_order_relaxed);
}

/// Monotonic microseconds since the process-wide span epoch (first use).
/// Shared by the tracer, span collectors, and the service's request
/// records so their timestamps line up on one axis.
uint64_t monotonicNowUs();

/// Starts buffering trace events, to be written to \p Path. Replaces any
/// trace already in progress (flushing it first).
void startTrace(const std::string &Path);

/// Flushes buffered events to the startTrace() path and stops recording.
/// No-op when no trace is active. Returns false when the file could not
/// be written.
bool endTrace();

/// The trace JSON for the events buffered so far, without ending the
/// trace (tests use this to validate well-formedness in-process).
std::string traceJson();

/// Low-level event append (spans use this; instants for point events).
/// Timestamps are monotonicNowUs values; the tracer rebases them onto
/// the trace's own start. \p TraceId, when non-null and non-empty, is
/// emitted as an `args.trace_id` on the event.
void recordCompleteEvent(const char *Name, const char *Cat, uint64_t TsUs,
                         uint64_t DurUs, const char *TraceId = nullptr);
void recordInstantEvent(const char *Name, const char *Cat);

/// Microseconds since the active trace began (0 when disabled).
uint64_t traceNowUs();

/// Accumulates the spans that close on one thread while installed
/// (CollectorScope): the request-scoped stage timeline. Bounded — beyond
/// MaxSpans further spans are counted in dropped() instead of stored, so
/// a proposal-heavy compile cannot balloon a request record.
class SpanCollector {
public:
  struct Stage {
    const char *Name;
    const char *Cat;
    uint64_t StartUs; ///< monotonicNowUs at open
    uint64_t DurUs;
  };

  explicit SpanCollector(std::string TraceId, size_t MaxSpans = 4096)
      : Id(std::move(TraceId)), Cap(MaxSpans) {
    Stages.reserve(64);
  }

  void add(const Stage &S) {
    if (Stages.size() < Cap)
      Stages.push_back(S);
    else
      ++Dropped;
  }

  /// Total duration of every collected span named \p Name, in us.
  uint64_t totalUs(const char *Name) const;

  const std::vector<Stage> &stages() const { return Stages; }
  size_t dropped() const { return Dropped; }
  const std::string &traceId() const { return Id; }

private:
  std::string Id;
  std::vector<Stage> Stages;
  size_t Cap;
  size_t Dropped = 0;
};

/// Installs \p C as the current thread's span collector for the scope
/// (restoring the previous one on exit, so scopes nest).
class CollectorScope {
public:
  explicit CollectorScope(SpanCollector *C) : Prev(detail::TlsCollector) {
    detail::TlsCollector = C;
  }
  ~CollectorScope() { detail::TlsCollector = Prev; }
  CollectorScope(const CollectorScope &) = delete;
  CollectorScope &operator=(const CollectorScope &) = delete;

private:
  SpanCollector *Prev;
};

/// RAII span: construction records the start time, destruction emits one
/// complete event into the trace buffer and/or the thread's collector.
/// Cheap (one atomic load, one TLS read, no clock read) when both are
/// off.
class Span {
public:
  explicit Span(const char *SpanName, const char *SpanCat = "ursa")
      : Name(SpanName), Cat(SpanCat), Coll(detail::TlsCollector),
        Tracing(traceEnabled()) {
    if (Tracing || Coll)
      StartUs = monotonicNowUs();
  }
  ~Span() {
    if (!Tracing && !Coll)
      return;
    uint64_t Dur = monotonicNowUs() - StartUs;
    if (Coll)
      Coll->add({Name, Cat, StartUs, Dur});
    if (Tracing)
      recordCompleteEvent(Name, Cat, StartUs, Dur,
                          Coll ? Coll->traceId().c_str() : nullptr);
  }
  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;

private:
  const char *Name;
  const char *Cat;
  SpanCollector *Coll;
  uint64_t StartUs = 0;
  bool Tracing;
};

} // namespace ursa::obs

/// Times the enclosing scope under \p Name (a string literal or other
/// pointer that outlives the scope).
#define URSA_SPAN(Var, Name, Cat) ::ursa::obs::Span Var(Name, Cat)

#endif // URSA_OBS_TRACER_H
