//===- obs/Tracer.cpp - Chrome-trace-event span tracer --------------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/Tracer.h"

#include "obs/Json.h"

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <thread>
#include <vector>

using namespace ursa;
using namespace ursa::obs;

std::atomic<bool> obs::detail::TraceActive{false};

namespace {

using Clock = std::chrono::steady_clock;

struct Event {
  const char *Name;
  const char *Cat;
  char Ph; ///< 'X' complete, 'i' instant
  uint64_t TsUs;
  uint64_t DurUs;
  uint32_t Tid;
};

uint32_t currentTid() {
  // Stable small id per thread for the trace's "tid" field.
  static std::atomic<uint32_t> NextTid{1};
  thread_local uint32_t Tid = NextTid.fetch_add(1);
  return Tid;
}

/// The process-wide trace buffer. Function-local singleton so its
/// destructor (static destruction at exit) flushes a trace left open by
/// URSA_TRACE without an explicit endTrace().
struct Tracer {
  std::mutex Mu;
  std::vector<Event> Events;
  Clock::time_point Start;
  std::string Path;

  ~Tracer() { finishLocked(); }

  void start(const std::string &P) {
    std::lock_guard<std::mutex> Lock(Mu);
    finishLocked();
    Path = P;
    Events.clear();
    Events.reserve(4096);
    Start = Clock::now();
    detail::TraceActive.store(true, std::memory_order_relaxed);
  }

  bool finish() {
    std::lock_guard<std::mutex> Lock(Mu);
    return finishLocked();
  }

  bool finishLocked() {
    if (!detail::TraceActive.load(std::memory_order_relaxed))
      return true;
    detail::TraceActive.store(false, std::memory_order_relaxed);
    std::ofstream OS(Path, std::ios::trunc);
    if (!OS)
      return false;
    OS << jsonLocked();
    Events.clear();
    return bool(OS);
  }

  std::string jsonLocked() {
    JsonWriter W;
    W.beginObject();
    W.key("traceEvents").beginArray();
    for (const Event &E : Events) {
      W.beginObject();
      W.kv("name", E.Name).kv("cat", E.Cat);
      W.kv("ph", std::string_view(&E.Ph, 1));
      W.kv("ts", E.TsUs);
      if (E.Ph == 'X')
        W.kv("dur", E.DurUs);
      if (E.Ph == 'i')
        W.kv("s", "t"); // instant scope: thread
      W.kv("pid", uint64_t(1)).kv("tid", uint64_t(E.Tid));
      W.endObject();
    }
    W.endArray();
    W.kv("displayTimeUnit", "ms");
    W.endObject();
    return W.str();
  }

  uint64_t nowUs() const {
    return uint64_t(std::chrono::duration_cast<std::chrono::microseconds>(
                        Clock::now() - Start)
                        .count());
  }
};

Tracer &tracer() {
  static Tracer T;
  return T;
}

/// URSA_TRACE=<file> arms the tracer for the whole process lifetime; the
/// Tracer destructor writes the file at exit.
[[maybe_unused]] const bool EnvInit = [] {
  if (const char *Path = std::getenv("URSA_TRACE"))
    if (*Path)
      tracer().start(Path);
  return true;
}();

} // namespace

void obs::startTrace(const std::string &Path) { tracer().start(Path); }

bool obs::endTrace() { return tracer().finish(); }

std::string obs::traceJson() {
  Tracer &T = tracer();
  std::lock_guard<std::mutex> Lock(T.Mu);
  return T.jsonLocked();
}

uint64_t obs::traceNowUs() { return tracer().nowUs(); }

void obs::recordCompleteEvent(const char *Name, const char *Cat,
                              uint64_t TsUs, uint64_t DurUs) {
  Tracer &T = tracer();
  std::lock_guard<std::mutex> Lock(T.Mu);
  if (!traceEnabled())
    return;
  T.Events.push_back({Name, Cat, 'X', TsUs, DurUs, currentTid()});
}

void obs::recordInstantEvent(const char *Name, const char *Cat) {
  Tracer &T = tracer();
  std::lock_guard<std::mutex> Lock(T.Mu);
  if (!traceEnabled())
    return;
  T.Events.push_back({Name, Cat, 'i', T.nowUs(), 0, currentTid()});
}
