//===- obs/Tracer.cpp - Chrome-trace-event span tracer --------------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/Tracer.h"

#include "obs/Json.h"

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <thread>
#include <vector>

using namespace ursa;
using namespace ursa::obs;

std::atomic<bool> obs::detail::TraceActive{false};
thread_local SpanCollector *obs::detail::TlsCollector = nullptr;

namespace {

using Clock = std::chrono::steady_clock;

/// The process-wide span epoch: every monotonicNowUs value counts from
/// here, so tracer events, collector stages, and request records share
/// one time axis.
Clock::time_point processEpoch() {
  static const Clock::time_point Epoch = Clock::now();
  return Epoch;
}

struct Event {
  const char *Name;
  const char *Cat;
  char Ph; ///< 'X' complete, 'i' instant
  uint64_t TsUs;
  uint64_t DurUs;
  uint32_t Tid;
  std::string TraceId; ///< request attribution; empty = none
};

uint32_t currentTid() {
  // Stable small id per thread for the trace's "tid" field.
  static std::atomic<uint32_t> NextTid{1};
  thread_local uint32_t Tid = NextTid.fetch_add(1);
  return Tid;
}

/// The process-wide trace buffer. Function-local singleton so its
/// destructor (static destruction at exit) flushes a trace left open by
/// URSA_TRACE without an explicit endTrace().
struct Tracer {
  std::mutex Mu;
  std::vector<Event> Events;
  uint64_t StartUs = 0; ///< monotonicNowUs when the trace began
  std::string Path;

  ~Tracer() { finishLocked(); }

  void start(const std::string &P) {
    std::lock_guard<std::mutex> Lock(Mu);
    finishLocked();
    Path = P;
    Events.clear();
    Events.reserve(4096);
    StartUs = monotonicNowUs();
    detail::TraceActive.store(true, std::memory_order_relaxed);
  }

  bool finish() {
    std::lock_guard<std::mutex> Lock(Mu);
    return finishLocked();
  }

  bool finishLocked() {
    if (!detail::TraceActive.load(std::memory_order_relaxed))
      return true;
    detail::TraceActive.store(false, std::memory_order_relaxed);
    std::ofstream OS(Path, std::ios::trunc);
    if (!OS)
      return false;
    OS << jsonLocked();
    Events.clear();
    return bool(OS);
  }

  std::string jsonLocked() {
    JsonWriter W;
    W.beginObject();
    W.key("traceEvents").beginArray();
    for (const Event &E : Events) {
      W.beginObject();
      W.kv("name", E.Name).kv("cat", E.Cat);
      W.kv("ph", std::string_view(&E.Ph, 1));
      W.kv("ts", E.TsUs);
      if (E.Ph == 'X')
        W.kv("dur", E.DurUs);
      if (E.Ph == 'i')
        W.kv("s", "t"); // instant scope: thread
      W.kv("pid", uint64_t(1)).kv("tid", uint64_t(E.Tid));
      if (!E.TraceId.empty()) {
        W.key("args").beginObject();
        W.kv("trace_id", E.TraceId);
        W.endObject();
      }
      W.endObject();
    }
    W.endArray();
    W.kv("displayTimeUnit", "ms");
    W.endObject();
    return W.str();
  }

  /// Rebases a monotonic timestamp onto the trace's own origin.
  uint64_t rebase(uint64_t MonoUs) const {
    return MonoUs >= StartUs ? MonoUs - StartUs : 0;
  }
};

Tracer &tracer() {
  static Tracer T;
  return T;
}

/// URSA_TRACE=<file> arms the tracer for the whole process lifetime; the
/// Tracer destructor writes the file at exit.
[[maybe_unused]] const bool EnvInit = [] {
  if (const char *Path = std::getenv("URSA_TRACE"))
    if (*Path)
      tracer().start(Path);
  return true;
}();

} // namespace

uint64_t obs::monotonicNowUs() {
  return uint64_t(std::chrono::duration_cast<std::chrono::microseconds>(
                      Clock::now() - processEpoch())
                      .count());
}

uint64_t SpanCollector::totalUs(const char *Name) const {
  uint64_t Total = 0;
  for (const Stage &S : Stages)
    if (!std::strcmp(S.Name, Name))
      Total += S.DurUs;
  return Total;
}

void obs::startTrace(const std::string &Path) { tracer().start(Path); }

bool obs::endTrace() { return tracer().finish(); }

std::string obs::traceJson() {
  Tracer &T = tracer();
  std::lock_guard<std::mutex> Lock(T.Mu);
  return T.jsonLocked();
}

uint64_t obs::traceNowUs() {
  if (!traceEnabled())
    return 0;
  return tracer().rebase(monotonicNowUs());
}

void obs::recordCompleteEvent(const char *Name, const char *Cat,
                              uint64_t TsUs, uint64_t DurUs,
                              const char *TraceId) {
  Tracer &T = tracer();
  std::lock_guard<std::mutex> Lock(T.Mu);
  if (!traceEnabled())
    return;
  T.Events.push_back({Name, Cat, 'X', T.rebase(TsUs), DurUs, currentTid(),
                      TraceId ? std::string(TraceId) : std::string()});
}

void obs::recordInstantEvent(const char *Name, const char *Cat) {
  Tracer &T = tracer();
  std::lock_guard<std::mutex> Lock(T.Mu);
  if (!traceEnabled())
    return;
  T.Events.push_back({Name, Cat, 'i', T.rebase(monotonicNowUs()), 0,
                      currentTid(), std::string()});
}
