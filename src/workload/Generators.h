//===- workload/Generators.h - Random program generation --------*- C++ -*-===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproducible random trace generation for experiments and differential
/// testing. The paper reports no workloads, so the corpus is synthetic:
/// shapes are chosen to span the regimes where phase ordering matters —
/// wide layered dataflow (register- and FU-hungry), deep expression trees
/// (balanced reduction), and narrow chains (nearly sequential).
///
/// Invariant: generated traces contain no dead values (every definition
/// is eventually consumed or folded into a stored output), which keeps
/// the brute-force liveness ground truth exact (DESIGN.md Section 5).
///
//===----------------------------------------------------------------------===//

#ifndef URSA_WORKLOAD_GENERATORS_H
#define URSA_WORKLOAD_GENERATORS_H

#include "ir/Interpreter.h"
#include "ir/Trace.h"
#include "support/RNG.h"

namespace ursa {

/// Knobs for generateTrace().
struct GenOptions {
  enum class ShapeKind {
    Layered,    ///< random dataflow with locality-biased operands
    Expression, ///< balanced reduction tree over the inputs
    Chains      ///< several independent chains joined at the end
  };

  ShapeKind Shape = ShapeKind::Layered;
  unsigned NumInstrs = 30;  ///< approximate arithmetic op count
  unsigned NumInputs = 4;   ///< variables loaded up front
  unsigned NumOutputs = 2;  ///< variables stored at the end
  double FloatFraction = 0; ///< fraction of float-domain computation
  double BranchProb = 0;    ///< per-op probability of a trace branch
  double MemOpProb = 0;     ///< per-op probability of an extra load/store
  /// Operand locality: how many of the most recent values operands are
  /// drawn from; larger = wider parallelism (Layered shape only).
  unsigned Window = 8;
  uint64_t Seed = 1;
};

/// Generates a verifier-clean trace; deterministic in \p Opts.
Trace generateTrace(const GenOptions &Opts);

/// Random initial memory covering every variable \p T mentions.
MemoryState randomInputs(const Trace &T, RNG &Rng);

} // namespace ursa

#endif // URSA_WORKLOAD_GENERATORS_H
