//===- workload/Generators.cpp - Random program generation ----------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "workload/Generators.h"

#include "ir/Verifier.h"

#include <algorithm>
#include <string>
#include <vector>

using namespace ursa;

namespace {

/// Bookkeeping for no-dead-value generation: every produced vreg is
/// tracked until something consumes it; leftovers fold into the outputs.
class GenState {
public:
  GenState(Trace &Out, RNG &R, const GenOptions &O)
      : T(Out), Rng(R), Opts(O) {}

  void loadInputs() {
    for (unsigned I = 0; I != std::max(1u, Opts.NumInputs); ++I) {
      bool Float = Rng.chance(Opts.FloatFraction);
      int V = T.emitLoad("in" + std::to_string(I),
                         Float ? Domain::Float : Domain::Int);
      live(V).push_back(V);
    }
    if (Opts.FloatFraction > 0 && FloatPool.empty()) {
      int V = T.emitLoad("fin", Domain::Float);
      FloatPool.push_back(V);
    }
  }

  /// One arithmetic step in a random domain.
  void emitRandomOp() {
    bool Float = Rng.chance(Opts.FloatFraction) && !FloatPool.empty();
    if (!Float && IntPool.empty())
      Float = !FloatPool.empty();
    if (Float)
      emitFloatOp();
    else
      emitIntOp();
  }

  void maybeBranch() {
    if (!Rng.chance(Opts.BranchProb) || IntPool.empty())
      return;
    T.emitBranch(pickOperand(IntPool));
  }

  void maybeMemOp() {
    if (!Rng.chance(Opts.MemOpProb))
      return;
    if (Rng.chance(0.5) || IntPool.size() < 2) {
      int V = T.emitLoad("m" + std::to_string(Rng.below(4)), Domain::Int);
      IntPool.push_back(V);
    } else {
      T.emitStore("m" + std::to_string(Rng.below(4)),
                  consumeOperand(IntPool));
    }
  }

  /// Folds every still-unconsumed value into NumOutputs stores.
  void sealOutputs() {
    if (IntPool.empty() && FloatPool.empty())
      IntPool.push_back(T.emitLoad("in0"));
    // Convert leftover floats into the int domain so one reduction
    // suffices; then store accumulators.
    while (!FloatPool.empty()) {
      int F = consumeOperand(FloatPool);
      IntPool.push_back(T.emitOp(Opcode::CvtFI, F));
    }
    unsigned Outs = std::max(1u, Opts.NumOutputs);
    std::vector<int> Acc;
    for (unsigned I = 0; I != Outs && !IntPool.empty(); ++I)
      Acc.push_back(consumeOperand(IntPool));
    unsigned Turn = 0;
    while (!IntPool.empty()) {
      int V = consumeOperand(IntPool);
      Acc[Turn] = T.emitOp(Opcode::Xor, Acc[Turn], V);
      Turn = (Turn + 1) % Acc.size();
    }
    for (unsigned I = 0; I != Acc.size(); ++I)
      T.emitStore("out" + std::to_string(I), Acc[I]);
  }

private:
  std::vector<int> &live(int VReg) {
    return T.vregDomain(VReg) == Domain::Float ? FloatPool : IntPool;
  }

  /// Picks an operand without consuming it (value stays live).
  int pickOperand(std::vector<int> &Pool) {
    assert(!Pool.empty() && "picking from an empty pool");
    unsigned W = std::min<unsigned>(Pool.size(), std::max(1u, Opts.Window));
    return Pool[Pool.size() - 1 - Rng.below(W)];
  }

  /// Picks an operand and removes it from the pool (it has been used; it
  /// may be used again only if re-picked before removal — removal here
  /// just marks "no longer owed a consumer").
  int consumeOperand(std::vector<int> &Pool) {
    unsigned W = std::min<unsigned>(Pool.size(), std::max(1u, Opts.Window));
    unsigned At = Pool.size() - 1 - Rng.below(W);
    int V = Pool[At];
    Pool.erase(Pool.begin() + At);
    return V;
  }

  void emitIntOp() {
    static const Opcode Binary[] = {Opcode::Add, Opcode::Sub, Opcode::Mul,
                                    Opcode::And, Opcode::Xor, Opcode::Min,
                                    Opcode::Max, Opcode::Or};
    static const Opcode Unary[] = {Opcode::Neg, Opcode::Not};
    int A = consumeOperand(IntPool);
    int V;
    if (IntPool.empty() || Rng.chance(0.15)) {
      V = T.emitOp(Unary[Rng.below(2)], A);
    } else {
      // Second operand only *picked* half the time so values get fanout.
      int B = Rng.chance(0.5) ? pickOperand(IntPool)
                              : consumeOperand(IntPool);
      V = T.emitOp(Binary[Rng.below(8)], A, B);
    }
    IntPool.push_back(V);
  }

  void emitFloatOp() {
    static const Opcode Binary[] = {Opcode::FAdd, Opcode::FSub, Opcode::FMul};
    int A = consumeOperand(FloatPool);
    int V;
    if (FloatPool.empty() || Rng.chance(0.2)) {
      V = T.emitOp(Opcode::FNeg, A);
    } else {
      int B = Rng.chance(0.5) ? pickOperand(FloatPool)
                              : consumeOperand(FloatPool);
      V = T.emitOp(Binary[Rng.below(3)], A, B);
    }
    FloatPool.push_back(V);
  }

  Trace &T;
  RNG &Rng;
  const GenOptions &Opts;
  std::vector<int> IntPool, FloatPool;
};

} // namespace

/// Balanced reduction over fresh loads.
static void buildExpression(Trace &T, RNG &Rng, const GenOptions &Opts) {
  std::vector<int> Level;
  unsigned Leaves = std::max(2u, Opts.NumInstrs / 2);
  for (unsigned I = 0; I != Leaves; ++I)
    Level.push_back(T.emitLoad("in" + std::to_string(I % 26)));
  static const Opcode Ops[] = {Opcode::Add, Opcode::Xor, Opcode::Min,
                               Opcode::Max};
  while (Level.size() > 1) {
    std::vector<int> Next;
    for (unsigned I = 0; I + 1 < Level.size(); I += 2)
      Next.push_back(T.emitOp(Ops[Rng.below(4)], Level[I], Level[I + 1]));
    if (Level.size() % 2)
      Next.push_back(Level.back());
    Level = std::move(Next);
  }
  T.emitStore("out0", Level[0]);
}

/// Independent chains joined by a final reduction.
static void buildChains(Trace &T, RNG &Rng, const GenOptions &Opts) {
  unsigned NumChains = std::max(2u, Opts.NumInputs);
  unsigned PerChain = std::max(1u, Opts.NumInstrs / NumChains);
  static const Opcode Ops[] = {Opcode::Add, Opcode::Mul, Opcode::Xor,
                               Opcode::Sub};
  std::vector<int> Ends;
  for (unsigned C = 0; C != NumChains; ++C) {
    int V = T.emitLoad("in" + std::to_string(C));
    int Seed = T.emitLoadImm(int64_t(Rng.below(64)) + 1);
    for (unsigned I = 0; I != PerChain; ++I)
      V = T.emitOp(Ops[Rng.below(4)], V, Seed);
    Ends.push_back(V);
  }
  int Acc = Ends[0];
  for (unsigned I = 1; I != Ends.size(); ++I)
    Acc = T.emitOp(Opcode::Add, Acc, Ends[I]);
  T.emitStore("out0", Acc);
}

Trace ursa::generateTrace(const GenOptions &Opts) {
  Trace T("gen-" + std::to_string(Opts.Seed));
  RNG Rng(Opts.Seed * 0x9E3779B97F4A7C15ULL + 0xD1B54A32D192ED03ULL);

  switch (Opts.Shape) {
  case GenOptions::ShapeKind::Expression:
    buildExpression(T, Rng, Opts);
    break;
  case GenOptions::ShapeKind::Chains:
    buildChains(T, Rng, Opts);
    break;
  case GenOptions::ShapeKind::Layered: {
    GenState G(T, Rng, Opts);
    G.loadInputs();
    for (unsigned I = 0; I != Opts.NumInstrs; ++I) {
      G.emitRandomOp();
      G.maybeMemOp();
      G.maybeBranch();
    }
    G.sealOutputs();
    break;
  }
  }

  assertValid(T);
  return T;
}

MemoryState ursa::randomInputs(const Trace &T, RNG &Rng) {
  MemoryState M;
  for (const std::string &Name : T.symbolNames()) {
    if (Rng.chance(0.25))
      M[Name] = Value::ofFloat(double(Rng.range(-64, 64)) * 0.5);
    else
      M[Name] = Value::ofInt(Rng.range(-1000, 1000));
  }
  return M;
}
