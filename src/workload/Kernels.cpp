//===- workload/Kernels.cpp - Hand-written kernel corpus ------------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "workload/Kernels.h"

#include "ir/Verifier.h"

#include <string>

using namespace ursa;

Trace ursa::figure2Trace() {
  Trace T("figure2");
  // The paper's ops use literal constants; materializing them in our ISA
  // would add nodes, so shape-equal self-combinations stand in: every
  // node reads exactly the values the paper's corresponding node does.
  int V = T.emitLoad("v");                      // A: load v
  int W = T.emitOp(Opcode::Add, V, V);          // B: w = v * 2
  int X = T.emitOp(Opcode::Mul, V, V);          // C: x = v * 3 (shape-equal)
  int Y = T.emitOp(Opcode::Neg, V);             // D: y = v + 5 (shape-equal)
  int T1 = T.emitOp(Opcode::Add, W, X);         // E: t1 = w + x
  int T2 = T.emitOp(Opcode::Mul, W, X);         // F: t2 = w * x
  int T3 = T.emitOp(Opcode::Add, Y, Y);         // G: t3 = y * 2
  int T4 = T.emitOp(Opcode::Mul, Y, Y);         // H: t4 = y / 3 (shape-equal)
  int T5 = T.emitOp(Opcode::Div, T1, T2);       // I: t5 = t1 / t2
  int T6 = T.emitOp(Opcode::Add, T3, T4);       // J: t6 = t3 + t4
  T.emitOp(Opcode::Add, T5, T6);                // K: z = t5 + t6
  assertValid(T);
  return T;
}

Trace ursa::figure2TraceObservable() {
  Trace T = figure2Trace();
  // K is the last value defined.
  int Z = int(T.numVRegs()) - 1;
  T.emitStore("z", Z);
  return T;
}

Trace ursa::dotProductTrace(unsigned Unroll) {
  Trace T("dot" + std::to_string(Unroll));
  std::vector<int> Products;
  for (unsigned I = 0; I != Unroll; ++I) {
    int A = T.emitLoad("a" + std::to_string(I));
    int B = T.emitLoad("b" + std::to_string(I));
    Products.push_back(T.emitOp(Opcode::Mul, A, B));
  }
  // Balanced reduction.
  while (Products.size() > 1) {
    std::vector<int> Next;
    for (unsigned I = 0; I + 1 < Products.size(); I += 2)
      Next.push_back(T.emitOp(Opcode::Add, Products[I], Products[I + 1]));
    if (Products.size() % 2)
      Next.push_back(Products.back());
    Products = std::move(Next);
  }
  int Sum0 = T.emitLoad("sum");
  int Sum1 = T.emitOp(Opcode::Add, Sum0, Products[0]);
  T.emitStore("sum", Sum1);
  assertValid(T);
  return T;
}

Trace ursa::hornerTrace(unsigned Degree) {
  Trace T("horner" + std::to_string(Degree));
  int X = T.emitLoad("x");
  int Acc = T.emitLoad("c" + std::to_string(Degree));
  for (unsigned I = Degree; I-- > 0;) {
    int C = T.emitLoad("c" + std::to_string(I));
    int M = T.emitOp(Opcode::Mul, Acc, X);
    Acc = T.emitOp(Opcode::Add, M, C);
  }
  T.emitStore("p", Acc);
  assertValid(T);
  return T;
}

Trace ursa::estrinTrace(unsigned Degree) {
  Trace T("estrin" + std::to_string(Degree));
  int X = T.emitLoad("x");
  std::vector<int> Terms;
  for (unsigned I = 0; I <= Degree; ++I)
    Terms.push_back(T.emitLoad("c" + std::to_string(I)));
  int Pow = X;
  while (Terms.size() > 1) {
    std::vector<int> Next;
    for (unsigned I = 0; I + 1 < Terms.size(); I += 2) {
      int M = T.emitOp(Opcode::Mul, Terms[I + 1], Pow);
      Next.push_back(T.emitOp(Opcode::Add, Terms[I], M));
    }
    if (Terms.size() % 2)
      Next.push_back(Terms.back());
    Terms = std::move(Next);
    if (Terms.size() > 1)
      Pow = T.emitOp(Opcode::Mul, Pow, Pow);
  }
  T.emitStore("p", Terms[0]);
  assertValid(T);
  return T;
}

Trace ursa::stencilTrace(unsigned Points) {
  Trace T("stencil" + std::to_string(Points));
  std::vector<int> X;
  for (unsigned I = 0; I != Points + 2; ++I)
    X.push_back(T.emitLoad("x" + std::to_string(I)));
  for (unsigned I = 0; I != Points; ++I) {
    int Mid = T.emitOp(Opcode::Add, X[I + 1], X[I + 1]);
    int S = T.emitOp(Opcode::Add, X[I], Mid);
    int Y = T.emitOp(Opcode::Add, S, X[I + 2]);
    T.emitStore("y" + std::to_string(I), Y);
  }
  assertValid(T);
  return T;
}

Trace ursa::hydroTrace(unsigned Unroll) {
  Trace T("hydro" + std::to_string(Unroll));
  int Q = T.emitLoad("q");
  int R = T.emitLoad("r");
  int Tt = T.emitLoad("t");
  for (unsigned K = 0; K != Unroll; ++K) {
    int Z10 = T.emitLoad("z" + std::to_string(K + 10));
    int Z11 = T.emitLoad("z" + std::to_string(K + 11));
    int Y = T.emitLoad("y" + std::to_string(K));
    int A = T.emitOp(Opcode::Mul, R, Z10);
    int B = T.emitOp(Opcode::Mul, Tt, Z11);
    int C = T.emitOp(Opcode::Add, A, B);
    int D = T.emitOp(Opcode::Mul, Y, C);
    int E = T.emitOp(Opcode::Add, Q, D);
    T.emitStore("x" + std::to_string(K), E);
  }
  assertValid(T);
  return T;
}

Trace ursa::butterflyTrace(unsigned Pairs) {
  Trace T("butterfly" + std::to_string(Pairs));
  int Wr = T.emitLoad("wr", Domain::Float);
  int Wi = T.emitLoad("wi", Domain::Float);
  for (unsigned I = 0; I != Pairs; ++I) {
    std::string S = std::to_string(I);
    int Ar = T.emitLoad("ar" + S, Domain::Float);
    int Ai = T.emitLoad("ai" + S, Domain::Float);
    int Br = T.emitLoad("br" + S, Domain::Float);
    int Bi = T.emitLoad("bi" + S, Domain::Float);
    // t = w * b (complex)
    int T1 = T.emitOp(Opcode::FMul, Wr, Br);
    int T2 = T.emitOp(Opcode::FMul, Wi, Bi);
    int T3 = T.emitOp(Opcode::FMul, Wr, Bi);
    int T4 = T.emitOp(Opcode::FMul, Wi, Br);
    int Tr = T.emitOp(Opcode::FSub, T1, T2);
    int Ti = T.emitOp(Opcode::FAdd, T3, T4);
    // out0 = a + t; out1 = a - t
    T.emitStore("cr" + S, T.emitOp(Opcode::FAdd, Ar, Tr));
    T.emitStore("ci" + S, T.emitOp(Opcode::FAdd, Ai, Ti));
    T.emitStore("dr" + S, T.emitOp(Opcode::FSub, Ar, Tr));
    T.emitStore("di" + S, T.emitOp(Opcode::FSub, Ai, Ti));
  }
  assertValid(T);
  return T;
}

Trace ursa::matmul2Trace(unsigned Repeat) {
  Trace T("matmul2x" + std::to_string(Repeat));
  for (unsigned R = 0; R != Repeat; ++R) {
    std::string S = std::to_string(R);
    int A[4], B[4];
    for (unsigned I = 0; I != 4; ++I) {
      A[I] = T.emitLoad("a" + S + std::to_string(I));
      B[I] = T.emitLoad("b" + S + std::to_string(I));
    }
    // C = A * B, row-major 2x2.
    struct {
      unsigned I, K0, K1, J0, J1;
    } Elems[4] = {{0, 0, 1, 0, 2}, {1, 0, 1, 1, 3}, {2, 2, 3, 0, 2},
                  {3, 2, 3, 1, 3}};
    for (const auto &El : Elems) {
      int P0 = T.emitOp(Opcode::Mul, A[El.K0], B[El.J0]);
      int P1 = T.emitOp(Opcode::Mul, A[El.K1], B[El.J1]);
      int C = T.emitOp(Opcode::Add, P0, P1);
      T.emitStore("c" + S + std::to_string(El.I), C);
    }
  }
  assertValid(T);
  return T;
}

Trace ursa::mixedClassTrace(unsigned Lanes) {
  Trace T("mixed" + std::to_string(Lanes));
  for (unsigned L = 0; L != Lanes; ++L) {
    std::string S = std::to_string(L);
    // Integer address-style arithmetic.
    int I0 = T.emitLoad("idx" + S);
    int I1 = T.emitOp(Opcode::Add, I0, I0);
    int I2 = T.emitOp(Opcode::Xor, I1, I0);
    T.emitStore("addr" + S, I2);
    // Float payload arithmetic.
    int F0 = T.emitLoad("fa" + S, Domain::Float);
    int F1 = T.emitLoad("fb" + S, Domain::Float);
    int F2 = T.emitOp(Opcode::FMul, F0, F1);
    int F3 = T.emitOp(Opcode::FAdd, F2, F0);
    int F4 = T.emitOp(Opcode::FSub, F3, F1);
    T.emitStore("fo" + S, F4);
  }
  assertValid(T);
  return T;
}

Trace ursa::firTrace(unsigned Taps, unsigned Outputs) {
  Trace T("fir" + std::to_string(Taps) + "x" + std::to_string(Outputs));
  std::vector<int> Coef, X;
  for (unsigned K = 0; K != Taps; ++K)
    Coef.push_back(T.emitLoad("c" + std::to_string(K)));
  for (unsigned I = 0; I != Outputs + Taps - 1; ++I)
    X.push_back(T.emitLoad("x" + std::to_string(I)));
  for (unsigned I = 0; I != Outputs; ++I) {
    int Acc = T.emitOp(Opcode::Mul, Coef[0], X[I]);
    for (unsigned K = 1; K != Taps; ++K) {
      int P = T.emitOp(Opcode::Mul, Coef[K], X[I + K]);
      Acc = T.emitOp(Opcode::Add, Acc, P);
    }
    T.emitStore("y" + std::to_string(I), Acc);
  }
  assertValid(T);
  return T;
}

Trace ursa::prefixSumTrace(unsigned Points) {
  Trace T("scan" + std::to_string(Points));
  int Acc = T.emitLoad("x0");
  T.emitStore("s0", Acc);
  for (unsigned I = 1; I != Points; ++I) {
    int X = T.emitLoad("x" + std::to_string(I));
    Acc = T.emitOp(Opcode::Add, Acc, X);
    T.emitStore("s" + std::to_string(I), Acc);
  }
  assertValid(T);
  return T;
}

Trace ursa::fftStageTrace(unsigned Size) {
  assert(Size >= 2 && Size % 2 == 0 && "fft stage needs an even size");
  Trace T("fft" + std::to_string(Size));
  for (unsigned P = 0; P != Size / 2; ++P) {
    std::string S = std::to_string(P);
    int Wr = T.emitLoad("wr" + S, Domain::Float);
    int Wi = T.emitLoad("wi" + S, Domain::Float);
    int Ar = T.emitLoad("ar" + S, Domain::Float);
    int Ai = T.emitLoad("ai" + S, Domain::Float);
    int Br = T.emitLoad("br" + S, Domain::Float);
    int Bi = T.emitLoad("bi" + S, Domain::Float);
    int T1 = T.emitOp(Opcode::FMul, Wr, Br);
    int T2 = T.emitOp(Opcode::FMul, Wi, Bi);
    int T3 = T.emitOp(Opcode::FMul, Wr, Bi);
    int T4 = T.emitOp(Opcode::FMul, Wi, Br);
    int Tr = T.emitOp(Opcode::FSub, T1, T2);
    int Ti = T.emitOp(Opcode::FAdd, T3, T4);
    T.emitStore("or" + S, T.emitOp(Opcode::FAdd, Ar, Tr));
    T.emitStore("oi" + S, T.emitOp(Opcode::FAdd, Ai, Ti));
    T.emitStore("pr" + S, T.emitOp(Opcode::FSub, Ar, Tr));
    T.emitStore("pi" + S, T.emitOp(Opcode::FSub, Ai, Ti));
  }
  assertValid(T);
  return T;
}

Trace ursa::matvec4Trace(unsigned Rows) {
  Trace T("matvec4x" + std::to_string(Rows));
  int V[4];
  for (unsigned J = 0; J != 4; ++J)
    V[J] = T.emitLoad("v" + std::to_string(J));
  for (unsigned R = 0; R != Rows; ++R) {
    std::string S = std::to_string(R);
    int P0 = T.emitOp(Opcode::Mul, T.emitLoad("m" + S + "0"), V[0]);
    int P1 = T.emitOp(Opcode::Mul, T.emitLoad("m" + S + "1"), V[1]);
    int P2 = T.emitOp(Opcode::Mul, T.emitLoad("m" + S + "2"), V[2]);
    int P3 = T.emitOp(Opcode::Mul, T.emitLoad("m" + S + "3"), V[3]);
    int S01 = T.emitOp(Opcode::Add, P0, P1);
    int S23 = T.emitOp(Opcode::Add, P2, P3);
    T.emitStore("r" + S, T.emitOp(Opcode::Add, S01, S23));
  }
  assertValid(T);
  return T;
}

std::vector<std::pair<std::string, Trace>> ursa::kernelSuite() {
  std::vector<std::pair<std::string, Trace>> Suite;
  Suite.emplace_back("figure2", figure2TraceObservable());
  Suite.emplace_back("dot8", dotProductTrace(8));
  Suite.emplace_back("dot16", dotProductTrace(16));
  Suite.emplace_back("horner8", hornerTrace(8));
  Suite.emplace_back("estrin8", estrinTrace(8));
  Suite.emplace_back("stencil8", stencilTrace(8));
  Suite.emplace_back("hydro4", hydroTrace(4));
  Suite.emplace_back("hydro8", hydroTrace(8));
  Suite.emplace_back("matmul2x2", matmul2Trace(2));
  Suite.emplace_back("fir4x6", firTrace(4, 6));
  Suite.emplace_back("scan12", prefixSumTrace(12));
  Suite.emplace_back("matvec4x3", matvec4Trace(3));
  return Suite;
}
