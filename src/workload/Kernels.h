//===- workload/Kernels.h - Hand-written kernel corpus ----------*- C++ -*-===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The named workload corpus: the paper's Figure 2 example (the anchor of
/// every figure reproduction) plus unrolled bodies of the numeric kernels
/// the paper's VLIW setting targets — dot products, Horner vs Estrin
/// polynomial evaluation, 1D stencils, a hydro fragment in the style of
/// Livermore loop 1, complex butterflies, and a small matrix product.
/// Unrolled loop bodies are exactly what trace scheduling hands URSA.
///
//===----------------------------------------------------------------------===//

#ifndef URSA_WORKLOAD_KERNELS_H
#define URSA_WORKLOAD_KERNELS_H

#include "ir/Trace.h"

#include <string>
#include <vector>

namespace ursa {

/// The DAG of paper Figure 2, nodes A..K, verbatim (no final store; the
/// paper's K is the sink). Requirements: 4 FUs, 5 registers.
Trace figure2Trace();

/// Figure 2 plus a store of z, for executable end-to-end demos.
Trace figure2TraceObservable();

/// Unrolled dot-product step: sum += a[i]*b[i], \p Unroll copies with a
/// balanced reduction tree.
Trace dotProductTrace(unsigned Unroll);

/// Degree-\p Degree polynomial at x, Horner form (serial chain).
Trace hornerTrace(unsigned Degree);

/// Degree-\p Degree polynomial at x, Estrin form (parallel).
Trace estrinTrace(unsigned Degree);

/// 3-point stencil over \p Points elements: y[i] = x[i-1]+2x[i]+x[i+1].
Trace stencilTrace(unsigned Points);

/// Livermore loop 1 (hydro fragment) body, \p Unroll iterations:
/// x[k] = q + y[k]*(r*z[k+10] + t*z[k+11]).
Trace hydroTrace(unsigned Unroll);

/// Radix-2 FFT butterfly on \p Pairs complex pairs (float domain).
Trace butterflyTrace(unsigned Pairs);

/// 2x2 integer matrix multiply, \p Repeat independent products.
Trace matmul2Trace(unsigned Repeat);

/// Mixed int/float kernel for the register-class experiments: \p Lanes
/// independent lanes each doing int addressing plus float arithmetic.
Trace mixedClassTrace(unsigned Lanes);

/// FIR filter: \p Taps coefficients over \p Outputs output points
/// (coefficients shared across points — long-lived multi-use values).
Trace firTrace(unsigned Taps, unsigned Outputs);

/// Inclusive prefix sum of \p Points elements — the serial-to-parallel
/// spectrum's serial end with fan-out stores.
Trace prefixSumTrace(unsigned Points);

/// One radix-2 FFT stage over \p Size complex points (Size/2 butterflies
/// with per-pair twiddles), float domain.
Trace fftStageTrace(unsigned Size);

/// 4x4 integer matrix-vector product, \p Rows of it (4 dot products of
/// width 4 per row block).
Trace matvec4Trace(unsigned Rows);

/// The standard suite used by the benchmark harnesses.
std::vector<std::pair<std::string, Trace>> kernelSuite();

} // namespace ursa

#endif // URSA_WORKLOAD_KERNELS_H
