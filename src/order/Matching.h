//===- order/Matching.h - Bipartite matching engines ------------*- C++ -*-===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Maximum bipartite matching, the engine behind minimum chain
/// decomposition (Ford & Fulkerson's reduction, paper Section 3.1). Two
/// engines are provided:
///
///  * Kuhn's augmenting-path algorithm with *incremental edge batches* —
///    the paper's modification: edges are added in priority sets and the
///    matching is re-augmented after each batch, so low-priority
///    (hammock-crossing) edges are used only when no higher-priority
///    matching exists. O(V * E) = O(N^3) overall.
///
///  * Hopcroft-Karp, O(E * sqrt(V)), for the non-prioritized case; used
///    by the matching ablation benchmark.
///
/// Left and right vertex sets are both indexed 0..Size-1 (each DAG node
/// contributes one left and one right copy in the chain reduction).
///
//===----------------------------------------------------------------------===//

#ifndef URSA_ORDER_MATCHING_H
#define URSA_ORDER_MATCHING_H

#include <cstdint>
#include <utility>
#include <vector>

namespace ursa {

/// Matching state shared by both engines.
struct MatchingResult {
  std::vector<int> MatchOfLeft;  ///< left -> matched right or -1
  std::vector<int> MatchOfRight; ///< right -> matched left or -1
  unsigned Size = 0;             ///< number of matched pairs
};

/// Kuhn's algorithm with batch-incremental edges.
class IncrementalMatcher {
public:
  explicit IncrementalMatcher(unsigned NumVertices);

  /// Adds one batch of edges (pairs Left -> Right) and restores maximality
  /// of the matching over all edges added so far.
  void addBatchAndAugment(const std::vector<std::pair<unsigned, unsigned>> &Edges);

  /// Installs an existing valid matching before any edges are added — the
  /// warm start for incremental re-measurement. Each pair matches Left ->
  /// Right; no left or right may appear twice or conflict with an earlier
  /// seed. The seeded pairs need not be maximum (or even maximal): the
  /// next addBatchAndAugment() call re-augments every unmatched left, and
  /// since a left with no augmenting path never regains one after other
  /// augmentations, that single pass restores maximality — starting from
  /// the seed instead of from the empty matching.
  void seedMatching(const std::vector<std::pair<unsigned, unsigned>> &Pairs);

  const MatchingResult &result() const { return Res; }

private:
  bool tryAugment(unsigned Left);

  unsigned N;
  std::vector<std::vector<unsigned>> Adj;
  MatchingResult Res;

  /// Visited marks as epochs: VisitedEpoch[R] == CurEpoch means "seen in
  /// the current augmenting search". Bumping CurEpoch clears all marks in
  /// O(1), instead of the O(V) std::fill per attempted augment that made
  /// a batch O(V^2) even on sparse relations.
  std::vector<unsigned> VisitedEpoch;
  unsigned CurEpoch = 0;

  /// Explicit DFS stack (kept across calls to avoid reallocation). The
  /// recursive formulation overflows the stack on production-size traces:
  /// one augmenting path through a k-node chain recurses k deep.
  struct Frame {
    unsigned Left;     ///< left vertex this frame explores
    unsigned NextEdge; ///< next index into Adj[Left] to try
    unsigned TakenRight; ///< right vertex the frame descended through
  };
  std::vector<Frame> Stack;
};

/// One-shot Hopcroft-Karp over a fixed edge set.
MatchingResult hopcroftKarp(unsigned NumVertices,
                            const std::vector<std::vector<unsigned>> &Adj);

} // namespace ursa

#endif // URSA_ORDER_MATCHING_H
