//===- order/Chains.h - Minimum chain decomposition -------------*- C++ -*-===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimum chain decomposition of a strict partial order (Dilworth's
/// theorem via bipartite matching, paper Section 3) and maximum antichain
/// extraction (König's construction). The relation is given as a strict
/// reachability-style BitMatrix restricted to an *active* node subset —
/// all DAG nodes for functional units, value-defining nodes for
/// registers.
///
//===----------------------------------------------------------------------===//

#ifndef URSA_ORDER_CHAINS_H
#define URSA_ORDER_CHAINS_H

#include "graph/Closure.h"
#include "graph/Hammocks.h"
#include "support/Bitset.h"

#include <vector>

namespace ursa {

/// A minimum decomposition of the active nodes into chains of the
/// relation. By Dilworth's theorem, Chains.size() equals the maximum
/// number of pairwise-independent active nodes — the paper's worst-case
/// resource requirement (Theorem 1).
struct ChainDecomposition {
  /// Each chain lists node ids in relation order (consecutive members are
  /// related; paper Definition 5's allocation chains).
  std::vector<std::vector<unsigned>> Chains;
  /// Node id -> chain index, or -1 for inactive nodes.
  std::vector<int> ChainOf;

  unsigned width() const { return Chains.size(); }
};

/// Minimum chain decomposition using plain (non-prioritized) matching.
/// \p Rel must be a strict order on node ids; only \p Active nodes
/// participate. Accepts any RelationView source (dense matrix, raw
/// closure, or a lazy masked relation) via implicit conversion.
ChainDecomposition decomposeChains(RelationView Rel,
                                   const std::vector<unsigned> &Active);

/// Row-direct minimum chain decomposition: the phased-Kuhn engine reads
/// the relation rows in place, never materializing the pair list — the
/// large-trace path where enumerating all O(N^2) related pairs would
/// dwarf the closure itself. The *width* is canonical (identical to
/// decomposeChains); the particular chains may differ.
///
/// \p Warm optionally seeds the matcher with a prior decomposition's
/// surviving pairs (see survivingMatchedPairs): after a transform the
/// new relation differs from the old by a handful of pairs, so the
/// seeded matcher augments only the difference instead of rebuilding
/// the matching from scratch. The width is canonical for any seed.
ChainDecomposition
decomposeChainsRows(RelationView Rel, const std::vector<unsigned> &Active,
                    const ChainDecomposition *Warm = nullptr);

/// The paper's hammock-aware variant: bipartite edges are added in
/// batches of increasing hammock-crossing priority so the decomposition
/// projects minimally onto every nested hammock.
ChainDecomposition
decomposeChainsPrioritized(RelationView Rel,
                           const std::vector<unsigned> &Active,
                           const HammockForest &HF);

/// The consecutive chain pairs of \p Prev still related under \p Rel — a
/// valid matching of \p Rel usable as a warm start. Consecutive chain
/// members are exactly the matched pairs of the decomposition's matching,
/// and each node is a left (and a right) of at most one pair, so the
/// surviving subset is conflict-free. Edge-only DAG deltas grow the FU
/// reuse relation monotonically (every pair survives); register relations
/// re-select kills and may drop some, hence the filter.
std::vector<std::pair<unsigned, unsigned>>
survivingMatchedPairs(const ChainDecomposition &Prev, RelationView Rel);

/// Width of \p Rel over \p Active — |Active| minus a maximum matching
/// (Dilworth via Fulkerson's reduction) — warm-started from \p Prev's
/// surviving pairs, augmenting only the lefts the seed leaves unmatched.
/// Every maximum matching has the same size, so the width is canonical:
/// bit-identical to decomposeChains(Rel, Active).width() and to the
/// prioritized variant (priorities change which chains are found, never
/// how many).
///
/// Augmentation reads \p Rel's rows directly (no adjacency-list
/// materialization) and masks them with the active set on the fly, so
/// rows may carry extra bits on inactive columns: only active-to-active
/// bits define the relation. In particular a raw reachability closure
/// works as-is — the FU reuse relation *is* the closure restricted to
/// the active nodes.
unsigned chainWidthWarmStart(RelationView Rel,
                             const std::vector<unsigned> &Active,
                             const ChainDecomposition &Prev);

/// A maximum antichain of the relation over \p Active (size == width).
std::vector<unsigned> maxAntichain(RelationView Rel,
                                   const std::vector<unsigned> &Active);

/// Brute-force width (maximum antichain size) by exhaustive search; for
/// property tests on small inputs only.
unsigned bruteForceWidth(RelationView Rel,
                         const std::vector<unsigned> &Active);

} // namespace ursa

#endif // URSA_ORDER_CHAINS_H
