//===- order/Chains.h - Minimum chain decomposition -------------*- C++ -*-===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimum chain decomposition of a strict partial order (Dilworth's
/// theorem via bipartite matching, paper Section 3) and maximum antichain
/// extraction (König's construction). The relation is given as a strict
/// reachability-style BitMatrix restricted to an *active* node subset —
/// all DAG nodes for functional units, value-defining nodes for
/// registers.
///
//===----------------------------------------------------------------------===//

#ifndef URSA_ORDER_CHAINS_H
#define URSA_ORDER_CHAINS_H

#include "graph/Hammocks.h"
#include "support/Bitset.h"

#include <vector>

namespace ursa {

/// A minimum decomposition of the active nodes into chains of the
/// relation. By Dilworth's theorem, Chains.size() equals the maximum
/// number of pairwise-independent active nodes — the paper's worst-case
/// resource requirement (Theorem 1).
struct ChainDecomposition {
  /// Each chain lists node ids in relation order (consecutive members are
  /// related; paper Definition 5's allocation chains).
  std::vector<std::vector<unsigned>> Chains;
  /// Node id -> chain index, or -1 for inactive nodes.
  std::vector<int> ChainOf;

  unsigned width() const { return Chains.size(); }
};

/// Minimum chain decomposition using plain (non-prioritized) matching.
/// \p Rel must be a strict order on node ids; only \p Active nodes
/// participate.
ChainDecomposition decomposeChains(const BitMatrix &Rel,
                                   const std::vector<unsigned> &Active);

/// The paper's hammock-aware variant: bipartite edges are added in
/// batches of increasing hammock-crossing priority so the decomposition
/// projects minimally onto every nested hammock.
ChainDecomposition
decomposeChainsPrioritized(const BitMatrix &Rel,
                           const std::vector<unsigned> &Active,
                           const HammockForest &HF);

/// A maximum antichain of the relation over \p Active (size == width).
std::vector<unsigned> maxAntichain(const BitMatrix &Rel,
                                   const std::vector<unsigned> &Active);

/// Brute-force width (maximum antichain size) by exhaustive search; for
/// property tests on small inputs only.
unsigned bruteForceWidth(const BitMatrix &Rel,
                         const std::vector<unsigned> &Active);

} // namespace ursa

#endif // URSA_ORDER_CHAINS_H
