//===- order/Chains.cpp - Minimum chain decomposition ---------------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "order/Chains.h"

#include "obs/Stats.h"
#include "order/Matching.h"

#include <algorithm>
#include <map>

using namespace ursa;

URSA_STAT(StatWarmSeededPairs, "order.chains.warm_seeded_pairs",
          "matched pairs adopted from a previous decomposition");
URSA_STAT(StatWarmAugments, "order.chains.warm_augments",
          "augmenting-path searches run on top of a warm-started matching");

static ChainDecomposition
chainsFromMatching(const MatchingResult &M, unsigned NumNodes,
                   const std::vector<unsigned> &Active) {
  ChainDecomposition D;
  D.ChainOf.assign(NumNodes, -1);

  std::vector<uint8_t> IsActive(NumNodes, 0);
  for (unsigned A : Active)
    IsActive[A] = 1;

  // Heads are active nodes whose right copy is unmatched (nothing
  // precedes them in a chain).
  for (unsigned A : Active) {
    if (M.MatchOfRight[A] >= 0)
      continue;
    std::vector<unsigned> Chain;
    int Cur = int(A);
    while (Cur >= 0) {
      assert(IsActive[Cur] && "matched through an inactive node");
      assert(D.ChainOf[Cur] < 0 && "node in two chains");
      D.ChainOf[Cur] = int(D.Chains.size());
      Chain.push_back(unsigned(Cur));
      Cur = M.MatchOfLeft[Cur];
    }
    D.Chains.push_back(std::move(Chain));
  }

  // Every active node must have been reached from some head.
  for (unsigned A : Active) {
    (void)A;
    assert(D.ChainOf[A] >= 0 && "active node missing from decomposition");
  }
  return D;
}

static std::vector<std::pair<unsigned, unsigned>>
relationPairs(const BitMatrix &Rel, const std::vector<unsigned> &Active) {
  std::vector<uint8_t> IsActive(Rel.size(), 0);
  for (unsigned A : Active)
    IsActive[A] = 1;
  std::vector<std::pair<unsigned, unsigned>> Pairs;
  for (unsigned A : Active)
    Rel.row(A).forEach([&](unsigned B) {
      if (IsActive[B])
        Pairs.emplace_back(A, B);
    });
  return Pairs;
}

ChainDecomposition
ursa::decomposeChains(const BitMatrix &Rel,
                      const std::vector<unsigned> &Active) {
  IncrementalMatcher M(Rel.size());
  M.addBatchAndAugment(relationPairs(Rel, Active));
  return chainsFromMatching(M.result(), Rel.size(), Active);
}

ChainDecomposition
ursa::decomposeChainsPrioritized(const BitMatrix &Rel,
                                 const std::vector<unsigned> &Active,
                                 const HammockForest &HF) {
  std::map<unsigned, std::vector<std::pair<unsigned, unsigned>>> Batches;
  for (auto [A, B] : relationPairs(Rel, Active))
    Batches[HF.edgePriority(A, B)].emplace_back(A, B);

  IncrementalMatcher M(Rel.size());
  for (auto &[Priority, Edges] : Batches) {
    (void)Priority;
    M.addBatchAndAugment(Edges);
  }
  return chainsFromMatching(M.result(), Rel.size(), Active);
}

std::vector<std::pair<unsigned, unsigned>>
ursa::survivingMatchedPairs(const ChainDecomposition &Prev,
                            const BitMatrix &Rel) {
  std::vector<std::pair<unsigned, unsigned>> Pairs;
  for (const auto &Chain : Prev.Chains)
    for (unsigned I = 0; I + 1 < Chain.size(); ++I) {
      unsigned A = Chain[I], B = Chain[I + 1];
      if (A < Rel.size() && B < Rel.size() && Rel.test(A, B))
        Pairs.emplace_back(A, B);
    }
  return Pairs;
}

unsigned ursa::chainWidthWarmStart(const BitMatrix &Rel,
                                   const std::vector<unsigned> &Active,
                                   const ChainDecomposition &Prev) {
  unsigned N = Rel.size();
  std::vector<int> MatchL(N, -1), MatchR(N, -1);
  unsigned Size = 0;
  for (auto [A, B] : survivingMatchedPairs(Prev, Rel)) {
    assert(MatchL[A] < 0 && MatchR[B] < 0 && "chain pairs cannot conflict");
    MatchL[A] = int(B);
    MatchR[B] = int(A);
    ++Size;
  }

  std::vector<uint8_t> IsActive(N, 0);
  for (unsigned A : Active)
    IsActive[A] = 1;

  // Kuhn augmentation reading the relation rows in place: no adjacency
  // lists, no pair vector — the row bits filtered by IsActive are the
  // edges. An explicit stack keeps the DFS iterative; VisitedEpoch spares
  // a clear per phase. The warm start leaves only a handful of free lefts
  // to augment, so most rows are never even scanned.
  std::vector<unsigned> VisitedEpoch(N, 0);
  unsigned Epoch = 0;
  struct Frame {
    unsigned Left;
    unsigned NextBit;    ///< resume position in the row scan
    unsigned TakenRight; ///< the matched right we descended through
  };
  std::vector<Frame> Stack;
  auto TryAugment = [&](unsigned Root) {
    Stack.clear();
    Stack.push_back({Root, 0, 0});
    while (!Stack.empty()) {
      Frame &F = Stack.back();
      unsigned R = Rel.row(F.Left).findNext(F.NextBit);
      if (R >= N) {
        Stack.pop_back();
        continue;
      }
      F.NextBit = R + 1;
      if (!IsActive[R] || VisitedEpoch[R] == Epoch)
        continue;
      VisitedEpoch[R] = Epoch;
      int Owner = MatchR[R];
      if (Owner >= 0) {
        F.TakenRight = R;
        Stack.push_back({unsigned(Owner), 0, 0});
        continue;
      }
      // Free right: flip the alternating path recorded on the stack.
      MatchL[F.Left] = int(R);
      MatchR[R] = int(F.Left);
      for (unsigned D = unsigned(Stack.size()) - 1; D-- > 0;) {
        MatchL[Stack[D].Left] = int(Stack[D].TakenRight);
        MatchR[Stack[D].TakenRight] = int(Stack[D].Left);
      }
      return true;
    }
    return false;
  };

  // Phased multi-root augmentation: every free left in a phase shares one
  // visited epoch. A failed DFS leaves the matching untouched, so its
  // visited rights provably admit no augmenting path for the *next* root
  // either (the Hopcroft–Karp pruning lemma) — without the sharing, each
  // free chain tail would rescan the whole alternating structure. A
  // success may invalidate marks made before it, so phases repeat until
  // one finds nothing; that clean last phase certifies maximality.
  StatWarmSeededPairs.add(Size);
  unsigned Phases = 0;
  for (bool Progress = true; Progress;) {
    Progress = false;
    ++Phases;
    ++Epoch;
    for (unsigned L : Active)
      if (MatchL[L] < 0 && TryAugment(L)) {
        ++Size;
        Progress = true;
      }
  }
  StatWarmAugments.add(Phases);

  assert(Size <= Active.size() && "matching larger than domain");
  return unsigned(Active.size()) - Size;
}

std::vector<unsigned> ursa::maxAntichain(const BitMatrix &Rel,
                                         const std::vector<unsigned> &Active) {
  unsigned N = Rel.size();
  std::vector<std::vector<unsigned>> Adj(N);
  for (auto [A, B] : relationPairs(Rel, Active))
    Adj[A].push_back(B);
  MatchingResult M = hopcroftKarp(N, Adj);

  // König: alternating reachability from unmatched left copies.
  std::vector<uint8_t> VisL(N, 0), VisR(N, 0);
  std::vector<unsigned> Work;
  for (unsigned A : Active)
    if (M.MatchOfLeft[A] < 0 && !Adj[A].empty()) {
      VisL[A] = 1;
      Work.push_back(A);
    }
  // Left copies with no edges at all are trivially outside the cover too.
  for (unsigned A : Active)
    if (Adj[A].empty())
      VisL[A] = 1;
  while (!Work.empty()) {
    unsigned L = Work.back();
    Work.pop_back();
    for (unsigned R : Adj[L]) {
      if (VisR[R])
        continue;
      VisR[R] = 1;
      int L2 = M.MatchOfRight[R];
      if (L2 >= 0 && !VisL[L2]) {
        VisL[L2] = 1;
        Work.push_back(unsigned(L2));
      }
    }
  }

  // Cover = (L not visited) u (R visited); antichain avoids both.
  std::vector<unsigned> A;
  for (unsigned X : Active)
    if (VisL[X] && !VisR[X])
      A.push_back(X);

  assert(A.size() == Active.size() - M.Size &&
         "antichain size must equal Dilworth width");
  return A;
}

static unsigned bruteRecurse(const BitMatrix &Rel,
                             const std::vector<unsigned> &Active, unsigned I,
                             std::vector<unsigned> &Picked) {
  if (I == Active.size())
    return Picked.size();
  // Prune: even taking everything left cannot beat nothing extra here;
  // plain exhaustive is fine at test sizes.
  unsigned Best = bruteRecurse(Rel, Active, I + 1, Picked);
  unsigned Cand = Active[I];
  bool Ok = std::all_of(Picked.begin(), Picked.end(), [&](unsigned P) {
    return !Rel.test(P, Cand) && !Rel.test(Cand, P);
  });
  if (Ok) {
    Picked.push_back(Cand);
    Best = std::max(Best, bruteRecurse(Rel, Active, I + 1, Picked));
    Picked.pop_back();
  }
  return Best;
}

unsigned ursa::bruteForceWidth(const BitMatrix &Rel,
                               const std::vector<unsigned> &Active) {
  assert(Active.size() <= 24 && "brute force is for small inputs only");
  std::vector<unsigned> Picked;
  return bruteRecurse(Rel, Active, 0, Picked);
}
