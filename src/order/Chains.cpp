//===- order/Chains.cpp - Minimum chain decomposition ---------------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "order/Chains.h"

#include "obs/Stats.h"
#include "order/Matching.h"

#include <algorithm>
#include <map>

using namespace ursa;

URSA_STAT(StatWarmSeededPairs, "order.chains.warm_seeded_pairs",
          "matched pairs adopted from a previous decomposition");
URSA_STAT(StatWarmAugments, "order.chains.warm_augments",
          "augmenting-path searches run on top of a warm-started matching");

static ChainDecomposition
chainsFromMatching(const MatchingResult &M, unsigned NumNodes,
                   const std::vector<unsigned> &Active) {
  ChainDecomposition D;
  D.ChainOf.assign(NumNodes, -1);

  std::vector<uint8_t> IsActive(NumNodes, 0);
  for (unsigned A : Active)
    IsActive[A] = 1;

  // Heads are active nodes whose right copy is unmatched (nothing
  // precedes them in a chain).
  for (unsigned A : Active) {
    if (M.MatchOfRight[A] >= 0)
      continue;
    std::vector<unsigned> Chain;
    int Cur = int(A);
    while (Cur >= 0) {
      assert(IsActive[Cur] && "matched through an inactive node");
      assert(D.ChainOf[Cur] < 0 && "node in two chains");
      D.ChainOf[Cur] = int(D.Chains.size());
      Chain.push_back(unsigned(Cur));
      Cur = M.MatchOfLeft[Cur];
    }
    D.Chains.push_back(std::move(Chain));
  }

  // Every active node must have been reached from some head.
  for (unsigned A : Active) {
    (void)A;
    assert(D.ChainOf[A] >= 0 && "active node missing from decomposition");
  }
  return D;
}

static std::vector<std::pair<unsigned, unsigned>>
relationPairs(RelationView Rel, const std::vector<unsigned> &Active) {
  std::vector<uint8_t> IsActive(Rel.size(), 0);
  for (unsigned A : Active)
    IsActive[A] = 1;
  std::vector<std::pair<unsigned, unsigned>> Pairs;
  for (unsigned A : Active)
    Rel.forEachInRow(A, [&](unsigned B) {
      if (IsActive[B])
        Pairs.emplace_back(A, B);
    });
  return Pairs;
}

/// The shared row-direct engine: Hopcroft-Karp-style phased augmentation
/// reading the relation rows in place — no adjacency lists, no pair
/// vector; the row bits filtered by the active mask are the edges. \p
/// Seed installs a valid warm-start matching first, a greedy pass tops
/// it up, and then each phase runs one layered BFS from the free lefts
/// followed by layer-disciplined DFS augmentation. An explicit stack
/// keeps the DFS iterative.
static MatchingResult phasedKuhnRows(
    RelationView Rel, const std::vector<unsigned> &Active,
    const std::vector<std::pair<unsigned, unsigned>> &Seed) {
  unsigned N = Rel.size();
  MatchingResult M;
  M.MatchOfLeft.assign(N, -1);
  M.MatchOfRight.assign(N, -1);
  std::vector<int> &MatchL = M.MatchOfLeft, &MatchR = M.MatchOfRight;
  for (auto [A, B] : Seed) {
    assert(MatchL[A] < 0 && MatchR[B] < 0 && "seed pairs cannot conflict");
    MatchL[A] = int(B);
    MatchR[B] = int(A);
    ++M.Size;
  }

  // Word-parallel candidate scan: the next right to try from a left's row
  // is the lowest bit of row & Active & ~Visited, found 64 columns at a
  // time. Closure-backed rows at scale are nearly full, so stepping
  // per-set-bit and rejecting inactive/visited rights one by one (the
  // old scan) touches O(N) bits per frame where one word op covers 64 —
  // this is what makes row-direct decomposition usable at 100k nodes.
  // Candidates are still produced in ascending column order, so the
  // matching is bit-identical to the per-bit scan's.
  const unsigned NumW = (N + 63) / 64;
  std::vector<uint64_t> ActiveW(NumW, 0);
  for (unsigned A : Active)
    ActiveW[A / 64] |= uint64_t(1) << (A % 64);

  // Greedy pre-matching: give every still-free left the first free active
  // right in its row before any augmentation runs. On reuse relations —
  // wide, reachability-shaped — this lands within a few percent of
  // maximum, so the phased search below only repairs the remainder
  // instead of growing the whole matching one alternating path at a
  // time. Any valid initial matching yields the same maximum size, so
  // the width stays canonical; only which chains realize it can shift.
  {
    std::vector<uint64_t> FreeRightW = ActiveW;
    for (auto [A, B] : Seed) {
      (void)A;
      FreeRightW[B / 64] &= ~(uint64_t(1) << (B % 64));
    }
    for (unsigned L : Active) {
      if (MatchL[L] >= 0)
        continue;
      for (unsigned WI = 0; WI != NumW; ++WI) {
        if (!FreeRightW[WI])
          continue; // no free rights here — skip without reading the row
        uint64_t W = Rel.rowWord(L, WI) & FreeRightW[WI];
        if (!W)
          continue;
        unsigned R = WI * 64 + __builtin_ctzll(W);
        MatchL[L] = int(R);
        MatchR[R] = int(L);
        FreeRightW[WI] &= ~(W & -W);
        ++M.Size;
        break;
      }
    }
  }

  // Layered BFS from the free lefts: DistL[L] is the alternating-path
  // depth (left steps only) at which L becomes reachable; the search
  // stops at the first layer that touches a free right. The DFS below
  // only descends along DistL[Owner] == DistL[L] + 1 edges, so a failed
  // left (reset to INF) is provably exhausted for the whole phase — the
  // pruning that lets each phase clear a maximal set of vertex-disjoint
  // shortest augmenting paths instead of one path per full rescan.
  // RightSeen keeps the BFS word-parallel: each row is filtered against
  // the not-yet-reached rights 64 columns at a time.
  const unsigned INF = ~0u;
  std::vector<unsigned> DistL(N, INF);
  std::vector<unsigned> Frontier, NextFrontier;
  std::vector<uint64_t> RightSeen(NumW);
  unsigned MaxLayer = 0;
  auto BFS = [&]() {
    Frontier.clear();
    for (unsigned L : Active) {
      DistL[L] = INF;
      if (MatchL[L] < 0) {
        DistL[L] = 0;
        Frontier.push_back(L);
      }
    }
    std::fill(RightSeen.begin(), RightSeen.end(), 0);
    bool FoundFree = false;
    for (unsigned D = 0; !Frontier.empty() && !FoundFree; ++D) {
      NextFrontier.clear();
      for (unsigned L : Frontier) {
        for (unsigned WI = 0; WI != NumW; ++WI) {
          // Candidate mask first: closure rows saturate RightSeen within
          // the first layers, after which whole words skip on one load
          // instead of paying the (lazy, remapped) row-word read.
          uint64_t Cand = ActiveW[WI] & ~RightSeen[WI];
          if (!Cand)
            continue;
          uint64_t W = Rel.rowWord(L, WI) & Cand;
          if (!W)
            continue;
          RightSeen[WI] |= W;
          while (W) {
            unsigned R = WI * 64 + unsigned(__builtin_ctzll(W));
            W &= W - 1;
            int Owner = MatchR[R];
            if (Owner < 0)
              FoundFree = true;
            else if (DistL[unsigned(Owner)] == INF) {
              DistL[unsigned(Owner)] = D + 1;
              NextFrontier.push_back(unsigned(Owner));
            }
          }
        }
      }
      std::swap(Frontier, NextFrontier);
      MaxLayer = D + 1;
    }
    return FoundFree;
  };

  // Per-layer right masks, rebuilt after each BFS: LayerW[d] holds the
  // matched rights whose owner sits at BFS depth d, FreeW the unmatched
  // active rights. A frame at depth d then scans
  // row & (LayerW[d+1] | FreeW) word-parallel — the layer discipline is
  // baked into the mask, so wrong-layer bits cost nothing. Rights are
  // removed from their mask the moment the DFS commits to them
  // (descends through or matches them): either their owner's subtree
  // fails — no path through them exists this phase — or they end up on
  // an augmenting path, and paths must stay vertex-disjoint.
  std::vector<std::vector<uint64_t>> LayerW;
  std::vector<uint64_t> FreeW(NumW);
  auto BuildLayerMasks = [&]() {
    if (LayerW.size() < size_t(MaxLayer) + 2)
      LayerW.resize(MaxLayer + 2);
    for (auto &LW : LayerW)
      LW.assign(NumW, 0);
    std::fill(FreeW.begin(), FreeW.end(), 0);
    for (unsigned R : Active) {
      int Owner = MatchR[R];
      if (Owner < 0)
        FreeW[R / 64] |= uint64_t(1) << (R % 64);
      else if (DistL[unsigned(Owner)] != INF &&
               DistL[unsigned(Owner)] < LayerW.size())
        LayerW[DistL[unsigned(Owner)]][R / 64] |= uint64_t(1) << (R % 64);
    }
  };

  auto NextCandidate = [&](unsigned L, unsigned From) -> unsigned {
    unsigned Depth = DistL[L] + 1;
    const uint64_t *DW =
        Depth < LayerW.size() ? LayerW[Depth].data() : nullptr;
    if (From >= N)
      return N;
    unsigned WI = From / 64;
    uint64_t Cand =
        ((DW ? DW[WI] : 0) | FreeW[WI]) & (~uint64_t(0) << (From % 64));
    uint64_t W = Cand ? Rel.rowWord(L, WI) & Cand : 0;
    while (!W) {
      if (++WI == NumW)
        return N;
      Cand = (DW ? DW[WI] : 0) | FreeW[WI];
      W = Cand ? Rel.rowWord(L, WI) & Cand : 0;
    }
    return WI * 64 + __builtin_ctzll(W);
  };

  struct Frame {
    unsigned Left;
    unsigned NextBit;    ///< resume position in the row scan
    unsigned TakenRight; ///< the matched right we descended through
  };
  std::vector<Frame> Stack;
  auto TryAugment = [&](unsigned Root) {
    Stack.clear();
    Stack.push_back({Root, 0, 0});
    while (!Stack.empty()) {
      Frame &F = Stack.back();
      unsigned R = NextCandidate(F.Left, F.NextBit);
      if (R >= N) {
        // No layered path through this left for the rest of the phase.
        DistL[F.Left] = INF;
        Stack.pop_back();
        continue;
      }
      F.NextBit = R + 1;
      int Owner = MatchR[R];
      if (Owner >= 0) {
        LayerW[DistL[F.Left] + 1][R / 64] &= ~(uint64_t(1) << (R % 64));
        F.TakenRight = R;
        Stack.push_back({unsigned(Owner), 0, 0});
        continue;
      }
      // Free right: flip the alternating path recorded on the stack.
      FreeW[R / 64] &= ~(uint64_t(1) << (R % 64));
      MatchL[F.Left] = int(R);
      MatchR[R] = int(F.Left);
      for (unsigned D = unsigned(Stack.size()) - 1; D-- > 0;) {
        MatchL[Stack[D].Left] = int(Stack[D].TakenRight);
        MatchR[Stack[D].TakenRight] = int(Stack[D].Left);
      }
      return true;
    }
    return false;
  };

  // Phases repeat while the BFS still reaches a free right; a BFS that
  // reaches nothing certifies the matching is maximum (no augmenting
  // path exists at any length).
  unsigned Phases = 0;
  while (BFS()) {
    ++Phases;
    BuildLayerMasks();
    for (unsigned L : Active)
      if (MatchL[L] < 0 && TryAugment(L))
        ++M.Size;
  }
  StatWarmAugments.add(Phases);
  return M;
}

ChainDecomposition
ursa::decomposeChains(RelationView Rel,
                      const std::vector<unsigned> &Active) {
  IncrementalMatcher M(Rel.size());
  M.addBatchAndAugment(relationPairs(Rel, Active));
  return chainsFromMatching(M.result(), Rel.size(), Active);
}

ChainDecomposition
ursa::decomposeChainsRows(RelationView Rel,
                          const std::vector<unsigned> &Active,
                          const ChainDecomposition *Warm) {
  std::vector<std::pair<unsigned, unsigned>> Seed;
  if (Warm) {
    Seed = survivingMatchedPairs(*Warm, Rel);
    StatWarmSeededPairs.add(Seed.size());
  }
  return chainsFromMatching(phasedKuhnRows(Rel, Active, Seed), Rel.size(),
                            Active);
}

ChainDecomposition
ursa::decomposeChainsPrioritized(RelationView Rel,
                                 const std::vector<unsigned> &Active,
                                 const HammockForest &HF) {
  std::map<unsigned, std::vector<std::pair<unsigned, unsigned>>> Batches;
  for (auto [A, B] : relationPairs(Rel, Active))
    Batches[HF.edgePriority(A, B)].emplace_back(A, B);

  IncrementalMatcher M(Rel.size());
  for (auto &[Priority, Edges] : Batches) {
    (void)Priority;
    M.addBatchAndAugment(Edges);
  }
  return chainsFromMatching(M.result(), Rel.size(), Active);
}

std::vector<std::pair<unsigned, unsigned>>
ursa::survivingMatchedPairs(const ChainDecomposition &Prev,
                            RelationView Rel) {
  std::vector<std::pair<unsigned, unsigned>> Pairs;
  for (const auto &Chain : Prev.Chains)
    for (unsigned I = 0; I + 1 < Chain.size(); ++I) {
      unsigned A = Chain[I], B = Chain[I + 1];
      if (A < Rel.size() && B < Rel.size() && Rel.test(A, B))
        Pairs.emplace_back(A, B);
    }
  return Pairs;
}

unsigned ursa::chainWidthWarmStart(RelationView Rel,
                                   const std::vector<unsigned> &Active,
                                   const ChainDecomposition &Prev) {
  // The warm start leaves only a handful of free lefts to augment, so
  // most rows are never even scanned by the row-direct engine.
  std::vector<std::pair<unsigned, unsigned>> Seed =
      survivingMatchedPairs(Prev, Rel);
  StatWarmSeededPairs.add(Seed.size());
  MatchingResult M = phasedKuhnRows(Rel, Active, Seed);
  assert(M.Size <= Active.size() && "matching larger than domain");
  return unsigned(Active.size()) - M.Size;
}

std::vector<unsigned> ursa::maxAntichain(RelationView Rel,
                                         const std::vector<unsigned> &Active) {
  unsigned N = Rel.size();
  std::vector<std::vector<unsigned>> Adj(N);
  for (auto [A, B] : relationPairs(Rel, Active))
    Adj[A].push_back(B);
  MatchingResult M = hopcroftKarp(N, Adj);

  // König: alternating reachability from unmatched left copies.
  std::vector<uint8_t> VisL(N, 0), VisR(N, 0);
  std::vector<unsigned> Work;
  for (unsigned A : Active)
    if (M.MatchOfLeft[A] < 0 && !Adj[A].empty()) {
      VisL[A] = 1;
      Work.push_back(A);
    }
  // Left copies with no edges at all are trivially outside the cover too.
  for (unsigned A : Active)
    if (Adj[A].empty())
      VisL[A] = 1;
  while (!Work.empty()) {
    unsigned L = Work.back();
    Work.pop_back();
    for (unsigned R : Adj[L]) {
      if (VisR[R])
        continue;
      VisR[R] = 1;
      int L2 = M.MatchOfRight[R];
      if (L2 >= 0 && !VisL[L2]) {
        VisL[L2] = 1;
        Work.push_back(unsigned(L2));
      }
    }
  }

  // Cover = (L not visited) u (R visited); antichain avoids both.
  std::vector<unsigned> A;
  for (unsigned X : Active)
    if (VisL[X] && !VisR[X])
      A.push_back(X);

  assert(A.size() == Active.size() - M.Size &&
         "antichain size must equal Dilworth width");
  return A;
}

static unsigned bruteRecurse(RelationView Rel,
                             const std::vector<unsigned> &Active, unsigned I,
                             std::vector<unsigned> &Picked) {
  if (I == Active.size())
    return Picked.size();
  // Prune: even taking everything left cannot beat nothing extra here;
  // plain exhaustive is fine at test sizes.
  unsigned Best = bruteRecurse(Rel, Active, I + 1, Picked);
  unsigned Cand = Active[I];
  bool Ok = std::all_of(Picked.begin(), Picked.end(), [&](unsigned P) {
    return !Rel.test(P, Cand) && !Rel.test(Cand, P);
  });
  if (Ok) {
    Picked.push_back(Cand);
    Best = std::max(Best, bruteRecurse(Rel, Active, I + 1, Picked));
    Picked.pop_back();
  }
  return Best;
}

unsigned ursa::bruteForceWidth(RelationView Rel,
                               const std::vector<unsigned> &Active) {
  assert(Active.size() <= 24 && "brute force is for small inputs only");
  std::vector<unsigned> Picked;
  return bruteRecurse(Rel, Active, 0, Picked);
}
