//===- order/Matching.cpp - Bipartite matching engines --------------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "order/Matching.h"

#include "obs/Stats.h"

#include <cassert>
#include <cstdint>
#include <deque>

using namespace ursa;

URSA_STAT(StatAugmentingPaths, "order.matching.augmenting_paths",
          "successful augmenting-path searches across both engines");
URSA_STAT(StatMatchedPairs, "order.matching.matched_pairs",
          "total matched pairs produced (matching sizes summed)");
URSA_STAT(StatHKPhases, "order.matching.hopcroft_karp_phases",
          "Hopcroft-Karp BFS phases run");

IncrementalMatcher::IncrementalMatcher(unsigned NumVertices)
    : N(NumVertices), Adj(NumVertices) {
  Res.MatchOfLeft.assign(N, -1);
  Res.MatchOfRight.assign(N, -1);
}

bool IncrementalMatcher::tryAugment(unsigned Left,
                                    std::vector<uint8_t> &Visited) {
  for (unsigned Right : Adj[Left]) {
    if (Visited[Right])
      continue;
    Visited[Right] = 1;
    int Other = Res.MatchOfRight[Right];
    if (Other < 0 || tryAugment(unsigned(Other), Visited)) {
      Res.MatchOfLeft[Left] = int(Right);
      Res.MatchOfRight[Right] = int(Left);
      return true;
    }
  }
  return false;
}

void IncrementalMatcher::addBatchAndAugment(
    const std::vector<std::pair<unsigned, unsigned>> &Edges) {
  for (auto [L, R] : Edges) {
    assert(L < N && R < N && "edge endpoint out of range");
    Adj[L].push_back(R);
  }
  // Re-augment every unmatched left vertex; matched vertices stay matched
  // (augmenting paths only extend the matching), which is what makes the
  // batch priorities sticky.
  std::vector<uint8_t> Visited(N, 0);
  for (unsigned L = 0; L != N; ++L) {
    if (Res.MatchOfLeft[L] >= 0 || Adj[L].empty())
      continue;
    std::fill(Visited.begin(), Visited.end(), 0);
    if (tryAugment(L, Visited)) {
      ++Res.Size;
      StatAugmentingPaths.add();
      StatMatchedPairs.add();
    }
  }
}

MatchingResult
ursa::hopcroftKarp(unsigned N, const std::vector<std::vector<unsigned>> &Adj) {
  MatchingResult Res;
  Res.MatchOfLeft.assign(N, -1);
  Res.MatchOfRight.assign(N, -1);

  constexpr unsigned Inf = ~0u;
  std::vector<unsigned> Dist(N, Inf);

  auto Bfs = [&]() {
    std::deque<unsigned> Q;
    for (unsigned L = 0; L != N; ++L) {
      if (Res.MatchOfLeft[L] < 0) {
        Dist[L] = 0;
        Q.push_back(L);
      } else {
        Dist[L] = Inf;
      }
    }
    bool FoundFree = false;
    while (!Q.empty()) {
      unsigned L = Q.front();
      Q.pop_front();
      for (unsigned R : Adj[L]) {
        int L2 = Res.MatchOfRight[R];
        if (L2 < 0) {
          FoundFree = true;
        } else if (Dist[L2] == Inf) {
          Dist[L2] = Dist[L] + 1;
          Q.push_back(unsigned(L2));
        }
      }
    }
    return FoundFree;
  };

  // Recursive DFS along layered structure.
  auto Dfs = [&](auto &&Self, unsigned L) -> bool {
    for (unsigned R : Adj[L]) {
      int L2 = Res.MatchOfRight[R];
      if (L2 < 0 || (Dist[L2] == Dist[L] + 1 && Self(Self, unsigned(L2)))) {
        Res.MatchOfLeft[L] = int(R);
        Res.MatchOfRight[R] = int(L);
        return true;
      }
    }
    Dist[L] = Inf;
    return false;
  };

  while (Bfs()) {
    StatHKPhases.add();
    for (unsigned L = 0; L != N; ++L)
      if (Res.MatchOfLeft[L] < 0 && Dfs(Dfs, L)) {
        ++Res.Size;
        StatAugmentingPaths.add();
        StatMatchedPairs.add();
      }
  }
  return Res;
}
