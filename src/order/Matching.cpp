//===- order/Matching.cpp - Bipartite matching engines --------------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "order/Matching.h"

#include "obs/Stats.h"

#include <cassert>
#include <cstdint>
#include <deque>

using namespace ursa;

URSA_STAT(StatAugmentingPaths, "order.matching.augmenting_paths",
          "successful augmenting-path searches across both engines");
URSA_STAT(StatMatchedPairs, "order.matching.matched_pairs",
          "total matched pairs produced (matching sizes summed)");
URSA_STAT(StatHKPhases, "order.matching.hopcroft_karp_phases",
          "Hopcroft-Karp BFS phases run");
URSA_STAT(StatSeededPairs, "order.matching.seeded_pairs",
          "matched pairs installed by warm starts instead of augmentation");

IncrementalMatcher::IncrementalMatcher(unsigned NumVertices)
    : N(NumVertices), Adj(NumVertices) {
  Res.MatchOfLeft.assign(N, -1);
  Res.MatchOfRight.assign(N, -1);
  VisitedEpoch.assign(N, 0);
}

bool IncrementalMatcher::tryAugment(unsigned Root) {
  // Fresh epoch == all marks cleared. On (unsigned) wraparound the stale
  // array could alias epoch 1 again, so reset it explicitly.
  if (++CurEpoch == 0) {
    std::fill(VisitedEpoch.begin(), VisitedEpoch.end(), 0u);
    CurEpoch = 1;
  }

  // Iterative DFS, visiting rights in exactly the order the recursive
  // formulation did so the resulting matching is identical: try each
  // right of Left in Adj order; a free right ends the search, a matched
  // right descends into its current partner.
  Stack.clear();
  Stack.push_back({Root, 0, 0});
  while (!Stack.empty()) {
    Frame &F = Stack.back();
    if (F.NextEdge == Adj[F.Left].size()) {
      // Dead end; the parent frame resumes with its next edge.
      Stack.pop_back();
      continue;
    }
    unsigned Right = Adj[F.Left][F.NextEdge++];
    if (VisitedEpoch[Right] == CurEpoch)
      continue;
    VisitedEpoch[Right] = CurEpoch;
    int Other = Res.MatchOfRight[Right];
    if (Other >= 0) {
      F.TakenRight = Right;
      Stack.push_back({unsigned(Other), 0, 0});
      continue;
    }
    // Free right: flip matches along the whole stack (the recursive
    // unwind), deepest frame taking the free right.
    Res.MatchOfLeft[F.Left] = int(Right);
    Res.MatchOfRight[Right] = int(F.Left);
    for (unsigned D = unsigned(Stack.size()) - 1; D-- > 0;) {
      Res.MatchOfLeft[Stack[D].Left] = int(Stack[D].TakenRight);
      Res.MatchOfRight[Stack[D].TakenRight] = int(Stack[D].Left);
    }
    return true;
  }
  return false;
}

void IncrementalMatcher::seedMatching(
    const std::vector<std::pair<unsigned, unsigned>> &Pairs) {
  for (auto [L, R] : Pairs) {
    assert(L < N && R < N && "seed endpoint out of range");
    assert(Res.MatchOfLeft[L] < 0 && Res.MatchOfRight[R] < 0 &&
           "seed pair conflicts with an existing match");
    Res.MatchOfLeft[L] = int(R);
    Res.MatchOfRight[R] = int(L);
    ++Res.Size;
  }
  StatSeededPairs.add(Pairs.size());
  StatMatchedPairs.add(Pairs.size());
}

void IncrementalMatcher::addBatchAndAugment(
    const std::vector<std::pair<unsigned, unsigned>> &Edges) {
  for (auto [L, R] : Edges) {
    assert(L < N && R < N && "edge endpoint out of range");
    Adj[L].push_back(R);
  }
  // Re-augment every unmatched left vertex; matched vertices stay matched
  // (augmenting paths only extend the matching), which is what makes the
  // batch priorities sticky.
  for (unsigned L = 0; L != N; ++L) {
    if (Res.MatchOfLeft[L] >= 0 || Adj[L].empty())
      continue;
    if (tryAugment(L)) {
      ++Res.Size;
      StatAugmentingPaths.add();
      StatMatchedPairs.add();
    }
  }
}

MatchingResult
ursa::hopcroftKarp(unsigned N, const std::vector<std::vector<unsigned>> &Adj) {
  MatchingResult Res;
  Res.MatchOfLeft.assign(N, -1);
  Res.MatchOfRight.assign(N, -1);

  constexpr unsigned Inf = ~0u;
  std::vector<unsigned> Dist(N, Inf);

  auto Bfs = [&]() {
    std::deque<unsigned> Q;
    for (unsigned L = 0; L != N; ++L) {
      if (Res.MatchOfLeft[L] < 0) {
        Dist[L] = 0;
        Q.push_back(L);
      } else {
        Dist[L] = Inf;
      }
    }
    bool FoundFree = false;
    while (!Q.empty()) {
      unsigned L = Q.front();
      Q.pop_front();
      for (unsigned R : Adj[L]) {
        int L2 = Res.MatchOfRight[R];
        if (L2 < 0) {
          FoundFree = true;
        } else if (Dist[L2] == Inf) {
          Dist[L2] = Dist[L] + 1;
          Q.push_back(unsigned(L2));
        }
      }
    }
    return FoundFree;
  };

  // DFS along the layered structure — explicit stack; the recursive
  // version overflowed on deep-chain graphs whose augmenting paths
  // traverse most of the vertex set.
  struct Frame {
    unsigned L;
    unsigned NextEdge;
    unsigned TakenRight;
  };
  std::vector<Frame> Stack;
  auto Dfs = [&](unsigned Root) -> bool {
    Stack.clear();
    Stack.push_back({Root, 0, 0});
    while (!Stack.empty()) {
      Frame &F = Stack.back();
      if (F.NextEdge == Adj[F.L].size()) {
        Dist[F.L] = Inf;
        Stack.pop_back();
        continue;
      }
      unsigned R = Adj[F.L][F.NextEdge++];
      int L2 = Res.MatchOfRight[R];
      if (L2 >= 0) {
        if (Dist[unsigned(L2)] == Dist[F.L] + 1) {
          F.TakenRight = R;
          Stack.push_back({unsigned(L2), 0, 0});
        }
        continue;
      }
      // Free right: augment along the stack.
      Res.MatchOfLeft[F.L] = int(R);
      Res.MatchOfRight[R] = int(F.L);
      for (unsigned D = unsigned(Stack.size()) - 1; D-- > 0;) {
        Res.MatchOfLeft[Stack[D].L] = int(Stack[D].TakenRight);
        Res.MatchOfRight[Stack[D].TakenRight] = int(Stack[D].L);
      }
      return true;
    }
    return false;
  };

  while (Bfs()) {
    StatHKPhases.add();
    for (unsigned L = 0; L != N; ++L)
      if (Res.MatchOfLeft[L] < 0 && Dfs(L)) {
        ++Res.Size;
        StatAugmentingPaths.add();
        StatMatchedPairs.add();
      }
  }
  return Res;
}
