//===- ursa/Report.cpp - Human- and machine-readable reports --------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ursa/Report.h"

#include "obs/Json.h"
#include "obs/Stats.h"
#include "support/Table.h"

#include <cstdio>
#include <sstream>

using namespace ursa;

namespace {

/// Shared pre-measurement: the untransformed DAG's requirements.
std::vector<Measurement> measureBefore(const DependenceDAG &Original,
                                       const MachineModel &M) {
  DAGAnalysis A(Original);
  HammockForest HF(Original, A);
  return measureAll(Original, A, HF, M);
}

const char *kindName(TransformProposal::KindT K) {
  switch (K) {
  case TransformProposal::FUSequence:
    return "fu-seq";
  case TransformProposal::RegSequence:
    return "reg-seq";
  case TransformProposal::Spill:
    return "spill";
  }
  return "?";
}

} // namespace

std::string ursa::formatAllocationReport(const DependenceDAG &Original,
                                         const URSAResult &Result,
                                         const MachineModel &M) {
  std::ostringstream OS;
  std::vector<Measurement> Before = measureBefore(Original, M);
  auto Limits = machineResources(M);

  OS << "URSA allocation report — machine " << M.describe() << "\n";
  Table Tbl({"resource", "limit", "worst case before", "after", "fits"});
  for (unsigned I = 0; I != Limits.size(); ++I)
    Tbl.addRow({Limits[I].first.describe(),
                Table::fmt(uint64_t(Limits[I].second)),
                Table::fmt(uint64_t(Before[I].MaxRequired)),
                Table::fmt(uint64_t(Result.FinalRequired[I])),
                Result.FinalRequired[I] <= Limits[I].second ? "yes" : "NO"});
  Tbl.print(OS);

  OS << "\n" << Result.Rounds << " transformation rounds: "
     << Result.SeqEdgesAdded << " sequence edges, " << Result.SpillsInserted
     << " spills; critical path " << Result.CritPathBefore << " -> "
     << Result.CritPathAfter << "\n";
  if (!Result.StopReasons.empty()) {
    OS << "stopped early:";
    for (const std::string &Reason : Result.StopReasons)
      OS << " " << Reason;
    OS << "\n";
  }
  if (!Result.WithinLimits)
    OS << "residual excess remains; the assignment phase will spill "
          "on demand\n";
  if (!Result.RoundLog.empty()) {
    OS << "rounds:\n";
    for (const RoundRecord &RR : Result.RoundLog)
      OS << "  " << RR.describe() << "\n";
  }
  return OS.str();
}

void ursa::writeRoundLogJSON(obs::JsonWriter &W,
                             const std::vector<RoundRecord> &RoundLog) {
  W.beginArray();
  for (const RoundRecord &RR : RoundLog) {
    W.beginObject();
    W.kv("round", RR.Round);
    W.kv("kind", kindName(RR.Kind));
    W.kv("resource", RR.Resource);
    W.kv("detail", RR.Detail);
    W.kv("excess_before", RR.ExcessBefore);
    W.kv("excess_after", RR.ExcessAfter);
    W.kv("crit_path", RR.CritPath);
    W.kv("edges_added", RR.EdgesAdded);
    W.kv("spills_inserted", RR.SpillsInserted);
    W.kv("proposals_tried", RR.ProposalsTried);
    W.kv("duration_ms", RR.DurationMs);
    W.endObject();
  }
  W.endArray();
}

std::string ursa::formatAllocationReportJSON(const DependenceDAG &Original,
                                             const URSAResult &Result,
                                             const MachineModel &M,
                                             bool IncludeStats) {
  std::vector<Measurement> Before = measureBefore(Original, M);
  auto Limits = machineResources(M);

  obs::JsonWriter W;
  W.beginObject();
  W.kv("schema", "ursa.allocation_report.v1");
  W.key("machine").beginObject();
  W.kv("name", M.describe());
  W.key("resources").beginArray();
  for (const auto &[Res, Limit] : Limits) {
    W.beginObject();
    W.kv("resource", Res.describe());
    W.kv("limit", Limit);
    W.endObject();
  }
  W.endArray();
  W.endObject();

  W.key("requirements").beginArray();
  for (unsigned I = 0; I != Limits.size(); ++I) {
    W.beginObject();
    W.kv("resource", Limits[I].first.describe());
    W.kv("limit", Limits[I].second);
    W.kv("before", Before[I].MaxRequired);
    W.kv("after", Result.FinalRequired[I]);
    W.kv("fits", Result.FinalRequired[I] <= Limits[I].second);
    W.endObject();
  }
  W.endArray();

  W.key("critical_path").beginObject();
  W.kv("before", Result.CritPathBefore);
  W.kv("after", Result.CritPathAfter);
  W.endObject();

  W.key("accounting").beginObject();
  W.kv("rounds", Result.Rounds);
  W.kv("seq_edges_added", Result.SeqEdgesAdded);
  W.kv("spills_inserted", Result.SpillsInserted);
  W.kv("within_limits", Result.WithinLimits);
  W.kv("verify_failed", Result.VerifyFailed);
  W.kv("livelock_detected", Result.LivelockDetected);
  W.kv("budget_exhausted", Result.BudgetExhausted);
  W.kv("fallback_used", Result.FallbackUsed);
  W.endObject();

  W.key("closure").beginObject();
  W.kv("representation", Result.ClosureRepUsed);
  W.kv("peak_bytes", uint64_t(Result.ClosureBytesPeak));
  W.endObject();

  W.key("stop_reasons").beginArray();
  for (const std::string &Reason : Result.StopReasons)
    W.value(Reason);
  W.endArray();

  W.key("round_log");
  writeRoundLogJSON(W, Result.RoundLog);

  W.key("diags").beginArray();
  for (const Diag &Dg : Result.Diags)
    W.value(Dg.str());
  W.endArray();

  if (IncludeStats) {
    W.key("stats").beginObject();
    for (const obs::StatValue &SV : obs::snapshotStats(/*NonZeroOnly=*/true))
      W.kv(SV.Name, SV.Value);
    W.endObject();
  }
  W.endObject();
  return W.str();
}

std::string ursa::formatCompileText(const std::string &Pipeline,
                                    const MachineModel &M,
                                    const CompileResult &R, bool EmitStats,
                                    bool EmitAsm) {
  std::string Out;
  if (EmitStats) {
    char Buf[192];
    std::snprintf(Buf, sizeof(Buf),
                  "; %s on %s: %u cycles, %u spill ops, %.0f%% utilization\n",
                  Pipeline.c_str(), M.describe().c_str(), R.Cycles, R.SpillOps,
                  100 * R.Utilization);
    Out += Buf;
  }
  if (EmitAsm && R.Prog)
    Out += R.Prog->str();
  return Out;
}
