//===- ursa/Report.cpp - Human-readable allocation reports ----------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ursa/Report.h"

#include "support/Table.h"

#include <sstream>

using namespace ursa;

std::string ursa::formatAllocationReport(const DependenceDAG &Original,
                                         const URSAResult &Result,
                                         const MachineModel &M) {
  std::ostringstream OS;
  DAGAnalysis A(Original);
  HammockForest HF(Original, A);
  std::vector<Measurement> Before = measureAll(Original, A, HF, M);
  auto Limits = machineResources(M);

  OS << "URSA allocation report — machine " << M.describe() << "\n";
  Table Tbl({"resource", "limit", "worst case before", "after", "fits"});
  for (unsigned I = 0; I != Limits.size(); ++I)
    Tbl.addRow({Limits[I].first.describe(),
                Table::fmt(uint64_t(Limits[I].second)),
                Table::fmt(uint64_t(Before[I].MaxRequired)),
                Table::fmt(uint64_t(Result.FinalRequired[I])),
                Result.FinalRequired[I] <= Limits[I].second ? "yes" : "NO"});
  Tbl.print(OS);

  OS << "\n" << Result.Rounds << " transformation rounds: "
     << Result.SeqEdgesAdded << " sequence edges, " << Result.SpillsInserted
     << " spills; critical path " << Result.CritPathBefore << " -> "
     << Result.CritPathAfter << "\n";
  if (!Result.WithinLimits)
    OS << "residual excess remains; the assignment phase will spill "
          "on demand\n";
  if (!Result.Log.empty()) {
    OS << "rounds:\n";
    for (const std::string &L : Result.Log)
      OS << "  " << L << "\n";
  }
  return OS.str();
}
