//===- ursa/CacheImage.cpp - Crash-safe measurement-cache images ----------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ursa/CacheImage.h"

#include "graph/DAG.h"
#include "obs/Stats.h"
#include "ursa/PipelineVerifier.h"

#include <array>
#include <cctype>
#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace ursa;

URSA_STAT(StatImageAppends, "ursa.cache_image.journal_appends",
          "cache entries appended to the persistence journal");
URSA_STAT(StatImageSnapshots, "ursa.cache_image.snapshots",
          "cache-image snapshots written (periodic + drain)");
URSA_STAT(StatImageLoaded, "ursa.cache_image.loaded_entries",
          "cache entries rebuilt warm from a persisted image");
URSA_STAT(StatImageSkipped, "ursa.cache_image.skipped_entries",
          "persisted cache entries skipped as corrupt or stale");
URSA_STAT(StatImageRejectedFiles, "ursa.cache_image.rejected_files",
          "image files rejected whole (bad magic or foreign header)");

static constexpr char Magic[8] = {'U', 'R', 'S', 'A', 'C', 'I', 'M', '1'};
static constexpr uint32_t FormatVersion = 1;
/// One serialized DAG should be tiny; anything near this limit means the
/// stream is out of sync and the rest of the file cannot be trusted.
static constexpr size_t MaxRecordBytes = 32u << 20;

//===----------------------------------------------------------------------===//
// CRC-32
//===----------------------------------------------------------------------===//

uint32_t ursa::crc32(const void *Data, size_t Len) {
  static const auto Table = [] {
    std::array<uint32_t, 256> T{};
    for (uint32_t I = 0; I != 256; ++I) {
      uint32_t C = I;
      for (int K = 0; K != 8; ++K)
        C = (C & 1) ? 0xEDB88320u ^ (C >> 1) : C >> 1;
      T[I] = C;
    }
    return T;
  }();
  uint32_t C = 0xFFFFFFFFu;
  const unsigned char *P = static_cast<const unsigned char *>(Data);
  for (size_t I = 0; I != Len; ++I)
    C = Table[(C ^ P[I]) & 0xFF] ^ (C >> 8);
  return C ^ 0xFFFFFFFFu;
}

//===----------------------------------------------------------------------===//
// Payload encoding (big-endian, append-only)
//===----------------------------------------------------------------------===//

static void putU8(std::string &B, uint8_t V) { B.push_back(char(V)); }

static void putU32(std::string &B, uint32_t V) {
  B.push_back(char(V >> 24));
  B.push_back(char(V >> 16));
  B.push_back(char(V >> 8));
  B.push_back(char(V));
}

static void putU64(std::string &B, uint64_t V) {
  putU32(B, uint32_t(V >> 32));
  putU32(B, uint32_t(V));
}

static void putI32(std::string &B, int32_t V) { putU32(B, uint32_t(V)); }
static void putI64(std::string &B, int64_t V) { putU64(B, uint64_t(V)); }

static void putStr(std::string &B, const std::string &S) {
  putU32(B, uint32_t(S.size()));
  B += S;
}

/// Bounds-checked cursor over a payload; any overrun latches Bad.
namespace {
struct Reader {
  const std::string &B;
  size_t Pos = 0;
  bool Bad = false;

  explicit Reader(const std::string &Buf) : B(Buf) {}

  bool take(size_t N) {
    if (Bad || B.size() - Pos < N) {
      Bad = true;
      return false;
    }
    return true;
  }
  uint8_t u8() {
    if (!take(1))
      return 0;
    return uint8_t(B[Pos++]);
  }
  uint32_t u32() {
    if (!take(4))
      return 0;
    uint32_t V = (uint32_t(uint8_t(B[Pos])) << 24) |
                 (uint32_t(uint8_t(B[Pos + 1])) << 16) |
                 (uint32_t(uint8_t(B[Pos + 2])) << 8) |
                 uint32_t(uint8_t(B[Pos + 3]));
    Pos += 4;
    return V;
  }
  uint64_t u64() {
    uint64_t Hi = u32();
    return (Hi << 32) | u32();
  }
  int32_t i32() { return int32_t(u32()); }
  int64_t i64() { return int64_t(u64()); }
  std::string str() {
    uint32_t N = u32();
    if (N > MaxRecordBytes || !take(N))
      return std::string();
    std::string S = B.substr(Pos, N);
    Pos += N;
    return S;
  }
  bool done() const { return !Bad && Pos == B.size(); }
};
} // namespace

std::string ursa::encodeCacheEntry(uint64_t Fp, const DependenceDAG &D) {
  const Trace &T = D.trace();
  std::string B;
  putU64(B, Fp);
  putStr(B, T.name());

  putU32(B, T.numVRegs());
  for (unsigned V = 0; V != T.numVRegs(); ++V)
    putU8(B, uint8_t(T.vregDomain(int(V))));

  putU32(B, T.numSymbols());
  for (unsigned S = 0; S != T.numSymbols(); ++S)
    putStr(B, T.symbolName(int(S)));

  putU32(B, T.numSpillSlots());

  putU32(B, T.size());
  for (unsigned I = 0; I != T.size(); ++I) {
    const Instruction &In = T.instr(I);
    putU8(B, uint8_t(In.opcode()));
    putU8(B, uint8_t(In.domain()));
    putI32(B, In.dest());
    for (unsigned S = 0; S != 3; ++S)
      putI32(B, S < In.numOperands() ? In.operand(S) : -1);
    putI32(B, In.symbol());
    putI32(B, In.spillSlot());
    putI64(B, In.intImm());
    double F = In.fltImm();
    uint64_t FBits;
    std::memcpy(&FBits, &F, sizeof(FBits));
    putU64(B, FBits);
  }

  putU32(B, D.numEdges());
  for (unsigned N = 0; N != D.size(); ++N)
    for (const auto &[To, Kind] : D.succs(N)) {
      putU32(B, N);
      putU32(B, To);
      putU8(B, uint8_t(Kind));
    }
  return B;
}

StatusOr<std::unique_ptr<DependenceDAG>>
ursa::decodeCacheEntry(const std::string &Payload, uint64_t &Fp) {
  auto Err = [](const std::string &M) {
    return Status::error("cache_image", M);
  };
  Reader R(Payload);
  Fp = R.u64();
  std::string Name = R.str();

  Trace T(Name);

  uint32_t NumVRegs = R.u32();
  if (NumVRegs > MaxRecordBytes)
    return Err("implausible vreg count");
  for (uint32_t V = 0; V != NumVRegs && !R.Bad; ++V) {
    uint8_t Dom = R.u8();
    if (Dom > uint8_t(Domain::Float))
      return Err("bad vreg domain");
    T.newVReg(Domain(Dom));
  }

  uint32_t NumSyms = R.u32();
  if (NumSyms > MaxRecordBytes)
    return Err("implausible symbol count");
  for (uint32_t S = 0; S != NumSyms && !R.Bad; ++S)
    if (T.internSymbol(R.str()) != int(S))
      return Err("duplicate symbol name in entry");

  uint32_t NumSlots = R.u32();
  if (NumSlots > MaxRecordBytes)
    return Err("implausible spill-slot count");
  for (uint32_t S = 0; S != NumSlots; ++S)
    T.newSpillSlot();

  uint32_t NumInstrs = R.u32();
  if (NumInstrs > MaxRecordBytes)
    return Err("implausible instruction count");
  for (uint32_t I = 0; I != NumInstrs && !R.Bad; ++I) {
    uint8_t Op = R.u8();
    uint8_t Dom = R.u8();
    int32_t Dest = R.i32();
    int32_t Srcs[3] = {R.i32(), R.i32(), R.i32()};
    int32_t Sym = R.i32();
    int32_t Slot = R.i32();
    int64_t IntImm = R.i64();
    uint64_t FBits = R.u64();
    if (R.Bad)
      break;
    if (Op >= numOpcodes())
      return Err("unknown opcode " + std::to_string(Op));
    if (Dom > uint8_t(Domain::Float))
      return Err("bad instruction domain");
    Instruction In{Opcode(Op)};
    In.setDomain(Domain(Dom));
    if (Dest >= 0) {
      if (!definesValue(In.opcode()) || uint32_t(Dest) >= NumVRegs)
        return Err("bad destination vreg");
      In.setDest(Dest);
    }
    for (unsigned S = 0; S != In.numOperands(); ++S) {
      if (Srcs[S] < -1 || (Srcs[S] >= 0 && uint32_t(Srcs[S]) >= NumVRegs))
        return Err("operand vreg out of range");
      if (Srcs[S] >= 0)
        In.setOperand(S, Srcs[S]);
    }
    if (Sym >= 0) {
      if (uint32_t(Sym) >= NumSyms)
        return Err("symbol index out of range");
      In.setSymbol(Sym);
    }
    if (Slot >= 0) {
      if (uint32_t(Slot) >= NumSlots)
        return Err("spill slot out of range");
      In.setSpillSlot(Slot);
    }
    In.setIntImm(IntImm);
    double F;
    std::memcpy(&F, &FBits, sizeof(F));
    In.setFltImm(F);
    T.append(In);
  }

  auto D = std::make_unique<DependenceDAG>(std::move(T));

  uint32_t NumEdges = R.u32();
  if (NumEdges > MaxRecordBytes)
    return Err("implausible edge count");
  for (uint32_t E = 0; E != NumEdges && !R.Bad; ++E) {
    uint32_t From = R.u32();
    uint32_t To = R.u32();
    uint8_t Kind = R.u8();
    if (R.Bad)
      break;
    if (From >= D->size() || To >= D->size() || From == To)
      return Err("edge endpoint out of range");
    if (Kind > uint8_t(EdgeKind::Sequence))
      return Err("bad edge kind");
    D->addEdge(From, To, EdgeKind(Kind));
  }

  if (!R.done())
    return Err("truncated or oversized entry payload");
  return D;
}

//===----------------------------------------------------------------------===//
// File records
//===----------------------------------------------------------------------===//

static bool writeRecord(std::FILE *F, const std::string &Payload) {
  std::string Rec;
  Rec.reserve(Payload.size() + 8);
  putU32(Rec, uint32_t(Payload.size()));
  Rec += Payload;
  putU32(Rec, crc32(Payload.data(), Payload.size()));
  return std::fwrite(Rec.data(), 1, Rec.size(), F) == Rec.size();
}

/// Reads one record. Returns false at end of usable data; \p Torn is set
/// when the file ends mid-record or the CRC fails (the scan must stop —
/// nothing after a torn record can be trusted).
static bool readRecord(std::FILE *F, std::string &Payload, bool &Torn) {
  Torn = false;
  unsigned char Hdr[4];
  size_t N = std::fread(Hdr, 1, 4, F);
  if (N == 0)
    return false; // clean EOF
  if (N != 4) {
    Torn = true;
    return false;
  }
  size_t Len = (size_t(Hdr[0]) << 24) | (size_t(Hdr[1]) << 16) |
               (size_t(Hdr[2]) << 8) | size_t(Hdr[3]);
  if (Len > MaxRecordBytes) {
    Torn = true;
    return false;
  }
  Payload.resize(Len);
  if (Len && std::fread(Payload.data(), 1, Len, F) != Len) {
    Torn = true;
    return false;
  }
  unsigned char CrcB[4];
  if (std::fread(CrcB, 1, 4, F) != 4) {
    Torn = true;
    return false;
  }
  uint32_t Want = (uint32_t(CrcB[0]) << 24) | (uint32_t(CrcB[1]) << 16) |
                  (uint32_t(CrcB[2]) << 8) | uint32_t(CrcB[3]);
  if (crc32(Payload.data(), Payload.size()) != Want) {
    Torn = true;
    return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// CachePersister
//===----------------------------------------------------------------------===//

static std::string sanitizeKey(const std::string &Key) {
  std::string Out = Key;
  for (char &C : Out)
    if (!std::isalnum(static_cast<unsigned char>(C)) && C != '.' && C != '-' &&
        C != '_')
      C = '_';
  return Out.empty() ? std::string("default") : Out;
}

CachePersister::CachePersister(std::string DirIn, std::string MachineKey,
                               MeasureOptions MOIn)
    : Dir(std::move(DirIn)), Key(std::move(MachineKey)), MO(MOIn) {
  ::mkdir(Dir.c_str(), 0755); // EEXIST is the common case
  std::string Base = Dir + "/" + sanitizeKey(Key);
  SnapPath = Base + ".ursacache";
  JourPath = Base + ".journal";
}

CachePersister::~CachePersister() {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Journal)
    std::fclose(Journal);
}

StatusOr<std::string> CachePersister::readImageKey(const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return Status::error("cache_image", Path + ": cannot open");
  char M[8];
  if (std::fread(M, 1, 8, F) != 8 || std::memcmp(M, Magic, 8) != 0) {
    std::fclose(F);
    return Status::error("cache_image", Path + ": not a cache image");
  }
  std::string Payload;
  bool Torn = false;
  bool GotHeader = readRecord(F, Payload, Torn);
  std::fclose(F);
  if (!GotHeader)
    return Status::error("cache_image", Path + ": unreadable header record");
  Reader R(Payload);
  if (R.u32() != FormatVersion)
    return Status::error("cache_image", Path + ": foreign format version");
  (void)R.u8();  // MeasureOptions::PrioritizedMatching
  (void)R.i32(); // MeasureOptions::KillSolver
  std::string Key = R.str();
  if (R.Bad || Key.empty())
    return Status::error("cache_image", Path + ": malformed header");
  return Key;
}

std::string CachePersister::headerPayload() const {
  std::string B;
  putU32(B, FormatVersion);
  putU8(B, MO.PrioritizedMatching ? 1 : 0);
  putI32(B, MO.KillSolver);
  putStr(B, Key);
  return B;
}

void CachePersister::readImageFile(const std::string &Path,
                                   std::map<uint64_t, std::string> &Out,
                                   Status &Warnings) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return; // no image yet: cold start
  auto Warn = [&](const std::string &M) {
    Warnings.add({Severity::Warning, "cache_image", Path + ": " + M});
  };
  char M[8];
  if (std::fread(M, 1, 8, F) != 8 || std::memcmp(M, Magic, 8) != 0) {
    Warn("bad magic; ignoring file");
    StatImageRejectedFiles.add();
    std::fclose(F);
    return;
  }
  std::string Payload;
  bool Torn = false;
  if (!readRecord(F, Payload, Torn) || Payload != headerPayload()) {
    Warn(Torn ? "torn header record; ignoring file"
              : "header from another machine key, measure options, or "
                "format version; ignoring file");
    StatImageRejectedFiles.add();
    std::fclose(F);
    return;
  }
  while (readRecord(F, Payload, Torn)) {
    if (Payload.size() < 8) {
      Warn("runt entry record; stopping scan");
      StatImageSkipped.add();
      break;
    }
    Reader R(Payload);
    uint64_t Fp = R.u64();
    Out.emplace(Fp, Payload); // keep-first: snapshot wins over journal dup
  }
  if (Torn)
    Warn("torn tail record (interrupted write); later entries dropped");
  std::fclose(F);
}

Status CachePersister::load(MeasurementCache &Cache, const MachineModel &M) {
  std::lock_guard<std::mutex> Lock(Mu);
  Status Report;
  std::map<uint64_t, std::string> OnDisk;
  readImageFile(SnapPath, OnDisk, Report);
  readImageFile(JourPath, OnDisk, Report);

  Loaded = 0;
  for (auto &[Fp, Payload] : OnDisk) {
    uint64_t DecodedFp = 0;
    auto DOr = decodeCacheEntry(Payload, DecodedFp);
    if (!DOr) {
      Report.add({Severity::Warning, "cache_image",
                  "entry " + std::to_string(Fp) +
                      " skipped: " + DOr.status().message()});
      StatImageSkipped.add();
      continue;
    }
    DependenceDAG &D = **DOr;
    Status StructSt = verifyDAGStructure(D);
    if (!StructSt.isOk() || dagFingerprint(D) != DecodedFp) {
      Report.add({Severity::Warning, "cache_image",
                  "entry " + std::to_string(Fp) + " skipped: " +
                      (StructSt.isOk() ? "fingerprint mismatch (stale entry)"
                                       : StructSt.message())});
      StatImageSkipped.add();
      continue;
    }
    Cache.insert(DecodedFp, std::make_shared<const MeasuredState>(D, M, MO));
    Payloads[DecodedFp] = Payload;
    ++Loaded;
    StatImageLoaded.add();
  }

  // Recovery checkpoint: compact everything usable into a fresh snapshot
  // and clear the journal, so a stale/torn journal never accumulates and
  // the next crash replays from a single good image.
  if (Loaded) {
    Status SnapSt = snapshotLocked();
    Report.merge(SnapSt);
  }
  return Report;
}

void CachePersister::append(uint64_t Fp, const DependenceDAG &D) {
  std::string Payload = encodeCacheEntry(Fp, D);
  std::lock_guard<std::mutex> Lock(Mu);
  if (!Payloads.emplace(Fp, std::move(Payload)).second)
    return;
  if (!Journal) {
    Journal = std::fopen(JourPath.c_str(), "ab");
    if (!Journal)
      return; // disk trouble degrades persistence, never compilation
    if (std::ftell(Journal) == 0) {
      std::fwrite(Magic, 1, 8, Journal);
      writeRecord(Journal, headerPayload());
    }
  }
  if (writeRecord(Journal, Payloads[Fp])) {
    std::fflush(Journal); // into the page cache: survives kill -9
    ++Dirty;
    StatImageAppends.add();
  }
}

Status CachePersister::snapshotLocked() {
  std::string Tmp = SnapPath + ".tmp";
  std::FILE *F = std::fopen(Tmp.c_str(), "wb");
  if (!F)
    return Status::error("cache_image",
                         "cannot write " + Tmp + ": " + std::strerror(errno));
  bool Ok = std::fwrite(Magic, 1, 8, F) == 8 && writeRecord(F, headerPayload());
  for (const auto &[Fp, Payload] : Payloads)
    Ok = Ok && writeRecord(F, Payload);
  Ok = Ok && std::fflush(F) == 0 && ::fsync(::fileno(F)) == 0;
  std::fclose(F);
  if (!Ok || std::rename(Tmp.c_str(), SnapPath.c_str()) != 0) {
    ::unlink(Tmp.c_str());
    return Status::error("cache_image", "snapshot to " + SnapPath + " failed");
  }
  // Durability of the *name*, not just the bytes: rename() updates the
  // directory entry, and that update lives in the parent directory's
  // metadata. Without fsyncing the directory a crash right here can
  // come back with the pre-rename state — the fsync'd tmp file gone and
  // the snapshot name still pointing at the old image (or nothing).
  if (int DirFd = ::open(Dir.c_str(), O_RDONLY | O_DIRECTORY); DirFd >= 0) {
    ::fsync(DirFd);
    ::close(DirFd);
  }

  // The snapshot now holds every recorded entry; restart the journal.
  if (Journal)
    std::fclose(Journal);
  Journal = std::fopen(JourPath.c_str(), "wb");
  if (Journal) {
    std::fwrite(Magic, 1, 8, Journal);
    writeRecord(Journal, headerPayload());
    std::fflush(Journal);
  }
  Dirty = 0;
  StatImageSnapshots.add();
  return Status::ok();
}

Status CachePersister::snapshot() {
  std::lock_guard<std::mutex> Lock(Mu);
  return snapshotLocked();
}

unsigned CachePersister::entries() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return unsigned(Payloads.size());
}

unsigned CachePersister::dirtyEntries() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Dirty;
}
