//===- ursa/ChainAssign.cpp - Schedule-independent assignment -------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ursa/ChainAssign.h"

#include "order/Chains.h"
#include "ursa/ReuseDAG.h"

using namespace ursa;

unsigned ursa::guaranteedRegWidth(const DependenceDAG &D,
                                  const DAGAnalysis &A) {
  ReuseRelation R = buildSafeRegReuse(D, A);
  return decomposeChains(R.Rel, R.Active).width();
}

RegAssignment ursa::assignRegistersByChains(const DependenceDAG &D,
                                            const DAGAnalysis &A,
                                            const MachineModel &M) {
  RegAssignment RA;
  RA.PhysOf.assign(D.trace().numVRegs(), -1);

  auto AssignClass = [&](const ReuseRelation &R, unsigned Limit) {
    ChainDecomposition CD = decomposeChains(R.Rel, R.Active);
    RA.PeakLive = std::max<unsigned>(RA.PeakLive, CD.width());
    if (CD.width() > Limit)
      return false;
    for (unsigned C = 0; C != CD.Chains.size(); ++C)
      for (unsigned N : CD.Chains[C])
        RA.PhysOf[D.instrAt(N).dest()] = int(C);
    return true;
  };

  if (M.isHomogeneous()) {
    if (!AssignClass(buildSafeRegReuse(D, A),
                     M.numRegs(RegClassKind::GPR)))
      return RA;
  } else {
    if (!AssignClass(buildSafeRegReuseForClass(D, A, RegClassKind::GPR),
                     M.numRegs(RegClassKind::GPR)))
      return RA;
    if (!AssignClass(buildSafeRegReuseForClass(D, A, RegClassKind::FPR),
                     M.numRegs(RegClassKind::FPR)))
      return RA;
  }
  RA.Ok = true;
  return RA;
}
