//===- ursa/CacheImage.h - Crash-safe measurement-cache images --*- C++ -*-===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Disk persistence for MeasurementCache: the `ursa.cache_image.v1`
/// snapshot+journal format that lets a killed compile server restart warm.
///
/// A measured state is pure derived data — everything in it is a function
/// of (DAG, machine model, measure options) — so the image stores the
/// *inputs*: the trace and edge list of each cached DAG, keyed by its
/// dagFingerprint. On load the states are rebuilt; re-deriving is O(n^2)
/// per entry but happens once at startup, off the request path, which is
/// the trade the ROADMAP's fleet item asks for (never recompute cold *per
/// request*).
///
/// On-disk layout (one snapshot + one journal per machine key):
///
///   file    := magic "URSACIM1" , record*
///   record  := u32be payload_len , payload , u32be crc32(payload)
///
/// The first record is a header (format version, measure-option knobs,
/// machine key); every later record is one cache entry. The snapshot is
/// written to a temp file, fsynced, and renamed into place; the journal
/// is appended to and flushed after every entry, then truncated after
/// each successful snapshot. A `kill -9` at any point loses at most the
/// entry being written: a torn tail record fails its length or CRC check
/// and loading stops cleanly there.
///
/// Loading is tolerant by contract: a corrupt record, a stale header
/// (wrong version / machine key / measure options), or an entry whose
/// rebuilt DAG fails verification or fingerprint recomputation is skipped
/// with a warning Diag — never a crash, never a poisoned cache.
///
//===----------------------------------------------------------------------===//

#ifndef URSA_URSA_CACHEIMAGE_H
#define URSA_URSA_CACHEIMAGE_H

#include "support/Status.h"
#include "ursa/MeasureCache.h"

#include <cstdint>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>

namespace ursa {

class DependenceDAG;

/// CRC-32 (IEEE 802.3 polynomial) of \p Len bytes at \p Data. Guards
/// every cache-image record; also reusable by tests to build deliberately
/// valid-or-corrupt records.
uint32_t crc32(const void *Data, size_t Len);

/// Serializes one DAG (trace + edges) as a cache-image entry payload for
/// fingerprint \p Fp. Exposed for tests; production goes through
/// CachePersister.
std::string encodeCacheEntry(uint64_t Fp, const DependenceDAG &D);

/// Decodes an entry payload back into its fingerprint and DAG. Fails
/// (Status) on any structural nonsense: truncated payload, unknown
/// opcode, out-of-range vreg/symbol/node references, bad edge kind.
StatusOr<std::unique_ptr<DependenceDAG>> decodeCacheEntry(
    const std::string &Payload, uint64_t &Fp);

/// Persists one MeasurementCache to `<dir>/<sanitized key>.ursacache`
/// (snapshot) and `.journal` (append log). One instance per machine key;
/// all methods are thread-safe.
class CachePersister {
public:
  /// \p MachineKey identifies the machine model the cache is valid for
  /// (MachineSpec::key() at the service layer); it is embedded in the
  /// image header so a cache can never warm a differently-shaped machine.
  CachePersister(std::string Dir, std::string MachineKey, MeasureOptions MO);
  ~CachePersister();

  CachePersister(const CachePersister &) = delete;
  CachePersister &operator=(const CachePersister &) = delete;

  /// Reads just the machine key out of an image or journal file's header
  /// record (magic and CRC checked; entries untouched). Lets a starting
  /// server discover which machines a cache directory holds images for —
  /// and so warm them eagerly, off the request path — without knowing any
  /// key in advance. Fails on files that are not usable images.
  static StatusOr<std::string> readImageKey(const std::string &Path);

  /// Reads snapshot then journal, rebuilding each valid entry into
  /// \p Cache (deduplicated by fingerprint; entries also seed the next
  /// snapshot). Skipped entries and rejected files are reported as
  /// Warning diags on the returned Status; the Status itself is only an
  /// error for environmental failures (unreadable directory). Safe to
  /// call on a missing or empty directory — that is simply a cold start.
  Status load(MeasurementCache &Cache, const MachineModel &M);

  /// Records the DAG behind freshly built fingerprint \p Fp and appends
  /// it to the journal (flushed, so a crash right after still replays
  /// it). Duplicate fingerprints are ignored. Wire this to
  /// MeasurementCache::setBuildObserver.
  void append(uint64_t Fp, const DependenceDAG &D);

  /// Writes all recorded entries as a fresh snapshot (temp file + fsync +
  /// atomic rename) and truncates the journal.
  Status snapshot();

  /// Entries currently recorded (loaded + appended).
  unsigned entries() const;

  /// Entries successfully rebuilt by the last load().
  unsigned loadedEntries() const { return Loaded; }

  /// Journal appends since the last snapshot (drives periodic snapshots).
  unsigned dirtyEntries() const;

  const std::string &snapshotPath() const { return SnapPath; }
  const std::string &journalPath() const { return JourPath; }

private:
  std::string headerPayload() const;
  Status snapshotLocked();
  /// Reads records of \p Path; header mismatches reject the whole file,
  /// bad records stop the scan. Decoded entries land in Out (deduped).
  void readImageFile(const std::string &Path,
                     std::map<uint64_t, std::string> &Out, Status &Warnings);

  std::string Dir;
  std::string Key;
  MeasureOptions MO;
  std::string SnapPath;
  std::string JourPath;

  mutable std::mutex Mu;
  std::map<uint64_t, std::string> Payloads; ///< fp -> entry payload
  std::FILE *Journal = nullptr;
  unsigned Dirty = 0;  ///< journal records since last snapshot
  unsigned Loaded = 0; ///< entries rebuilt by the last load()
};

} // namespace ursa

#endif // URSA_URSA_CACHEIMAGE_H
