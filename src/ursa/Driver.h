//===- ursa/Driver.h - The URSA allocation driver ---------------*- C++ -*-===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The top-level URSA loop (paper Figure 1 and Section 5): measure every
/// resource, and while any requirement exceeds the machine, tentatively
/// apply each candidate transformation, remeasure, and keep the one that
/// best combines excess reduction with critical-path preservation.
///
/// Three phase orderings are supported. The paper recommends applying
/// both register transformations in one phase before the functional-unit
/// phase (Section 5's interaction analysis); the other orders exist for
/// the X3 ablation.
///
//===----------------------------------------------------------------------===//

#ifndef URSA_URSA_DRIVER_H
#define URSA_URSA_DRIVER_H

#include "graph/DAG.h"
#include "machine/MachineModel.h"
#include "support/Status.h"
#include "ursa/Measure.h"
#include "ursa/PipelineVerifier.h"
#include "ursa/Transforms.h"

#include <string>
#include <vector>

namespace ursa {

class FaultInjector;
class MeasurementCache;

/// Default for URSAOptions::IncrementalMeasure: true unless the
/// URSA_INCREMENTAL environment variable is set to "0"/"off"/"false"
/// (read per call, so tests can flip it).
bool defaultIncrementalMeasure();

/// Default measurement-cache capacity: the URSA_CACHE_SIZE environment
/// variable when set to a positive integer, else 4 (read per call).
unsigned defaultMeasurementCacheSize();

/// Default for URSAOptions::BeamWidth: the URSA_BEAM environment variable
/// when set to a positive integer, else 1 (the greedy driver; read per
/// call, so tests can flip it).
unsigned defaultBeamWidth();

/// Which resource's transformations run first.
enum class PhaseOrdering {
  RegistersFirst, ///< the paper's recommendation (Section 5)
  FUsFirst,
  Integrated ///< all transformations compete every round
};

/// Driver knobs.
struct URSAOptions {
  PhaseOrdering Order = PhaseOrdering::RegistersFirst;
  MeasureOptions Measure;
  /// Worker threads for the tentative apply+remeasure of each round's
  /// proposals (the driver's hot loop). 0 resolves through URSA_THREADS
  /// (default 1 = serial). Results are deterministic and bit-identical
  /// across thread counts: proposals are scored independently and reduced
  /// in proposal order, so Threads=1 always reproduces any parallel run.
  unsigned Threads = 0;
  /// Reuse measurements between identical DAG states (keyed on
  /// dagFingerprint): the round-start state, the winning proposal's
  /// remeasure, the sweep-end check, and the pre-fallback/final
  /// accounting share one build instead of five. Off = always rebuild
  /// (the pre-cache behavior, kept for benchmarking and as an escape
  /// hatch).
  bool MeasurementReuse = true;
  /// Score edge-only proposals (FU/register sequencing) through the
  /// incremental measurement engine (ursa/IncrementalMeasure.h): delta
  /// reachability closures plus warm-started chain matchings derived from
  /// the round-start state, instead of a full State build per scratch
  /// copy. Spill proposals and any delta the engine cannot prove safe
  /// fall back to the full rebuild. Results stay bit-identical either
  /// way: the incremental path computes only canonical quantities
  /// (per-resource widths, total excess, critical path) and is used only
  /// to *score* proposals — the winner is always re-measured in full, so
  /// chains, excessive sets, and every downstream decision are unchanged.
  /// Under VerifyLevel::Full each delta is differentially checked against
  /// a fresh rebuild. Defaults through URSA_INCREMENTAL (on unless 0).
  bool IncrementalMeasure = defaultIncrementalMeasure();
  /// Capacity (entries) of the fingerprint-keyed measurement cache; 0
  /// resolves through URSA_CACHE_SIZE, else 4. Deeper phase interleavings
  /// (long sweeps revisiting states) benefit from more entries;
  /// ursa.driver.measure_cache.evictions tells when 4 is too small.
  /// Ignored when SharedCache is set (the owner sized it).
  unsigned MeasurementCacheSize = 0;
  /// Beam width K for the transformation search. 1 = the paper's greedy
  /// keep-one-winner loop (the historical driver, bit-for-bit). K > 1
  /// keeps the top-K live states per round, deduplicated by
  /// dagFingerprint: every round scores all beam x proposals candidates
  /// across the thread pool, reduces them serially in (state, proposal)
  /// order — so results stay bit-identical at any thread count — and
  /// admits the K best never-worsening successors; the best final state
  /// wins. 0 resolves through URSA_BEAM (default 1). Fault-injection
  /// hooks (Faults) force the greedy path: their contracts are defined on
  /// the serial-recoverable keep-one loop.
  unsigned BeamWidth = 0;
  /// Race independent driver instances over phase orderings
  /// (register-first, FU-first, integrated) plus seeded tie-break
  /// perturbations of the configured order, all sharing one measurement
  /// cache, and keep the best final allocation (fewest total required
  /// resources, then critical path). Each instance runs the configured
  /// BeamWidth. TimeBudgetMs bounds the whole portfolio, not each racer.
  bool Portfolio = false;
  /// Deterministic tie-break perturbation: when non-zero, each round's
  /// proposal list is shuffled by this seed (mixed with the round
  /// ordinal) before evaluation. Scoring is order-independent; only
  /// exact-tie winners change. 0 = keep collection order (the historical
  /// behavior, bit-for-bit). Portfolio mode sets this on its perturbed
  /// racers.
  uint64_t TieBreakSeed = 0;
  /// Externally-owned measurement cache (ursa/MeasureCache.h), shared
  /// across runs: the compile service injects one server-scope instance
  /// so identical DAG states in different requests reuse each other's
  /// measurements. Null = the driver creates a private per-run cache
  /// sized by MeasurementCacheSize (the historical behavior). States are
  /// immutable and the cache is mutex-guarded, so concurrent runs may
  /// share one instance; results are bit-identical either way.
  MeasurementCache *SharedCache = nullptr;
  /// Safety valve; each round must reduce total excess, so this is
  /// rarely reached.
  unsigned MaxRounds = 128;
  /// Hard budget on applied rounds across all phases and sweeps. The
  /// default exceeds the worst legitimate case (sweeps * phases *
  /// MaxRounds), so it only fires on livelocked or faulty runs.
  unsigned MaxTotalRounds = 2048;
  /// Wall-clock budget in milliseconds; 0 = unlimited. When exceeded the
  /// driver stops transforming and (with GuaranteedFit) falls back.
  unsigned TimeBudgetMs = 0;
  /// Phase-boundary verification level (see ursa/PipelineVerifier.h).
  /// Defaults from the URSA_VERIFY environment variable.
  VerifyLevel Verify = defaultVerifyLevel();
  /// When the reduction phases leave residual excess (heuristics stuck,
  /// budget exhausted, livelock), force a fit: sequentialize the DAG into
  /// a total order and spill long-lived values until every requirement is
  /// within the machine. Off by default — the paper's design leaves small
  /// residues to the assignment phase.
  bool GuaranteedFit = false;
  /// Testing hook: an armed fault injector (see ursa/FaultInjector.h).
  FaultInjector *Faults = nullptr;
  /// Deprecated, ignored: the per-round log is now always collected as
  /// structured RoundRecords (URSAResult::RoundLog); render text with
  /// URSAResult::formatLog(). Kept so existing callers still compile.
  bool KeepLog = false;
  /// Ablation switches (X4): restrict the register transformations to
  /// sequencing only or spilling only.
  bool EnableSpills = true;
  bool EnableRegSeq = true;
};

/// One applied transformation round, structured for telemetry: which
/// transform won on which resource, what it did to the excess and the
/// critical path, and how long the round (measure + tentative evaluation
/// + apply) took. Replaces the old free-text KeepLog lines — formatLog()
/// renders the identical text from these records.
struct RoundRecord {
  unsigned Round = 0; ///< 1-based ordinal within the run
  TransformProposal::KindT Kind = TransformProposal::FUSequence;
  std::string Resource; ///< ResourceId::describe() of the target resource
  std::string Detail;   ///< the winning proposal's describe() string
  unsigned ExcessBefore = 0; ///< total excess entering the round
  unsigned ExcessAfter = 0;  ///< total excess after the kept transform
  unsigned CritPath = 0;     ///< critical path after the kept transform
  unsigned EdgesAdded = 0;
  unsigned SpillsInserted = 0;
  unsigned ProposalsTried = 0; ///< candidates tentatively applied
  double DurationMs = 0;

  /// The legacy log line ("spill[reg(gpr)]... (excess 5->4, cp 7)").
  std::string describe() const;
};

/// Result of the allocation phase: the transformed DAG, ready for
/// assignment, plus accounting.
struct URSAResult {
  DependenceDAG DAG;
  unsigned Rounds = 0;
  unsigned SeqEdgesAdded = 0;
  unsigned SpillsInserted = 0;
  /// True when every measured requirement fits the machine; otherwise the
  /// assignment phase must handle the residual (paper Section 2).
  bool WithinLimits = false;
  /// Requirement per machine resource after transformation, aligned with
  /// machineResources().
  std::vector<unsigned> FinalRequired;
  /// Unit-latency critical path before/after.
  unsigned CritPathBefore = 0;
  unsigned CritPathAfter = 0;
  /// Per-round telemetry, one record per applied transformation (always
  /// collected; bounded by MaxTotalRounds).
  std::vector<RoundRecord> RoundLog;
  /// Why the reduction loop stopped before removing all excess, when it
  /// did: "max_rounds", "max_total_rounds", "time_budget", "livelock",
  /// "verify_failed" — deduplicated, in first-trip order. Empty when the
  /// loop converged (no excess left or no applicable transforms). Both
  /// report formats surface these; the matching ursa.driver.stop.*
  /// counters trend them across runs.
  std::vector<std::string> StopReasons;

  /// Closure representation the final analysis used ("dense" or
  /// "blocked") and the largest closure footprint (bytes, both closures
  /// of one analysis) observed across the run's measured states — the
  /// number the 100k-node memory-wall gates watch.
  std::string ClosureRepUsed;
  size_t ClosureBytesPeak = 0;

  /// The old string log, rendered from RoundLog (compatibility shim).
  std::vector<std::string> formatLog() const;

  /// Guardrail accounting. VerifyFailed means a phase-boundary check
  /// found a broken invariant and allocation stopped early — the DAG must
  /// be considered corrupt and Diags explain why. The other flags record
  /// degradations on an otherwise sound result.
  bool VerifyFailed = false;
  bool LivelockDetected = false;
  bool BudgetExhausted = false;
  bool FallbackUsed = false;
  std::vector<Diag> Diags;

  explicit URSAResult(DependenceDAG D) : DAG(std::move(D)) {}
};

/// Runs URSA's measurement + reduction phases on \p D for machine \p M.
URSAResult runURSA(DependenceDAG D, const MachineModel &M,
                   const URSAOptions &Opts = {});

} // namespace ursa

#endif // URSA_URSA_DRIVER_H
