//===- ursa/PipelineVerifier.h - Phase-boundary invariant checks -*- C++ -*-===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Independent re-verification of the invariants each pipeline phase
/// promises the next (paper Figure 1 hands the assignment phase a DAG the
/// reduction phase claims fits the machine — this module *proves* the
/// hand-offs). The checks are deliberately written against the public
/// contracts, not the producing code, so a bug in a transform and a bug in
/// its verifier are independent events:
///
///  * DAG structure: acyclicity, mirrored succ/pred lists, in-range
///    endpoints, SSA trace, def->use edges present.
///  * Measurement: every chain decomposition truly partitions the Reuse
///    relation's active nodes, consecutive chain members are related, and
///    the width matches the reported requirement.
///  * Assignment: schedule respects dependence latencies and per-cycle FU
///    capacity (occupancy-aware), and no two values sharing a physical
///    register have overlapping live ranges.
///  * Semantics: interpreter vs. VLIW simulator on seeded random inputs.
///
/// The driver and compiler run these at phase boundaries according to
/// URSAOptions::Verify; the default level comes from the URSA_VERIFY
/// environment variable so whole test suites can be re-run under full
/// verification (ctest -L verify).
///
//===----------------------------------------------------------------------===//

#ifndef URSA_URSA_PIPELINEVERIFIER_H
#define URSA_URSA_PIPELINEVERIFIER_H

#include "graph/DAG.h"
#include "machine/MachineModel.h"
#include "sched/ListScheduler.h"
#include "sched/RegAssign.h"
#include "support/Status.h"
#include "ursa/Measure.h"
#include "vliw/VLIWProgram.h"

#include <cstdint>

namespace ursa {

/// How much phase-boundary verification the pipeline performs.
enum class VerifyLevel {
  None,  ///< trust every phase (production fast path)
  Basic, ///< structural checks: DAG shape, transform progress, assignment
  Full   ///< Basic + chain-decomposition audits + semantic equivalence
};

/// Parses "off"/"none"/"0", "basic"/"1", "full"/"2" (anything else: None).
VerifyLevel parseVerifyLevel(const char *S);

/// Level from the URSA_VERIFY environment variable, read once per process;
/// None when unset.
VerifyLevel defaultVerifyLevel();

/// Structural invariants of \p D: every edge endpoint in range, succ/pred
/// lists mirror each other, no self edges or duplicate pairs, the graph is
/// acyclic, the trace is SSA-clean, and every operand's definition has an
/// edge to the use. Works on arbitrarily corrupt DAGs without asserting
/// (it is the check that makes the rest of the pipeline safe to run).
Status verifyDAGStructure(const DependenceDAG &D);

/// Chain-decomposition invariants of one measurement: chains partition the
/// relation's active nodes, consecutive members are related (true
/// allocation chains, paper Definition 5), ChainOf agrees with Chains, and
/// width equals the reported requirement (Dilworth, paper Theorem 1).
Status verifyMeasurement(const Measurement &Meas);

/// verifyMeasurement over every resource.
Status verifyMeasurements(const std::vector<Measurement> &Meas);

/// Assignment-phase invariants on a scheduled, register-assigned DAG:
/// dependence edges respected with latencies, per-cycle FU capacity per
/// class (units stay busy for their occupancy), every used vreg mapped
/// in-range, and no two same-class values sharing a physical register
/// while simultaneously live.
Status verifyAssignment(const DependenceDAG &D, const Schedule &S,
                        const RegAssignment &RA, const MachineModel &M);

/// End-to-end semantic equivalence: runs \p Source through the reference
/// interpreter and \p P through the VLIW simulator on \p NumInputSets
/// seeded random memory states; any observable divergence (final memory or
/// branch log) is an error.
Status verifySemanticEquivalence(const Trace &Source, const VLIWProgram &P,
                                 unsigned NumInputSets = 3,
                                 uint64_t Seed = 0x5eedU);

/// Order-independent fingerprint of a DAG state (trace length + every edge
/// with its kind). The driver compares fingerprints around each transform
/// application to catch transforms that report progress without changing
/// anything.
uint64_t dagFingerprint(const DependenceDAG &D);

} // namespace ursa

#endif // URSA_URSA_PIPELINEVERIFIER_H
