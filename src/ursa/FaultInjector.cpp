//===- ursa/FaultInjector.cpp - Deterministic pipeline fault injection ----===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ursa/FaultInjector.h"

#include <algorithm>
#include <chrono>
#include <thread>

using namespace ursa;

bool FaultInjector::maybeInjectDAG(DependenceDAG &D, unsigned Round) {
  if (Kind == FaultKind::StallRound) {
    // Persistent, non-corrupting: every applied round from the armed one
    // on costs StallMs of wall clock, so a short TimeBudgetMs (or a
    // service deadline mapped onto it) trips deterministically.
    if (Round < FireAt)
      return false;
    Fired = true;
    std::this_thread::sleep_for(std::chrono::milliseconds(StallMs));
    return false;
  }
  if (Fired || Round < FireAt)
    return false;
  bool Did = false;
  switch (Kind) {
  case FaultKind::CycleEdge:
    Did = injectCycle(D, Rng);
    break;
  case FaultKind::DanglingEdge:
    Did = injectDanglingEdge(D, Rng);
    break;
  case FaultKind::DropSeqEdge:
    Did = dropSequenceEdge(D, Rng);
    break;
  case FaultKind::None:
  case FaultKind::FalseProgress:
  case FaultKind::StallRound:
    return false;
  }
  Fired |= Did;
  return Did;
}

bool FaultInjector::shouldFakeProgress(unsigned Round) {
  if (Kind != FaultKind::FalseProgress || Round < FireAt)
    return false;
  Fired = true;
  return true;
}

bool FaultInjector::injectCycle(DependenceDAG &D, RNG &Rng) {
  // Oppose an existing real edge: u -> v gains v -> u, a 2-cycle no
  // legitimate transform can create (addEdge only dedups the same
  // direction).
  std::vector<std::pair<unsigned, unsigned>> RealEdges;
  for (unsigned U = 2; U != D.size(); ++U)
    for (const auto &[V, K] : D.succs(U)) {
      (void)K;
      if (!DependenceDAG::isVirtual(V))
        RealEdges.emplace_back(U, V);
    }
  if (RealEdges.empty())
    return false;
  auto [U, V] = Rng.pick(RealEdges);
  D.addEdge(V, U, EdgeKind::Sequence);
  return true;
}

bool FaultInjector::injectDanglingEdge(DependenceDAG &D, RNG &Rng) {
  if (D.size() < 4)
    return false;
  // A successor-side-only half edge between two unrelated real nodes —
  // the signature of memory corruption or a buggy in-place mutation.
  unsigned U = 2 + unsigned(Rng.below(D.size() - 2));
  unsigned V = 2 + unsigned(Rng.below(D.size() - 2));
  if (U == V)
    V = U + 1 < D.size() ? U + 1 : U - 1;
  D.Succs[U].emplace_back(V, EdgeKind::Data);
  return true;
}

bool FaultInjector::dropSequenceEdge(DependenceDAG &D, RNG &Rng) {
  std::vector<std::pair<unsigned, unsigned>> SeqEdges;
  for (unsigned U = 2; U != D.size(); ++U)
    for (const auto &[V, K] : D.succs(U))
      if (K == EdgeKind::Sequence && !DependenceDAG::isVirtual(V))
        SeqEdges.emplace_back(U, V);
  if (SeqEdges.empty())
    return false;
  auto [U, V] = Rng.pick(SeqEdges);
  D.removeEdge(U, V);
  return true;
}

void FaultInjector::corruptSchedule(Schedule &S, RNG &Rng) {
  // Pile the ops of the last non-empty cycle onto the fullest cycle.
  int From = -1, Into = -1;
  unsigned Fullest = 0;
  for (unsigned C = 0; C != S.Cycles.size(); ++C)
    if (!S.Cycles[C].empty())
      From = int(C);
  for (unsigned C = 0; C != S.Cycles.size(); ++C)
    if (int(C) != From && S.Cycles[C].size() > Fullest) {
      Fullest = S.Cycles[C].size();
      Into = int(C);
    }
  if (From < 0 || Into < 0 || From == Into)
    return;
  (void)Rng;
  for (unsigned U : S.Cycles[From]) {
    S.Cycles[Into].push_back(U);
    S.CycleOf[U] = Into;
  }
  S.Cycles[From].clear();
}

void FaultInjector::corruptAssignment(const DependenceDAG &D,
                                      const Schedule &S, RegAssignment &RA) {
  // Find two same-class values that are simultaneously live and collapse
  // them onto one physical register.
  const Trace &T = D.trace();
  unsigned NV = T.numVRegs();
  std::vector<int> DefC(NV, -1), LastC(NV, -1);
  for (unsigned Idx = 0; Idx != T.size(); ++Idx) {
    const Instruction &I = T.instr(Idx);
    int Cyc = S.CycleOf[DependenceDAG::nodeOf(Idx)];
    if (I.dest() >= 0)
      DefC[I.dest()] = LastC[I.dest()] = Cyc;
    for (unsigned Op = 0; Op != I.numOperands(); ++Op)
      LastC[I.operand(Op)] = std::max(LastC[I.operand(Op)], Cyc);
  }
  for (unsigned V = 0; V != NV; ++V) {
    if (DefC[V] < 0 || V >= RA.PhysOf.size() || RA.PhysOf[V] < 0)
      continue;
    for (unsigned W = V + 1; W != NV; ++W) {
      if (DefC[W] < 0 || W >= RA.PhysOf.size() || RA.PhysOf[W] < 0 ||
          RA.PhysOf[W] == RA.PhysOf[V] ||
          T.vregClass(int(W)) != T.vregClass(int(V)))
        continue;
      bool Overlap = DefC[V] == DefC[W] ||
                     (DefC[W] < LastC[V] && DefC[V] < LastC[W]);
      if (Overlap) {
        RA.PhysOf[W] = RA.PhysOf[V];
        return;
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Wire-level faults
//===----------------------------------------------------------------------===//

const char *ursa::wireFaultName(WireFault F) {
  switch (F) {
  case WireFault::None:
    return "none";
  case WireFault::TruncatedFrame:
    return "truncated_frame";
  case WireFault::TornHeader:
    return "torn_header";
  case WireFault::StalledWrite:
    return "stalled_write";
  case WireFault::MidStreamDisconnect:
    return "mid_stream_disconnect";
  case WireFault::GarbageLength:
    return "garbage_length";
  }
  return "unknown";
}

/// Big-endian 4-byte frame header for \p Len.
static std::string frameHeader(uint32_t Len) {
  std::string H(4, '\0');
  H[0] = char(Len >> 24);
  H[1] = char(Len >> 16);
  H[2] = char(Len >> 8);
  H[3] = char(Len);
  return H;
}

Status ursa::injectWireFault(Socket &S, WireFault F, std::string_view Payload,
                             unsigned StallMs) {
  const std::string Hdr = frameHeader(uint32_t(Payload.size()));
  const std::string_view Half = Payload.substr(0, Payload.size() / 2);
  switch (F) {
  case WireFault::None:
    return S.sendFrame(Payload);

  case WireFault::TruncatedFrame: {
    // Honest header, half the payload, then a clean FIN: the peer must
    // report a mid-frame close, never block waiting for the rest.
    if (Status St = S.sendRaw(Hdr); !St.isOk())
      return St;
    if (Status St = S.sendRaw(Half); !St.isOk())
      return St;
    S.shutdown();
    return Status::ok();
  }

  case WireFault::TornHeader: {
    // The connection dies two bytes into the length prefix.
    if (Status St = S.sendRaw(std::string_view(Hdr).substr(0, 2)); !St.isOk())
      return St;
    S.shutdown();
    return Status::ok();
  }

  case WireFault::StalledWrite: {
    // A frame that simply stops making progress. The connection stays
    // open: healing is the peer's per-operation deadline, not our close.
    if (Status St = S.sendRaw(Hdr); !St.isOk())
      return St;
    if (Status St = S.sendRaw(Half); !St.isOk())
      return St;
    std::this_thread::sleep_for(std::chrono::milliseconds(StallMs));
    return Status::ok();
  }

  case WireFault::MidStreamDisconnect: {
    // Abrupt close halfway through the payload (no orderly shutdown).
    if (Status St = S.sendRaw(Hdr); !St.isOk())
      return St;
    if (Status St = S.sendRaw(Half); !St.isOk())
      return St;
    S.close();
    return Status::ok();
  }

  case WireFault::GarbageLength: {
    // A length prefix no peer should trust (4 GiB frame), followed by a
    // little junk so lazy readers that trust it start consuming.
    if (Status St = S.sendRaw(frameHeader(0xFFFFFFFFu)); !St.isOk())
      return St;
    return S.sendRaw("garbage-after-bogus-length");
  }
  }
  return Status::error("fault", "unknown wire fault");
}
