//===- ursa/PipelineVerifier.cpp - Phase-boundary invariant checks --------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ursa/PipelineVerifier.h"

#include "obs/Stats.h"

#include "ir/Interpreter.h"
#include "ir/Verifier.h"
#include "support/RNG.h"
#include "vliw/Simulator.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace ursa;

URSA_STAT(StatChecksRun, "ursa.verify.checks_run",
          "phase-boundary verifier checks executed");
URSA_STAT(StatChecksFailed, "ursa.verify.checks_failed",
          "phase-boundary verifier checks that found a violation");

/// Every public check funnels its result through here so the registry
/// sees one consistent run/failed pair per invocation.
static Status countedCheck(Status St) {
  StatChecksRun.add();
  if (!St.isOk())
    StatChecksFailed.add();
  return St;
}

VerifyLevel ursa::parseVerifyLevel(const char *S) {
  if (!S)
    return VerifyLevel::None;
  if (!std::strcmp(S, "basic") || !std::strcmp(S, "1"))
    return VerifyLevel::Basic;
  if (!std::strcmp(S, "full") || !std::strcmp(S, "2"))
    return VerifyLevel::Full;
  return VerifyLevel::None;
}

VerifyLevel ursa::defaultVerifyLevel() {
  static VerifyLevel Cached = parseVerifyLevel(std::getenv("URSA_VERIFY"));
  return Cached;
}

static Diag err(const char *Phase, std::string Msg) {
  return {Severity::Error, Phase, std::move(Msg)};
}

static std::string nodeStr(unsigned N) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "node %u", N);
  return Buf;
}

//===----------------------------------------------------------------------===//
// DAG structure
//===----------------------------------------------------------------------===//

static Status verifyDAGStructureImpl(const DependenceDAG &D) {
  Status St;
  unsigned N = D.size();
  const Trace &T = D.trace();
  if (N != T.size() + 2) {
    St.add(err("dag", "node count disagrees with trace length"));
    return St; // node/instr mapping broken; nothing below is meaningful
  }

  // Edge hygiene: endpoints in range, no self edges, succ/pred mirrored,
  // no duplicate pairs. A half-edge (present on one side only) is exactly
  // the "dangling edge" fault class.
  bool EdgesSane = true;
  auto CountEdge = [](const std::vector<std::pair<unsigned, EdgeKind>> &L,
                      unsigned Peer, EdgeKind K) {
    unsigned C = 0;
    for (const auto &[P, PK] : L)
      if (P == Peer && PK == K)
        ++C;
    return C;
  };
  for (unsigned U = 0; U != N; ++U) {
    for (const auto &[V, K] : D.succs(U)) {
      if (V >= N) {
        St.add(err("dag", nodeStr(U) + " has a successor edge to " +
                              "out-of-range " + nodeStr(V)));
        EdgesSane = false;
        continue;
      }
      if (V == U) {
        St.add(err("dag", nodeStr(U) + " has a self edge"));
        EdgesSane = false;
        continue;
      }
      unsigned Fwd = CountEdge(D.succs(U), V, K);
      unsigned Rev = CountEdge(D.preds(V), U, K);
      if (Fwd != Rev) {
        St.add(err("dag", "dangling edge " + nodeStr(U) + " -> " +
                              nodeStr(V) +
                              ": successor and predecessor lists disagree"));
        EdgesSane = false;
      }
      if (Fwd > 1) {
        St.add(err("dag", "duplicate edge " + nodeStr(U) + " -> " +
                              nodeStr(V)));
        EdgesSane = false;
      }
    }
    for (const auto &[V, K] : D.preds(U)) {
      if (V >= N) {
        St.add(err("dag", nodeStr(U) + " has a predecessor edge from " +
                              "out-of-range " + nodeStr(V)));
        EdgesSane = false;
        continue;
      }
      if (CountEdge(D.succs(V), U, K) == 0) {
        St.add(err("dag", "dangling edge " + nodeStr(V) + " -> " +
                              nodeStr(U) + ": present only on the " +
                              "predecessor side"));
        EdgesSane = false;
      }
    }
  }

  // Acyclicity via Kahn's algorithm over the successor lists alone, so a
  // one-sided corruption cannot hide a cycle.
  if (EdgesSane) {
    std::vector<unsigned> InDeg(N, 0);
    for (unsigned U = 0; U != N; ++U)
      for (const auto &[V, K] : D.succs(U)) {
        (void)K;
        ++InDeg[V];
      }
    std::vector<unsigned> Work;
    for (unsigned U = 0; U != N; ++U)
      if (InDeg[U] == 0)
        Work.push_back(U);
    unsigned Seen = 0;
    while (!Work.empty()) {
      unsigned U = Work.back();
      Work.pop_back();
      ++Seen;
      for (const auto &[V, K] : D.succs(U)) {
        (void)K;
        if (--InDeg[V] == 0)
          Work.push_back(V);
      }
    }
    if (Seen != N)
      St.add(err("dag", "graph contains a cycle (" +
                            std::to_string(N - Seen) + " of " +
                            std::to_string(N) +
                            " nodes unreachable from any source)"));
  }

  // Trace-level structure (SSA single-def, operand ranges, domains).
  // Transformed traces keep dominance in the DAG, not trace order.
  for (const std::string &P : verifyTrace(T, /*RequireDefBeforeUse=*/false))
    St.add(err("dag", "trace: " + P));

  // Dataflow edges: every operand's defining node must have an edge to the
  // use (spill rewiring moves these; losing one silently relaxes the
  // schedule and can miscompile).
  if (EdgesSane && St.isOk()) {
    std::vector<int> DefNode(T.numVRegs(), -1);
    for (unsigned Idx = 0; Idx != T.size(); ++Idx)
      if (T.instr(Idx).dest() >= 0)
        DefNode[T.instr(Idx).dest()] = int(DependenceDAG::nodeOf(Idx));
    for (unsigned Idx = 0; Idx != T.size(); ++Idx) {
      const Instruction &I = T.instr(Idx);
      for (unsigned S = 0; S != I.numOperands(); ++S) {
        int Def = DefNode[I.operand(S)];
        if (Def >= 0 &&
            !D.hasEdge(unsigned(Def), DependenceDAG::nodeOf(Idx)))
          St.add(err("dag", "missing def->use edge into " +
                                nodeStr(DependenceDAG::nodeOf(Idx))));
      }
    }
  }
  return St;
}

//===----------------------------------------------------------------------===//
// Chain decompositions
//===----------------------------------------------------------------------===//

static Status verifyMeasurementImpl(const Measurement &Meas) {
  Status St;
  const ChainDecomposition &CD = Meas.Chains;
  const ReuseRelation &R = Meas.Reuse;
  std::string Res = Meas.Res.describe();

  // Chains must partition exactly the active nodes.
  std::vector<unsigned> Covered;
  for (unsigned C = 0; C != CD.Chains.size(); ++C) {
    if (CD.Chains[C].empty())
      St.add(err("measure", Res + ": chain " + std::to_string(C) +
                                " is empty"));
    for (unsigned N : CD.Chains[C]) {
      Covered.push_back(N);
      if (N >= CD.ChainOf.size() || CD.ChainOf[N] != int(C))
        St.add(err("measure", Res + ": ChainOf disagrees with chain " +
                                  std::to_string(C) + " at " + nodeStr(N)));
    }
    // Consecutive members must be related — allocation chains are chains
    // *of the relation*, not arbitrary node lists (paper Definition 5).
    for (unsigned I = 1; I < CD.Chains[C].size(); ++I)
      if (!R.Rel.test(CD.Chains[C][I - 1], CD.Chains[C][I]))
        St.add(err("measure",
                   Res + ": chain " + std::to_string(C) +
                       " members are not ordered by the Reuse relation (" +
                       nodeStr(CD.Chains[C][I - 1]) + " !-> " +
                       nodeStr(CD.Chains[C][I]) + ")"));
  }
  std::vector<unsigned> Active = R.Active;
  std::sort(Covered.begin(), Covered.end());
  std::sort(Active.begin(), Active.end());
  if (Covered != Active)
    St.add(err("measure", Res + ": chains do not partition the active "
                              "nodes of the Reuse relation"));
  if (std::adjacent_find(Covered.begin(), Covered.end()) != Covered.end())
    St.add(err("measure", Res + ": a node appears in two chains"));

  // Dilworth accounting: the reported worst-case requirement IS the
  // decomposition width.
  if (CD.width() != Meas.MaxRequired)
    St.add(err("measure", Res + ": reported requirement " +
                              std::to_string(Meas.MaxRequired) +
                              " disagrees with decomposition width " +
                              std::to_string(CD.width())));

  // The relation itself must be a strict order over the active nodes.
  for (unsigned A : R.Active) {
    if (R.Rel.test(A, A))
      St.add(err("measure", Res + ": Reuse relation is reflexive at " +
                                nodeStr(A)));
    for (unsigned B : R.Active)
      if (A < B && R.Rel.test(A, B) && R.Rel.test(B, A))
        St.add(err("measure", Res + ": Reuse relation has a 2-cycle " +
                                  nodeStr(A) + " <-> " + nodeStr(B)));
  }
  return St;
}

Status ursa::verifyMeasurements(const std::vector<Measurement> &Meas) {
  Status St;
  for (const Measurement &M : Meas)
    St.merge(verifyMeasurement(M));
  return St;
}

//===----------------------------------------------------------------------===//
// Assignment phase
//===----------------------------------------------------------------------===//

static Status verifyAssignmentImpl(const DependenceDAG &D, const Schedule &S,
                                   const RegAssignment &RA,
                                   const MachineModel &M) {
  Status St;
  const Trace &T = D.trace();
  unsigned N = D.size();
  if (S.CycleOf.size() != N) {
    St.add(err("assign", "schedule covers a different DAG"));
    return St;
  }

  // Every real node scheduled, and Cycles[] agrees with CycleOf.
  for (unsigned U = 2; U != N; ++U)
    if (S.CycleOf[U] < 0)
      St.add(err("assign", nodeStr(U) + " is unscheduled"));
  for (unsigned C = 0; C != S.Cycles.size(); ++C)
    for (unsigned U : S.Cycles[C])
      if (U >= N || S.CycleOf[U] != int(C))
        St.add(err("assign", "cycle list disagrees with CycleOf at cycle " +
                                 std::to_string(C)));
  if (!St.isOk())
    return St;

  // Dependence edges with latencies: a data successor needs the result
  // (full latency); a sequence successor needs the FU slot clear
  // (occupancy) — mirrors the list scheduler's and simulator's contract.
  for (unsigned U = 2; U != N; ++U) {
    FUKind K = D.instrAt(U).fuKind();
    unsigned DataDone = unsigned(S.CycleOf[U]) + M.latency(K);
    unsigned SeqDone = unsigned(S.CycleOf[U]) + M.occupancy(K);
    for (const auto &[V, Kind] : D.succs(U)) {
      if (DependenceDAG::isVirtual(V))
        continue;
      unsigned Need = Kind == EdgeKind::Data ? DataDone : SeqDone;
      if (unsigned(S.CycleOf[V]) < Need)
        St.add(err("assign", "schedule violates edge " + nodeStr(U) +
                                 " -> " + nodeStr(V)));
    }
  }

  // Per-cycle FU capacity, occupancy-aware: each issued op holds one unit
  // of its class busy for occupancy() cycles.
  {
    unsigned Horizon = S.Length + 2;
    std::vector<std::vector<unsigned>> Busy(4);
    for (auto &B : Busy)
      B.assign(Horizon, 0);
    for (unsigned U = 2; U != N; ++U) {
      FUKind K = D.instrAt(U).fuKind();
      unsigned Class = M.isHomogeneous() ? 0u : unsigned(K);
      for (unsigned C = unsigned(S.CycleOf[U]),
                    E = std::min(Horizon, C + M.occupancy(K));
           C != E; ++C)
        ++Busy[Class][C];
    }
    for (unsigned Class = 0; Class != 4; ++Class) {
      unsigned Cap = M.isHomogeneous()
                         ? (Class == 0 ? M.numFUs(FUKind::Universal) : ~0u)
                         : M.numFUs(FUKind(Class));
      for (unsigned C = 0; C != Horizon; ++C)
        if (Busy[Class][C] > Cap) {
          char Buf[96];
          std::snprintf(Buf, sizeof(Buf),
                        "cycle %u over-subscribes FU class %u: %u busy, "
                        "capacity %u",
                        C, Class, Busy[Class][C], Cap);
          St.add(err("assign", Buf));
        }
    }
  }

  // Register mapping: every used vreg assigned in range, and no two
  // same-class values on one physical register with overlapping live
  // ranges [def issue, last use issue].
  {
    unsigned NV = T.numVRegs();
    // On homogeneous machines the single register file serves every value
    // regardless of domain — mirror assignRegisters' classing.
    auto ClassOf = [&](unsigned V) {
      return M.isHomogeneous() ? RegClassKind::GPR : T.vregClass(int(V));
    };
    std::vector<int> DefC(NV, -1), LastC(NV, -1);
    for (unsigned Idx = 0; Idx != T.size(); ++Idx) {
      const Instruction &I = T.instr(Idx);
      int Cyc = S.CycleOf[DependenceDAG::nodeOf(Idx)];
      if (I.dest() >= 0) {
        DefC[I.dest()] = Cyc;
        LastC[I.dest()] = std::max(LastC[I.dest()], Cyc);
      }
      for (unsigned Op = 0; Op != I.numOperands(); ++Op) {
        int V = I.operand(Op);
        LastC[V] = std::max(LastC[V], Cyc);
        if (V >= int(RA.PhysOf.size()) || RA.PhysOf[V] < 0)
          St.add(err("assign", "virtual register " + std::to_string(V) +
                                   " is used but unassigned"));
      }
    }
    if (!St.isOk())
      return St;
    for (unsigned V = 0; V != NV; ++V) {
      if (DefC[V] < 0 || RA.PhysOf[V] < 0)
        continue;
      if (unsigned(RA.PhysOf[V]) >= M.numRegs(ClassOf(V)))
        St.add(err("assign", "virtual register " + std::to_string(V) +
                                 " mapped outside the register file"));
      for (unsigned W = V + 1; W != NV; ++W) {
        if (DefC[W] < 0 || RA.PhysOf[W] != RA.PhysOf[V] ||
            ClassOf(W) != ClassOf(V))
          continue;
        bool Overlap = DefC[V] == DefC[W] ||
                       (DefC[W] < LastC[V] && DefC[V] < LastC[W]);
        if (Overlap) {
          char Buf[96];
          std::snprintf(Buf, sizeof(Buf),
                        "live-range conflict: v%u and v%u share physical "
                        "register %d while both live",
                        V, W, RA.PhysOf[V]);
          St.add(err("assign", Buf));
        }
      }
    }
  }
  return St;
}

//===----------------------------------------------------------------------===//
// Semantic equivalence
//===----------------------------------------------------------------------===//

static Status verifySemanticEquivalenceImpl(const Trace &Source,
                                            const VLIWProgram &P,
                                            unsigned NumInputSets,
                                            uint64_t Seed) {
  Status St;
  RNG Rng(Seed ^ (uint64_t(Source.size()) << 32));
  for (unsigned Set = 0; Set != NumInputSets; ++Set) {
    // Mixed-domain random memory, mirroring workload::randomInputs (kept
    // local so the verifier has no dependence on the workload library).
    MemoryState In;
    for (const std::string &Name : Source.symbolNames()) {
      if (Rng.chance(0.25))
        In[Name] = Value::ofFloat(double(Rng.range(-64, 64)) * 0.5);
      else
        In[Name] = Value::ofInt(Rng.range(-1000, 1000));
    }
    ExecResult Want = interpret(Source, In);
    SimResult Got = simulate(P, In);
    if (!Got.Ok) {
      St.add(err("semantics", "simulator rejected the compiled program: " +
                                  Got.Error));
      return St;
    }
    if (!(Got.Exec == Want)) {
      char Buf[64];
      std::snprintf(Buf, sizeof(Buf), "input set %u", Set);
      St.add(err("semantics",
                 std::string(Buf) +
                     ": compiled program diverges from the interpreter"));
      return St;
    }
  }
  return St;
}

uint64_t ursa::dagFingerprint(const DependenceDAG &D) {
  // Commutative mix over edges so list order is irrelevant, plus the
  // trace length (spills append instructions).
  uint64_t H = 0x9e3779b97f4a7c15ULL * (D.trace().size() + 1);
  for (unsigned U = 0; U != D.size(); ++U)
    for (const auto &[V, K] : D.succs(U)) {
      uint64_t E = (uint64_t(U) << 33) ^ (uint64_t(V) << 2) ^
                   uint64_t(K == EdgeKind::Data ? 1 : 2);
      E *= 0xbf58476d1ce4e5b9ULL;
      E ^= E >> 29;
      H += E * 0x94d049bb133111ebULL;
    }
  return H;
}

//===----------------------------------------------------------------------===//
// Counted public entry points
//===----------------------------------------------------------------------===//

Status ursa::verifyDAGStructure(const DependenceDAG &D) {
  return countedCheck(verifyDAGStructureImpl(D));
}

Status ursa::verifyMeasurement(const Measurement &Meas) {
  return countedCheck(verifyMeasurementImpl(Meas));
}

Status ursa::verifyAssignment(const DependenceDAG &D, const Schedule &S,
                              const RegAssignment &RA,
                              const MachineModel &M) {
  return countedCheck(verifyAssignmentImpl(D, S, RA, M));
}

Status ursa::verifySemanticEquivalence(const Trace &Source,
                                       const VLIWProgram &P,
                                       unsigned NumInputSets, uint64_t Seed) {
  return countedCheck(verifySemanticEquivalenceImpl(Source, P, NumInputSets,
                                                    Seed));
}
