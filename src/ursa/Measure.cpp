//===- ursa/Measure.cpp - Resource requirement measurement ----------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ursa/Measure.h"

#include "obs/Stats.h"
#include "obs/Tracer.h"

#include <algorithm>
#include <cassert>

using namespace ursa;

URSA_STAT(StatResourcesMeasured, "ursa.measure.resources_measured",
          "per-resource requirement measurements performed");
URSA_STAT(StatReuseActiveNodes, "ursa.measure.reuse_active_nodes",
          "Reuse-relation active nodes across all measurements");
URSA_STAT(StatReuseRelPairs, "ursa.measure.reuse_rel_pairs",
          "CanReuse related pairs across all measurements");
URSA_STAT(StatChains, "ursa.measure.chains",
          "allocation chains found across all decompositions");
URSA_STAT(StatExcessiveSets, "ursa.measure.excessive_sets",
          "excessive chain sets surfaced to the transform generators");
URSA_STAT(StatClosureBytes, "ursa.measure.closure_bytes",
          "heap bytes held by the reachability closures being measured");

std::string ResourceId::describe() const {
  if (Kind == Reg)
    return RC == RegClassKind::GPR ? "reg(gpr)" : "reg(fpr)";
  switch (FUClass) {
  case FUKind::Universal:
    return "fu";
  case FUKind::IntALU:
    return "fu(int)";
  case FUKind::FloatALU:
    return "fu(float)";
  case FUKind::Memory:
    return "fu(mem)";
  }
  return "fu";
}

std::vector<std::pair<ResourceId, unsigned>>
ursa::machineResources(const MachineModel &M) {
  std::vector<std::pair<ResourceId, unsigned>> Rs;
  if (M.isHomogeneous()) {
    Rs.push_back({{ResourceId::FU, FUKind::Universal, RegClassKind::GPR, true},
                  M.numFUs(FUKind::Universal)});
    Rs.push_back(
        {{ResourceId::Reg, FUKind::Universal, RegClassKind::GPR, true},
         M.numRegs(RegClassKind::GPR)});
    return Rs;
  }
  for (FUKind K : {FUKind::IntALU, FUKind::FloatALU, FUKind::Memory})
    if (M.numFUs(K) > 0)
      Rs.push_back(
          {{ResourceId::FU, K, RegClassKind::GPR, false}, M.numFUs(K)});
  for (RegClassKind C : {RegClassKind::GPR, RegClassKind::FPR})
    if (M.numRegs(C) > 0)
      Rs.push_back(
          {{ResourceId::Reg, FUKind::Universal, C, false}, M.numRegs(C)});
  return Rs;
}

Measurement ursa::measureResource(const DependenceDAG &D, const DAGAnalysis &A,
                                  const HammockForest &HF, ResourceId Res,
                                  const MeasureOptions &Opts) {
  Measurement M;
  M.Res = Res;
  if (Res.Kind == ResourceId::FU) {
    URSA_SPAN(ReuseSpan, "ursa.measure.fu_reuse", "measure");
    M.Reuse = Res.AllClasses ? buildFUReuse(D, A)
                             : buildFUReuseForClass(D, A, Res.FUClass);
  } else {
    URSA_SPAN(ReuseSpan, "ursa.measure.reg_reuse", "measure");
    KillMap Kills = Opts.KillSolver == 1 ? selectKillsMinCoverExact(D, A)
                                         : selectKillsGreedy(D, A);
    M.Reuse = Res.AllClasses ? buildRegReuse(D, A, Kills)
                             : buildRegReuseForClass(D, A, Kills, Res.RC);
  }
  URSA_SPAN(ChainSpan, "ursa.measure.decompose", "measure");
  // Lazy relations mark the large-trace regime: the row-direct engine
  // decomposes without materializing the pair list that both the plain
  // and the prioritized matcher enumerate. Widths are canonical either
  // way; only the particular chains may differ from the prioritized
  // matcher's (docs/PERFORMANCE.md section 5).
  if (M.Reuse.Rel.isLazy()) {
    const ChainDecomposition *Warm = nullptr;
    if (Opts.WarmFrom)
      for (const Measurement &PM : *Opts.WarmFrom)
        if (PM.Res == Res) {
          Warm = &PM.Chains;
          break;
        }
    M.Chains = decomposeChainsRows(M.Reuse.Rel, M.Reuse.Active, Warm);
  } else
    M.Chains = Opts.PrioritizedMatching
                   ? decomposeChainsPrioritized(M.Reuse.Rel, M.Reuse.Active, HF)
                   : decomposeChains(M.Reuse.Rel, M.Reuse.Active);
  M.MaxRequired = M.Chains.width();
  StatResourcesMeasured.add();
  StatReuseActiveNodes.add(M.Reuse.Active.size());
  StatChains.add(M.Chains.width());
  StatClosureBytes.set(A.closureMemoryBytes());
  if (obs::statsEnabled()) {
    uint64_t Pairs = 0;
    for (unsigned Node : M.Reuse.Active)
      Pairs += M.Reuse.Rel.rowCount(Node); // word-parallel popcount
    StatReuseRelPairs.add(Pairs);
  }
  return M;
}

std::vector<Measurement> ursa::measureAll(const DependenceDAG &D,
                                          const DAGAnalysis &A,
                                          const HammockForest &HF,
                                          const MachineModel &M,
                                          const MeasureOptions &Opts) {
  URSA_SPAN(MeasureSpan, "ursa.measure", "measure");
  std::vector<Measurement> Out;
  for (const auto &[Res, Limit] : machineResources(M)) {
    (void)Limit;
    Out.push_back(measureResource(D, A, HF, Res, Opts));
  }
  return Out;
}

unsigned ursa::chainsCovering(const ChainDecomposition &Chains,
                              const Bitset &Nodes) {
  std::vector<uint8_t> Seen(Chains.Chains.size(), 0);
  unsigned Count = 0;
  Nodes.forEach([&](unsigned N) {
    if (N < Chains.ChainOf.size() && Chains.ChainOf[N] >= 0 &&
        !Seen[Chains.ChainOf[N]]) {
      Seen[Chains.ChainOf[N]] = 1;
      ++Count;
    }
  });
  return Count;
}

std::vector<ExcessiveChainSet>
ursa::findExcessiveSets(const Measurement &Meas, const DAGAnalysis &A,
                        const HammockForest &HF, unsigned Limit,
                        unsigned MaxSets) {
  std::vector<ExcessiveChainSet> Out;
  if (Meas.MaxRequired <= Limit)
    return Out;

  for (unsigned HIdx : HF.innermostFirst()) {
    // Hammocks are visited innermost first — the same order the driver
    // consumes sets in — so capping here only skips work it would have
    // discarded anyway.
    if (MaxSets && Out.size() == MaxSets)
      break;
    const Hammock &H = HF.hammock(HIdx);

    // The hammock is interesting only if its own width exceeds the
    // limit; the witness antichain proves it.
    std::vector<unsigned> InHammock;
    for (unsigned N : Meas.Reuse.Active)
      if (H.Members.test(N))
        InHammock.push_back(N);
    if (InHammock.size() <= Limit)
      continue;
    std::vector<unsigned> Witness = maxAntichain(Meas.Reuse.Rel, InHammock);
    if (Witness.size() <= Limit)
      continue;

    // Project each chain onto the hammock, preserving chain order. Full
    // keeps the projection; Sub gets trimmed below.
    std::vector<std::vector<unsigned>> Sub, Full;
    for (const auto &Chain : Meas.Chains.Chains) {
      std::vector<unsigned> S;
      for (unsigned N : Chain)
        if (H.Members.test(N))
          S.push_back(N);
      if (!S.empty()) {
        Full.push_back(S);
        Sub.push_back(std::move(S));
      }
    }
    std::vector<std::vector<unsigned>> Untrimmed = Sub;

    // Trim per the paper's example: drop a head that *precedes* another
    // subchain's head (A precedes C and D, so A goes) and a tail that
    // *follows* another subchain's tail (J depends on H, so J goes),
    // until heads and tails are pairwise independent. Independence is in
    // the Reuse relation: two values in DAG order can still demand
    // registers simultaneously, so DAG reachability would over-trim.
    // The rule set is order-sensitive: each step applies the
    // lexicographically-first applicable trim — smallest (I, J), head
    // rule before tail rule at a pair — so chains are trimmed in a
    // deterministic sequence. A naive implementation restarts the full
    // pair scan after every trim (O(chains^2) per trim, O(chains^3)+ on
    // wide hammocks); instead, trim [Lo, Hi) windows over the projections
    // and keep, per chain, the smallest partner the rules apply against.
    // A trim only moves chain I's endpoints, so only pairs involving I
    // can change applicability — everything else is repaired locally.
    // The trim sequence (and thus the output) is identical to the naive
    // scan's.
    RelationView Rel = Meas.Reuse.Rel;
    (void)A;
    unsigned NumC = Sub.size();
    std::vector<unsigned> Lo(NumC, 0), Hi(NumC);
    std::vector<uint8_t> Alive(NumC, 1);
    for (unsigned I = 0; I != NumC; ++I)
      Hi[I] = Sub[I].size();
    unsigned LiveCount = NumC;

    // Head rule: I's head precedes J's head. Tail rule: I's tail follows
    // J's tail. Either lets chain I shed the endpoint.
    auto Applies = [&](unsigned I, unsigned J) {
      return Rel.test(Sub[I][Lo[I]], Sub[J][Lo[J]]) ||
             Rel.test(Sub[J][Hi[J] - 1], Sub[I][Hi[I] - 1]);
    };
    constexpr int None = -1;
    auto BestFor = [&](unsigned I, unsigned From) {
      for (unsigned J = From; J != NumC; ++J)
        if (J != I && Alive[J] && Applies(I, J))
          return int(J);
      return None;
    };
    std::vector<int> BestJ(NumC, None);
    for (unsigned I = 0; I != NumC; ++I)
      BestJ[I] = BestFor(I, 0);

    while (LiveCount > Limit) {
      // The next trim: smallest live I with an applicable partner.
      unsigned I = 0;
      while (I != NumC && (!Alive[I] || BestJ[I] == None))
        ++I;
      if (I == NumC)
        break;
      unsigned J = unsigned(BestJ[I]);
      if (Rel.test(Sub[I][Lo[I]], Sub[J][Lo[J]]))
        ++Lo[I]; // head rule first, as in the pair scan
      else
        --Hi[I];

      if (Lo[I] == Hi[I]) {
        Alive[I] = 0;
        --LiveCount;
        // Rows that applied against I must look further; pairs not
        // involving I are untouched.
        for (unsigned K = 0; K != NumC; ++K)
          if (Alive[K] && BestJ[K] == int(I))
            BestJ[K] = BestFor(K, I);
        continue;
      }
      BestJ[I] = BestFor(I, 0);
      for (unsigned K = 0; K != NumC; ++K) {
        if (!Alive[K] || K == I)
          continue;
        if (BestJ[K] == int(I))
          // (K, I) may no longer apply; smaller partners were and remain
          // inapplicable, so resume the scan at I.
          BestJ[K] = BestFor(K, I);
        else if ((BestJ[K] == None || int(I) < BestJ[K]) && Applies(K, I))
          BestJ[K] = int(I);
      }
    }

    // Materialize the surviving windows.
    std::vector<std::vector<unsigned>> TrimmedSub, TrimmedFull;
    for (unsigned I = 0; I != NumC; ++I)
      if (Alive[I]) {
        TrimmedSub.emplace_back(Sub[I].begin() + Lo[I],
                                Sub[I].begin() + Hi[I]);
        TrimmedFull.push_back(std::move(Full[I]));
      }
    Sub = std::move(TrimmedSub);
    Full = std::move(TrimmedFull);

    ExcessiveChainSet E;
    E.Res = Meas.Res;
    E.HammockIdx = HIdx;
    E.Limit = Limit;
    if (Sub.size() > Limit) {
      E.Subchains = std::move(Sub);
      E.FullChains = std::move(Full);
    } else {
      E.Trimmed = false;
      // Trimming degenerated although the witness proves excess (heads
      // or tails were all related in the relation); fall back to the
      // untrimmed projection so the witness-based transforms still fire.
      // Copy first, then move: both fields must end up with the full
      // untrimmed projection (a move before the copy would leave one of
      // them reading a moved-from vector).
      E.Subchains = Untrimmed;
      E.FullChains = std::move(Untrimmed);
      assert(E.Subchains == E.FullChains &&
             "fallback must expose identical sub- and full chains");
    }
    E.Witness = std::move(Witness);
    Out.push_back(std::move(E));
  }
  StatExcessiveSets.add(Out.size());
  return Out;
}
