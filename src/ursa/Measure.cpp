//===- ursa/Measure.cpp - Resource requirement measurement ----------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ursa/Measure.h"

#include "obs/Stats.h"
#include "obs/Tracer.h"

#include <algorithm>
#include <cassert>

using namespace ursa;

URSA_STAT(StatResourcesMeasured, "ursa.measure.resources_measured",
          "per-resource requirement measurements performed");
URSA_STAT(StatReuseActiveNodes, "ursa.measure.reuse_active_nodes",
          "Reuse-relation active nodes across all measurements");
URSA_STAT(StatReuseRelPairs, "ursa.measure.reuse_rel_pairs",
          "CanReuse related pairs across all measurements");
URSA_STAT(StatChains, "ursa.measure.chains",
          "allocation chains found across all decompositions");
URSA_STAT(StatExcessiveSets, "ursa.measure.excessive_sets",
          "excessive chain sets surfaced to the transform generators");

std::string ResourceId::describe() const {
  if (Kind == Reg)
    return RC == RegClassKind::GPR ? "reg(gpr)" : "reg(fpr)";
  switch (FUClass) {
  case FUKind::Universal:
    return "fu";
  case FUKind::IntALU:
    return "fu(int)";
  case FUKind::FloatALU:
    return "fu(float)";
  case FUKind::Memory:
    return "fu(mem)";
  }
  return "fu";
}

std::vector<std::pair<ResourceId, unsigned>>
ursa::machineResources(const MachineModel &M) {
  std::vector<std::pair<ResourceId, unsigned>> Rs;
  if (M.isHomogeneous()) {
    Rs.push_back({{ResourceId::FU, FUKind::Universal, RegClassKind::GPR, true},
                  M.numFUs(FUKind::Universal)});
    Rs.push_back(
        {{ResourceId::Reg, FUKind::Universal, RegClassKind::GPR, true},
         M.numRegs(RegClassKind::GPR)});
    return Rs;
  }
  for (FUKind K : {FUKind::IntALU, FUKind::FloatALU, FUKind::Memory})
    if (M.numFUs(K) > 0)
      Rs.push_back(
          {{ResourceId::FU, K, RegClassKind::GPR, false}, M.numFUs(K)});
  for (RegClassKind C : {RegClassKind::GPR, RegClassKind::FPR})
    if (M.numRegs(C) > 0)
      Rs.push_back(
          {{ResourceId::Reg, FUKind::Universal, C, false}, M.numRegs(C)});
  return Rs;
}

Measurement ursa::measureResource(const DependenceDAG &D, const DAGAnalysis &A,
                                  const HammockForest &HF, ResourceId Res,
                                  const MeasureOptions &Opts) {
  Measurement M;
  M.Res = Res;
  if (Res.Kind == ResourceId::FU) {
    M.Reuse = Res.AllClasses ? buildFUReuse(D, A)
                             : buildFUReuseForClass(D, A, Res.FUClass);
  } else {
    KillMap Kills = Opts.KillSolver == 1 ? selectKillsMinCoverExact(D, A)
                                         : selectKillsGreedy(D, A);
    M.Reuse = Res.AllClasses ? buildRegReuse(D, A, Kills)
                             : buildRegReuseForClass(D, A, Kills, Res.RC);
  }
  M.Chains = Opts.PrioritizedMatching
                 ? decomposeChainsPrioritized(M.Reuse.Rel, M.Reuse.Active, HF)
                 : decomposeChains(M.Reuse.Rel, M.Reuse.Active);
  M.MaxRequired = M.Chains.width();
  StatResourcesMeasured.add();
  StatReuseActiveNodes.add(M.Reuse.Active.size());
  StatChains.add(M.Chains.width());
  if (obs::statsEnabled()) {
    uint64_t Pairs = 0;
    for (unsigned Node : M.Reuse.Active)
      Pairs += M.Reuse.Rel.row(Node).count(); // word-parallel popcount
    StatReuseRelPairs.add(Pairs);
  }
  return M;
}

std::vector<Measurement> ursa::measureAll(const DependenceDAG &D,
                                          const DAGAnalysis &A,
                                          const HammockForest &HF,
                                          const MachineModel &M,
                                          const MeasureOptions &Opts) {
  URSA_SPAN(MeasureSpan, "ursa.measure", "measure");
  std::vector<Measurement> Out;
  for (const auto &[Res, Limit] : machineResources(M)) {
    (void)Limit;
    Out.push_back(measureResource(D, A, HF, Res, Opts));
  }
  return Out;
}

unsigned ursa::chainsCovering(const ChainDecomposition &Chains,
                              const Bitset &Nodes) {
  std::vector<uint8_t> Seen(Chains.Chains.size(), 0);
  unsigned Count = 0;
  Nodes.forEach([&](unsigned N) {
    if (N < Chains.ChainOf.size() && Chains.ChainOf[N] >= 0 &&
        !Seen[Chains.ChainOf[N]]) {
      Seen[Chains.ChainOf[N]] = 1;
      ++Count;
    }
  });
  return Count;
}

std::vector<ExcessiveChainSet>
ursa::findExcessiveSets(const Measurement &Meas, const DAGAnalysis &A,
                        const HammockForest &HF, unsigned Limit) {
  std::vector<ExcessiveChainSet> Out;
  if (Meas.MaxRequired <= Limit)
    return Out;

  for (unsigned HIdx : HF.innermostFirst()) {
    const Hammock &H = HF.hammock(HIdx);

    // The hammock is interesting only if its own width exceeds the
    // limit; the witness antichain proves it.
    std::vector<unsigned> InHammock;
    for (unsigned N : Meas.Reuse.Active)
      if (H.Members.test(N))
        InHammock.push_back(N);
    if (InHammock.size() <= Limit)
      continue;
    std::vector<unsigned> Witness = maxAntichain(Meas.Reuse.Rel, InHammock);
    if (Witness.size() <= Limit)
      continue;

    // Project each chain onto the hammock, preserving chain order. Full
    // keeps the projection; Sub gets trimmed below.
    std::vector<std::vector<unsigned>> Sub, Full;
    for (const auto &Chain : Meas.Chains.Chains) {
      std::vector<unsigned> S;
      for (unsigned N : Chain)
        if (H.Members.test(N))
          S.push_back(N);
      if (!S.empty()) {
        Full.push_back(S);
        Sub.push_back(std::move(S));
      }
    }
    std::vector<std::vector<unsigned>> Untrimmed = Sub;

    // Trim per the paper's example: drop a head that *precedes* another
    // subchain's head (A precedes C and D, so A goes) and a tail that
    // *follows* another subchain's tail (J depends on H, so J goes),
    // until heads and tails are pairwise independent. Independence is in
    // the Reuse relation: two values in DAG order can still demand
    // registers simultaneously, so DAG reachability would over-trim.
    const BitMatrix &Rel = Meas.Reuse.Rel;
    (void)A;
    bool Changed = true;
    while (Changed && Sub.size() > Limit) {
      Changed = false;
      for (unsigned I = 0; I != Sub.size() && !Changed; ++I) {
        for (unsigned J = 0; J != Sub.size() && !Changed; ++J) {
          if (I == J)
            continue;
          if (Rel.test(Sub[I].front(), Sub[J].front())) {
            Sub[I].erase(Sub[I].begin());
            Changed = true;
          } else if (Rel.test(Sub[J].back(), Sub[I].back())) {
            Sub[I].pop_back();
            Changed = true;
          }
        }
      }
      for (unsigned I = Sub.size(); I-- > 0;) {
        if (Sub[I].empty()) {
          Sub.erase(Sub.begin() + I);
          Full.erase(Full.begin() + I);
        }
      }
    }

    ExcessiveChainSet E;
    E.Res = Meas.Res;
    E.HammockIdx = HIdx;
    E.Limit = Limit;
    if (Sub.size() > Limit) {
      E.Subchains = std::move(Sub);
      E.FullChains = std::move(Full);
    } else {
      E.Trimmed = false;
      // Trimming degenerated although the witness proves excess (heads
      // or tails were all related in the relation); fall back to the
      // untrimmed projection so the witness-based transforms still fire.
      // Copy first, then move: both fields must end up with the full
      // untrimmed projection (a move before the copy would leave one of
      // them reading a moved-from vector).
      E.Subchains = Untrimmed;
      E.FullChains = std::move(Untrimmed);
      assert(E.Subchains == E.FullChains &&
             "fallback must expose identical sub- and full chains");
    }
    E.Witness = std::move(Witness);
    Out.push_back(std::move(E));
  }
  StatExcessiveSets.add(Out.size());
  return Out;
}
