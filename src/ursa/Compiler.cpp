//===- ursa/Compiler.cpp - End-to-end URSA compilation --------------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ursa/Compiler.h"

#include "graph/DAGBuilder.h"
#include "ir/Verifier.h"
#include "obs/Tracer.h"
#include "ursa/PipelineVerifier.h"

using namespace ursa;

URSACompileResult ursa::compileURSA(const Trace &T, const MachineModel &M,
                                    const URSAOptions &Opts) {
  URSA_SPAN(CompileSpan, "ursa.compile", "pipeline");
  URSACompileResult R;

  // Front gate: buildDAG and the analyses assume a structurally sound
  // trace (asserting otherwise), so a gated pipeline must reject bad
  // input before touching them.
  if (Opts.Verify != VerifyLevel::None) {
    std::vector<std::string> Problems = verifyTrace(T);
    if (!Problems.empty()) {
      for (const std::string &P : Problems)
        R.Diags.push_back({Severity::Error, "input", P});
      R.VerifyFailed = true;
      R.Compile.Error = "input trace malformed: " + Problems.front();
      return R;
    }
  }

  URSAResult Alloc = runURSA(buildDAG(T), M, Opts);
  R.AllocRounds = Alloc.Rounds;
  R.AllocSeqEdges = Alloc.SeqEdgesAdded;
  R.AllocSpills = Alloc.SpillsInserted;
  R.AllocWithinLimits = Alloc.WithinLimits;
  R.FinalRequired = Alloc.FinalRequired;
  R.AllocLog = Alloc.formatLog();
  R.AllocRoundLog = Alloc.RoundLog;
  R.AllocStopReasons = Alloc.StopReasons;
  R.VerifyFailed = Alloc.VerifyFailed;
  R.LivelockDetected = Alloc.LivelockDetected;
  R.BudgetExhausted = Alloc.BudgetExhausted;
  R.FallbackUsed = Alloc.FallbackUsed;
  R.Diags = std::move(Alloc.Diags);
  if (Alloc.VerifyFailed) {
    R.Compile.Error = "allocation verification failed";
    for (const Diag &Dg : R.Diags)
      if (Dg.Sev == Severity::Error) {
        R.Compile.Error = Dg.str();
        break;
      }
    return R; // the DAG is corrupt; scheduling it would crash or lie
  }

  // The assignment phase lives a layer below the verifier, so its check
  // rides in as a callback on the shared pipeline tail.
  PipelineHooks Hooks;
  if (Opts.Verify != VerifyLevel::None)
    Hooks.CheckAssignment = [](const DependenceDAG &D, const Schedule &S,
                               const RegAssignment &RA,
                               const MachineModel &MM) {
      return verifyAssignment(D, S, RA, MM);
    };

  R.Compile = finishAndEmit(std::move(Alloc.DAG), M, {}, Hooks);
  R.Compile.SeqEdgesAdded += Alloc.SeqEdgesAdded;
  if (!R.Compile.Ok) {
    R.Diags.push_back({Severity::Error, "assign", R.Compile.Error});
    return R;
  }

  // End-to-end gate: the compiled program must agree with the source
  // trace's observable behaviour on random inputs (spills and sequencing
  // may reorder work but never change memory traffic or branch outcomes).
  if (Opts.Verify == VerifyLevel::Full) {
    Status St = verifySemanticEquivalence(T, *R.Compile.Prog);
    if (!St.isOk()) {
      for (const Diag &Dg : St.diags())
        R.Diags.push_back(Dg);
      R.VerifyFailed = true;
      R.Compile.Ok = false;
      R.Compile.Error = "semantic equivalence check failed: " + St.message();
    }
  }
  return R;
}

StatusOr<URSACompileResult>
ursa::compileURSAChecked(const Trace &T, const MachineModel &M,
                         const URSAOptions &Opts) {
  URSAOptions O = Opts;
  if (O.Verify == VerifyLevel::None)
    O.Verify = VerifyLevel::Basic;
  URSACompileResult R = compileURSA(T, M, O);
  if (!R.Compile.Ok) {
    Status St;
    for (const Diag &Dg : R.Diags)
      St.add(Dg);
    if (St.isOk()) // no error-severity diagnostic: wrap the error string
      St.add({Severity::Error, "compile", R.Compile.Error});
    return St;
  }
  return R;
}
