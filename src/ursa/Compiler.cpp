//===- ursa/Compiler.cpp - End-to-end URSA compilation --------------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ursa/Compiler.h"

#include "graph/DAGBuilder.h"

using namespace ursa;

URSACompileResult ursa::compileURSA(const Trace &T, const MachineModel &M,
                                    const URSAOptions &Opts) {
  URSACompileResult R;

  URSAResult Alloc = runURSA(buildDAG(T), M, Opts);
  R.AllocRounds = Alloc.Rounds;
  R.AllocSeqEdges = Alloc.SeqEdgesAdded;
  R.AllocSpills = Alloc.SpillsInserted;
  R.AllocWithinLimits = Alloc.WithinLimits;
  R.FinalRequired = Alloc.FinalRequired;
  R.AllocLog = Alloc.Log;

  R.Compile = finishAndEmit(std::move(Alloc.DAG), M);
  R.Compile.SeqEdgesAdded += Alloc.SeqEdgesAdded;
  return R;
}
