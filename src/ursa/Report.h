//===- ursa/Report.h - Human-readable allocation reports --------*- C++ -*-===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders what URSA did to a trace: per-resource worst-case requirements
/// before and after, the machine's capacities, transformation effort, and
/// (optionally) the per-round log. Tools print this next to the emitted
/// code so the allocation phase's decisions are inspectable.
///
//===----------------------------------------------------------------------===//

#ifndef URSA_URSA_REPORT_H
#define URSA_URSA_REPORT_H

#include "sched/Pipelines.h"
#include "ursa/Driver.h"

#include <string>

namespace ursa {

/// Formats a report comparing \p Original (the untransformed DAG) with
/// the outcome \p Result of running URSA for machine \p M.
std::string formatAllocationReport(const DependenceDAG &Original,
                                   const URSAResult &Result,
                                   const MachineModel &M);

/// The machine-readable counterpart (schema "ursa.allocation_report.v1"):
/// machine capacities, per-resource requirements before/after, critical
/// path, accounting flags, stop reasons, the per-round telemetry, and —
/// when \p IncludeStats — the process-wide stats snapshot
/// (obs::snapshotStats). Emitted by `ursa_cc --report-json` and embedded
/// in bench artifacts; docs/OBSERVABILITY.md documents the schema.
std::string formatAllocationReportJSON(const DependenceDAG &Original,
                                       const URSAResult &Result,
                                       const MachineModel &M,
                                       bool IncludeStats = true);

/// The canonical text a compile emits: the `ursa_cc` stats comment line
/// (pipeline, machine, cycles, spill ops, utilization) followed by the
/// VLIW assembly. `ursa_cc` and the compile service both render through
/// this one function, which is what makes `ursa_batch` output
/// bit-identical to per-function `ursa_cc` runs.
std::string formatCompileText(const std::string &Pipeline,
                              const MachineModel &M, const CompileResult &R,
                              bool EmitStats = true, bool EmitAsm = true);

/// Serializes per-round telemetry into \p W as an array of objects
/// (shared by the standalone report and higher-level tool reports).
namespace obs {
class JsonWriter;
}
void writeRoundLogJSON(obs::JsonWriter &W,
                       const std::vector<RoundRecord> &RoundLog);

} // namespace ursa

#endif // URSA_URSA_REPORT_H
