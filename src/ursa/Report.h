//===- ursa/Report.h - Human-readable allocation reports --------*- C++ -*-===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders what URSA did to a trace: per-resource worst-case requirements
/// before and after, the machine's capacities, transformation effort, and
/// (optionally) the per-round log. Tools print this next to the emitted
/// code so the allocation phase's decisions are inspectable.
///
//===----------------------------------------------------------------------===//

#ifndef URSA_URSA_REPORT_H
#define URSA_URSA_REPORT_H

#include "ursa/Driver.h"

#include <string>

namespace ursa {

/// Formats a report comparing \p Original (the untransformed DAG) with
/// the outcome \p Result of running URSA for machine \p M.
std::string formatAllocationReport(const DependenceDAG &Original,
                                   const URSAResult &Result,
                                   const MachineModel &M);

} // namespace ursa

#endif // URSA_URSA_REPORT_H
