//===- ursa/Driver.cpp - The URSA allocation driver -----------------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ursa/Driver.h"

#include <algorithm>
#include <cstdio>
#include <memory>

using namespace ursa;

namespace {

/// One measured DAG state: analyses plus per-resource requirements.
struct State {
  std::unique_ptr<DAGAnalysis> A;
  std::unique_ptr<HammockForest> HF;
  std::vector<Measurement> Meas;
  std::vector<std::pair<ResourceId, unsigned>> Limits;
  unsigned TotalExcess = 0;
  unsigned CritPath = 0;

  State(const DependenceDAG &D, const MachineModel &M,
        const MeasureOptions &MO) {
    A = std::make_unique<DAGAnalysis>(D);
    HF = std::make_unique<HammockForest>(D, *A);
    Limits = machineResources(M);
    Meas = measureAll(D, *A, *HF, M, MO);
    CritPath = A->criticalPathLength();
    for (unsigned I = 0; I != Meas.size(); ++I)
      if (Meas[I].MaxRequired > Limits[I].second)
        TotalExcess += Meas[I].MaxRequired - Limits[I].second;
  }
};

/// Score of a tentatively applied proposal. The paper asks for "the
/// combination of minimizing the critical path and reduction of all
/// excess requirements": proposals are ranked by excess-reduction per
/// unit of critical-path growth (spill traffic counts as extra cost),
/// then by the resulting critical path, preferring sequencing on ties.
struct Score {
  unsigned TotalExcess;
  unsigned Gain;     ///< excess removed by this proposal
  unsigned Cost;     ///< critical-path growth + spill-traffic penalty
  unsigned CritPath; ///< absolute critical path after
  unsigned IsSpill;  ///< paper Section 5: prefer sequencing on a tie
  unsigned NumEdges;

  bool operator<(const Score &O) const {
    // Higher Gain/Cost ratio wins (cross-multiplied, +1 to avoid /0).
    uint64_t L = uint64_t(Gain) * (O.Cost + 1);
    uint64_t R = uint64_t(O.Gain) * (Cost + 1);
    if (L != R)
      return L > R;
    if (CritPath != O.CritPath)
      return CritPath < O.CritPath;
    if (IsSpill != O.IsSpill)
      return IsSpill < O.IsSpill;
    return NumEdges < O.NumEdges;
  }
};

} // namespace

/// Collects candidate proposals for the current state, restricted to the
/// resource kinds active in this phase.
static std::vector<TransformProposal>
collectProposals(const DependenceDAG &D, const State &S, bool DoRegs,
                 bool DoFUs, const URSAOptions &Opts) {
  TransformContext Ctx{D, *S.A, *S.HF};
  std::vector<TransformProposal> Props;
  for (unsigned I = 0; I != S.Meas.size(); ++I) {
    const Measurement &M = S.Meas[I];
    unsigned Limit = S.Limits[I].second;
    if (M.MaxRequired <= Limit)
      continue;
    bool IsReg = M.Res.Kind == ResourceId::Reg;
    if ((IsReg && !DoRegs) || (!IsReg && !DoFUs))
      continue;
    std::vector<ExcessiveChainSet> Sets =
        findExcessiveSets(M, *S.A, *S.HF, Limit);
    // Innermost hammocks first; a couple of sets per resource per round
    // keeps the tentative-application cost bounded.
    unsigned Taken = 0;
    for (const ExcessiveChainSet &E : Sets) {
      if (Taken++ == 2)
        break;
      std::vector<TransformProposal> P;
      if (IsReg) {
        if (Opts.EnableRegSeq)
          P = proposeRegSequencing(Ctx, E);
        if (Opts.EnableSpills) {
          std::vector<TransformProposal> Sp = proposeSpills(Ctx, E);
          P.insert(P.end(), Sp.begin(), Sp.end());
        }
      } else {
        P = proposeFUSequencing(Ctx, E);
      }
      Props.insert(Props.end(), P.begin(), P.end());
    }
  }
  return Props;
}

URSAResult ursa::runURSA(DependenceDAG D, const MachineModel &M,
                         const URSAOptions &Opts) {
  URSAResult R(std::move(D));
  std::vector<std::pair<bool, bool>> Phases; // (regs?, fus?)
  switch (Opts.Order) {
  case PhaseOrdering::RegistersFirst:
    Phases = {{true, false}, {false, true}};
    break;
  case PhaseOrdering::FUsFirst:
    Phases = {{false, true}, {true, false}};
    break;
  case PhaseOrdering::Integrated:
    Phases = {{true, true}};
    break;
  }
  // A final integrated sweep mops up residue a single-resource phase got
  // stuck on (e.g. register excess only removable after functional-unit
  // sequencing shortened lifetimes); usually a no-op.
  Phases.push_back({true, true});

  {
    State S0(R.DAG, M, Opts.Measure);
    R.CritPathBefore = S0.CritPath;
  }

  // Outer fixpoint: a register round can disturb the functional-unit
  // phase's work and vice versa, so the phase list repeats until a whole
  // pass applies nothing (or the excess is gone).
  for (unsigned Sweep = 0; Sweep != 4; ++Sweep) {
  unsigned RoundsAtSweepStart = R.Rounds;
  for (auto [DoRegs, DoFUs] : Phases) {
    // Plateau patience: a round that keeps the excess flat can still set
    // up the next reduction (wave edges), but only finitely many are
    // tolerated before the residual is left to the assignment phase.
    unsigned Patience = 6;
    for (unsigned Round = 0; Round < Opts.MaxRounds; ++Round) {
      State S(R.DAG, M, Opts.Measure);
      std::vector<TransformProposal> Props =
          collectProposals(R.DAG, S, DoRegs, DoFUs, Opts);
      if (Props.empty())
        break;

      // Tentatively apply each proposal and keep the best
      // never-worsening one (paper Section 5).
      int Best = -1;
      Score BestScore{~0u, 0, ~0u, ~0u, ~0u, ~0u};
      for (unsigned I = 0; I != Props.size(); ++I) {
        DependenceDAG Scratch = R.DAG;
        applyTransform(Scratch, Props[I]);
        State SS(Scratch, M, Opts.Measure);
        bool IsSpill = Props[I].Kind == TransformProposal::Spill;
        unsigned Cost = (SS.CritPath > S.CritPath ? SS.CritPath - S.CritPath
                                                  : 0) +
                        (IsSpill ? 2 : 0); // store+reload occupy FU slots
        Score Sc{SS.TotalExcess,
                 S.TotalExcess - std::min(S.TotalExcess, SS.TotalExcess),
                 Cost,
                 SS.CritPath,
                 IsSpill ? 1u : 0u,
                 unsigned(Props[I].SeqEdges.size())};
        if (Sc.TotalExcess <= S.TotalExcess && Sc < BestScore) {
          BestScore = Sc;
          Best = int(I);
        }
      }
      if (Best < 0)
        break; // every proposal worsens; leave residual to assignment
      if (BestScore.TotalExcess == S.TotalExcess) {
        // FU wave edges make monotonic progress (each round orders at
        // least one previously parallel pair), so they ride on MaxRounds
        // alone; other plateaus burn patience.
        if (Props[Best].Kind != TransformProposal::FUSequence) {
          if (Patience == 0)
            break;
          --Patience;
        }
      } else {
        Patience = 6;
      }

      ApplyStats St = applyTransform(R.DAG, Props[Best]);
      R.SeqEdgesAdded += St.EdgesAdded;
      R.SpillsInserted += St.SpillsInserted;
      ++R.Rounds;
      if (Opts.KeepLog) {
        char Buf[64];
        std::snprintf(Buf, sizeof(Buf), " (excess %u->%u, cp %u)",
                      S.TotalExcess, BestScore.TotalExcess, BestScore.CritPath);
        R.Log.push_back(Props[Best].describe() + Buf);
      }
    }
  }

  {
    State Check(R.DAG, M, Opts.Measure);
    if (Check.TotalExcess == 0 || R.Rounds == RoundsAtSweepStart)
      break;
  }
  }

  State Final(R.DAG, M, Opts.Measure);
  R.CritPathAfter = Final.CritPath;
  R.WithinLimits = Final.TotalExcess == 0;
  for (const Measurement &Ms : Final.Meas)
    R.FinalRequired.push_back(Ms.MaxRequired);
  return R;
}
