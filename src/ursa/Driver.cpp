//===- ursa/Driver.cpp - The URSA allocation driver -----------------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ursa/Driver.h"

#include "graph/DAGBuilder.h"
#include "obs/Stats.h"
#include "obs/Tracer.h"
#include "sched/RegAssign.h"
#include "support/ThreadPool.h"
#include "ursa/FaultInjector.h"
#include "ursa/IncrementalMeasure.h"
#include "ursa/MeasureCache.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

using namespace ursa;

URSA_STAT(StatRounds, "ursa.driver.rounds", "transformation rounds applied");
URSA_STAT(StatProposalsTried, "ursa.driver.proposals_tried",
          "candidate transforms tentatively applied and remeasured");
URSA_STAT(StatSweeps, "ursa.driver.sweeps", "outer fixpoint sweeps run");
URSA_STAT(StatFallbacks, "ursa.driver.fallback_activations",
          "guaranteed-fit fallback activations");
URSA_STAT(StatStopMaxRounds, "ursa.driver.stop.max_rounds",
          "phases cut off by the MaxRounds safety valve");
URSA_STAT(StatStopMaxTotal, "ursa.driver.stop.max_total_rounds",
          "runs cut off by the MaxTotalRounds safety valve");
URSA_STAT(StatStopTimeBudget, "ursa.driver.stop.time_budget",
          "runs cut off by the TimeBudgetMs safety valve");
URSA_STAT(StatStopLivelock, "ursa.driver.stop.livelock",
          "runs stopped by livelock detection");
URSA_STAT(StatKeptFUSeq, "ursa.transforms.kept.fu_seq",
          "FU-sequencing transforms kept");
URSA_STAT(StatKeptRegSeq, "ursa.transforms.kept.reg_seq",
          "register-sequencing transforms kept");
URSA_STAT(StatKeptSpill, "ursa.transforms.kept.spill",
          "spill transforms kept");
URSA_STAT(StatParallelEvalBatches, "ursa.driver.parallel_eval_batches",
          "proposal-evaluation rounds fanned out to the thread pool");
URSA_STAT(StatIncrementalPromotions, "ursa.driver.incremental.promotions",
          "delta-scored winners promoted to the next round's base via "
          "their delta closure (closure rebuild skipped)");
URSA_STAT(StatIncrementalEvals, "ursa.driver.incremental.delta_evals",
          "proposal evaluations scored by the incremental delta path");
URSA_STAT(StatIncrementalFallbacks, "ursa.driver.incremental.fallbacks",
          "proposal evaluations that fell back to a full rebuild while "
          "incremental measurement was enabled");

bool ursa::defaultIncrementalMeasure() {
  const char *E = std::getenv("URSA_INCREMENTAL");
  if (!E)
    return true;
  return !(std::strcmp(E, "0") == 0 || std::strcmp(E, "off") == 0 ||
           std::strcmp(E, "false") == 0);
}

unsigned ursa::defaultMeasurementCacheSize() {
  if (const char *E = std::getenv("URSA_CACHE_SIZE")) {
    int V = std::atoi(E);
    if (V > 0)
      return unsigned(V);
  }
  return 4;
}

namespace {

/// The driver's historical name for a measured DAG state; the type now
/// lives in ursa/MeasureCache.h so the compile service can share cached
/// instances across requests.
using State = MeasuredState;

/// Score of a tentatively applied proposal. The paper asks for "the
/// combination of minimizing the critical path and reduction of all
/// excess requirements": proposals are ranked by excess-reduction per
/// unit of critical-path growth (spill traffic counts as extra cost),
/// then by the resulting critical path, preferring sequencing on ties.
struct Score {
  unsigned TotalExcess;
  unsigned Gain;     ///< excess removed by this proposal
  unsigned Cost;     ///< critical-path growth + spill-traffic penalty
  unsigned CritPath; ///< absolute critical path after
  unsigned IsSpill;  ///< paper Section 5: prefer sequencing on a tie
  unsigned NumEdges;

  bool operator<(const Score &O) const {
    // Higher Gain/Cost ratio wins (cross-multiplied, +1 to avoid /0).
    uint64_t L = uint64_t(Gain) * (O.Cost + 1);
    uint64_t R = uint64_t(O.Gain) * (Cost + 1);
    if (L != R)
      return L > R;
    if (CritPath != O.CritPath)
      return CritPath < O.CritPath;
    if (IsSpill != O.IsSpill)
      return IsSpill < O.IsSpill;
    return NumEdges < O.NumEdges;
  }
};

/// Span label for one tentative transform evaluation (static storage:
/// span names must outlive the event buffer).
const char *evalSpanName(TransformProposal::KindT K) {
  switch (K) {
  case TransformProposal::FUSequence:
    return "eval.fu-seq";
  case TransformProposal::RegSequence:
    return "eval.reg-seq";
  case TransformProposal::Spill:
    return "eval.spill";
  }
  return "eval";
}

} // namespace

std::string RoundRecord::describe() const {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), " (excess %u->%u, cp %u)", ExcessBefore,
                ExcessAfter, CritPath);
  return Detail + Buf;
}

std::vector<std::string> URSAResult::formatLog() const {
  std::vector<std::string> Out;
  Out.reserve(RoundLog.size());
  for (const RoundRecord &RR : RoundLog)
    Out.push_back(RR.describe());
  return Out;
}

/// Collects candidate proposals for the current state, restricted to the
/// resource kinds active in this phase.
static std::vector<TransformProposal>
collectProposals(const DependenceDAG &D, const State &S, bool DoRegs,
                 bool DoFUs, const URSAOptions &Opts) {
  TransformContext Ctx{D, *S.A, *S.HF};
  std::vector<TransformProposal> Props;
  for (unsigned I = 0; I != S.Meas.size(); ++I) {
    const Measurement &M = S.Meas[I];
    unsigned Limit = S.Limits[I].second;
    if (M.MaxRequired <= Limit)
      continue;
    bool IsReg = M.Res.Kind == ResourceId::Reg;
    if ((IsReg && !DoRegs) || (!IsReg && !DoFUs))
      continue;
    std::vector<ExcessiveChainSet> Sets =
        findExcessiveSets(M, *S.A, *S.HF, Limit);
    // Innermost hammocks first; a couple of sets per resource per round
    // keeps the tentative-application cost bounded.
    unsigned Taken = 0;
    for (const ExcessiveChainSet &E : Sets) {
      if (Taken++ == 2)
        break;
      std::vector<TransformProposal> P;
      if (IsReg) {
        if (Opts.EnableRegSeq)
          P = proposeRegSequencing(Ctx, E);
        if (Opts.EnableSpills) {
          std::vector<TransformProposal> Sp = proposeSpills(Ctx, E);
          P.insert(P.end(), Sp.begin(), Sp.end());
        }
      } else {
        P = proposeFUSequencing(Ctx, E);
      }
      Props.insert(Props.end(), P.begin(), P.end());
    }
  }
  return Props;
}

/// Chains every real node into one total order (consecutive in the
/// current topological order), collapsing all parallelism. Afterwards
/// every CanReuse relation is a total order too, so each FU class needs
/// one unit and the register requirement equals sequential liveness.
static unsigned sequentializeTotally(DependenceDAG &D) {
  unsigned Added = 0, Prev = ~0u;
  DAGAnalysis A(D);
  for (unsigned N : A.topoOrder()) {
    if (DependenceDAG::isVirtual(N))
      continue;
    if (Prev != ~0u && D.addEdge(Prev, N, EdgeKind::Sequence))
      ++Added;
    Prev = N;
  }
  D.normalizeVirtualEdges();
  return Added;
}

/// The guaranteed-fit fallback (graceful degradation): total-order
/// sequentialization plus spilling of long-lived values until every
/// measured requirement fits the machine or nothing spillable remains.
/// Termination: each iteration spills a value whose post-spill live range
/// collapses below the candidacy threshold, and reload-defined values are
/// never candidates.
static void guaranteedFitFallback(URSAResult &R, const MachineModel &M,
                                  const MeasureOptions &MO,
                                  MeasurementCache &Cache) {
  URSA_SPAN(FallbackSpan, "ursa.fallback", "driver");
  StatFallbacks.add();
  R.FallbackUsed = true;
  R.SeqEdgesAdded += sequentializeTotally(R.DAG);
  unsigned MaxIter = R.DAG.trace().numVRegs() + 4;
  for (unsigned Iter = 0; Iter != MaxIter; ++Iter) {
    std::shared_ptr<const State> SP = Cache.get(R.DAG, M, MO);
    const State &S = *SP;
    if (S.TotalExcess == 0)
      return;
    const Trace &T = R.DAG.trace();

    // Longest live span in the (total) schedule order, among values not
    // produced by spill code.
    unsigned NV = T.numVRegs();
    std::vector<int> DefPos(NV, -1), LastPos(NV, -1), DefIdx(NV, -1);
    for (unsigned Idx = 0; Idx != T.size(); ++Idx) {
      const Instruction &I = T.instr(Idx);
      int Pos = int(S.A->topoPos(DependenceDAG::nodeOf(Idx)));
      if (I.dest() >= 0) {
        DefPos[I.dest()] = Pos;
        DefIdx[I.dest()] = int(Idx);
        LastPos[I.dest()] = std::max(LastPos[I.dest()], Pos);
      }
      for (unsigned Op = 0; Op != I.numOperands(); ++Op)
        LastPos[I.operand(Op)] = std::max(LastPos[I.operand(Op)], Pos);
    }
    int Victim = -1, BestSpan = 1;
    for (unsigned V = 0; V != NV; ++V) {
      if (DefPos[V] < 0 || isSpillOp(T.instr(DefIdx[V]).opcode()))
        continue;
      int Span = LastPos[V] - DefPos[V];
      if (Span > BestSpan) {
        BestSpan = Span;
        Victim = int(V);
      }
    }
    if (Victim < 0)
      return; // honest: WithinLimits stays false
    Trace T2 = T;
    spillValueInTrace(T2, Victim);
    ++R.SpillsInserted;
    R.DAG = buildDAG(std::move(T2));
    R.SeqEdgesAdded += sequentializeTotally(R.DAG);
  }
}

URSAResult ursa::runURSA(DependenceDAG D, const MachineModel &M,
                         const URSAOptions &Opts) {
  URSA_SPAN(AllocSpan, "ursa.allocate", "driver");
  URSAResult R(std::move(D));
  const bool VerifyOn = Opts.Verify != VerifyLevel::None;
  const bool VerifyFull = Opts.Verify == VerifyLevel::Full;
  auto AddDiag = [&R](Severity Sev, std::string Msg) {
    R.Diags.push_back({Sev, "allocate", std::move(Msg)});
  };
  auto FailVerify = [&R](const Status &St) {
    for (const Diag &Dg : St.diags())
      R.Diags.push_back(Dg);
    R.VerifyFailed = true;
    if (std::find(R.StopReasons.begin(), R.StopReasons.end(),
                  "verify_failed") == R.StopReasons.end())
      R.StopReasons.push_back("verify_failed");
  };
  // Safety-valve accounting: every early stop gets a named counter and a
  // StopReasons entry so neither report format can hide it.
  auto AddStop = [&R](const char *Reason, obs::Statistic &Counter) {
    Counter.add();
    if (std::find(R.StopReasons.begin(), R.StopReasons.end(), Reason) ==
        R.StopReasons.end())
      R.StopReasons.push_back(Reason);
  };

  // Input gate: never run the O(n^2) analyses on a malformed DAG — they
  // assert (or worse) instead of diagnosing.
  if (VerifyOn) {
    Status St = verifyDAGStructure(R.DAG);
    if (!St.isOk()) {
      FailVerify(St);
      return R;
    }
  }

  // The proposal-evaluation pool and the measurement cache live for the
  // whole run. Threads == 1 spawns no workers and evaluates inline, so
  // serial behavior is always recoverable (URSA_THREADS=1), including
  // under fault injection.
  unsigned NumThreads =
      Opts.Threads ? Opts.Threads : ThreadPool::defaultThreads();
  std::unique_ptr<ThreadPool> Pool;
  if (NumThreads > 1)
    Pool = std::make_unique<ThreadPool>(NumThreads);
  MeasurementCache LocalCache(Opts.MeasurementReuse,
                              Opts.MeasurementCacheSize
                                  ? Opts.MeasurementCacheSize
                                  : defaultMeasurementCacheSize());
  MeasurementCache &Cache =
      Opts.SharedCache ? *Opts.SharedCache : LocalCache;

  auto StartTime = std::chrono::steady_clock::now();
  enum class BudgetTrip { None, TotalRounds, Time };
  auto BudgetExceeded = [&]() {
    if (R.Rounds >= Opts.MaxTotalRounds)
      return BudgetTrip::TotalRounds;
    if (Opts.TimeBudgetMs == 0)
      return BudgetTrip::None;
    auto Ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                  std::chrono::steady_clock::now() - StartTime)
                  .count();
    return Ms >= long(Opts.TimeBudgetMs) ? BudgetTrip::Time
                                         : BudgetTrip::None;
  };

  std::vector<std::pair<bool, bool>> Phases; // (regs?, fus?)
  switch (Opts.Order) {
  case PhaseOrdering::RegistersFirst:
    Phases = {{true, false}, {false, true}};
    break;
  case PhaseOrdering::FUsFirst:
    Phases = {{false, true}, {true, false}};
    break;
  case PhaseOrdering::Integrated:
    Phases = {{true, true}};
    break;
  }
  // A final integrated sweep mops up residue a single-resource phase got
  // stuck on (e.g. register excess only removable after functional-unit
  // sequencing shortened lifetimes); usually a no-op.
  Phases.push_back({true, true});

  unsigned PrevSweepExcess;
  {
    std::shared_ptr<const State> S0 = Cache.get(R.DAG, M, Opts.Measure);
    R.CritPathBefore = S0->CritPath;
    PrevSweepExcess = S0->TotalExcess;
  }

  // Outer fixpoint: a register round can disturb the functional-unit
  // phase's work and vice versa, so the phase list repeats until a whole
  // pass applies nothing (or the excess is gone). Bail stops transforming
  // — on a verification failure the DAG is corrupt and only diagnostics
  // come back; on budget exhaustion or livelock the current (sound) state
  // proceeds to accounting and, optionally, the guaranteed-fit fallback.
  bool Bail = false;
  unsigned StaleSweeps = 0;
  for (unsigned Sweep = 0; Sweep != 4 && !Bail; ++Sweep) {
  StatSweeps.add();
  unsigned RoundsAtSweepStart = R.Rounds;
  for (auto [DoRegs, DoFUs] : Phases) {
    if (Bail)
      break;
    URSA_SPAN(PhaseSpan,
              DoRegs && DoFUs ? "ursa.phase.integrated"
              : DoRegs        ? "ursa.phase.regs"
                              : "ursa.phase.fus",
              "driver");
    // Plateau patience: a round that keeps the excess flat can still set
    // up the next reduction (wave edges), but only finitely many are
    // tolerated before the residual is left to the assignment phase.
    unsigned Patience = 6;
    // Distinguishes the MaxRounds valve tripping from the usual breaks
    // (converged, plateau, budget): only falling off the end of the loop
    // leaves it set.
    bool HitRoundCap = true;
    for (unsigned Round = 0; Round < Opts.MaxRounds; ++Round) {
      if (BudgetTrip Trip = BudgetExceeded(); Trip != BudgetTrip::None) {
        R.BudgetExhausted = true;
        if (Trip == BudgetTrip::TotalRounds) {
          AddStop("max_total_rounds", StatStopMaxTotal);
          AddDiag(Severity::Warning, "MaxTotalRounds budget exhausted; "
                                     "leaving residual excess");
        } else {
          AddStop("time_budget", StatStopTimeBudget);
          AddDiag(Severity::Warning, "TimeBudgetMs budget exhausted; "
                                     "leaving residual excess");
        }
        Bail = true;
        HitRoundCap = false;
        break;
      }
      if (VerifyOn) {
        Status St = verifyDAGStructure(R.DAG);
        if (!St.isOk()) {
          FailVerify(St);
          Bail = true;
          HitRoundCap = false;
          break;
        }
      }
      auto RoundStart = std::chrono::steady_clock::now();
      std::shared_ptr<const State> SP = Cache.get(R.DAG, M, Opts.Measure);
      const State &S = *SP;
      std::vector<TransformProposal> Props =
          collectProposals(R.DAG, S, DoRegs, DoFUs, Opts);
      if (Props.empty()) {
        HitRoundCap = false;
        break;
      }
      StatProposalsTried.add(Props.size());

      // Tentatively apply each proposal to its own scratch copy and
      // remeasure — the hot loop. Evaluations are independent (pure
      // functions of R.DAG + the proposal; stats are relaxed atomics and
      // spans are scoped per task behind a mutex-guarded buffer), so they
      // fan out across the pool. Scoring happens inside the task; the
      // pick happens in a serial reduction below, in proposal order, so
      // the chosen Best is bit-identical to the serial evaluation.
      //
      // With IncrementalMeasure on, edge-only proposals are scored through
      // the delta engine against the round-start state S: same canonical
      // numbers (widths/excess/critical path), a fraction of the work. A
      // delta-scored evaluation has no State to cache (SS stays null), so
      // if it wins, the next round rebuilds once from R.DAG — one full
      // build per round instead of 1 + P. Spills and unprovable deltas
      // take the full path exactly as before.
      struct Eval {
        Score Sc{~0u, 0, ~0u, ~0u, ~0u, ~0u};
        uint64_t Fp = 0; ///< fingerprint of the transformed scratch DAG
        std::shared_ptr<const State> SS;
        bool Diverged = false; ///< VerifyFull: delta != fresh rebuild
      };
      std::vector<Eval> Evals(Props.size());
      std::unique_ptr<IncrementalMeasurer> Inc;
      if (Opts.IncrementalMeasure)
        Inc = std::make_unique<IncrementalMeasurer>(R.DAG, *S.A, S.Meas,
                                                    S.Limits, Opts.Measure);
      auto EvalOne = [&](size_t I) {
        URSA_SPAN(EvalSpan, evalSpanName(Props[I].Kind), "transform");
        DependenceDAG Scratch = R.DAG;
        applyTransform(Scratch, Props[I]);
        bool IsSpill = Props[I].Kind == TransformProposal::Spill;
        unsigned NewExcess = 0, NewCrit = 0;
        std::shared_ptr<const State> SS;
        DeltaMeasurement DM;
        if (Inc && Inc->measureDelta(Scratch, Props[I], DM)) {
          StatIncrementalEvals.add();
          NewExcess = DM.TotalExcess;
          NewCrit = DM.CritPath;
          if (VerifyFull) {
            // The incremental contract: every delta-derived number must
            // match a fresh rebuild bit for bit.
            State Fresh(Scratch, M, Opts.Measure);
            bool Same = Fresh.TotalExcess == DM.TotalExcess &&
                        Fresh.CritPath == DM.CritPath &&
                        Fresh.Meas.size() == DM.Required.size();
            for (unsigned K = 0; Same && K != Fresh.Meas.size(); ++K)
              Same = Fresh.Meas[K].MaxRequired == DM.Required[K];
            Evals[I].Diverged = !Same;
          }
        } else {
          if (Inc)
            StatIncrementalFallbacks.add();
          SS = std::make_shared<const State>(Scratch, M, Opts.Measure);
          NewExcess = SS->TotalExcess;
          NewCrit = SS->CritPath;
        }
        unsigned Cost =
            (NewCrit > S.CritPath ? NewCrit - S.CritPath : 0) +
            (IsSpill ? 2 : 0); // store+reload occupy FU slots
        Evals[I].Sc =
            Score{NewExcess,
                  S.TotalExcess - std::min(S.TotalExcess, NewExcess),
                  Cost,
                  NewCrit,
                  IsSpill ? 1u : 0u,
                  unsigned(Props[I].SeqEdges.size())};
        if (Opts.MeasurementReuse && SS)
          Evals[I].Fp = dagFingerprint(Scratch);
        Evals[I].SS = std::move(SS);
      };
      if (Pool && Props.size() > 1) {
        StatParallelEvalBatches.add();
        Pool->parallelFor(Props.size(), EvalOne);
      } else {
        for (size_t I = 0; I != Props.size(); ++I)
          EvalOne(I);
      }

      if (VerifyFull && Inc) {
        bool AnyDiverged = false;
        for (unsigned I = 0; I != Evals.size(); ++I)
          if (Evals[I].Diverged) {
            FailVerify(Status::error(
                "allocate", "incremental measurement diverged from the "
                            "full rebuild for proposal '" +
                                Props[I].describe() + "'"));
            AnyDiverged = true;
          }
        if (AnyDiverged) {
          Bail = true;
          HitRoundCap = false;
          break;
        }
      }

      // Keep the best never-worsening proposal (paper Section 5).
      int Best = -1;
      Score BestScore{~0u, 0, ~0u, ~0u, ~0u, ~0u};
      for (unsigned I = 0; I != Props.size(); ++I) {
        const Score &Sc = Evals[I].Sc;
        if (Sc.TotalExcess <= S.TotalExcess && Sc < BestScore) {
          BestScore = Sc;
          Best = int(I);
        }
      }
      if (Best < 0) {
        // Every proposal worsens; leave residual to assignment.
        HitRoundCap = false;
        break;
      }
      if (BestScore.TotalExcess == S.TotalExcess) {
        // FU wave edges make monotonic progress (each round orders at
        // least one previously parallel pair), so they ride on MaxRounds
        // alone; other plateaus burn patience.
        if (Props[Best].Kind != TransformProposal::FUSequence) {
          if (Patience == 0) {
            HitRoundCap = false;
            break;
          }
          --Patience;
        }
      } else {
        Patience = 6;
      }

      // Apply, cross-checking claimed progress against the actual DAG
      // delta: a transform that says it changed something but didn't
      // would re-propose itself forever (livelock by lying).
      uint64_t FpBefore = VerifyOn ? dagFingerprint(R.DAG) : 0;
      ApplyStats ASt;
      bool FakedApply =
          Opts.Faults && Opts.Faults->shouldFakeProgress(R.Rounds);
      if (FakedApply)
        ASt.EdgesAdded = unsigned(std::max<size_t>(
            1, Props[Best].SeqEdges.size())); // claimed, never applied
      else
        ASt = applyTransform(R.DAG, Props[Best]);
      // Adopt the winner's remeasure: applying the same proposal to
      // R.DAG reproduces the scratch copy bit for bit, so the next
      // round's start state (and the sweep-end/final accounting) comes
      // from the cache instead of an O(n^2) rebuild. The fingerprint
      // guard keeps a faked apply (FalseProgress injection) or a
      // non-reproducing transform from planting a wrong entry.
      if (Opts.MeasurementReuse && Evals[Best].SS &&
          dagFingerprint(R.DAG) == Evals[Best].Fp) {
        Cache.insert(Evals[Best].Fp, Evals[Best].SS);
      } else if (Opts.MeasurementReuse && !Evals[Best].SS && !FakedApply) {
        // Delta-scored winner: no full state was built for it, so promote
        // it through its delta closure instead of letting the next round
        // rebuild the O(n^2) reachability from scratch. buildIncremental
        // is bit-identical to a fresh analysis (canonical closure), and
        // the rest of the state (hammocks, measurements, excess) derives
        // from it exactly as a from-scratch build would; the differential
        // test in tests/incremental_test.cpp pins this. A nullptr (edge
        // list not provably a pure delta against the applied DAG) just
        // falls back to the old full rebuild on the next get().
        if (std::unique_ptr<DAGAnalysis> NA = DAGAnalysis::buildIncremental(
                R.DAG, *S.A, Props[Best].SeqEdges)) {
          StatIncrementalPromotions.add();
          Cache.insert(dagFingerprint(R.DAG),
                       std::make_shared<const State>(R.DAG, M, Opts.Measure,
                                                     std::move(NA)));
        }
      }
      R.SeqEdgesAdded += ASt.EdgesAdded;
      R.SpillsInserted += ASt.SpillsInserted;
      ++R.Rounds;
      StatRounds.add();
      switch (Props[Best].Kind) {
      case TransformProposal::FUSequence:
        StatKeptFUSeq.add();
        break;
      case TransformProposal::RegSequence:
        StatKeptRegSeq.add();
        break;
      case TransformProposal::Spill:
        StatKeptSpill.add();
        break;
      }
      {
        RoundRecord RR;
        RR.Round = R.Rounds;
        RR.Kind = Props[Best].Kind;
        RR.Resource = Props[Best].Res.describe();
        RR.Detail = Props[Best].describe();
        RR.ExcessBefore = S.TotalExcess;
        RR.ExcessAfter = BestScore.TotalExcess;
        RR.CritPath = BestScore.CritPath;
        RR.EdgesAdded = ASt.EdgesAdded;
        RR.SpillsInserted = ASt.SpillsInserted;
        RR.ProposalsTried = unsigned(Props.size());
        RR.DurationMs = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - RoundStart)
                            .count();
        R.RoundLog.push_back(std::move(RR));
      }
      if (VerifyOn && (ASt.EdgesAdded || ASt.SpillsInserted) &&
          dagFingerprint(R.DAG) == FpBefore) {
        AddDiag(Severity::Error,
                "transform '" + Props[Best].describe() +
                    "' reported progress but left the DAG unchanged");
        R.LivelockDetected = true;
        AddStop("livelock", StatStopLivelock);
        Bail = true;
        HitRoundCap = false;
        break;
      }
      // Armed DAG-corruption faults strike after a round, like a buggy
      // in-place mutation would; the next round's gate must catch them.
      if (Opts.Faults)
        Opts.Faults->maybeInjectDAG(R.DAG, R.Rounds);
    }
    if (HitRoundCap) {
      AddStop("max_rounds", StatStopMaxRounds);
      AddDiag(Severity::Warning,
              "MaxRounds safety valve tripped for a phase; leaving "
              "residual excess");
    }

    // Phase boundary: the next phase (or the assignment) inherits this
    // DAG — prove the hand-off.
    if (!Bail && VerifyOn) {
      Status St = verifyDAGStructure(R.DAG);
      if (St.isOk() && VerifyFull) {
        std::shared_ptr<const State> PB = Cache.get(R.DAG, M, Opts.Measure);
        St.merge(verifyMeasurements(PB->Meas));
      }
      if (!St.isOk()) {
        FailVerify(St);
        Bail = true;
      }
    }
  }
  if (Bail)
    break;

  {
    std::shared_ptr<const State> Check = Cache.get(R.DAG, M, Opts.Measure);
    if (Check->TotalExcess == 0 || R.Rounds == RoundsAtSweepStart)
      break;
    // Livelock detection: sweeps that keep applying transforms without
    // reducing the total excess will not converge; two in a row and the
    // residual goes to the assignment phase (or the fallback) instead.
    if (Check->TotalExcess >= PrevSweepExcess) {
      if (++StaleSweeps >= 2) {
        R.LivelockDetected = true;
        AddStop("livelock", StatStopLivelock);
        AddDiag(Severity::Warning,
                "livelock: consecutive sweeps applied transforms without "
                "reducing total excess");
        break;
      }
    } else {
      StaleSweeps = 0;
    }
    PrevSweepExcess = Check->TotalExcess;
  }
  }

  // A corrupt DAG supports no further measurement — return what we know.
  if (R.VerifyFailed)
    return R;

  if (Opts.GuaranteedFit) {
    std::shared_ptr<const State> Pre = Cache.get(R.DAG, M, Opts.Measure);
    if (Pre->TotalExcess > 0) {
      AddDiag(Severity::Note, "guaranteed-fit fallback: sequentializing "
                              "and spilling the residual excess");
      guaranteedFitFallback(R, M, Opts.Measure, Cache);
    }
  }

  std::shared_ptr<const State> Final = Cache.get(R.DAG, M, Opts.Measure);
  R.CritPathAfter = Final->CritPath;
  R.WithinLimits = Final->TotalExcess == 0;
  for (const Measurement &Ms : Final->Meas)
    R.FinalRequired.push_back(Ms.MaxRequired);
  return R;
}
