//===- ursa/Driver.cpp - The URSA allocation driver -----------------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ursa/Driver.h"

#include "graph/DAGBuilder.h"
#include "obs/Stats.h"
#include "obs/Tracer.h"
#include "sched/RegAssign.h"
#include "support/RNG.h"
#include "support/ThreadPool.h"
#include "ursa/FaultInjector.h"
#include "ursa/IncrementalMeasure.h"
#include "ursa/MeasureCache.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <unordered_set>

using namespace ursa;

URSA_STAT(StatRounds, "ursa.driver.rounds", "transformation rounds applied");
URSA_STAT(StatProposalsTried, "ursa.driver.proposals_tried",
          "candidate transforms tentatively applied and remeasured");
URSA_STAT(StatSweeps, "ursa.driver.sweeps", "outer fixpoint sweeps run");
URSA_STAT(StatFallbacks, "ursa.driver.fallback_activations",
          "guaranteed-fit fallback activations");
URSA_STAT(StatStopMaxRounds, "ursa.driver.stop.max_rounds",
          "phases cut off by the MaxRounds safety valve");
URSA_STAT(StatStopMaxTotal, "ursa.driver.stop.max_total_rounds",
          "runs cut off by the MaxTotalRounds safety valve");
URSA_STAT(StatStopTimeBudget, "ursa.driver.stop.time_budget",
          "runs cut off by the TimeBudgetMs safety valve");
URSA_STAT(StatStopLivelock, "ursa.driver.stop.livelock",
          "runs stopped by livelock detection");
URSA_STAT(StatKeptFUSeq, "ursa.transforms.kept.fu_seq",
          "FU-sequencing transforms kept");
URSA_STAT(StatKeptRegSeq, "ursa.transforms.kept.reg_seq",
          "register-sequencing transforms kept");
URSA_STAT(StatKeptSpill, "ursa.transforms.kept.spill",
          "spill transforms kept");
URSA_STAT(StatParallelEvalBatches, "ursa.driver.parallel_eval_batches",
          "proposal-evaluation rounds fanned out to the thread pool");
URSA_STAT(StatIncrementalPromotions, "ursa.driver.incremental.promotions",
          "delta-scored winners promoted to the next round's base via "
          "their delta closure (closure rebuild skipped)");
URSA_STAT(StatIncrementalEvals, "ursa.driver.incremental.delta_evals",
          "proposal evaluations scored by the incremental delta path");
URSA_STAT(StatIncrementalFallbacks, "ursa.driver.incremental.fallbacks",
          "proposal evaluations that fell back to a full rebuild while "
          "incremental measurement was enabled");
URSA_STAT(StatBeamRounds, "ursa.driver.beam.rounds",
          "beam expansion rounds (every live state scored)");
URSA_STAT(StatBeamCandidates, "ursa.driver.beam.candidates",
          "beam (state x proposal) candidates evaluated");
URSA_STAT(StatBeamDedup, "ursa.driver.beam.dedup_hits",
          "beam candidates dropped as duplicate dagFingerprints");
URSA_STAT(StatBeamAdmitted, "ursa.driver.beam.admitted",
          "beam successors admitted into the live set");
URSA_STAT(StatBeamRetired, "ursa.driver.beam.retired",
          "beam states retired with no admissible successor");
URSA_STAT(StatNoopSkipped, "ursa.driver.noop_proposals_skipped",
          "candidates excluded from the reduction because the transform "
          "left the DAG fingerprint unchanged (no-op proposals)");
URSA_STAT(StatPortfolioRuns, "ursa.driver.portfolio.runs",
          "portfolio racer instances completed");
URSA_STAT(StatPortfolioImproved, "ursa.driver.portfolio.improved",
          "portfolio racers that beat the incumbent best allocation");

bool ursa::defaultIncrementalMeasure() {
  const char *E = std::getenv("URSA_INCREMENTAL");
  if (!E)
    return true;
  return !(std::strcmp(E, "0") == 0 || std::strcmp(E, "off") == 0 ||
           std::strcmp(E, "false") == 0);
}

unsigned ursa::defaultMeasurementCacheSize() {
  if (const char *E = std::getenv("URSA_CACHE_SIZE")) {
    int V = std::atoi(E);
    if (V > 0)
      return unsigned(V);
  }
  return 4;
}

unsigned ursa::defaultBeamWidth() {
  if (const char *E = std::getenv("URSA_BEAM")) {
    int V = std::atoi(E);
    if (V > 0)
      return unsigned(V);
  }
  return 1;
}

namespace {

/// The driver's historical name for a measured DAG state; the type now
/// lives in ursa/MeasureCache.h so the compile service can share cached
/// instances across requests.
using State = MeasuredState;

/// Score of a tentatively applied proposal. The paper asks for "the
/// combination of minimizing the critical path and reduction of all
/// excess requirements": proposals are ranked by excess-reduction per
/// unit of critical-path growth (spill traffic counts as extra cost),
/// then by the resulting critical path, preferring sequencing on ties.
struct Score {
  unsigned TotalExcess;
  unsigned Gain;     ///< excess removed by this proposal
  unsigned Cost;     ///< critical-path growth + spill-traffic penalty
  unsigned CritPath; ///< absolute critical path after
  unsigned IsSpill;  ///< paper Section 5: prefer sequencing on a tie
  unsigned NumEdges;

  bool operator<(const Score &O) const {
    // Higher Gain/Cost ratio wins (cross-multiplied, +1 to avoid /0).
    uint64_t L = uint64_t(Gain) * (O.Cost + 1);
    uint64_t R = uint64_t(O.Gain) * (Cost + 1);
    if (L != R)
      return L > R;
    if (CritPath != O.CritPath)
      return CritPath < O.CritPath;
    if (IsSpill != O.IsSpill)
      return IsSpill < O.IsSpill;
    return NumEdges < O.NumEdges;
  }
};

/// Span label for one tentative transform evaluation (static storage:
/// span names must outlive the event buffer).
const char *evalSpanName(TransformProposal::KindT K) {
  switch (K) {
  case TransformProposal::FUSequence:
    return "eval.fu-seq";
  case TransformProposal::RegSequence:
    return "eval.reg-seq";
  case TransformProposal::Spill:
    return "eval.spill";
  }
  return "eval";
}

} // namespace

std::string RoundRecord::describe() const {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), " (excess %u->%u, cp %u)", ExcessBefore,
                ExcessAfter, CritPath);
  return Detail + Buf;
}

std::vector<std::string> URSAResult::formatLog() const {
  std::vector<std::string> Out;
  Out.reserve(RoundLog.size());
  for (const RoundRecord &RR : RoundLog)
    Out.push_back(RR.describe());
  return Out;
}

/// Collects candidate proposals for the current state, restricted to the
/// resource kinds active in this phase.
static std::vector<TransformProposal>
collectProposals(const DependenceDAG &D, const State &S, bool DoRegs,
                 bool DoFUs, const URSAOptions &Opts) {
  TransformContext Ctx{D, *S.A, *S.HF};
  std::vector<TransformProposal> Props;
  for (unsigned I = 0; I != S.Meas.size(); ++I) {
    const Measurement &M = S.Meas[I];
    unsigned Limit = S.Limits[I].second;
    if (M.MaxRequired <= Limit)
      continue;
    bool IsReg = M.Res.Kind == ResourceId::Reg;
    if ((IsReg && !DoRegs) || (!IsReg && !DoFUs))
      continue;
    // Innermost hammocks first; a couple of sets per resource per round
    // keeps the tentative-application cost bounded. Above the closure
    // threshold the cap is pushed into the search itself (the loop below
    // never consumes more than two sets, so the output is identical —
    // the search just stops scanning hammocks it would have discarded).
    unsigned MaxSets = D.size() > closureThreshold() ? 2 : 0;
    std::vector<ExcessiveChainSet> Sets =
        findExcessiveSets(M, *S.A, *S.HF, Limit, MaxSets);
    unsigned Taken = 0;
    for (const ExcessiveChainSet &E : Sets) {
      if (Taken++ == 2)
        break;
      std::vector<TransformProposal> P;
      if (IsReg) {
        if (Opts.EnableRegSeq)
          P = proposeRegSequencing(Ctx, E);
        if (Opts.EnableSpills) {
          std::vector<TransformProposal> Sp = proposeSpills(Ctx, E);
          P.insert(P.end(), Sp.begin(), Sp.end());
        }
      } else {
        P = proposeFUSequencing(Ctx, E);
      }
      Props.insert(Props.end(), P.begin(), P.end());
    }
  }
  return Props;
}

/// Deterministic tie-break perturbation (URSAOptions::TieBreakSeed):
/// Fisher-Yates shuffle of the proposal list, keyed on the seed mixed with
/// a per-round ordinal so every round draws a distinct permutation.
/// Scoring is order-independent — the serial reduction compares scores,
/// not positions — so only exact-score ties can change winners.
static void shuffleProposals(std::vector<TransformProposal> &Props,
                             uint64_t Seed, uint64_t Ordinal) {
  if (Props.size() < 2)
    return;
  RNG G(Seed ^ (0x9e3779b97f4a7c15ULL * (Ordinal + 1)));
  for (size_t I = Props.size() - 1; I > 0; --I)
    std::swap(Props[I], Props[G.below(I + 1)]);
}

/// Chains every real node into one total order (consecutive in the
/// current topological order), collapsing all parallelism. Afterwards
/// every CanReuse relation is a total order too, so each FU class needs
/// one unit and the register requirement equals sequential liveness.
static unsigned sequentializeTotally(DependenceDAG &D) {
  unsigned Added = 0, Prev = ~0u;
  DAGAnalysis A(D);
  for (unsigned N : A.topoOrder()) {
    if (DependenceDAG::isVirtual(N))
      continue;
    if (Prev != ~0u && D.addEdge(Prev, N, EdgeKind::Sequence))
      ++Added;
    Prev = N;
  }
  D.normalizeVirtualEdges();
  return Added;
}

/// The guaranteed-fit fallback (graceful degradation): total-order
/// sequentialization plus spilling of long-lived values until every
/// measured requirement fits the machine or nothing spillable remains.
/// Termination: each iteration spills a value whose post-spill live range
/// collapses below the candidacy threshold, and reload-defined values are
/// never candidates.
static void guaranteedFitFallback(URSAResult &R, const MachineModel &M,
                                  const MeasureOptions &MO,
                                  MeasurementCache &Cache) {
  URSA_SPAN(FallbackSpan, "ursa.fallback", "driver");
  StatFallbacks.add();
  R.FallbackUsed = true;
  R.SeqEdgesAdded += sequentializeTotally(R.DAG);
  unsigned MaxIter = R.DAG.trace().numVRegs() + 4;
  for (unsigned Iter = 0; Iter != MaxIter; ++Iter) {
    std::shared_ptr<const State> SP = Cache.get(R.DAG, M, MO);
    const State &S = *SP;
    if (S.TotalExcess == 0)
      return;
    const Trace &T = R.DAG.trace();

    // Longest live span in the (total) schedule order, among values not
    // produced by spill code.
    unsigned NV = T.numVRegs();
    std::vector<int> DefPos(NV, -1), LastPos(NV, -1), DefIdx(NV, -1);
    for (unsigned Idx = 0; Idx != T.size(); ++Idx) {
      const Instruction &I = T.instr(Idx);
      int Pos = int(S.A->topoPos(DependenceDAG::nodeOf(Idx)));
      if (I.dest() >= 0) {
        DefPos[I.dest()] = Pos;
        DefIdx[I.dest()] = int(Idx);
        LastPos[I.dest()] = std::max(LastPos[I.dest()], Pos);
      }
      for (unsigned Op = 0; Op != I.numOperands(); ++Op)
        LastPos[I.operand(Op)] = std::max(LastPos[I.operand(Op)], Pos);
    }
    int Victim = -1, BestSpan = 1;
    for (unsigned V = 0; V != NV; ++V) {
      if (DefPos[V] < 0 || isSpillOp(T.instr(DefIdx[V]).opcode()))
        continue;
      int Span = LastPos[V] - DefPos[V];
      if (Span > BestSpan) {
        BestSpan = Span;
        Victim = int(V);
      }
    }
    if (Victim < 0)
      return; // honest: WithinLimits stays false
    Trace T2 = T;
    spillValueInTrace(T2, Victim);
    ++R.SpillsInserted;
    R.DAG = buildDAG(std::move(T2));
    R.SeqEdgesAdded += sequentializeTotally(R.DAG);
  }
}

/// The paper's greedy keep-one-winner loop (Section 5) — the historical
/// driver, and the BeamWidth == 1 case of the beam search. Kept as its
/// own function so the K == 1 contract ("bit-for-bit identical to
/// greedy") is true by construction.
static URSAResult runGreedy(DependenceDAG D, const MachineModel &M,
                            const URSAOptions &Opts) {
  URSA_SPAN(AllocSpan, "ursa.allocate", "driver");
  URSAResult R(std::move(D));
  const bool VerifyOn = Opts.Verify != VerifyLevel::None;
  const bool VerifyFull = Opts.Verify == VerifyLevel::Full;
  auto AddDiag = [&R](Severity Sev, std::string Msg) {
    R.Diags.push_back({Sev, "allocate", std::move(Msg)});
  };
  auto FailVerify = [&R](const Status &St) {
    for (const Diag &Dg : St.diags())
      R.Diags.push_back(Dg);
    R.VerifyFailed = true;
    if (std::find(R.StopReasons.begin(), R.StopReasons.end(),
                  "verify_failed") == R.StopReasons.end())
      R.StopReasons.push_back("verify_failed");
  };
  // Safety-valve accounting: every early stop gets a named counter and a
  // StopReasons entry so neither report format can hide it.
  auto AddStop = [&R](const char *Reason, obs::Statistic &Counter) {
    Counter.add();
    if (std::find(R.StopReasons.begin(), R.StopReasons.end(), Reason) ==
        R.StopReasons.end())
      R.StopReasons.push_back(Reason);
  };

  // Input gate: never run the O(n^2) analyses on a malformed DAG — they
  // assert (or worse) instead of diagnosing.
  if (VerifyOn) {
    Status St = verifyDAGStructure(R.DAG);
    if (!St.isOk()) {
      FailVerify(St);
      return R;
    }
  }

  // The proposal-evaluation pool and the measurement cache live for the
  // whole run. Threads == 1 spawns no workers and evaluates inline, so
  // serial behavior is always recoverable (URSA_THREADS=1), including
  // under fault injection.
  unsigned NumThreads =
      Opts.Threads ? Opts.Threads : ThreadPool::defaultThreads();
  std::unique_ptr<ThreadPool> Pool;
  if (NumThreads > 1)
    Pool = std::make_unique<ThreadPool>(NumThreads);
  MeasurementCache LocalCache(Opts.MeasurementReuse,
                              Opts.MeasurementCacheSize
                                  ? Opts.MeasurementCacheSize
                                  : defaultMeasurementCacheSize());
  MeasurementCache &Cache =
      Opts.SharedCache ? *Opts.SharedCache : LocalCache;

  auto StartTime = std::chrono::steady_clock::now();
  enum class BudgetTrip { None, TotalRounds, Time };
  auto BudgetExceeded = [&]() {
    if (R.Rounds >= Opts.MaxTotalRounds)
      return BudgetTrip::TotalRounds;
    if (Opts.TimeBudgetMs == 0)
      return BudgetTrip::None;
    auto Ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                  std::chrono::steady_clock::now() - StartTime)
                  .count();
    return Ms >= long(Opts.TimeBudgetMs) ? BudgetTrip::Time
                                         : BudgetTrip::None;
  };

  std::vector<std::pair<bool, bool>> Phases; // (regs?, fus?)
  switch (Opts.Order) {
  case PhaseOrdering::RegistersFirst:
    Phases = {{true, false}, {false, true}};
    break;
  case PhaseOrdering::FUsFirst:
    Phases = {{false, true}, {true, false}};
    break;
  case PhaseOrdering::Integrated:
    Phases = {{true, true}};
    break;
  }
  // A final integrated sweep mops up residue a single-resource phase got
  // stuck on (e.g. register excess only removable after functional-unit
  // sequencing shortened lifetimes); usually a no-op.
  Phases.push_back({true, true});

  unsigned PrevSweepExcess;
  {
    std::shared_ptr<const State> S0 = Cache.get(R.DAG, M, Opts.Measure);
    R.CritPathBefore = S0->CritPath;
    PrevSweepExcess = S0->TotalExcess;
  }

  // Outer fixpoint: a register round can disturb the functional-unit
  // phase's work and vice versa, so the phase list repeats until a whole
  // pass applies nothing (or the excess is gone). Bail stops transforming
  // — on a verification failure the DAG is corrupt and only diagnostics
  // come back; on budget exhaustion or livelock the current (sound) state
  // proceeds to accounting and, optionally, the guaranteed-fit fallback.
  bool Bail = false;
  unsigned StaleSweeps = 0;
  for (unsigned Sweep = 0; Sweep != 4 && !Bail; ++Sweep) {
  StatSweeps.add();
  unsigned RoundsAtSweepStart = R.Rounds;
  for (auto [DoRegs, DoFUs] : Phases) {
    if (Bail)
      break;
    URSA_SPAN(PhaseSpan,
              DoRegs && DoFUs ? "ursa.phase.integrated"
              : DoRegs        ? "ursa.phase.regs"
                              : "ursa.phase.fus",
              "driver");
    // Plateau patience: a round that keeps the excess flat can still set
    // up the next reduction (wave edges), but only finitely many are
    // tolerated before the residual is left to the assignment phase.
    unsigned Patience = 6;
    // Distinguishes the MaxRounds valve tripping from the usual breaks
    // (converged, plateau, budget): only falling off the end of the loop
    // leaves it set.
    bool HitRoundCap = true;
    for (unsigned Round = 0; Round < Opts.MaxRounds; ++Round) {
      if (BudgetTrip Trip = BudgetExceeded(); Trip != BudgetTrip::None) {
        R.BudgetExhausted = true;
        if (Trip == BudgetTrip::TotalRounds) {
          AddStop("max_total_rounds", StatStopMaxTotal);
          AddDiag(Severity::Warning, "MaxTotalRounds budget exhausted; "
                                     "leaving residual excess");
        } else {
          AddStop("time_budget", StatStopTimeBudget);
          AddDiag(Severity::Warning, "TimeBudgetMs budget exhausted; "
                                     "leaving residual excess");
        }
        Bail = true;
        HitRoundCap = false;
        break;
      }
      if (VerifyOn) {
        Status St = verifyDAGStructure(R.DAG);
        if (!St.isOk()) {
          FailVerify(St);
          Bail = true;
          HitRoundCap = false;
          break;
        }
      }
      auto RoundStart = std::chrono::steady_clock::now();
      std::shared_ptr<const State> SP = Cache.get(R.DAG, M, Opts.Measure);
      const State &S = *SP;
      std::vector<TransformProposal> Props =
          collectProposals(R.DAG, S, DoRegs, DoFUs, Opts);
      if (Props.empty()) {
        HitRoundCap = false;
        break;
      }
      if (Opts.TieBreakSeed)
        shuffleProposals(Props, Opts.TieBreakSeed, R.Rounds);
      StatProposalsTried.add(Props.size());
      // Round-start fingerprint: the no-op filter below and the livelock
      // cross-check after the apply both compare against it.
      const uint64_t RoundFp = dagFingerprint(R.DAG);

      // Tentatively apply each proposal to its own scratch copy and
      // remeasure — the hot loop. Evaluations are independent (pure
      // functions of R.DAG + the proposal; stats are relaxed atomics and
      // spans are scoped per task behind a mutex-guarded buffer), so they
      // fan out across the pool. Scoring happens inside the task; the
      // pick happens in a serial reduction below, in proposal order, so
      // the chosen Best is bit-identical to the serial evaluation.
      //
      // With IncrementalMeasure on, edge-only proposals are scored through
      // the delta engine against the round-start state S: same canonical
      // numbers (widths/excess/critical path), a fraction of the work. A
      // delta-scored evaluation has no State to cache (SS stays null), so
      // if it wins, the next round rebuilds once from R.DAG — one full
      // build per round instead of 1 + P. Spills and unprovable deltas
      // take the full path exactly as before.
      struct Eval {
        Score Sc{~0u, 0, ~0u, ~0u, ~0u, ~0u};
        uint64_t Fp = 0; ///< fingerprint of the transformed scratch DAG
        std::shared_ptr<const State> SS;
        bool Diverged = false; ///< VerifyFull: delta != fresh rebuild
      };
      std::vector<Eval> Evals(Props.size());
      std::unique_ptr<IncrementalMeasurer> Inc;
      if (Opts.IncrementalMeasure)
        Inc = std::make_unique<IncrementalMeasurer>(R.DAG, *S.A, S.Meas,
                                                    S.Limits, Opts.Measure);
      auto EvalOne = [&](size_t I) {
        URSA_SPAN(EvalSpan, evalSpanName(Props[I].Kind), "transform");
        DependenceDAG Scratch = R.DAG;
        ApplyStats ScratchSt = applyTransform(Scratch, Props[I]);
        bool IsSpill = Props[I].Kind == TransformProposal::Spill;
        unsigned NewExcess = 0, NewCrit = 0;
        std::shared_ptr<const State> SS;
        DeltaMeasurement DM;
        if (Inc && Inc->measureDelta(Scratch, Props[I], ScratchSt.Delta, DM)) {
          StatIncrementalEvals.add();
          NewExcess = DM.TotalExcess;
          NewCrit = DM.CritPath;
          if (VerifyFull) {
            // The incremental contract: every delta-derived number must
            // match a fresh rebuild bit for bit.
            State Fresh(Scratch, M, Opts.Measure);
            bool Same = Fresh.TotalExcess == DM.TotalExcess &&
                        Fresh.CritPath == DM.CritPath &&
                        Fresh.Meas.size() == DM.Required.size();
            for (unsigned K = 0; Same && K != Fresh.Meas.size(); ++K)
              Same = Fresh.Meas[K].MaxRequired == DM.Required[K];
            Evals[I].Diverged = !Same;
          }
        } else {
          if (Inc)
            StatIncrementalFallbacks.add();
          SS = std::make_shared<const State>(Scratch, M, Opts.Measure);
          NewExcess = SS->TotalExcess;
          NewCrit = SS->CritPath;
        }
        unsigned Cost =
            (NewCrit > S.CritPath ? NewCrit - S.CritPath : 0) +
            (IsSpill ? 2 : 0); // store+reload occupy FU slots
        Evals[I].Sc =
            Score{NewExcess,
                  S.TotalExcess - std::min(S.TotalExcess, NewExcess),
                  Cost,
                  NewCrit,
                  IsSpill ? 1u : 0u,
                  unsigned(Props[I].SeqEdges.size())};
        Evals[I].Fp = dagFingerprint(Scratch);
        Evals[I].SS = std::move(SS);
      };
      if (Pool && Props.size() > 1) {
        StatParallelEvalBatches.add();
        Pool->parallelFor(Props.size(), EvalOne);
      } else {
        for (size_t I = 0; I != Props.size(); ++I)
          EvalOne(I);
      }

      if (VerifyFull && Inc) {
        bool AnyDiverged = false;
        for (unsigned I = 0; I != Evals.size(); ++I)
          if (Evals[I].Diverged) {
            FailVerify(Status::error(
                "allocate", "incremental measurement diverged from the "
                            "full rebuild for proposal '" +
                                Props[I].describe() + "'"));
            AnyDiverged = true;
          }
        if (AnyDiverged) {
          Bail = true;
          HitRoundCap = false;
          break;
        }
      }

      // Keep the best never-worsening proposal (paper Section 5).
      int Best = -1;
      Score BestScore{~0u, 0, ~0u, ~0u, ~0u, ~0u};
      for (unsigned I = 0; I != Props.size(); ++I) {
        // A proposal whose edges were all already present applies nothing:
        // adopting it would burn a round (or Patience) without changing
        // the DAG, then re-propose itself next round — the fingerprint
        // livelock detector never fired because the apply reports zero
        // claimed progress. Filter such no-ops out of the reduction
        // entirely; the fingerprint of the transformed scratch equals the
        // round-start fingerprint exactly when nothing changed.
        if (Evals[I].Fp == RoundFp) {
          StatNoopSkipped.add();
          continue;
        }
        const Score &Sc = Evals[I].Sc;
        if (Sc.TotalExcess <= S.TotalExcess && Sc < BestScore) {
          BestScore = Sc;
          Best = int(I);
        }
      }
      if (Best < 0) {
        // Every proposal worsens; leave residual to assignment.
        HitRoundCap = false;
        break;
      }
      if (BestScore.TotalExcess == S.TotalExcess) {
        // FU wave edges make monotonic progress (each round orders at
        // least one previously parallel pair), so they ride on MaxRounds
        // alone; other plateaus burn patience.
        if (Props[Best].Kind != TransformProposal::FUSequence) {
          if (Patience == 0) {
            HitRoundCap = false;
            break;
          }
          --Patience;
        }
      } else {
        Patience = 6;
      }

      // Apply, cross-checking claimed progress against the actual DAG
      // delta: a transform that says it changed something but didn't
      // would re-propose itself forever (livelock by lying).
      ApplyStats ASt;
      bool FakedApply =
          Opts.Faults && Opts.Faults->shouldFakeProgress(R.Rounds);
      if (FakedApply)
        ASt.EdgesAdded = unsigned(std::max<size_t>(
            1, Props[Best].SeqEdges.size())); // claimed, never applied
      else
        ASt = applyTransform(R.DAG, Props[Best]);
      // Adopt the winner's remeasure: applying the same proposal to
      // R.DAG reproduces the scratch copy bit for bit, so the next
      // round's start state (and the sweep-end/final accounting) comes
      // from the cache instead of an O(n^2) rebuild. The fingerprint
      // guard keeps a faked apply (FalseProgress injection) or a
      // non-reproducing transform from planting a wrong entry.
      const uint64_t FpAfter = dagFingerprint(R.DAG);
      if (Opts.MeasurementReuse && Evals[Best].SS &&
          FpAfter == Evals[Best].Fp) {
        Cache.insert(Evals[Best].Fp, Evals[Best].SS);
      } else if (Opts.MeasurementReuse && !Evals[Best].SS && !FakedApply &&
                 FpAfter == Evals[Best].Fp) {
        // Delta-scored winner: no full state was built for it, so promote
        // it through its delta closure instead of letting the next round
        // rebuild the O(n^2) reachability from scratch. buildIncremental
        // is bit-identical to a fresh analysis (canonical closure), and
        // the rest of the state (hammocks, measurements, excess) derives
        // from it exactly as a from-scratch build would; the differential
        // test in tests/incremental_test.cpp pins this. A nullptr (edge
        // list not provably a pure delta against the applied DAG) just
        // falls back to the old full rebuild on the next get(). Spill
        // winners replay the journal the real apply just recorded —
        // additions, removals, and appended nodes — through
        // buildIncrementalDelta.
        std::unique_ptr<DAGAnalysis> NA =
            Props[Best].Kind == TransformProposal::Spill
                ? DAGAnalysis::buildIncrementalDelta(R.DAG, *S.A, ASt.Delta)
                : DAGAnalysis::buildIncremental(R.DAG, *S.A,
                                                Props[Best].SeqEdges);
        if (NA) {
          StatIncrementalPromotions.add();
          // Warm the remeasure from the round-start decomposition: the
          // applied transform perturbs the reuse relations by a handful
          // of pairs, so the row-direct matcher only repairs those
          // instead of re-matching ~N pairs from scratch. Width stays
          // canonical for any seed (Measure.h, WarmFrom).
          MeasureOptions WarmMO = Opts.Measure;
          WarmMO.WarmFrom = &S.Meas;
          Cache.insert(FpAfter, std::make_shared<const State>(
                                    R.DAG, M, WarmMO, std::move(NA)));
        }
      }
      R.SeqEdgesAdded += ASt.EdgesAdded;
      R.SpillsInserted += ASt.SpillsInserted;
      ++R.Rounds;
      StatRounds.add();
      switch (Props[Best].Kind) {
      case TransformProposal::FUSequence:
        StatKeptFUSeq.add();
        break;
      case TransformProposal::RegSequence:
        StatKeptRegSeq.add();
        break;
      case TransformProposal::Spill:
        StatKeptSpill.add();
        break;
      }
      {
        RoundRecord RR;
        RR.Round = R.Rounds;
        RR.Kind = Props[Best].Kind;
        RR.Resource = Props[Best].Res.describe();
        RR.Detail = Props[Best].describe();
        RR.ExcessBefore = S.TotalExcess;
        RR.ExcessAfter = BestScore.TotalExcess;
        RR.CritPath = BestScore.CritPath;
        RR.EdgesAdded = ASt.EdgesAdded;
        RR.SpillsInserted = ASt.SpillsInserted;
        RR.ProposalsTried = unsigned(Props.size());
        RR.DurationMs = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - RoundStart)
                            .count();
        R.RoundLog.push_back(std::move(RR));
      }
      if (VerifyOn && (ASt.EdgesAdded || ASt.SpillsInserted) &&
          FpAfter == RoundFp) {
        AddDiag(Severity::Error,
                "transform '" + Props[Best].describe() +
                    "' reported progress but left the DAG unchanged");
        R.LivelockDetected = true;
        AddStop("livelock", StatStopLivelock);
        Bail = true;
        HitRoundCap = false;
        break;
      }
      // Armed DAG-corruption faults strike after a round, like a buggy
      // in-place mutation would; the next round's gate must catch them.
      if (Opts.Faults)
        Opts.Faults->maybeInjectDAG(R.DAG, R.Rounds);
    }
    if (HitRoundCap) {
      AddStop("max_rounds", StatStopMaxRounds);
      AddDiag(Severity::Warning,
              "MaxRounds safety valve tripped for a phase; leaving "
              "residual excess");
    }

    // Phase boundary: the next phase (or the assignment) inherits this
    // DAG — prove the hand-off.
    if (!Bail && VerifyOn) {
      Status St = verifyDAGStructure(R.DAG);
      if (St.isOk() && VerifyFull) {
        std::shared_ptr<const State> PB = Cache.get(R.DAG, M, Opts.Measure);
        St.merge(verifyMeasurements(PB->Meas));
      }
      if (!St.isOk()) {
        FailVerify(St);
        Bail = true;
      }
    }
  }
  if (Bail)
    break;

  {
    std::shared_ptr<const State> Check = Cache.get(R.DAG, M, Opts.Measure);
    R.ClosureBytesPeak =
        std::max(R.ClosureBytesPeak, Check->A->closureMemoryBytes());
    if (Check->TotalExcess == 0 || R.Rounds == RoundsAtSweepStart)
      break;
    // Livelock detection: sweeps that keep applying transforms without
    // reducing the total excess will not converge; two in a row and the
    // residual goes to the assignment phase (or the fallback) instead.
    if (Check->TotalExcess >= PrevSweepExcess) {
      if (++StaleSweeps >= 2) {
        R.LivelockDetected = true;
        AddStop("livelock", StatStopLivelock);
        AddDiag(Severity::Warning,
                "livelock: consecutive sweeps applied transforms without "
                "reducing total excess");
        break;
      }
    } else {
      StaleSweeps = 0;
    }
    PrevSweepExcess = Check->TotalExcess;
  }
  }

  // A corrupt DAG supports no further measurement — return what we know.
  if (R.VerifyFailed)
    return R;

  if (Opts.GuaranteedFit) {
    std::shared_ptr<const State> Pre = Cache.get(R.DAG, M, Opts.Measure);
    if (Pre->TotalExcess > 0) {
      AddDiag(Severity::Note, "guaranteed-fit fallback: sequentializing "
                              "and spilling the residual excess");
      guaranteedFitFallback(R, M, Opts.Measure, Cache);
    }
  }

  std::shared_ptr<const State> Final = Cache.get(R.DAG, M, Opts.Measure);
  R.CritPathAfter = Final->CritPath;
  R.WithinLimits = Final->TotalExcess == 0;
  R.ClosureRepUsed = closureRepName(Final->A->closureRep());
  R.ClosureBytesPeak =
      std::max(R.ClosureBytesPeak, Final->A->closureMemoryBytes());
  for (const Measurement &Ms : Final->Meas)
    R.FinalRequired.push_back(Ms.MaxRequired);
  return R;
}

namespace {

/// One live state of the beam: a DAG with its measured state plus the
/// path-local accounting that becomes the URSAResult if this state wins.
struct BeamEntry {
  DependenceDAG DAG;
  std::shared_ptr<const State> S;
  uint64_t Fp = 0;
  unsigned Rounds = 0;
  unsigned SeqEdgesAdded = 0;
  unsigned SpillsInserted = 0;
  unsigned Patience = 6;
  std::vector<RoundRecord> RoundLog;

  explicit BeamEntry(DependenceDAG DG) : DAG(std::move(DG)) {}
};

/// Sum of the per-resource requirements — the beam's secondary quality
/// criterion, and exactly the registers+FUs metric the benches gate on.
/// Proposals only exist while some excess remains, so two states with
/// equal excess still differ in how much slack they leave behind.
unsigned sumRequired(const State &S) {
  unsigned T = 0;
  for (const Measurement &Ms : S.Meas)
    T += Ms.MaxRequired;
  return T;
}

/// Strict-weak "is A a better live state than B" for beam ranking and
/// final winner selection. Exact ties fall through to false so stable
/// sorts keep insertion (state, proposal) order — part of the
/// thread-count determinism contract.
bool entryBetter(const BeamEntry &A, const BeamEntry &B) {
  if (A.S->TotalExcess != B.S->TotalExcess)
    return A.S->TotalExcess < B.S->TotalExcess;
  unsigned RA = sumRequired(*A.S), RB = sumRequired(*B.S);
  if (RA != RB)
    return RA < RB;
  if (A.S->CritPath != B.S->CritPath)
    return A.S->CritPath < B.S->CritPath;
  if (A.SpillsInserted != B.SpillsInserted)
    return A.SpillsInserted < B.SpillsInserted;
  return false;
}

} // namespace

/// The beam-search driver (BeamWidth == K >= 2): the greedy loop's exact
/// evaluation machinery — same proposals, same Score, same delta engine,
/// same never-worsening rule — but keeping the top-K live states per
/// round instead of one. States are deduplicated by dagFingerprint within
/// each phase, every (state, proposal) candidate is scored across the
/// thread pool, and the admission reduction runs serially in candidate
/// order, so results are bit-identical at any thread count. The budget
/// unit is the beam expansion round (all live states scored once), so
/// MaxTotalRounds bounds wall-clock the same way it does for greedy.
static URSAResult runBeamSearch(DependenceDAG D, const MachineModel &M,
                                const URSAOptions &Opts, unsigned K) {
  URSA_SPAN(AllocSpan, "ursa.allocate", "driver");
  URSAResult R(std::move(D));
  const bool VerifyOn = Opts.Verify != VerifyLevel::None;
  const bool VerifyFull = Opts.Verify == VerifyLevel::Full;
  auto AddDiag = [&R](Severity Sev, std::string Msg) {
    R.Diags.push_back({Sev, "allocate", std::move(Msg)});
  };
  auto FailVerify = [&R](const Status &St) {
    for (const Diag &Dg : St.diags())
      R.Diags.push_back(Dg);
    R.VerifyFailed = true;
    if (std::find(R.StopReasons.begin(), R.StopReasons.end(),
                  "verify_failed") == R.StopReasons.end())
      R.StopReasons.push_back("verify_failed");
  };
  auto AddStop = [&R](const char *Reason, obs::Statistic &Counter) {
    Counter.add();
    if (std::find(R.StopReasons.begin(), R.StopReasons.end(), Reason) ==
        R.StopReasons.end())
      R.StopReasons.push_back(Reason);
  };

  if (VerifyOn) {
    Status St = verifyDAGStructure(R.DAG);
    if (!St.isOk()) {
      FailVerify(St);
      return R;
    }
  }

  unsigned NumThreads =
      Opts.Threads ? Opts.Threads : ThreadPool::defaultThreads();
  std::unique_ptr<ThreadPool> Pool;
  if (NumThreads > 1)
    Pool = std::make_unique<ThreadPool>(NumThreads);
  // K live start states plus their winning remeasures are all hot at
  // once; make sure a private cache can hold them.
  unsigned CacheSize = Opts.MeasurementCacheSize
                           ? Opts.MeasurementCacheSize
                           : defaultMeasurementCacheSize();
  MeasurementCache LocalCache(Opts.MeasurementReuse,
                              std::max(CacheSize, 2 * K + 2));
  MeasurementCache &Cache =
      Opts.SharedCache ? *Opts.SharedCache : LocalCache;

  auto StartTime = std::chrono::steady_clock::now();
  unsigned BeamSteps = 0; // expansion rounds — the MaxTotalRounds unit
  enum class BudgetTrip { None, TotalRounds, Time };
  auto BudgetExceeded = [&]() {
    if (BeamSteps >= Opts.MaxTotalRounds)
      return BudgetTrip::TotalRounds;
    if (Opts.TimeBudgetMs == 0)
      return BudgetTrip::None;
    auto Ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                  std::chrono::steady_clock::now() - StartTime)
                  .count();
    return Ms >= long(Opts.TimeBudgetMs) ? BudgetTrip::Time
                                         : BudgetTrip::None;
  };

  std::vector<std::pair<bool, bool>> Phases; // (regs?, fus?)
  switch (Opts.Order) {
  case PhaseOrdering::RegistersFirst:
    Phases = {{true, false}, {false, true}};
    break;
  case PhaseOrdering::FUsFirst:
    Phases = {{false, true}, {true, false}};
    break;
  case PhaseOrdering::Integrated:
    Phases = {{true, true}};
    break;
  }
  Phases.push_back({true, true});

  std::vector<BeamEntry> Beam;
  {
    BeamEntry E0(R.DAG);
    E0.S = Cache.get(E0.DAG, M, Opts.Measure);
    E0.Fp = dagFingerprint(E0.DAG);
    R.CritPathBefore = E0.S->CritPath;
    Beam.push_back(std::move(E0));
  }
  unsigned PrevSweepExcess = Beam.front().S->TotalExcess;

  bool Bail = false;
  unsigned StaleSweeps = 0;
  for (unsigned Sweep = 0; Sweep != 4 && !Bail; ++Sweep) {
    StatSweeps.add();
    unsigned StepsAtSweepStart = BeamSteps;
    for (auto [DoRegs, DoFUs] : Phases) {
      if (Bail)
        break;
      URSA_SPAN(PhaseSpan,
                DoRegs && DoFUs ? "ursa.phase.integrated"
                : DoRegs        ? "ursa.phase.regs"
                                : "ursa.phase.fus",
                "driver");
      // Per-phase fingerprint dedup: every state that was ever live in
      // this phase blocks re-admission, so the beam cannot cycle.
      std::unordered_set<uint64_t> SeenFps;
      for (BeamEntry &E : Beam) {
        SeenFps.insert(E.Fp);
        E.Patience = 6;
      }
      // States with no admissible successor retire from expansion but
      // stay candidates for the phase-end ranking (a stuck state can
      // still be the best allocation found).
      std::vector<BeamEntry> Retired;
      bool HitRoundCap = true;
      for (unsigned Round = 0; Round < Opts.MaxRounds; ++Round) {
        if (BudgetTrip Trip = BudgetExceeded(); Trip != BudgetTrip::None) {
          R.BudgetExhausted = true;
          if (Trip == BudgetTrip::TotalRounds) {
            AddStop("max_total_rounds", StatStopMaxTotal);
            AddDiag(Severity::Warning, "MaxTotalRounds budget exhausted; "
                                       "leaving residual excess");
          } else {
            AddStop("time_budget", StatStopTimeBudget);
            AddDiag(Severity::Warning, "TimeBudgetMs budget exhausted; "
                                       "leaving residual excess");
          }
          Bail = true;
          HitRoundCap = false;
          break;
        }
        URSA_SPAN(RoundSpan, "ursa.beam.round", "driver");
        auto RoundStart = std::chrono::steady_clock::now();

        // Flatten every live state's proposals into one candidate list;
        // (state, proposal) order is the determinism anchor everywhere
        // below.
        struct Cand {
          unsigned Parent;
          unsigned PropIdx;
        };
        std::vector<std::vector<TransformProposal>> Props(Beam.size());
        std::vector<Cand> Cands;
        for (unsigned P = 0; P != Beam.size(); ++P) {
          if (Beam[P].S->TotalExcess == 0)
            continue; // converged; rides along to the phase-end ranking
          Props[P] =
              collectProposals(Beam[P].DAG, *Beam[P].S, DoRegs, DoFUs, Opts);
          if (Opts.TieBreakSeed)
            shuffleProposals(Props[P], Opts.TieBreakSeed,
                             (uint64_t(BeamSteps) << 8) | P);
          for (unsigned I = 0; I != Props[P].size(); ++I)
            Cands.push_back({P, I});
        }
        if (Cands.empty()) {
          HitRoundCap = false;
          break;
        }
        ++BeamSteps;
        StatBeamRounds.add();
        StatBeamCandidates.add(Cands.size());
        StatProposalsTried.add(Cands.size());

        // One delta engine per parent (shared across pool threads, the
        // same way the greedy loop shares its single engine).
        std::vector<std::unique_ptr<IncrementalMeasurer>> Inc(Beam.size());
        if (Opts.IncrementalMeasure)
          for (unsigned P = 0; P != Beam.size(); ++P)
            if (!Props[P].empty())
              Inc[P] = std::make_unique<IncrementalMeasurer>(
                  Beam[P].DAG, *Beam[P].S->A, Beam[P].S->Meas,
                  Beam[P].S->Limits, Opts.Measure);

        struct CandEval {
          Score Sc{~0u, 0, ~0u, ~0u, ~0u, ~0u};
          uint64_t Fp = 0;
          unsigned SumReq = ~0u;
          std::shared_ptr<const State> SS;
          bool Diverged = false;
        };
        std::vector<CandEval> Evals(Cands.size());
        auto EvalOne = [&](size_t CI) {
          const BeamEntry &Par = Beam[Cands[CI].Parent];
          const TransformProposal &Prop =
              Props[Cands[CI].Parent][Cands[CI].PropIdx];
          URSA_SPAN(EvalSpan, evalSpanName(Prop.Kind), "transform");
          DependenceDAG Scratch = Par.DAG;
          ApplyStats ScratchSt = applyTransform(Scratch, Prop);
          bool IsSpill = Prop.Kind == TransformProposal::Spill;
          unsigned NewExcess = 0, NewCrit = 0, NewSum = 0;
          std::shared_ptr<const State> SS;
          DeltaMeasurement DM;
          IncrementalMeasurer *Eng = Inc[Cands[CI].Parent].get();
          if (Eng && Eng->measureDelta(Scratch, Prop, ScratchSt.Delta, DM)) {
            StatIncrementalEvals.add();
            NewExcess = DM.TotalExcess;
            NewCrit = DM.CritPath;
            for (unsigned W : DM.Required)
              NewSum += W;
            if (VerifyFull) {
              State Fresh(Scratch, M, Opts.Measure);
              bool Same = Fresh.TotalExcess == DM.TotalExcess &&
                          Fresh.CritPath == DM.CritPath &&
                          Fresh.Meas.size() == DM.Required.size();
              for (unsigned Ki = 0; Same && Ki != Fresh.Meas.size(); ++Ki)
                Same = Fresh.Meas[Ki].MaxRequired == DM.Required[Ki];
              Evals[CI].Diverged = !Same;
            }
          } else {
            if (Eng)
              StatIncrementalFallbacks.add();
            SS = std::make_shared<const State>(Scratch, M, Opts.Measure);
            NewExcess = SS->TotalExcess;
            NewCrit = SS->CritPath;
            NewSum = sumRequired(*SS);
          }
          unsigned Cost =
              (NewCrit > Par.S->CritPath ? NewCrit - Par.S->CritPath : 0) +
              (IsSpill ? 2 : 0);
          Evals[CI].Sc =
              Score{NewExcess,
                    Par.S->TotalExcess - std::min(Par.S->TotalExcess, NewExcess),
                    Cost,
                    NewCrit,
                    IsSpill ? 1u : 0u,
                    unsigned(Prop.SeqEdges.size())};
          Evals[CI].SumReq = NewSum;
          Evals[CI].Fp = dagFingerprint(Scratch);
          Evals[CI].SS = std::move(SS);
        };
        if (Pool && Cands.size() > 1) {
          StatParallelEvalBatches.add();
          Pool->parallelFor(Cands.size(), EvalOne);
        } else {
          for (size_t CI = 0; CI != Cands.size(); ++CI)
            EvalOne(CI);
        }

        if (VerifyFull && Opts.IncrementalMeasure) {
          bool AnyDiverged = false;
          for (unsigned CI = 0; CI != Evals.size(); ++CI)
            if (Evals[CI].Diverged) {
              FailVerify(Status::error(
                  "allocate", "incremental measurement diverged from the "
                              "full rebuild for proposal '" +
                                  Props[Cands[CI].Parent][Cands[CI].PropIdx]
                                      .describe() +
                                  "'"));
              AnyDiverged = true;
            }
          if (AnyDiverged) {
            Bail = true;
            HitRoundCap = false;
            break;
          }
        }

        // Serial reduction, part 1: admissibility. The same rules as
        // greedy, per parent — never worsen, skip no-ops, respect the
        // plateau patience of the path — plus the phase-wide fingerprint
        // dedup.
        std::vector<unsigned> Order;
        for (unsigned CI = 0; CI != unsigned(Cands.size()); ++CI) {
          const BeamEntry &Par = Beam[Cands[CI].Parent];
          if (Evals[CI].Fp == Par.Fp) {
            StatNoopSkipped.add();
            continue;
          }
          const Score &Sc = Evals[CI].Sc;
          if (Sc.TotalExcess > Par.S->TotalExcess)
            continue; // never worsen (paper Section 5)
          const TransformProposal &Prop =
              Props[Cands[CI].Parent][Cands[CI].PropIdx];
          if (Sc.TotalExcess == Par.S->TotalExcess &&
              Prop.Kind != TransformProposal::FUSequence && Par.Patience == 0)
            continue; // this path's plateau patience is spent
          if (SeenFps.count(Evals[CI].Fp)) {
            StatBeamDedup.add();
            continue;
          }
          Order.push_back(CI);
        }
        // Part 2: global ranking. Primary keys are the state-quality
        // criteria (excess, then total required — the bench metric), then
        // the greedy Score as the tie-break; stable order falls back to
        // (state, proposal) position.
        std::stable_sort(Order.begin(), Order.end(),
                         [&](unsigned X, unsigned Y) {
                           const CandEval &A = Evals[X], &B = Evals[Y];
                           if (A.Sc.TotalExcess != B.Sc.TotalExcess)
                             return A.Sc.TotalExcess < B.Sc.TotalExcess;
                           if (A.SumReq != B.SumReq)
                             return A.SumReq < B.SumReq;
                           if (A.Sc < B.Sc)
                             return true;
                           if (B.Sc < A.Sc)
                             return false;
                           return false;
                         });

        // Part 3: admit the top K distinct successors. Each one is
        // reproduced by applying its proposal to the parent's DAG; the
        // fingerprint must match the scratch evaluation bit for bit.
        std::vector<BeamEntry> NewBeam;
        std::vector<bool> ParentExpanded(Beam.size(), false);
        for (unsigned CI : Order) {
          if (NewBeam.size() >= K)
            break;
          if (SeenFps.count(Evals[CI].Fp))
            continue; // an equal-fingerprint sibling won earlier this round
          const unsigned P = Cands[CI].Parent;
          BeamEntry &Par = Beam[P];
          const TransformProposal &Prop = Props[P][Cands[CI].PropIdx];
          URSA_SPAN(StateSpan, "ursa.beam.state", "driver");
          BeamEntry Next(Par.DAG);
          ApplyStats ASt = applyTransform(Next.DAG, Prop);
          Next.Fp = dagFingerprint(Next.DAG);
          if (Next.Fp != Evals[CI].Fp) {
            // The transform did not reproduce its evaluated state — a
            // non-deterministic apply. Drop the candidate; corrupt under
            // verification.
            if (VerifyOn) {
              FailVerify(Status::error(
                  "allocate", "transform '" + Prop.describe() +
                                  "' did not reproduce its evaluated state"));
              Bail = true;
              break;
            }
            continue;
          }
          if (VerifyOn) {
            Status St = verifyDAGStructure(Next.DAG);
            if (!St.isOk()) {
              FailVerify(St);
              Bail = true;
              break;
            }
          }
          if (Evals[CI].SS) {
            if (Opts.MeasurementReuse)
              Cache.insert(Next.Fp, Evals[CI].SS);
            Next.S = Evals[CI].SS;
          } else {
            // Delta-scored winner: promote through its delta closure
            // (PR 5's winner-promotion path), once per admitted state.
            // Spill winners replay the journal the apply above recorded.
            std::unique_ptr<DAGAnalysis> NA =
                Prop.Kind == TransformProposal::Spill
                    ? DAGAnalysis::buildIncrementalDelta(Next.DAG, *Par.S->A,
                                                         ASt.Delta)
                    : DAGAnalysis::buildIncremental(Next.DAG, *Par.S->A,
                                                    Prop.SeqEdges);
            if (NA) {
              StatIncrementalPromotions.add();
              MeasureOptions WarmMO = Opts.Measure;
              WarmMO.WarmFrom = &Par.S->Meas; // seed from the parent state
              auto NS = std::make_shared<const State>(Next.DAG, M, WarmMO,
                                                      std::move(NA));
              if (Opts.MeasurementReuse)
                Cache.insert(Next.Fp, NS);
              Next.S = std::move(NS);
            } else {
              Next.S = Cache.get(Next.DAG, M, Opts.Measure);
            }
          }
          Next.Rounds = Par.Rounds + 1;
          Next.SeqEdgesAdded = Par.SeqEdgesAdded + ASt.EdgesAdded;
          Next.SpillsInserted = Par.SpillsInserted + ASt.SpillsInserted;
          bool Plateau = Next.S->TotalExcess == Par.S->TotalExcess;
          Next.Patience = !Plateau ? 6
                          : Prop.Kind == TransformProposal::FUSequence
                              ? Par.Patience
                              : Par.Patience - 1;
          Next.RoundLog = Par.RoundLog;
          {
            RoundRecord RR;
            RR.Round = Next.Rounds;
            RR.Kind = Prop.Kind;
            RR.Resource = Prop.Res.describe();
            RR.Detail = Prop.describe();
            RR.ExcessBefore = Par.S->TotalExcess;
            RR.ExcessAfter = Next.S->TotalExcess;
            RR.CritPath = Next.S->CritPath;
            RR.EdgesAdded = ASt.EdgesAdded;
            RR.SpillsInserted = ASt.SpillsInserted;
            RR.ProposalsTried = unsigned(Cands.size());
            RR.DurationMs = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - RoundStart)
                                .count();
            Next.RoundLog.push_back(std::move(RR));
          }
          SeenFps.insert(Next.Fp);
          ParentExpanded[P] = true;
          StatBeamAdmitted.add();
          StatRounds.add();
          switch (Prop.Kind) {
          case TransformProposal::FUSequence:
            StatKeptFUSeq.add();
            break;
          case TransformProposal::RegSequence:
            StatKeptRegSeq.add();
            break;
          case TransformProposal::Spill:
            StatKeptSpill.add();
            break;
          }
          NewBeam.push_back(std::move(Next));
        }
        if (Bail) {
          HitRoundCap = false;
          break;
        }
        for (unsigned P = 0; P != Beam.size(); ++P)
          if (!ParentExpanded[P]) {
            StatBeamRetired.add();
            Retired.push_back(std::move(Beam[P]));
          }
        if (NewBeam.empty()) {
          Beam.clear();
          HitRoundCap = false;
          break;
        }
        Beam = std::move(NewBeam);
      } // rounds
      if (HitRoundCap) {
        AddStop("max_rounds", StatStopMaxRounds);
        AddDiag(Severity::Warning,
                "MaxRounds safety valve tripped for a phase; leaving "
                "residual excess");
      }
      // Phase end: the next phase starts from the best K of everything
      // that was live when this phase finished.
      for (BeamEntry &E : Retired)
        Beam.push_back(std::move(E));
      std::stable_sort(Beam.begin(), Beam.end(), entryBetter);
      if (Beam.size() > K)
        Beam.erase(Beam.begin() + K, Beam.end());
      // Phase boundary: prove the hand-off on the front-runner (the state
      // the next phase — or the assignment — inherits).
      if (!Bail && VerifyOn && !Beam.empty()) {
        Status St = verifyDAGStructure(Beam.front().DAG);
        if (St.isOk() && VerifyFull)
          St.merge(verifyMeasurements(Beam.front().S->Meas));
        if (!St.isOk()) {
          FailVerify(St);
          Bail = true;
        }
      }
    } // phases
    if (Bail)
      break;

    {
      unsigned BestExcess =
          Beam.empty() ? 0u : Beam.front().S->TotalExcess;
      if (BestExcess == 0 || BeamSteps == StepsAtSweepStart)
        break;
      if (BestExcess >= PrevSweepExcess) {
        if (++StaleSweeps >= 2) {
          R.LivelockDetected = true;
          AddStop("livelock", StatStopLivelock);
          AddDiag(Severity::Warning,
                  "livelock: consecutive sweeps applied transforms without "
                  "reducing total excess");
          break;
        }
      } else {
        StaleSweeps = 0;
      }
      PrevSweepExcess = BestExcess;
    }
  } // sweeps

  if (!Beam.empty()) {
    std::stable_sort(Beam.begin(), Beam.end(), entryBetter);
    BeamEntry &W = Beam.front();
    R.DAG = std::move(W.DAG);
    R.Rounds = W.Rounds;
    R.SeqEdgesAdded = W.SeqEdgesAdded;
    R.SpillsInserted = W.SpillsInserted;
    R.RoundLog = std::move(W.RoundLog);
  }

  if (R.VerifyFailed)
    return R;

  if (Opts.GuaranteedFit) {
    std::shared_ptr<const State> Pre = Cache.get(R.DAG, M, Opts.Measure);
    if (Pre->TotalExcess > 0) {
      AddDiag(Severity::Note, "guaranteed-fit fallback: sequentializing "
                              "and spilling the residual excess");
      guaranteedFitFallback(R, M, Opts.Measure, Cache);
    }
  }

  std::shared_ptr<const State> Final = Cache.get(R.DAG, M, Opts.Measure);
  R.CritPathAfter = Final->CritPath;
  R.WithinLimits = Final->TotalExcess == 0;
  R.ClosureRepUsed = closureRepName(Final->A->closureRep());
  R.ClosureBytesPeak =
      std::max(R.ClosureBytesPeak, Final->A->closureMemoryBytes());
  for (const Measurement &Ms : Final->Meas)
    R.FinalRequired.push_back(Ms.MaxRequired);
  return R;
}

/// Portfolio mode: race independent driver instances over phase
/// orderings — register-first (the paper's recommendation), FU-first,
/// integrated — plus two seeded tie-break perturbations of the configured
/// order, all sharing one measurement cache, and keep the best final
/// allocation. Racers run sequentially in config order, so the whole
/// portfolio is deterministic and each racer warms the next one's cache;
/// TimeBudgetMs bounds the portfolio as a whole (a drained budget keeps
/// the incumbent instead of starting another racer).
static URSAResult runPortfolio(DependenceDAG D, const MachineModel &M,
                               const URSAOptions &Opts, unsigned K) {
  URSA_SPAN(PortSpan, "ursa.portfolio", "driver");
  unsigned CacheSize = Opts.MeasurementCacheSize
                           ? Opts.MeasurementCacheSize
                           : defaultMeasurementCacheSize();
  MeasurementCache LocalCache(Opts.MeasurementReuse,
                              std::max(CacheSize, 4 * K + 8));
  MeasurementCache &Cache =
      Opts.SharedCache ? *Opts.SharedCache : LocalCache;

  struct Racer {
    PhaseOrdering Order;
    uint64_t Seed;
  };
  const uint64_t S1 =
      Opts.TieBreakSeed ? Opts.TieBreakSeed : 0x9e3779b97f4a7c15ULL;
  const uint64_t S2 = S1 * 0xbf58476d1ce4e5b9ULL + 1;
  const Racer Racers[] = {
      {PhaseOrdering::RegistersFirst, 0},
      {PhaseOrdering::FUsFirst, 0},
      {PhaseOrdering::Integrated, 0},
      {Opts.Order, S1},
      {Opts.Order, S2},
  };

  auto StartTime = std::chrono::steady_clock::now();
  auto RemainingMs = [&]() -> long {
    if (Opts.TimeBudgetMs == 0)
      return -1; // unlimited
    auto Ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                  std::chrono::steady_clock::now() - StartTime)
                  .count();
    return long(Opts.TimeBudgetMs) - long(Ms);
  };

  const std::vector<std::pair<ResourceId, unsigned>> Limits =
      machineResources(M);
  auto ResultExcess = [&Limits](const URSAResult &Res) {
    unsigned E = 0;
    for (size_t I = 0; I != Res.FinalRequired.size() && I != Limits.size();
         ++I)
      E += Res.FinalRequired[I] > Limits[I].second
               ? Res.FinalRequired[I] - Limits[I].second
               : 0;
    return E;
  };
  auto ResultSumReq = [](const URSAResult &Res) {
    unsigned T = 0;
    for (unsigned V : Res.FinalRequired)
      T += V;
    return T;
  };
  // Lexicographic quality: a verified-sound result always beats a corrupt
  // one, then fewest excess, fewest total required resources (the bench
  // metric), shortest critical path, fewest spills; exact ties keep the
  // earlier racer (deterministic config order).
  auto ResultBetter = [&](const URSAResult &A, const URSAResult &B) {
    if (A.VerifyFailed != B.VerifyFailed)
      return !A.VerifyFailed;
    unsigned EA = ResultExcess(A), EB = ResultExcess(B);
    if (EA != EB)
      return EA < EB;
    unsigned RA = ResultSumReq(A), RB = ResultSumReq(B);
    if (RA != RB)
      return RA < RB;
    if (A.CritPathAfter != B.CritPathAfter)
      return A.CritPathAfter < B.CritPathAfter;
    if (A.SpillsInserted != B.SpillsInserted)
      return A.SpillsInserted < B.SpillsInserted;
    return false;
  };

  std::unique_ptr<URSAResult> BestR;
  for (const Racer &Rc : Racers) {
    long Left = RemainingMs();
    if (BestR && Opts.TimeBudgetMs && Left <= 0)
      break; // budget drained; keep the incumbent
    URSAOptions RO = Opts;
    RO.Portfolio = false;
    RO.Order = Rc.Order;
    RO.TieBreakSeed = Rc.Seed;
    RO.SharedCache = &Cache;
    if (Opts.TimeBudgetMs)
      RO.TimeBudgetMs = unsigned(std::max<long>(1, Left));
    DependenceDAG DC = D; // every racer starts from the pristine input
    URSAResult Ri = K > 1 ? runBeamSearch(std::move(DC), M, RO, K)
                          : runGreedy(std::move(DC), M, RO);
    StatPortfolioRuns.add();
    if (!BestR) {
      BestR = std::make_unique<URSAResult>(std::move(Ri));
    } else if (ResultBetter(Ri, *BestR)) {
      StatPortfolioImproved.add();
      *BestR = std::move(Ri);
    }
  }
  return std::move(*BestR);
}

URSAResult ursa::runURSA(DependenceDAG D, const MachineModel &M,
                         const URSAOptions &Opts) {
  unsigned K = Opts.BeamWidth ? Opts.BeamWidth : defaultBeamWidth();
  if (!K)
    K = 1;
  // Fault-injection contracts (ursa/FaultInjector.h) are defined on the
  // serial-recoverable keep-one loop; armed injectors force it.
  if (Opts.Faults)
    return runGreedy(std::move(D), M, Opts);
  if (Opts.Portfolio)
    return runPortfolio(std::move(D), M, Opts, K);
  if (K > 1)
    return runBeamSearch(std::move(D), M, Opts, K);
  return runGreedy(std::move(D), M, Opts);
}
