//===- ursa/Transforms.cpp - Requirement reduction transformations --------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ursa/Transforms.h"

#include "obs/Stats.h"
#include "ursa/KillSelection.h"

#include <algorithm>
#include <cstdio>

using namespace ursa;

URSA_STAT(StatProposedFUSeq, "ursa.transforms.proposed.fu_seq",
          "FU-sequencing candidates generated");
URSA_STAT(StatProposedRegSeq, "ursa.transforms.proposed.reg_seq",
          "register-sequencing candidates generated");
URSA_STAT(StatProposedSpill, "ursa.transforms.proposed.spill",
          "spill candidates generated");
URSA_STAT(StatEdgesApplied, "ursa.transforms.edges_added",
          "sequence edges added by applied transforms (incl. tentative)");
URSA_STAT(StatSpillsApplied, "ursa.transforms.spills_inserted",
          "store/reload pairs inserted by applied transforms (incl. "
          "tentative)");

namespace {

/// Reachability over the base closure plus a small set of pending edges;
/// proposal builders use it to keep multi-edge proposals acyclic.
class IncrementalReach {
public:
  explicit IncrementalReach(const DAGAnalysis &Analysis) : A(Analysis) {}

  bool reaches(unsigned From, unsigned To) const {
    if (From == To)
      return true;
    if (A.reaches(From, To))
      return true;
    std::vector<unsigned> Stack{From};
    std::vector<uint8_t> Seen(A.topoOrder().size(), 0);
    while (!Stack.empty()) {
      unsigned X = Stack.back();
      Stack.pop_back();
      for (auto [S, T] : Added) {
        if (Seen[T])
          continue;
        if (S == X || A.reaches(X, S)) {
          if (T == To || A.reaches(T, To))
            return true;
          Seen[T] = 1;
          Stack.push_back(T);
        }
      }
    }
    return false;
  }

  /// Records From -> To if it keeps the graph acyclic; returns success.
  bool addIfAcyclic(unsigned From, unsigned To) {
    if (reaches(To, From) || From == To)
      return false;
    Added.emplace_back(From, To);
    return true;
  }

  const std::vector<std::pair<unsigned, unsigned>> &added() const {
    return Added;
  }

private:
  const DAGAnalysis &A;
  std::vector<std::pair<unsigned, unsigned>> Added;
};

} // namespace

std::string TransformProposal::describe() const {
  std::string S;
  switch (Kind) {
  case FUSequence:
    S = "fu-seq";
    break;
  case RegSequence:
    S = "reg-seq";
    break;
  case Spill:
    S = "spill";
    break;
  }
  S += "[" + Res.describe() + "]";
  char Buf[48];
  if (Kind == Spill) {
    std::snprintf(Buf, sizeof(Buf), " def=n%u delay=%zu", SpillDef,
                  DelayedUses.size());
    S += Buf;
  }
  for (auto [F, T] : SeqEdges) {
    std::snprintf(Buf, sizeof(Buf), " n%u->n%u", F, T);
    S += Buf;
  }
  return S;
}

//===----------------------------------------------------------------------===//
// Functional-unit sequentialization (paper Section 4.1).
//===----------------------------------------------------------------------===//

/// Builds one pairing proposal. \p SourcesByDepth and \p SinksByHeight are
/// chain indices in pairing order; the heuristic slides the sink choice
/// when a pair fails, as the paper's does.
static bool pairChains(const TransformContext &Ctx,
                       const ExcessiveChainSet &E,
                       const std::vector<unsigned> &SourceOrder,
                       const std::vector<unsigned> &SinkOrder, unsigned X,
                       TransformProposal &Out) {
  IncrementalReach IR(Ctx.A);
  std::vector<uint8_t> SinkUsed(E.Subchains.size(), 0);
  unsigned Made = 0;
  for (unsigned I = 0; I != SourceOrder.size() && Made != X; ++I) {
    unsigned SrcChain = SourceOrder[I];
    unsigned Tail = E.Subchains[SrcChain].back();
    for (unsigned J = 0; J != SinkOrder.size(); ++J) {
      unsigned SnkChain = SinkOrder[J];
      if (SnkChain == SrcChain || SinkUsed[SnkChain])
        continue;
      unsigned Head = E.Subchains[SnkChain].front();
      if (IR.reaches(Tail, Head))
        continue; // already ordered; pick a sink that is still parallel
      if (!IR.addIfAcyclic(Tail, Head))
        continue; // would create a cycle; slide to the next sink
      SinkUsed[SnkChain] = 1;
      ++Made;
      break;
    }
  }
  if (Made == 0)
    return false;
  Out.SeqEdges = IR.added();
  return true;
}

std::vector<TransformProposal>
ursa::proposeFUSequencing(const TransformContext &Ctx,
                          const ExcessiveChainSet &E) {
  std::vector<TransformProposal> Out;
  unsigned M = E.Subchains.size();
  if (M > E.Limit) {
  unsigned X = M - E.Limit;

  // Chain indices ordered by tail depth (closest to the hammock entry
  // first) and by head height (closest to the exit first).
  std::vector<unsigned> ByTailDepth(M), ByHeadHeight(M);
  for (unsigned I = 0; I != M; ++I)
    ByTailDepth[I] = ByHeadHeight[I] = I;
  std::sort(ByTailDepth.begin(), ByTailDepth.end(), [&](unsigned A, unsigned B) {
    unsigned DA = Ctx.A.depth(E.Subchains[A].back());
    unsigned DB = Ctx.A.depth(E.Subchains[B].back());
    return DA != DB ? DA < DB : A < B;
  });
  std::sort(ByHeadHeight.begin(), ByHeadHeight.end(),
            [&](unsigned A, unsigned B) {
              unsigned HA = Ctx.A.height(E.Subchains[A].front());
              unsigned HB = Ctx.A.height(E.Subchains[B].front());
              return HA != HB ? HA < HB : A < B;
            });

  // Ideal sequence matching: sources = X earliest-finishing tails; sinks
  // = X latest-starting heads, paired to average the resulting paths.
  TransformProposal Ideal;
  Ideal.Kind = TransformProposal::FUSequence;
  Ideal.Res = E.Res;
  if (pairChains(Ctx, E, ByTailDepth, ByHeadHeight, X, Ideal))
    Out.push_back(std::move(Ideal));

  // Naive variant (stack chains end-to-end in head order); kept as an
  // alternative for the selector and for the ablation benchmarks.
  std::vector<unsigned> Reversed(ByHeadHeight.rbegin(), ByHeadHeight.rend());
  TransformProposal Naive;
  Naive.Kind = TransformProposal::FUSequence;
  Naive.Res = E.Res;
  if (pairChains(Ctx, E, ByTailDepth, Reversed, X, Naive) &&
      (Out.empty() || Out.front().SeqEdges != Naive.SeqEdges))
    Out.push_back(std::move(Naive));
  }

  // Cheap single-edge candidates over the witness: when the excess is
  // nearly gone, the best move is the one edge whose endpoints sit
  // closest to the DAG's ends — rank all witness pairs by the path they
  // would create (depth(u) + 1 + height(v)) and offer the cheapest few.
  if (E.Witness.size() > E.Limit) {
    struct Cand {
      unsigned From, To, PathLen;
    };
    std::vector<Cand> Pairs;
    for (unsigned U : E.Witness)
      for (unsigned V : E.Witness)
        if (U != V && Ctx.A.edgeKeepsAcyclic(U, V) && !Ctx.A.reaches(U, V))
          Pairs.push_back({U, V, Ctx.A.depth(U) + 1 + Ctx.A.height(V)});
    std::sort(Pairs.begin(), Pairs.end(), [](const Cand &A, const Cand &B) {
      if (A.PathLen != B.PathLen)
        return A.PathLen < B.PathLen;
      return std::make_pair(A.From, A.To) < std::make_pair(B.From, B.To);
    });
    for (unsigned I = 0; I != Pairs.size() && I != 3; ++I) {
      TransformProposal P;
      P.Kind = TransformProposal::FUSequence;
      P.Res = E.Res;
      P.SeqEdges = {{Pairs[I].From, Pairs[I].To}};
      Out.push_back(std::move(P));
    }
  }

  // Measured greedy reduction: accumulate the cheapest witness-pair
  // edges (by the path each would create) on a scratch DAG, recomputing
  // the witness after each, until the hammock's width actually drops —
  // one proposal whose critical-path cost is as small as the relation
  // allows. This is what keeps late FU rounds from reaching for a long
  // wrap-around edge when several short ones do the same job.
  // Gated off above the closure threshold: each round rebuilds a full
  // analysis and materializes an adjacency list over the witness
  // relation, which is exactly the O(N^2) work the tiered closure exists
  // to avoid. The wave fallback below covers those traces.
  if (E.Witness.size() > E.Limit && E.Res.Kind == ResourceId::FU &&
      Ctx.D.size() <= closureThreshold()) {
    DependenceDAG Scratch = Ctx.D;
    const Bitset &Members = Ctx.HF.hammock(E.HammockIdx).Members;
    std::vector<std::pair<unsigned, unsigned>> Edges;
    unsigned Width = E.Witness.size();
    for (unsigned Round = 0; Round != 3 * (E.Witness.size() - E.Limit) + 4;
         ++Round) {
      DAGAnalysis SA(Scratch);
      ReuseRelation Rel = E.Res.AllClasses
                              ? buildFUReuse(Scratch, SA)
                              : buildFUReuseForClass(Scratch, SA,
                                                     E.Res.FUClass);
      std::vector<unsigned> Inside;
      for (unsigned N : Rel.Active)
        if (Members.test(N))
          Inside.push_back(N);
      std::vector<unsigned> W = maxAntichain(Rel.Rel, Inside);
      if (W.size() < Width) {
        Width = W.size();
        break; // strictly reduced; stop at one unit of progress
      }
      unsigned BestFrom = 0, BestTo = 0, BestLen = ~0u;
      for (unsigned U : W)
        for (unsigned V : W) {
          if (U == V || SA.reaches(U, V) || !SA.edgeKeepsAcyclic(U, V))
            continue;
          unsigned Len = SA.depth(U) + 1 + SA.height(V);
          if (Len < BestLen) {
            BestLen = Len;
            BestFrom = U;
            BestTo = V;
          }
        }
      if (BestLen == ~0u)
        break; // no orderable pair left
      Scratch.addEdge(BestFrom, BestTo, EdgeKind::Sequence);
      Edges.emplace_back(BestFrom, BestTo);
    }
    if (!Edges.empty()) {
      TransformProposal Greedy;
      Greedy.Kind = TransformProposal::FUSequence;
      Greedy.Res = E.Res;
      Greedy.SeqEdges = std::move(Edges);
      Out.push_back(std::move(Greedy));
    }
  }

  // Wave fallback over the witness antichain: once earlier rounds have
  // interleaved the chains, tail-to-head edges stop applying; directly
  // cap the witnessed concurrency by ordering its members with stride
  // Limit (member i before member i + Limit, by depth).
  if (E.Witness.size() > E.Limit) {
    std::vector<unsigned> W = E.Witness;
    std::sort(W.begin(), W.end(), [&](unsigned A, unsigned B) {
      unsigned DA = Ctx.A.depth(A), DB = Ctx.A.depth(B);
      return DA != DB ? DA < DB : A < B;
    });
    IncrementalReach IR(Ctx.A);
    for (unsigned I = 0; I + E.Limit < W.size(); ++I)
      if (!IR.reaches(W[I], W[I + E.Limit]))
        IR.addIfAcyclic(W[I], W[I + E.Limit]);
    if (!IR.added().empty()) {
      TransformProposal Wave;
      Wave.Kind = TransformProposal::FUSequence;
      Wave.Res = E.Res;
      Wave.SeqEdges = IR.added();
      Out.push_back(std::move(Wave));
    }
  }
  StatProposedFUSeq.add(Out.size());
  return Out;
}

//===----------------------------------------------------------------------===//
// Register sequentialization (paper Section 4.2).
//===----------------------------------------------------------------------===//

std::vector<TransformProposal>
ursa::proposeRegSequencing(const TransformContext &Ctx,
                           const ExcessiveChainSet &E) {
  std::vector<TransformProposal> Out;
  unsigned M = E.Subchains.size();

  if (M > E.Limit) {
  // Chain-level reachability among the subchains.
  auto ChainReaches = [&](unsigned I, unsigned J) {
    for (unsigned U : E.Subchains[I])
      for (unsigned V : E.Subchains[J])
        if (Ctx.A.reaches(U, V))
          return true;
    return false;
  };

  // SD2 must be closed under chain support: delaying a chain delays
  // every chain it feeds, or the new edges would cycle (and SD2 would
  // not be nonsupportive of SD1, paper Definition 7).
  auto CloseUnderSupport = [&](unsigned Seed) {
    std::vector<uint8_t> In(M, 0);
    std::vector<unsigned> Work{Seed};
    In[Seed] = 1;
    while (!Work.empty()) {
      unsigned C = Work.back();
      Work.pop_back();
      for (unsigned J = 0; J != M; ++J)
        if (!In[J] && ChainReaches(C, J)) {
          In[J] = 1;
          Work.push_back(J);
        }
    }
    return In;
  };

  // Candidate seeds: latest-starting chains first (their delay costs the
  // least critical path).
  std::vector<unsigned> ByHeadHeight(M);
  for (unsigned I = 0; I != M; ++I)
    ByHeadHeight[I] = I;
  std::sort(ByHeadHeight.begin(), ByHeadHeight.end(),
            [&](unsigned A, unsigned B) {
              unsigned HA = Ctx.A.height(E.Subchains[A].front());
              unsigned HB = Ctx.A.height(E.Subchains[B].front());
              return HA != HB ? HA < HB : A < B;
            });

  // Candidate SD2 sets: the support closure of each late-starting chain,
  // plus one block of roughly (m - Limit) chains accumulated from those
  // closures — the paper's "delay enough chains that SD1 fits".
  std::vector<std::vector<uint8_t>> Candidates;
  {
    std::vector<uint8_t> Block(M, 0);
    unsigned BlockSize = 0;
    unsigned Want = M - E.Limit;
    for (unsigned Seed : ByHeadHeight) {
      std::vector<uint8_t> InSD2 = CloseUnderSupport(Seed);
      unsigned Size = 0;
      for (uint8_t B : InSD2)
        Size += B;
      if (Size < M)
        Candidates.push_back(InSD2);
      if (BlockSize < Want && !Block[Seed]) {
        std::vector<uint8_t> Merged(M, 0);
        unsigned MergedSize = 0;
        for (unsigned I = 0; I != M; ++I) {
          Merged[I] = Block[I] | InSD2[I];
          MergedSize += Merged[I];
        }
        if (MergedSize < M) {
          Block = std::move(Merged);
          BlockSize = MergedSize;
        }
      }
    }
    if (BlockSize > 0)
      Candidates.push_back(Block);
  }

  std::vector<std::vector<uint8_t>> SeenSD2;
  for (std::vector<uint8_t> &InSD2 : Candidates) {
    if (Out.size() == 6)
      break;
    if (std::find(SeenSD2.begin(), SeenSD2.end(), InSD2) != SeenSD2.end())
      continue;
    SeenSD2.push_back(InSD2);

    // Edges: each SD1 chain must retire before SD2 starts. The source is
    // the *latest* node of the chain's full hammock projection that does
    // not cycle with the SD2 heads — the paper's S = {I}, deep past the
    // trimmed subchain {B, E}.
    IncrementalReach IR(Ctx.A);
    for (unsigned C1 = 0; C1 != M; ++C1) {
      if (InSD2[C1])
        continue;
      const std::vector<unsigned> &Chain = E.FullChains[C1];
      for (unsigned At = Chain.size(); At-- > 0;) {
        unsigned Src = Chain[At];
        bool Ok = true;
        for (unsigned C2 = 0; C2 != M && Ok; ++C2)
          if (InSD2[C2] && IR.reaches(E.Subchains[C2].front(), Src))
            Ok = false;
        if (!Ok)
          continue; // slide toward the chain head
        for (unsigned C2 = 0; C2 != M; ++C2) {
          if (!InSD2[C2])
            continue;
          unsigned Head = E.Subchains[C2].front();
          if (!IR.reaches(Src, Head)) {
            bool Added = IR.addIfAcyclic(Src, Head);
            assert(Added && "cycle despite the walk-back check");
            (void)Added;
          }
        }
        break;
      }
    }
    if (IR.added().empty())
      continue;

    TransformProposal P;
    P.Kind = TransformProposal::RegSequence;
    P.Res = E.Res;
    P.SeqEdges = IR.added();
    Out.push_back(std::move(P));
  }
  }

  // Kill-gated variants: delay the k latest-starting members of an
  // antichain until the kill sites of the kept ones execute — then the
  // kept registers are free before the delayed values exist. More robust
  // than chain delays once earlier rounds have sequenced the DAG. Two
  // antichain sources feed candidates: the trimmed subchain heads and the
  // measured witness; the driver's scorer picks.
  {
    KillMap Kills = selectKillsGreedy(Ctx.D, Ctx.A);
    auto GateSet = [&](std::vector<unsigned> Members) {
      std::sort(Members.begin(), Members.end(), [&](unsigned X, unsigned Y) {
        unsigned HX = Ctx.A.height(X), HY = Ctx.A.height(Y);
        return HX != HY ? HX < HY : X < Y;
      });
      unsigned W = Members.size();
      for (unsigned K : {W - E.Limit, W - E.Limit + 1}) {
        if (K == 0 || K >= W)
          continue;
        IncrementalReach IR(Ctx.A);
        for (unsigned I = 0; I != K; ++I) {
          unsigned Delayed = Members[I];
          for (unsigned J = K; J != Members.size(); ++J) {
            int Gate = Kills.KillNode[Members[J]];
            if (Gate < 0 || unsigned(Gate) == Delayed)
              continue;
            if (!IR.reaches(unsigned(Gate), Delayed))
              IR.addIfAcyclic(unsigned(Gate), Delayed);
          }
        }
        if (IR.added().empty())
          continue;
        TransformProposal P;
        P.Kind = TransformProposal::RegSequence;
        P.Res = E.Res;
        P.SeqEdges = IR.added();
        Out.push_back(std::move(P));
      }
    };
    if (E.Trimmed && M > E.Limit) {
      std::vector<unsigned> Heads;
      for (const auto &C : E.Subchains)
        Heads.push_back(C.front());
      GateSet(std::move(Heads));
    }
    if (E.Witness.size() > E.Limit)
      GateSet(E.Witness);
  }
  StatProposedRegSeq.add(Out.size());
  return Out;
}

//===----------------------------------------------------------------------===//
// Spilling (paper Section 4.3).
//===----------------------------------------------------------------------===//

std::vector<TransformProposal> ursa::proposeSpills(const TransformContext &Ctx,
                                                   const ExcessiveChainSet &E) {
  std::vector<TransformProposal> Out;
  std::vector<std::vector<unsigned>> Uses = computeUses(Ctx.D);

  // Candidate values to spill: defining nodes in the excessive set,
  // early-defined long-lived ones first (the paper's node D).
  std::vector<std::pair<unsigned, unsigned>> Cands; // (chain, node)
  for (unsigned C = 0; C != E.Subchains.size(); ++C)
    for (unsigned N : E.Subchains[C])
      if (Ctx.D.instrAt(N).dest() >= 0 && !Uses[N].empty())
        Cands.emplace_back(C, N);
  std::sort(Cands.begin(), Cands.end(), [&](const auto &A, const auto &B) {
    unsigned HA = Ctx.A.height(A.second), HB = Ctx.A.height(B.second);
    return HA != HB ? HA > HB : A.second < B.second;
  });

  unsigned Produced = 0;
  for (auto [Chain, Def] : Cands) {
    if (Produced == 6)
      break;

    // Every use of the value is delayed until the reload; the reload in
    // turn waits on SD1's leaves. A chain any delayed use feeds belongs
    // to stage 2 (it necessarily runs after the reload), so SD1 is the
    // un-fed chains and the reload waits on their full tails.
    const std::vector<unsigned> &Delayed = Uses[Def];
    std::vector<unsigned> After;
    for (unsigned C = 0; C != E.Subchains.size(); ++C) {
      if (C == Chain)
        continue;
      unsigned T = E.FullChains[C].back();
      bool Fed = std::any_of(Delayed.begin(), Delayed.end(), [&](unsigned U) {
        return U == T || Ctx.A.reaches(U, T);
      });
      // A node that already precedes the def cannot delay the reload.
      if (!Fed && !Ctx.A.reaches(T, Def) && T != Def)
        After.push_back(T);
    }
    if (After.empty())
      continue;

    // The store precedes SD1: for each other chain, its earliest node
    // that does not feed the spilled definition (deeper would cycle
    // through X -> def -> store).
    std::vector<unsigned> Before;
    for (unsigned C = 0; C != E.Subchains.size(); ++C) {
      if (C == Chain)
        continue;
      for (unsigned X : E.FullChains[C]) {
        if (X == Def || Ctx.A.reaches(X, Def))
          continue; // slide toward the chain tail
        Before.push_back(X);
        break;
      }
    }

    TransformProposal P;
    P.Kind = TransformProposal::Spill;
    P.Res = E.Res;
    P.SpillDef = Def;
    P.DelayedUses = Delayed;
    P.ReloadAfter = std::move(After);
    P.StoreBefore = std::move(Before);
    Out.push_back(std::move(P));
    ++Produced;
  }

  // Kill-gated spills over the witness antichain: spill a witness value,
  // store it before the kept witness values define, and reload it only
  // once their kill sites have run — "not reloaded until a register is
  // available for it" (paper 4.3). The unconditional fallback.
  if (E.Witness.size() > E.Limit) {
    KillMap Kills = selectKillsGreedy(Ctx.D, Ctx.A);
    std::vector<unsigned> W = E.Witness;
    // Longest worst-case live range first.
    std::sort(W.begin(), W.end(), [&](unsigned X, unsigned Y) {
      unsigned HX = Ctx.A.height(X), HY = Ctx.A.height(Y);
      return HX != HY ? HX > HY : X < Y;
    });
    unsigned Made = 0;
    for (unsigned Def : W) {
      if (Made == 4)
        break;
      const std::vector<unsigned> &Delayed = Uses[Def];
      if (Delayed.empty())
        continue;
      std::vector<unsigned> After, Before;
      for (unsigned Kept : W) {
        if (Kept == Def)
          continue;
        int Gate = Kills.KillNode[Kept];
        if (Gate >= 0 && unsigned(Gate) != Def) {
          bool Fed =
              std::any_of(Delayed.begin(), Delayed.end(), [&](unsigned U) {
                return U == unsigned(Gate) || Ctx.A.reaches(U, unsigned(Gate));
              });
          if (!Fed)
            After.push_back(unsigned(Gate));
        }
        if (!Ctx.A.reaches(Kept, Def) && Kept != Def)
          Before.push_back(Kept);
      }
      if (!After.empty()) {
        TransformProposal P;
        P.Kind = TransformProposal::Spill;
        P.Res = E.Res;
        P.SpillDef = Def;
        P.DelayedUses = Delayed;
        P.ReloadAfter = std::move(After);
        P.StoreBefore = std::move(Before);
        Out.push_back(std::move(P));
        ++Made;
        continue;
      }

      // Subset variant for long-lived multi-use values (e.g. a twiddle
      // factor feeding every lane): when every gate is fed by some use,
      // delay only the uses that do not feed a chosen gate. The value
      // still dies earlier; later rounds can spill the reload again
      // (a second reload of the same slot).
      int BestGate = -1;
      unsigned BestCount = 0;
      for (unsigned Kept : W) {
        if (Kept == Def)
          continue;
        int Gate = Kills.KillNode[Kept];
        if (Gate < 0 || unsigned(Gate) == Def)
          continue;
        unsigned Count = 0;
        for (unsigned U : Delayed)
          if (U != unsigned(Gate) && !Ctx.A.reaches(U, unsigned(Gate)))
            ++Count;
        if (Count > BestCount && Count < Delayed.size()) {
          BestCount = Count;
          BestGate = Gate;
        }
      }
      if (BestGate < 0)
        continue;
      TransformProposal P;
      P.Kind = TransformProposal::Spill;
      P.Res = E.Res;
      P.SpillDef = Def;
      for (unsigned U : Delayed)
        if (U != unsigned(BestGate) && !Ctx.A.reaches(U, unsigned(BestGate)))
          P.DelayedUses.push_back(U);
      P.ReloadAfter.push_back(unsigned(BestGate));
      Out.push_back(std::move(P));
      ++Made;
    }
  }
  StatProposedSpill.add(Out.size());
  return Out;
}

//===----------------------------------------------------------------------===//
// Application.
//===----------------------------------------------------------------------===//

namespace {
/// Attaches the mutation journal for the duration of applyTransform —
/// every code path (including the reload re-gating early return) detaches
/// it on scope exit, so the DAG never leaves with a dangling observer.
struct JournalGuard {
  DependenceDAG &D;
  JournalGuard(DependenceDAG &DIn, EdgeDelta &J) : D(DIn) {
    D.startJournal(J);
  }
  ~JournalGuard() { D.stopJournal(); }
};
} // namespace

ApplyStats ursa::applyTransform(DependenceDAG &D, const TransformProposal &P) {
  ApplyStats Stats;
  JournalGuard Guard(D, Stats.Delta);
  for (auto [From, To] : P.SeqEdges)
    if (D.addEdge(From, To, EdgeKind::Sequence))
      ++Stats.EdgesAdded;

  if (P.Kind == TransformProposal::Spill) {
    Trace &T = D.trace();
    const Instruction &DefI = D.instrAt(P.SpillDef);
    assert(DefI.dest() >= 0 && "spilling a non-defining node");
    int OldVReg = DefI.dest();
    Domain Dom = T.vregDomain(OldVReg);

    // Re-spilling a reload whose every use is delayed further needs no
    // new instruction at all: re-gate the reload (drop its sequence
    // in-edges, apply the new gates).
    if (DefI.opcode() == Opcode::SpillLoad) {
      std::vector<std::vector<unsigned>> Uses = computeUses(D);
      const std::vector<unsigned> &All = Uses[P.SpillDef];
      bool AllDelayed =
          All.size() == P.DelayedUses.size() &&
          std::all_of(All.begin(), All.end(), [&](unsigned U) {
            return std::find(P.DelayedUses.begin(), P.DelayedUses.end(),
                             U) != P.DelayedUses.end();
          });
      if (AllDelayed) {
        std::vector<unsigned> SeqPreds;
        for (const auto &[Pred, Kind] : D.preds(P.SpillDef))
          if (Kind == EdgeKind::Sequence)
            SeqPreds.push_back(Pred);
        for (unsigned Pred : SeqPreds)
          D.removeEdge(Pred, P.SpillDef);
        D.normalizeVirtualEdges();
        // The old reload may have accumulated outgoing sequence edges
        // (FU waves), so each new gate needs a fresh cycle check.
        DAGAnalysis Fresh(D);
        for (unsigned After : P.ReloadAfter)
          if (Fresh.edgeKeepsAcyclic(After, P.SpillDef) &&
              D.addEdge(After, P.SpillDef, EdgeKind::Sequence))
            ++Stats.EdgesAdded;
        D.normalizeVirtualEdges();
        StatEdgesApplied.add(Stats.EdgesAdded);
        return Stats;
      }
    }

    // Re-spilling a reload reuses its slot (the value is already in
    // memory) — a second SpillLoad, no new store.
    int Slot;
    unsigned StNode;
    if (DefI.opcode() == Opcode::SpillLoad) {
      Slot = DefI.spillSlot();
      unsigned Store = ~0u;
      for (unsigned Idx = 0, End = T.size(); Idx != End; ++Idx)
        if (T.instr(Idx).opcode() == Opcode::SpillStore &&
            T.instr(Idx).spillSlot() == Slot)
          Store = DependenceDAG::nodeOf(Idx);
      assert(Store != ~0u && "reload without a backing store");
      StNode = Store;
    } else {
      Slot = T.newSpillSlot();
      Instruction St(Opcode::SpillStore);
      St.setDomain(Dom);
      St.setOperand(0, OldVReg);
      St.setSpillSlot(Slot);
      StNode = D.addInstrNode(St);
      D.addEdge(P.SpillDef, StNode, EdgeKind::Data);
      for (unsigned X : P.StoreBefore)
        D.addEdge(StNode, X, EdgeKind::Sequence);
    }

    Instruction Ld(Opcode::SpillLoad);
    Ld.setDomain(Dom);
    Ld.setSpillSlot(Slot);
    int NewVReg = T.newVReg(Dom);
    Ld.setDest(NewVReg);
    unsigned LdNode = D.addInstrNode(Ld);
    D.addEdge(StNode, LdNode, EdgeKind::Data);
    for (unsigned After : P.ReloadAfter)
      D.addEdge(After, LdNode, EdgeKind::Sequence);

    for (unsigned U : P.DelayedUses) {
      Instruction &UseI = D.instrAt(U);
      bool Rewired = false;
      for (unsigned S = 0; S != UseI.numOperands(); ++S) {
        if (UseI.operand(S) == OldVReg) {
          UseI.setOperand(S, NewVReg);
          Rewired = true;
        }
      }
      assert(Rewired && "delayed use does not read the spilled value");
      (void)Rewired;
      D.removeEdge(P.SpillDef, U);
      D.addEdge(LdNode, U, EdgeKind::Data);
    }
    ++Stats.SpillsInserted;
  }

  D.normalizeVirtualEdges();
  StatEdgesApplied.add(Stats.EdgesAdded);
  StatSpillsApplied.add(Stats.SpillsInserted);
  return Stats;
}
