//===- ursa/Compiler.h - End-to-end URSA compilation ------------*- C++ -*-===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The public one-call entry point: trace in, VLIW program out, through
/// the full URSA pipeline of the paper —
///
///   build dependence DAG
///   -> measure requirements (Reuse DAGs, chain decomposition)
///   -> reduce excesses (sequence edges, spills)
///   -> assign registers and functional units, generate code.
///
/// Quickstart:
/// \code
///   Trace T = parseTraceOrDie(Source);
///   MachineModel M = MachineModel::homogeneous(4, 8);
///   URSACompileResult R = compileURSA(T, M);
///   SimResult Sim = simulate(*R.Compile.Prog, Inputs);
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef URSA_URSA_COMPILER_H
#define URSA_URSA_COMPILER_H

#include "sched/Pipelines.h"
#include "ursa/Driver.h"

namespace ursa {

/// Compile outcome: the shared pipeline metrics plus URSA's allocation
/// accounting.
struct URSACompileResult {
  CompileResult Compile;
  /// Allocation-phase details (rounds, requirement levels, log).
  unsigned AllocRounds = 0;
  unsigned AllocSeqEdges = 0;
  unsigned AllocSpills = 0;
  bool AllocWithinLimits = false;
  std::vector<unsigned> FinalRequired;
  /// Structured per-round telemetry (see ursa/Driver.h RoundRecord).
  std::vector<RoundRecord> AllocRoundLog;
  /// Why the reduction loop stopped early, when it did (URSAResult::
  /// StopReasons).
  std::vector<std::string> AllocStopReasons;
  /// Text rendering of AllocRoundLog (compatibility shim).
  std::vector<std::string> AllocLog;

  /// Guardrail accounting (see docs/ROBUSTNESS.md). VerifyFailed means a
  /// pipeline invariant was violated and compilation stopped with
  /// diagnostics; Compile.Ok is false in that case.
  bool VerifyFailed = false;
  bool LivelockDetected = false;
  bool BudgetExhausted = false;
  bool FallbackUsed = false;
  std::vector<Diag> Diags;
};

/// Runs the full URSA pipeline on \p T for machine \p M. With
/// URSAOptions::Verify above None the input trace is gated before the DAG
/// is built and every phase boundary is checked; violations surface as
/// Compile.Ok == false plus Diags instead of assertion failures.
URSACompileResult compileURSA(const Trace &T, const MachineModel &M,
                              const URSAOptions &Opts = {});

/// Fallible entry point: like compileURSA but with verification forced to
/// at least Basic, returning a Status (never crashing) when the input is
/// malformed, an invariant breaks mid-pipeline, or emission fails.
StatusOr<URSACompileResult> compileURSAChecked(const Trace &T,
                                               const MachineModel &M,
                                               const URSAOptions &Opts = {});

} // namespace ursa

#endif // URSA_URSA_COMPILER_H
