//===- ursa/KillSelection.h - Worst-case kill-site selection ----*- C++ -*-===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Selection of the Kill() function of paper Section 3.2. A value's
/// register is busy from its definition until the *last* use executes;
/// since URSA assumes no schedule, the measurement needs the kill choice
/// that maximizes the worst-case register requirement. The paper proves
/// this is equivalent to a minimum cover problem (Theorem 2,
/// NP-complete): pick the smallest set of "killer" use nodes covering all
/// values, so the most dependents stay live alongside their ancestors.
///
/// Only *maximal* uses are kill candidates: a use that must execute
/// before another use of the same value can never be the last one.
/// Values with no uses are killed by their own definition.
///
/// Three solvers are provided: the production greedy max-coverage
/// heuristic, an exact branch-and-bound minimum cover, and an exhaustive
/// width-maximizing search (tiny DAGs; the true worst case) used as
/// ground truth by tests and the X6 experiment.
///
//===----------------------------------------------------------------------===//

#ifndef URSA_URSA_KILLSELECTION_H
#define URSA_URSA_KILLSELECTION_H

#include "graph/Analysis.h"
#include "graph/DAG.h"

#include <vector>

namespace ursa {

/// Kill choice per node: KillNode[n] is the node whose execution frees
/// n's register; n itself when the value has no uses; -1 for nodes that
/// define no value.
struct KillMap {
  std::vector<int> KillNode;
};

/// Greedy minimum-cover kill selection (production path, O(N^2)-ish).
KillMap selectKillsGreedy(const DependenceDAG &D, const DAGAnalysis &A);

/// Exact minimum cover by branch and bound; exponential, small DAGs only.
KillMap selectKillsMinCoverExact(const DependenceDAG &D, const DAGAnalysis &A);

/// Exhaustive search over all maximal-use kill assignments for the one
/// that maximizes the register-chain width; the true worst case. Only
/// feasible when few values have multiple maximal uses.
KillMap selectKillsExhaustiveWorstCase(const DependenceDAG &D,
                                       const DAGAnalysis &A);

/// Ground truth for the register requirement: maximum, over all
/// ancestor-closed subsets S of real nodes (equivalently, over all
/// schedule prefixes), of the number of values defined in S with a use
/// outside S. Exponential; asserts the DAG is small. Exact when every
/// value has at least one use (see DESIGN.md Section 5).
unsigned bruteForceMaxLive(const DependenceDAG &D, const DAGAnalysis &A);

} // namespace ursa

#endif // URSA_URSA_KILLSELECTION_H
