//===- ursa/Measure.h - Resource requirement measurement --------*- C++ -*-===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Phase 1 of URSA (paper Section 3): measure the worst-case requirement
/// of every resource as the width of its CanReuse relation (Theorem 1,
/// Dilworth), and locate the hammock-local excessive chain sets
/// (Definition 6) that the transformations must shrink.
///
//===----------------------------------------------------------------------===//

#ifndef URSA_URSA_MEASURE_H
#define URSA_URSA_MEASURE_H

#include "graph/Hammocks.h"
#include "machine/MachineModel.h"
#include "order/Chains.h"
#include "ursa/ReuseDAG.h"

#include <string>
#include <vector>

namespace ursa {

/// Identifies one allocatable resource of the target machine.
struct ResourceId {
  enum KindT { FU, Reg } Kind;
  FUKind FUClass = FUKind::Universal;  ///< valid when Kind == FU
  RegClassKind RC = RegClassKind::GPR; ///< valid when Kind == Reg
  /// True on homogeneous machines, where the single register file (or
  /// universal FU pool) serves every value regardless of class.
  bool AllClasses = true;

  std::string describe() const;
  bool operator==(const ResourceId &O) const {
    return Kind == O.Kind && AllClasses == O.AllClasses &&
           (Kind == FU ? FUClass == O.FUClass : RC == O.RC);
  }
};

/// The resources a machine exposes, each with its capacity.
std::vector<std::pair<ResourceId, unsigned>>
machineResources(const MachineModel &M);

/// An excessive chain set (paper Definition 6): more mutually-independent
/// allocation subchains inside one hammock than the machine has copies of
/// the resource.
struct ExcessiveChainSet {
  ResourceId Res;
  unsigned HammockIdx; ///< index into the HammockForest
  unsigned Limit;      ///< available copies of the resource
  /// Trimmed subchains; when Trimmed is true their heads are pairwise
  /// independent and so are their tails, and Subchains.size() > Limit.
  /// When trimming degenerated (all heads/tails related), Subchains holds
  /// the untrimmed hammock projection and only Witness proves the excess.
  std::vector<std::vector<unsigned>> Subchains;
  bool Trimmed = true;
  /// The untrimmed hammock projection of each subchain's chain, aligned
  /// with Subchains. Sequencing sources come from here: the paper delays
  /// {G, H} after I, and I lives in the trimmed-away part of its chain.
  std::vector<std::vector<unsigned>> FullChains;
  /// A maximum antichain of the relation inside the hammock — a concrete
  /// witness of the excess, used by the wave-sequencing fallback when the
  /// chains are too interleaved for tail-to-head edges.
  std::vector<unsigned> Witness;
};

/// Measurement of one resource on one DAG state.
struct Measurement {
  ResourceId Res;
  unsigned MaxRequired = 0;   ///< worst case over all schedules (width)
  ChainDecomposition Chains;  ///< minimum decomposition (hammock-aware)
  ReuseRelation Reuse;        ///< the relation the chains decompose
};

/// Options for the measurement pipeline.
struct MeasureOptions {
  /// Use the paper's hammock-prioritized matching; plain matching is the
  /// ablation baseline (X5).
  bool PrioritizedMatching = true;
  /// Kill-site selection: 0 greedy (production), 1 exact min cover.
  int KillSolver = 0;
  /// Optional warm-start source: a prior state's measurements for the
  /// same machine (typically the round-start state the winning proposal
  /// was applied on top of). Only the lazy-relation path consults it —
  /// consecutive chain pairs that still hold in the new relation seed
  /// the row-direct matcher, which then only repairs the difference.
  /// Widths are canonical for any seed (every maximum matching has the
  /// same size), and below the closure threshold the prioritized
  /// matcher ignores this entirely, so small-trace chains are
  /// unchanged. Borrowed pointer; must outlive the measureAll call.
  const std::vector<Measurement> *WarmFrom = nullptr;
};

/// Measures resource \p Res on DAG \p D.
Measurement measureResource(const DependenceDAG &D, const DAGAnalysis &A,
                            const HammockForest &HF, ResourceId Res,
                            const MeasureOptions &Opts = {});

/// Measures every resource of \p M.
std::vector<Measurement> measureAll(const DependenceDAG &D,
                                    const DAGAnalysis &A,
                                    const HammockForest &HF,
                                    const MachineModel &M,
                                    const MeasureOptions &Opts = {});

/// Finds the excessive chain sets of \p Meas against capacity \p Limit,
/// innermost hammocks first (paper Section 3.1's second step).
std::vector<ExcessiveChainSet>
findExcessiveSets(const Measurement &Meas, const DAGAnalysis &A,
                  const HammockForest &HF, unsigned Limit,
                  unsigned MaxSets = 0);

/// Number of distinct chains of \p Chains intersecting \p Nodes — the
/// paper's Chains(Set) of Definition 8.
unsigned chainsCovering(const ChainDecomposition &Chains,
                        const Bitset &Nodes);

} // namespace ursa

#endif // URSA_URSA_MEASURE_H
