//===- ursa/IncrementalMeasure.cpp - Delta re-measurement -----------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ursa/IncrementalMeasure.h"

#include "obs/Stats.h"
#include "obs/Tracer.h"
#include "ursa/KillSelection.h"
#include "ursa/ReuseDAG.h"

#include <cassert>

using namespace ursa;

URSA_STAT(StatDeltaMeasures, "ursa.incremental.delta_measures",
          "proposal states measured by delta instead of a full rebuild");
URSA_STAT(StatDeltaEdges, "ursa.incremental.edges_propagated",
          "edges folded into reachability closures by delta propagation");
URSA_STAT(StatDeltaSpills, "ursa.incremental.spill_deltas",
          "spill proposal states measured by journal delta replay");

IncrementalMeasurer::IncrementalMeasurer(
    const DependenceDAG &BaseDIn, const DAGAnalysis &BaseAIn,
    const std::vector<Measurement> &BaseMeasIn,
    const std::vector<std::pair<ResourceId, unsigned>> &LimitsIn,
    const MeasureOptions &MOIn)
    : BaseD(BaseDIn), BaseA(BaseAIn), BaseMeas(BaseMeasIn), Limits(LimitsIn),
      MO(MOIn) {
  assert(BaseMeas.size() == Limits.size() &&
         "measurements and limits must align (machineResources order)");
}

bool IncrementalMeasurer::measureWidths(const DependenceDAG &Scratch,
                                        const DAGAnalysis &A,
                                        bool AllowActiveChange,
                                        DeltaMeasurement &Out) const {
  Out.Required.clear();
  Out.Required.reserve(BaseMeas.size());
  Out.CritPath = A.criticalPathLength();
  Out.TotalExcess = 0;

  KillMap Kills;
  bool KillsBuilt = false;
  std::vector<unsigned> FUActive;
  for (unsigned I = 0; I != BaseMeas.size(); ++I) {
    const Measurement &BM = BaseMeas[I];
    unsigned W;
    if (BM.Res.Kind == ResourceId::FU) {
      // The FU reuse relation is the reachability closure restricted to
      // the FU-using nodes (ReuseDAG.cpp builds row = descendants &
      // active), so skip the matrix build: recompute the active set the
      // same way and let the width matcher mask the closure rows.
      FUActive.clear();
      for (unsigned N = 2, E = Scratch.size(); N != E; ++N)
        if (BM.Res.AllClasses ||
            Scratch.instrAt(N).fuKind() == BM.Res.FUClass)
          FUActive.push_back(N);
      // The pure-edge warm start assumes the relation's domain is
      // unchanged; an edge delta never changes it (active sets are
      // trace-determined), so a mismatch means the delta premise is
      // broken — fall back. Spill deltas legitimately grow the set.
      if (!AllowActiveChange && FUActive != BM.Reuse.Active)
        return false;
      URSA_SPAN(WidthSpan, "ursa.measure.delta.fu_width", "measure");
      W = chainWidthWarmStart(A.reachabilityClosure(), FUActive, BM.Chains);
    } else {
      if (!KillsBuilt) {
        URSA_SPAN(KillSpan, "ursa.measure.delta.kills", "measure");
        Kills = MO.KillSolver == 1 ? selectKillsMinCoverExact(Scratch, A)
                                   : selectKillsGreedy(Scratch, A);
        KillsBuilt = true;
      }
      URSA_SPAN(RegSpan, "ursa.measure.delta.reg_width", "measure");
      ReuseRelation R = BM.Res.AllClasses
                            ? buildRegReuse(Scratch, A, Kills)
                            : buildRegReuseForClass(Scratch, A, Kills,
                                                    BM.Res.RC);
      if (!AllowActiveChange && R.Active != BM.Reuse.Active)
        return false;
      W = chainWidthWarmStart(R.Rel, R.Active, BM.Chains);
    }
    Out.Required.push_back(W);
    if (W > Limits[I].second)
      Out.TotalExcess += W - Limits[I].second;
  }
  return true;
}

bool IncrementalMeasurer::measureDelta(const DependenceDAG &Scratch,
                                       const TransformProposal &P,
                                       DeltaMeasurement &Out) const {
  // Spills insert store/reload nodes and rewire use edges — not an edge
  // delta; the EdgeDelta overload handles them. Everything else only adds
  // P.SeqEdges (plus reachability-neutral virtual-edge cleanup).
  if (P.Kind == TransformProposal::Spill)
    return false;
  if (Scratch.size() != BaseD.size())
    return false;

  URSA_SPAN(DeltaSpan, "ursa.measure.delta", "measure");
  std::unique_ptr<DAGAnalysis> A;
  {
    URSA_SPAN(ClosureSpan, "ursa.measure.delta.closure", "measure");
    A = DAGAnalysis::buildIncremental(Scratch, BaseA, P.SeqEdges);
  }
  if (!A)
    return false;

  if (!measureWidths(Scratch, *A, /*AllowActiveChange=*/false, Out))
    return false;

  StatDeltaMeasures.add();
  StatDeltaEdges.add(P.SeqEdges.size());
  return true;
}

bool IncrementalMeasurer::measureDelta(const DependenceDAG &Scratch,
                                       const TransformProposal &P,
                                       const EdgeDelta &Delta,
                                       DeltaMeasurement &Out) const {
  if (P.Kind != TransformProposal::Spill)
    return measureDelta(Scratch, P, Out); // pure edge path, strict checks

  URSA_SPAN(DeltaSpan, "ursa.measure.delta", "measure");
  std::unique_ptr<DAGAnalysis> A;
  {
    URSA_SPAN(ClosureSpan, "ursa.measure.delta.closure", "measure");
    A = DAGAnalysis::buildIncrementalDelta(Scratch, BaseA, Delta);
  }
  if (!A)
    return false;

  if (!measureWidths(Scratch, *A, /*AllowActiveChange=*/true, Out))
    return false;

  StatDeltaMeasures.add();
  StatDeltaSpills.add();
  StatDeltaEdges.add(Delta.Added.size() + Delta.Removed.size());
  return true;
}
