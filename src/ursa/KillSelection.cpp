//===- ursa/KillSelection.cpp - Worst-case kill-site selection ------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ursa/KillSelection.h"

#include "order/Chains.h"
#include "ursa/ReuseDAG.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <queue>
#include <utility>

using namespace ursa;

/// Uses of \p Def that can execute last under some schedule: no other use
/// is reachable from them.
static std::vector<unsigned>
maximalUses(const std::vector<unsigned> &Uses, const DAGAnalysis &A) {
  std::vector<unsigned> Max;
  for (unsigned U : Uses) {
    bool Dominated = std::any_of(Uses.begin(), Uses.end(), [&](unsigned V) {
      return V != U && A.reaches(U, V);
    });
    if (!Dominated)
      Max.push_back(U);
  }
  return Max;
}

namespace {

/// Shared setup for the cover solvers.
struct CoverProblem {
  std::vector<unsigned> Defs; ///< defs with at least one (maximal) use
  std::vector<std::vector<unsigned>> Candidates; ///< per def, killer nodes
  std::map<unsigned, std::vector<unsigned>> KillerToDefs;

  CoverProblem(const DependenceDAG &D, const DAGAnalysis &A,
               KillMap &Result) {
    std::vector<std::vector<unsigned>> Uses = computeUses(D);
    Result.KillNode.assign(D.size(), -1);
    for (unsigned N = 2, E = D.size(); N != E; ++N) {
      if (D.instrAt(N).dest() < 0)
        continue;
      std::vector<unsigned> Max = maximalUses(Uses[N], A);
      if (Max.empty()) {
        Result.KillNode[N] = int(N); // value never read; dies at its def
        continue;
      }
      Defs.push_back(N);
      for (unsigned K : Max)
        KillerToDefs[K].push_back(N);
      Candidates.push_back(std::move(Max));
    }
  }
};

} // namespace

KillMap ursa::selectKillsGreedy(const DependenceDAG &D, const DAGAnalysis &A) {
  KillMap Result;
  CoverProblem P(D, A, Result);

  // Greedy max-cover with incremental counts and a lazy-deletion heap.
  // The straightforward version rescans every killer's def list per
  // selection — quadratic in the cover size, which dominates the whole
  // measurement at 100k-node traces. Counts only ever decrease, so each
  // decrement pushes a fresh heap entry and stale (higher-count) entries
  // are skipped on pop. Selection order is identical to the rescan
  // version: maximum uncovered count, smallest killer id on ties.
  std::vector<int> IdxOfDef(D.size(), -1);
  for (unsigned I = 0; I != P.Defs.size(); ++I)
    IdxOfDef[P.Defs[I]] = int(I);

  std::vector<unsigned> Count(D.size(), 0);
  // Max-heap on (count, killer): higher count first, smaller id on ties.
  auto Less = [](const std::pair<unsigned, unsigned> &X,
                 const std::pair<unsigned, unsigned> &Y) {
    if (X.first != Y.first)
      return X.first < Y.first;
    return X.second > Y.second;
  };
  std::priority_queue<std::pair<unsigned, unsigned>,
                      std::vector<std::pair<unsigned, unsigned>>,
                      decltype(Less)>
      Heap(Less);
  for (const auto &[Killer, Defs] : P.KillerToDefs) {
    Count[Killer] = Defs.size();
    Heap.push({Count[Killer], Killer});
  }

  std::vector<uint8_t> Covered(D.size(), 0);
  unsigned Remaining = P.Defs.size();
  while (Remaining != 0) {
    assert(!Heap.empty() && "uncovered def with no candidate killer");
    auto [C, Killer] = Heap.top();
    Heap.pop();
    if (C != Count[Killer] || C == 0)
      continue; // stale entry; the current count was pushed on decrement
    for (unsigned Def : P.KillerToDefs[Killer]) {
      if (Covered[Def])
        continue;
      Covered[Def] = 1;
      Result.KillNode[Def] = int(Killer);
      --Remaining;
      // The newly covered def no longer counts for any of its candidate
      // killers (including this one).
      for (unsigned K : P.Candidates[IdxOfDef[Def]]) {
        --Count[K];
        if (K != Killer && Count[K] != 0)
          Heap.push({Count[K], K});
      }
    }
  }
  return Result;
}

KillMap ursa::selectKillsMinCoverExact(const DependenceDAG &D,
                                       const DAGAnalysis &A) {
  KillMap Greedy = selectKillsGreedy(D, A);
  KillMap Result;
  CoverProblem P(D, A, Result);
  if (P.Defs.empty())
    return Result;

  // Distinct killers used by the greedy solution bound the search.
  std::vector<unsigned> GreedyKillers;
  for (unsigned Def : P.Defs)
    GreedyKillers.push_back(unsigned(Greedy.KillNode[Def]));
  std::sort(GreedyKillers.begin(), GreedyKillers.end());
  GreedyKillers.erase(
      std::unique(GreedyKillers.begin(), GreedyKillers.end()),
      GreedyKillers.end());
  unsigned BestSize = GreedyKillers.size();
  std::vector<unsigned> BestSet = GreedyKillers;

  // Branch and bound on the set of chosen killers.
  std::vector<unsigned> Chosen;
  std::vector<uint8_t> InChosen(D.size(), 0);
  auto Recurse = [&](auto &&Self) -> void {
    if (Chosen.size() >= BestSize)
      return;
    // First uncovered def (fewest candidates would be better; sizes are
    // tiny so first is fine).
    int Pick = -1;
    for (unsigned I = 0; I != P.Defs.size(); ++I) {
      bool Cov = std::any_of(P.Candidates[I].begin(), P.Candidates[I].end(),
                             [&](unsigned K) { return InChosen[K]; });
      if (!Cov) {
        Pick = int(I);
        break;
      }
    }
    if (Pick < 0) {
      BestSize = Chosen.size();
      BestSet = Chosen;
      return;
    }
    for (unsigned K : P.Candidates[Pick]) {
      Chosen.push_back(K);
      InChosen[K] = 1;
      Self(Self);
      InChosen[K] = 0;
      Chosen.pop_back();
    }
  };
  Recurse(Recurse);

  for (auto K : BestSet)
    InChosen[K] = 1;
  for (unsigned I = 0; I != P.Defs.size(); ++I) {
    for (unsigned K : P.Candidates[I])
      if (InChosen[K]) {
        Result.KillNode[P.Defs[I]] = int(K);
        break;
      }
  }
  return Result;
}

KillMap ursa::selectKillsExhaustiveWorstCase(const DependenceDAG &D,
                                             const DAGAnalysis &A) {
  KillMap Result;
  CoverProblem P(D, A, Result);

  // Enumerate the cartesian product of per-def maximal-use choices.
  uint64_t Product = 1;
  for (const auto &C : P.Candidates) {
    Product *= C.size();
    assert(Product <= (1u << 20) && "exhaustive kill search too large");
  }

  KillMap Current = Result;
  unsigned BestWidth = 0;
  KillMap Best = Result;
  std::vector<unsigned> Choice(P.Defs.size(), 0);
  for (uint64_t It = 0; It != Product; ++It) {
    uint64_t X = It;
    for (unsigned I = 0; I != P.Defs.size(); ++I) {
      Choice[I] = X % P.Candidates[I].size();
      X /= P.Candidates[I].size();
      Current.KillNode[P.Defs[I]] = int(P.Candidates[I][Choice[I]]);
    }
    ReuseRelation R = buildRegReuse(D, A, Current);
    unsigned W = decomposeChains(R.Rel, R.Active).width();
    if (W > BestWidth) {
      BestWidth = W;
      Best = Current;
    }
  }
  return Best;
}

unsigned ursa::bruteForceMaxLive(const DependenceDAG &D,
                                 const DAGAnalysis &A) {
  unsigned NumReal = D.size() - 2;
  assert(NumReal <= 22 && "brute force liveness is for small DAGs only");
  std::vector<std::vector<unsigned>> Uses = computeUses(D);

  // Per real node: ancestor mask and pending-use mask over real bits.
  std::vector<uint32_t> AncMask(NumReal, 0), UseMask(NumReal, 0);
  std::vector<uint8_t> HasDest(NumReal, 0);
  for (unsigned I = 0; I != NumReal; ++I) {
    unsigned N = DependenceDAG::nodeOf(I);
    A.ancestors(N).forEach([&](unsigned M) {
      if (!DependenceDAG::isVirtual(M))
        AncMask[I] |= uint32_t(1) << DependenceDAG::instrOf(M);
    });
    for (unsigned U : Uses[N])
      UseMask[I] |= uint32_t(1) << DependenceDAG::instrOf(U);
    HasDest[I] = D.instrAt(N).dest() >= 0;
  }

  unsigned Best = 0;
  for (uint32_t S = 0, E = uint32_t(1) << NumReal; S != E; ++S) {
    bool Closed = true;
    unsigned Live = 0;
    for (uint32_t M = S; M && Closed; M &= M - 1) {
      unsigned I = __builtin_ctz(M);
      if (AncMask[I] & ~S) {
        Closed = false;
        break;
      }
      if (HasDest[I] && (UseMask[I] & ~S))
        ++Live;
    }
    if (Closed && Live > Best)
      Best = Live;
  }
  return Best;
}
