//===- ursa/MeasureCache.h - Shared measured-state cache --------*- C++ -*-===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fingerprint-keyed cache of measured DAG states. Historically a
/// private detail of the driver (one cache per runURSA call); the compile
/// service shares one instance across requests so identical or
/// near-identical DAGs arriving in different requests reuse each other's
/// measurements. States are immutable self-contained snapshots, which is
/// what makes sharing them across threads and requests sound.
///
//===----------------------------------------------------------------------===//

#ifndef URSA_URSA_MEASURECACHE_H
#define URSA_URSA_MEASURECACHE_H

#include "graph/Analysis.h"
#include "graph/Hammocks.h"
#include "machine/MachineModel.h"
#include "ursa/Measure.h"

#include <functional>
#include <memory>
#include <mutex>
#include <vector>

namespace ursa {

/// One measured DAG state: analyses plus per-resource requirements.
struct MeasuredState {
  std::unique_ptr<DAGAnalysis> A;
  std::unique_ptr<HammockForest> HF;
  std::vector<Measurement> Meas;
  std::vector<std::pair<ResourceId, unsigned>> Limits;
  unsigned TotalExcess = 0;
  unsigned CritPath = 0;

  MeasuredState(const DependenceDAG &D, const MachineModel &M,
                const MeasureOptions &MO);

  /// Builds from a precomputed analysis — the delta-closure promotion
  /// path. \p Analysis must describe exactly \p D (the driver hands over
  /// DAGAnalysis::buildIncremental output, which is bit-identical to a
  /// fresh build); everything downstream (hammocks, measurements, excess)
  /// is derived from it the same way the from-scratch constructor would.
  MeasuredState(const DependenceDAG &D, const MachineModel &M,
                const MeasureOptions &MO,
                std::unique_ptr<DAGAnalysis> Analysis);
};

/// MRU cache of measured states keyed on dagFingerprint. The driver
/// rebuilds the *same* state repeatedly — the winning proposal's
/// remeasure becomes the next round's start state, which becomes the
/// sweep-end check and finally the pre-fallback and final accounting —
/// so a few entries capture nearly all intra-run reuse; at server scope
/// (one cache injected into every request) recompiles of an unchanged
/// function hit on every full build. Keys are 64-bit content hashes; a
/// collision would resurrect a stale measurement, which the
/// phase-boundary verifier would flag.
///
/// Thread safety: lookups and insertions are mutex-guarded; the build on
/// a miss runs outside the lock, so two threads missing on the same
/// fingerprint may build the state twice (both builds are bit-identical
/// and the second insert is dropped) but never block each other for the
/// O(n^2) duration.
class MeasurementCache {
public:
  MeasurementCache(bool Enabled, unsigned Capacity);

  /// The measured state for \p D's current content, built on miss.
  std::shared_ptr<const MeasuredState>
  get(const DependenceDAG &D, const MachineModel &M, const MeasureOptions &MO);

  /// Adopts an already-built measurement (a proposal evaluation's or a
  /// delta-closure promotion's) under its fingerprint.
  void insert(uint64_t Fp, std::shared_ptr<const MeasuredState> S);

  /// Entries currently held (for reports; racy by nature under load).
  unsigned size() const;

  /// Called (outside the cache lock) whenever get() builds a state from
  /// scratch, with the fingerprint and the DAG it was built from. The
  /// cache persister hooks this to journal rebuildable inputs; promotion
  /// inserts bypass it (no DAG in hand there), which only narrows what a
  /// restart can warm, never corrupts it. Set once during setup, before
  /// the cache is shared across threads.
  using BuildObserver = std::function<void(uint64_t, const DependenceDAG &)>;
  void setBuildObserver(BuildObserver O) { OnBuild = std::move(O); }

  /// Drains the calling thread's hit/miss tally (counted across every
  /// cache instance the thread probed since the last take). The compile
  /// service drains this around each request to attribute cache traffic
  /// to it — exact when the request compiles single-threaded, which is
  /// the service default; parallel proposal evaluation probes from pool
  /// threads and lands in their tallies instead.
  static void takeThreadTally(uint64_t &Hits, uint64_t &Misses);

private:
  std::shared_ptr<const MeasuredState> lookup(uint64_t Fp);

  mutable std::mutex Mu;
  unsigned Capacity;
  bool Enabled;
  std::vector<std::pair<uint64_t, std::shared_ptr<const MeasuredState>>>
      Entries;
  BuildObserver OnBuild;
};

} // namespace ursa

#endif // URSA_URSA_MEASURECACHE_H
