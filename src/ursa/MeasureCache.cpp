//===- ursa/MeasureCache.cpp - Shared measured-state cache ----------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ursa/MeasureCache.h"

#include "obs/Stats.h"
#include "ursa/PipelineVerifier.h"

#include <algorithm>
#include <cassert>

using namespace ursa;

URSA_STAT(StatMeasureCacheHits, "ursa.driver.measure_cache.hits",
          "full-state measurements reused via the fingerprint cache");
URSA_STAT(StatMeasureCacheMisses, "ursa.driver.measure_cache.misses",
          "full-state measurements built (fingerprint cache misses)");
URSA_STAT(StatMeasureCacheEvictions, "ursa.driver.measure_cache.evictions",
          "measured states dropped from the fingerprint cache (LRU)");

namespace {
thread_local uint64_t TlsCacheHits = 0;
thread_local uint64_t TlsCacheMisses = 0;
} // namespace

void MeasurementCache::takeThreadTally(uint64_t &Hits, uint64_t &Misses) {
  Hits = TlsCacheHits;
  Misses = TlsCacheMisses;
  TlsCacheHits = TlsCacheMisses = 0;
}

MeasuredState::MeasuredState(const DependenceDAG &D, const MachineModel &M,
                             const MeasureOptions &MO)
    : MeasuredState(D, M, MO, std::make_unique<DAGAnalysis>(D)) {}

MeasuredState::MeasuredState(const DependenceDAG &D, const MachineModel &M,
                             const MeasureOptions &MO,
                             std::unique_ptr<DAGAnalysis> Analysis) {
  assert(Analysis && "measured state needs an analysis");
  A = std::move(Analysis);
  HF = std::make_unique<HammockForest>(D, *A);
  Limits = machineResources(M);
  Meas = measureAll(D, *A, *HF, M, MO);
  CritPath = A->criticalPathLength();
  for (unsigned I = 0; I != Meas.size(); ++I)
    if (Meas[I].MaxRequired > Limits[I].second)
      TotalExcess += Meas[I].MaxRequired - Limits[I].second;
}

MeasurementCache::MeasurementCache(bool EnabledIn, unsigned CapacityIn)
    : Capacity(std::max(1u, CapacityIn)), Enabled(EnabledIn) {}

std::shared_ptr<const MeasuredState>
MeasurementCache::lookup(uint64_t Fp) {
  std::lock_guard<std::mutex> Lock(Mu);
  for (unsigned I = 0; I != Entries.size(); ++I) {
    if (Entries[I].first == Fp) {
      StatMeasureCacheHits.add();
      ++TlsCacheHits;
      auto E = Entries[I];
      Entries.erase(Entries.begin() + I);
      Entries.insert(Entries.begin(), E);
      return E.second;
    }
  }
  StatMeasureCacheMisses.add();
  ++TlsCacheMisses;
  return nullptr;
}

std::shared_ptr<const MeasuredState>
MeasurementCache::get(const DependenceDAG &D, const MachineModel &M,
                      const MeasureOptions &MO) {
  if (!Enabled) {
    ++TlsCacheMisses; // every disabled get is a full build
    return std::make_shared<MeasuredState>(D, M, MO);
  }
  uint64_t Fp = dagFingerprint(D);
  if (std::shared_ptr<const MeasuredState> Hit = lookup(Fp))
    return Hit;
  auto S = std::make_shared<const MeasuredState>(D, M, MO);
  insert(Fp, S);
  if (OnBuild)
    OnBuild(Fp, D);
  return S;
}

void MeasurementCache::insert(uint64_t Fp,
                              std::shared_ptr<const MeasuredState> S) {
  if (!Enabled)
    return;
  std::lock_guard<std::mutex> Lock(Mu);
  for (const auto &E : Entries)
    if (E.first == Fp)
      return;
  Entries.insert(Entries.begin(), {Fp, std::move(S)});
  if (Entries.size() > Capacity) {
    Entries.pop_back();
    StatMeasureCacheEvictions.add();
  }
}

unsigned MeasurementCache::size() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return unsigned(Entries.size());
}
