//===- ursa/FaultInjector.h - Deterministic pipeline fault injection -*- C++ -*-===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic, RNG-seeded fault harness that corrupts pipeline state
/// the way real bugs would, so tests can prove the PipelineVerifier
/// catches every fault class and the driver degrades instead of crashing:
///
///  * CycleEdge      — adds a back edge, breaking acyclicity;
///  * DanglingEdge   — records an edge on the successor side only;
///  * DropSeqEdge    — silently removes a URSA-added sequence edge,
///                     un-doing allocation work behind the driver's back;
///  * FalseProgress  — makes the driver believe a transform applied while
///                     the DAG is unchanged (livelock seed);
///  * StallRound     — delays every applied round by a fixed wall-clock
///                     amount without corrupting anything, modelling a
///                     pathologically slow compile so budget and
///                     service-deadline paths can be tested
///                     deterministically.
///
/// An injector is armed with one fault kind and a firing round and handed
/// to the driver via URSAOptions::Faults; the static corrupt* helpers
/// mutate states directly for unit tests (schedules into over-capacity
/// cycles, assignments into live-range conflicts).
///
/// The harness also extends to the service transport: WireFault names the
/// ways a peer can mangle a length-prefixed frame on the wire (truncated
/// frame, torn header, stalled write, mid-stream disconnect, garbage
/// length prefix), and injectWireFault() performs one from the client
/// side of a connection so the transport fault-matrix test can prove the
/// server catches or heals every class.
///
//===----------------------------------------------------------------------===//

#ifndef URSA_URSA_FAULTINJECTOR_H
#define URSA_URSA_FAULTINJECTOR_H

#include "graph/DAG.h"
#include "sched/ListScheduler.h"
#include "sched/RegAssign.h"
#include "support/RNG.h"
#include "support/Socket.h"

#include <string_view>

namespace ursa {

/// What an armed injector corrupts.
enum class FaultKind {
  None,
  CycleEdge,
  DanglingEdge,
  DropSeqEdge,
  FalseProgress,
  StallRound
};

class FaultInjector {
public:
  explicit FaultInjector(FaultKind K, uint64_t Seed = 1,
                         unsigned FireAtRound = 0)
      : Kind(K), FireAt(FireAtRound), Rng(Seed) {}

  FaultKind kind() const { return Kind; }
  bool fired() const { return Fired; }

  /// StallRound only: how long each applied round sleeps. Returns *this
  /// for chaining at the arming site.
  FaultInjector &withStallMs(unsigned Ms) {
    StallMs = Ms;
    return *this;
  }

  /// Driver hook, called once per applied round with the live DAG.
  /// DAG-corrupting kinds fire once when \p Round reaches the armed
  /// round; returns true when a fault was injected.
  bool maybeInjectDAG(DependenceDAG &D, unsigned Round);

  /// Driver hook for FalseProgress: true when the driver should pretend
  /// the chosen transform was applied. Fires persistently from the armed
  /// round on, modelling a buggy transform, not a one-off glitch.
  bool shouldFakeProgress(unsigned Round);

  //===--- Direct corruption helpers (unit tests) -------------------------===//

  /// Adds an edge opposing an existing real edge; returns false when the
  /// DAG has no real edge to oppose.
  static bool injectCycle(DependenceDAG &D, RNG &Rng);

  /// Appends a successor-side-only half edge between two real nodes;
  /// returns false on DAGs with fewer than two real nodes.
  static bool injectDanglingEdge(DependenceDAG &D, RNG &Rng);

  /// Removes one sequence edge between real nodes; false if none exist.
  static bool dropSequenceEdge(DependenceDAG &D, RNG &Rng);

  /// Moves one op of the busiest cycle into another cycle that is already
  /// at capacity (over-subscription); no-op on schedules with one cycle.
  static void corruptSchedule(Schedule &S, RNG &Rng);

  /// Forces two simultaneously-live same-class values onto one physical
  /// register; no-op when no such pair exists.
  static void corruptAssignment(const DependenceDAG &D, const Schedule &S,
                                RegAssignment &RA);

private:
  FaultKind Kind;
  unsigned FireAt;
  unsigned StallMs = 10;
  bool Fired = false;
  RNG Rng;
};

/// The ways a peer can mangle a frame on the wire.
enum class WireFault {
  None,
  TruncatedFrame,      ///< honest header, half the payload, then clean FIN
  TornHeader,          ///< connection dies inside the 4-byte length prefix
  StalledWrite,        ///< frame stops making progress mid-payload
  MidStreamDisconnect, ///< abrupt close halfway through the payload
  GarbageLength        ///< length prefix far beyond any sane frame
};

/// Stable lower_snake name for reports and test matrices.
const char *wireFaultName(WireFault F);

/// Performs fault \p F on connection \p S as if sending \p Payload.
/// TruncatedFrame, TornHeader and MidStreamDisconnect leave \p S closed or
/// shut down; StalledWrite sends a partial frame, sleeps \p StallMs, and
/// leaves the connection open (the peer's per-operation deadline is what
/// is under test); GarbageLength sends a complete-looking frame whose
/// length prefix no peer should ever trust. WireFault::None degenerates to
/// a correct sendFrame.
Status injectWireFault(Socket &S, WireFault F, std::string_view Payload,
                       unsigned StallMs = 50);

} // namespace ursa

#endif // URSA_URSA_FAULTINJECTOR_H
