//===- ursa/ReuseDAG.cpp - CanReuse relations per resource ----------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ursa/ReuseDAG.h"

#include "graph/Analysis.h"

using namespace ursa;

/// Above this node count relations stay lazy over the analysis closure
/// instead of materializing their own matrix. Same knob as the closure
/// representation so a forced-dense run exercises the historical path
/// end to end.
static bool useLazyRelation(unsigned NumNodes) {
  return NumNodes > closureThreshold();
}

/// Shared FU construction over a node filter.
template <typename FilterFn>
static ReuseRelation buildFUReuseImpl(const DependenceDAG &D,
                                      const DAGAnalysis &A, FilterFn Filter) {
  ReuseRelation R;
  Bitset ActiveBits(D.size());
  for (unsigned N = 2, E = D.size(); N != E; ++N) {
    if (!Filter(N))
      continue;
    R.Active.push_back(N);
    ActiveBits.set(N);
  }
  if (useLazyRelation(D.size())) {
    // Row n of CanReuse_FU is descendants(n) & active — exactly closure
    // row n masked, no copy needed.
    std::vector<int32_t> RowOf(D.size(), -1);
    for (unsigned N : R.Active)
      RowOf[N] = int32_t(N);
    R.Rel = RelationMatrix::lazy(A.reachabilityClosure(), std::move(RowOf),
                                 {}, std::move(ActiveBits));
    return R;
  }
  R.Rel = BitMatrix(D.size());
  for (unsigned N : R.Active) {
    Bitset Row = A.descendants(N);
    Row &= ActiveBits;
    R.Rel.row(N) = std::move(Row);
  }
  return R;
}

ReuseRelation ursa::buildFUReuse(const DependenceDAG &D,
                                 const DAGAnalysis &A) {
  return buildFUReuseImpl(D, A, [](unsigned) { return true; });
}

ReuseRelation ursa::buildFUReuseForClass(const DependenceDAG &D,
                                         const DAGAnalysis &A, FUKind K) {
  return buildFUReuseImpl(
      D, A, [&](unsigned N) { return D.instrAt(N).fuKind() == K; });
}

/// Shared register construction over a def filter.
template <typename FilterFn>
static ReuseRelation buildRegReuseImpl(const DependenceDAG &D,
                                       const DAGAnalysis &A,
                                       const KillMap &Kills,
                                       FilterFn Filter) {
  ReuseRelation R;
  Bitset ActiveBits(D.size());
  for (unsigned N = 2, E = D.size(); N != E; ++N) {
    if (D.instrAt(N).dest() < 0 || !Filter(N))
      continue;
    R.Active.push_back(N);
    ActiveBits.set(N);
  }
  if (useLazyRelation(D.size())) {
    // Row n of CanReuse_Reg is descendants(Kill(n)) plus the killer
    // itself, masked by the active set — a closure row remap with one
    // extra bit.
    std::vector<int32_t> RowOf(D.size(), -1), Extra(D.size(), -1);
    for (unsigned N : R.Active) {
      int Kill = Kills.KillNode[N];
      assert(Kill >= 0 && "defining node without a kill site");
      RowOf[N] = Kill;
      if (unsigned(Kill) != N)
        Extra[N] = Kill; // the killer itself may reuse the register
    }
    R.Rel = RelationMatrix::lazy(A.reachabilityClosure(), std::move(RowOf),
                                 std::move(Extra), std::move(ActiveBits));
    return R;
  }
  R.Rel = BitMatrix(D.size());
  for (unsigned N : R.Active) {
    int Kill = Kills.KillNode[N];
    assert(Kill >= 0 && "defining node without a kill site");
    Bitset Row = A.descendants(unsigned(Kill));
    if (unsigned(Kill) != N)
      Row.set(unsigned(Kill)); // the killer itself may reuse the register
    Row &= ActiveBits;
    R.Rel.row(N) = std::move(Row);
  }
  return R;
}

ReuseRelation ursa::buildRegReuse(const DependenceDAG &D, const DAGAnalysis &A,
                                  const KillMap &Kills) {
  return buildRegReuseImpl(D, A, Kills, [](unsigned) { return true; });
}

ReuseRelation ursa::buildRegReuseForClass(const DependenceDAG &D,
                                          const DAGAnalysis &A,
                                          const KillMap &Kills,
                                          RegClassKind C) {
  return buildRegReuseImpl(D, A, Kills, [&](unsigned N) {
    return D.instrAt(N).destRegClass() == C;
  });
}

/// Shared safe-reuse construction over a def filter.
template <typename FilterFn>
static ReuseRelation buildSafeRegReuseImpl(const DependenceDAG &D,
                                           const DAGAnalysis &A,
                                           FilterFn Filter) {
  std::vector<std::vector<unsigned>> Uses = computeUses(D);
  ReuseRelation R;
  R.Rel = BitMatrix(D.size());
  Bitset ActiveBits(D.size());
  for (unsigned N = 2, E = D.size(); N != E; ++N) {
    if (D.instrAt(N).dest() < 0 || !Filter(N))
      continue;
    R.Active.push_back(N);
    ActiveBits.set(N);
  }
  for (unsigned N : R.Active) {
    // b may reuse a's register in every schedule iff b strictly follows
    // each maximal use (non-maximal uses precede a maximal one anyway).
    std::vector<unsigned> Max;
    for (unsigned U : Uses[N]) {
      bool Maximal = true;
      for (unsigned V : Uses[N])
        if (V != U && A.reaches(U, V))
          Maximal = false;
      if (Maximal)
        Max.push_back(U);
    }
    Bitset Row(D.size());
    if (Max.empty()) {
      Row = A.descendants(N); // dead value: reusable by descendants
    } else if (Max.size() == 1) {
      Row = A.descendants(Max[0]);
      Row.set(Max[0]); // the lone last use may itself take the register
    } else {
      // Common strict descendants of every maximal use; the uses are
      // mutually unreachable, so none of them is in the intersection.
      Row = A.descendants(Max[0]);
      for (unsigned I = 1; I != Max.size(); ++I)
        Row &= A.descendants(Max[I]);
    }
    Row &= ActiveBits;
    Row.reset(N);
    R.Rel.row(N) = std::move(Row);
  }
  return R;
}

ReuseRelation ursa::buildSafeRegReuse(const DependenceDAG &D,
                                      const DAGAnalysis &A) {
  return buildSafeRegReuseImpl(D, A, [](unsigned) { return true; });
}

ReuseRelation ursa::buildSafeRegReuseForClass(const DependenceDAG &D,
                                              const DAGAnalysis &A,
                                              RegClassKind C) {
  return buildSafeRegReuseImpl(D, A, [&](unsigned N) {
    return D.instrAt(N).destRegClass() == C;
  });
}

BitMatrix ursa::reuseDAGEdges(const ReuseRelation &R) {
  return transitiveReduction(R.Rel.denseMatrix());
}
