//===- ursa/ReuseDAG.h - CanReuse relations per resource --------*- C++ -*-===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The unified piece of URSA (paper Section 3): both resources are
/// measured through the same structure, a CanReuse relation per resource
/// type, differing only in how the relation is constructed:
///
///  * Functional units are free once their instruction completes, so
///    CanReuse_FU is exactly the dependence partial order (Definition 3's
///    instantiation for FUs).
///
///  * A register stays busy until the value's killing use executes, so
///    CanReuse_Reg(a, b) holds iff b is Kill(a) or one of its descendants
///    (Section 3.2), with Kill() chosen by ursa/KillSelection.h.
///
/// The relation is stored as its strict-order closure plus the set of
/// participating ("active") nodes; the Reuse DAG of Definition 4 is its
/// transitive reduction and is derivable on demand. Multiple resource
/// classes (Section 6 extension) are handled by filtering the active set
/// per class — one Reuse relation per class, as the paper prescribes.
///
//===----------------------------------------------------------------------===//

#ifndef URSA_URSA_REUSEDAG_H
#define URSA_URSA_REUSEDAG_H

#include "graph/Analysis.h"
#include "graph/Closure.h"
#include "graph/DAG.h"
#include "machine/MachineModel.h"
#include "support/Bitset.h"
#include "ursa/KillSelection.h"

#include <cstdint>
#include <utility>
#include <vector>

namespace ursa {

/// Storage behind a reuse relation. Two modes:
///
///  * dense — an owned BitMatrix with the historical row surface (the
///    representation below the closure threshold and for relations that
///    are genuine row intersections, like safe register reuse);
///
///  * lazy — a remapping over the analysis closure: row n of the relation
///    is closure row RowOf[n] (or empty when RowOf[n] < 0) plus an
///    optional ExtraBit[n], masked by the active-set bitmask. Both reuse
///    relations are exactly such remappings (FU: own descendant row;
///    register: the kill site's row plus the kill itself), so above the
///    threshold no second O(N^2) matrix is ever materialized. The closure
///    is borrowed from the DAGAnalysis the relation was built from and
///    must outlive it.
///
/// Matching engines consume either mode through the implicit RelationView
/// conversion.
class RelationMatrix {
public:
  RelationMatrix() = default;
  RelationMatrix(BitMatrix M) : Dense(std::move(M)) {}
  RelationMatrix &operator=(BitMatrix M) {
    Dense = std::move(M);
    C = nullptr;
    return *this;
  }

  static RelationMatrix lazy(const Closure &Cl, std::vector<int32_t> Row,
                             std::vector<int32_t> Extra, Bitset MaskBits) {
    RelationMatrix M;
    M.C = &Cl;
    M.RowOf = std::move(Row);
    M.ExtraBit = std::move(Extra);
    M.Mask = std::move(MaskBits);
    return M;
  }

  bool isLazy() const { return C != nullptr; }
  unsigned size() const { return isLazy() ? C->size() : Dense.size(); }

  operator RelationView() const {
    return isLazy() ? RelationView::lazy(*C, RowOf, ExtraBit, Mask)
                    : RelationView(Dense);
  }
  RelationView view() const { return *this; }

  bool test(unsigned R, unsigned Col) const { return view().test(R, Col); }
  unsigned rowCount(unsigned R) const { return view().rowCount(R); }

  void set(unsigned R, unsigned Col) {
    assert(!isLazy() && "lazy relations are read-only");
    Dense.set(R, Col);
  }

  /// Mutable dense row access (construction-time only; dense mode).
  Bitset &row(unsigned R) {
    assert(!isLazy() && "lazy relations have no mutable rows");
    return Dense.row(R);
  }
  const Bitset &denseRow(unsigned R) const {
    assert(!isLazy() && "dense row requested from a lazy relation");
    return Dense.row(R);
  }

  /// The dense matrix itself (transitive reduction wants whole-matrix
  /// row algebra; only display/debug paths need it).
  const BitMatrix &denseMatrix() const {
    assert(!isLazy() && "dense matrix requested from a lazy relation");
    return Dense;
  }

private:
  BitMatrix Dense;
  const Closure *C = nullptr;
  std::vector<int32_t> RowOf;
  std::vector<int32_t> ExtraBit;
  Bitset Mask;
};

/// A CanReuse relation: strict partial order over node ids, restricted to
/// the active nodes that consume the resource.
struct ReuseRelation {
  RelationMatrix Rel;
  std::vector<unsigned> Active;
};

/// CanReuse_FU over every real node (homogeneous machine).
ReuseRelation buildFUReuse(const DependenceDAG &D, const DAGAnalysis &A);

/// CanReuse_FU restricted to instructions needing FU class \p K.
ReuseRelation buildFUReuseForClass(const DependenceDAG &D,
                                   const DAGAnalysis &A, FUKind K);

/// CanReuse_Reg over every value-defining node, with kill sites \p Kills.
ReuseRelation buildRegReuse(const DependenceDAG &D, const DAGAnalysis &A,
                            const KillMap &Kills);

/// CanReuse_Reg restricted to values of register class \p C.
ReuseRelation buildRegReuseForClass(const DependenceDAG &D,
                                    const DAGAnalysis &A,
                                    const KillMap &Kills, RegClassKind C);

/// The *guaranteed* register-reuse relation: (a, b) holds iff b executes
/// after every maximal use of a under EVERY schedule — i.e. b is a
/// common descendant of all of a's maximal uses. Chains of this relation
/// can share one physical register no matter how the DAG is later
/// scheduled, which is what makes the paper's "assign each allocation
/// chain a register" step sound. It is a sub-relation of CanReuse_Reg
/// (the measurement picks ONE kill to maximize the worst case), so its
/// width is >= the measured requirement.
ReuseRelation buildSafeRegReuse(const DependenceDAG &D, const DAGAnalysis &A);

/// buildSafeRegReuse restricted to class \p C.
ReuseRelation buildSafeRegReuseForClass(const DependenceDAG &D,
                                        const DAGAnalysis &A,
                                        RegClassKind C);

/// The Reuse DAG proper (paper Definition 4): transitive reduction of the
/// relation. Only needed for display/debugging; measurement works on the
/// closure.
BitMatrix reuseDAGEdges(const ReuseRelation &R);

} // namespace ursa

#endif // URSA_URSA_REUSEDAG_H
