//===- ursa/ReuseDAG.h - CanReuse relations per resource --------*- C++ -*-===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The unified piece of URSA (paper Section 3): both resources are
/// measured through the same structure, a CanReuse relation per resource
/// type, differing only in how the relation is constructed:
///
///  * Functional units are free once their instruction completes, so
///    CanReuse_FU is exactly the dependence partial order (Definition 3's
///    instantiation for FUs).
///
///  * A register stays busy until the value's killing use executes, so
///    CanReuse_Reg(a, b) holds iff b is Kill(a) or one of its descendants
///    (Section 3.2), with Kill() chosen by ursa/KillSelection.h.
///
/// The relation is stored as its strict-order closure plus the set of
/// participating ("active") nodes; the Reuse DAG of Definition 4 is its
/// transitive reduction and is derivable on demand. Multiple resource
/// classes (Section 6 extension) are handled by filtering the active set
/// per class — one Reuse relation per class, as the paper prescribes.
///
//===----------------------------------------------------------------------===//

#ifndef URSA_URSA_REUSEDAG_H
#define URSA_URSA_REUSEDAG_H

#include "graph/Analysis.h"
#include "graph/DAG.h"
#include "machine/MachineModel.h"
#include "support/Bitset.h"
#include "ursa/KillSelection.h"

#include <vector>

namespace ursa {

/// A CanReuse relation: strict partial order over node ids, restricted to
/// the active nodes that consume the resource.
struct ReuseRelation {
  BitMatrix Rel;
  std::vector<unsigned> Active;
};

/// CanReuse_FU over every real node (homogeneous machine).
ReuseRelation buildFUReuse(const DependenceDAG &D, const DAGAnalysis &A);

/// CanReuse_FU restricted to instructions needing FU class \p K.
ReuseRelation buildFUReuseForClass(const DependenceDAG &D,
                                   const DAGAnalysis &A, FUKind K);

/// CanReuse_Reg over every value-defining node, with kill sites \p Kills.
ReuseRelation buildRegReuse(const DependenceDAG &D, const DAGAnalysis &A,
                            const KillMap &Kills);

/// CanReuse_Reg restricted to values of register class \p C.
ReuseRelation buildRegReuseForClass(const DependenceDAG &D,
                                    const DAGAnalysis &A,
                                    const KillMap &Kills, RegClassKind C);

/// The *guaranteed* register-reuse relation: (a, b) holds iff b executes
/// after every maximal use of a under EVERY schedule — i.e. b is a
/// common descendant of all of a's maximal uses. Chains of this relation
/// can share one physical register no matter how the DAG is later
/// scheduled, which is what makes the paper's "assign each allocation
/// chain a register" step sound. It is a sub-relation of CanReuse_Reg
/// (the measurement picks ONE kill to maximize the worst case), so its
/// width is >= the measured requirement.
ReuseRelation buildSafeRegReuse(const DependenceDAG &D, const DAGAnalysis &A);

/// buildSafeRegReuse restricted to class \p C.
ReuseRelation buildSafeRegReuseForClass(const DependenceDAG &D,
                                        const DAGAnalysis &A,
                                        RegClassKind C);

/// The Reuse DAG proper (paper Definition 4): transitive reduction of the
/// relation. Only needed for display/debugging; measurement works on the
/// closure.
BitMatrix reuseDAGEdges(const ReuseRelation &R);

} // namespace ursa

#endif // URSA_URSA_REUSEDAG_H
