//===- ursa/ChainAssign.h - Schedule-independent assignment -----*- C++ -*-===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's assignment idea in its pure form: "If there are sufficient
/// resources, each allocation chain can be assigned a different
/// resource." Chains of the *guaranteed* reuse relation
/// (buildSafeRegReuse) may share one physical register under every legal
/// schedule of the DAG, so the mapping needs no schedule at all. The
/// guaranteed width can exceed the measured worst case (the measurement
/// fixes one kill per value; a schedule-independent assignment must
/// outlive all maximal uses), which is why the production pipelines keep
/// the tighter schedule-aware linear scan and this exists as the
/// faithful, verifiable alternative.
///
//===----------------------------------------------------------------------===//

#ifndef URSA_URSA_CHAINASSIGN_H
#define URSA_URSA_CHAINASSIGN_H

#include "graph/Analysis.h"
#include "sched/RegAssign.h"

namespace ursa {

/// Assigns registers chain-per-register from the guaranteed reuse
/// relation. Ok=false (with ConflictVReg unset) when some class's
/// guaranteed width exceeds the machine's file.
RegAssignment assignRegistersByChains(const DependenceDAG &D,
                                      const DAGAnalysis &A,
                                      const MachineModel &M);

/// The guaranteed (schedule-independent) register width of \p D for the
/// whole file / per class.
unsigned guaranteedRegWidth(const DependenceDAG &D, const DAGAnalysis &A);

} // namespace ursa

#endif // URSA_URSA_CHAINASSIGN_H
