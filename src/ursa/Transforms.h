//===- ursa/Transforms.h - Requirement reduction transformations -*- C++ -*-===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Phase 2 of URSA (paper Section 4): the three transformations that
/// shrink excessive resource requirements by removing schedules from
/// consideration.
///
///  * Functional-unit sequentialization (4.1): add sequence edges from
///    chain tails near the hammock entry to chain heads near the exit —
///    "ideal sequence matching".
///
///  * Register sequentialization (4.2): delay a nonsupportive subset SD2
///    of the excessive chains until after the remaining chains SD1, by
///    edges from SD1's tails to SD2's heads.
///
///  * Spilling (4.3): store a value right after its definition, reload it
///    once SD1 has retired, and rewire the delayed uses to the reload.
///    Unlike register sequentialization this always applies.
///
/// Proposal generation is separated from application so the driver can
/// tentatively apply each candidate to a scratch copy, remeasure, and pick
/// the best (paper Section 5).
///
//===----------------------------------------------------------------------===//

#ifndef URSA_URSA_TRANSFORMS_H
#define URSA_URSA_TRANSFORMS_H

#include "graph/Analysis.h"
#include "graph/DAG.h"
#include "graph/Hammocks.h"
#include "ursa/Measure.h"

#include <string>
#include <vector>

namespace ursa {

/// Everything proposal generators read; one DAG state snapshot.
struct TransformContext {
  const DependenceDAG &D;
  const DAGAnalysis &A;
  const HammockForest &HF;
};

/// A candidate transformation, not yet applied.
struct TransformProposal {
  enum KindT { FUSequence, RegSequence, Spill } Kind;
  ResourceId Res;

  /// Sequence edges to add (all kinds use them).
  std::vector<std::pair<unsigned, unsigned>> SeqEdges;

  /// Spill only: the defining node whose value is stored/reloaded, the
  /// uses rewired to the reload, the nodes the reload must follow, and
  /// the nodes the store must precede (paper 4.3: the roots of SD2 "are
  /// spilled prior to SD1's roots" — without this the store could be
  /// delayed and the spilled register would stay live in the worst case).
  unsigned SpillDef = ~0u;
  std::vector<unsigned> DelayedUses;
  std::vector<unsigned> ReloadAfter;
  std::vector<unsigned> StoreBefore;

  std::string describe() const;
};

/// Outcome counters of applying one proposal, plus the journaled edge
/// delta the application produced — what buildIncrementalDelta replays so
/// spill winners are promoted without an O(N^2) closure rebuild.
struct ApplyStats {
  unsigned EdgesAdded = 0;
  unsigned SpillsInserted = 0; ///< store/reload pairs
  EdgeDelta Delta;
};

/// Generators; each returns zero or more candidates for \p E.
std::vector<TransformProposal>
proposeFUSequencing(const TransformContext &Ctx, const ExcessiveChainSet &E);
std::vector<TransformProposal>
proposeRegSequencing(const TransformContext &Ctx, const ExcessiveChainSet &E);
std::vector<TransformProposal> proposeSpills(const TransformContext &Ctx,
                                             const ExcessiveChainSet &E);

/// Applies \p P to \p D (trace mutation included for spills) and restores
/// the virtual-edge invariant. The proposal must have been generated from
/// this DAG state.
ApplyStats applyTransform(DependenceDAG &D, const TransformProposal &P);

} // namespace ursa

#endif // URSA_URSA_TRANSFORMS_H
