//===- ursa/IncrementalMeasure.h - Delta re-measurement ---------*- C++ -*-===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Incremental re-measurement for the driver's proposal loop. A sequencing
/// proposal adds a handful of edges to a DAG the round-start state already
/// analyzed, yet the full evaluation path rebuilds everything from scratch:
/// transitive closure, hammock forest, kill selection, reuse relations, and
/// one Kuhn matching per resource. This module derives the score-relevant
/// numbers from the round-start state instead:
///
///  * the reachability closure is updated by DAGAnalysis::buildIncremental
///    (exact per-edge delta propagation);
///  * each resource's width is recomputed by warm-starting the chain
///    matching from the round-start decomposition (chainWidthWarmStart) —
///    edge additions only grow the FU reuse relation, so its whole previous
///    matching survives; register relations re-run kill selection and seed
///    with whatever pairs the new relation still contains;
///  * the hammock forest, the chain decompositions themselves, and the
///    excessive-set search are skipped entirely — proposal scoring needs
///    only widths, total excess, and the critical path, all of which are
///    canonical (independent of matching history), so the numbers are
///    bit-identical to a full rebuild.
///
/// Strict correctness contract: anything the engine cannot prove to be a
/// pure edge delta — spill proposals (they insert nodes), size changes, a
/// changed active set, an edge that would close a cycle — makes
/// measureDelta() return false and the caller falls back to the full
/// rebuild. The driver additionally differential-checks every delta
/// against a fresh rebuild under URSA_VERIFY=full.
///
//===----------------------------------------------------------------------===//

#ifndef URSA_URSA_INCREMENTALMEASURE_H
#define URSA_URSA_INCREMENTALMEASURE_H

#include "graph/Analysis.h"
#include "ursa/Measure.h"
#include "ursa/Transforms.h"

#include <vector>

namespace ursa {

/// The score-relevant summary of one measured DAG state: everything the
/// driver's proposal ranking reads, nothing it does not (no chains, no
/// hammocks, no excessive sets — those come only from full builds).
struct DeltaMeasurement {
  /// Per-resource widths, aligned with machineResources() order.
  std::vector<unsigned> Required;
  unsigned CritPath = 0;
  unsigned TotalExcess = 0;
};

/// Measures proposal scratch copies against one round-start state. The
/// referenced base state (analysis, measurements, limits) must outlive the
/// measurer and all measureDelta() calls. measureDelta() is const and
/// touches no shared mutable state, so one measurer serves all of a
/// round's evaluations concurrently.
class IncrementalMeasurer {
public:
  IncrementalMeasurer(const DependenceDAG &BaseD, const DAGAnalysis &BaseA,
                      const std::vector<Measurement> &BaseMeas,
                      const std::vector<std::pair<ResourceId, unsigned>> &Limits,
                      const MeasureOptions &MO);

  /// Measures \p Scratch — the base DAG with \p P already applied — into
  /// \p Out. Returns false (leaving \p Out unspecified) when the delta
  /// cannot be proven safe; the caller must then build a full State.
  bool measureDelta(const DependenceDAG &Scratch, const TransformProposal &P,
                    DeltaMeasurement &Out) const;

  /// The journal-aware form: \p Delta is the EdgeDelta applyTransform
  /// recorded while producing \p Scratch. Handles *spill* proposals too —
  /// the closure is advanced by DAGAnalysis::buildIncrementalDelta (edge
  /// additions, removals, and the appended store/reload nodes), active
  /// sets are recomputed fresh (spills legitimately change them, so the
  /// pure-edge path's set-equality fallbacks do not apply), kills are
  /// re-selected, and widths warm-start from the base decomposition —
  /// the matching still runs to maximality, so widths stay canonical.
  /// Same strict contract: false means fall back to a full build.
  bool measureDelta(const DependenceDAG &Scratch, const TransformProposal &P,
                    const EdgeDelta &Delta, DeltaMeasurement &Out) const;

private:
  bool measureWidths(const DependenceDAG &Scratch, const DAGAnalysis &A,
                     bool AllowActiveChange, DeltaMeasurement &Out) const;
  const DependenceDAG &BaseD;
  const DAGAnalysis &BaseA;
  const std::vector<Measurement> &BaseMeas;
  const std::vector<std::pair<ResourceId, unsigned>> &Limits;
  MeasureOptions MO;
};

} // namespace ursa

#endif // URSA_URSA_INCREMENTALMEASURE_H
