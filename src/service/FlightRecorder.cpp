//===- service/FlightRecorder.cpp - Slow-request flight recorder ----------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/FlightRecorder.h"

#include <algorithm>

using namespace ursa;
using namespace ursa::service;

void FlightRecorder::record(RequestRecord R) {
  std::lock_guard<std::mutex> L(Mu);
  R.Seq = NextSeq++;

  // Retention: failures always keep their timeline; successes compete
  // for the SlowN slots — if this one displaces a faster retained
  // success, the displaced record keeps its summary but loses its spans.
  if (R.Status == "ok" && !R.Spans.empty()) {
    RequestRecord *Fastest = nullptr;
    size_t Held = 0;
    for (RequestRecord &Old : Ring) {
      if (Old.Status != "ok" || Old.SpansTrimmed || Old.Spans.empty())
        continue;
      ++Held;
      if (!Fastest || Old.TotalMs < Fastest->TotalMs)
        Fastest = &Old;
    }
    if (Held >= SlowN) {
      if (Fastest && Fastest->TotalMs < R.TotalMs) {
        Fastest->Spans.clear();
        Fastest->Spans.shrink_to_fit();
        Fastest->SpansTrimmed = true;
      } else {
        R.Spans.clear();
        R.SpansTrimmed = true;
      }
    }
  }

  Ring.push_back(std::move(R));
  while (Ring.size() > Capacity)
    Ring.pop_front();
}

std::vector<RequestRecord> FlightRecorder::snapshot() const {
  std::lock_guard<std::mutex> L(Mu);
  return {Ring.begin(), Ring.end()};
}

RequestRecord FlightRecorder::slowest() const {
  std::lock_guard<std::mutex> L(Mu);
  const RequestRecord *Best = nullptr;
  for (const RequestRecord &R : Ring) {
    if (R.SpansTrimmed || R.Spans.empty())
      continue;
    if (!Best || R.TotalMs > Best->TotalMs)
      Best = &R;
  }
  return Best ? *Best : RequestRecord{};
}

size_t FlightRecorder::size() const {
  std::lock_guard<std::mutex> L(Mu);
  return Ring.size();
}

void FlightRecorder::writeRecordLocked(obs::JsonWriter &W,
                                       const RequestRecord &R) const {
  W.beginObject();
  W.kv("seq", R.Seq);
  W.kv("id", R.Id);
  W.kv("trace_id", R.TraceId);
  W.kv("machine", R.Machine);
  W.kv("status", R.Status);
  if (!R.Error.empty())
    W.kv("error", R.Error);
  W.kv("enqueued_us", R.EnqueuedUs);
  W.kv("queue_ms", R.QueueMs);
  W.kv("parse_ms", R.ParseMs);
  W.kv("compile_ms", R.CompileMs);
  W.kv("total_ms", R.TotalMs);
  W.kv("degrade_tier", uint64_t(R.DegradeTier));
  W.kv("rounds", uint64_t(R.Rounds));
  W.kv("cache_hits", R.CacheHits);
  W.kv("cache_misses", R.CacheMisses);
  W.kv("budget_exhausted", R.BudgetExhausted);
  W.kv("spans_trimmed", R.SpansTrimmed);
  if (R.SpansDropped)
    W.kv("spans_dropped", R.SpansDropped);
  if (!R.Spans.empty()) {
    W.key("spans").beginArray();
    for (const RequestRecord::StageSpan &S : R.Spans) {
      W.beginObject();
      W.kv("name", S.Name);
      W.kv("cat", S.Cat);
      W.kv("start_us", S.StartUs);
      W.kv("dur_us", S.DurUs);
      W.endObject();
    }
    W.endArray();
  }
  W.endObject();
}

void FlightRecorder::writeJson(obs::JsonWriter &W, bool TimelinesOnly) const {
  std::lock_guard<std::mutex> L(Mu);
  W.beginObject();
  W.kv("schema", "ursa.flight_record.v1");
  W.kv("capacity", uint64_t(Capacity));
  W.kv("slow_n", uint64_t(SlowN));
  W.key("records").beginArray();
  for (const RequestRecord &R : Ring) {
    if (TimelinesOnly && (R.SpansTrimmed || R.Spans.empty()))
      continue;
    writeRecordLocked(W, R);
  }
  W.endArray();
  W.endObject();
}

std::string FlightRecorder::dumpJson(bool TimelinesOnly) const {
  obs::JsonWriter W;
  writeJson(W, TimelinesOnly);
  return W.str();
}
