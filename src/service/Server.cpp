//===- service/Server.cpp - Unix-socket front end for the service ---------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/Server.h"

#include <unistd.h>

using namespace ursa;
using namespace ursa::service;

void Server::Conn::send(const ServiceResponse &R) {
  std::lock_guard<std::mutex> L(WriteMu);
  // A send failure means the client went away; its remaining responses
  // will fail the same way and the reader thread is already unwinding.
  (void)Sock.sendFrame(writeResponse(R));
}

Status Server::start() {
  StatusOr<UnixSocket> L = UnixSocket::listen(Path);
  if (!L.isOk())
    return L.status();
  Listener = std::move(*L);
  return Status::ok();
}

void Server::run() {
  while (!StopFlag.load()) {
    StatusOr<UnixSocket> A = Listener.accept(/*TimeoutMs=*/200);
    if (!A.isOk())
      break; // listener is gone; nothing left to accept
    if (!A->valid())
      continue; // timeout: re-check the stop flag
    auto C = std::make_shared<Conn>(std::move(*A));
    {
      std::lock_guard<std::mutex> L(ConnsMu);
      Conns.push_back(C);
      ConnThreads.emplace_back([this, C] { serveConnection(C); });
    }
  }

  // Drain: stop admission, finish every queued compile, flush responses
  // while the connection readers are still alive to carry them.
  Listener.close();
  Service.stop(/*Drain=*/true);

  // Now unblock the readers and collect the threads.
  std::vector<std::thread> Threads;
  {
    std::lock_guard<std::mutex> L(ConnsMu);
    for (std::weak_ptr<Conn> &W : Conns)
      if (std::shared_ptr<Conn> C = W.lock())
        C->Sock.shutdown();
    Threads.swap(ConnThreads);
  }
  for (std::thread &T : Threads)
    T.join();
  ::unlink(Path.c_str());
}

Server::~Server() {
  // run() normally joins everything; this covers servers that were
  // started but whose run() was never reached (e.g. start() failed later
  // in the caller).
  std::vector<std::thread> Threads;
  {
    std::lock_guard<std::mutex> L(ConnsMu);
    Threads.swap(ConnThreads);
  }
  for (std::thread &T : Threads)
    T.join();
}

void Server::serveConnection(std::shared_ptr<Conn> C) {
  const obs::JsonParseLimits Limits = Service.parseLimits();
  for (;;) {
    std::string Frame;
    bool PeerClosed = false;
    // Frame cap: the JSON byte limit plus slack for framing; an oversized
    // frame desynchronizes the stream, so the connection drops.
    Status St = C->Sock.recvFrame(Frame, PeerClosed,
                                  size_t(Limits.MaxBytes
                                             ? Limits.MaxBytes + 4096
                                             : 64u << 20));
    if (!St.isOk() || PeerClosed)
      return;

    ServiceRequest R;
    if (Status PS = parseRequest(Frame, R, Limits); !PS.isOk()) {
      ServiceResponse Resp;
      Resp.Status = ServiceResponse::StatusKind::Error;
      Resp.Id = R.Id; // best effort: may have parsed before the failure
      Resp.Error = PS.message();
      C->send(Resp);
      continue;
    }

    // Worker threads answer compiles through the connection's write
    // lock; the Conn outlives this reader via the shared_ptr captures.
    bool KeepServing =
        Service.handle(R, [C](const ServiceResponse &Resp) { C->send(Resp); });
    if (!KeepServing) {
      StopFlag.store(true);
      return; // run() notices within one accept timeout
    }
  }
}
