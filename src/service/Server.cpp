//===- service/Server.cpp - Socket front end for the service --------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/Server.h"

#include "obs/Stats.h"

#include <algorithm>
#include <cassert>
#include <unistd.h>

using namespace ursa;
using namespace ursa::service;

URSA_STAT(StatServerConns, "ursa.service.connections",
          "connections accepted by the server");
URSA_STAT(StatServerIdleReaped, "ursa.service.idle_reaped",
          "idle connections closed by the reaper");
URSA_STAT(StatServerFrameErrors, "ursa.service.frame_errors",
          "connections dropped on a transport-level frame error");

Server::Server(std::string Endpoint, const ServiceConfig &C)
    : Path(std::move(Endpoint)), Owned(std::make_unique<CompileService>(C)),
      Handler(Owned.get()) {
  Transport.IdleTimeoutMs = C.IdleTimeoutMs;
  Transport.IoTimeoutMs = C.IoTimeoutMs;
}

Server::Server(std::string Endpoint, ServiceHandler &H,
               const TransportOpts &T)
    : Path(std::move(Endpoint)), Handler(&H), Transport(T) {}

CompileService &Server::service() {
  assert(Owned && "service() on a server fronting an external handler");
  return *Owned;
}

void Server::Conn::send(const ServiceResponse &R) {
  std::lock_guard<std::mutex> L(WriteMu);
  // A send failure means the client went away; its remaining responses
  // will fail the same way and the reader thread is already unwinding.
  (void)Sock.sendFrame(writeResponse(R));
}

Status Server::start() {
  ignoreSigpipe();
  bool IsTcp = false;
  std::string HostOrPath;
  uint16_t Port = 0;
  if (!Socket::parseEndpoint(Path, IsTcp, HostOrPath, Port))
    return Status::error("service", "malformed endpoint: '" + Path + "'");
  IsUnix = !IsTcp;
  StatusOr<Socket> L = Socket::listenEndpoint(Path);
  if (!L.isOk())
    return L.status();
  Listener = std::move(*L);
  return Status::ok();
}

void Server::sweepThreads(bool All) {
  std::vector<std::thread> Joinable;
  {
    std::lock_guard<std::mutex> L(ConnsMu);
    auto It = ConnThreads.begin();
    while (It != ConnThreads.end()) {
      bool Done = All || !It->second || It->second->ReaderDone.load();
      if (Done) {
        Joinable.push_back(std::move(It->first));
        It = ConnThreads.erase(It);
      } else {
        ++It;
      }
    }
    if (All) {
      Conns.erase(std::remove_if(Conns.begin(), Conns.end(),
                                 [](const std::weak_ptr<Conn> &W) {
                                   return W.expired();
                                 }),
                  Conns.end());
    }
  }
  for (std::thread &T : Joinable)
    if (T.joinable())
      T.join();
}

void Server::run() {
  while (!StopFlag.load()) {
    StatusOr<Socket> A = Listener.accept(/*TimeoutMs=*/200);
    if (!A.isOk())
      break; // listener is gone; nothing left to accept
    sweepThreads(/*All=*/false);
    if (!A->valid())
      continue; // timeout: re-check the stop flag
    if (unsigned Ms = Transport.IoTimeoutMs)
      (void)A->setOpTimeoutMs(Ms);
    StatServerConns.add();
    auto C = std::make_shared<Conn>(std::move(*A));
    {
      std::lock_guard<std::mutex> L(ConnsMu);
      Conns.push_back(C);
      ConnThreads.emplace_back(std::thread([this, C] { serveConnection(C); }),
                               C);
    }
  }

  // Drain: stop admission, finish every queued compile, flush responses
  // while the connection readers are still alive to carry them.
  Listener.close();
  Handler->stop(/*Drain=*/true);

  // Now unblock the readers and collect the threads.
  {
    std::lock_guard<std::mutex> L(ConnsMu);
    for (std::weak_ptr<Conn> &W : Conns)
      if (std::shared_ptr<Conn> C = W.lock())
        C->Sock.shutdown();
  }
  sweepThreads(/*All=*/true);
  if (IsUnix)
    ::unlink(Path.c_str());
}

Server::~Server() {
  // run() normally joins everything; this covers servers that were
  // started but whose run() was never reached (e.g. start() failed later
  // in the caller).
  sweepThreads(/*All=*/true);
}

void Server::serveConnection(std::shared_ptr<Conn> C) {
  const obs::JsonParseLimits Limits = Handler->parseLimits();
  const unsigned IdleMs = Transport.IdleTimeoutMs;
  for (;;) {
    std::string Frame;
    Socket::FrameEvent Ev = Socket::FrameEvent::Frame;
    // Frame cap: the JSON byte limit plus slack for framing; an oversized
    // frame desynchronizes the stream, so the connection drops.
    Status St = C->Sock.recvFrame(
        Frame, Ev,
        size_t(Limits.MaxBytes ? Limits.MaxBytes + 4096 : 64u << 20),
        IdleMs ? int(IdleMs) : -1);
    if (!St.isOk()) {
      // Torn header, mid-frame EOF, oversized or stalled frame: the
      // stream is unrecoverable; drop the connection, keep the server.
      StatServerFrameErrors.add();
      break;
    }
    if (Ev == Socket::FrameEvent::PeerClosed)
      break;
    if (Ev == Socket::FrameEvent::IdleTimeout) {
      StatServerIdleReaped.add();
      break;
    }

    ServiceRequest R;
    if (Status PS = parseRequest(Frame, R, Limits); !PS.isOk()) {
      ServiceResponse Resp;
      Resp.Status = ServiceResponse::StatusKind::Error;
      Resp.Id = R.Id; // best effort: may have parsed before the failure
      Resp.Error = PS.message();
      C->send(Resp);
      continue;
    }

    // Worker threads answer compiles through the connection's write
    // lock; the Conn outlives this reader via the shared_ptr captures.
    bool KeepServing = Handler->handle(
        R, [C](const ServiceResponse &Resp) { C->send(Resp); });
    if (!KeepServing) {
      StopFlag.store(true);
      break; // run() notices within one accept timeout
    }
  }
  C->Sock.shutdown();
  C->ReaderDone.store(true);
}
