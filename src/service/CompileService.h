//===- service/CompileService.h - Persistent compile service ----*- C++ -*-===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The transport-independent heart of `ursa_served`: a bounded job queue
/// with admission control, a worker pool (support/ThreadPool.h) compiling
/// requests through the exact `ursa_cc` pipeline, and long-lived
/// server-scope allocator state — one fingerprint-keyed MeasurementCache
/// and one MachineModel per distinct machine spec, shared across requests
/// so a warm server re-measures nothing it has already seen.
///
/// Admission control and backpressure:
///  * the queue is bounded (ServiceConfig::QueueDepth); a compile arriving
///    at a full queue is *shed* immediately with StatusKind::Shed rather
///    than queued without bound;
///  * each request may carry a DeadlineMs; a request whose deadline
///    expires while queued is answered StatusKind::Deadline without
///    compiling, and the deadline remaining at dispatch is folded into the
///    driver's TimeBudgetMs so a slow compile cannot overrun it either.
///
/// Graceful degradation (ServiceConfig::DegradeEnabled): under sustained
/// queue pressure — an exponentially-weighted moving average of queue
/// occupancy, with hysteresis so the tier does not flap — the service
/// sheds *work before requests*:
///   tier 1  per-request verification off (correctness checks are
///           re-derivable later; answers stay identical);
///   tier 2  incremental-measure warm paths off (bounds the per-request
///           working set delta closures keep alive);
///   tier 3  driver budgets clamped to DegradedTimeBudgetMs (answers may
///           report BudgetExhausted but every request still answers);
///   tier 4  the existing queue-full shed — the only tier that refuses.
/// The active tier is exported in stats (ursa.service.degrade_tier) and
/// the service report.
///
/// Persistence (ServiceConfig::CacheDir): each machine key's
/// MeasurementCache is journaled to a crash-safe image (ursa/CacheImage.h)
/// as states are built, snapshotted every SnapshotEvery appends and at
/// drain, and reloaded warm on the next start — a kill -9 costs at most
/// the entry being written.
///
/// Results are bit-identical to `ursa_cc`: the same compileURSA call, the
/// same formatCompileText rendering, at any worker count (the driver is
/// deterministic and cached MeasuredStates are immutable).
///
/// The service is usable in-process (the lifecycle tests drive it without
/// any socket); service/Server.h adds the Unix-domain-socket front end.
///
//===----------------------------------------------------------------------===//

#ifndef URSA_SERVICE_COMPILESERVICE_H
#define URSA_SERVICE_COMPILESERVICE_H

#include "service/FlightRecorder.h"
#include "service/Handler.h"
#include "service/Protocol.h"
#include "support/ThreadPool.h"
#include "ursa/CacheImage.h"
#include "ursa/MeasureCache.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

namespace ursa::service {

/// Server tuning. Every field has a URSA_SERVICE_* environment knob (see
/// docs/SERVICE.md) read by fromEnv().
struct ServiceConfig {
  /// Concurrent compile workers (URSA_SERVICE_WORKERS, default 2).
  unsigned Workers = 2;
  /// Bounded queue depth; arrivals beyond it are shed
  /// (URSA_SERVICE_QUEUE_DEPTH, default 64).
  unsigned QueueDepth = 64;
  /// Entries per machine-key measurement cache (URSA_SERVICE_CACHE_SIZE,
  /// default 1024).
  unsigned CacheSize = 1024;
  /// Cross-request measurement reuse (URSA_SERVICE_CACHE, 0 disables).
  bool CacheEnabled = true;
  /// Applied to compiles that specify no budget of their own
  /// (URSA_SERVICE_TIME_BUDGET_MS, default 0 = unlimited).
  unsigned DefaultTimeBudgetMs = 0;
  /// Per-frame request size cap handed to the JSON parser
  /// (URSA_SERVICE_MAX_REQUEST_BYTES, default 8 MiB).
  unsigned MaxRequestBytes = 8u << 20;
  /// Honor the StallMs test hook in requests (URSA_SERVICE_TEST_HOOKS).
  bool EnableTestHooks = false;

  /// Directory for crash-safe cache images (URSA_SERVICE_CACHE_DIR,
  /// default "" = no persistence).
  std::string CacheDir;
  /// Journal appends between periodic snapshots
  /// (URSA_SERVICE_SNAPSHOT_EVERY, default 32; 0 = drain-time only).
  unsigned SnapshotEvery = 32;
  /// Snapshot at stop(Drain) (URSA_SERVICE_SNAPSHOT_ON_STOP, default on).
  /// Benches turn it off to simulate a kill -9 (journal-only recovery).
  bool SnapshotOnStop = true;

  /// Reap connections idle this long with no frame started
  /// (URSA_SERVICE_IDLE_TIMEOUT_MS, default 0 = never).
  unsigned IdleTimeoutMs = 0;
  /// Per-operation socket deadline for reads/writes mid-frame
  /// (URSA_SERVICE_IO_TIMEOUT_MS, default 0 = unbounded).
  unsigned IoTimeoutMs = 0;

  /// Degradation tiers under queue pressure (URSA_SERVICE_DEGRADE,
  /// default on).
  bool DegradeEnabled = true;
  /// Tier-3 clamp on the driver budget (URSA_SERVICE_DEGRADED_BUDGET_MS,
  /// default 250).
  unsigned DegradedTimeBudgetMs = 250;

  /// Flight-recorder ring size (URSA_SERVICE_FLIGHT_SIZE, default 256;
  /// 0 keeps only the summary-free minimum of 1).
  unsigned FlightSize = 256;
  /// Successful requests retaining full span timelines — the slowest N
  /// (URSA_SERVICE_FLIGHT_SLOW, default 8).
  unsigned FlightSlowN = 8;
  /// Dump the flight recorder to this path on shutdown (URSA_FLIGHT_DUMP,
  /// default "" = no dump).
  std::string FlightDumpPath;

  static ServiceConfig fromEnv();
};

/// Decides the graceful-degradation tier from queue pressure: an
/// exponentially-weighted moving average of queue occupancy, with
/// hysteresis so a bursty queue does not flap the tier, plus the
/// accounting that makes flapping *visible* — per-tier entry counters
/// and the timestamp of the last transition. Not thread-safe on its own;
/// the service drives it under its queue mutex (and the unit tests drive
/// it directly).
class DegradeGovernor {
public:
  /// EWMA crosses these going up to enter tiers 1..3...
  static constexpr double UpThreshold[3] = {0.5, 0.7, 0.85};
  /// ...and must fall this far below one to leave it again.
  static constexpr double Hysteresis = 0.15;

  explicit DegradeGovernor(bool EnabledIn) : Enabled(EnabledIn) {}

  /// Folds one queue-occupancy observation (in [0,1]) into the EWMA and
  /// moves the tier; returns the tier now in force. \p NowUs stamps a
  /// transition when one happens (obs::monotonicNowUs in production).
  unsigned update(double Occupancy, uint64_t NowUs);

  unsigned tier() const { return Tier; }
  double loadEwma() const { return Ewma; }
  /// Tier changes since construction, in either direction.
  uint64_t transitions() const { return Transitions; }
  /// Times tier \p T (0..3) became the active tier.
  uint64_t entries(unsigned T) const { return T < 4 ? TierEntries[T] : 0; }
  /// NowUs of the most recent transition; 0 = the tier never moved.
  uint64_t lastChangeUs() const { return LastChangeUs; }

private:
  bool Enabled;
  double Ewma = 0;
  unsigned Tier = 0;
  uint64_t Transitions = 0;
  uint64_t TierEntries[4] = {0, 0, 0, 0};
  uint64_t LastChangeUs = 0;
};

/// A monotonic snapshot of the service counters, also serialized into the
/// ursa.service_report.v1 document.
struct ServiceCounters {
  uint64_t Received = 0;        ///< compile requests admitted or refused
  uint64_t Completed = 0;       ///< compiles answered Ok
  uint64_t Errors = 0;          ///< compiles answered Error
  uint64_t Shed = 0;            ///< refused: queue full or shutting down
  uint64_t DeadlineExpired = 0; ///< answered Deadline (queued or compiling)
  uint64_t QueueDepthPeak = 0;
  uint64_t QueueDepthNow = 0;
  uint64_t InFlight = 0; ///< requests currently inside a worker
  double TotalQueueMs = 0;
  double TotalCompileMs = 0;
  double MaxCompileMs = 0;
  uint64_t DegradeTier = 0;        ///< active degradation tier (0..3)
  uint64_t DegradeTransitions = 0; ///< tier changes since start
  double LoadEwma = 0;             ///< smoothed queue occupancy [0,1]
  uint64_t TierEntries[4] = {0, 0, 0, 0}; ///< times each tier went active
  uint64_t LastTierChangeUs = 0; ///< obs::monotonicNowUs; 0 = never moved
};

class CompileService : public ServiceHandler {
public:
  /// Invoked exactly once per submitted request, from a worker thread for
  /// compiles that reached the queue and inline for refusals and the
  /// non-compile ops. Must be thread-safe in the caller.
  using ResponseFn = service::ResponseFn;

  explicit CompileService(const ServiceConfig &C);
  ~CompileService() override; ///< stop(true): drains the queue, then joins

  CompileService(const CompileService &) = delete;
  CompileService &operator=(const CompileService &) = delete;

  /// Routes any request. Compiles are queued (or shed); Report and Ping
  /// are answered inline; Shutdown is answered Bye and returns false so
  /// the transport can begin draining. Returns true otherwise.
  bool handle(const ServiceRequest &R, ResponseFn Done) override;

  /// Queues one compile (or sheds it inline). Prefer handle().
  void submit(ServiceRequest R, ResponseFn Done);

  /// Stops admission. With \p Drain the queued jobs are still compiled;
  /// without it they are answered Shed. Joins the workers. Idempotent.
  void stop(bool Drain) override;

  /// The ursa.service_report.v1 document (see docs/SERVICE.md).
  std::string reportJSON() const;

  /// The ursa.service_stats.v1 document: uptime, queue, degradation
  /// state, every non-zero counter, latency histograms, and (with
  /// \p IncludeFlight) the flight-recorder ring.
  std::string statsJSON(bool IncludeFlight = false) const;

  /// The same data in Prometheus text exposition format (counters as
  /// untyped samples, histograms as cumulative `le` buckets).
  std::string statsPrometheus() const;

  /// The ursa.service_health.v1 document — cheap enough for a probe loop.
  std::string healthJSON() const;

  ServiceCounters counters() const;
  const ServiceConfig &config() const { return Config; }
  const FlightRecorder &flight() const { return Flight; }

  /// Parse limits matching the configured request size cap.
  obs::JsonParseLimits parseLimits() const override {
    obs::JsonParseLimits L;
    L.MaxBytes = Config.MaxRequestBytes;
    return L;
  }

private:
  struct Job {
    ServiceRequest R;
    ResponseFn Done;
    std::chrono::steady_clock::time_point Enqueued;
    uint64_t EnqueuedUs = 0; ///< obs::monotonicNowUs at admission
  };

  void workerLoop();
  ServiceResponse compileOne(const ServiceRequest &R, double QueueMs,
                             RequestRecord &Rec);
  void recordShed(const ServiceRequest &R, const std::string &Why);
  MeasurementCache *cacheFor(const MachineSpec &Spec);
  const MachineModel &modelFor(const MachineSpec &Spec);
  const MachineModel &modelForLocked(const MachineSpec &Spec);

  /// Folds the current queue size into LoadEwma and moves the degrade
  /// tier (with hysteresis). Call with Mu held after queue changes.
  void updateLoadLocked();

  /// Scans CacheDir for persisted images at construction and warms their
  /// caches eagerly, so the O(n^2) state rebuilds happen at startup — off
  /// the request path — instead of inside the first request per machine.
  void warmLoadPersistedCaches();

  ServiceConfig Config;

  mutable std::mutex Mu; ///< queue + counters
  std::condition_variable JobReady;
  std::deque<Job> Queue;
  bool Stopping = false; ///< no new admissions
  bool Quit = false;     ///< workers exit once the queue is empty
  ServiceCounters C;
  DegradeGovernor Governor;             ///< under Mu
  std::atomic<unsigned> DegradeTier{0}; ///< written under Mu, read lock-free

  FlightRecorder Flight;
  uint64_t StartUs;                  ///< obs::monotonicNowUs at construction
  std::atomic<bool> FlightDumped{false}; ///< URSA_FLIGHT_DUMP written once

  /// Server-scope allocator state, all keyed by MachineSpec::key().
  mutable std::mutex TablesMu;
  std::map<std::string, std::unique_ptr<MeasurementCache>> Caches;
  std::map<std::string, std::unique_ptr<CachePersister>> Persisters;
  std::map<std::string, MachineModel> Models;

  /// Workers: a dispatcher thread runs Pool->parallelFor(Workers,
  /// workerLoop), giving exactly Config.Workers concurrent consumers
  /// (the dispatcher participates; see support/ThreadPool.h).
  std::unique_ptr<ThreadPool> Pool;
  std::thread Dispatcher;
};

} // namespace ursa::service

#endif // URSA_SERVICE_COMPILESERVICE_H
