//===- service/CompileService.h - Persistent compile service ----*- C++ -*-===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The transport-independent heart of `ursa_served`: a bounded job queue
/// with admission control, a worker pool (support/ThreadPool.h) compiling
/// requests through the exact `ursa_cc` pipeline, and long-lived
/// server-scope allocator state — one fingerprint-keyed MeasurementCache
/// and one MachineModel per distinct machine spec, shared across requests
/// so a warm server re-measures nothing it has already seen.
///
/// Admission control and backpressure:
///  * the queue is bounded (ServiceConfig::QueueDepth); a compile arriving
///    at a full queue is *shed* immediately with StatusKind::Shed rather
///    than queued without bound;
///  * each request may carry a DeadlineMs; a request whose deadline
///    expires while queued is answered StatusKind::Deadline without
///    compiling, and the deadline remaining at dispatch is folded into the
///    driver's TimeBudgetMs so a slow compile cannot overrun it either.
///
/// Results are bit-identical to `ursa_cc`: the same compileURSA call, the
/// same formatCompileText rendering, at any worker count (the driver is
/// deterministic and cached MeasuredStates are immutable).
///
/// The service is usable in-process (the lifecycle tests drive it without
/// any socket); service/Server.h adds the Unix-domain-socket front end.
///
//===----------------------------------------------------------------------===//

#ifndef URSA_SERVICE_COMPILESERVICE_H
#define URSA_SERVICE_COMPILESERVICE_H

#include "service/Protocol.h"
#include "support/ThreadPool.h"
#include "ursa/MeasureCache.h"

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

namespace ursa::service {

/// Server tuning. Every field has a URSA_SERVICE_* environment knob (see
/// docs/SERVICE.md) read by fromEnv().
struct ServiceConfig {
  /// Concurrent compile workers (URSA_SERVICE_WORKERS, default 2).
  unsigned Workers = 2;
  /// Bounded queue depth; arrivals beyond it are shed
  /// (URSA_SERVICE_QUEUE_DEPTH, default 64).
  unsigned QueueDepth = 64;
  /// Entries per machine-key measurement cache (URSA_SERVICE_CACHE_SIZE,
  /// default 1024).
  unsigned CacheSize = 1024;
  /// Cross-request measurement reuse (URSA_SERVICE_CACHE, 0 disables).
  bool CacheEnabled = true;
  /// Applied to compiles that specify no budget of their own
  /// (URSA_SERVICE_TIME_BUDGET_MS, default 0 = unlimited).
  unsigned DefaultTimeBudgetMs = 0;
  /// Per-frame request size cap handed to the JSON parser
  /// (URSA_SERVICE_MAX_REQUEST_BYTES, default 8 MiB).
  unsigned MaxRequestBytes = 8u << 20;
  /// Honor the StallMs test hook in requests (URSA_SERVICE_TEST_HOOKS).
  bool EnableTestHooks = false;

  static ServiceConfig fromEnv();
};

/// A monotonic snapshot of the service counters, also serialized into the
/// ursa.service_report.v1 document.
struct ServiceCounters {
  uint64_t Received = 0;        ///< compile requests admitted or refused
  uint64_t Completed = 0;       ///< compiles answered Ok
  uint64_t Errors = 0;          ///< compiles answered Error
  uint64_t Shed = 0;            ///< refused: queue full or shutting down
  uint64_t DeadlineExpired = 0; ///< answered Deadline (queued or compiling)
  uint64_t QueueDepthPeak = 0;
  uint64_t QueueDepthNow = 0;
  uint64_t InFlight = 0; ///< requests currently inside a worker
  double TotalQueueMs = 0;
  double TotalCompileMs = 0;
  double MaxCompileMs = 0;
};

class CompileService {
public:
  /// Invoked exactly once per submitted request, from a worker thread for
  /// compiles that reached the queue and inline for refusals and the
  /// non-compile ops. Must be thread-safe in the caller.
  using ResponseFn = std::function<void(const ServiceResponse &)>;

  explicit CompileService(const ServiceConfig &C);
  ~CompileService(); ///< stop(true): drains the queue, then joins

  CompileService(const CompileService &) = delete;
  CompileService &operator=(const CompileService &) = delete;

  /// Routes any request. Compiles are queued (or shed); Report and Ping
  /// are answered inline; Shutdown is answered Bye and returns false so
  /// the transport can begin draining. Returns true otherwise.
  bool handle(const ServiceRequest &R, ResponseFn Done);

  /// Queues one compile (or sheds it inline). Prefer handle().
  void submit(ServiceRequest R, ResponseFn Done);

  /// Stops admission. With \p Drain the queued jobs are still compiled;
  /// without it they are answered Shed. Joins the workers. Idempotent.
  void stop(bool Drain);

  /// The ursa.service_report.v1 document (see docs/SERVICE.md).
  std::string reportJSON() const;

  ServiceCounters counters() const;
  const ServiceConfig &config() const { return Config; }

  /// Parse limits matching the configured request size cap.
  obs::JsonParseLimits parseLimits() const {
    obs::JsonParseLimits L;
    L.MaxBytes = Config.MaxRequestBytes;
    return L;
  }

private:
  struct Job {
    ServiceRequest R;
    ResponseFn Done;
    std::chrono::steady_clock::time_point Enqueued;
  };

  void workerLoop();
  ServiceResponse compileOne(const ServiceRequest &R, double QueueMs);
  MeasurementCache *cacheFor(const std::string &Key);
  const MachineModel &modelFor(const MachineSpec &Spec);

  ServiceConfig Config;

  mutable std::mutex Mu; ///< queue + counters
  std::condition_variable JobReady;
  std::deque<Job> Queue;
  bool Stopping = false; ///< no new admissions
  bool Quit = false;     ///< workers exit once the queue is empty
  ServiceCounters C;

  /// Server-scope allocator state, both keyed by MachineSpec::key().
  mutable std::mutex TablesMu;
  std::map<std::string, std::unique_ptr<MeasurementCache>> Caches;
  std::map<std::string, MachineModel> Models;

  /// Workers: a dispatcher thread runs Pool->parallelFor(Workers,
  /// workerLoop), giving exactly Config.Workers concurrent consumers
  /// (the dispatcher participates; see support/ThreadPool.h).
  std::unique_ptr<ThreadPool> Pool;
  std::thread Dispatcher;
};

} // namespace ursa::service

#endif // URSA_SERVICE_COMPILESERVICE_H
