//===- service/Handler.h - Request handler abstraction ----------*- C++ -*-===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The seam between the socket front end (service/Server.h) and whatever
/// answers requests behind it. CompileService implements this directly;
/// the fleet router (fleet/RouterService.h) implements it by forwarding
/// to backend servers. The Server neither knows nor cares which it is
/// fronting — it parses frames, hands ServiceRequests to the handler, and
/// writes whatever responses the handler emits (possibly out of order,
/// possibly from other threads).
///
//===----------------------------------------------------------------------===//

#ifndef URSA_SERVICE_HANDLER_H
#define URSA_SERVICE_HANDLER_H

#include "obs/Json.h"
#include "service/Protocol.h"

#include <functional>

namespace ursa::service {

/// Delivers one response. May be invoked from any thread, before or after
/// handle() returns, and must be invoked exactly once per request (the
/// transport serializes concurrent sends per connection).
using ResponseFn = std::function<void(const ServiceResponse &)>;

/// What answers requests behind the socket front end.
class ServiceHandler {
public:
  virtual ~ServiceHandler() = default;

  /// Handles one parsed request. Returns false when the server should
  /// stop accepting (a shutdown request was acknowledged).
  virtual bool handle(const ServiceRequest &R, ResponseFn Done) = 0;

  /// Parse limits for untrusted request documents (frame size cap flows
  /// from MaxBytes).
  virtual obs::JsonParseLimits parseLimits() const = 0;

  /// Stops the handler; with \p Drain, queued work finishes and its
  /// responses flush first. The Server calls this once on shutdown.
  virtual void stop(bool Drain) = 0;
};

/// Transport knobs for servers fronting a bare ServiceHandler (servers
/// constructed from a ServiceConfig take these from the config instead).
struct TransportOpts {
  unsigned IdleTimeoutMs = 0; ///< reap idle connections (0 = never)
  unsigned IoTimeoutMs = 0;   ///< per-operation socket deadline (0 = none)
};

} // namespace ursa::service

#endif // URSA_SERVICE_HANDLER_H
