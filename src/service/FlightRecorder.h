//===- service/FlightRecorder.h - Slow-request flight recorder --*- C++ -*-===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size ring of the most recent RequestRecords — what the server
/// was doing, request by request — plus a retention policy for full span
/// timelines: every failed/shed/deadline request keeps its timeline, and
/// among successful ones only the slowest SlowN do (the ones worth
/// reconstructing after the fact). Everything else keeps its summary row
/// (ids, stage milliseconds, status) but drops the span vector, so the
/// recorder's memory is bounded by Capacity summaries + a handful of
/// timelines no matter how long the server runs.
///
/// The ring is dumpable as a `ursa.flight_record.v1` JSON document
/// through the `stats` verb (docs/SERVICE.md) or, on shutdown, to the
/// path named by URSA_FLIGHT_DUMP — so one slow compile can be
/// reconstructed stage by stage after the process is gone.
///
/// Appends happen once per finished request (not on any hot path) and
/// take one mutex; the compile itself never touches the recorder.
///
//===----------------------------------------------------------------------===//

#ifndef URSA_SERVICE_FLIGHTRECORDER_H
#define URSA_SERVICE_FLIGHTRECORDER_H

#include "obs/Json.h"

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace ursa::service {

/// Everything the service learned about one request: identity, outcome,
/// and the per-stage timing breakdown. TraceId is the client-stamped id
/// every span and trace event of this request carries.
struct RequestRecord {
  uint64_t Seq = 0; ///< recorder-assigned, monotonically increasing
  std::string Id;
  std::string TraceId;
  std::string Machine; ///< MachineSpec::key()
  std::string Status;  ///< ok | error | shed | deadline
  std::string Error;

  uint64_t EnqueuedUs = 0; ///< obs::monotonicNowUs at admission
  double QueueMs = 0;
  double ParseMs = 0;
  double CompileMs = 0; ///< parse + measure + rounds + assignment + emit
  double TotalMs = 0;   ///< queue + compile

  unsigned DegradeTier = 0; ///< tier in force when the compile dispatched
  unsigned Rounds = 0;
  uint64_t CacheHits = 0;   ///< measurement-cache hits during this request
  uint64_t CacheMisses = 0; ///< full-state builds during this request
  bool BudgetExhausted = false;

  /// The span timeline collected on the request's worker thread
  /// (obs::SpanCollector), start/duration in monotonic microseconds.
  struct StageSpan {
    std::string Name;
    std::string Cat;
    uint64_t StartUs = 0;
    uint64_t DurUs = 0;
  };
  std::vector<StageSpan> Spans;
  /// Spans beyond the collector's cap were counted, not stored.
  uint64_t SpansDropped = 0;
  /// True when the retention policy dropped this record's span vector
  /// (it was neither failed nor among the slowest SlowN).
  bool SpansTrimmed = false;
};

class FlightRecorder {
public:
  FlightRecorder(size_t CapacityIn, size_t SlowNIn)
      : Capacity(CapacityIn ? CapacityIn : 1), SlowN(SlowNIn) {}

  /// Appends one finished request, assigning its Seq and applying the
  /// span-retention policy.
  void record(RequestRecord R);

  /// The ring, oldest first.
  std::vector<RequestRecord> snapshot() const;

  /// The slowest successful request currently retained with its full
  /// timeline; Seq == 0 when none.
  RequestRecord slowest() const;

  size_t size() const;
  size_t capacity() const { return Capacity; }

  /// Serializes the ring as a `ursa.flight_record.v1` document.
  /// \p TimelinesOnly keeps the dump small by skipping summary-only rows.
  std::string dumpJson(bool TimelinesOnly = false) const;

  /// Writes the ring (one record per "records" element) into \p W at
  /// value position — the `stats` verb embeds it this way.
  void writeJson(obs::JsonWriter &W, bool TimelinesOnly = false) const;

private:
  void writeRecordLocked(obs::JsonWriter &W, const RequestRecord &R) const;

  mutable std::mutex Mu;
  std::deque<RequestRecord> Ring;
  size_t Capacity;
  size_t SlowN;
  uint64_t NextSeq = 1;
};

} // namespace ursa::service

#endif // URSA_SERVICE_FLIGHTRECORDER_H
