//===- service/Client.h - Compile-service client ----------------*- C++ -*-===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The client half of the wire protocol: connect, send requests, read
/// responses. Requests may be pipelined — send any number before reading
/// — and responses matched back by id; `ursa_batch` keeps a whole
/// worker-pool's worth of compiles in flight this way. Shared by
/// ursa_batch and the service tests.
///
//===----------------------------------------------------------------------===//

#ifndef URSA_SERVICE_CLIENT_H
#define URSA_SERVICE_CLIENT_H

#include "service/Protocol.h"
#include "support/Socket.h"

namespace ursa::service {

class ServiceClient {
public:
  /// Connects to the server listening on \p Path.
  static StatusOr<ServiceClient> connect(const std::string &Path);

  /// Sends one request frame.
  Status send(const ServiceRequest &R);

  /// Reads one response frame. A clean server close sets \p Closed and
  /// returns OK.
  Status recv(ServiceResponse &Out, bool &Closed);

  /// send + recv for the simple one-at-a-time case.
  Status call(const ServiceRequest &R, ServiceResponse &Out);

private:
  explicit ServiceClient(UnixSocket S) : Sock(std::move(S)) {}

  UnixSocket Sock;
};

} // namespace ursa::service

#endif // URSA_SERVICE_CLIENT_H
