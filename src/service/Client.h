//===- service/Client.h - Compile-service client ----------------*- C++ -*-===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The client half of the wire protocol: connect, send requests, read
/// responses. Requests may be pipelined — send any number before reading
/// — and responses matched back by id; `ursa_batch` keeps a whole
/// worker-pool's worth of compiles in flight this way. Shared by
/// ursa_batch and the service tests.
///
/// Supervision: callSupervised() wraps one request in reconnect-with-
/// backoff under a strict **at-most-once** rule. Only failures that prove
/// the server never started the compile are retried:
///
///   retryable      connect refused/failed; a `shed` response; a clean
///                  close (FIN) before any response byte; EPIPE on send
///                  (a draining server flushes responses before closing,
///                  so an unsent frame was never read);
///   non-retryable  ECONNRESET, torn or mid-frame failures, op timeouts,
///                  and any response other than `shed` — the server may
///                  have started (or finished) the compile, so replaying
///                  could run it twice. These surface as a Status.
///
/// Backoff is exponential with deterministic jitter (support/RNG.h). The
/// jitter is keyed on the policy seed, a process-unique per-client
/// instance tag, and the supervised call's trace id — so two clients in
/// one process (or two calls on one client) never share a backoff
/// schedule, which would synchronize their reconnect storms against a
/// restarting server. Every attempt honors the request's DeadlineMs
/// across the whole supervised call, not per try.
///
//===----------------------------------------------------------------------===//

#ifndef URSA_SERVICE_CLIENT_H
#define URSA_SERVICE_CLIENT_H

#include "obs/Histogram.h"
#include "service/Protocol.h"
#include "support/RNG.h"
#include "support/Socket.h"

namespace ursa::service {

/// Client-observed end-to-end latency in microseconds
/// ("ursa.client.e2e_us"): recorded by callSupervised around the whole
/// supervised call (backoff included) and by ursa_batch's pipelined
/// loop. `ursa_batch --client-stats` prints its percentiles.
obs::Histogram &clientLatencyHistogram();

/// A process-unique trace id ("t-XXXXXXXX-NNNNNN"). ServiceClient stamps
/// one into every request whose caller left TraceId empty, so each wire
/// request is traceable end to end without the caller doing anything.
std::string makeTraceId();

/// Reconnect/retry tuning for callSupervised.
struct RetryPolicy {
  /// Extra attempts after the first (0 = never retry; the supervised
  /// call then behaves like plain call() plus failure classification).
  unsigned MaxRetries = 0;
  /// First backoff delay; doubles per retry up to BackoffMaxMs.
  unsigned BackoffBaseMs = 10;
  unsigned BackoffMaxMs = 1000;
  /// Jitter seed, mixed with the client's process-unique instance tag and
  /// the supervised call's trace id (clientJitterKey) — equal seeds on
  /// different clients still draw different backoff schedules.
  uint64_t Seed = 1;
  /// Per-operation socket deadline applied to every connection
  /// (Socket::setOpTimeoutMs); 0 = unbounded.
  unsigned OpTimeoutMs = 0;
  /// Cap on `busy_retry_later` retries. A Busy response is a momentary
  /// fleet-side condition (router between backends), not client pressure,
  /// so it retries after a short fixed delay without consuming a backoff
  /// Try — this cap alone bounds the loop.
  unsigned BusyRetryCap = 32;
  /// Fixed delay before a Busy retry (no exponential growth).
  unsigned BusyDelayMs = 5;
};

/// Mixes a client's process-unique instance tag with a request's trace id
/// into the jitter key supervisedBackoffMs draws from. Distinct tags (two
/// clients in one process) or distinct trace ids (two supervised calls)
/// yield distinct keys, so backoff schedules never collide.
uint64_t clientJitterKey(uint64_t InstanceTag, std::string_view TraceId);

/// The deterministic backoff delay before attempt \p Try (1-based; Try 0
/// is the initial attempt and never sleeps): exponential cap
/// min(BackoffMaxMs, BackoffBaseMs << (Try-1)), jittered uniformly into
/// [Cap/2, Cap] by Policy.Seed ^ JitterKey ^ Try. Stateless and pure, so
/// tests can pin exact schedules.
unsigned supervisedBackoffMs(const RetryPolicy &Policy, uint64_t JitterKey,
                             unsigned Try);

class ServiceClient {
public:
  /// Connects to \p Endpoint ("unix:PATH", bare path, or "tcp:HOST:PORT").
  static StatusOr<ServiceClient> connect(const std::string &Endpoint);

  /// Like connect(), but remembers \p Policy and retries the initial
  /// connection itself with backoff.
  static StatusOr<ServiceClient> connectWithRetry(const std::string &Endpoint,
                                                  const RetryPolicy &Policy);

  /// Sends one request frame.
  Status send(const ServiceRequest &R);

  /// Reads one response frame. A clean server close sets \p Closed and
  /// returns OK.
  Status recv(ServiceResponse &Out, bool &Closed);

  /// send + recv for the simple one-at-a-time case.
  Status call(const ServiceRequest &R, ServiceResponse &Out);

  /// One request under supervision: reconnects and retries per the
  /// policy, but only on failures the at-most-once rule allows (see file
  /// header). A `shed` response is retried with backoff and only
  /// surfaced once retries are exhausted. A `busy_retry_later` response
  /// (the router's "not your fault" refusal) is also provably unstarted,
  /// but retries on a short fixed delay without burning a backoff Try —
  /// bounded by RetryPolicy::BusyRetryCap instead.
  Status callSupervised(const ServiceRequest &R, ServiceResponse &Out);

  /// True while the underlying connection looks usable. After a failed
  /// callSupervised the connection may be closed; the next supervised
  /// call reconnects on its own.
  bool connected() const { return Sock.valid(); }

  const RetryPolicy &policy() const { return Policy; }
  void setPolicy(const RetryPolicy &P) { Policy = P; }

  /// errno of the last failed socket operation (failure classification
  /// for callers doing their own pipelined retries, e.g. ursa_batch).
  int lastErrno() const { return Sock.lastErrno(); }

  /// Process-unique tag assigned at connect(); feeds clientJitterKey so
  /// this client's backoff schedule is its own.
  uint64_t instanceTag() const { return Tag; }

private:
  explicit ServiceClient(Socket S) : Sock(std::move(S)) {}

  /// (Re)establishes Sock to Endpoint, applying OpTimeoutMs.
  Status reconnect();

  /// True when the failed attempt provably never started server-side.
  /// \p Tid is the trace id stamped on the wire — the same one across
  /// every retry of a supervised call, so the server-side records of all
  /// attempts correlate.
  enum class Attempt {
    Done,
    RetryConnect,
    RetrySend,
    RetryShed,
    RetryBusy, ///< busy_retry_later: free retry, BusyRetryCap-bounded
    Fatal
  };
  Attempt tryOnce(const ServiceRequest &R, std::string_view Tid,
                  ServiceResponse &Out, Status &Err);

  Socket Sock;
  std::string Endpoint;
  RetryPolicy Policy;
  uint64_t Tag = 0; ///< process-unique instance tag (jitter de-collision)
};

} // namespace ursa::service

#endif // URSA_SERVICE_CLIENT_H
