//===- service/Protocol.h - Compile-service wire protocol -------*- C++ -*-===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The request/response vocabulary of the persistent compile service.
/// Messages are JSON documents (schemas "ursa.service_request.v1" and
/// "ursa.service_response.v1") carried in length-prefixed frames
/// (support/Socket.h). This header is transport-agnostic: parsing and
/// serialization only, shared by the server, the batch client, and the
/// tests. Requests are untrusted input — parsing goes through
/// obs::parseJsonLimited and every malformed field is a clean Status.
///
/// docs/SERVICE.md documents the schemas field by field.
///
//===----------------------------------------------------------------------===//

#ifndef URSA_SERVICE_PROTOCOL_H
#define URSA_SERVICE_PROTOCOL_H

#include "machine/MachineModel.h"
#include "obs/Json.h"
#include "support/Status.h"

#include <string>

namespace ursa::service {

/// The machine a request targets, kept in spec form so the server can key
/// its model/cache tables on it. Mirrors the `ursa_cc` machine flags.
struct MachineSpec {
  bool Classed = false;
  unsigned Fus = 4, Regs = 8;                            ///< homogeneous
  unsigned IntFus = 2, FltFus = 1, MemFus = 1, Gprs = 8, Fprs = 4;
  unsigned LatInt = 1, LatFlt = 1, LatMem = 1;
  bool Pipelined = false;

  /// Builds the model this spec describes.
  MachineModel build() const;

  /// Canonical key for the server's machine-model and measurement-cache
  /// tables: two requests with equal keys may share cached state.
  std::string key() const;

  /// Inverts key(): reconstructs the spec a key describes. The startup
  /// warm-load path uses this to rebuild machine models from persisted
  /// cache-image headers before any request names them. Returns false on
  /// anything key() could not have produced.
  static bool fromKey(const std::string &Key, MachineSpec &Out);
};

/// One service request.
struct ServiceRequest {
  enum class OpKind {
    Compile,
    Report,
    Shutdown,
    Ping,
    Stats, ///< live ursa.service_stats.v1 (or Prometheus exposition)
    Health ///< cheap liveness/pressure probe (ursa.service_health.v1)
  } Op = OpKind::Compile;
  /// Client-chosen id echoed in the response (responses may arrive out of
  /// order when requests are pipelined).
  std::string Id;
  /// Request-scoped trace id, stamped by ServiceClient when the caller
  /// left it empty and echoed in the response. The server propagates it
  /// through queueing and the worker pool so every span and flight-
  /// recorder record of this request carries it.
  std::string TraceId;
  /// Trace source text (the `ursa_cc` straight-line dialect).
  std::string Source;
  MachineSpec Machine;

  // Stats-op options.
  std::string StatsFormat = "json"; ///< json | prometheus
  bool IncludeFlight = false;       ///< embed the flight-recorder ring

  // Options, mapped onto URSAOptions by the service. 0 = service default.
  std::string Order = "regs"; ///< regs | fus | integrated
  std::string Verify;         ///< "" = URSA_VERIFY default; off|basic|full
  bool GuaranteedFit = false;
  unsigned TimeBudgetMs = 0;
  unsigned MaxTotalRounds = 0;
  unsigned Threads = 0;
  int Incremental = -1; ///< -1 = environment default
  /// Beam width for the driver's transformation search; 0 (and an absent
  /// wire field) keeps the server default (greedy / URSA_BEAM), so old
  /// clients are unaffected. Capped at 64 by the parser — wider beams are
  /// a resource-exhaustion vector, not a quality win.
  unsigned Beam = 0;
  /// Race phase orderings and tie-break perturbations, keeping the best
  /// allocation (URSAOptions::Portfolio). Absent on the wire = false.
  bool Portfolio = false;
  /// Admission deadline: total milliseconds the request may spend queued
  /// plus compiling before the server gives up on it. 0 = none. The
  /// remaining deadline at dispatch is folded into TimeBudgetMs.
  unsigned DeadlineMs = 0;
  /// Test hook (honored only when the server enables test hooks): stall
  /// every allocation round by this many milliseconds.
  unsigned StallMs = 0;
  /// Client identity for the router's fair queueing and quotas ("" = the
  /// anonymous client). Backends ignore it; old servers never see the
  /// field (it is omitted when empty and unknown fields are skipped).
  std::string Client;
};

/// One service response.
struct ServiceResponse {
  enum class StatusKind {
    Ok,       ///< compiled; Text holds the ursa_cc-identical output
    Error,    ///< bad request or failed compile; Error explains
    Shed,     ///< load-shed: queue full or server shutting down
    Deadline, ///< the request's deadline expired before compilation
    Report,   ///< Text holds a ursa.service_report.v1 document
    Bye,      ///< shutdown acknowledged
    Stats,    ///< Text holds a stats document (JSON or Prometheus text)
    /// A momentary fleet-side condition (router found no backend, or a
    /// backend was lost mid-request): resubmit freely — unlike Shed this
    /// does not mean the *client* is over quota, so retrying it must not
    /// burn the supervised-retry backoff budget. Old clients parse the
    /// wire name "busy_retry_later" as Error (documented legacy mapping).
    Busy
  } Status = StatusKind::Error;
  std::string Id;
  /// Echo of the request's trace id (possibly client-stamped).
  std::string TraceId;
  /// Which backend served a routed request (router-stamped, "" when the
  /// response came straight from a backend). Lets clients and tests see
  /// shard placement without scraping router stats.
  std::string Backend;
  std::string Error;
  /// For Ok: exactly what `ursa_cc <file> --machine ...` would print
  /// (stats comment + VLIW assembly). For Report: the report JSON.
  std::string Text;

  unsigned Cycles = 0;
  unsigned SpillOps = 0;
  bool WithinLimits = false;
  bool BudgetExhausted = false;
  double QueueMs = 0;   ///< time spent queued before a worker picked it up
  double CompileMs = 0; ///< time inside the compiler
};

/// Serializes \p R as a ursa.service_request.v1 document. A non-empty
/// \p TraceId overrides R.TraceId on the wire (how the client stamps an
/// id without copying the request).
std::string writeRequest(const ServiceRequest &R,
                         std::string_view TraceId = {});

/// Parses an untrusted request document under \p Limits.
Status parseRequest(std::string_view Doc, ServiceRequest &Out,
                    const obs::JsonParseLimits &Limits = {});

/// Serializes \p R as a ursa.service_response.v1 document.
std::string writeResponse(const ServiceResponse &R);

/// Parses a response document (trusted: our own server produced it).
Status parseResponse(std::string_view Doc, ServiceResponse &Out);

/// The wire name of a response status ("ok", "error", "shed", ...).
const char *statusName(ServiceResponse::StatusKind K);

} // namespace ursa::service

#endif // URSA_SERVICE_PROTOCOL_H
