//===- service/CompileService.cpp - Persistent compile service ------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/CompileService.h"

#include "ir/Parser.h"
#include "obs/Json.h"
#include "obs/Stats.h"
#include "ursa/Compiler.h"
#include "ursa/FaultInjector.h"
#include "ursa/PipelineVerifier.h"
#include "ursa/Report.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>

#include <dirent.h>

using namespace ursa;
using namespace ursa::service;

static unsigned envUnsigned(const char *Name, unsigned Default) {
  const char *S = std::getenv(Name);
  if (!S || !*S)
    return Default;
  long V = std::atol(S);
  return V >= 0 ? unsigned(V) : Default;
}

ServiceConfig ServiceConfig::fromEnv() {
  ServiceConfig C;
  C.Workers = std::max(1u, envUnsigned("URSA_SERVICE_WORKERS", C.Workers));
  C.QueueDepth =
      std::max(1u, envUnsigned("URSA_SERVICE_QUEUE_DEPTH", C.QueueDepth));
  C.CacheSize = envUnsigned("URSA_SERVICE_CACHE_SIZE", C.CacheSize);
  C.CacheEnabled = envUnsigned("URSA_SERVICE_CACHE", 1) != 0;
  C.DefaultTimeBudgetMs =
      envUnsigned("URSA_SERVICE_TIME_BUDGET_MS", C.DefaultTimeBudgetMs);
  C.MaxRequestBytes =
      envUnsigned("URSA_SERVICE_MAX_REQUEST_BYTES", C.MaxRequestBytes);
  C.EnableTestHooks = envUnsigned("URSA_SERVICE_TEST_HOOKS", 0) != 0;
  if (const char *Dir = std::getenv("URSA_SERVICE_CACHE_DIR"); Dir && *Dir)
    C.CacheDir = Dir;
  C.SnapshotEvery =
      envUnsigned("URSA_SERVICE_SNAPSHOT_EVERY", C.SnapshotEvery);
  C.SnapshotOnStop = envUnsigned("URSA_SERVICE_SNAPSHOT_ON_STOP", 1) != 0;
  C.IdleTimeoutMs = envUnsigned("URSA_SERVICE_IDLE_TIMEOUT_MS", 0);
  C.IoTimeoutMs = envUnsigned("URSA_SERVICE_IO_TIMEOUT_MS", 0);
  C.DegradeEnabled = envUnsigned("URSA_SERVICE_DEGRADE", 1) != 0;
  C.DegradedTimeBudgetMs =
      envUnsigned("URSA_SERVICE_DEGRADED_BUDGET_MS", C.DegradedTimeBudgetMs);
  return C;
}

URSA_STAT(StatDegradeTier, "ursa.service.degrade_tier",
          "active graceful-degradation tier (gauge, 0..3)");
URSA_STAT(StatDegradeTransitions, "ursa.service.degrade_transitions",
          "degradation tier changes");
URSA_STAT(StatDegradedVerifyOff, "ursa.service.degraded_verify_off",
          "compiles run with verification shed (tier >= 1)");
URSA_STAT(StatDegradedIncrementalOff,
          "ursa.service.degraded_incremental_off",
          "compiles run with incremental warm paths shed (tier >= 2)");
URSA_STAT(StatDegradedBudgetClamped,
          "ursa.service.degraded_budget_clamped",
          "compiles run with the degraded budget clamp (tier >= 3)");
URSA_STAT(StatCacheWarmLoaded, "ursa.service.cache_warm_loaded",
          "cache entries restored warm from disk at startup");

CompileService::CompileService(const ServiceConfig &Cfg) : Config(Cfg) {
  Pool = std::make_unique<ThreadPool>(std::max(1u, Config.Workers));
  // The dispatcher participates in the parallelFor, so this produces
  // exactly Config.Workers concurrent workerLoop executions and joins
  // them all before the dispatcher thread exits.
  Dispatcher = std::thread([this] {
    Pool->parallelFor(std::max(1u, Config.Workers),
                      [this](size_t) { workerLoop(); });
  });
  warmLoadPersistedCaches();
}

void CompileService::warmLoadPersistedCaches() {
  if (Config.CacheDir.empty() || !Config.CacheEnabled)
    return;
  DIR *D = ::opendir(Config.CacheDir.c_str());
  if (!D)
    return; // no directory yet: a cold start
  std::set<std::string> Seen;
  while (struct dirent *E = ::readdir(D)) {
    std::string Name = E->d_name;
    auto EndsWith = [&](const char *Suffix) {
      size_t N = std::strlen(Suffix);
      return Name.size() > N && Name.compare(Name.size() - N, N, Suffix) == 0;
    };
    if (!EndsWith(".ursacache") && !EndsWith(".journal"))
      continue;
    StatusOr<std::string> KeyOr =
        CachePersister::readImageKey(Config.CacheDir + "/" + Name);
    if (!KeyOr.isOk()) {
      std::fprintf(stderr, "warning [cache_image]: %s\n",
                   KeyOr.status().message().c_str());
      continue;
    }
    MachineSpec Spec;
    if (!MachineSpec::fromKey(*KeyOr, Spec)) {
      std::fprintf(stderr,
                   "warning [cache_image]: %s: unrecognized machine key "
                   "'%s'; leaving cold\n",
                   Name.c_str(), KeyOr->c_str());
      continue;
    }
    if (!Seen.insert(*KeyOr).second)
      continue; // the snapshot already warmed this key's cache
    (void)cacheFor(Spec); // creates, loads warm, wires the journal observer
  }
  ::closedir(D);
}

CompileService::~CompileService() { stop(/*Drain=*/true); }

void CompileService::stop(bool Drain) {
  std::deque<Job> ToShed;
  {
    std::lock_guard<std::mutex> L(Mu);
    Stopping = true;
    if (!Drain) {
      ToShed.swap(Queue);
      C.Shed += ToShed.size();
      C.QueueDepthNow = 0;
    }
    Quit = true;
    JobReady.notify_all();
  }
  for (Job &J : ToShed) {
    ServiceResponse Resp;
    Resp.Status = ServiceResponse::StatusKind::Shed;
    Resp.Id = J.R.Id;
    Resp.Error = "server shutting down";
    J.Done(Resp);
  }
  if (Dispatcher.joinable())
    Dispatcher.join();

  // Drain-time snapshots: with the workers quiesced every built state is
  // recorded, so the next start replays nothing from the journal.
  if (Config.SnapshotOnStop) {
    std::lock_guard<std::mutex> L(TablesMu);
    for (auto &[Key, P] : Persisters)
      (void)P->snapshot();
  }
}

void CompileService::updateLoadLocked() {
  // EWMA over queue occupancy, advanced on every enqueue/dequeue; tier
  // boundaries carry hysteresis so bursty arrivals do not flap the tier.
  double Occ = double(Queue.size()) / double(std::max(1u, Config.QueueDepth));
  LoadEwma = 0.8 * LoadEwma + 0.2 * Occ;
  if (!Config.DegradeEnabled)
    return;
  static constexpr double Up[3] = {0.5, 0.7, 0.85};
  static constexpr double Hysteresis = 0.15;
  unsigned T = DegradeTier.load(std::memory_order_relaxed);
  while (T < 3 && LoadEwma >= Up[T])
    ++T;
  while (T > 0 && LoadEwma < Up[T - 1] - Hysteresis)
    --T;
  if (T != DegradeTier.load(std::memory_order_relaxed)) {
    DegradeTier.store(T, std::memory_order_relaxed);
    ++C.DegradeTransitions;
    StatDegradeTransitions.add();
    StatDegradeTier.set(T);
  }
}

bool CompileService::handle(const ServiceRequest &R, ResponseFn Done) {
  switch (R.Op) {
  case ServiceRequest::OpKind::Compile:
    submit(R, std::move(Done));
    return true;
  case ServiceRequest::OpKind::Report: {
    ServiceResponse Resp;
    Resp.Status = ServiceResponse::StatusKind::Report;
    Resp.Id = R.Id;
    Resp.Text = reportJSON();
    Done(Resp);
    return true;
  }
  case ServiceRequest::OpKind::Ping: {
    ServiceResponse Resp;
    Resp.Status = ServiceResponse::StatusKind::Ok;
    Resp.Id = R.Id;
    Done(Resp);
    return true;
  }
  case ServiceRequest::OpKind::Shutdown: {
    ServiceResponse Resp;
    Resp.Status = ServiceResponse::StatusKind::Bye;
    Resp.Id = R.Id;
    Done(Resp);
    return false;
  }
  }
  return true;
}

void CompileService::submit(ServiceRequest R, ResponseFn Done) {
  bool WasStopping;
  {
    std::lock_guard<std::mutex> L(Mu);
    ++C.Received;
    if (!Stopping && Queue.size() < Config.QueueDepth) {
      Queue.push_back({std::move(R), std::move(Done),
                       std::chrono::steady_clock::now()});
      C.QueueDepthNow = Queue.size();
      C.QueueDepthPeak = std::max(C.QueueDepthPeak, uint64_t(Queue.size()));
      updateLoadLocked();
      JobReady.notify_one();
      return;
    }
    ++C.Shed;
    WasStopping = Stopping;
  }
  ServiceResponse Resp;
  Resp.Status = ServiceResponse::StatusKind::Shed;
  Resp.Id = R.Id;
  Resp.Error = WasStopping ? "server shutting down" : "queue full";
  Done(Resp);
}

void CompileService::workerLoop() {
  for (;;) {
    Job J;
    double QueueMs = 0;
    {
      std::unique_lock<std::mutex> L(Mu);
      JobReady.wait(L, [this] { return Quit || !Queue.empty(); });
      if (Queue.empty())
        return; // Quit and drained
      J = std::move(Queue.front());
      Queue.pop_front();
      C.QueueDepthNow = Queue.size();
      updateLoadLocked();
      ++C.InFlight;
      QueueMs = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - J.Enqueued)
                    .count();
      C.TotalQueueMs += QueueMs;
    }

    ServiceResponse Resp;
    if (J.R.DeadlineMs && QueueMs >= double(J.R.DeadlineMs)) {
      // Expired while queued: answer without burning a compile on it.
      Resp.Status = ServiceResponse::StatusKind::Deadline;
      Resp.Id = J.R.Id;
      Resp.Error = "deadline of " + std::to_string(J.R.DeadlineMs) +
                   "ms expired while queued";
      Resp.QueueMs = QueueMs;
    } else {
      Resp = compileOne(J.R, QueueMs);
    }

    {
      std::lock_guard<std::mutex> L(Mu);
      --C.InFlight;
      C.TotalCompileMs += Resp.CompileMs;
      C.MaxCompileMs = std::max(C.MaxCompileMs, Resp.CompileMs);
      switch (Resp.Status) {
      case ServiceResponse::StatusKind::Ok:
        ++C.Completed;
        break;
      case ServiceResponse::StatusKind::Deadline:
        ++C.DeadlineExpired;
        break;
      default:
        ++C.Errors;
        break;
      }
    }
    J.Done(Resp);
  }
}

MeasurementCache *CompileService::cacheFor(const MachineSpec &Spec) {
  const std::string Key = Spec.key();
  std::lock_guard<std::mutex> L(TablesMu);
  std::unique_ptr<MeasurementCache> &Slot = Caches[Key];
  if (Slot)
    return Slot.get();
  Slot = std::make_unique<MeasurementCache>(Config.CacheEnabled,
                                            std::max(1u, Config.CacheSize));
  if (Config.CacheDir.empty() || !Config.CacheEnabled)
    return Slot.get();

  // First touch of this machine key with persistence on: reload whatever
  // a previous server left behind, then journal every state this one
  // builds. Load problems are warnings (a cold start), never failures.
  auto P = std::make_unique<CachePersister>(Config.CacheDir, Key,
                                            MeasureOptions{});
  Status LoadSt = P->load(*Slot, modelForLocked(Spec));
  for (const Diag &D : LoadSt.diags())
    std::fprintf(stderr, "%s\n", D.str().c_str());
  StatCacheWarmLoaded.add(P->loadedEntries());

  CachePersister *Raw = P.get();
  const unsigned Every = Config.SnapshotEvery;
  Slot->setBuildObserver([Raw, Every](uint64_t Fp, const DependenceDAG &D) {
    Raw->append(Fp, D);
    if (Every && Raw->dirtyEntries() >= Every)
      (void)Raw->snapshot();
  });
  Persisters[Key] = std::move(P);
  return Slot.get();
}

const MachineModel &CompileService::modelForLocked(const MachineSpec &Spec) {
  auto It = Models.find(Spec.key());
  if (It == Models.end())
    It = Models.emplace(Spec.key(), Spec.build()).first;
  return It->second;
}

const MachineModel &CompileService::modelFor(const MachineSpec &Spec) {
  std::lock_guard<std::mutex> L(TablesMu);
  return modelForLocked(Spec);
}

ServiceResponse CompileService::compileOne(const ServiceRequest &R,
                                           double QueueMs) {
  ServiceResponse Resp;
  Resp.Id = R.Id;
  Resp.QueueMs = QueueMs;
  auto Begin = std::chrono::steady_clock::now();
  auto Finish = [&](ServiceResponse &Out) -> ServiceResponse & {
    Out.CompileMs = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - Begin)
                        .count();
    return Out;
  };

  Trace T(R.Id.empty() ? "request" : R.Id);
  std::string Err;
  if (!parseTrace(R.Source, T, Err)) {
    Resp.Status = ServiceResponse::StatusKind::Error;
    Resp.Error = "parse error: " + Err;
    return Finish(Resp);
  }

  const MachineModel &M = modelFor(R.Machine);

  URSAOptions UO;
  UO.Order = R.Order == "fus"          ? PhaseOrdering::FUsFirst
             : R.Order == "integrated" ? PhaseOrdering::Integrated
                                       : PhaseOrdering::RegistersFirst;
  if (!R.Verify.empty())
    UO.Verify = parseVerifyLevel(R.Verify.c_str());
  UO.GuaranteedFit = R.GuaranteedFit;
  UO.Threads = R.Threads ? R.Threads : 1;
  if (R.Incremental >= 0)
    UO.IncrementalMeasure = R.Incremental != 0;
  if (R.MaxTotalRounds)
    UO.MaxTotalRounds = R.MaxTotalRounds;
  UO.SharedCache = cacheFor(R.Machine);

  // Budget: the request's own budget, the server default, and whatever is
  // left of the deadline after queueing — whichever binds first.
  unsigned Budget = R.TimeBudgetMs ? R.TimeBudgetMs : Config.DefaultTimeBudgetMs;
  if (R.DeadlineMs) {
    unsigned Left = unsigned(std::max(1.0, double(R.DeadlineMs) - QueueMs));
    Budget = Budget ? std::min(Budget, Left) : Left;
  }

  // Graceful degradation: shed work before requests. Each tier trades a
  // little per-request cost for headroom; only the queue-full path (the
  // de-facto tier 4) refuses anyone.
  if (Config.DegradeEnabled) {
    unsigned Tier = DegradeTier.load(std::memory_order_relaxed);
    if (Tier >= 1) {
      UO.Verify = VerifyLevel::None;
      StatDegradedVerifyOff.add();
    }
    if (Tier >= 2) {
      UO.IncrementalMeasure = false;
      StatDegradedIncrementalOff.add();
    }
    if (Tier >= 3) {
      Budget = Budget ? std::min(Budget, Config.DegradedTimeBudgetMs)
                      : Config.DegradedTimeBudgetMs;
      StatDegradedBudgetClamped.add();
    }
  }
  UO.TimeBudgetMs = Budget;

  FaultInjector Stall(FaultKind::StallRound);
  if (Config.EnableTestHooks && R.StallMs) {
    Stall.withStallMs(R.StallMs);
    UO.Faults = &Stall;
  }

  URSACompileResult CR = compileURSA(T, M, UO);

  double ElapsedMs = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - Begin)
                         .count();
  if (R.DeadlineMs && CR.BudgetExhausted &&
      QueueMs + ElapsedMs >= double(R.DeadlineMs)) {
    Resp.Status = ServiceResponse::StatusKind::Deadline;
    Resp.Error = "deadline of " + std::to_string(R.DeadlineMs) +
                 "ms expired during compilation";
    return Finish(Resp);
  }
  if (!CR.Compile.Ok) {
    Resp.Status = ServiceResponse::StatusKind::Error;
    Resp.Error = CR.Compile.Error.empty() ? "compilation failed"
                                          : CR.Compile.Error;
    for (const Diag &D : CR.Diags) {
      Resp.Error += '\n';
      Resp.Error += D.str();
    }
    return Finish(Resp);
  }

  Resp.Status = ServiceResponse::StatusKind::Ok;
  Resp.Text = formatCompileText("ursa", M, CR.Compile);
  Resp.Cycles = CR.Compile.Cycles;
  Resp.SpillOps = CR.Compile.SpillOps;
  Resp.WithinLimits = CR.AllocWithinLimits;
  Resp.BudgetExhausted = CR.BudgetExhausted;
  return Finish(Resp);
}

ServiceCounters CompileService::counters() const {
  std::lock_guard<std::mutex> L(Mu);
  ServiceCounters Out = C;
  Out.DegradeTier = DegradeTier.load(std::memory_order_relaxed);
  Out.LoadEwma = LoadEwma;
  return Out;
}

std::string CompileService::reportJSON() const {
  ServiceCounters S = counters();
  obs::JsonWriter W;
  W.beginObject();
  W.kv("schema", "ursa.service_report.v1");
  W.key("config").beginObject();
  W.kv("workers", Config.Workers);
  W.kv("queue_depth", Config.QueueDepth);
  W.kv("cache_enabled", Config.CacheEnabled);
  W.kv("cache_size", Config.CacheSize);
  W.kv("default_time_budget_ms", Config.DefaultTimeBudgetMs);
  W.kv("max_request_bytes", Config.MaxRequestBytes);
  W.kv("cache_dir", Config.CacheDir);
  W.kv("snapshot_every", Config.SnapshotEvery);
  W.kv("idle_timeout_ms", Config.IdleTimeoutMs);
  W.kv("io_timeout_ms", Config.IoTimeoutMs);
  W.kv("degrade_enabled", Config.DegradeEnabled);
  W.kv("degraded_time_budget_ms", Config.DegradedTimeBudgetMs);
  W.endObject();
  W.key("requests").beginObject();
  W.kv("received", S.Received);
  W.kv("completed", S.Completed);
  W.kv("errors", S.Errors);
  W.kv("shed", S.Shed);
  W.kv("deadline_expired", S.DeadlineExpired);
  W.kv("in_flight", S.InFlight);
  W.endObject();
  W.key("queue").beginObject();
  W.kv("depth", S.QueueDepthNow);
  W.kv("depth_peak", S.QueueDepthPeak);
  W.endObject();
  W.key("latency").beginObject();
  W.kv("total_queue_ms", S.TotalQueueMs);
  W.kv("total_compile_ms", S.TotalCompileMs);
  W.kv("max_compile_ms", S.MaxCompileMs);
  uint64_t Done = S.Completed + S.Errors + S.DeadlineExpired;
  W.kv("avg_compile_ms", Done ? S.TotalCompileMs / double(Done) : 0.0);
  W.endObject();
  W.key("degradation").beginObject();
  W.kv("enabled", Config.DegradeEnabled);
  W.kv("tier", S.DegradeTier);
  W.kv("load_ewma", S.LoadEwma);
  W.kv("transitions", S.DegradeTransitions);
  W.endObject();
  {
    std::lock_guard<std::mutex> L(TablesMu);
    W.key("caches").beginArray();
    for (const auto &[Key, Cache] : Caches) {
      W.beginObject();
      W.kv("machine", Key);
      W.kv("entries", uint64_t(Cache->size()));
      W.kv("capacity", Config.CacheSize);
      W.endObject();
    }
    W.endArray();
    W.key("persistence").beginObject();
    W.kv("enabled", !Config.CacheDir.empty() && Config.CacheEnabled);
    W.key("images").beginArray();
    for (const auto &[Key, P] : Persisters) {
      W.beginObject();
      W.kv("machine", Key);
      W.kv("entries", uint64_t(P->entries()));
      W.kv("loaded_warm", uint64_t(P->loadedEntries()));
      W.kv("journal_dirty", uint64_t(P->dirtyEntries()));
      W.kv("snapshot_path", P->snapshotPath());
      W.endObject();
    }
    W.endArray();
    W.endObject();
  }
  // The process-wide stats cover every driver run in this server: the
  // measurement-cache reuse story plus the robustness layer (persistence,
  // degradation, transport retries).
  W.key("stats").beginObject();
  for (const obs::StatValue &SV : obs::snapshotStats(/*NonZeroOnly=*/true))
    if (SV.Name.rfind("ursa.driver.measure_cache", 0) == 0 ||
        SV.Name.rfind("ursa.driver.incremental", 0) == 0 ||
        SV.Name.rfind("ursa.cache_image", 0) == 0 ||
        SV.Name.rfind("ursa.service", 0) == 0 ||
        SV.Name.rfind("ursa.client", 0) == 0)
      W.kv(SV.Name, SV.Value);
  W.endObject();
  W.endObject();
  return W.str();
}
