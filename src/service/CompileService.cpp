//===- service/CompileService.cpp - Persistent compile service ------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/CompileService.h"

#include "ir/Parser.h"
#include "obs/Json.h"
#include "obs/Stats.h"
#include "ursa/Compiler.h"
#include "ursa/FaultInjector.h"
#include "ursa/PipelineVerifier.h"
#include "ursa/Report.h"

#include <algorithm>
#include <cstdlib>

using namespace ursa;
using namespace ursa::service;

static unsigned envUnsigned(const char *Name, unsigned Default) {
  const char *S = std::getenv(Name);
  if (!S || !*S)
    return Default;
  long V = std::atol(S);
  return V >= 0 ? unsigned(V) : Default;
}

ServiceConfig ServiceConfig::fromEnv() {
  ServiceConfig C;
  C.Workers = std::max(1u, envUnsigned("URSA_SERVICE_WORKERS", C.Workers));
  C.QueueDepth =
      std::max(1u, envUnsigned("URSA_SERVICE_QUEUE_DEPTH", C.QueueDepth));
  C.CacheSize = envUnsigned("URSA_SERVICE_CACHE_SIZE", C.CacheSize);
  C.CacheEnabled = envUnsigned("URSA_SERVICE_CACHE", 1) != 0;
  C.DefaultTimeBudgetMs =
      envUnsigned("URSA_SERVICE_TIME_BUDGET_MS", C.DefaultTimeBudgetMs);
  C.MaxRequestBytes =
      envUnsigned("URSA_SERVICE_MAX_REQUEST_BYTES", C.MaxRequestBytes);
  C.EnableTestHooks = envUnsigned("URSA_SERVICE_TEST_HOOKS", 0) != 0;
  return C;
}

CompileService::CompileService(const ServiceConfig &Cfg) : Config(Cfg) {
  Pool = std::make_unique<ThreadPool>(std::max(1u, Config.Workers));
  // The dispatcher participates in the parallelFor, so this produces
  // exactly Config.Workers concurrent workerLoop executions and joins
  // them all before the dispatcher thread exits.
  Dispatcher = std::thread([this] {
    Pool->parallelFor(std::max(1u, Config.Workers),
                      [this](size_t) { workerLoop(); });
  });
}

CompileService::~CompileService() { stop(/*Drain=*/true); }

void CompileService::stop(bool Drain) {
  std::deque<Job> ToShed;
  {
    std::lock_guard<std::mutex> L(Mu);
    Stopping = true;
    if (!Drain) {
      ToShed.swap(Queue);
      C.Shed += ToShed.size();
      C.QueueDepthNow = 0;
    }
    Quit = true;
    JobReady.notify_all();
  }
  for (Job &J : ToShed) {
    ServiceResponse Resp;
    Resp.Status = ServiceResponse::StatusKind::Shed;
    Resp.Id = J.R.Id;
    Resp.Error = "server shutting down";
    J.Done(Resp);
  }
  if (Dispatcher.joinable())
    Dispatcher.join();
}

bool CompileService::handle(const ServiceRequest &R, ResponseFn Done) {
  switch (R.Op) {
  case ServiceRequest::OpKind::Compile:
    submit(R, std::move(Done));
    return true;
  case ServiceRequest::OpKind::Report: {
    ServiceResponse Resp;
    Resp.Status = ServiceResponse::StatusKind::Report;
    Resp.Id = R.Id;
    Resp.Text = reportJSON();
    Done(Resp);
    return true;
  }
  case ServiceRequest::OpKind::Ping: {
    ServiceResponse Resp;
    Resp.Status = ServiceResponse::StatusKind::Ok;
    Resp.Id = R.Id;
    Done(Resp);
    return true;
  }
  case ServiceRequest::OpKind::Shutdown: {
    ServiceResponse Resp;
    Resp.Status = ServiceResponse::StatusKind::Bye;
    Resp.Id = R.Id;
    Done(Resp);
    return false;
  }
  }
  return true;
}

void CompileService::submit(ServiceRequest R, ResponseFn Done) {
  bool WasStopping;
  {
    std::lock_guard<std::mutex> L(Mu);
    ++C.Received;
    if (!Stopping && Queue.size() < Config.QueueDepth) {
      Queue.push_back({std::move(R), std::move(Done),
                       std::chrono::steady_clock::now()});
      C.QueueDepthNow = Queue.size();
      C.QueueDepthPeak = std::max(C.QueueDepthPeak, uint64_t(Queue.size()));
      JobReady.notify_one();
      return;
    }
    ++C.Shed;
    WasStopping = Stopping;
  }
  ServiceResponse Resp;
  Resp.Status = ServiceResponse::StatusKind::Shed;
  Resp.Id = R.Id;
  Resp.Error = WasStopping ? "server shutting down" : "queue full";
  Done(Resp);
}

void CompileService::workerLoop() {
  for (;;) {
    Job J;
    double QueueMs = 0;
    {
      std::unique_lock<std::mutex> L(Mu);
      JobReady.wait(L, [this] { return Quit || !Queue.empty(); });
      if (Queue.empty())
        return; // Quit and drained
      J = std::move(Queue.front());
      Queue.pop_front();
      C.QueueDepthNow = Queue.size();
      ++C.InFlight;
      QueueMs = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - J.Enqueued)
                    .count();
      C.TotalQueueMs += QueueMs;
    }

    ServiceResponse Resp;
    if (J.R.DeadlineMs && QueueMs >= double(J.R.DeadlineMs)) {
      // Expired while queued: answer without burning a compile on it.
      Resp.Status = ServiceResponse::StatusKind::Deadline;
      Resp.Id = J.R.Id;
      Resp.Error = "deadline of " + std::to_string(J.R.DeadlineMs) +
                   "ms expired while queued";
      Resp.QueueMs = QueueMs;
    } else {
      Resp = compileOne(J.R, QueueMs);
    }

    {
      std::lock_guard<std::mutex> L(Mu);
      --C.InFlight;
      C.TotalCompileMs += Resp.CompileMs;
      C.MaxCompileMs = std::max(C.MaxCompileMs, Resp.CompileMs);
      switch (Resp.Status) {
      case ServiceResponse::StatusKind::Ok:
        ++C.Completed;
        break;
      case ServiceResponse::StatusKind::Deadline:
        ++C.DeadlineExpired;
        break;
      default:
        ++C.Errors;
        break;
      }
    }
    J.Done(Resp);
  }
}

MeasurementCache *CompileService::cacheFor(const std::string &Key) {
  std::lock_guard<std::mutex> L(TablesMu);
  std::unique_ptr<MeasurementCache> &Slot = Caches[Key];
  if (!Slot)
    Slot = std::make_unique<MeasurementCache>(Config.CacheEnabled,
                                              std::max(1u, Config.CacheSize));
  return Slot.get();
}

const MachineModel &CompileService::modelFor(const MachineSpec &Spec) {
  std::lock_guard<std::mutex> L(TablesMu);
  auto It = Models.find(Spec.key());
  if (It == Models.end())
    It = Models.emplace(Spec.key(), Spec.build()).first;
  return It->second;
}

ServiceResponse CompileService::compileOne(const ServiceRequest &R,
                                           double QueueMs) {
  ServiceResponse Resp;
  Resp.Id = R.Id;
  Resp.QueueMs = QueueMs;
  auto Begin = std::chrono::steady_clock::now();
  auto Finish = [&](ServiceResponse &Out) -> ServiceResponse & {
    Out.CompileMs = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - Begin)
                        .count();
    return Out;
  };

  Trace T(R.Id.empty() ? "request" : R.Id);
  std::string Err;
  if (!parseTrace(R.Source, T, Err)) {
    Resp.Status = ServiceResponse::StatusKind::Error;
    Resp.Error = "parse error: " + Err;
    return Finish(Resp);
  }

  const MachineModel &M = modelFor(R.Machine);

  URSAOptions UO;
  UO.Order = R.Order == "fus"          ? PhaseOrdering::FUsFirst
             : R.Order == "integrated" ? PhaseOrdering::Integrated
                                       : PhaseOrdering::RegistersFirst;
  if (!R.Verify.empty())
    UO.Verify = parseVerifyLevel(R.Verify.c_str());
  UO.GuaranteedFit = R.GuaranteedFit;
  UO.Threads = R.Threads ? R.Threads : 1;
  if (R.Incremental >= 0)
    UO.IncrementalMeasure = R.Incremental != 0;
  if (R.MaxTotalRounds)
    UO.MaxTotalRounds = R.MaxTotalRounds;
  UO.SharedCache = cacheFor(R.Machine.key());

  // Budget: the request's own budget, the server default, and whatever is
  // left of the deadline after queueing — whichever binds first.
  unsigned Budget = R.TimeBudgetMs ? R.TimeBudgetMs : Config.DefaultTimeBudgetMs;
  if (R.DeadlineMs) {
    unsigned Left = unsigned(std::max(1.0, double(R.DeadlineMs) - QueueMs));
    Budget = Budget ? std::min(Budget, Left) : Left;
  }
  UO.TimeBudgetMs = Budget;

  FaultInjector Stall(FaultKind::StallRound);
  if (Config.EnableTestHooks && R.StallMs) {
    Stall.withStallMs(R.StallMs);
    UO.Faults = &Stall;
  }

  URSACompileResult CR = compileURSA(T, M, UO);

  double ElapsedMs = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - Begin)
                         .count();
  if (R.DeadlineMs && CR.BudgetExhausted &&
      QueueMs + ElapsedMs >= double(R.DeadlineMs)) {
    Resp.Status = ServiceResponse::StatusKind::Deadline;
    Resp.Error = "deadline of " + std::to_string(R.DeadlineMs) +
                 "ms expired during compilation";
    return Finish(Resp);
  }
  if (!CR.Compile.Ok) {
    Resp.Status = ServiceResponse::StatusKind::Error;
    Resp.Error = CR.Compile.Error.empty() ? "compilation failed"
                                          : CR.Compile.Error;
    for (const Diag &D : CR.Diags) {
      Resp.Error += '\n';
      Resp.Error += D.str();
    }
    return Finish(Resp);
  }

  Resp.Status = ServiceResponse::StatusKind::Ok;
  Resp.Text = formatCompileText("ursa", M, CR.Compile);
  Resp.Cycles = CR.Compile.Cycles;
  Resp.SpillOps = CR.Compile.SpillOps;
  Resp.WithinLimits = CR.AllocWithinLimits;
  Resp.BudgetExhausted = CR.BudgetExhausted;
  return Finish(Resp);
}

ServiceCounters CompileService::counters() const {
  std::lock_guard<std::mutex> L(Mu);
  return C;
}

std::string CompileService::reportJSON() const {
  ServiceCounters S = counters();
  obs::JsonWriter W;
  W.beginObject();
  W.kv("schema", "ursa.service_report.v1");
  W.key("config").beginObject();
  W.kv("workers", Config.Workers);
  W.kv("queue_depth", Config.QueueDepth);
  W.kv("cache_enabled", Config.CacheEnabled);
  W.kv("cache_size", Config.CacheSize);
  W.kv("default_time_budget_ms", Config.DefaultTimeBudgetMs);
  W.kv("max_request_bytes", Config.MaxRequestBytes);
  W.endObject();
  W.key("requests").beginObject();
  W.kv("received", S.Received);
  W.kv("completed", S.Completed);
  W.kv("errors", S.Errors);
  W.kv("shed", S.Shed);
  W.kv("deadline_expired", S.DeadlineExpired);
  W.kv("in_flight", S.InFlight);
  W.endObject();
  W.key("queue").beginObject();
  W.kv("depth", S.QueueDepthNow);
  W.kv("depth_peak", S.QueueDepthPeak);
  W.endObject();
  W.key("latency").beginObject();
  W.kv("total_queue_ms", S.TotalQueueMs);
  W.kv("total_compile_ms", S.TotalCompileMs);
  W.kv("max_compile_ms", S.MaxCompileMs);
  uint64_t Done = S.Completed + S.Errors + S.DeadlineExpired;
  W.kv("avg_compile_ms", Done ? S.TotalCompileMs / double(Done) : 0.0);
  W.endObject();
  {
    std::lock_guard<std::mutex> L(TablesMu);
    W.key("caches").beginArray();
    for (const auto &[Key, Cache] : Caches) {
      W.beginObject();
      W.kv("machine", Key);
      W.kv("entries", uint64_t(Cache->size()));
      W.kv("capacity", Config.CacheSize);
      W.endObject();
    }
    W.endArray();
  }
  // The process-wide measurement-cache stats (hits/misses/evictions)
  // cover every driver run in this server, which is exactly the
  // cross-request reuse story the report is about.
  W.key("stats").beginObject();
  for (const obs::StatValue &SV : obs::snapshotStats(/*NonZeroOnly=*/true))
    if (SV.Name.rfind("ursa.driver.measure_cache", 0) == 0 ||
        SV.Name.rfind("ursa.driver.incremental", 0) == 0)
      W.kv(SV.Name, SV.Value);
  W.endObject();
  W.endObject();
  return W.str();
}
