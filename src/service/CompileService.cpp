//===- service/CompileService.cpp - Persistent compile service ------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/CompileService.h"

#include "ir/Parser.h"
#include "obs/Histogram.h"
#include "obs/Json.h"
#include "obs/Stats.h"
#include "obs/Tracer.h"
#include "ursa/Compiler.h"
#include "ursa/FaultInjector.h"
#include "ursa/PipelineVerifier.h"
#include "ursa/Report.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>

#include <dirent.h>

using namespace ursa;
using namespace ursa::service;

static unsigned envUnsigned(const char *Name, unsigned Default) {
  const char *S = std::getenv(Name);
  if (!S || !*S)
    return Default;
  long V = std::atol(S);
  return V >= 0 ? unsigned(V) : Default;
}

ServiceConfig ServiceConfig::fromEnv() {
  ServiceConfig C;
  C.Workers = std::max(1u, envUnsigned("URSA_SERVICE_WORKERS", C.Workers));
  C.QueueDepth =
      std::max(1u, envUnsigned("URSA_SERVICE_QUEUE_DEPTH", C.QueueDepth));
  C.CacheSize = envUnsigned("URSA_SERVICE_CACHE_SIZE", C.CacheSize);
  C.CacheEnabled = envUnsigned("URSA_SERVICE_CACHE", 1) != 0;
  C.DefaultTimeBudgetMs =
      envUnsigned("URSA_SERVICE_TIME_BUDGET_MS", C.DefaultTimeBudgetMs);
  C.MaxRequestBytes =
      envUnsigned("URSA_SERVICE_MAX_REQUEST_BYTES", C.MaxRequestBytes);
  C.EnableTestHooks = envUnsigned("URSA_SERVICE_TEST_HOOKS", 0) != 0;
  if (const char *Dir = std::getenv("URSA_SERVICE_CACHE_DIR"); Dir && *Dir)
    C.CacheDir = Dir;
  C.SnapshotEvery =
      envUnsigned("URSA_SERVICE_SNAPSHOT_EVERY", C.SnapshotEvery);
  C.SnapshotOnStop = envUnsigned("URSA_SERVICE_SNAPSHOT_ON_STOP", 1) != 0;
  C.IdleTimeoutMs = envUnsigned("URSA_SERVICE_IDLE_TIMEOUT_MS", 0);
  C.IoTimeoutMs = envUnsigned("URSA_SERVICE_IO_TIMEOUT_MS", 0);
  C.DegradeEnabled = envUnsigned("URSA_SERVICE_DEGRADE", 1) != 0;
  C.DegradedTimeBudgetMs =
      envUnsigned("URSA_SERVICE_DEGRADED_BUDGET_MS", C.DegradedTimeBudgetMs);
  C.FlightSize = envUnsigned("URSA_SERVICE_FLIGHT_SIZE", C.FlightSize);
  C.FlightSlowN = envUnsigned("URSA_SERVICE_FLIGHT_SLOW", C.FlightSlowN);
  if (const char *P = std::getenv("URSA_FLIGHT_DUMP"); P && *P)
    C.FlightDumpPath = P;
  return C;
}

unsigned DegradeGovernor::update(double Occupancy, uint64_t NowUs) {
  Ewma = 0.8 * Ewma + 0.2 * Occupancy;
  if (!Enabled)
    return Tier;
  unsigned T = Tier;
  while (T < 3 && Ewma >= UpThreshold[T])
    ++T;
  while (T > 0 && Ewma < UpThreshold[T - 1] - Hysteresis)
    --T;
  if (T != Tier) {
    Tier = T;
    ++Transitions;
    ++TierEntries[T];
    LastChangeUs = NowUs;
  }
  return Tier;
}

URSA_STAT(StatDegradeTier, "ursa.service.degrade_tier",
          "active graceful-degradation tier (gauge, 0..3)");
URSA_STAT(StatDegradeTransitions, "ursa.service.degrade_transitions",
          "degradation tier changes");
URSA_STAT(StatDegradedVerifyOff, "ursa.service.degraded_verify_off",
          "compiles run with verification shed (tier >= 1)");
URSA_STAT(StatDegradedIncrementalOff,
          "ursa.service.degraded_incremental_off",
          "compiles run with incremental warm paths shed (tier >= 2)");
URSA_STAT(StatDegradedBudgetClamped,
          "ursa.service.degraded_budget_clamped",
          "compiles run with the degraded budget clamp (tier >= 3)");
URSA_STAT(StatCacheWarmLoaded, "ursa.service.cache_warm_loaded",
          "cache entries restored warm from disk at startup");
URSA_STAT(StatDegradeEnterT1, "ursa.service.degrade_enter_t1",
          "times tier 1 became the active degradation tier");
URSA_STAT(StatDegradeEnterT2, "ursa.service.degrade_enter_t2",
          "times tier 2 became the active degradation tier");
URSA_STAT(StatDegradeEnterT3, "ursa.service.degrade_enter_t3",
          "times tier 3 became the active degradation tier");
URSA_STAT(StatDegradeLastChangeUs, "ursa.service.degrade_last_change_us",
          "monotonic timestamp of the last tier transition (gauge)");

// Latency histograms: end-to-end and per stage, in microseconds. The
// stage histograms sum the request's URSA_SPAN timeline (SpanCollector),
// so they cover the same events the Chrome trace would show.
URSA_HISTO(HistE2EUs, "ursa.service.e2e_us",
           "end-to-end request latency, queue wait included");
URSA_HISTO(HistQueueUs, "ursa.service.queue_us",
           "time a request waited queued before a worker took it");
URSA_HISTO(HistCompileUs, "ursa.service.compile_us",
           "time a request spent inside the compiler");
URSA_HISTO(HistParseUs, "ursa.service.stage.parse_us",
           "request-parse stage time");
URSA_HISTO(HistMeasureUs, "ursa.service.stage.measure_us",
           "measurement stage time (full builds + delta closures)");
URSA_HISTO(HistAllocateUs, "ursa.service.stage.allocate_us",
           "allocation-rounds stage time");
URSA_HISTO(HistEmitUs, "ursa.service.stage.emit_us",
           "final schedule + emission stage time");

CompileService::CompileService(const ServiceConfig &Cfg)
    : Config(Cfg), Governor(Cfg.DegradeEnabled),
      Flight(Cfg.FlightSize, Cfg.FlightSlowN),
      StartUs(obs::monotonicNowUs()) {
  Pool = std::make_unique<ThreadPool>(std::max(1u, Config.Workers));
  // The dispatcher participates in the parallelFor, so this produces
  // exactly Config.Workers concurrent workerLoop executions and joins
  // them all before the dispatcher thread exits.
  Dispatcher = std::thread([this] {
    Pool->parallelFor(std::max(1u, Config.Workers),
                      [this](size_t) { workerLoop(); });
  });
  warmLoadPersistedCaches();
}

void CompileService::warmLoadPersistedCaches() {
  if (Config.CacheDir.empty() || !Config.CacheEnabled)
    return;
  DIR *D = ::opendir(Config.CacheDir.c_str());
  if (!D)
    return; // no directory yet: a cold start
  std::set<std::string> Seen;
  while (struct dirent *E = ::readdir(D)) {
    std::string Name = E->d_name;
    auto EndsWith = [&](const char *Suffix) {
      size_t N = std::strlen(Suffix);
      return Name.size() > N && Name.compare(Name.size() - N, N, Suffix) == 0;
    };
    if (!EndsWith(".ursacache") && !EndsWith(".journal"))
      continue;
    StatusOr<std::string> KeyOr =
        CachePersister::readImageKey(Config.CacheDir + "/" + Name);
    if (!KeyOr.isOk()) {
      std::fprintf(stderr, "warning [cache_image]: %s\n",
                   KeyOr.status().message().c_str());
      continue;
    }
    MachineSpec Spec;
    if (!MachineSpec::fromKey(*KeyOr, Spec)) {
      std::fprintf(stderr,
                   "warning [cache_image]: %s: unrecognized machine key "
                   "'%s'; leaving cold\n",
                   Name.c_str(), KeyOr->c_str());
      continue;
    }
    if (!Seen.insert(*KeyOr).second)
      continue; // the snapshot already warmed this key's cache
    (void)cacheFor(Spec); // creates, loads warm, wires the journal observer
  }
  ::closedir(D);
}

CompileService::~CompileService() { stop(/*Drain=*/true); }

void CompileService::stop(bool Drain) {
  std::deque<Job> ToShed;
  {
    std::lock_guard<std::mutex> L(Mu);
    Stopping = true;
    if (!Drain) {
      ToShed.swap(Queue);
      C.Shed += ToShed.size();
      C.QueueDepthNow = 0;
    }
    Quit = true;
    JobReady.notify_all();
  }
  for (Job &J : ToShed) {
    ServiceResponse Resp;
    Resp.Status = ServiceResponse::StatusKind::Shed;
    Resp.Id = J.R.Id;
    Resp.TraceId = J.R.TraceId;
    Resp.Error = "server shutting down";
    recordShed(J.R, Resp.Error);
    J.Done(Resp);
  }
  if (Dispatcher.joinable())
    Dispatcher.join();

  // Drain-time snapshots: with the workers quiesced every built state is
  // recorded, so the next start replays nothing from the journal.
  if (Config.SnapshotOnStop) {
    std::lock_guard<std::mutex> L(TablesMu);
    for (auto &[Key, P] : Persisters)
      (void)P->snapshot();
  }

  // Post-mortem flight dump: URSA_FLIGHT_DUMP names a file to receive
  // the recorder ring, so a slow request can be reconstructed after the
  // process is gone. Written once, with the workers already joined.
  if (!Config.FlightDumpPath.empty() &&
      !FlightDumped.exchange(true, std::memory_order_acq_rel)) {
    std::string Doc = Flight.dumpJson();
    if (FILE *F = std::fopen(Config.FlightDumpPath.c_str(), "w")) {
      std::fwrite(Doc.data(), 1, Doc.size(), F);
      std::fputc('\n', F);
      std::fclose(F);
    } else {
      std::fprintf(stderr, "warning [flight]: cannot write %s\n",
                   Config.FlightDumpPath.c_str());
    }
  }
}

void CompileService::updateLoadLocked() {
  // EWMA over queue occupancy, advanced on every enqueue/dequeue; the
  // governor owns the thresholds, the hysteresis, and the flap
  // accounting (per-tier entry counters + last-transition stamp).
  double Occ = double(Queue.size()) / double(std::max(1u, Config.QueueDepth));
  uint64_t NowUs = obs::monotonicNowUs();
  unsigned Before = Governor.tier();
  unsigned T = Governor.update(Occ, NowUs);
  if (T != Before) {
    DegradeTier.store(T, std::memory_order_relaxed);
    ++C.DegradeTransitions;
    StatDegradeTransitions.add();
    StatDegradeTier.set(T);
    StatDegradeLastChangeUs.set(NowUs);
    if (T == 1)
      StatDegradeEnterT1.add();
    else if (T == 2)
      StatDegradeEnterT2.add();
    else if (T == 3)
      StatDegradeEnterT3.add();
  }
}

bool CompileService::handle(const ServiceRequest &R, ResponseFn Done) {
  switch (R.Op) {
  case ServiceRequest::OpKind::Compile:
    submit(R, std::move(Done));
    return true;
  case ServiceRequest::OpKind::Report: {
    ServiceResponse Resp;
    Resp.Status = ServiceResponse::StatusKind::Report;
    Resp.Id = R.Id;
    Resp.TraceId = R.TraceId;
    Resp.Text = reportJSON();
    Done(Resp);
    return true;
  }
  case ServiceRequest::OpKind::Stats: {
    ServiceResponse Resp;
    Resp.Status = ServiceResponse::StatusKind::Stats;
    Resp.Id = R.Id;
    Resp.TraceId = R.TraceId;
    Resp.Text = R.StatsFormat == "prometheus" ? statsPrometheus()
                                              : statsJSON(R.IncludeFlight);
    Done(Resp);
    return true;
  }
  case ServiceRequest::OpKind::Health: {
    ServiceResponse Resp;
    Resp.Status = ServiceResponse::StatusKind::Stats;
    Resp.Id = R.Id;
    Resp.TraceId = R.TraceId;
    Resp.Text = healthJSON();
    Done(Resp);
    return true;
  }
  case ServiceRequest::OpKind::Ping: {
    ServiceResponse Resp;
    Resp.Status = ServiceResponse::StatusKind::Ok;
    Resp.Id = R.Id;
    Resp.TraceId = R.TraceId;
    Done(Resp);
    return true;
  }
  case ServiceRequest::OpKind::Shutdown: {
    ServiceResponse Resp;
    Resp.Status = ServiceResponse::StatusKind::Bye;
    Resp.Id = R.Id;
    Resp.TraceId = R.TraceId;
    Done(Resp);
    return false;
  }
  }
  return true;
}

void CompileService::submit(ServiceRequest R, ResponseFn Done) {
  bool WasStopping;
  {
    std::lock_guard<std::mutex> L(Mu);
    ++C.Received;
    if (!Stopping && Queue.size() < Config.QueueDepth) {
      Queue.push_back({std::move(R), std::move(Done),
                       std::chrono::steady_clock::now(),
                       obs::monotonicNowUs()});
      C.QueueDepthNow = Queue.size();
      C.QueueDepthPeak = std::max(C.QueueDepthPeak, uint64_t(Queue.size()));
      updateLoadLocked();
      JobReady.notify_one();
      return;
    }
    ++C.Shed;
    WasStopping = Stopping;
  }
  ServiceResponse Resp;
  Resp.Status = ServiceResponse::StatusKind::Shed;
  Resp.Id = R.Id;
  Resp.TraceId = R.TraceId;
  Resp.Error = WasStopping ? "server shutting down" : "queue full";
  recordShed(R, Resp.Error);
  Done(Resp);
}

/// Flight-records a request refused at admission (no worker ever saw it).
void CompileService::recordShed(const ServiceRequest &R,
                                const std::string &Why) {
  RequestRecord Rec;
  Rec.Id = R.Id;
  Rec.TraceId = R.TraceId.empty() ? R.Id : R.TraceId;
  Rec.Machine = R.Machine.key();
  Rec.Status = "shed";
  Rec.Error = Why;
  Rec.EnqueuedUs = obs::monotonicNowUs();
  Rec.DegradeTier = DegradeTier.load(std::memory_order_relaxed);
  Flight.record(std::move(Rec));
}

void CompileService::workerLoop() {
  for (;;) {
    Job J;
    double QueueMs = 0;
    {
      std::unique_lock<std::mutex> L(Mu);
      JobReady.wait(L, [this] { return Quit || !Queue.empty(); });
      if (Queue.empty())
        return; // Quit and drained
      J = std::move(Queue.front());
      Queue.pop_front();
      C.QueueDepthNow = Queue.size();
      updateLoadLocked();
      ++C.InFlight;
      QueueMs = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - J.Enqueued)
                    .count();
      C.TotalQueueMs += QueueMs;
    }

    RequestRecord Rec;
    Rec.Id = J.R.Id;
    Rec.TraceId = J.R.TraceId.empty() ? J.R.Id : J.R.TraceId;
    Rec.Machine = J.R.Machine.key();
    Rec.EnqueuedUs = J.EnqueuedUs;
    Rec.QueueMs = QueueMs;
    Rec.DegradeTier = DegradeTier.load(std::memory_order_relaxed);

    ServiceResponse Resp;
    if (J.R.DeadlineMs && QueueMs >= double(J.R.DeadlineMs)) {
      // Expired while queued: answer without burning a compile on it.
      Resp.Status = ServiceResponse::StatusKind::Deadline;
      Resp.Id = J.R.Id;
      Resp.Error = "deadline of " + std::to_string(J.R.DeadlineMs) +
                   "ms expired while queued";
      Resp.QueueMs = QueueMs;
    } else {
      Resp = compileOne(J.R, QueueMs, Rec);
    }
    Resp.TraceId = J.R.TraceId;

    Rec.Status = Resp.Status == ServiceResponse::StatusKind::Ok ? "ok"
                 : Resp.Status == ServiceResponse::StatusKind::Deadline
                     ? "deadline"
                     : "error";
    Rec.Error = Resp.Error;
    Rec.CompileMs = Resp.CompileMs;
    Rec.TotalMs = QueueMs + Resp.CompileMs;
    Rec.BudgetExhausted = Resp.BudgetExhausted;

    HistE2EUs.recordMs(Rec.TotalMs);
    HistQueueUs.recordMs(QueueMs);
    HistCompileUs.recordMs(Resp.CompileMs);
    HistParseUs.recordMs(Rec.ParseMs);
    Flight.record(std::move(Rec));

    {
      std::lock_guard<std::mutex> L(Mu);
      --C.InFlight;
      C.TotalCompileMs += Resp.CompileMs;
      C.MaxCompileMs = std::max(C.MaxCompileMs, Resp.CompileMs);
      switch (Resp.Status) {
      case ServiceResponse::StatusKind::Ok:
        ++C.Completed;
        break;
      case ServiceResponse::StatusKind::Deadline:
        ++C.DeadlineExpired;
        break;
      default:
        ++C.Errors;
        break;
      }
    }
    J.Done(Resp);
  }
}

MeasurementCache *CompileService::cacheFor(const MachineSpec &Spec) {
  const std::string Key = Spec.key();
  std::lock_guard<std::mutex> L(TablesMu);
  std::unique_ptr<MeasurementCache> &Slot = Caches[Key];
  if (Slot)
    return Slot.get();
  Slot = std::make_unique<MeasurementCache>(Config.CacheEnabled,
                                            std::max(1u, Config.CacheSize));
  if (Config.CacheDir.empty() || !Config.CacheEnabled)
    return Slot.get();

  // First touch of this machine key with persistence on: reload whatever
  // a previous server left behind, then journal every state this one
  // builds. Load problems are warnings (a cold start), never failures.
  auto P = std::make_unique<CachePersister>(Config.CacheDir, Key,
                                            MeasureOptions{});
  Status LoadSt = P->load(*Slot, modelForLocked(Spec));
  for (const Diag &D : LoadSt.diags())
    std::fprintf(stderr, "%s\n", D.str().c_str());
  StatCacheWarmLoaded.add(P->loadedEntries());

  CachePersister *Raw = P.get();
  const unsigned Every = Config.SnapshotEvery;
  Slot->setBuildObserver([Raw, Every](uint64_t Fp, const DependenceDAG &D) {
    Raw->append(Fp, D);
    if (Every && Raw->dirtyEntries() >= Every)
      (void)Raw->snapshot();
  });
  Persisters[Key] = std::move(P);
  return Slot.get();
}

const MachineModel &CompileService::modelForLocked(const MachineSpec &Spec) {
  auto It = Models.find(Spec.key());
  if (It == Models.end())
    It = Models.emplace(Spec.key(), Spec.build()).first;
  return It->second;
}

const MachineModel &CompileService::modelFor(const MachineSpec &Spec) {
  std::lock_guard<std::mutex> L(TablesMu);
  return modelForLocked(Spec);
}

ServiceResponse CompileService::compileOne(const ServiceRequest &R,
                                           double QueueMs,
                                           RequestRecord &Rec) {
  ServiceResponse Resp;
  Resp.Id = R.Id;
  Resp.QueueMs = QueueMs;
  auto Begin = std::chrono::steady_clock::now();

  // Request-scoped tracing: every URSA_SPAN closing on this thread for
  // the duration of the compile (parse, measure, allocation rounds,
  // emission) lands in this collector, tagged with the request's trace
  // id — that is the flight recorder's per-stage timeline, and when
  // Chrome tracing is on the same id rides along as a span argument.
  obs::SpanCollector Coll(Rec.TraceId);
  obs::CollectorScope InRequest(&Coll);
  {
    uint64_t H, Miss;
    MeasurementCache::takeThreadTally(H, Miss); // drop stale carry-over
  }

  auto Finish = [&](ServiceResponse &Out) -> ServiceResponse & {
    Out.CompileMs = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - Begin)
                        .count();
    MeasurementCache::takeThreadTally(Rec.CacheHits, Rec.CacheMisses);
    Rec.ParseMs = double(Coll.totalUs("service.parse")) / 1000.0;
    uint64_t MeasureUs = Coll.totalUs("ursa.measure") +
                         Coll.totalUs("ursa.measure.delta");
    uint64_t AllocUs = Coll.totalUs("ursa.allocate");
    uint64_t EmitUs = Coll.totalUs("sched.finish_and_emit");
    HistMeasureUs.record(MeasureUs);
    HistAllocateUs.record(AllocUs);
    HistEmitUs.record(EmitUs);
    Rec.Spans.reserve(Coll.stages().size());
    for (const obs::SpanCollector::Stage &S : Coll.stages())
      Rec.Spans.push_back({S.Name, S.Cat, S.StartUs, S.DurUs});
    Rec.SpansDropped = Coll.dropped();
    return Out;
  };

  Trace T(R.Id.empty() ? "request" : R.Id);
  bool Parsed;
  {
    URSA_SPAN(ParseSpan, "service.parse", "service");
    std::string Err;
    Parsed = parseTrace(R.Source, T, Err);
    if (!Parsed) {
      Resp.Status = ServiceResponse::StatusKind::Error;
      Resp.Error = "parse error: " + Err;
    }
  }
  if (!Parsed)
    return Finish(Resp);

  const MachineModel &M = modelFor(R.Machine);

  URSAOptions UO;
  UO.Order = R.Order == "fus"          ? PhaseOrdering::FUsFirst
             : R.Order == "integrated" ? PhaseOrdering::Integrated
                                       : PhaseOrdering::RegistersFirst;
  if (!R.Verify.empty())
    UO.Verify = parseVerifyLevel(R.Verify.c_str());
  UO.GuaranteedFit = R.GuaranteedFit;
  UO.Threads = R.Threads ? R.Threads : 1;
  if (R.Incremental >= 0)
    UO.IncrementalMeasure = R.Incremental != 0;
  if (R.MaxTotalRounds)
    UO.MaxTotalRounds = R.MaxTotalRounds;
  if (R.Beam)
    UO.BeamWidth = R.Beam;
  UO.Portfolio = R.Portfolio;
  UO.SharedCache = cacheFor(R.Machine);

  // Budget: the request's own budget, the server default, and whatever is
  // left of the deadline after queueing — whichever binds first.
  unsigned Budget = R.TimeBudgetMs ? R.TimeBudgetMs : Config.DefaultTimeBudgetMs;
  if (R.DeadlineMs) {
    unsigned Left = unsigned(std::max(1.0, double(R.DeadlineMs) - QueueMs));
    Budget = Budget ? std::min(Budget, Left) : Left;
  }

  // Graceful degradation: shed work before requests. Each tier trades a
  // little per-request cost for headroom; only the queue-full path (the
  // de-facto tier 4) refuses anyone.
  if (Config.DegradeEnabled) {
    unsigned Tier = DegradeTier.load(std::memory_order_relaxed);
    if (Tier >= 1) {
      UO.Verify = VerifyLevel::None;
      StatDegradedVerifyOff.add();
    }
    if (Tier >= 2) {
      UO.IncrementalMeasure = false;
      // A pressured server also stops paying for wider-than-greedy
      // searches: beam/portfolio multiply per-request compile cost, which
      // is exactly the wrong trade under load.
      UO.BeamWidth = 1;
      UO.Portfolio = false;
      StatDegradedIncrementalOff.add();
    }
    if (Tier >= 3) {
      Budget = Budget ? std::min(Budget, Config.DegradedTimeBudgetMs)
                      : Config.DegradedTimeBudgetMs;
      StatDegradedBudgetClamped.add();
    }
  }
  UO.TimeBudgetMs = Budget;

  FaultInjector Stall(FaultKind::StallRound);
  if (Config.EnableTestHooks && R.StallMs) {
    Stall.withStallMs(R.StallMs);
    UO.Faults = &Stall;
  }

  URSACompileResult CR = compileURSA(T, M, UO);
  Rec.Rounds = CR.AllocRounds;

  double ElapsedMs = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - Begin)
                         .count();
  if (R.DeadlineMs && CR.BudgetExhausted &&
      QueueMs + ElapsedMs >= double(R.DeadlineMs)) {
    Resp.Status = ServiceResponse::StatusKind::Deadline;
    Resp.Error = "deadline of " + std::to_string(R.DeadlineMs) +
                 "ms expired during compilation";
    return Finish(Resp);
  }
  if (!CR.Compile.Ok) {
    Resp.Status = ServiceResponse::StatusKind::Error;
    Resp.Error = CR.Compile.Error.empty() ? "compilation failed"
                                          : CR.Compile.Error;
    for (const Diag &D : CR.Diags) {
      Resp.Error += '\n';
      Resp.Error += D.str();
    }
    return Finish(Resp);
  }

  Resp.Status = ServiceResponse::StatusKind::Ok;
  Resp.Text = formatCompileText("ursa", M, CR.Compile);
  Resp.Cycles = CR.Compile.Cycles;
  Resp.SpillOps = CR.Compile.SpillOps;
  Resp.WithinLimits = CR.AllocWithinLimits;
  Resp.BudgetExhausted = CR.BudgetExhausted;
  return Finish(Resp);
}

ServiceCounters CompileService::counters() const {
  std::lock_guard<std::mutex> L(Mu);
  ServiceCounters Out = C;
  Out.DegradeTier = DegradeTier.load(std::memory_order_relaxed);
  Out.LoadEwma = Governor.loadEwma();
  for (unsigned T = 0; T != 4; ++T)
    Out.TierEntries[T] = Governor.entries(T);
  Out.LastTierChangeUs = Governor.lastChangeUs();
  return Out;
}

std::string CompileService::reportJSON() const {
  ServiceCounters S = counters();
  obs::JsonWriter W;
  W.beginObject();
  W.kv("schema", "ursa.service_report.v1");
  W.key("config").beginObject();
  W.kv("workers", Config.Workers);
  W.kv("queue_depth", Config.QueueDepth);
  W.kv("cache_enabled", Config.CacheEnabled);
  W.kv("cache_size", Config.CacheSize);
  W.kv("default_time_budget_ms", Config.DefaultTimeBudgetMs);
  W.kv("max_request_bytes", Config.MaxRequestBytes);
  W.kv("cache_dir", Config.CacheDir);
  W.kv("snapshot_every", Config.SnapshotEvery);
  W.kv("idle_timeout_ms", Config.IdleTimeoutMs);
  W.kv("io_timeout_ms", Config.IoTimeoutMs);
  W.kv("degrade_enabled", Config.DegradeEnabled);
  W.kv("degraded_time_budget_ms", Config.DegradedTimeBudgetMs);
  W.kv("flight_size", Config.FlightSize);
  W.kv("flight_slow_n", Config.FlightSlowN);
  W.endObject();
  W.key("requests").beginObject();
  W.kv("received", S.Received);
  W.kv("completed", S.Completed);
  W.kv("errors", S.Errors);
  W.kv("shed", S.Shed);
  W.kv("deadline_expired", S.DeadlineExpired);
  W.kv("in_flight", S.InFlight);
  W.endObject();
  W.key("queue").beginObject();
  W.kv("depth", S.QueueDepthNow);
  W.kv("depth_peak", S.QueueDepthPeak);
  W.endObject();
  W.key("latency").beginObject();
  W.kv("total_queue_ms", S.TotalQueueMs);
  W.kv("total_compile_ms", S.TotalCompileMs);
  W.kv("max_compile_ms", S.MaxCompileMs);
  uint64_t Done = S.Completed + S.Errors + S.DeadlineExpired;
  W.kv("avg_compile_ms", Done ? S.TotalCompileMs / double(Done) : 0.0);
  W.endObject();
  W.key("degradation").beginObject();
  W.kv("enabled", Config.DegradeEnabled);
  W.kv("tier", S.DegradeTier);
  W.kv("load_ewma", S.LoadEwma);
  W.kv("transitions", S.DegradeTransitions);
  W.key("tier_entries").beginArray();
  for (unsigned T = 0; T != 4; ++T)
    W.value(S.TierEntries[T]);
  W.endArray();
  W.kv("last_change_us", S.LastTierChangeUs);
  W.endObject();
  {
    std::lock_guard<std::mutex> L(TablesMu);
    W.key("caches").beginArray();
    for (const auto &[Key, Cache] : Caches) {
      W.beginObject();
      W.kv("machine", Key);
      W.kv("entries", uint64_t(Cache->size()));
      W.kv("capacity", Config.CacheSize);
      W.endObject();
    }
    W.endArray();
    W.key("persistence").beginObject();
    W.kv("enabled", !Config.CacheDir.empty() && Config.CacheEnabled);
    W.key("images").beginArray();
    for (const auto &[Key, P] : Persisters) {
      W.beginObject();
      W.kv("machine", Key);
      W.kv("entries", uint64_t(P->entries()));
      W.kv("loaded_warm", uint64_t(P->loadedEntries()));
      W.kv("journal_dirty", uint64_t(P->dirtyEntries()));
      W.kv("snapshot_path", P->snapshotPath());
      W.endObject();
    }
    W.endArray();
    W.endObject();
  }
  // The process-wide stats cover every driver run in this server: the
  // measurement-cache reuse story plus the robustness layer (persistence,
  // degradation, transport retries).
  W.key("stats").beginObject();
  for (const obs::StatValue &SV : obs::snapshotStats(/*NonZeroOnly=*/true))
    if (SV.Name.rfind("ursa.driver.measure_cache", 0) == 0 ||
        SV.Name.rfind("ursa.driver.incremental", 0) == 0 ||
        SV.Name.rfind("ursa.cache_image", 0) == 0 ||
        SV.Name.rfind("ursa.service", 0) == 0 ||
        SV.Name.rfind("ursa.client", 0) == 0)
      W.kv(SV.Name, SV.Value);
  W.endObject();
  // Latency distributions, summarized (the stats verb has full buckets).
  W.key("histograms").beginObject();
  for (const obs::HistogramSnapshot &H :
       obs::snapshotHistograms(/*NonZeroOnly=*/true)) {
    W.key(H.Name).beginObject();
    W.kv("count", H.Count);
    W.kv("p50_us", H.percentile(0.50));
    W.kv("p90_us", H.percentile(0.90));
    W.kv("p99_us", H.percentile(0.99));
    W.kv("max_us", H.Max);
    W.endObject();
  }
  W.endObject();
  W.endObject();
  return W.str();
}

/// One histogram in the stats document: summary percentiles plus the
/// non-empty buckets (upper edges in microseconds), enough to re-merge
/// or re-bin downstream.
static void writeHistogramJson(obs::JsonWriter &W,
                               const obs::HistogramSnapshot &H) {
  W.beginObject();
  W.kv("name", H.Name);
  W.kv("desc", H.Desc);
  W.kv("count", H.Count);
  W.kv("sum_us", H.Sum);
  W.kv("max_us", H.Max);
  W.kv("p50_us", H.percentile(0.50));
  W.kv("p90_us", H.percentile(0.90));
  W.kv("p99_us", H.percentile(0.99));
  W.key("buckets").beginArray();
  for (unsigned I = 0; I != obs::Histogram::NumBuckets; ++I) {
    if (!H.Buckets[I])
      continue;
    W.beginObject();
    W.kv("le_us", obs::Histogram::bucketHi(I));
    W.kv("count", H.Buckets[I]);
    W.endObject();
  }
  W.endArray();
  W.endObject();
}

std::string CompileService::statsJSON(bool IncludeFlight) const {
  ServiceCounters S = counters();
  uint64_t NowUs = obs::monotonicNowUs();
  obs::JsonWriter W;
  W.beginObject();
  W.kv("schema", "ursa.service_stats.v1");
  W.kv("now_us", NowUs);
  W.kv("uptime_s", double(NowUs - StartUs) / 1e6);
  W.kv("workers", Config.Workers);
  W.key("requests").beginObject();
  W.kv("received", S.Received);
  W.kv("completed", S.Completed);
  W.kv("errors", S.Errors);
  W.kv("shed", S.Shed);
  W.kv("deadline_expired", S.DeadlineExpired);
  W.kv("in_flight", S.InFlight);
  W.endObject();
  W.key("queue").beginObject();
  W.kv("depth", S.QueueDepthNow);
  W.kv("depth_peak", S.QueueDepthPeak);
  W.kv("capacity", Config.QueueDepth);
  W.endObject();
  W.key("degradation").beginObject();
  W.kv("enabled", Config.DegradeEnabled);
  W.kv("tier", S.DegradeTier);
  W.kv("load_ewma", S.LoadEwma);
  W.kv("transitions", S.DegradeTransitions);
  W.key("tier_entries").beginArray();
  for (unsigned T = 0; T != 4; ++T)
    W.value(S.TierEntries[T]);
  W.endArray();
  W.kv("last_change_us", S.LastTierChangeUs);
  W.kv("last_change_age_s",
       S.LastTierChangeUs ? double(NowUs - S.LastTierChangeUs) / 1e6 : 0.0);
  W.endObject();
  W.key("counters").beginObject();
  for (const obs::StatValue &SV : obs::snapshotStats(/*NonZeroOnly=*/true))
    W.kv(SV.Name, SV.Value);
  W.endObject();
  W.key("histograms").beginArray();
  for (const obs::HistogramSnapshot &H :
       obs::snapshotHistograms(/*NonZeroOnly=*/true))
    writeHistogramJson(W, H);
  W.endArray();
  if (IncludeFlight) {
    W.key("flight");
    Flight.writeJson(W);
  }
  W.endObject();
  return W.str();
}

/// Prometheus metric names allow [a-zA-Z0-9_:]; our dotted stat names
/// map onto it by replacing everything else with '_'.
static std::string promName(std::string_view Name) {
  std::string Out(Name);
  for (char &Ch : Out)
    if (!(Ch >= 'a' && Ch <= 'z') && !(Ch >= 'A' && Ch <= 'Z') &&
        !(Ch >= '0' && Ch <= '9') && Ch != '_' && Ch != ':')
      Ch = '_';
  return Out;
}

std::string CompileService::statsPrometheus() const {
  ServiceCounters S = counters();
  uint64_t NowUs = obs::monotonicNowUs();
  std::string Out;
  Out.reserve(8192);
  char Buf[256];
  auto Line = [&](const char *Fmt, auto... Args) {
    int N = std::snprintf(Buf, sizeof(Buf), Fmt, Args...);
    Out.append(Buf, size_t(std::max(0, N)));
    Out.push_back('\n');
  };

  Line("# HELP ursa_service_uptime_seconds seconds since service start");
  Line("# TYPE ursa_service_uptime_seconds gauge");
  Line("ursa_service_uptime_seconds %.3f", double(NowUs - StartUs) / 1e6);
  Line("# TYPE ursa_service_queue_depth gauge");
  Line("ursa_service_queue_depth %llu",
       (unsigned long long)S.QueueDepthNow);
  Line("# TYPE ursa_service_queue_capacity gauge");
  Line("ursa_service_queue_capacity %u", Config.QueueDepth);
  Line("# TYPE ursa_service_in_flight gauge");
  Line("ursa_service_in_flight %llu", (unsigned long long)S.InFlight);
  Line("# TYPE ursa_service_load_ewma gauge");
  Line("ursa_service_load_ewma %.6f", S.LoadEwma);
  Line("# TYPE ursa_service_degrade_tier_active gauge");
  Line("ursa_service_degrade_tier_active %u", S.DegradeTier);

  // The request counters live on the service instance, not in the stat
  // registry — emit them as proper counters.
  const std::pair<const char *, uint64_t> Counters[] = {
      {"ursa_service_requests_received", S.Received},
      {"ursa_service_requests_completed", S.Completed},
      {"ursa_service_requests_errors", S.Errors},
      {"ursa_service_requests_shed", S.Shed},
      {"ursa_service_requests_deadline_expired", S.DeadlineExpired},
  };
  for (const auto &[N, Value] : Counters) {
    Line("# TYPE %s counter", N);
    Line("%s %llu", N, (unsigned long long)Value);
  }

  for (const obs::StatValue &SV : obs::snapshotStats(/*NonZeroOnly=*/true)) {
    std::string N = promName(SV.Name);
    Line("# TYPE %s untyped", N.c_str());
    Line("%s %llu", N.c_str(), (unsigned long long)SV.Value);
  }

  for (const obs::HistogramSnapshot &H :
       obs::snapshotHistograms(/*NonZeroOnly=*/true)) {
    std::string N = promName(H.Name);
    Line("# HELP %s %s", N.c_str(), H.Desc.c_str());
    Line("# TYPE %s histogram", N.c_str());
    // Cumulative `le` edges for the non-empty finite buckets; the
    // mandatory +Inf bucket carries the total (including overflow).
    uint64_t Cum = 0;
    for (unsigned I = 0; I + 1 != obs::Histogram::NumBuckets; ++I) {
      if (!H.Buckets[I])
        continue;
      Cum += H.Buckets[I];
      Line("%s_bucket{le=\"%llu\"} %llu", N.c_str(),
           (unsigned long long)obs::Histogram::bucketHi(I),
           (unsigned long long)Cum);
    }
    Line("%s_bucket{le=\"+Inf\"} %llu", N.c_str(),
         (unsigned long long)H.Count);
    Line("%s_sum %llu", N.c_str(), (unsigned long long)H.Sum);
    Line("%s_count %llu", N.c_str(), (unsigned long long)H.Count);
  }
  return Out;
}

std::string CompileService::healthJSON() const {
  ServiceCounters S = counters();
  uint64_t NowUs = obs::monotonicNowUs();
  bool Draining;
  {
    std::lock_guard<std::mutex> L(Mu);
    Draining = Stopping;
  }
  obs::JsonWriter W;
  W.beginObject();
  W.kv("schema", "ursa.service_health.v1");
  W.kv("status",
       Draining ? "draining" : S.DegradeTier ? "degraded" : "ok");
  W.kv("uptime_s", double(NowUs - StartUs) / 1e6);
  W.kv("workers", Config.Workers);
  W.kv("queue_depth", S.QueueDepthNow);
  W.kv("queue_capacity", Config.QueueDepth);
  W.kv("in_flight", S.InFlight);
  W.kv("degrade_tier", S.DegradeTier);
  W.kv("load_ewma", S.LoadEwma);
  W.endObject();
  return W.str();
}
