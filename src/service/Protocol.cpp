//===- service/Protocol.cpp - Compile-service wire protocol ---------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/Protocol.h"

#include <cstdio>
#include <functional>

using namespace ursa;
using namespace ursa::service;
using obs::JsonValue;
using obs::JsonWriter;

MachineModel MachineSpec::build() const {
  MachineModel M = Classed
                       ? MachineModel::classed(IntFus, FltFus, MemFus, Gprs,
                                               Fprs)
                       : MachineModel::homogeneous(Fus, Regs);
  if (LatInt != 1 || LatFlt != 1 || LatMem != 1)
    M.withLatencies(LatInt, LatFlt, LatMem);
  if (Pipelined)
    M.withPipelinedFUs();
  return M;
}

std::string MachineSpec::key() const {
  char Buf[128];
  if (Classed)
    std::snprintf(Buf, sizeof(Buf), "c%u,%u,%u,%u,%u/l%u,%u,%u/p%d", IntFus,
                  FltFus, MemFus, Gprs, Fprs, LatInt, LatFlt, LatMem,
                  Pipelined ? 1 : 0);
  else
    std::snprintf(Buf, sizeof(Buf), "h%ux%u/l%u,%u,%u/p%d", Fus, Regs,
                  LatInt, LatFlt, LatMem, Pipelined ? 1 : 0);
  return Buf;
}

bool MachineSpec::fromKey(const std::string &Key, MachineSpec &Out) {
  MachineSpec S;
  int P = 0;
  if (std::sscanf(Key.c_str(), "h%ux%u/l%u,%u,%u/p%d", &S.Fus, &S.Regs,
                  &S.LatInt, &S.LatFlt, &S.LatMem, &P) == 6) {
    S.Classed = false;
  } else if (std::sscanf(Key.c_str(), "c%u,%u,%u,%u,%u/l%u,%u,%u/p%d",
                         &S.IntFus, &S.FltFus, &S.MemFus, &S.Gprs, &S.Fprs,
                         &S.LatInt, &S.LatFlt, &S.LatMem, &P) == 9) {
    S.Classed = true;
  } else {
    return false;
  }
  S.Pipelined = P != 0;
  // The round trip must be exact — trailing junk or out-of-range digits
  // would otherwise fabricate a machine key() never produced.
  if (S.key() != Key)
    return false;
  Out = S;
  return true;
}

const char *service::statusName(ServiceResponse::StatusKind K) {
  switch (K) {
  case ServiceResponse::StatusKind::Ok:
    return "ok";
  case ServiceResponse::StatusKind::Error:
    return "error";
  case ServiceResponse::StatusKind::Shed:
    return "shed";
  case ServiceResponse::StatusKind::Deadline:
    return "deadline";
  case ServiceResponse::StatusKind::Report:
    return "report";
  case ServiceResponse::StatusKind::Bye:
    return "bye";
  case ServiceResponse::StatusKind::Stats:
    return "stats";
  case ServiceResponse::StatusKind::Busy:
    return "busy_retry_later";
  }
  return "error";
}

static const char *opName(ServiceRequest::OpKind Op) {
  switch (Op) {
  case ServiceRequest::OpKind::Compile:
    return "compile";
  case ServiceRequest::OpKind::Report:
    return "report";
  case ServiceRequest::OpKind::Shutdown:
    return "shutdown";
  case ServiceRequest::OpKind::Ping:
    return "ping";
  case ServiceRequest::OpKind::Stats:
    return "stats";
  case ServiceRequest::OpKind::Health:
    return "health";
  }
  return "compile";
}

std::string service::writeRequest(const ServiceRequest &R,
                                  std::string_view TraceId) {
  JsonWriter W;
  W.beginObject();
  W.kv("schema", "ursa.service_request.v1");
  W.kv("op", opName(R.Op));
  W.kv("id", R.Id);
  if (!TraceId.empty())
    W.kv("trace_id", TraceId);
  else if (!R.TraceId.empty())
    W.kv("trace_id", R.TraceId);
  if (R.Op == ServiceRequest::OpKind::Stats) {
    if (R.StatsFormat != "json")
      W.kv("format", R.StatsFormat);
    if (R.IncludeFlight)
      W.kv("flight", true);
  }
  if (!R.Client.empty())
    W.kv("client", R.Client);
  if (R.Op == ServiceRequest::OpKind::Compile) {
    W.kv("source", R.Source);
    W.key("machine").beginObject();
    if (R.Machine.Classed) {
      W.kv("int_fus", R.Machine.IntFus);
      W.kv("float_fus", R.Machine.FltFus);
      W.kv("mem_fus", R.Machine.MemFus);
      W.kv("gprs", R.Machine.Gprs);
      W.kv("fprs", R.Machine.Fprs);
    } else {
      W.kv("fus", R.Machine.Fus);
      W.kv("regs", R.Machine.Regs);
    }
    if (R.Machine.LatInt != 1 || R.Machine.LatFlt != 1 ||
        R.Machine.LatMem != 1) {
      W.key("latencies").beginArray();
      W.value(R.Machine.LatInt).value(R.Machine.LatFlt).value(
          R.Machine.LatMem);
      W.endArray();
    }
    if (R.Machine.Pipelined)
      W.kv("pipelined", true);
    W.endObject();
    W.key("options").beginObject();
    W.kv("order", R.Order);
    if (!R.Verify.empty())
      W.kv("verify", R.Verify);
    if (R.GuaranteedFit)
      W.kv("guaranteed_fit", true);
    if (R.TimeBudgetMs)
      W.kv("time_budget_ms", R.TimeBudgetMs);
    if (R.MaxTotalRounds)
      W.kv("max_total_rounds", R.MaxTotalRounds);
    if (R.Threads)
      W.kv("threads", R.Threads);
    if (R.Incremental >= 0)
      W.kv("incremental", R.Incremental != 0);
    if (R.Beam)
      W.kv("beam", R.Beam);
    if (R.Portfolio)
      W.kv("portfolio", true);
    if (R.DeadlineMs)
      W.kv("deadline_ms", R.DeadlineMs);
    if (R.StallMs)
      W.kv("stall_ms", R.StallMs);
    W.endObject();
  }
  W.endObject();
  return W.str();
}

/// Reads an optional non-negative integer member, rejecting junk.
static Status readUnsigned(const JsonValue &Obj, const char *Key,
                           unsigned &Out) {
  const JsonValue *V = Obj.find(Key);
  if (!V)
    return Status::ok();
  if (!V->isNumber() || V->Num < 0 || V->Num > 4e9)
    return Status::error("service", std::string("field '") + Key +
                                        "' must be a non-negative integer");
  Out = unsigned(V->Num);
  return Status::ok();
}

static Status readString(const JsonValue &Obj, const char *Key,
                         std::string &Out) {
  const JsonValue *V = Obj.find(Key);
  if (!V)
    return Status::ok();
  if (!V->isString())
    return Status::error("service",
                         std::string("field '") + Key + "' must be a string");
  Out = V->Str;
  return Status::ok();
}

static Status readBool(const JsonValue &Obj, const char *Key, bool &Out) {
  const JsonValue *V = Obj.find(Key);
  if (!V)
    return Status::ok();
  if (V->K != JsonValue::Kind::Bool)
    return Status::error("service",
                         std::string("field '") + Key + "' must be a bool");
  Out = V->B;
  return Status::ok();
}

Status service::parseRequest(std::string_view Doc, ServiceRequest &Out,
                             const obs::JsonParseLimits &Limits) {
  JsonValue Root;
  if (Status St = obs::parseJsonLimited(Doc, Root, Limits); !St.isOk())
    return St;
  if (!Root.isObject())
    return Status::error("service", "request must be a JSON object");

  std::string Schema;
  if (Status St = readString(Root, "schema", Schema); !St.isOk())
    return St;
  if (Schema != "ursa.service_request.v1")
    return Status::error("service",
                         "unsupported request schema '" + Schema + "'");

  std::string Op = "compile";
  if (Status St = readString(Root, "op", Op); !St.isOk())
    return St;
  if (Op == "compile")
    Out.Op = ServiceRequest::OpKind::Compile;
  else if (Op == "report")
    Out.Op = ServiceRequest::OpKind::Report;
  else if (Op == "shutdown")
    Out.Op = ServiceRequest::OpKind::Shutdown;
  else if (Op == "ping")
    Out.Op = ServiceRequest::OpKind::Ping;
  else if (Op == "stats")
    Out.Op = ServiceRequest::OpKind::Stats;
  else if (Op == "health")
    Out.Op = ServiceRequest::OpKind::Health;
  else
    return Status::error("service", "unknown op '" + Op + "'");

  if (Status St = readString(Root, "id", Out.Id); !St.isOk())
    return St;
  if (Status St = readString(Root, "trace_id", Out.TraceId); !St.isOk())
    return St;
  if (Status St = readString(Root, "client", Out.Client); !St.isOk())
    return St;
  if (Out.Client.size() > 128)
    return Status::error("service", "field 'client' too long (max 128)");
  if (Out.Op == ServiceRequest::OpKind::Stats) {
    Status St;
    St.merge(readString(Root, "format", Out.StatsFormat));
    St.merge(readBool(Root, "flight", Out.IncludeFlight));
    if (!St.isOk())
      return St;
    if (Out.StatsFormat != "json" && Out.StatsFormat != "prometheus")
      return Status::error("service",
                           "unknown stats format '" + Out.StatsFormat + "'");
    return Status::ok();
  }
  if (Out.Op != ServiceRequest::OpKind::Compile)
    return Status::ok();

  if (Status St = readString(Root, "source", Out.Source); !St.isOk())
    return St;
  if (Out.Source.empty())
    return Status::error("service", "compile request without source");

  if (const JsonValue *M = Root.find("machine")) {
    if (!M->isObject())
      return Status::error("service", "field 'machine' must be an object");
    Out.Machine.Classed = M->find("int_fus") || M->find("gprs");
    Status St;
    St.merge(readUnsigned(*M, "fus", Out.Machine.Fus));
    St.merge(readUnsigned(*M, "regs", Out.Machine.Regs));
    St.merge(readUnsigned(*M, "int_fus", Out.Machine.IntFus));
    St.merge(readUnsigned(*M, "float_fus", Out.Machine.FltFus));
    St.merge(readUnsigned(*M, "mem_fus", Out.Machine.MemFus));
    St.merge(readUnsigned(*M, "gprs", Out.Machine.Gprs));
    St.merge(readUnsigned(*M, "fprs", Out.Machine.Fprs));
    St.merge(readBool(*M, "pipelined", Out.Machine.Pipelined));
    if (!St.isOk())
      return St;
    if (const JsonValue *L = M->find("latencies")) {
      if (!L->isArray() || L->Arr.size() != 3)
        return Status::error("service",
                             "field 'latencies' must be [int,float,mem]");
      for (const JsonValue &E : L->Arr)
        if (!E.isNumber() || E.Num < 1 || E.Num > 1000)
          return Status::error("service", "latency out of range");
      Out.Machine.LatInt = unsigned(L->Arr[0].Num);
      Out.Machine.LatFlt = unsigned(L->Arr[1].Num);
      Out.Machine.LatMem = unsigned(L->Arr[2].Num);
    }
    // A machine with zero units or registers can never fit anything.
    unsigned FuTotal = Out.Machine.Classed
                           ? Out.Machine.IntFus + Out.Machine.FltFus +
                                 Out.Machine.MemFus
                           : Out.Machine.Fus;
    unsigned RegTotal = Out.Machine.Classed
                            ? Out.Machine.Gprs + Out.Machine.Fprs
                            : Out.Machine.Regs;
    if (FuTotal == 0 || RegTotal == 0)
      return Status::error("service", "machine has no FUs or no registers");
  }

  if (const JsonValue *O = Root.find("options")) {
    if (!O->isObject())
      return Status::error("service", "field 'options' must be an object");
    Status St;
    St.merge(readString(*O, "order", Out.Order));
    St.merge(readString(*O, "verify", Out.Verify));
    St.merge(readBool(*O, "guaranteed_fit", Out.GuaranteedFit));
    St.merge(readUnsigned(*O, "time_budget_ms", Out.TimeBudgetMs));
    St.merge(readUnsigned(*O, "max_total_rounds", Out.MaxTotalRounds));
    St.merge(readUnsigned(*O, "threads", Out.Threads));
    St.merge(readUnsigned(*O, "beam", Out.Beam));
    St.merge(readBool(*O, "portfolio", Out.Portfolio));
    St.merge(readUnsigned(*O, "deadline_ms", Out.DeadlineMs));
    St.merge(readUnsigned(*O, "stall_ms", Out.StallMs));
    if (!St.isOk())
      return St;
    if (Out.Beam > 64)
      return Status::error("service", "beam width out of range (max 64)");
    bool Inc = false;
    if (O->find("incremental")) {
      if (Status S2 = readBool(*O, "incremental", Inc); !S2.isOk())
        return S2;
      Out.Incremental = Inc ? 1 : 0;
    }
    if (Out.Order != "regs" && Out.Order != "fus" && Out.Order != "integrated")
      return Status::error("service", "unknown order '" + Out.Order + "'");
    if (!Out.Verify.empty() && Out.Verify != "off" && Out.Verify != "none" &&
        Out.Verify != "basic" && Out.Verify != "full")
      return Status::error("service", "unknown verify '" + Out.Verify + "'");
  }
  return Status::ok();
}

std::string service::writeResponse(const ServiceResponse &R) {
  JsonWriter W;
  W.beginObject();
  W.kv("schema", "ursa.service_response.v1");
  W.kv("id", R.Id);
  if (!R.TraceId.empty())
    W.kv("trace_id", R.TraceId);
  W.kv("status", statusName(R.Status));
  if (!R.Backend.empty())
    W.kv("backend", R.Backend);
  if (!R.Error.empty())
    W.kv("error", R.Error);
  if (R.Status == ServiceResponse::StatusKind::Ok) {
    W.kv("text", R.Text);
    W.kv("cycles", R.Cycles);
    W.kv("spill_ops", R.SpillOps);
    W.kv("within_limits", R.WithinLimits);
    W.kv("budget_exhausted", R.BudgetExhausted);
  } else if (R.Status == ServiceResponse::StatusKind::Report) {
    W.key("report").raw(R.Text); // a complete JSON document
  } else if (R.Status == ServiceResponse::StatusKind::Stats) {
    // Stats documents may be Prometheus text, so they travel as a JSON
    // string either way.
    W.kv("text", R.Text);
  }
  W.kv("queue_ms", R.QueueMs);
  W.kv("compile_ms", R.CompileMs);
  W.endObject();
  return W.str();
}

Status service::parseResponse(std::string_view Doc, ServiceResponse &Out) {
  JsonValue Root;
  std::string Err;
  if (!obs::parseJson(Doc, Root, Err))
    return Status::error("service", "bad response: " + Err);
  if (!Root.isObject())
    return Status::error("service", "response must be a JSON object");
  std::string StatusStr;
  Status St;
  St.merge(readString(Root, "id", Out.Id));
  St.merge(readString(Root, "trace_id", Out.TraceId));
  St.merge(readString(Root, "backend", Out.Backend));
  St.merge(readString(Root, "status", StatusStr));
  St.merge(readString(Root, "error", Out.Error));
  St.merge(readString(Root, "text", Out.Text));
  if (!St.isOk())
    return St;
  if (StatusStr == "ok")
    Out.Status = ServiceResponse::StatusKind::Ok;
  else if (StatusStr == "shed")
    Out.Status = ServiceResponse::StatusKind::Shed;
  else if (StatusStr == "deadline")
    Out.Status = ServiceResponse::StatusKind::Deadline;
  else if (StatusStr == "report")
    Out.Status = ServiceResponse::StatusKind::Report;
  else if (StatusStr == "bye")
    Out.Status = ServiceResponse::StatusKind::Bye;
  else if (StatusStr == "stats")
    Out.Status = ServiceResponse::StatusKind::Stats;
  else if (StatusStr == "busy_retry_later")
    Out.Status = ServiceResponse::StatusKind::Busy;
  else
    Out.Status = ServiceResponse::StatusKind::Error;
  unsigned U = 0;
  if (readUnsigned(Root, "cycles", U).isOk())
    Out.Cycles = U;
  U = 0;
  if (readUnsigned(Root, "spill_ops", U).isOk())
    Out.SpillOps = U;
  readBool(Root, "within_limits", Out.WithinLimits);
  readBool(Root, "budget_exhausted", Out.BudgetExhausted);
  if (const JsonValue *Q = Root.find("queue_ms"); Q && Q->isNumber())
    Out.QueueMs = Q->Num;
  if (const JsonValue *C = Root.find("compile_ms"); C && C->isNumber())
    Out.CompileMs = C->Num;
  if (Out.Status == ServiceResponse::StatusKind::Report) {
    // The raw sub-document is easier to re-serialize than to re-walk.
    if (const JsonValue *Rep = Root.find("report"); Rep && Rep->isObject()) {
      // Reconstruct canonical JSON for the caller to print or parse.
      std::function<void(JsonWriter &, const JsonValue &)> Emit =
          [&](JsonWriter &W, const JsonValue &V) {
            switch (V.K) {
            case JsonValue::Kind::Null:
              W.null();
              break;
            case JsonValue::Kind::Bool:
              W.value(V.B);
              break;
            case JsonValue::Kind::Number:
              W.value(V.Num);
              break;
            case JsonValue::Kind::String:
              W.value(V.Str);
              break;
            case JsonValue::Kind::Array:
              W.beginArray();
              for (const JsonValue &E : V.Arr)
                Emit(W, E);
              W.endArray();
              break;
            case JsonValue::Kind::Object:
              W.beginObject();
              for (const auto &[K, E] : V.Obj) {
                W.key(K);
                Emit(W, E);
              }
              W.endObject();
              break;
            }
          };
      JsonWriter W;
      Emit(W, *Rep);
      Out.Text = W.str();
    }
  }
  return Status::ok();
}
