//===- service/Server.h - Socket front end for the service ------*- C++ -*-===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The transport layer of `ursa_served`: a stream socket — Unix-domain or
/// TCP, per the endpoint string — accepting length-prefixed JSON frames
/// (support/Socket.h, schemas in service/Protocol.h) and routing them into
/// a CompileService. One reader thread per connection; responses may be
/// written out of order by worker threads, serialized per connection, so
/// clients can pipeline requests and match responses by id (ursa_batch
/// does).
///
/// Robustness: SIGPIPE is ignored process-wide at start(); per-operation
/// socket deadlines (ServiceConfig::IoTimeoutMs) stop a stalled peer from
/// pinning a reader mid-frame; idle connections are reaped after
/// ServiceConfig::IdleTimeoutMs with no frame started; finished reader
/// threads are swept by the accept loop so a long-lived server does not
/// accumulate dead thread handles.
///
/// Shutdown (a `shutdown` request or requestStop()) is a drain: the
/// listener closes, queued compiles finish and their responses flush,
/// then the remaining connections are torn down.
///
//===----------------------------------------------------------------------===//

#ifndef URSA_SERVICE_SERVER_H
#define URSA_SERVICE_SERVER_H

#include "service/CompileService.h"
#include "support/Socket.h"

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace ursa::service {

class Server {
public:
  /// \p Endpoint is "unix:PATH", a bare socket path, or "tcp:HOST:PORT"
  /// (see support/Socket.h). TCP port 0 is allowed; port() reports the
  /// kernel's pick after start(). This form owns a CompileService built
  /// from \p C — the historical `ursa_served` shape.
  Server(std::string Endpoint, const ServiceConfig &C);

  /// Fronts an externally owned handler (the fleet router). \p H must
  /// outlive the server; transport knobs come from \p T since there is no
  /// ServiceConfig to read them from.
  Server(std::string Endpoint, ServiceHandler &H, const TransportOpts &T);

  ~Server();

  /// Binds and listens on the endpoint. Call before run().
  Status start();

  /// Serves until a shutdown request arrives (or requestStop()), then
  /// drains the compile queue and tears the connections down. Blocks.
  void run();

  /// Asks run() to finish; safe from any thread or a signal-adjacent
  /// context (it only sets a flag — run() polls it between accepts).
  void requestStop() { StopFlag.store(true); }

  /// The owned CompileService. Only valid for servers constructed from a
  /// ServiceConfig (asserts otherwise — a handler-fronting server has no
  /// compile service of its own).
  CompileService &service();

  const std::string &path() const { return Path; }

  /// The bound TCP port (0 for Unix endpoints or before start()).
  uint16_t port() const { return Listener.localPort(); }

private:
  /// Per-connection shared state: the socket plus the write lock that
  /// serializes response frames from worker threads.
  struct Conn {
    Socket Sock;
    std::mutex WriteMu;
    std::atomic<bool> ReaderDone{false};
    explicit Conn(Socket S) : Sock(std::move(S)) {}
    void send(const ServiceResponse &R);
  };

  void serveConnection(std::shared_ptr<Conn> C);

  /// Joins reader threads whose connections have finished (accept-loop
  /// housekeeping; with \p All also joins the live ones — shutdown).
  void sweepThreads(bool All);

  std::string Path;
  bool IsUnix = true; ///< endpoint kind, for the socket-file unlink
  std::unique_ptr<CompileService> Owned; ///< null when fronting a handler
  ServiceHandler *Handler = nullptr;     ///< Owned.get() or the external one
  TransportOpts Transport;
  Socket Listener;
  std::atomic<bool> StopFlag{false};

  std::mutex ConnsMu;
  std::vector<std::weak_ptr<Conn>> Conns;
  std::vector<std::pair<std::thread, std::shared_ptr<Conn>>> ConnThreads;
};

} // namespace ursa::service

#endif // URSA_SERVICE_SERVER_H
