//===- service/Server.h - Unix-socket front end for the service -*- C++ -*-===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The transport layer of `ursa_served`: a Unix-domain stream socket
/// accepting length-prefixed JSON frames (support/Socket.h, schemas in
/// service/Protocol.h) and routing them into a CompileService. One reader
/// thread per connection; responses may be written out of order by worker
/// threads, serialized per connection, so clients can pipeline requests
/// and match responses by id (ursa_batch does).
///
/// Shutdown (a `shutdown` request or requestStop()) is a drain: the
/// listener closes, queued compiles finish and their responses flush,
/// then the remaining connections are torn down.
///
//===----------------------------------------------------------------------===//

#ifndef URSA_SERVICE_SERVER_H
#define URSA_SERVICE_SERVER_H

#include "service/CompileService.h"
#include "support/Socket.h"

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace ursa::service {

class Server {
public:
  Server(std::string SocketPath, const ServiceConfig &C)
      : Path(std::move(SocketPath)), Service(C) {}
  ~Server();

  /// Binds and listens on the socket path. Call before run().
  Status start();

  /// Serves until a shutdown request arrives (or requestStop()), then
  /// drains the compile queue and tears the connections down. Blocks.
  void run();

  /// Asks run() to finish; safe from any thread or a signal-adjacent
  /// context (it only sets a flag — run() polls it between accepts).
  void requestStop() { StopFlag.store(true); }

  CompileService &service() { return Service; }
  const std::string &path() const { return Path; }

private:
  /// Per-connection shared state: the socket plus the write lock that
  /// serializes response frames from worker threads.
  struct Conn {
    UnixSocket Sock;
    std::mutex WriteMu;
    explicit Conn(UnixSocket S) : Sock(std::move(S)) {}
    void send(const ServiceResponse &R);
  };

  void serveConnection(std::shared_ptr<Conn> C);

  std::string Path;
  CompileService Service;
  UnixSocket Listener;
  std::atomic<bool> StopFlag{false};

  std::mutex ConnsMu;
  std::vector<std::weak_ptr<Conn>> Conns;
  std::vector<std::thread> ConnThreads;
};

} // namespace ursa::service

#endif // URSA_SERVICE_SERVER_H
