//===- service/Client.cpp - Compile-service client ------------------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/Client.h"

using namespace ursa;
using namespace ursa::service;

StatusOr<ServiceClient> ServiceClient::connect(const std::string &Path) {
  StatusOr<UnixSocket> S = UnixSocket::connect(Path);
  if (!S.isOk())
    return S.status();
  return ServiceClient(std::move(*S));
}

Status ServiceClient::send(const ServiceRequest &R) {
  return Sock.sendFrame(writeRequest(R));
}

Status ServiceClient::recv(ServiceResponse &Out, bool &Closed) {
  std::string Frame;
  Closed = false;
  if (Status St = Sock.recvFrame(Frame, Closed); !St.isOk())
    return St;
  if (Closed)
    return Status::ok();
  return parseResponse(Frame, Out);
}

Status ServiceClient::call(const ServiceRequest &R, ServiceResponse &Out) {
  if (Status St = send(R); !St.isOk())
    return St;
  bool Closed = false;
  if (Status St = recv(Out, Closed); !St.isOk())
    return St;
  if (Closed)
    return Status::error("service", "server closed the connection");
  return Status::ok();
}
