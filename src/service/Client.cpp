//===- service/Client.cpp - Compile-service client ------------------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/Client.h"

#include "obs/Stats.h"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <thread>

#include <unistd.h>

using namespace ursa;
using namespace ursa::service;

URSA_STAT(StatClientRetries, "ursa.client.retries",
          "supervised requests re-sent after a retryable failure");
URSA_STAT(StatClientReconnects, "ursa.client.reconnects",
          "connections re-established by the supervised client");
URSA_STAT(StatClientBackoffMs, "ursa.client.backoff_ms",
          "total milliseconds slept in retry backoff");
URSA_STAT(StatClientShedRetries, "ursa.client.shed_retries",
          "retries caused by a shed (load-refused) response");
URSA_STAT(StatClientBusyRetries, "ursa.client.busy_retries",
          "free retries caused by a busy_retry_later response");
URSA_STAT(StatClientGiveUps, "ursa.client.give_ups",
          "supervised requests that exhausted retries or their deadline");

URSA_HISTO(HistClientE2EUs, "ursa.client.e2e_us",
           "client-observed end-to-end request latency");

obs::Histogram &ursa::service::clientLatencyHistogram() {
  return HistClientE2EUs;
}

std::string ursa::service::makeTraceId() {
  // Tag: process-unique without consulting the wall clock; the steady
  // clock at first use plus the pid is unique enough for correlating
  // concurrent clients against one server's records.
  static const uint64_t Tag = [] {
    uint64_t T =
        uint64_t(std::chrono::steady_clock::now().time_since_epoch().count());
    return (T ^ (T >> 32) ^ (uint64_t(::getpid()) << 16)) & 0xffffffffu;
  }();
  static std::atomic<uint64_t> Counter{0};
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "t-%08llx-%06llu",
                (unsigned long long)Tag,
                (unsigned long long)Counter.fetch_add(
                    1, std::memory_order_relaxed));
  return Buf;
}

/// Process-unique instance tags. Every connected client draws one, so
/// clients built from identical policies (the common case — one RetryPolicy
/// literal shared across a worker pool) still jitter independently.
static uint64_t nextInstanceTag() {
  static std::atomic<uint64_t> Counter{0};
  return Counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

uint64_t ursa::service::clientJitterKey(uint64_t InstanceTag,
                                        std::string_view TraceId) {
  // FNV-1a over the trace id, then mix in the instance tag. Either axis
  // alone de-collides: two clients share no tag, two supervised calls on
  // one client share no trace id.
  uint64_t H = 0xcbf29ce484222325ULL;
  for (char C : TraceId) {
    H ^= uint64_t(static_cast<unsigned char>(C));
    H *= 0x100000001b3ULL;
  }
  return H ^ (InstanceTag * 0x9e3779b97f4a7c15ULL);
}

unsigned ursa::service::supervisedBackoffMs(const RetryPolicy &Policy,
                                            uint64_t JitterKey, unsigned Try) {
  if (!Try)
    return 0; // the initial attempt never sleeps
  unsigned Cap = std::min(Policy.BackoffMaxMs,
                          Policy.BackoffBaseMs << std::min(Try - 1, 31u));
  if (!Cap)
    return 0;
  RNG G(Policy.Seed ^ JitterKey ^ (0x9e3779b97f4a7c15ULL * Try));
  return Cap / 2 + unsigned(G.below(Cap / 2 + 1));
}

StatusOr<ServiceClient> ServiceClient::connect(const std::string &Endpoint) {
  ignoreSigpipe();
  StatusOr<Socket> S = Socket::connectEndpoint(Endpoint);
  if (!S.isOk())
    return S.status();
  ServiceClient C(std::move(*S));
  C.Endpoint = Endpoint;
  C.Tag = nextInstanceTag();
  return C;
}

StatusOr<ServiceClient> ServiceClient::connectWithRetry(
    const std::string &Endpoint, const RetryPolicy &Policy) {
  ignoreSigpipe();
  // The client doesn't exist yet, so draw a tag up front just for the
  // connect loop's jitter; connect() assigns the client its own.
  const uint64_t JKey = clientJitterKey(nextInstanceTag(), Endpoint);
  Status Last = Status::ok();
  for (unsigned Attempt = 0; Attempt <= Policy.MaxRetries; ++Attempt) {
    if (Attempt) {
      unsigned Delay = supervisedBackoffMs(Policy, JKey, Attempt);
      StatClientBackoffMs.add(Delay);
      std::this_thread::sleep_for(std::chrono::milliseconds(Delay));
      StatClientReconnects.add();
    }
    StatusOr<ServiceClient> C = connect(Endpoint);
    if (C.isOk()) {
      C->Policy = Policy;
      if (Policy.OpTimeoutMs)
        (void)C->Sock.setOpTimeoutMs(Policy.OpTimeoutMs);
      return C;
    }
    Last = C.status();
  }
  StatClientGiveUps.add();
  return Last;
}

Status ServiceClient::reconnect() {
  Sock.close();
  StatusOr<Socket> S = Socket::connectEndpoint(Endpoint);
  if (!S.isOk())
    return S.status();
  Sock = std::move(*S);
  if (Policy.OpTimeoutMs)
    (void)Sock.setOpTimeoutMs(Policy.OpTimeoutMs);
  StatClientReconnects.add();
  return Status::ok();
}

Status ServiceClient::send(const ServiceRequest &R) {
  if (R.TraceId.empty())
    return Sock.sendFrame(writeRequest(R, makeTraceId()));
  return Sock.sendFrame(writeRequest(R));
}

Status ServiceClient::recv(ServiceResponse &Out, bool &Closed) {
  std::string Frame;
  Closed = false;
  if (Status St = Sock.recvFrame(Frame, Closed); !St.isOk())
    return St;
  if (Closed)
    return Status::ok();
  return parseResponse(Frame, Out);
}

Status ServiceClient::call(const ServiceRequest &R, ServiceResponse &Out) {
  if (Status St = send(R); !St.isOk())
    return St;
  bool Closed = false;
  if (Status St = recv(Out, Closed); !St.isOk())
    return St;
  if (Closed)
    return Status::error("service", "server closed the connection");
  return Status::ok();
}

ServiceClient::Attempt ServiceClient::tryOnce(const ServiceRequest &R,
                                              std::string_view Tid,
                                              ServiceResponse &Out,
                                              Status &Err) {
  if (!Sock.valid()) {
    Err = reconnect();
    if (!Err.isOk())
      return Attempt::RetryConnect; // nothing reached the server
  }

  if (Status St = Sock.sendFrame(writeRequest(R, Tid)); !St.isOk()) {
    Err = St;
    int E = Sock.lastErrno();
    Sock.close();
    // EPIPE: the peer had already closed before our frame went out. The
    // server flushes every response before closing a connection it read
    // from, so a frame that died on send was never read — safe to retry.
    // ECONNRESET and anything else is indeterminate: the frame may have
    // landed before the connection blew up.
    return E == EPIPE ? Attempt::RetrySend : Attempt::Fatal;
  }

  bool Closed = false;
  if (Status St = recv(Out, Closed); !St.isOk()) {
    Err = St;
    Sock.close();
    return Attempt::Fatal; // mid-frame loss or timeout: compile may have run
  }
  if (Closed) {
    // Clean FIN before any response byte: a draining server that never
    // admitted the request (responses for admitted work are flushed
    // before the close).
    Err = Status::error("service", "server closed before responding");
    Sock.close();
    return Attempt::RetrySend;
  }
  if (Out.Status == ServiceResponse::StatusKind::Shed) {
    Err = Status::error("service", "request shed: " + Out.Error);
    return Attempt::RetryShed; // explicitly refused, provably not started
  }
  if (Out.Status == ServiceResponse::StatusKind::Busy) {
    Err = Status::error("service", "fleet busy: " + Out.Error);
    return Attempt::RetryBusy; // refused router-side, provably not started
  }
  Err = Status::ok();
  return Attempt::Done;
}

Status ServiceClient::callSupervised(const ServiceRequest &R,
                                     ServiceResponse &Out) {
  using Clock = std::chrono::steady_clock;
  const Clock::time_point Start = Clock::now();
  // One trace id for the whole supervised call, retries included, so
  // every server-side record of this request correlates.
  const std::string Tid = R.TraceId.empty() ? makeTraceId() : R.TraceId;
  auto RecordLatency = [&] {
    HistClientE2EUs.record(uint64_t(
        std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                              Start)
            .count()));
  };
  auto DeadlineLeft = [&]() -> bool {
    if (!R.DeadlineMs)
      return true;
    auto Spent = std::chrono::duration_cast<std::chrono::milliseconds>(
                     Clock::now() - Start)
                     .count();
    return Spent < long(R.DeadlineMs);
  };

  // One jitter key per supervised call: instance tag separates clients in
  // this process, the trace id separates calls on this client.
  const uint64_t JKey = clientJitterKey(Tag, Tid);

  Status Err = Status::ok();
  unsigned BusyLeft = Policy.BusyRetryCap;
  for (unsigned Try = 0; Try <= Policy.MaxRetries;) {
    if (Try) {
      unsigned Delay = supervisedBackoffMs(Policy, JKey, Try);
      StatClientBackoffMs.add(Delay);
      std::this_thread::sleep_for(std::chrono::milliseconds(Delay));
      if (!DeadlineLeft())
        break;
      StatClientRetries.add();
    }
    Attempt A = tryOnce(R, Tid, Out, Err);
    switch (A) {
    case Attempt::Done:
      RecordLatency();
      return Status::ok();
    case Attempt::Fatal:
      RecordLatency();
      return Err; // at-most-once: never replay an indeterminate request
    case Attempt::RetryBusy:
      // The fleet refused for its own momentary reasons (no live backend,
      // in-flight failover); the client is not the pressure source, so
      // this retry is free — it consumes BusyLeft, never a backoff Try.
      // Once the Busy allowance runs out, fall back to the backoff path.
      if (BusyLeft) {
        --BusyLeft;
        StatClientBusyRetries.add();
        std::this_thread::sleep_for(
            std::chrono::milliseconds(Policy.BusyDelayMs));
        if (!DeadlineLeft()) {
          StatClientGiveUps.add();
          return Status::error(
              "service", "deadline expired while retrying: " + Err.message());
        }
        continue;
      }
      [[fallthrough]];
    case Attempt::RetryShed:
      StatClientShedRetries.add();
      [[fallthrough]];
    case Attempt::RetryConnect:
    case Attempt::RetrySend:
      if (!DeadlineLeft()) {
        StatClientGiveUps.add();
        Status Out2 = Status::error(
            "service", "deadline expired while retrying: " + Err.message());
        return Out2;
      }
      ++Try;
      break; // loop for another attempt
    }
  }
  StatClientGiveUps.add();
  Status Final = Status::error(
      "service", "retries exhausted (" + std::to_string(Policy.MaxRetries + 1) +
                     " attempts): " + Err.message());
  return Final;
}
