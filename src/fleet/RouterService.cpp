//===- fleet/RouterService.cpp - Sharded compile-fleet front end ----------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "fleet/RouterService.h"

#include "obs/Json.h"
#include "obs/Stats.h"
#include "obs/Tracer.h"

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <cstdio>

using namespace ursa;
using namespace ursa::fleet;
using service::ServiceRequest;
using service::ServiceResponse;

URSA_STAT(StatRouterForwards, "ursa.fleet.forwards",
          "requests forwarded to a backend by the router");
URSA_STAT(StatRouterFailovers, "ursa.fleet.failovers",
          "requests replayed to a successor backend");
URSA_STAT(StatRouterBusy, "ursa.fleet.busy_answers",
          "busy_retry_later answers sent to clients");
URSA_STAT(StatRouterShed, "ursa.fleet.shed",
          "requests refused by fair-queue arbitration");
URSA_HISTO(HistRouterQueueUs, "ursa.fleet.queue_us",
           "time requests spend in the router's fair queue");

RouterService::RouterService(const RouterConfig &C)
    : Config(C),
      Pool(C.Backends,
           ProbeOpts{C.ProbeIntervalMs, C.ProbeTimeoutMs, C.FailThreshold}),
      Queue(C.QueueDepth, C.DefaultClient) {
  for (const auto &[Name, Policy] : Config.Clients)
    Queue.setPolicy(Name, Policy);
}

RouterService::~RouterService() { stop(/*Drain=*/false); }

Status RouterService::start() {
  if (Config.Backends.empty())
    return Status::error("fleet", "router needs at least one backend");
  std::vector<std::string> Names;
  Names.reserve(Pool.count());
  for (size_t I = 0; I != Pool.count(); ++I)
    Names.push_back(Pool.name(I));
  ShardRing.build(Names, Config.VirtualNodes ? Config.VirtualNodes : 64);
  StartUs = obs::monotonicNowUs();
  // One synchronous probe round before serving: a backend that is down at
  // startup gets ejected now instead of costing the first requests a
  // failed dial each.
  Pool.probeAllOnce();
  Pool.startProbing();
  unsigned N = Config.Workers ? Config.Workers : 1;
  Workers.reserve(N);
  for (unsigned I = 0; I != N; ++I)
    Workers.emplace_back([this] { workerLoop(); });
  Started = true;
  return Status::ok();
}

obs::JsonParseLimits RouterService::parseLimits() const {
  obs::JsonParseLimits L;
  L.MaxBytes = Config.MaxRequestBytes;
  return L;
}

bool RouterService::handle(const ServiceRequest &R, service::ResponseFn Done) {
  auto Inline = [&](ServiceResponse::StatusKind K, std::string Text) {
    ServiceResponse Resp;
    Resp.Status = K;
    Resp.Id = R.Id;
    Resp.TraceId = R.TraceId;
    Resp.Text = std::move(Text);
    Done(Resp);
  };
  switch (R.Op) {
  case ServiceRequest::OpKind::Ping:
    Inline(ServiceResponse::StatusKind::Ok, "");
    return true;
  case ServiceRequest::OpKind::Shutdown:
    Inline(ServiceResponse::StatusKind::Bye, "");
    return false;
  case ServiceRequest::OpKind::Report:
    Inline(ServiceResponse::StatusKind::Report, reportJSON());
    return true;
  case ServiceRequest::OpKind::Stats:
    Inline(ServiceResponse::StatusKind::Stats,
           R.StatsFormat == "prometheus" ? statsPrometheus() : statsJSON());
    return true;
  case ServiceRequest::OpKind::Health:
    Inline(ServiceResponse::StatusKind::Stats, healthJSON());
    return true;
  case ServiceRequest::OpKind::Compile:
    break;
  }

  Received.fetch_add(1);
  FairQueue::Item Item;
  Item.R = R;
  // Stamp the trace id at admission: the same id rides to the backend
  // (and across failover replays), so each hop's flight records line up.
  if (Item.R.TraceId.empty())
    Item.R.TraceId = service::makeTraceId();
  Item.Done = std::move(Done);
  Item.Enqueued = std::chrono::steady_clock::now();
  Item.EnqueuedUs = obs::monotonicNowUs();

  ServiceResponse Shed;
  Shed.Status = ServiceResponse::StatusKind::Shed;
  Shed.Id = Item.R.Id;
  Shed.TraceId = Item.R.TraceId;

  FairQueue::Item Victim;
  FairQueue::Admit A;
  bool WasStopping;
  {
    std::lock_guard<std::mutex> L(QueueMu);
    WasStopping = Stopping;
    // push consumes Item only on admission; a refused Item keeps its
    // Done callback for the shed answer below.
    A = Stopping ? FairQueue::Admit::OverShare
                 : Queue.push(std::move(Item), &Victim);
  }
  if (WasStopping) {
    Shed.Error = "router shutting down";
    StatRouterShed.add();
    Item.Done(Shed);
    return true;
  }
  switch (A) {
  case FairQueue::Admit::Ok:
    QueueCv.notify_one();
    return true;
  case FairQueue::Admit::DisplacedOther:
    // The arrival is in; the most-over-share client's newest request got
    // bumped to make room — answer *that* one shed.
    ShedDisplaced.fetch_add(1);
    StatRouterShed.add();
    Shed.Id = Victim.R.Id;
    Shed.TraceId = Victim.R.TraceId;
    Shed.Error = "displaced by fair-share arbitration (client '" +
                 Victim.R.Client + "' over share)";
    Victim.Done(Shed);
    QueueCv.notify_one();
    return true;
  case FairQueue::Admit::OverQuota:
    ShedQuota.fetch_add(1);
    StatRouterShed.add();
    Shed.Error = "client '" + Item.R.Client + "' over quota";
    Item.Done(Shed);
    return true;
  case FairQueue::Admit::OverShare:
    ShedShare.fetch_add(1);
    StatRouterShed.add();
    Shed.Error = "queue full; client '" + Item.R.Client + "' over fair share";
    Item.Done(Shed);
    return true;
  }
  return true;
}

void RouterService::workerLoop() {
  std::vector<std::unique_ptr<service::ServiceClient>> Conns(Pool.count());
  for (;;) {
    FairQueue::Item Item;
    {
      std::unique_lock<std::mutex> L(QueueMu);
      QueueCv.wait(L, [this] { return Stopping || Queue.size(); });
      if (!Queue.popOne(Item)) {
        if (Stopping)
          return; // drained
        continue;
      }
    }
    InFlight.fetch_add(1);
    routeOne(std::move(Item), Conns);
    InFlight.fetch_sub(1);
  }
}

void RouterService::routeOne(
    FairQueue::Item Item,
    std::vector<std::unique_ptr<service::ServiceClient>> &Conns) {
  const ServiceRequest &R = Item.R;
  uint64_t WaitUs = obs::monotonicNowUs() - Item.EnqueuedUs;
  HistRouterQueueUs.record(WaitUs);
  double WaitMs = double(WaitUs) / 1000.0;

  ServiceResponse Resp;
  Resp.Id = R.Id;
  Resp.TraceId = R.TraceId;
  Resp.QueueMs = WaitMs;

  if (R.DeadlineMs && WaitMs >= double(R.DeadlineMs)) {
    DeadlineExpired.fetch_add(1);
    Resp.Status = ServiceResponse::StatusKind::Deadline;
    Resp.Error = "deadline expired in the router queue";
    Item.Done(Resp);
    return;
  }

  // What the backend sees: the same request, minus the router queue time
  // already spent from its deadline.
  ServiceRequest Fw = R;
  if (Fw.DeadlineMs)
    Fw.DeadlineMs = unsigned(std::max(1.0, double(Fw.DeadlineMs) - WaitMs));

  uint64_t Key = Ring::routeKey(R.Machine.key(), R.Source);
  std::vector<uint32_t> Order = ShardRing.successorOrder(Key);

  bool First = true;
  std::string LastWhy = "no live backend";
  for (uint32_t B : Order) {
    if (!Pool.isUp(B))
      continue;
    if (!First) {
      Failovers.fetch_add(1);
      StatRouterFailovers.add();
    }
    First = false;
    std::string Why;
    ServiceResponse BResp;
    switch (forwardTo(B, Fw, R.TraceId, BResp, Conns, Why)) {
    case Fwd::Done:
      Pool.noteForwarded(B);
      StatRouterForwards.add();
      Completed.fetch_add(1);
      BResp.Backend = Pool.name(B);
      BResp.Id = R.Id;
      BResp.TraceId = R.TraceId;
      BResp.QueueMs += WaitMs; // the client's queue time spans both hops
      Item.Done(BResp);
      return;
    case Fwd::NotStartedAlive:
      // The backend refused (its queue is full or it is draining) but is
      // alive; its shard neighbors may have room.
      LastWhy = Why.empty() ? "backend refused" : Why;
      continue;
    case Fwd::ConnectFail:
    case Fwd::NotStartedDead:
      // Provably unstarted and the backend looks gone: eject it now
      // rather than waiting a probe interval, and replay clockwise.
      Pool.markDown(B);
      LastWhy = Why.empty() ? "backend unreachable" : Why;
      continue;
    case Fwd::Indeterminate:
      // The connection died after the request may have been read: the
      // at-most-once rule forbids the router from replaying it. Tell the
      // client to resubmit — its fresh request is a new decision and can
      // route anywhere (compiles are deterministic, so a duplicated
      // execution is wasted work, not a wrong answer; the rule still
      // holds because the *router* never multiplies one submission).
      Pool.markDown(B);
      BusyAnswers.fetch_add(1);
      StatRouterBusy.add();
      Resp.Status = ServiceResponse::StatusKind::Busy;
      Resp.Error = "backend '" + Pool.name(B) +
                   "' lost mid-request; resubmit (" + Why + ")";
      Item.Done(Resp);
      return;
    }
  }

  BusyAnswers.fetch_add(1);
  StatRouterBusy.add();
  Resp.Status = ServiceResponse::StatusKind::Busy;
  Resp.Error = "no backend accepted the request: " + LastWhy;
  Item.Done(Resp);
}

RouterService::Fwd RouterService::forwardTo(
    size_t Backend, const ServiceRequest &R, std::string_view Tid,
    ServiceResponse &Out,
    std::vector<std::unique_ptr<service::ServiceClient>> &Conns,
    std::string &Why) {
  std::unique_ptr<service::ServiceClient> &Conn = Conns[Backend];
  if (!Conn || !Conn->connected()) {
    service::RetryPolicy P;
    P.MaxRetries = 0;
    P.OpTimeoutMs = Config.IoTimeoutMs;
    StatusOr<service::ServiceClient> C =
        service::ServiceClient::connectWithRetry(Pool.endpoint(Backend), P);
    if (!C.isOk()) {
      Why = C.status().message();
      Conn.reset();
      return Fwd::ConnectFail;
    }
    Conn = std::make_unique<service::ServiceClient>(std::move(*C));
  }

  ServiceRequest Fw = R;
  Fw.TraceId = std::string(Tid);
  if (Status St = Conn->send(Fw); !St.isOk()) {
    Why = St.message();
    int E = Conn->lastErrno();
    Conn.reset();
    // Same send classification as the supervised client: EPIPE means the
    // peer closed before reading our frame (responses flush first), so
    // the request was never seen; anything else may have landed.
    return E == EPIPE ? Fwd::NotStartedDead : Fwd::Indeterminate;
  }

  bool Closed = false;
  if (Status St = Conn->recv(Out, Closed); !St.isOk()) {
    Why = St.message();
    Conn.reset();
    return Fwd::Indeterminate;
  }
  if (Closed) {
    Why = "backend closed before responding";
    Conn.reset();
    return Fwd::NotStartedDead;
  }
  if (Out.Status == ServiceResponse::StatusKind::Shed ||
      Out.Status == ServiceResponse::StatusKind::Busy) {
    Why = Out.Error;
    return Fwd::NotStartedAlive;
  }
  return Fwd::Done;
}

void RouterService::stop(bool Drain) {
  std::vector<FairQueue::Item> Leftover;
  {
    std::lock_guard<std::mutex> L(QueueMu);
    if (Stopping && Workers.empty())
      return; // already stopped
    Stopping = true;
    if (!Drain)
      Leftover = Queue.drain();
  }
  for (FairQueue::Item &I : Leftover) {
    ServiceResponse Resp;
    Resp.Status = ServiceResponse::StatusKind::Shed;
    Resp.Id = I.R.Id;
    Resp.TraceId = I.R.TraceId;
    Resp.Error = "router shutting down";
    I.Done(Resp);
  }
  QueueCv.notify_all();
  for (std::thread &T : Workers)
    if (T.joinable())
      T.join();
  Workers.clear();
  Pool.stopProbing();
}

RouterService::Counters RouterService::counters() const {
  Counters C;
  C.Received = Received.load();
  C.Completed = Completed.load();
  C.Failovers = Failovers.load();
  C.Busy = BusyAnswers.load();
  C.ShedQuota = ShedQuota.load();
  C.ShedShare = ShedShare.load();
  C.ShedDisplaced = ShedDisplaced.load();
  C.DeadlineExpired = DeadlineExpired.load();
  C.InFlight = InFlight.load();
  {
    std::lock_guard<std::mutex> L(QueueMu);
    C.QueueDepth = Queue.size();
    C.QueueDepthPeak = Queue.depthPeak();
  }
  return C;
}

//===----------------------------------------------------------------------===//
// Fleet-wide aggregation
//===----------------------------------------------------------------------===//

bool fleet::parseHistogramJson(const obs::JsonValue &V,
                               obs::HistogramSnapshot &Out) {
  if (!V.isObject())
    return false;
  const obs::JsonValue *Name = V.find("name");
  const obs::JsonValue *Count = V.find("count");
  const obs::JsonValue *Buckets = V.find("buckets");
  if (!Name || !Name->isString() || !Count || !Count->isNumber() ||
      !Buckets || !Buckets->isArray())
    return false;
  Out = obs::HistogramSnapshot();
  Out.Name = Name->Str;
  if (const obs::JsonValue *D = V.find("desc"); D && D->isString())
    Out.Desc = D->Str;
  Out.Count = uint64_t(Count->Num);
  if (const obs::JsonValue *S = V.find("sum_us"); S && S->isNumber())
    Out.Sum = uint64_t(S->Num);
  if (const obs::JsonValue *M = V.find("max_us"); M && M->isNumber())
    Out.Max = uint64_t(M->Num);
  Out.Buckets.assign(obs::Histogram::NumBuckets, 0);
  for (const obs::JsonValue &B : Buckets->Arr) {
    if (!B.isObject())
      return false;
    const obs::JsonValue *Le = B.find("le_us");
    const obs::JsonValue *C = B.find("count");
    if (!Le || !Le->isNumber() || !C || !C->isNumber())
      return false;
    // Map the upper edge back to its bucket. Finite edges are < 2^39 so
    // they survive the double round trip exactly; anything at or beyond
    // the last finite edge is the overflow bucket.
    unsigned Idx = obs::Histogram::NumBuckets; // sentinel: not found
    double Edge = Le->Num;
    if (Edge >=
        double(obs::Histogram::bucketHi(obs::Histogram::NumBuckets - 2))) {
      if (Edge > double(obs::Histogram::bucketHi(obs::Histogram::NumBuckets -
                                                 2)))
        Idx = obs::Histogram::NumBuckets - 1; // overflow (le_us ~ 2^64)
      else
        Idx = obs::Histogram::NumBuckets - 2;
    } else {
      uint64_t E = uint64_t(Edge);
      // bucketHi is exclusive, so the edge E belongs to the bucket whose
      // hi is E — i.e. the bucket containing E-1.
      if (E == 0)
        return false;
      unsigned Cand = obs::Histogram::bucketIndex(E - 1);
      if (obs::Histogram::bucketHi(Cand) == E)
        Idx = Cand;
    }
    if (Idx >= obs::Histogram::NumBuckets)
      return false;
    Out.Buckets[Idx] += uint64_t(C->Num);
  }
  return true;
}

namespace {

/// Sums of the per-backend `requests`/`queue` sections.
struct FleetAggregate {
  uint64_t Received = 0, Completed = 0, Errors = 0, Shed = 0,
           DeadlineExpired = 0, InFlight = 0;
  uint64_t QueueDepth = 0, QueueCapacity = 0;
  unsigned BackendWorkers = 0;
  unsigned Reachable = 0;
  std::vector<obs::HistogramSnapshot> Histograms; ///< merged by name
  /// Per-backend health strings parsed from each stats doc ("" = fetch
  /// failed).
  std::vector<std::string> DocStatus;

  void fold(const obs::JsonValue &Doc);
};

uint64_t numField(const obs::JsonValue &Obj, const char *Key) {
  if (const obs::JsonValue *V = Obj.find(Key); V && V->isNumber() &&
                                               V->Num >= 0)
    return uint64_t(V->Num);
  return 0;
}

void FleetAggregate::fold(const obs::JsonValue &Doc) {
  ++Reachable;
  if (const obs::JsonValue *R = Doc.find("requests"); R && R->isObject()) {
    Received += numField(*R, "received");
    Completed += numField(*R, "completed");
    Errors += numField(*R, "errors");
    Shed += numField(*R, "shed");
    DeadlineExpired += numField(*R, "deadline_expired");
    InFlight += numField(*R, "in_flight");
  }
  if (const obs::JsonValue *Q = Doc.find("queue"); Q && Q->isObject()) {
    QueueDepth += numField(*Q, "depth");
    QueueCapacity += numField(*Q, "capacity");
  }
  BackendWorkers += unsigned(numField(Doc, "workers"));
  if (const obs::JsonValue *Hs = Doc.find("histograms"); Hs && Hs->isArray()) {
    for (const obs::JsonValue &H : Hs->Arr) {
      obs::HistogramSnapshot S;
      if (!parseHistogramJson(H, S))
        continue;
      auto It = std::find_if(
          Histograms.begin(), Histograms.end(),
          [&](const obs::HistogramSnapshot &E) { return E.Name == S.Name; });
      if (It == Histograms.end())
        Histograms.push_back(std::move(S));
      else
        It->merge(S);
    }
  }
}

void writeMergedHistogram(obs::JsonWriter &W,
                          const obs::HistogramSnapshot &H) {
  W.beginObject();
  W.kv("name", H.Name);
  W.kv("desc", H.Desc);
  W.kv("count", H.Count);
  W.kv("sum_us", H.Sum);
  W.kv("max_us", H.Max);
  W.kv("p50_us", H.percentile(0.50));
  W.kv("p90_us", H.percentile(0.90));
  W.kv("p99_us", H.percentile(0.99));
  W.key("buckets").beginArray();
  for (unsigned I = 0; I != obs::Histogram::NumBuckets; ++I) {
    if (!H.Buckets[I])
      continue;
    W.beginObject();
    W.kv("le_us", obs::Histogram::bucketHi(I));
    W.kv("count", H.Buckets[I]);
    W.endObject();
  }
  W.endArray();
  W.endObject();
}

} // namespace

std::string RouterService::fetchBackendDoc(
    size_t I, service::ServiceRequest::OpKind Op) const {
  service::RetryPolicy P;
  P.MaxRetries = 0;
  P.OpTimeoutMs = Config.ProbeTimeoutMs;
  StatusOr<service::ServiceClient> C =
      service::ServiceClient::connectWithRetry(Pool.endpoint(I), P);
  if (!C.isOk())
    return std::string();
  ServiceRequest Req;
  Req.Op = Op;
  Req.Id = "fleet-agg";
  ServiceResponse Resp;
  if (Status St = C->call(Req, Resp); !St.isOk())
    return std::string();
  if (Resp.Status != ServiceResponse::StatusKind::Stats)
    return std::string();
  return Resp.Text;
}

/// Fetches and folds every live backend's stats document; DocStatus gets
/// one slot per backend ("" = unreachable or unparsable).
static FleetAggregate
aggregateStats(const BackendPool &Pool,
               const std::function<std::string(size_t)> &Fetch) {
  FleetAggregate Agg;
  Agg.DocStatus.resize(Pool.count());
  for (size_t I = 0; I != Pool.count(); ++I) {
    if (!Pool.isUp(I))
      continue;
    std::string Doc = Fetch(I);
    if (Doc.empty())
      continue;
    obs::JsonValue Root;
    std::string Err;
    if (!obs::parseJson(Doc, Root, Err) || !Root.isObject())
      continue;
    Agg.DocStatus[I] = "ok";
    Agg.fold(Root);
  }
  return Agg;
}

std::string RouterService::statsJSON() const {
  FleetAggregate Agg = aggregateStats(Pool, [this](size_t I) {
    return fetchBackendDoc(I, ServiceRequest::OpKind::Stats);
  });
  Counters C = counters();
  std::vector<BackendPool::Info> Backs = Pool.snapshot();
  std::vector<FairQueue::ClientView> Cls;
  {
    std::lock_guard<std::mutex> L(QueueMu);
    Cls = Queue.clients();
  }
  uint64_t NowUs = obs::monotonicNowUs();

  obs::JsonWriter W;
  W.beginObject();
  W.kv("schema", "ursa.service_stats.v1");
  W.kv("now_us", NowUs);
  W.kv("uptime_s", double(NowUs - StartUs) / 1e6);
  // Aggregate worker count: what the fleet can compile in parallel.
  W.kv("workers", Agg.BackendWorkers);
  W.key("requests").beginObject();
  W.kv("received", Agg.Received);
  W.kv("completed", Agg.Completed);
  W.kv("errors", Agg.Errors);
  W.kv("shed", Agg.Shed + C.ShedQuota + C.ShedShare + C.ShedDisplaced);
  W.kv("deadline_expired", Agg.DeadlineExpired + C.DeadlineExpired);
  W.kv("in_flight", Agg.InFlight + C.InFlight);
  W.endObject();
  W.key("queue").beginObject();
  W.kv("depth", uint64_t(C.QueueDepth) + Agg.QueueDepth);
  W.kv("depth_peak", uint64_t(C.QueueDepthPeak));
  W.kv("capacity", uint64_t(Config.QueueDepth) + Agg.QueueCapacity);
  W.endObject();
  W.key("histograms").beginArray();
  for (const obs::HistogramSnapshot &H : Agg.Histograms)
    writeMergedHistogram(W, H);
  W.endArray();
  W.key("fleet").beginObject();
  W.kv("backends_total", uint64_t(Pool.count()));
  W.kv("backends_up", uint64_t(Pool.upCount()));
  W.kv("backends_reachable", uint64_t(Agg.Reachable));
  W.key("router").beginObject();
  W.kv("received", C.Received);
  W.kv("completed", C.Completed);
  W.kv("failovers", C.Failovers);
  W.kv("busy_answers", C.Busy);
  W.kv("shed_quota", C.ShedQuota);
  W.kv("shed_share", C.ShedShare);
  W.kv("shed_displaced", C.ShedDisplaced);
  W.kv("deadline_expired", C.DeadlineExpired);
  W.kv("queue_depth", uint64_t(C.QueueDepth));
  W.kv("queue_depth_peak", uint64_t(C.QueueDepthPeak));
  W.kv("in_flight", C.InFlight);
  W.endObject();
  W.key("backends").beginArray();
  for (size_t I = 0; I != Backs.size(); ++I) {
    const BackendPool::Info &B = Backs[I];
    W.beginObject();
    W.kv("name", B.Name);
    W.kv("endpoint", B.Endpoint);
    W.kv("up", B.Up);
    W.kv("consec_fails", uint64_t(B.ConsecFails));
    W.kv("probes_ok", B.ProbesOk);
    W.kv("probes_failed", B.ProbesFailed);
    W.kv("ejections", B.Ejections);
    W.kv("readmissions", B.Readmissions);
    W.kv("forwarded", B.Forwarded);
    W.kv("last_health", B.LastHealth);
    W.kv("stats_reachable", I < Agg.DocStatus.size() &&
                                !Agg.DocStatus[I].empty());
    W.endObject();
  }
  W.endArray();
  W.key("clients").beginArray();
  for (const FairQueue::ClientView &CV : Cls) {
    W.beginObject();
    W.kv("name", CV.Name);
    W.kv("weight", uint64_t(CV.Weight));
    W.kv("quota", uint64_t(CV.Quota));
    W.kv("queued", uint64_t(CV.Queued));
    W.kv("admitted", CV.Admitted);
    W.kv("refused", CV.Refused);
    W.endObject();
  }
  W.endArray();
  W.endObject();
  W.endObject();
  return W.str();
}

std::string RouterService::statsPrometheus() const {
  FleetAggregate Agg = aggregateStats(Pool, [this](size_t I) {
    return fetchBackendDoc(I, ServiceRequest::OpKind::Stats);
  });
  Counters C = counters();
  std::vector<BackendPool::Info> Backs = Pool.snapshot();
  uint64_t NowUs = obs::monotonicNowUs();

  std::string Out;
  Out.reserve(8192);
  char Buf[512];
  auto Line = [&](const char *Fmt, auto... Args) {
    int N = std::snprintf(Buf, sizeof(Buf), Fmt, Args...);
    Out.append(Buf, size_t(std::max(0, N)));
    Out.push_back('\n');
  };

  Line("# HELP ursa_fleet_uptime_seconds seconds since router start");
  Line("# TYPE ursa_fleet_uptime_seconds gauge");
  Line("ursa_fleet_uptime_seconds %.3f", double(NowUs - StartUs) / 1e6);
  Line("# TYPE ursa_fleet_backends_up gauge");
  Line("ursa_fleet_backends_up %llu", (unsigned long long)Pool.upCount());
  Line("# TYPE ursa_fleet_backend_up gauge");
  for (const BackendPool::Info &B : Backs)
    Line("ursa_fleet_backend_up{backend=\"%s\"} %d", B.Name.c_str(),
         B.Up ? 1 : 0);
  Line("# TYPE ursa_fleet_backend_forwarded counter");
  for (const BackendPool::Info &B : Backs)
    Line("ursa_fleet_backend_forwarded{backend=\"%s\"} %llu", B.Name.c_str(),
         (unsigned long long)B.Forwarded);

  const std::pair<const char *, uint64_t> RouterCounters[] = {
      {"ursa_fleet_router_received", C.Received},
      {"ursa_fleet_router_completed", C.Completed},
      {"ursa_fleet_router_failovers", C.Failovers},
      {"ursa_fleet_router_busy_answers", C.Busy},
      {"ursa_fleet_router_shed_quota", C.ShedQuota},
      {"ursa_fleet_router_shed_share", C.ShedShare},
      {"ursa_fleet_router_shed_displaced", C.ShedDisplaced},
      {"ursa_fleet_requests_received", Agg.Received},
      {"ursa_fleet_requests_completed", Agg.Completed},
      {"ursa_fleet_requests_errors", Agg.Errors},
  };
  for (const auto &[N, Value] : RouterCounters) {
    Line("# TYPE %s counter", N);
    Line("%s %llu", N, (unsigned long long)Value);
  }
  Line("# TYPE ursa_fleet_queue_depth gauge");
  Line("ursa_fleet_queue_depth %llu", (unsigned long long)C.QueueDepth);

  // Merged fleet histograms, in the same cumulative-`le` exposition the
  // single server emits — one scrape shows fleet-wide latency.
  for (const obs::HistogramSnapshot &H : Agg.Histograms) {
    std::string N;
    N.reserve(H.Name.size());
    for (char Ch : H.Name)
      N.push_back((Ch >= 'a' && Ch <= 'z') || (Ch >= 'A' && Ch <= 'Z') ||
                          (Ch >= '0' && Ch <= '9') || Ch == '_' || Ch == ':'
                      ? Ch
                      : '_');
    Line("# HELP %s %s (fleet-merged)", N.c_str(), H.Desc.c_str());
    Line("# TYPE %s histogram", N.c_str());
    uint64_t Cum = 0;
    for (unsigned I = 0; I + 1 != obs::Histogram::NumBuckets; ++I) {
      if (!H.Buckets[I])
        continue;
      Cum += H.Buckets[I];
      Line("%s_bucket{le=\"%llu\"} %llu", N.c_str(),
           (unsigned long long)obs::Histogram::bucketHi(I),
           (unsigned long long)Cum);
    }
    Line("%s_bucket{le=\"+Inf\"} %llu", N.c_str(),
         (unsigned long long)H.Count);
    Line("%s_sum %llu", N.c_str(), (unsigned long long)H.Sum);
    Line("%s_count %llu", N.c_str(), (unsigned long long)H.Count);
  }
  return Out;
}

std::string RouterService::healthJSON() const {
  std::vector<BackendPool::Info> Backs = Pool.snapshot();
  size_t Up = Pool.upCount();
  bool Draining;
  {
    std::lock_guard<std::mutex> L(QueueMu);
    Draining = Stopping;
  }
  Counters C = counters();
  uint64_t NowUs = obs::monotonicNowUs();
  obs::JsonWriter W;
  W.beginObject();
  W.kv("schema", "ursa.service_health.v1");
  W.kv("status", Draining ? "draining"
                          : Up == Backs.size() ? "ok" : "degraded");
  W.kv("uptime_s", double(NowUs - StartUs) / 1e6);
  W.kv("queue_depth", uint64_t(C.QueueDepth));
  W.kv("queue_capacity", uint64_t(Config.QueueDepth));
  W.kv("in_flight", C.InFlight);
  W.kv("backends_total", uint64_t(Backs.size()));
  W.kv("backends_up", uint64_t(Up));
  W.key("backends").beginArray();
  for (const BackendPool::Info &B : Backs) {
    W.beginObject();
    W.kv("name", B.Name);
    W.kv("up", B.Up);
    W.kv("last_health", B.LastHealth);
    W.kv("consec_fails", uint64_t(B.ConsecFails));
    W.endObject();
  }
  W.endArray();
  W.endObject();
  return W.str();
}

std::string RouterService::reportJSON() const {
  Counters C = counters();
  std::vector<BackendPool::Info> Backs = Pool.snapshot();
  obs::JsonWriter W;
  W.beginObject();
  W.kv("schema", "ursa.fleet_report.v1");
  W.key("config").beginObject();
  W.kv("workers", uint64_t(Config.Workers));
  W.kv("queue_depth", uint64_t(Config.QueueDepth));
  W.kv("virtual_nodes", uint64_t(Config.VirtualNodes));
  W.kv("probe_interval_ms", uint64_t(Config.ProbeIntervalMs));
  W.kv("fail_threshold", uint64_t(Config.FailThreshold));
  W.endObject();
  W.key("router").beginObject();
  W.kv("received", C.Received);
  W.kv("completed", C.Completed);
  W.kv("failovers", C.Failovers);
  W.kv("busy_answers", C.Busy);
  W.kv("shed_quota", C.ShedQuota);
  W.kv("shed_share", C.ShedShare);
  W.kv("shed_displaced", C.ShedDisplaced);
  W.endObject();
  W.key("backends").beginArray();
  for (const BackendPool::Info &B : Backs) {
    W.beginObject();
    W.kv("name", B.Name);
    W.kv("endpoint", B.Endpoint);
    W.kv("up", B.Up);
    W.kv("forwarded", B.Forwarded);
    W.kv("ejections", B.Ejections);
    W.kv("readmissions", B.Readmissions);
    W.endObject();
  }
  W.endArray();
  W.endObject();
  return W.str();
}
