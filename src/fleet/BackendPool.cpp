//===- fleet/BackendPool.cpp - Backend liveness + health probing ----------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "fleet/BackendPool.h"

#include "obs/Json.h"
#include "obs/Stats.h"
#include "service/Client.h"

#include <chrono>

using namespace ursa;
using namespace ursa::fleet;

URSA_STAT(StatFleetProbes, "ursa.fleet.probes",
          "backend health probes sent by the router");
URSA_STAT(StatFleetEjections, "ursa.fleet.ejections",
          "backends ejected from the ring (probe or demand)");
URSA_STAT(StatFleetReadmissions, "ursa.fleet.readmissions",
          "ejected backends readmitted after a healthy probe");

BackendPool::BackendPool(std::vector<BackendConfig> Configs, ProbeOpts O)
    : Opts(O) {
  Backends.reserve(Configs.size());
  for (BackendConfig &C : Configs) {
    auto B = std::make_unique<Backend>();
    B->Endpoint = std::move(C.Endpoint);
    B->Name = C.Name.empty() ? B->Endpoint : std::move(C.Name);
    Backends.push_back(std::move(B));
  }
}

BackendPool::~BackendPool() { stopProbing(); }

size_t BackendPool::upCount() const {
  size_t N = 0;
  for (const auto &B : Backends)
    N += B->Up.load() ? 1 : 0;
  return N;
}

void BackendPool::markDown(size_t I) {
  Backend &B = *Backends[I];
  if (B.Up.exchange(false)) {
    B.Ejections.fetch_add(1);
    StatFleetEjections.add();
  }
}

void BackendPool::noteForwarded(size_t I) {
  Backends[I]->Forwarded.fetch_add(1, std::memory_order_relaxed);
}

void BackendPool::probeOne(Backend &B) {
  StatFleetProbes.add();
  service::ServiceRequest Req;
  Req.Op = service::ServiceRequest::OpKind::Health;
  Req.Id = "probe";
  service::ServiceResponse Resp;

  bool Ok = false;
  std::string HealthStatus;
  // connectWithRetry with zero retries: one dial, but with the probe's op
  // deadline applied to the socket so a hung backend cannot pin the
  // probe thread mid-frame.
  service::RetryPolicy P;
  P.MaxRetries = 0;
  P.OpTimeoutMs = Opts.TimeoutMs;
  StatusOr<service::ServiceClient> C =
      service::ServiceClient::connectWithRetry(B.Endpoint, P);
  if (C.isOk()) {
    if (Status St = C->call(Req, Resp); St.isOk()) {
      // Any well-formed health answer counts as alive; "draining" means
      // the backend is shutting down and should drain off the ring.
      if (Resp.Status == service::ServiceResponse::StatusKind::Stats &&
          !Resp.Text.empty()) {
        obs::JsonValue Doc;
        std::string Err;
        if (obs::parseJson(Resp.Text, Doc, Err) && Doc.isObject())
          if (const obs::JsonValue *S = Doc.find("status"); S && S->isString())
            HealthStatus = S->Str;
        Ok = HealthStatus == "ok" || HealthStatus == "degraded";
      }
    }
  }

  {
    std::lock_guard<std::mutex> L(B.HealthMu);
    B.LastHealth = HealthStatus;
  }
  if (Ok) {
    B.ProbesOk.fetch_add(1);
    B.ConsecFails.store(0);
    if (!B.Up.exchange(true)) {
      B.Readmissions.fetch_add(1);
      StatFleetReadmissions.add();
    }
    return;
  }
  B.ProbesFailed.fetch_add(1);
  unsigned Fails = B.ConsecFails.fetch_add(1) + 1;
  if (Fails >= Opts.FailThreshold && B.Up.exchange(false)) {
    B.Ejections.fetch_add(1);
    StatFleetEjections.add();
  }
}

void BackendPool::probeAllOnce() {
  for (auto &B : Backends)
    probeOne(*B);
}

void BackendPool::probeLoop() {
  std::unique_lock<std::mutex> L(StopMu);
  while (!Stopping) {
    L.unlock();
    probeAllOnce();
    L.lock();
    StopCv.wait_for(L, std::chrono::milliseconds(Opts.IntervalMs),
                    [this] { return Stopping; });
  }
}

void BackendPool::startProbing() {
  std::lock_guard<std::mutex> L(StopMu);
  if (Probing)
    return;
  Stopping = false;
  Probing = true;
  Prober = std::thread([this] { probeLoop(); });
}

void BackendPool::stopProbing() {
  {
    std::lock_guard<std::mutex> L(StopMu);
    if (!Probing)
      return;
    Stopping = true;
    Probing = false;
  }
  StopCv.notify_all();
  if (Prober.joinable())
    Prober.join();
}

std::vector<BackendPool::Info> BackendPool::snapshot() const {
  std::vector<Info> Out;
  Out.reserve(Backends.size());
  for (const auto &B : Backends) {
    Info I;
    I.Name = B->Name;
    I.Endpoint = B->Endpoint;
    I.Up = B->Up.load();
    I.ConsecFails = B->ConsecFails.load();
    I.ProbesOk = B->ProbesOk.load();
    I.ProbesFailed = B->ProbesFailed.load();
    I.Ejections = B->Ejections.load();
    I.Readmissions = B->Readmissions.load();
    I.Forwarded = B->Forwarded.load();
    {
      std::lock_guard<std::mutex> L(B->HealthMu);
      I.LastHealth = B->LastHealth;
    }
    Out.push_back(std::move(I));
  }
  return Out;
}
