//===- fleet/BackendPool.h - Backend liveness + health probing --*- C++ -*-===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The router's view of its backends: a fixed table (index-stable — the
/// Ring addresses backends by index) of endpoints with an Up/Down state
/// driven from two directions:
///
///  * a probe thread hits each backend's `health` verb every
///    ProbeIntervalMs; FailThreshold consecutive failures eject the
///    backend from routing, one successful probe readmits it;
///  * router workers eject on demand when a dial fails or a connection
///    dies mid-request (the probe loop would notice within an interval,
///    but in-flight failover should not wait for it).
///
/// Ejection never rebuilds the Ring — the router just skips Down entries
/// in the key's successor order, which *is* the consistent-hashing
/// failover rule: the ejected backend's arcs drain to their clockwise
/// successors and snap back on readmission.
///
//===----------------------------------------------------------------------===//

#ifndef URSA_FLEET_BACKENDPOOL_H
#define URSA_FLEET_BACKENDPOOL_H

#include "support/Status.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace ursa::fleet {

/// One backend as configured (the endpoint doubles as the ring name).
struct BackendConfig {
  std::string Endpoint;
  std::string Name; ///< defaults to the endpoint when empty
};

struct ProbeOpts {
  unsigned IntervalMs = 200;  ///< probe cadence per backend
  unsigned TimeoutMs = 500;   ///< per-probe socket op deadline
  unsigned FailThreshold = 2; ///< consecutive failures before ejection
};

class BackendPool {
public:
  struct Info {
    std::string Name;
    std::string Endpoint;
    bool Up = true;
    unsigned ConsecFails = 0;
    uint64_t ProbesOk = 0;
    uint64_t ProbesFailed = 0;
    uint64_t Ejections = 0;
    uint64_t Readmissions = 0;
    uint64_t Forwarded = 0;    ///< requests answered by this backend
    std::string LastHealth;    ///< "ok"/"degraded"/"draining" ("" = never)
  };

  BackendPool(std::vector<BackendConfig> Backends, ProbeOpts Opts);
  ~BackendPool();

  BackendPool(const BackendPool &) = delete;
  BackendPool &operator=(const BackendPool &) = delete;

  void startProbing();
  void stopProbing();

  size_t count() const { return Backends.size(); }
  size_t upCount() const;
  bool isUp(size_t I) const { return Backends[I]->Up.load(); }
  const std::string &endpoint(size_t I) const { return Backends[I]->Endpoint; }
  const std::string &name(size_t I) const { return Backends[I]->Name; }

  /// Demand ejection (dial failure / connection death mid-request).
  void markDown(size_t I);
  /// Counts one answered request against backend \p I (stats).
  void noteForwarded(size_t I);

  /// Probes every backend once, synchronously (startup convergence and
  /// tests; the probe thread does the same thing on its cadence).
  void probeAllOnce();

  std::vector<Info> snapshot() const;

  const ProbeOpts &opts() const { return Opts; }

private:
  struct Backend {
    std::string Name;
    std::string Endpoint;
    std::atomic<bool> Up{true}; ///< optimistic: routable until proven dead
    std::atomic<unsigned> ConsecFails{0};
    std::atomic<uint64_t> ProbesOk{0};
    std::atomic<uint64_t> ProbesFailed{0};
    std::atomic<uint64_t> Ejections{0};
    std::atomic<uint64_t> Readmissions{0};
    std::atomic<uint64_t> Forwarded{0};
    mutable std::mutex HealthMu;
    std::string LastHealth;
  };

  void probeOne(Backend &B);
  void probeLoop();

  std::vector<std::unique_ptr<Backend>> Backends;
  ProbeOpts Opts;

  std::thread Prober;
  std::mutex StopMu;
  std::condition_variable StopCv;
  bool Stopping = false;
  bool Probing = false;
};

} // namespace ursa::fleet

#endif // URSA_FLEET_BACKENDPOOL_H
