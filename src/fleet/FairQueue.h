//===- fleet/FairQueue.h - Per-client deficit-weighted queue ----*- C++ -*-===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The router's admission queue: one FIFO per client, drained by deficit
/// round-robin so service is proportional to client weight (weight 3 gets
/// three dequeues for every one a weight-1 client gets, to the precision
/// a unit-cost DRR provides), with two protections that make overload
/// shed the *offending* client instead of the fleet:
///
///  * a per-client quota (max queued requests) refuses that client's
///    arrivals once it alone fills its allowance;
///  * when the queue is full, the arrival displaces the newest request of
///    the most-over-share client (largest queued/weight). If the arriving
///    client *is* the most over share, the arrival itself is refused.
///
/// Both refusals surface as `shed` to exactly one client; a well-behaved
/// client under its share is never the victim. The class is not
/// thread-safe — the RouterService serializes access under its own lock
/// (contention is parsing and compiling, never this queue).
///
//===----------------------------------------------------------------------===//

#ifndef URSA_FLEET_FAIRQUEUE_H
#define URSA_FLEET_FAIRQUEUE_H

#include "service/Handler.h"
#include "service/Protocol.h"

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

namespace ursa::fleet {

/// Per-client scheduling policy (the router's config maps client names to
/// these; unnamed clients share the default).
struct ClientPolicy {
  unsigned Weight = 1; ///< DRR quantum; clamped to >= 1
  unsigned Quota = 0;  ///< max queued requests for this client; 0 = none
};

class FairQueue {
public:
  struct Item {
    service::ServiceRequest R;
    service::ResponseFn Done;
    std::chrono::steady_clock::time_point Enqueued;
    uint64_t EnqueuedUs = 0;
  };

  enum class Admit {
    Ok,           ///< admitted
    OverQuota,    ///< refused: the client is over its own quota
    OverShare,    ///< refused: queue full and the client is most over share
    DisplacedOther ///< admitted; *Victim holds the displaced request
  };

  FairQueue(unsigned Cap, ClientPolicy Def)
      : Capacity(Cap ? Cap : 1), Default(Def) {}

  /// Registers a named client's policy (before or after its first
  /// request; an existing queue keeps its backlog).
  void setPolicy(const std::string &Client, ClientPolicy P);

  /// Admits or refuses \p I per the header rules. \p I is consumed only
  /// on admission (Ok/DisplacedOther) — a refused item is left intact so
  /// the caller can still answer its Done callback. On DisplacedOther the
  /// caller must answer *\p Victim with `shed`.
  Admit push(Item &&I, Item *Victim);

  /// Dequeues the next request by deficit round-robin. False when empty.
  bool popOne(Item &Out);

  /// Drains everything (router shutdown: the caller answers each).
  std::vector<Item> drain();

  size_t size() const { return Total; }
  size_t queuedFor(const std::string &Client) const;
  size_t depthPeak() const { return Peak; }

  /// Clients with a backlog or an explicit policy, with current depth —
  /// the fleet stats verb reports these.
  struct ClientView {
    std::string Name;
    unsigned Weight;
    unsigned Quota;
    size_t Queued;
    uint64_t Admitted;
    uint64_t Refused; ///< OverQuota + OverShare + displaced victims
  };
  std::vector<ClientView> clients() const;

private:
  struct ClientQ {
    std::string Name;
    ClientPolicy Policy;
    std::deque<Item> Q;
    unsigned Deficit = 0;
    bool InRound = false; ///< present in Active
    uint64_t Admitted = 0;
    uint64_t Refused = 0;
  };

  ClientQ &clientFor(const std::string &Name);
  /// Index of the client with the largest queued/weight, -1 when all
  /// queues are empty. Ties break toward the longer queue, then the
  /// earlier-registered client (deterministic).
  int mostOverShare() const;
  void activate(size_t Idx);

  unsigned Capacity;
  ClientPolicy Default;
  std::vector<ClientQ> Clients;
  std::map<std::string, size_t> Index;
  std::deque<size_t> Active; ///< DRR round order (client indices)
  size_t Total = 0;
  size_t Peak = 0;
};

} // namespace ursa::fleet

#endif // URSA_FLEET_FAIRQUEUE_H
