//===- fleet/Ring.h - Consistent-hash shard ring ----------------*- C++ -*-===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shard map of the compile fleet: a consistent-hash ring with a
/// fixed number of virtual nodes per backend. Each backend contributes
/// points hashed from its *name*, so adding or removing one backend
/// leaves every other backend's points exactly where they were — a fleet
/// resize from N to N+1 remaps only the arcs the new points claim,
/// ~1/(N+1) of the key space, and every unmoved key keeps hitting the
/// backend whose MeasurementCache is already warm for it.
///
/// Routing keys hash (machine-key, function source): the same function
/// for the same machine always lands on the same shard, which is what
/// makes the per-shard cache locality survive (the same reasoning as
/// prefix-affinity routing in a sharded inference gateway).
///
/// The ring itself is immutable after build(); liveness is the
/// BackendPool's business. successorOrder() returns *all* backends in
/// ring order from a key, so the router can walk past ejected backends
/// to the first live successor — failover and ejection need no ring
/// rebuild.
///
//===----------------------------------------------------------------------===//

#ifndef URSA_FLEET_RING_H
#define URSA_FLEET_RING_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ursa::fleet {

/// FNV-1a over \p S, continuing from \p H (chain calls to hash tuples).
uint64_t fnv1a64(std::string_view S, uint64_t H = 0xcbf29ce484222325ULL);

class Ring {
public:
  Ring() = default;

  /// Builds the ring from \p BackendNames (must be non-empty and unique;
  /// the endpoint string is the conventional name). Each backend gets
  /// \p VNodes points at fnv1a64(name + "#" + i).
  void build(const std::vector<std::string> &BackendNames,
             unsigned VNodes = 64);

  bool empty() const { return Pts.empty(); }
  uint32_t numBackends() const { return N; }
  unsigned virtualNodes() const { return VN; }

  /// The backend owning \p H (the first point clockwise), or -1 on an
  /// empty ring. Liveness-blind; prefer successorOrder in the router.
  int lookup(uint64_t H) const;

  /// Every backend exactly once, in the order their points appear
  /// clockwise from \p H: [0] is the home shard, the rest the failover
  /// succession. Empty on an empty ring.
  std::vector<uint32_t> successorOrder(uint64_t H) const;

  /// The routing key of a compile request: hash of the machine key and
  /// the function's source text (its pre-parse identity — equal sources
  /// build equal DAGs, so this is the cheap proxy for dagFingerprint).
  static uint64_t routeKey(std::string_view MachineKey,
                           std::string_view Source);

private:
  struct Pt {
    uint64_t H;
    uint32_t Backend;
  };
  std::vector<Pt> Pts; ///< sorted by H
  uint32_t N = 0;
  unsigned VN = 0;
};

} // namespace ursa::fleet

#endif // URSA_FLEET_RING_H
