//===- fleet/FairQueue.cpp - Per-client deficit-weighted queue ------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "fleet/FairQueue.h"

#include <cassert>

using namespace ursa;
using namespace ursa::fleet;

void FairQueue::setPolicy(const std::string &Client, ClientPolicy P) {
  if (!P.Weight)
    P.Weight = 1;
  clientFor(Client).Policy = P;
}

FairQueue::ClientQ &FairQueue::clientFor(const std::string &Name) {
  auto It = Index.find(Name);
  if (It != Index.end())
    return Clients[It->second];
  Index.emplace(Name, Clients.size());
  ClientQ C;
  C.Name = Name;
  C.Policy = Default;
  if (!C.Policy.Weight)
    C.Policy.Weight = 1;
  Clients.push_back(std::move(C));
  return Clients.back();
}

int FairQueue::mostOverShare() const {
  int Best = -1;
  double BestShare = -1;
  for (size_t I = 0; I != Clients.size(); ++I) {
    const ClientQ &C = Clients[I];
    if (C.Q.empty())
      continue;
    double Share = double(C.Q.size()) / double(C.Policy.Weight);
    if (Share > BestShare ||
        (Share == BestShare && Best >= 0 &&
         C.Q.size() > Clients[size_t(Best)].Q.size())) {
      Best = int(I);
      BestShare = Share;
    }
  }
  return Best;
}

void FairQueue::activate(size_t Idx) {
  ClientQ &C = Clients[Idx];
  if (!C.InRound) {
    C.InRound = true;
    // A client entering the round starts with a full quantum so a lone
    // arrival is served immediately regardless of weight.
    C.Deficit = C.Policy.Weight;
    Active.push_back(Idx);
  }
}

FairQueue::Admit FairQueue::push(Item &&I, Item *Victim) {
  ClientQ &C = clientFor(I.R.Client);
  size_t CIdx = size_t(&C - Clients.data());
  if (C.Policy.Quota && C.Q.size() >= C.Policy.Quota) {
    ++C.Refused;
    return Admit::OverQuota;
  }
  if (Total >= Capacity) {
    // Full: someone has to give. Charge the client most over its fair
    // share — counting the arrival, so an arriving hog refuses itself
    // rather than displacing a client under its share.
    int V = mostOverShare();
    double ArrivalShare =
        double(C.Q.size() + 1) / double(C.Policy.Weight);
    if (V < 0 || ArrivalShare >=
                     double(Clients[size_t(V)].Q.size()) /
                         double(Clients[size_t(V)].Policy.Weight)) {
      ++C.Refused;
      return Admit::OverShare;
    }
    ClientQ &VC = Clients[size_t(V)];
    assert(Victim && !VC.Q.empty());
    // Displace the victim's *newest* request: its oldest are closest to
    // service and dropping them would maximize wasted queue time.
    // One out, one in: Total is unchanged by a displacement.
    *Victim = std::move(VC.Q.back());
    VC.Q.pop_back();
    ++VC.Refused;
    ++C.Admitted;
    C.Q.push_back(std::move(I));
    activate(CIdx);
    return Admit::DisplacedOther;
  }
  ++C.Admitted;
  C.Q.push_back(std::move(I));
  ++Total;
  Peak = std::max(Peak, Total);
  activate(CIdx);
  return Admit::Ok;
}

bool FairQueue::popOne(Item &Out) {
  while (!Active.empty()) {
    size_t Idx = Active.front();
    ClientQ &C = Clients[Idx];
    if (C.Q.empty()) {
      C.InRound = false;
      C.Deficit = 0;
      Active.pop_front();
      continue;
    }
    if (!C.Deficit) {
      // Quantum spent: recharge and rotate to the back of the round.
      C.Deficit = C.Policy.Weight;
      Active.pop_front();
      Active.push_back(Idx);
      continue;
    }
    --C.Deficit;
    Out = std::move(C.Q.front());
    C.Q.pop_front();
    --Total;
    if (C.Q.empty()) {
      C.InRound = false;
      C.Deficit = 0;
      Active.pop_front();
    }
    return true;
  }
  return false;
}

std::vector<FairQueue::Item> FairQueue::drain() {
  std::vector<Item> Out;
  Out.reserve(Total);
  Item I;
  while (popOne(I))
    Out.push_back(std::move(I));
  return Out;
}

size_t FairQueue::queuedFor(const std::string &Client) const {
  auto It = Index.find(Client);
  return It == Index.end() ? 0 : Clients[It->second].Q.size();
}

std::vector<FairQueue::ClientView> FairQueue::clients() const {
  std::vector<ClientView> Out;
  Out.reserve(Clients.size());
  for (const ClientQ &C : Clients)
    Out.push_back({C.Name, C.Policy.Weight, C.Policy.Quota, C.Q.size(),
                   C.Admitted, C.Refused});
  return Out;
}
