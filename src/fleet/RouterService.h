//===- fleet/RouterService.h - Sharded compile-fleet front end --*- C++ -*-===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fleet router: a ServiceHandler that forwards compile requests to N
/// backend `ursa_served` instances instead of compiling anything itself.
/// Plugged into the same socket Server clients already speak to, it is
/// protocol-invisible — `ursa_batch --connect` against a router fronting
/// one backend produces byte-identical output to a direct connection.
///
/// The moving parts, each its own file:
///
///  * Ring (fleet/Ring.h): consistent hashing on (machine-key, source)
///    picks the home shard; fleet resize remaps ~1/N of keys, so each
///    backend's MeasurementCache stays warm for its shard.
///  * FairQueue (fleet/FairQueue.h): per-client deficit-weighted fair
///    queueing with quotas — overload sheds the over-quota client.
///  * BackendPool (fleet/BackendPool.h): `health`-verb probing with
///    automatic ring ejection/readmission plus demand ejection.
///
/// Failover is governed by the client-side at-most-once rules
/// (service/Client.h): a dial failure, send EPIPE, clean pre-response
/// FIN, or an explicit shed/busy from the backend prove the compile
/// never started, so the request replays to the key's next live
/// successor. Anything else (reset or timeout mid-exchange) is
/// indeterminate: the router answers `busy_retry_later` — the *client's*
/// resubmission is a fresh request and may run anywhere, but the router
/// itself never replays work that may already be running.
///
/// The stats/health verbs aggregate: each live backend's stats document
/// is fetched, histograms are merged snapshot-wise (they add), request
/// counters are summed, and the result is one ursa.service_stats.v1
/// document (or Prometheus exposition) with a `fleet` section of
/// per-backend detail. docs/SERVICE.md §11 covers the whole topology.
///
//===----------------------------------------------------------------------===//

#ifndef URSA_FLEET_ROUTERSERVICE_H
#define URSA_FLEET_ROUTERSERVICE_H

#include "fleet/BackendPool.h"
#include "fleet/FairQueue.h"
#include "fleet/Ring.h"
#include "obs/Histogram.h"
#include "service/Client.h"
#include "service/Handler.h"

#include <atomic>
#include <condition_variable>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

namespace ursa::fleet {

struct RouterConfig {
  std::vector<BackendConfig> Backends;
  unsigned Workers = 4;        ///< forwarding threads (I/O bound, not CPU)
  unsigned QueueDepth = 256;   ///< fair-queue capacity across all clients
  unsigned VirtualNodes = 64;  ///< ring points per backend
  unsigned ProbeIntervalMs = 200;
  unsigned ProbeTimeoutMs = 500;
  unsigned FailThreshold = 2;  ///< consecutive probe failures to eject
  unsigned IoTimeoutMs = 0;    ///< backend-connection op deadline (0 = none)
  size_t MaxRequestBytes = 8u << 20;
  ClientPolicy DefaultClient;  ///< weight/quota for unregistered clients
  std::map<std::string, ClientPolicy> Clients; ///< per-name overrides
};

class RouterService : public service::ServiceHandler {
public:
  explicit RouterService(const RouterConfig &C);
  ~RouterService() override;

  RouterService(const RouterService &) = delete;
  RouterService &operator=(const RouterService &) = delete;

  /// Builds the ring, probes every backend once (so a dead seed is
  /// ejected before the first request), and starts the prober and the
  /// forwarding workers. Fails on an empty backend list.
  Status start();

  bool handle(const service::ServiceRequest &R,
              service::ResponseFn Done) override;
  obs::JsonParseLimits parseLimits() const override;
  void stop(bool Drain) override;

  /// Fleet-wide aggregates (also reachable through the stats/health
  /// verbs). The JSON documents keep the single-server schemas with an
  /// added `fleet` section.
  std::string statsJSON() const;
  std::string statsPrometheus() const;
  std::string healthJSON() const;
  std::string reportJSON() const;

  BackendPool &pool() { return Pool; }
  const Ring &ring() const { return ShardRing; }
  const RouterConfig &config() const { return Config; }

  struct Counters {
    uint64_t Received = 0;
    uint64_t Completed = 0;
    uint64_t Failovers = 0;   ///< replays to a successor backend
    uint64_t Busy = 0;        ///< busy_retry_later answers
    uint64_t ShedQuota = 0;   ///< refusals: client over quota
    uint64_t ShedShare = 0;   ///< refusals: arrival most over share
    uint64_t ShedDisplaced = 0; ///< queued requests displaced by arbitration
    uint64_t DeadlineExpired = 0;
    size_t QueueDepth = 0;
    size_t QueueDepthPeak = 0;
    uint64_t InFlight = 0;
  };
  Counters counters() const;

private:
  /// How one forward attempt ended, per the at-most-once matrix.
  enum class Fwd {
    Done,            ///< response in hand
    NotStartedAlive, ///< backend answered shed/busy: replay, keep it routable
    NotStartedDead,  ///< EPIPE or clean pre-response FIN: eject + replay
    Indeterminate,   ///< may be running: never replay
    ConnectFail      ///< could not dial: eject + replay
  };

  void workerLoop();
  void routeOne(FairQueue::Item Item,
                std::vector<std::unique_ptr<service::ServiceClient>> &Conns);
  Fwd forwardTo(size_t Backend, const service::ServiceRequest &R,
                std::string_view Tid, service::ServiceResponse &Out,
                std::vector<std::unique_ptr<service::ServiceClient>> &Conns,
                std::string &Why);

  /// Fetches one backend's stats/health document ("" on failure).
  std::string fetchBackendDoc(size_t I,
                              service::ServiceRequest::OpKind Op) const;

  RouterConfig Config;
  Ring ShardRing;
  BackendPool Pool;
  uint64_t StartUs = 0;

  mutable std::mutex QueueMu;
  std::condition_variable QueueCv;
  FairQueue Queue;
  bool Stopping = false;
  std::vector<std::thread> Workers;
  bool Started = false;

  std::atomic<uint64_t> Received{0};
  std::atomic<uint64_t> Completed{0};
  std::atomic<uint64_t> Failovers{0};
  std::atomic<uint64_t> BusyAnswers{0};
  std::atomic<uint64_t> ShedQuota{0};
  std::atomic<uint64_t> ShedShare{0};
  std::atomic<uint64_t> ShedDisplaced{0};
  std::atomic<uint64_t> DeadlineExpired{0};
  std::atomic<uint64_t> InFlight{0};
};

/// Parses one histogram object of a stats document (the shape
/// writeHistogramJson emits: name/count/sum_us/max_us + sparse buckets
/// with `le_us` upper edges) back into a dense snapshot. Returns false on
/// anything that does not look like one of ours. Exposed for tests.
bool parseHistogramJson(const obs::JsonValue &V, obs::HistogramSnapshot &Out);

} // namespace ursa::fleet

#endif // URSA_FLEET_ROUTERSERVICE_H
