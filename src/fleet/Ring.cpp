//===- fleet/Ring.cpp - Consistent-hash shard ring ------------------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "fleet/Ring.h"

#include <algorithm>
#include <cassert>

using namespace ursa;
using namespace ursa::fleet;

uint64_t fleet::fnv1a64(std::string_view S, uint64_t H) {
  for (char C : S) {
    H ^= uint64_t(static_cast<unsigned char>(C));
    H *= 0x100000001b3ULL;
  }
  return H;
}

/// Splitmix64 finalizer. FNV-1a avalanches poorly into the high bits on
/// short inputs, and ring placement orders points by the *full* 64-bit
/// value — unfinalized, the vnode points of "b0".."b3"-style names
/// cluster and one backend can own half the key space.
static uint64_t mix64(uint64_t X) {
  X ^= X >> 30;
  X *= 0xBF58476D1CE4E5B9ULL;
  X ^= X >> 27;
  X *= 0x94D049BB133111EBULL;
  X ^= X >> 31;
  return X;
}

void Ring::build(const std::vector<std::string> &BackendNames,
                 unsigned VNodes) {
  assert(!BackendNames.empty() && "ring needs at least one backend");
  assert(VNodes && "ring needs at least one point per backend");
  N = uint32_t(BackendNames.size());
  VN = VNodes;
  Pts.clear();
  Pts.reserve(size_t(N) * VNodes);
  for (uint32_t B = 0; B != N; ++B) {
    for (unsigned I = 0; I != VNodes; ++I) {
      uint64_t H = mix64(fnv1a64("#" + std::to_string(I),
                                 fnv1a64(BackendNames[B])));
      Pts.push_back({H, B});
    }
  }
  // Sort by hash; ties (vanishingly rare) break by backend index so the
  // ring is deterministic regardless of the input order of equal points.
  std::sort(Pts.begin(), Pts.end(), [](const Pt &A, const Pt &B) {
    return A.H != B.H ? A.H < B.H : A.Backend < B.Backend;
  });
}

int Ring::lookup(uint64_t H) const {
  if (Pts.empty())
    return -1;
  auto It = std::lower_bound(
      Pts.begin(), Pts.end(), H,
      [](const Pt &P, uint64_t Key) { return P.H < Key; });
  if (It == Pts.end())
    It = Pts.begin(); // wrap: the ring is circular
  return int(It->Backend);
}

std::vector<uint32_t> Ring::successorOrder(uint64_t H) const {
  std::vector<uint32_t> Order;
  if (Pts.empty())
    return Order;
  Order.reserve(N);
  std::vector<bool> Seen(N, false);
  auto It = std::lower_bound(
      Pts.begin(), Pts.end(), H,
      [](const Pt &P, uint64_t Key) { return P.H < Key; });
  for (size_t Walked = 0; Walked != Pts.size() && Order.size() != N;
       ++Walked) {
    if (It == Pts.end())
      It = Pts.begin();
    if (!Seen[It->Backend]) {
      Seen[It->Backend] = true;
      Order.push_back(It->Backend);
    }
    ++It;
  }
  return Order;
}

uint64_t Ring::routeKey(std::string_view MachineKey, std::string_view Source) {
  // The NUL keeps ("ab","c") and ("a","bc") from colliding; the
  // finalizer puts keys in the same well-mixed space as the ring points.
  return mix64(fnv1a64(Source, fnv1a64(std::string_view("\0", 1),
                                       fnv1a64(MachineKey))));
}
