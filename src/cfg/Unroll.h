//===- cfg/Unroll.h - Loop unrolling over the CFG ---------------*- C++ -*-===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Section 6 future work — "combined with loop unrolling to
/// create a new resource constrained software pipelining technique" —
/// needs loops unrolled *before* trace formation so one trace spans
/// several iterations and URSA can overlap them up to the machine's
/// resources.
///
/// Self-looping blocks (a conditional whose taken or fall arm is the
/// block itself) are peeled into a chain of Factor copies: copy i
/// continues to copy i+1, the last copy loops back to the first, and
/// every copy keeps its original exit arm. Exact semantics for every
/// trip count; trace formation then absorbs the chain into a single
/// multi-iteration trace (copies 2..k have exactly one predecessor).
///
//===----------------------------------------------------------------------===//

#ifndef URSA_CFG_UNROLL_H
#define URSA_CFG_UNROLL_H

#include "cfg/CFG.h"

namespace ursa {

/// Returns \p F with every self-looping block unrolled \p Factor times.
/// Factor <= 1 returns the function unchanged.
CFGFunction unrollLoops(const CFGFunction &F, unsigned Factor);

/// Blocks of \p F that self-loop through a conditional branch.
std::vector<unsigned> findSelfLoops(const CFGFunction &F);

} // namespace ursa

#endif // URSA_CFG_UNROLL_H
