//===- cfg/CFGCompiler.h - Whole-function trace compilation -----*- C++ -*-===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ties the stack together at function granularity: form traces over a
/// CFG, compile every trace with a chosen pipeline (URSA or a baseline),
/// and execute the result under trace-scheduling semantics — each VLIW
/// trace runs until its first taken side-exit branch, which squashes the
/// rest of the trace and transfers to the target block's trace. State
/// crosses traces through memory only, so side exits are safe by
/// construction (stores never move across recording branches).
///
//===----------------------------------------------------------------------===//

#ifndef URSA_CFG_CFGCOMPILER_H
#define URSA_CFG_CFGCOMPILER_H

#include "cfg/TraceFormation.h"
#include "sched/Pipelines.h"

#include <functional>
#include <string>
#include <vector>

namespace ursa {

/// A function compiled trace-by-trace.
struct CompiledCFG {
  bool Ok = false;
  std::string Error;
  TraceSet Traces;
  /// Per formed trace, the compiled program (index-aligned).
  std::vector<VLIWProgram> Programs;
  /// Aggregates over all traces.
  unsigned TotalWords = 0;
  unsigned TotalSpills = 0;
};

/// Compiles each formed trace of \p F with \p Compile (signature of the
/// sched/Pipelines entry points, e.g. compilePrepass) on machine \p M.
CompiledCFG compileCFG(
    const CFGFunction &F, const MachineModel &M,
    const std::function<CompileResult(const Trace &, const MachineModel &)>
        &Compile);

/// Convenience: compile with URSA.
CompiledCFG compileCFGWithURSA(const CFGFunction &F, const MachineModel &M);

/// Executes \p C from \p Initial memory; the observable outcome (final
/// memory + executed block path) must match interpretCFG on \p F.
CFGExecResult runCompiledCFG(const CFGFunction &F, const CompiledCFG &C,
                             const MemoryState &Initial,
                             unsigned Fuel = 10000);

} // namespace ursa

#endif // URSA_CFG_CFGCOMPILER_H
