//===- cfg/CFG.h - Control-flow functions of basic blocks -------*- C++ -*-===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The front-end substrate above straight-line traces: a function is a
/// control-flow graph of basic blocks (the paper's prototype sat on "an
/// existing C compiler front end" producing per-trace dependence DAGs;
/// this module supplies the part of that front end URSA consumes).
///
/// Model: each block's body is a mini-trace (block-local virtual
/// registers; named variables carry state across blocks — the load/store
/// discipline of the paper's architecture class), ended by a terminator:
/// an unconditional jump, a conditional branch with an edge probability
/// annotation, or a return. Trace formation (cfg/TraceFormation.h) turns
/// hot paths through this graph into the straight-line traces URSA
/// schedules.
///
//===----------------------------------------------------------------------===//

#ifndef URSA_CFG_CFG_H
#define URSA_CFG_CFG_H

#include "ir/Interpreter.h"
#include "ir/Trace.h"

#include <string>
#include <vector>

namespace ursa {

/// How a basic block ends.
struct Terminator {
  enum KindT { Jump, CondBr, Ret } Kind = Ret;
  int CondVReg = -1;     ///< CondBr: block-local vreg tested against 0
  int TakenBlock = -1;   ///< CondBr: target when the condition is true
  int FallBlock = -1;    ///< CondBr: target when false; Jump: the target
  double TakenProb = 0.5; ///< CondBr: annotated probability of taken
};

/// One basic block: a body trace plus its terminator.
struct BasicBlock {
  std::string Name;
  Trace Body;
  Terminator Term;

  explicit BasicBlock(std::string BlockName = "bb")
      : Name(BlockName), Body(std::move(BlockName)) {}
};

/// A function: blocks with block 0 as the entry.
class CFGFunction {
public:
  explicit CFGFunction(std::string Name = "func")
      : FuncName(std::move(Name)) {}

  const std::string &name() const { return FuncName; }

  unsigned numBlocks() const { return Blocks.size(); }
  BasicBlock &block(unsigned I) { return Blocks[I]; }
  const BasicBlock &block(unsigned I) const { return Blocks[I]; }

  /// Appends a block and returns its index.
  unsigned addBlock(std::string BlockName) {
    Blocks.emplace_back(std::move(BlockName));
    return Blocks.size() - 1;
  }

  /// Block index by name, -1 if absent.
  int blockByName(const std::string &BlockName) const;

  /// Successor block indices of \p B (0, 1 or 2 entries).
  std::vector<unsigned> successors(unsigned B) const;

  /// Predecessor block indices of \p B.
  std::vector<unsigned> predecessors(unsigned B) const;

  /// Structural checks: targets in range, CondBr conditions defined in
  /// the block, bodies verify. Empty result means well-formed.
  std::vector<std::string> verify() const;

  /// Renders the function in its textual syntax.
  std::string str() const;

private:
  std::string FuncName;
  std::vector<BasicBlock> Blocks;
};

/// Estimated execution frequency per block, entry = 1.0, propagated
/// through edge probabilities to a fixpoint (geometric convergence as
/// long as every cycle has an exit probability).
std::vector<double> estimateBlockFrequencies(const CFGFunction &F,
                                             unsigned MaxIters = 200);

/// Reference semantics: executes \p F block by block from the entry,
/// threading memory through; \p Fuel bounds the number of block
/// executions (loops!). Appends each executed block index to
/// \p PathOut when given.
struct CFGExecResult {
  MemoryState Memory;
  bool Ok = false;
  std::string Error;
  std::vector<unsigned> Path;
  /// Compiled execution only: total machine cycles actually spent
  /// (squashed trace suffixes are not charged).
  unsigned Cycles = 0;
};
CFGExecResult interpretCFG(const CFGFunction &F, const MemoryState &Initial,
                           unsigned Fuel = 10000);

} // namespace ursa

#endif // URSA_CFG_CFG_H
