//===- cfg/TraceOpt.h - Intra-trace memory promotion ------------*- C++ -*-===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The memory-promotion half of a trace-scheduling front end: inside one
/// trace, a load that follows a store to the same variable reads a value
/// the compiler already has in a register, and a store overwritten by a
/// later store (with no side exit between them) can never be observed.
/// Without this, unrolled loop iterations chain through store->load
/// dependences and URSA has no parallelism to allocate.
///
/// Safety under trace semantics:
///  * forwarding survives side exits — the forwarded store still commits,
///    so the off-trace path reads the same memory;
///  * dead-store elimination must NOT cross a recording branch — a side
///    exit between the two stores observes the first one.
///
//===----------------------------------------------------------------------===//

#ifndef URSA_CFG_TRACEOPT_H
#define URSA_CFG_TRACEOPT_H

#include "ir/Trace.h"

namespace ursa {

/// Statistics of one optimization run.
struct TraceOptStats {
  unsigned LoadsForwarded = 0;
  unsigned StoresEliminated = 0;
};

/// Applies store-to-load forwarding and branch-safe dead-store
/// elimination to \p T in place.
TraceOptStats forwardAndEliminate(Trace &T);

/// Local value numbering over pure operations (no memory effect): a
/// recomputation with identical opcode, operands and immediates reuses
/// the first result. Unrolled iterations rematerialize the same
/// constants and address arithmetic; de-duplicating them shrinks both
/// the op count and the measured register width. Returns the number of
/// instructions removed.
unsigned valueNumberTrace(Trace &T);

} // namespace ursa

#endif // URSA_CFG_TRACEOPT_H
