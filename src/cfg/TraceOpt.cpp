//===- cfg/TraceOpt.cpp - Intra-trace memory promotion --------------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "cfg/TraceOpt.h"

#include <map>
#include <tuple>
#include <vector>

using namespace ursa;

unsigned ursa::valueNumberTrace(Trace &T) {
  // Key: opcode, canonical operands, immediate payload bits.
  using Key = std::tuple<uint8_t, int, int, int, int64_t, uint64_t>;
  std::map<Key, int> Known; // key -> defining vreg
  std::vector<int> Replace(T.numVRegs(), -1);
  std::vector<uint8_t> Dead(T.size(), 0);
  unsigned Removed = 0;

  for (unsigned Idx = 0, E = T.size(); Idx != E; ++Idx) {
    Instruction &I = T.instr(Idx);
    for (unsigned S = 0; S != I.numOperands(); ++S) {
      int V = I.operand(S);
      while (V >= 0 && Replace[V] >= 0)
        V = Replace[V];
      I.setOperand(S, V);
    }
    if (effect(I.opcode()) != OpEffect::None)
      continue;
    uint64_t FltBits;
    double F = I.fltImm();
    static_assert(sizeof(FltBits) == sizeof(F), "payload size");
    __builtin_memcpy(&FltBits, &F, sizeof(F));
    Key K{uint8_t(I.opcode()),
          I.numOperands() > 0 ? I.operand(0) : -1,
          I.numOperands() > 1 ? I.operand(1) : -1,
          I.numOperands() > 2 ? I.operand(2) : -1,
          I.intImm(),
          FltBits};
    auto [It, Inserted] = Known.emplace(K, I.dest());
    if (!Inserted) {
      Replace[I.dest()] = It->second;
      Dead[Idx] = 1;
      ++Removed;
    }
  }
  if (Removed == 0)
    return 0;
  std::vector<Instruction> Kept;
  Kept.reserve(T.size() - Removed);
  for (unsigned Idx = 0, E = T.size(); Idx != E; ++Idx)
    if (!Dead[Idx])
      Kept.push_back(T.instr(Idx));
  T.replaceInstructions(std::move(Kept));
  return Removed;
}

TraceOptStats ursa::forwardAndEliminate(Trace &T) {
  TraceOptStats Stats;

  struct PendingStore {
    int VReg;             ///< value last stored to the symbol
    int InstrIdx;         ///< index of that store
    bool BranchSince;     ///< a side exit may observe it
  };
  std::map<int, PendingStore> Last; // symbol -> last store facts

  std::vector<uint8_t> Dead(T.size(), 0);
  std::vector<int> ReplaceVReg(T.numVRegs(), -1); // load dest -> forwarded

  for (unsigned Idx = 0, E = T.size(); Idx != E; ++Idx) {
    Instruction &I = T.instr(Idx);

    // Uses first: apply pending replacements transitively.
    for (unsigned S = 0; S != I.numOperands(); ++S) {
      int V = I.operand(S);
      while (V >= 0 && ReplaceVReg[V] >= 0)
        V = ReplaceVReg[V];
      I.setOperand(S, V);
    }

    switch (effect(I.opcode())) {
    case OpEffect::MemLoad: {
      auto It = Last.find(I.symbol());
      if (It == Last.end())
        break;
      // Forward only within one domain; a float load of an int store
      // (or vice versa) keeps the IR's memory-reinterpretation
      // semantics, stays, and pins the store (it is now observed).
      if (T.vregDomain(It->second.VReg) != I.domain()) {
        It->second.BranchSince = true;
        break;
      }
      ReplaceVReg.resize(T.numVRegs(), -1);
      ReplaceVReg[I.dest()] = It->second.VReg;
      Dead[Idx] = 1;
      ++Stats.LoadsForwarded;
      break;
    }
    case OpEffect::MemStore: {
      auto It = Last.find(I.symbol());
      if (It != Last.end() && !It->second.BranchSince) {
        Dead[It->second.InstrIdx] = 1;
        ++Stats.StoresEliminated;
      }
      Last[I.symbol()] = {I.operand(0), int(Idx), false};
      break;
    }
    case OpEffect::Branch:
      for (auto &[Sym, P] : Last) {
        (void)Sym;
        P.BranchSince = true;
      }
      break;
    default:
      break;
    }
  }

  if (Stats.LoadsForwarded == 0 && Stats.StoresEliminated == 0)
    return Stats;

  std::vector<Instruction> Kept;
  Kept.reserve(T.size());
  for (unsigned Idx = 0, E = T.size(); Idx != E; ++Idx)
    if (!Dead[Idx])
      Kept.push_back(T.instr(Idx));
  T.replaceInstructions(std::move(Kept));
  return Stats;
}
