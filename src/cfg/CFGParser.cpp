//===- cfg/CFGParser.cpp - Text format for CFG functions ------------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "cfg/CFGParser.h"

#include "ir/Parser.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>
#include <vector>

using namespace ursa;

namespace {

/// Raw per-block source gathered in a first pass; bodies are handed to
/// the trace parser, terminators resolved once all block names are known.
struct RawBlock {
  std::string Name;
  std::string BodySource;
  std::string TermLine;
  unsigned TermLineNo = 0;
};

std::string trim(const std::string &S) {
  size_t B = S.find_first_not_of(" \t\r");
  if (B == std::string::npos)
    return "";
  size_t E = S.find_last_not_of(" \t\r");
  return S.substr(B, E - B + 1);
}

std::string stripComment(const std::string &S) {
  size_t H = S.find('#');
  return H == std::string::npos ? S : S.substr(0, H);
}

bool startsWith(const std::string &S, const char *Prefix) {
  return S.rfind(Prefix, 0) == 0;
}

} // namespace

bool ursa::parseCFG(const std::string &Source, CFGFunction &Out,
                    std::string &Err) {
  std::istringstream In(Source);
  std::string Line;
  unsigned LineNo = 0;
  auto Fail = [&](const std::string &Msg) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "line %u: ", LineNo);
    Err = Buf + Msg;
    return false;
  };

  // Pass 1: function header, block boundaries, body text, terminators.
  std::string FuncName;
  std::vector<RawBlock> Raw;
  bool InFunc = false, Closed = false;
  while (std::getline(In, Line)) {
    ++LineNo;
    std::string S = trim(stripComment(Line));
    if (S.empty())
      continue;
    if (!InFunc) {
      if (!startsWith(S, "func "))
        return Fail("expected 'func <name> {'");
      size_t Brace = S.find('{');
      if (Brace == std::string::npos)
        return Fail("expected '{' on the func line");
      FuncName = trim(S.substr(5, Brace - 5));
      if (FuncName.empty())
        return Fail("missing function name");
      InFunc = true;
      continue;
    }
    if (S == "}") {
      Closed = true;
      break;
    }
    if (startsWith(S, "block ")) {
      std::string Name = trim(S.substr(6));
      if (Name.empty() || Name.back() != ':')
        return Fail("expected 'block <name>:'");
      Name.pop_back();
      Name = trim(Name);
      for (const RawBlock &B : Raw)
        if (B.Name == Name)
          return Fail("duplicate block '" + Name + "'");
      Raw.push_back({Name, "", "", 0});
      continue;
    }
    if (Raw.empty())
      return Fail("instruction before the first block");
    if (S == "ret" || startsWith(S, "jmp ") || startsWith(S, "br ")) {
      if (!Raw.back().TermLine.empty())
        return Fail("block '" + Raw.back().Name + "' has two terminators");
      Raw.back().TermLine = S;
      Raw.back().TermLineNo = LineNo;
      continue;
    }
    if (!Raw.back().TermLine.empty())
      return Fail("instruction after the terminator of block '" +
                  Raw.back().Name + "'");
    Raw.back().BodySource += S + "\n";
  }
  if (!InFunc)
    return Fail("empty input");
  if (!Closed)
    return Fail("missing closing '}'");
  if (Raw.empty())
    return Fail("function has no blocks");

  // Pass 2: build blocks; bodies through the trace parser.
  CFGFunction F(FuncName);
  std::vector<std::map<std::string, int>> Names(Raw.size());
  for (unsigned B = 0; B != Raw.size(); ++B) {
    unsigned Idx = F.addBlock(Raw[B].Name);
    std::string BodyErr;
    if (!parseTrace(Raw[B].BodySource, F.block(Idx).Body, BodyErr,
                    &Names[B])) {
      Err = "block '" + Raw[B].Name + "': " + BodyErr;
      return false;
    }
  }

  // Pass 3: terminators (all names known now).
  for (unsigned B = 0; B != Raw.size(); ++B) {
    LineNo = Raw[B].TermLineNo;
    const std::string &S = Raw[B].TermLine;
    Terminator &T = F.block(B).Term;
    if (S.empty())
      return Fail("block '" + Raw[B].Name + "' has no terminator");
    if (S == "ret") {
      T.Kind = Terminator::Ret;
      continue;
    }
    if (startsWith(S, "jmp ")) {
      std::string Target = trim(S.substr(4));
      int Idx = F.blockByName(Target);
      if (Idx < 0)
        return Fail("unknown jump target '" + Target + "'");
      T.Kind = Terminator::Jump;
      T.FallBlock = Idx;
      continue;
    }
    // br <reg> ? <taken>[:prob] : <fall>
    std::string Rest = trim(S.substr(3));
    size_t Q = Rest.find('?');
    if (Q == std::string::npos)
      return Fail("expected '?' in conditional branch");
    std::string CondName = trim(Rest.substr(0, Q));
    std::string Arms = trim(Rest.substr(Q + 1));
    size_t Colon = std::string::npos;
    // The separating ':' is the one not inside a probability annotation:
    // scan for " : " or the last ':' whose suffix is an identifier.
    int DepthColons = 0;
    (void)DepthColons;
    // Split on the ':' that separates the two arms: find the first ':'
    // that is followed (after optional probability digits) by whitespace
    // before another identifier — simplest robust rule: the arms are
    // separated by the last ':' preceded by whitespace or the first ':'
    // surrounded by spaces.
    size_t SpaceColon = Arms.find(" : ");
    if (SpaceColon != std::string::npos) {
      Colon = SpaceColon + 1;
    } else {
      Colon = Arms.rfind(':');
    }
    if (Colon == std::string::npos)
      return Fail("expected ':' between branch targets");
    std::string TakenPart = trim(Arms.substr(0, Colon));
    std::string FallPart = trim(Arms.substr(Colon + 1));

    double Prob = 0.5;
    size_t ProbColon = TakenPart.find(':');
    if (ProbColon != std::string::npos) {
      Prob = std::strtod(TakenPart.c_str() + ProbColon + 1, nullptr);
      TakenPart = trim(TakenPart.substr(0, ProbColon));
    }
    auto CondIt = Names[B].find(CondName);
    if (CondIt == Names[B].end())
      return Fail("branch condition '" + CondName +
                  "' is not defined in block '" + Raw[B].Name + "'");
    int TakenIdx = F.blockByName(TakenPart);
    int FallIdx = F.blockByName(FallPart);
    if (TakenIdx < 0)
      return Fail("unknown branch target '" + TakenPart + "'");
    if (FallIdx < 0)
      return Fail("unknown branch target '" + FallPart + "'");
    T.Kind = Terminator::CondBr;
    T.CondVReg = CondIt->second;
    T.TakenBlock = TakenIdx;
    T.FallBlock = FallIdx;
    T.TakenProb = Prob;
  }

  std::vector<std::string> Problems = F.verify();
  if (!Problems.empty()) {
    Err = Problems.front();
    return false;
  }
  Out = std::move(F);
  return true;
}

StatusOr<CFGFunction> ursa::parseCFGStatus(const std::string &Source) {
  CFGFunction F;
  std::string Err;
  if (!parseCFG(Source, F, Err))
    return Status::error("parse", Err);
  return F;
}

CFGFunction ursa::parseCFGOrDie(const std::string &Source) {
  StatusOr<CFGFunction> R = parseCFGStatus(Source);
  if (!R.isOk()) {
    std::fprintf(stderr, "parseCFGOrDie: %s\n", R.status().str().c_str());
    std::abort();
  }
  return std::move(*R);
}
