//===- cfg/SoftwarePipeline.cpp - Unroll-factor search ---------------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "cfg/SoftwarePipeline.h"

#include "cfg/Unroll.h"

using namespace ursa;

PipelineSearchResult
ursa::searchUnrollFactor(const CFGFunction &F, const MachineModel &M,
                         const MemoryState &CalibrationInput,
                         unsigned MaxFactor) {
  PipelineSearchResult R;
  CFGExecResult Want = interpretCFG(F, CalibrationInput);
  if (!Want.Ok) {
    R.Error = "calibration input does not terminate: " + Want.Error;
    return R;
  }

  unsigned BestCycles = ~0u;
  for (unsigned Factor = 1; Factor <= MaxFactor; Factor *= 2) {
    CFGFunction U = unrollLoops(F, Factor);
    CompiledCFG C = compileCFGWithURSA(U, M);
    if (!C.Ok)
      continue;
    CFGExecResult Got = runCompiledCFG(U, C, CalibrationInput);
    if (!Got.Ok || !(Got.Memory == Want.Memory))
      continue; // a miscompiled candidate is never selected
    R.Tried.emplace_back(Factor, Got.Cycles);
    if (Got.Cycles < BestCycles) {
      BestCycles = Got.Cycles;
      R.BestFactor = Factor;
      R.BestCycles = Got.Cycles;
      R.Unrolled = std::move(U);
      R.Compiled = std::move(C);
    }
  }
  if (BestCycles == ~0u) {
    R.Error = "no unroll factor compiled and validated";
    return R;
  }
  R.Ok = true;
  return R;
}
