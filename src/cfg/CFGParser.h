//===- cfg/CFGParser.h - Text format for CFG functions ----------*- C++ -*-===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parser for the CFG-level language, the substrate above traces:
///
/// \code
///   func sum {
///   block entry:
///     z = ldi 0
///     store acc, z
///     jmp loop
///   block loop:
///     a  = load acc
///     i  = load i
///     a2 = add a, i
///     k  = ldi 1
///     i2 = sub i, k
///     store acc, a2
///     store i, i2
///     c  = cmplt k, i2        # 1 < i2, keep looping
///     br c ? loop:0.9 : exit
///   block exit:
///     ret
///   }
/// \endcode
///
/// Block bodies use the trace IR syntax (registers are block-local; named
/// variables carry state between blocks). Terminators: `ret`,
/// `jmp <block>`, `br <reg> ? <block>[:prob] : <block>`.
///
//===----------------------------------------------------------------------===//

#ifndef URSA_CFG_CFGPARSER_H
#define URSA_CFG_CFGPARSER_H

#include "cfg/CFG.h"
#include "support/Status.h"

#include <string>

namespace ursa {

/// Parses \p Source into \p Out. Returns true on success; on failure
/// returns false and sets \p Err.
bool parseCFG(const std::string &Source, CFGFunction &Out, std::string &Err);

/// Fallible entry point: the function, or a Status carrying the parse (or
/// CFG verification) diagnostic. Never aborts.
StatusOr<CFGFunction> parseCFGStatus(const std::string &Source);

/// Wrapper over parseCFGStatus that prints the diagnostic and aborts on
/// failure; for known-good embedded sources.
CFGFunction parseCFGOrDie(const std::string &Source);

} // namespace ursa

#endif // URSA_CFG_CFGPARSER_H
