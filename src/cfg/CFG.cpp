//===- cfg/CFG.cpp - Control-flow functions of basic blocks ---------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "cfg/CFG.h"

#include "ir/Interpreter.h"
#include "ir/Verifier.h"

#include <cmath>
#include <cstdio>

using namespace ursa;

int CFGFunction::blockByName(const std::string &BlockName) const {
  for (unsigned I = 0; I != Blocks.size(); ++I)
    if (Blocks[I].Name == BlockName)
      return int(I);
  return -1;
}

std::vector<unsigned> CFGFunction::successors(unsigned B) const {
  const Terminator &T = Blocks[B].Term;
  switch (T.Kind) {
  case Terminator::Ret:
    return {};
  case Terminator::Jump:
    return {unsigned(T.FallBlock)};
  case Terminator::CondBr:
    if (T.TakenBlock == T.FallBlock)
      return {unsigned(T.TakenBlock)};
    return {unsigned(T.TakenBlock), unsigned(T.FallBlock)};
  }
  return {};
}

std::vector<unsigned> CFGFunction::predecessors(unsigned B) const {
  std::vector<unsigned> Preds;
  for (unsigned P = 0; P != Blocks.size(); ++P)
    for (unsigned S : successors(P))
      if (S == B)
        Preds.push_back(P);
  return Preds;
}

std::vector<std::string> CFGFunction::verify() const {
  std::vector<std::string> Problems;
  auto Note = [&](unsigned B, const std::string &Msg) {
    Problems.push_back("block '" + Blocks[B].Name + "': " + Msg);
  };
  for (unsigned B = 0; B != Blocks.size(); ++B) {
    const BasicBlock &BB = Blocks[B];
    for (const std::string &P : verifyTrace(BB.Body))
      Note(B, P);
    const Terminator &T = BB.Term;
    auto CheckTarget = [&](int Tgt) {
      if (Tgt < 0 || unsigned(Tgt) >= Blocks.size())
        Note(B, "terminator target out of range");
    };
    switch (T.Kind) {
    case Terminator::Ret:
      break;
    case Terminator::Jump:
      CheckTarget(T.FallBlock);
      break;
    case Terminator::CondBr:
      CheckTarget(T.TakenBlock);
      CheckTarget(T.FallBlock);
      if (T.CondVReg < 0 || unsigned(T.CondVReg) >= BB.Body.numVRegs())
        Note(B, "branch condition register out of range");
      else if (BB.Body.vregDomain(T.CondVReg) != Domain::Int)
        Note(B, "branch condition must be an integer value");
      if (!(T.TakenProb >= 0.0 && T.TakenProb <= 1.0))
        Note(B, "branch probability outside [0,1]");
      break;
    }
  }
  return Problems;
}

std::string CFGFunction::str() const {
  std::string S = "func " + FuncName + " {\n";
  char Buf[96];
  for (unsigned B = 0; B != Blocks.size(); ++B) {
    const BasicBlock &BB = Blocks[B];
    S += "block " + BB.Name + ":\n";
    std::string Body = BB.Body.str();
    // Indent the body.
    size_t Pos = 0;
    while (Pos < Body.size()) {
      size_t Nl = Body.find('\n', Pos);
      S += "  " + Body.substr(Pos, Nl - Pos) + "\n";
      Pos = Nl == std::string::npos ? Body.size() : Nl + 1;
    }
    switch (BB.Term.Kind) {
    case Terminator::Ret:
      S += "  ret\n";
      break;
    case Terminator::Jump:
      S += "  jmp " + Blocks[BB.Term.FallBlock].Name + "\n";
      break;
    case Terminator::CondBr:
      std::snprintf(Buf, sizeof(Buf), "  br v%d ? %s:%.2f : %s\n",
                    BB.Term.CondVReg,
                    Blocks[BB.Term.TakenBlock].Name.c_str(), BB.Term.TakenProb,
                    Blocks[BB.Term.FallBlock].Name.c_str());
      S += Buf;
      break;
    }
  }
  S += "}\n";
  return S;
}

std::vector<double> ursa::estimateBlockFrequencies(const CFGFunction &F,
                                                   unsigned MaxIters) {
  unsigned N = F.numBlocks();
  std::vector<double> Freq(N, 0.0);
  if (N == 0)
    return Freq;

  // Gauss-Seidel style propagation: freq(entry) = 1 + incoming back
  // edges; every other block sums weighted predecessor frequencies.
  // Converges geometrically when every cycle leaks probability.
  for (unsigned Iter = 0; Iter != MaxIters; ++Iter) {
    double MaxDelta = 0.0;
    for (unsigned B = 0; B != N; ++B) {
      double In = B == 0 ? 1.0 : 0.0;
      for (unsigned P : F.predecessors(B)) {
        const Terminator &T = F.block(P).Term;
        double W = 1.0;
        if (T.Kind == Terminator::CondBr && T.TakenBlock != T.FallBlock)
          W = unsigned(T.TakenBlock) == B ? T.TakenProb : 1.0 - T.TakenProb;
        In += Freq[P] * W;
      }
      MaxDelta = std::max(MaxDelta, std::fabs(In - Freq[B]));
      Freq[B] = In;
    }
    if (MaxDelta < 1e-9)
      break;
  }
  return Freq;
}

CFGExecResult ursa::interpretCFG(const CFGFunction &F,
                                 const MemoryState &Initial, unsigned Fuel) {
  CFGExecResult R;
  R.Memory = Initial;
  if (F.numBlocks() == 0) {
    R.Ok = true;
    return R;
  }
  int Cur = 0;
  while (Fuel-- > 0) {
    const BasicBlock &BB = F.block(unsigned(Cur));
    R.Path.push_back(unsigned(Cur));

    // Execute the body plus (for conditional exits) a recording branch,
    // whose log entry decides the direction.
    Trace Step = BB.Body;
    if (BB.Term.Kind == Terminator::CondBr)
      Step.emitBranch(BB.Term.CondVReg);
    ExecResult Out = interpret(Step, R.Memory);
    R.Memory = std::move(Out.Memory);

    switch (BB.Term.Kind) {
    case Terminator::Ret:
      R.Ok = true;
      return R;
    case Terminator::Jump:
      Cur = BB.Term.FallBlock;
      break;
    case Terminator::CondBr:
      Cur = Out.BranchLog.back() ? BB.Term.TakenBlock : BB.Term.FallBlock;
      break;
    }
  }
  R.Error = "out of fuel (non-terminating control flow?)";
  return R;
}
