//===- cfg/SoftwarePipeline.h - Unroll-factor search -------------*- C++ -*-===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Section 6 extension as an API: "combined with loop unrolling to
/// create a new resource constrained software pipelining technique".
/// Candidate unroll factors are compiled through trace formation and
/// URSA, calibrated on a short profiling run, and the factor with the
/// lowest dynamic cycle count wins — the resource constraints do the
/// rest (URSA stops the overlap where the machine runs out).
///
//===----------------------------------------------------------------------===//

#ifndef URSA_CFG_SOFTWAREPIPELINE_H
#define URSA_CFG_SOFTWAREPIPELINE_H

#include "cfg/CFGCompiler.h"

namespace ursa {

/// Outcome of the unroll search.
struct PipelineSearchResult {
  bool Ok = false;
  std::string Error;
  unsigned BestFactor = 1;
  unsigned BestCycles = 0; ///< dynamic cycles of the calibration run
  CFGFunction Unrolled;    ///< the winning function
  CompiledCFG Compiled;    ///< its compiled form
  /// (factor, dynamic cycles) for every candidate tried; factors whose
  /// compilation failed are absent.
  std::vector<std::pair<unsigned, unsigned>> Tried;

  PipelineSearchResult() : Unrolled("none") {}
};

/// Searches unroll factors 1, 2, 4, ..., \p MaxFactor (powers of two) for
/// the lowest dynamic cycle count of \p F on \p M, calibrating each
/// candidate by executing it from \p CalibrationInput.
PipelineSearchResult searchUnrollFactor(const CFGFunction &F,
                                        const MachineModel &M,
                                        const MemoryState &CalibrationInput,
                                        unsigned MaxFactor = 8);

} // namespace ursa

#endif // URSA_CFG_SOFTWAREPIPELINE_H
