//===- cfg/Unroll.cpp - Loop unrolling over the CFG -----------------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "cfg/Unroll.h"

#include <string>

using namespace ursa;

std::vector<unsigned> ursa::findSelfLoops(const CFGFunction &F) {
  std::vector<unsigned> Loops;
  for (unsigned B = 0; B != F.numBlocks(); ++B) {
    const Terminator &T = F.block(B).Term;
    if (T.Kind == Terminator::CondBr &&
        (unsigned(T.TakenBlock) == B) != (unsigned(T.FallBlock) == B))
      Loops.push_back(B);
  }
  return Loops;
}

CFGFunction ursa::unrollLoops(const CFGFunction &F, unsigned Factor) {
  if (Factor <= 1)
    return F;
  CFGFunction Out = F;
  for (unsigned B : findSelfLoops(F)) {
    // Clone the body Factor-1 times: B -> c2 -> ... -> ck -> B.
    unsigned Prev = B;
    for (unsigned Copy = 2; Copy <= Factor; ++Copy) {
      unsigned Idx = Out.addBlock(F.block(B).Name + ".u" +
                                  std::to_string(Copy));
      BasicBlock &NB = Out.block(Idx);
      NB.Body = F.block(B).Body;
      NB.Term = F.block(B).Term;
      // The previous copy's loop arm continues into this one.
      Terminator &PT = Out.block(Prev).Term;
      if (unsigned(PT.TakenBlock) == B)
        PT.TakenBlock = int(Idx);
      else
        PT.FallBlock = int(Idx);
      Prev = Idx;
    }
    // The last copy's loop arm returns to the original header. (It
    // already targets B because the clone copied B's terminator.)
    assert((unsigned(Out.block(Prev).Term.TakenBlock) == B ||
            unsigned(Out.block(Prev).Term.FallBlock) == B) &&
           "unroll chain must close back to the header");
  }
  return Out;
}
