//===- cfg/CFGCompiler.cpp - Whole-function trace compilation -------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "cfg/CFGCompiler.h"

#include "ursa/Compiler.h"
#include "vliw/Simulator.h"

using namespace ursa;

CompiledCFG ursa::compileCFG(
    const CFGFunction &F, const MachineModel &M,
    const std::function<CompileResult(const Trace &, const MachineModel &)>
        &Compile) {
  CompiledCFG C;
  C.Traces = formTraces(F);
  for (const FormedTrace &FT : C.Traces.Traces) {
    CompileResult R = Compile(FT.Code, M);
    if (!R.Ok) {
      C.Error = "trace '" + FT.Code.name() + "': " + R.Error;
      return C;
    }
    C.TotalWords += R.Cycles;
    C.TotalSpills += R.SpillOps;
    C.Programs.push_back(std::move(*R.Prog));
  }
  C.Ok = true;
  return C;
}

CompiledCFG ursa::compileCFGWithURSA(const CFGFunction &F,
                                     const MachineModel &M) {
  return compileCFG(F, M, [](const Trace &T, const MachineModel &Mm) {
    return compileURSA(T, Mm).Compile;
  });
}

CFGExecResult ursa::runCompiledCFG(const CFGFunction &F, const CompiledCFG &C,
                                   const MemoryState &Initial,
                                   unsigned Fuel) {
  CFGExecResult R;
  R.Memory = Initial;
  if (!C.Ok) {
    R.Error = "function was not compiled: " + C.Error;
    return R;
  }
  if (F.numBlocks() == 0) {
    R.Ok = true;
    return R;
  }

  int Block = 0;
  while (Fuel-- > 0) {
    int TI = C.Traces.HeadTraceOf[unsigned(Block)];
    if (TI < 0) {
      R.Error = "control transfer into the middle of a trace (block '" +
                F.block(unsigned(Block)).Name + "')";
      return R;
    }
    const FormedTrace &FT = C.Traces.Traces[unsigned(TI)];
    SimResult Sim = simulate(C.Programs[unsigned(TI)], R.Memory,
                             /*StopAtTakenBranch=*/true);
    if (!Sim.Ok) {
      R.Error = "trace '" + FT.Code.name() + "': " + Sim.Error;
      return R;
    }
    R.Memory = std::move(Sim.Exec.Memory);
    R.Cycles += Sim.Cycles;

    int Next;
    if (Sim.TakenBranch >= 0) {
      const TraceExit &E = FT.SideExits[unsigned(Sim.TakenBranch)];
      for (unsigned I = 0; I != E.BlocksExecuted; ++I)
        R.Path.push_back(FT.Blocks[I]);
      Next = int(E.TargetBlock);
    } else {
      for (unsigned B : FT.Blocks)
        R.Path.push_back(B);
      Next = FT.FallthroughBlock;
    }
    if (Next < 0) {
      R.Ok = true;
      return R;
    }
    Block = Next;
  }
  R.Error = "out of fuel (non-terminating control flow?)";
  return R;
}
