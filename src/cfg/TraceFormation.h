//===- cfg/TraceFormation.h - Fisher-style trace selection ------*- C++ -*-===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Trace formation in the style of Fisher's trace scheduling [Fis81],
/// which the paper names as the source of its DAGs: "By constructing
/// DAGs of traces, which are basic block sequences, trace scheduling
/// allows code motion across basic blocks."
///
/// Blocks are grouped into mutually exclusive traces by expected
/// frequency: the hottest unassigned block seeds a trace, which grows
/// forward along the likeliest successor edge while the successor is
/// unassigned and has no other predecessors (so traces are entered only
/// at their heads — the classic simplification that avoids side-entry
/// bookkeeping). Each trace is then flattened into one straight-line
/// Trace: block-local registers are renumbered, conditional terminators
/// become recording `br` instructions whose *taken* direction means
/// "leave the trace" (conditions are negated when the on-trace arm was
/// the taken one), and the mapping from branch ordinals to off-trace
/// target blocks is kept for execution.
///
//===----------------------------------------------------------------------===//

#ifndef URSA_CFG_TRACEFORMATION_H
#define URSA_CFG_TRACEFORMATION_H

#include "cfg/CFG.h"

#include <vector>

namespace ursa {

/// One side exit of a formed trace.
struct TraceExit {
  unsigned BranchOrdinal;  ///< index among the trace's br instructions
  unsigned TargetBlock;    ///< block executed next when the branch fires
  unsigned BlocksExecuted; ///< leading member blocks that ran if it fires
};

/// A straight-line trace formed from a block sequence.
struct FormedTrace {
  Trace Code;
  std::vector<unsigned> Blocks; ///< member blocks, head first
  std::vector<TraceExit> SideExits;
  /// Block executed after the trace runs to completion; -1 = return.
  int FallthroughBlock = -1;
};

/// All traces of a function; every block belongs to exactly one trace and
/// every control transfer lands on a trace head.
struct TraceSet {
  std::vector<FormedTrace> Traces;
  std::vector<int> TraceOf;     ///< block -> owning trace
  std::vector<int> HeadTraceOf; ///< block -> trace it heads, or -1
};

/// Forms traces over \p F using its edge-probability annotations.
TraceSet formTraces(const CFGFunction &F);

} // namespace ursa

#endif // URSA_CFG_TRACEFORMATION_H
