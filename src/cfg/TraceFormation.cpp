//===- cfg/TraceFormation.cpp - Fisher-style trace selection --------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "cfg/TraceFormation.h"

#include "cfg/TraceOpt.h"

#include <algorithm>
#include <cassert>

using namespace ursa;

namespace {

/// Appends \p Body's instructions to \p Out with registers and symbols
/// renumbered into Out's namespaces; returns the vreg offset mapping
/// start (old vreg v of the block maps to Offset + v).
unsigned appendBlockBody(Trace &Out, const Trace &Body) {
  unsigned VRegOffset = Out.numVRegs();
  for (unsigned V = 0; V != Body.numVRegs(); ++V)
    Out.newVReg(Body.vregDomain(int(V)));

  for (const Instruction &I : Body.instructions()) {
    assert(!isSpillOp(I.opcode()) && "front-end blocks never hold spills");
    Instruction Copy = I;
    if (Copy.dest() >= 0)
      Copy.setDest(Copy.dest() + int(VRegOffset));
    for (unsigned S = 0; S != Copy.numOperands(); ++S)
      Copy.setOperand(S, Copy.operand(S) + int(VRegOffset));
    if (Copy.symbol() >= 0)
      Copy.setSymbol(Out.internSymbol(Body.symbolName(Copy.symbol())));
    Out.append(Copy);
  }
  return VRegOffset;
}

/// Emits `exitCond = (Cond == 0)` — the negation used when the on-trace
/// arm of a conditional was its *taken* side.
int emitNegation(Trace &Out, int Cond) {
  int Zero = Out.emitLoadImm(0);
  return Out.emitOp(Opcode::CmpEq, Cond, Zero);
}

} // namespace

TraceSet ursa::formTraces(const CFGFunction &F) {
  unsigned N = F.numBlocks();
  TraceSet TS;
  TS.TraceOf.assign(N, -1);
  TS.HeadTraceOf.assign(N, -1);
  if (N == 0)
    return TS;

  std::vector<double> Freq = estimateBlockFrequencies(F);
  std::vector<unsigned> Seeds(N);
  for (unsigned I = 0; I != N; ++I)
    Seeds[I] = I;
  std::sort(Seeds.begin(), Seeds.end(), [&](unsigned A, unsigned B) {
    if (Freq[A] != Freq[B])
      return Freq[A] > Freq[B];
    return A < B;
  });
  // The entry must head a trace (execution starts there), so it seeds
  // first regardless of frequency.
  std::stable_partition(Seeds.begin(), Seeds.end(),
                        [](unsigned B) { return B == 0; });

  // Select block sequences.
  std::vector<std::vector<unsigned>> Sequences;
  for (unsigned Seed : Seeds) {
    if (TS.TraceOf[Seed] >= 0)
      continue;
    std::vector<unsigned> Seq{Seed};
    TS.TraceOf[Seed] = int(Sequences.size());
    for (;;) {
      unsigned Last = Seq.back();
      const Terminator &T = F.block(Last).Term;
      int Next = -1;
      if (T.Kind == Terminator::Jump) {
        Next = T.FallBlock;
      } else if (T.Kind == Terminator::CondBr) {
        Next = T.TakenProb >= 0.5 ? T.TakenBlock : T.FallBlock;
        // If the likelier arm cannot be absorbed, try the other one.
        auto Absorbable = [&](int C) {
          return C >= 0 && C != 0 && TS.TraceOf[C] < 0 &&
                 F.predecessors(unsigned(C)).size() == 1;
        };
        if (!Absorbable(Next))
          Next = Next == T.TakenBlock ? T.FallBlock : T.TakenBlock;
      }
      if (Next < 0 || Next == 0 || TS.TraceOf[Next] >= 0 ||
          F.predecessors(unsigned(Next)).size() != 1)
        break;
      TS.TraceOf[Next] = int(Sequences.size());
      Seq.push_back(unsigned(Next));
    }
    Sequences.push_back(std::move(Seq));
  }

  // Flatten each sequence into a straight-line trace.
  for (unsigned TI = 0; TI != Sequences.size(); ++TI) {
    FormedTrace FT;
    FT.Blocks = Sequences[TI];
    FT.Code = Trace(F.name() + ".trace" + std::to_string(TI));
    unsigned BranchOrdinal = 0;

    for (unsigned Pos = 0; Pos != FT.Blocks.size(); ++Pos) {
      unsigned B = FT.Blocks[Pos];
      const BasicBlock &BB = F.block(B);
      unsigned VRegOffset = appendBlockBody(FT.Code, BB.Body);
      bool IsLast = Pos + 1 == FT.Blocks.size();
      const Terminator &T = BB.Term;

      if (T.Kind == Terminator::Ret) {
        assert(IsLast && "a return has no successor to absorb");
        FT.FallthroughBlock = -1;
        continue;
      }
      if (T.Kind == Terminator::Jump) {
        if (IsLast)
          FT.FallthroughBlock = T.FallBlock;
        else
          assert(FT.Blocks[Pos + 1] == unsigned(T.FallBlock) &&
                 "absorbed a block that is not the jump target");
        continue;
      }

      // Conditional branch.
      int Cond = T.CondVReg + int(VRegOffset);
      if (T.TakenBlock == T.FallBlock) {
        // Degenerate two-arm branch to one target; no decision needed.
        if (IsLast)
          FT.FallthroughBlock = T.FallBlock;
        continue;
      }
      if (IsLast) {
        // Exit when taken; fall through to the other arm.
        FT.Code.emitBranch(Cond);
        FT.SideExits.push_back(
            {BranchOrdinal++, unsigned(T.TakenBlock), Pos + 1});
        FT.FallthroughBlock = T.FallBlock;
        continue;
      }
      unsigned OnTrace = FT.Blocks[Pos + 1];
      if (OnTrace == unsigned(T.TakenBlock)) {
        // Staying on the trace is the *taken* direction: negate so the
        // recorded branch fires exactly when execution leaves the trace.
        int Exit = emitNegation(FT.Code, Cond);
        FT.Code.emitBranch(Exit);
        FT.SideExits.push_back(
            {BranchOrdinal++, unsigned(T.FallBlock), Pos + 1});
      } else {
        assert(OnTrace == unsigned(T.FallBlock) &&
               "absorbed a block that is not a branch arm");
        FT.Code.emitBranch(Cond);
        FT.SideExits.push_back(
            {BranchOrdinal++, unsigned(T.TakenBlock), Pos + 1});
      }
    }

    // Promote memory carried between absorbed blocks into registers —
    // without this, unrolled iterations chain through store->load
    // dependences and the trace has no parallelism to allocate.
    forwardAndEliminate(FT.Code);
    valueNumberTrace(FT.Code);

    TS.HeadTraceOf[FT.Blocks.front()] = int(TI);
    TS.Traces.push_back(std::move(FT));
  }
  return TS;
}
