//===- vliw/Simulator.h - Cycle-accurate VLIW execution ---------*- C++ -*-===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes a VLIWProgram with true VLIW semantics: every operation in a
/// word reads its registers at issue, results commit after the op's
/// latency (non-pipelined model — a correct schedule never reads a result
/// early, and the simulator *checks* that by tracking pending writes).
/// The observable outcome has the same shape as the interpreter's, so
/// differential tests compare them directly.
///
//===----------------------------------------------------------------------===//

#ifndef URSA_VLIW_SIMULATOR_H
#define URSA_VLIW_SIMULATOR_H

#include "ir/Interpreter.h"
#include "vliw/VLIWProgram.h"

#include <string>

namespace ursa {

/// Outcome of a simulation.
struct SimResult {
  ExecResult Exec;   ///< final memory + branch log (source order)
  unsigned Cycles = 0;
  bool Ok = false;
  std::string Error; ///< non-empty on hazard / validation failure
  /// Trace mode only: source ordinal of the taken branch that ended the
  /// run, or -1 when the trace ran to completion (fell through).
  int TakenBranch = -1;
};

/// Runs \p P from \p Initial memory. Fails (Ok=false) on structural
/// problems, read-before-ready hazards, same-cycle writes to one
/// register, or functional-unit over-subscription (non-pipelined units
/// stay busy for their full latency) — i.e. on any schedule the hardware
/// would not honor.
///
/// With \p StopAtTakenBranch (trace-scheduling semantics), a taken branch
/// commits its word and squashes all later words: side exits leave the
/// trace with exactly the stores up to and including the branch's cycle.
SimResult simulate(const VLIWProgram &P, const MemoryState &Initial = {},
                   bool StopAtTakenBranch = false);

} // namespace ursa

#endif // URSA_VLIW_SIMULATOR_H
