//===- vliw/Simulator.cpp - Cycle-accurate VLIW execution -----------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "vliw/Simulator.h"

#include "obs/Stats.h"
#include "obs/Tracer.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

using namespace ursa;

URSA_STAT(StatSimRuns, "vliw.sim.runs", "simulations completed");
URSA_STAT(StatSimCycles, "vliw.sim.cycles", "total cycles simulated");
URSA_STAT(StatSimOpsIssued, "vliw.sim.ops_issued",
          "operations issued (VLIW word slots filled)");
URSA_STAT(StatSimFailures, "vliw.sim.failures",
          "simulations rejected (hazard or validation failure)");

namespace {

/// One register file with in-flight write tracking.
struct RegFile {
  std::vector<Value> Vals;
  std::vector<unsigned> ReadyAt;   ///< cycle the last write commits
  std::vector<unsigned> WrittenAt; ///< issue cycle of the last write

  explicit RegFile(unsigned N)
      : Vals(N), ReadyAt(N, 0), WrittenAt(N, ~0u) {}
};

} // namespace

SimResult ursa::simulate(const VLIWProgram &P, const MemoryState &Initial,
                         bool StopAtTakenBranch) {
  URSA_SPAN(SimSpan, "vliw.simulate", "sim");
  SimResult R;
  // Counts every early hazard/validation return without touching each
  // return site.
  struct FailGuard {
    SimResult &R;
    ~FailGuard() {
      if (!R.Ok)
        StatSimFailures.add();
    }
  } FG{R};
  std::string Invalid = P.validate();
  if (!Invalid.empty()) {
    R.Error = "invalid program: " + Invalid;
    return R;
  }

  const MachineModel &M = P.machine();
  RegFile Gpr(std::max(1u, M.numRegs(RegClassKind::GPR)));
  RegFile Fpr(std::max(1u, M.numRegs(RegClassKind::FPR)));
  std::vector<Value> Slots(P.numSpillSlots());
  std::vector<unsigned> SlotReadyAt(P.numSpillSlots(), 0);
  R.Exec.Memory = Initial;

  // Pending register writes: (commit cycle, class, reg, value).
  struct Pending {
    unsigned Due;
    RegClassKind C;
    int Reg;
    Value V;
  };
  std::vector<Pending> InFlight;

  std::vector<std::pair<int64_t, uint8_t>> BranchEvents; // (ordinal, taken)
  char Buf[128];

  auto FileOf = [&](RegClassKind C) -> RegFile & {
    return C == RegClassKind::FPR ? Fpr : Gpr;
  };

  // Functional-unit occupancy: non-pipelined units stay busy for their
  // full latency; the hardware has no queueing, so an over-subscribed
  // word is a scheduler bug worth failing loudly on.
  unsigned BusyCap[4] = {0, 0, 0, 0};
  if (M.isHomogeneous()) {
    BusyCap[0] = M.numFUs(FUKind::Universal);
  } else {
    for (FUKind K : {FUKind::IntALU, FUKind::FloatALU, FUKind::Memory})
      BusyCap[unsigned(K)] = M.numFUs(K);
  }
  std::vector<std::pair<unsigned, unsigned>> BusyUntil; // (class, free at)
  auto ClassOf = [&](const Instruction &I) {
    return M.isHomogeneous() ? 0u : unsigned(I.fuKind());
  };

  unsigned LastActivity = 0;
  bool Aborted = false;
  for (unsigned Cycle = 0; Cycle != P.numWords(); ++Cycle) {
    // Commit writes due at or before this cycle.
    for (auto It = InFlight.begin(); It != InFlight.end();) {
      if (It->Due <= Cycle) {
        FileOf(It->C).Vals[It->Reg] = It->V;
        It = InFlight.erase(It);
      } else {
        ++It;
      }
    }
    BusyUntil.erase(std::remove_if(BusyUntil.begin(), BusyUntil.end(),
                                   [&](const auto &B) {
                                     return B.second <= Cycle;
                                   }),
                    BusyUntil.end());

    const VLIWWord &W = P.word(Cycle);

    // Units requested this word must fit the units still free.
    {
      unsigned Want[4] = {0, 0, 0, 0};
      for (const VLIWOp &Op : W.Ops)
        ++Want[ClassOf(Op.I)];
      unsigned StillBusy[4] = {0, 0, 0, 0};
      for (const auto &[Class, Until] : BusyUntil) {
        (void)Until;
        ++StillBusy[Class];
      }
      for (unsigned C = 0; C != 4; ++C) {
        if (Want[C] + StillBusy[C] > BusyCap[C] && BusyCap[C] > 0) {
          std::snprintf(Buf, sizeof(Buf),
                        "cycle %u: functional units of class %u "
                        "over-subscribed",
                        Cycle, C);
          R.Error = Buf;
          return R;
        }
      }
      for (const VLIWOp &Op : W.Ops) {
        unsigned Occ = M.occupancy(Op.I.fuKind());
        if (Occ > 1)
          BusyUntil.emplace_back(ClassOf(Op.I), Cycle + Occ);
      }
    }

    // Phase 1: every op reads its sources (old register values).
    struct Staged {
      const VLIWOp *Op;
      Value Srcs[3];
    };
    std::vector<Staged> StagedOps;
    for (const VLIWOp &Op : W.Ops) {
      Staged S;
      S.Op = &Op;
      for (unsigned I = 0; I != Op.I.numOperands(); ++I) {
        int Reg = Op.I.operand(I);
        // Operand register class: all our multi-operand ops read their
        // own domain, except CvtIF/CvtFI and stores which read the
        // opposite/explicit class; derive from the opcode table.
        RegClassKind C = RegClassKind::GPR;
        switch (Op.I.opcode()) {
        case Opcode::FStore:
        case Opcode::FAdd:
        case Opcode::FSub:
        case Opcode::FMul:
        case Opcode::FDiv:
        case Opcode::FNeg:
        case Opcode::FMov:
        case Opcode::CvtFI:
          C = RegClassKind::FPR;
          break;
        case Opcode::SpillStore:
          C = Op.I.domain() == Domain::Float ? RegClassKind::FPR
                                             : RegClassKind::GPR;
          break;
        default:
          break;
        }
        if (M.isHomogeneous())
          C = RegClassKind::GPR; // single file on the base machine
        RegFile &F = FileOf(C);
        if (Reg < 0 || unsigned(Reg) >= F.Vals.size()) {
          std::snprintf(Buf, sizeof(Buf),
                        "cycle %u: source register out of range", Cycle);
          R.Error = Buf;
          return R;
        }
        if (F.WrittenAt[Reg] != ~0u && F.WrittenAt[Reg] < Cycle &&
            F.ReadyAt[Reg] > Cycle) {
          std::snprintf(Buf, sizeof(Buf),
                        "cycle %u: read of r%d before its write commits",
                        Cycle, Reg);
          R.Error = Buf;
          return R;
        }
        if (F.WrittenAt[Reg] == Cycle) {
          std::snprintf(Buf, sizeof(Buf),
                        "cycle %u: read of r%d written in the same word",
                        Cycle, Reg);
          R.Error = Buf;
          return R;
        }
        S.Srcs[I] = F.Vals[Reg];
      }
      StagedOps.push_back(S);
    }

    // Phase 2: effects. Loads read memory now; stores buffer until the
    // end of the word; register results enter the in-flight queue.
    size_t BranchesBeforeWord = BranchEvents.size();
    std::map<std::string, Value> StoreBuffer;
    auto Commit = [&](const Instruction &I, Value V) {
      RegClassKind C = M.isHomogeneous() ? RegClassKind::GPR
                                         : I.destRegClass();
      RegFile &F = FileOf(C);
      unsigned L = M.latency(I.fuKind());
      if (F.WrittenAt[I.dest()] == Cycle) {
        std::snprintf(Buf, sizeof(Buf),
                      "cycle %u: two writes to r%d in one word", Cycle,
                      I.dest());
        R.Error = Buf;
        return false;
      }
      F.WrittenAt[I.dest()] = Cycle;
      F.ReadyAt[I.dest()] = Cycle + L;
      InFlight.push_back({Cycle + L, C, I.dest(), V});
      return true;
    };

    for (const Staged &S : StagedOps) {
      const Instruction &I = S.Op->I;
      switch (effect(I.opcode())) {
      case OpEffect::MemLoad: {
        Value V = R.Exec.Memory[P.symbolNames()[I.symbol()]];
        if (I.domain() == Domain::Float && !V.IsFloat)
          V = Value::ofFloat(V.F);
        if (!Commit(I, V))
          return R;
        break;
      }
      case OpEffect::MemStore: {
        const std::string &Name = P.symbolNames()[I.symbol()];
        if (StoreBuffer.count(Name)) {
          std::snprintf(Buf, sizeof(Buf),
                        "cycle %u: two stores to '%s' in one word", Cycle,
                        Name.c_str());
          R.Error = Buf;
          return R;
        }
        StoreBuffer[Name] = S.Srcs[0];
        break;
      }
      case OpEffect::SpillStore: {
        if (SlotReadyAt[I.spillSlot()] > Cycle) {
          std::snprintf(Buf, sizeof(Buf), "cycle %u: spill slot conflict",
                        Cycle);
          R.Error = Buf;
          return R;
        }
        Slots[I.spillSlot()] = S.Srcs[0];
        SlotReadyAt[I.spillSlot()] = Cycle + M.latency(FUKind::Memory);
        break;
      }
      case OpEffect::SpillLoad: {
        if (SlotReadyAt[I.spillSlot()] > Cycle) {
          std::snprintf(Buf, sizeof(Buf),
                        "cycle %u: reload before spill store commits",
                        Cycle);
          R.Error = Buf;
          return R;
        }
        if (!Commit(I, Slots[I.spillSlot()]))
          return R;
        break;
      }
      case OpEffect::Branch:
        BranchEvents.emplace_back(I.intImm(), S.Srcs[0].I != 0 ? 1 : 0);
        break;
      case OpEffect::None:
        if (!Commit(I, evalOperation(I, S.Srcs)))
          return R;
        break;
      }
    }
    for (auto &[Name, V] : StoreBuffer)
      R.Exec.Memory[Name] = V;
    StatSimOpsIssued.add(W.Ops.size());
    if (!W.Ops.empty())
      LastActivity = Cycle + 1;

    // Trace semantics: a taken branch commits its word, then squashes
    // everything after it. Branches are mutually ordered by sequence
    // edges, so at most one can fire per word.
    if (StopAtTakenBranch) {
      int64_t Taken = -1;
      for (size_t I = BranchesBeforeWord; I != BranchEvents.size(); ++I)
        if (BranchEvents[I].second &&
            (Taken < 0 || BranchEvents[I].first < Taken))
          Taken = BranchEvents[I].first;
      if (Taken >= 0) {
        R.TakenBranch = int(Taken);
        Aborted = true;
        LastActivity = Cycle + 1;
        break;
      }
    }
  }

  // Drain in-flight writes (a trailing op's result must still land).
  for (const Pending &Pd : InFlight)
    FileOf(Pd.C).Vals[Pd.Reg] = Pd.V;

  // Branch log in source order.
  std::sort(BranchEvents.begin(), BranchEvents.end());
  for (unsigned I = 0; I != BranchEvents.size(); ++I) {
    if (BranchEvents[I].first != int64_t(I)) {
      R.Error = "branch ordinals are not a permutation of source order";
      return R;
    }
    R.Exec.BranchLog.push_back(BranchEvents[I].second);
  }

  // A squashed trace only spends the cycles up to its taken branch.
  R.Cycles = Aborted ? LastActivity : std::max(LastActivity, P.numWords());
  R.Ok = true;
  StatSimRuns.add();
  StatSimCycles.add(R.Cycles);
  return R;
}
