//===- vliw/VLIWProgram.h - Wide instruction words ---------------*- C++ -*-===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compiled artifact: a sequence of VLIW instruction words, one per
/// machine cycle, each holding at most the machine's issue width of
/// operations. Operations reuse the IR's Instruction but their register
/// fields hold *physical* register numbers (per register class).
///
/// Branch operations carry their original trace ordinal in the integer
/// immediate field so the simulator can reconstruct the branch log in
/// source order regardless of how the schedule interleaved them.
///
//===----------------------------------------------------------------------===//

#ifndef URSA_VLIW_VLIWPROGRAM_H
#define URSA_VLIW_VLIWPROGRAM_H

#include "ir/Instruction.h"
#include "machine/MachineModel.h"

#include <string>
#include <vector>

namespace ursa {

/// One operation in a word; FUSlot is informational (0-based within the
/// op's FU class).
struct VLIWOp {
  Instruction I;
  unsigned FUSlot = 0;
};

/// One machine word = the operations issued in one cycle.
struct VLIWWord {
  std::vector<VLIWOp> Ops;
};

/// A compiled straight-line VLIW program.
class VLIWProgram {
public:
  VLIWProgram(MachineModel Machine, std::vector<std::string> Syms,
              unsigned SpillSlots)
      : M(std::move(Machine)), SymNames(std::move(Syms)),
        NumSpillSlots(SpillSlots) {}

  const MachineModel &machine() const { return M; }
  const std::vector<std::string> &symbolNames() const { return SymNames; }
  unsigned numSpillSlots() const { return NumSpillSlots; }

  unsigned numWords() const { return Words.size(); }
  const VLIWWord &word(unsigned I) const { return Words[I]; }
  VLIWWord &newWord() {
    Words.emplace_back();
    return Words.back();
  }

  /// Number of operations across all words.
  unsigned numOps() const;

  /// Fraction of FU-cycle slots doing work: numOps / (width * words).
  double utilization() const;

  /// Structural validation: per-class FU capacity per word, register
  /// numbers within the machine's files, spill slots in range. Returns an
  /// empty string when valid.
  std::string validate() const;

  /// Multi-line listing, one word per line.
  std::string str() const;

private:
  MachineModel M;
  std::vector<std::string> SymNames;
  unsigned NumSpillSlots;
  std::vector<VLIWWord> Words;
};

} // namespace ursa

#endif // URSA_VLIW_VLIWPROGRAM_H
