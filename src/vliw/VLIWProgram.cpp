//===- vliw/VLIWProgram.cpp - Wide instruction words -----------------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "vliw/VLIWProgram.h"

#include <cstdio>

using namespace ursa;

unsigned VLIWProgram::numOps() const {
  unsigned N = 0;
  for (const VLIWWord &W : Words)
    N += W.Ops.size();
  return N;
}

double VLIWProgram::utilization() const {
  if (Words.empty())
    return 0.0;
  return double(numOps()) / (double(M.totalFUs()) * double(Words.size()));
}

std::string VLIWProgram::validate() const {
  char Buf[128];
  for (unsigned WI = 0; WI != Words.size(); ++WI) {
    const VLIWWord &W = Words[WI];
    unsigned PerClass[4] = {0, 0, 0, 0};
    unsigned Total = 0;
    for (const VLIWOp &Op : W.Ops) {
      ++Total;
      ++PerClass[unsigned(Op.I.fuKind())];
      // Register ranges (the single file serves all classes on the base
      // machine).
      auto CheckReg = [&](int R, RegClassKind C) {
        if (M.isHomogeneous())
          C = RegClassKind::GPR;
        return R >= 0 && unsigned(R) < M.numRegs(C);
      };
      if (Op.I.dest() >= 0 && !CheckReg(Op.I.dest(), Op.I.destRegClass())) {
        std::snprintf(Buf, sizeof(Buf),
                      "word %u: destination register out of range", WI);
        return Buf;
      }
      if (isSpillOp(Op.I.opcode()) &&
          (Op.I.spillSlot() < 0 ||
           unsigned(Op.I.spillSlot()) >= NumSpillSlots)) {
        std::snprintf(Buf, sizeof(Buf), "word %u: spill slot out of range",
                      WI);
        return Buf;
      }
    }
    if (M.isHomogeneous()) {
      if (Total > M.numFUs(FUKind::Universal)) {
        std::snprintf(Buf, sizeof(Buf), "word %u: %u ops exceed %u FUs", WI,
                      Total, M.numFUs(FUKind::Universal));
        return Buf;
      }
    } else {
      for (FUKind K :
           {FUKind::IntALU, FUKind::FloatALU, FUKind::Memory}) {
        if (PerClass[unsigned(K)] > M.numFUs(K)) {
          std::snprintf(Buf, sizeof(Buf),
                        "word %u: class %u ops exceed capacity", WI,
                        unsigned(K));
          return Buf;
        }
      }
    }
  }
  return "";
}

std::string VLIWProgram::str() const {
  std::string S;
  char Buf[32];
  for (unsigned WI = 0; WI != Words.size(); ++WI) {
    std::snprintf(Buf, sizeof(Buf), "%4u: ", WI);
    S += Buf;
    bool First = true;
    for (const VLIWOp &Op : Words[WI].Ops) {
      if (!First)
        S += "  ||  ";
      First = false;
      S += Op.I.str(&SymNames);
    }
    if (First)
      S += "nop";
    S += '\n';
  }
  return S;
}
