//===- machine/MachineModel.cpp - Target VLIW machine model ---------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "machine/MachineModel.h"

#include <cstdio>

using namespace ursa;

MachineModel MachineModel::homogeneous(unsigned Fus, unsigned Regs) {
  assert(Fus > 0 && Regs > 0 && "machine needs at least one FU and register");
  MachineModel M;
  M.Homogeneous = true;
  M.UniversalFUs = Fus;
  M.Gprs = Regs;
  M.Fprs = 0;
  return M;
}

MachineModel MachineModel::classed(unsigned IntFus, unsigned FloatFus,
                                   unsigned MemFus, unsigned Gprs,
                                   unsigned Fprs) {
  assert(IntFus > 0 && MemFus > 0 && Gprs > 0 &&
         "classed machine needs int and memory units plus GPRs");
  MachineModel M;
  M.Homogeneous = false;
  M.IntFUs = IntFus;
  M.FloatFUs = FloatFus;
  M.MemFUs = MemFus;
  M.Gprs = Gprs;
  M.Fprs = Fprs;
  return M;
}

std::string MachineModel::describe() const {
  char Buf[96];
  if (Homogeneous) {
    std::snprintf(Buf, sizeof(Buf), "%ufu/%ur", UniversalFUs, Gprs);
    return Buf;
  }
  std::snprintf(Buf, sizeof(Buf), "%ui+%uf+%um/%ug+%uf", IntFUs, FloatFUs,
                MemFUs, Gprs, Fprs);
  return Buf;
}
