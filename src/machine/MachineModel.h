//===- machine/MachineModel.h - Target VLIW machine model -------*- C++ -*-===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Description of the abstract VLIW target the paper assumes: a load/store
/// machine with a fixed number of registers and functional units, where
/// loads and stores also occupy a functional unit (Section 5). The base
/// model is the paper's: homogeneous non-pipelined unit-latency FUs and a
/// single register class. The extension fields (FU classes, a float
/// register class, latencies) support the Section 6 future-work
/// experiments and default to the base behaviour.
///
//===----------------------------------------------------------------------===//

#ifndef URSA_MACHINE_MACHINEMODEL_H
#define URSA_MACHINE_MACHINEMODEL_H

#include <cassert>
#include <string>

namespace ursa {

/// Functional unit classes. `Universal` FUs execute anything; a machine
/// either is homogeneous (only Universal units) or fully classed.
enum class FUKind { Universal, IntALU, FloatALU, Memory };

/// Register classes. The base machine has only GPRs.
enum class RegClassKind { GPR, FPR };

constexpr unsigned NumRegClasses = 2;

/// Immutable description of one VLIW target configuration.
class MachineModel {
public:
  /// Builds the paper's base machine: \p Fus homogeneous units and \p Regs
  /// general-purpose registers, all latencies 1.
  static MachineModel homogeneous(unsigned Fus, unsigned Regs);

  /// Builds a classed machine (IntALU/FloatALU/Memory units and a split
  /// GPR/FPR file) for the multiple-resource-class extension.
  static MachineModel classed(unsigned IntFus, unsigned FloatFus,
                              unsigned MemFus, unsigned Gprs, unsigned Fprs);

  bool isHomogeneous() const { return Homogeneous; }

  /// Number of FUs that can execute an operation of \p K.
  unsigned numFUs(FUKind K) const {
    if (Homogeneous)
      return UniversalFUs;
    switch (K) {
    case FUKind::Universal:
      return UniversalFUs;
    case FUKind::IntALU:
      return IntFUs;
    case FUKind::FloatALU:
      return FloatFUs;
    case FUKind::Memory:
      return MemFUs;
    }
    assert(false && "covered switch");
    return 0;
  }

  /// Total issue width of one VLIW word.
  unsigned totalFUs() const {
    return Homogeneous ? UniversalFUs : IntFUs + FloatFUs + MemFUs;
  }

  unsigned numRegs(RegClassKind C) const {
    return C == RegClassKind::GPR ? Gprs : Fprs;
  }

  /// Latency in cycles of an operation on FU class \p K. FUs are
  /// non-pipelined: the unit stays busy for the full latency and a
  /// dependent operation starts only after completion.
  unsigned latency(FUKind K) const {
    if (UnitLatency)
      return 1;
    switch (K) {
    case FUKind::Universal:
    case FUKind::IntALU:
      return IntLatency;
    case FUKind::FloatALU:
      return FloatLatency;
    case FUKind::Memory:
      return MemLatency;
    }
    assert(false && "covered switch");
    return 1;
  }

  /// Enables non-unit latencies (int/float/mem) for the pipeline-pressure
  /// experiments. Returns *this for chaining.
  MachineModel &withLatencies(unsigned Int, unsigned Float, unsigned Mem) {
    UnitLatency = false;
    IntLatency = Int;
    FloatLatency = Float;
    MemLatency = Mem;
    return *this;
  }

  /// Section 6 extension: pipelined functional units accept a new
  /// operation every cycle (initiation interval 1) while results still
  /// take the full latency — the interlock-style model that lets the
  /// same machinery target superscalar-like pipelines.
  MachineModel &withPipelinedFUs() {
    PipelinedFUs = true;
    return *this;
  }

  bool pipelinedFUs() const { return PipelinedFUs; }

  /// Cycles a unit stays busy per issued op: the full latency on the
  /// paper's base machine, one cycle when pipelined.
  unsigned occupancy(FUKind K) const {
    return PipelinedFUs ? 1 : latency(K);
  }

  /// Short human-readable description, e.g. "4fu/8r".
  std::string describe() const;

private:
  MachineModel() = default;

  bool Homogeneous = true;
  bool UnitLatency = true;
  bool PipelinedFUs = false;
  unsigned UniversalFUs = 0;
  unsigned IntFUs = 0, FloatFUs = 0, MemFUs = 0;
  unsigned Gprs = 0, Fprs = 0;
  unsigned IntLatency = 1, FloatLatency = 1, MemLatency = 1;
};

} // namespace ursa

#endif // URSA_MACHINE_MACHINEMODEL_H
