//===- sched/ListScheduler.h - Resource-constrained list scheduling -*- C++ -*-===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The classic list scheduler (the "underlying scheduler for all but one"
/// of the techniques the paper compares against, Section 1). It schedules
/// a dependence DAG onto the machine's functional units, non-pipelined: a
/// unit stays busy for an operation's full latency and a dependent starts
/// only after its predecessors complete.
///
/// Used in three roles: the assignment phase of URSA (by then the DAG's
/// requirements fit the machine), the prepass/postpass baselines, and —
/// with register-pressure-aware prioritization enabled — the integrated
/// baseline of the X1 experiment.
///
//===----------------------------------------------------------------------===//

#ifndef URSA_SCHED_LISTSCHEDULER_H
#define URSA_SCHED_LISTSCHEDULER_H

#include "graph/DAG.h"
#include "machine/MachineModel.h"

#include <vector>

namespace ursa {

/// A cycle assignment for every real node of a DAG.
struct Schedule {
  std::vector<int> CycleOf; ///< node -> issue cycle; -1 for virtual nodes
  unsigned Length = 0;      ///< total cycles (last completion)

  /// Real nodes grouped by issue cycle.
  std::vector<std::vector<unsigned>> Cycles;
};

/// Scheduler knobs.
struct SchedulerOptions {
  /// Track live-value pressure and prefer non-increasing instructions
  /// when pressure approaches the register file size (integrated
  /// baseline). 0 disables tracking.
  unsigned RegPressureLimit = 0;
  /// Per-instruction issue bias (lower first), indexed by trace position.
  /// Used when spill code must be incorporated into an existing schedule
  /// (paper Section 1): surviving instructions carry their old cycle and
  /// spill code slots in next to its anchor, so rescheduling cannot
  /// re-float reloads and recreate the pressure that forced the spill.
  /// Empty = pure critical-path priority.
  std::vector<int> IssueBias;
};

/// List-schedules \p D on machine \p M; critical-path (height) priority.
Schedule listSchedule(const DependenceDAG &D, const MachineModel &M,
                      const SchedulerOptions &Opts = {});

} // namespace ursa

#endif // URSA_SCHED_LISTSCHEDULER_H
