//===- sched/ListScheduler.cpp - Resource-constrained list scheduling -----===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "sched/ListScheduler.h"

#include "graph/Analysis.h"

#include <algorithm>

using namespace ursa;

Schedule ursa::listSchedule(const DependenceDAG &D, const MachineModel &M,
                            const SchedulerOptions &Opts) {
  unsigned N = D.size();
  Schedule S;
  S.CycleOf.assign(N, -1);

  auto LatencyOf = [&](unsigned Node) {
    // Latency follows the operation's class even on homogeneous
    // machines (a universal unit still takes longer on a divide or a
    // load); the simulator enforces the same rule.
    return M.latency(D.instrAt(Node).fuKind());
  };

  // Latency-weighted height priority (critical path first).
  DAGAnalysis A(D);
  std::vector<unsigned> Height(N, 0);
  const std::vector<unsigned> &Topo = A.topoOrder();
  for (unsigned I = N; I-- > 0;) {
    unsigned U = Topo[I];
    unsigned Lat = DependenceDAG::isVirtual(U) ? 0 : LatencyOf(U);
    unsigned Best = 0;
    for (const auto &[V, Kind] : D.succs(U)) {
      (void)Kind;
      Best = std::max(Best, Height[V]);
    }
    Height[U] = Best + Lat;
  }

  // Pressure tracking (integrated mode only). OperandDefs inverts the
  // def->uses map: the defining nodes each instruction actually reads
  // (sequence edges must not perturb pressure accounting).
  std::vector<std::vector<unsigned>> OperandDefs(N);
  std::vector<unsigned> UnissuedUses(N, 0);
  unsigned Pressure = 0;
  if (Opts.RegPressureLimit > 0) {
    std::vector<std::vector<unsigned>> Uses = computeUses(D);
    for (unsigned U = 2; U != N; ++U) {
      UnissuedUses[U] = Uses[U].size();
      for (unsigned Use : Uses[U])
        OperandDefs[Use].push_back(U);
    }
  }

  // FU pool: busy-until time per unit, per class (index 0 on homogeneous
  // machines).
  std::vector<std::vector<unsigned>> BusyUntil(4);
  if (M.isHomogeneous()) {
    BusyUntil[0].assign(M.numFUs(FUKind::Universal), 0);
  } else {
    for (FUKind K : {FUKind::IntALU, FUKind::FloatALU, FUKind::Memory})
      BusyUntil[unsigned(K)].assign(M.numFUs(K), 0);
  }
  auto PoolOf = [&](unsigned Node) -> std::vector<unsigned> & {
    return M.isHomogeneous() ? BusyUntil[0]
                             : BusyUntil[unsigned(D.instrAt(Node).fuKind())];
  };

  // Completion time per node; virtual nodes complete immediately.
  std::vector<unsigned> Done(N, 0);
  std::vector<unsigned> PredsLeft(N, 0);
  for (unsigned U = 0; U != N; ++U)
    PredsLeft[U] = D.preds(U).size();

  std::vector<unsigned> Ready; // nodes whose preds have all been issued
  std::vector<unsigned> ReadyAt(N, 0);
  // Issue bias doubles as an earliest-start constraint: an instruction
  // anchored to a cycle of a previous schedule may slip later under
  // congestion but never float earlier — otherwise a greedy scheduler
  // would hoist reloads into idle slots and re-stretch their ranges.
  if (!Opts.IssueBias.empty()) {
    assert(Opts.IssueBias.size() == D.trace().size() && "bias mismatch");
    for (unsigned U = 2; U != N; ++U) {
      int B = Opts.IssueBias[DependenceDAG::instrOf(U)];
      ReadyAt[U] = unsigned(std::max(0, B)) / 4;
    }
  }
  for (unsigned U = 0; U != N; ++U)
    if (PredsLeft[U] == 0 && !DependenceDAG::isVirtual(U))
      Ready.push_back(U);
  // Virtual entry "executes" at once.
  // A data successor needs the predecessor's *result* (full latency); a
  // sequence successor only needs ordering — the predecessor's FU slot
  // must be clear (occupancy), which is what lets pipelined units overlap
  // sequentialized chains.
  auto Release = [&](unsigned U, unsigned DataDone, unsigned SeqDone) {
    for (const auto &[V, Kind] : D.succs(U)) {
      ReadyAt[V] = std::max(ReadyAt[V],
                            Kind == EdgeKind::Data ? DataDone : SeqDone);
      if (--PredsLeft[V] == 0 && !DependenceDAG::isVirtual(V))
        Ready.push_back(V);
    }
  };
  if (PredsLeft[DependenceDAG::EntryNode] == 0)
    Release(DependenceDAG::EntryNode, 0, 0);

  unsigned Scheduled = 0, Total = N - 2, Cycle = 0;
  while (Scheduled != Total) {
    // Candidates issueable this cycle, best priority first.
    std::vector<unsigned> Cand;
    for (unsigned U : Ready)
      if (ReadyAt[U] <= Cycle)
        Cand.push_back(U);
    std::sort(Cand.begin(), Cand.end(), [&](unsigned X, unsigned Y) {
      if (!Opts.IssueBias.empty()) {
        int BX = Opts.IssueBias[DependenceDAG::instrOf(X)];
        int BY = Opts.IssueBias[DependenceDAG::instrOf(Y)];
        if (BX != BY)
          return BX < BY;
      }
      if (Height[X] != Height[Y])
        return Height[X] > Height[Y];
      return X < Y;
    });

    // Integrated mode: when close to the register limit, try
    // pressure-friendly candidates first.
    if (Opts.RegPressureLimit > 0 && Pressure + 1 >= Opts.RegPressureLimit) {
      std::stable_sort(Cand.begin(), Cand.end(), [&](unsigned X, unsigned Y) {
        auto Delta = [&](unsigned U) {
          int Def = D.instrAt(U).dest() >= 0 && UnissuedUses[U] > 0 ? 1 : 0;
          int Kills = 0;
          for (unsigned P : OperandDefs[U])
            if (UnissuedUses[P] == 1)
              ++Kills; // we are its last unissued use
          return Def - Kills;
        };
        return Delta(X) < Delta(Y);
      });
    }

    if (S.Cycles.size() <= Cycle)
      S.Cycles.resize(Cycle + 1);
    for (unsigned U : Cand) {
      std::vector<unsigned> &Pool = PoolOf(U);
      auto Slot = std::find_if(Pool.begin(), Pool.end(),
                               [&](unsigned B) { return B <= Cycle; });
      if (Slot == Pool.end())
        continue; // no unit free this cycle
      unsigned Lat = LatencyOf(U);
      unsigned Occ = M.occupancy(D.instrAt(U).fuKind());
      *Slot = Cycle + Occ;
      S.CycleOf[U] = int(Cycle);
      S.Cycles[Cycle].push_back(U);
      Done[U] = Cycle + Lat;
      S.Length = std::max(S.Length, Done[U]);
      ++Scheduled;
      Ready.erase(std::find(Ready.begin(), Ready.end(), U));
      Release(U, Done[U], Cycle + Occ);
      if (Opts.RegPressureLimit > 0) {
        if (D.instrAt(U).dest() >= 0 && UnissuedUses[U] > 0)
          ++Pressure;
        for (unsigned P : OperandDefs[U]) {
          assert(UnissuedUses[P] > 0 && "use accounting out of sync");
          if (--UnissuedUses[P] == 0)
            --Pressure;
        }
      }
    }
    ++Cycle;
    assert(Cycle < 64 * N + 64 && "scheduler failed to make progress");
  }
  S.Cycles.resize(S.Length);
  return S;
}
