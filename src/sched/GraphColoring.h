//===- sched/GraphColoring.h - Postpass allocation helpers ------*- C++ -*-===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers for the *postpass* baseline: register allocation before
/// scheduling, on the sequential trace order. Live ranges on a line form
/// an interval graph, for which left-to-right linear scan produces an
/// optimal coloring, so allocation reuses sched/RegAssign over a
/// "schedule" that is simply the trace order.
///
/// The consequence the paper warns about (Section 1) is materialized by
/// addReuseEdges(): once two values share a physical register, the second
/// definition must wait for every access to the first — extra sequence
/// edges that shackle the scheduler.
///
//===----------------------------------------------------------------------===//

#ifndef URSA_SCHED_GRAPHCOLORING_H
#define URSA_SCHED_GRAPHCOLORING_H

#include "graph/DAG.h"
#include "sched/RegAssign.h"

namespace ursa {

/// A schedule equal to the trace order (instruction i at cycle i).
Schedule sequentialSchedule(const DependenceDAG &D);

/// Adds the register-reuse sequence edges implied by \p RA to \p D: for
/// consecutive occupants v1, v2 of one physical register, edges from v1's
/// definition and every use of v1 to v2's definition. Returns the number
/// of edges added.
unsigned addReuseEdges(DependenceDAG &D, const RegAssignment &RA);

} // namespace ursa

#endif // URSA_SCHED_GRAPHCOLORING_H
