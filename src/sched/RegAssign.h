//===- sched/RegAssign.h - Register assignment on a schedule ----*- C++ -*-===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The *assignment* half of register handling (URSA separates allocation
/// from assignment; every pipeline, URSA or baseline, shares this code).
/// Given a fixed schedule, values become intervals [def issue cycle, last
/// use issue cycle]; a linear scan maps them onto physical registers per
/// class. When the machine runs out — possible in the baselines and in
/// the residual cases URSA's paper assigns to this phase — the caller
/// receives the conflicting value so it can spill and retry.
///
//===----------------------------------------------------------------------===//

#ifndef URSA_SCHED_REGASSIGN_H
#define URSA_SCHED_REGASSIGN_H

#include "graph/DAG.h"
#include "machine/MachineModel.h"
#include "sched/ListScheduler.h"

#include <vector>

namespace ursa {

/// Outcome of one assignment attempt.
struct RegAssignment {
  bool Ok = false;
  /// vreg -> physical register (within the vreg's class), -1 if unused.
  std::vector<int> PhysOf;
  /// Peak simultaneously-live values per class over the schedule.
  unsigned PeakLive = 0;
  /// On failure: the virtual register that could not be assigned.
  int ConflictVReg = -1;
};

/// Linear-scan assignment of \p D's values on \p S for machine \p M.
RegAssignment assignRegisters(const DependenceDAG &D, const Schedule &S,
                              const MachineModel &M);

/// Spills virtual register \p VReg in \p T: a spill store is inserted
/// right after its definition and every later use reads a fresh reload
/// inserted right before it (one reload per use, so each new live range
/// spans a single instruction). Returns the number of instructions added.
///
/// When \p OldBias (per old trace index) is given, \p NewBias is filled
/// for the rewritten trace: surviving instructions keep their bias, the
/// store anchors just after the definition and each reload just before
/// its use — the glue that incorporates spill code into an existing
/// schedule.
unsigned spillValueInTrace(Trace &T, int VReg,
                           const std::vector<int> *OldBias = nullptr,
                           std::vector<int> *NewBias = nullptr);

/// Picks a spill victim among values live at the conflict: the one whose
/// last use is farthest in the future (classic Belady-style choice).
/// Returns -1 if nothing is spillable (already-reloaded single-use
/// values).
int pickSpillVictim(const DependenceDAG &D, const Schedule &S,
                    int ConflictVReg);

} // namespace ursa

#endif // URSA_SCHED_REGASSIGN_H
