//===- sched/GraphColoring.cpp - Postpass allocation helpers --------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "sched/GraphColoring.h"

#include "graph/Analysis.h"

#include <algorithm>
#include <map>

using namespace ursa;

Schedule ursa::sequentialSchedule(const DependenceDAG &D) {
  Schedule S;
  S.CycleOf.assign(D.size(), -1);
  unsigned NumInstrs = D.trace().size();
  S.Cycles.resize(NumInstrs);
  for (unsigned Idx = 0; Idx != NumInstrs; ++Idx) {
    unsigned N = DependenceDAG::nodeOf(Idx);
    S.CycleOf[N] = int(Idx);
    S.Cycles[Idx].push_back(N);
  }
  S.Length = NumInstrs;
  return S;
}

unsigned ursa::addReuseEdges(DependenceDAG &D, const RegAssignment &RA) {
  const Trace &T = D.trace();
  std::vector<std::vector<unsigned>> Uses = computeUses(D);

  // Group vregs per (class, physical register), in trace definition
  // order — that is the order linear scan assigned them in.
  std::map<std::pair<int, int>, std::vector<unsigned>> Occupants;
  for (unsigned Idx = 0, E = T.size(); Idx != E; ++Idx) {
    int V = T.instr(Idx).dest();
    if (V < 0 || RA.PhysOf[V] < 0)
      continue;
    int Class = int(T.vregClass(V));
    Occupants[{Class, RA.PhysOf[V]}].push_back(Idx);
  }

  unsigned Added = 0;
  for (auto &[Key, DefIdxs] : Occupants) {
    (void)Key;
    for (unsigned I = 0; I + 1 < DefIdxs.size(); ++I) {
      unsigned Prev = DependenceDAG::nodeOf(DefIdxs[I]);
      unsigned Next = DependenceDAG::nodeOf(DefIdxs[I + 1]);
      if (D.addEdge(Prev, Next, EdgeKind::Sequence))
        ++Added;
      for (unsigned U : Uses[Prev])
        if (U != Next && D.addEdge(U, Next, EdgeKind::Sequence))
          ++Added;
    }
  }
  if (Added)
    D.normalizeVirtualEdges();
  return Added;
}
