//===- sched/Pipelines.h - Baseline compilation pipelines -------*- C++ -*-===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end compilation pipelines for the phase orderings the paper
/// argues against (Section 1), all sharing the scheduler, assignment and
/// emission machinery so comparisons isolate the phase-ordering decision:
///
///  * prepass:    schedule first (ignoring registers), then assign
///                registers on the schedule, spilling on demand;
///  * postpass:   allocate registers first on the sequential order
///                (optimal interval coloring), add the implied reuse
///                edges, then schedule;
///  * integrated: register-pressure-aware list scheduling in the style of
///                [GoH88]/[BEH91], then assignment.
///
/// URSA's own pipeline lives in ursa/Compiler.h and reuses
/// finishAndEmit() for its assignment phase.
///
//===----------------------------------------------------------------------===//

#ifndef URSA_SCHED_PIPELINES_H
#define URSA_SCHED_PIPELINES_H

#include "graph/DAG.h"
#include "machine/MachineModel.h"
#include "sched/ListScheduler.h"
#include "sched/RegAssign.h"
#include "support/Status.h"
#include "vliw/VLIWProgram.h"

#include <functional>
#include <optional>
#include <string>

namespace ursa {

/// Outcome and metrics of one compilation.
struct CompileResult {
  bool Ok = false;
  std::string Error;
  std::optional<VLIWProgram> Prog;

  unsigned Cycles = 0;      ///< VLIW words emitted
  unsigned SpillOps = 0;    ///< spill stores + reloads in the final code
  unsigned SeqEdgesAdded = 0; ///< ordering edges the pipeline introduced
  unsigned AssignSpillRounds = 0; ///< assignment-phase spill iterations
  unsigned PeakLive = 0;    ///< peak simultaneously-live values
  double Utilization = 0.0; ///< FU slot occupancy
  unsigned CritPath = 0;    ///< unit-latency critical path of the final DAG
};

/// Emits \p D under schedule \p S and register mapping \p RA; branch
/// ordinals follow trace order. The caller guarantees the mapping is
/// valid for the schedule.
VLIWProgram emitSchedule(const DependenceDAG &D, const Schedule &S,
                         const RegAssignment &RA, const MachineModel &M);

/// Guardrail callbacks injected by higher layers. The URSA compiler wires
/// ursa/PipelineVerifier.h checks in here; this library sits below it and
/// cannot call the verifier directly.
struct PipelineHooks {
  /// Called on the final schedule and register mapping right before
  /// emission. A failed Status aborts the pipeline with its diagnostics
  /// instead of emitting a wrong program.
  std::function<Status(const DependenceDAG &, const Schedule &,
                       const RegAssignment &, const MachineModel &)>
      CheckAssignment;
};

/// Schedules \p D, assigns registers (spilling and rescheduling until the
/// machine's files suffice), and emits a VLIW program. The shared tail of
/// every pipeline. \p Opts configures the scheduler (pressure awareness).
CompileResult finishAndEmit(DependenceDAG D, const MachineModel &M,
                            const SchedulerOptions &Opts = {},
                            const PipelineHooks &Hooks = {});

/// Prepass baseline: schedule, then allocate.
CompileResult compilePrepass(const Trace &T, const MachineModel &M);

/// Postpass baseline: allocate on the sequential order, then schedule.
CompileResult compilePostpass(const Trace &T, const MachineModel &M);

/// Integrated baseline: pressure-aware scheduling, then allocate.
CompileResult compileIntegrated(const Trace &T, const MachineModel &M);

} // namespace ursa

#endif // URSA_SCHED_PIPELINES_H
