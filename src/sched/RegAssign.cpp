//===- sched/RegAssign.cpp - Register assignment on a schedule ------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "sched/RegAssign.h"

#include "graph/Analysis.h"

#include <algorithm>

using namespace ursa;

namespace {

/// One value's lifetime on the schedule.
struct Interval {
  int VReg = -1;
  unsigned DefNode = 0;
  int Start = 0; ///< issue cycle of the definition
  int End = 0;   ///< issue cycle of the last use (== Start if unused)
  RegClassKind Class = RegClassKind::GPR;
};

} // namespace

/// Builds the live intervals of every defined vreg under schedule \p S.
static std::vector<Interval> buildIntervals(const DependenceDAG &D,
                                            const Schedule &S,
                                            const MachineModel &M) {
  const Trace &T = D.trace();
  std::vector<std::vector<unsigned>> Uses = computeUses(D);
  std::vector<Interval> Iv;
  for (unsigned Idx = 0, E = T.size(); Idx != E; ++Idx) {
    const Instruction &I = T.instr(Idx);
    if (I.dest() < 0)
      continue;
    unsigned N = DependenceDAG::nodeOf(Idx);
    Interval V;
    V.VReg = I.dest();
    V.DefNode = N;
    V.Start = S.CycleOf[N];
    assert(V.Start >= 0 && "unscheduled definition");
    V.End = V.Start;
    for (unsigned U : Uses[N]) {
      assert(S.CycleOf[U] >= 0 && "unscheduled use");
      V.End = std::max(V.End, S.CycleOf[U]);
    }
    V.Class = M.isHomogeneous() ? RegClassKind::GPR : T.vregClass(I.dest());
    Iv.push_back(V);
  }
  std::sort(Iv.begin(), Iv.end(), [](const Interval &A, const Interval &B) {
    if (A.Start != B.Start)
      return A.Start < B.Start;
    return A.VReg < B.VReg;
  });
  return Iv;
}

RegAssignment ursa::assignRegisters(const DependenceDAG &D, const Schedule &S,
                                    const MachineModel &M) {
  RegAssignment R;
  const Trace &T = D.trace();
  R.PhysOf.assign(T.numVRegs(), -1);

  std::vector<Interval> Iv = buildIntervals(D, S, M);

  // Per class: free physical registers and the active set.
  auto RunClass = [&](RegClassKind C) -> bool {
    unsigned K = M.numRegs(C);
    std::vector<int> Free;
    for (int P = int(K) - 1; P >= 0; --P)
      Free.push_back(P); // so the lowest number is handed out first
    std::vector<Interval> Active;

    for (const Interval &V : Iv) {
      if (V.Class != C)
        continue;
      // Registers whose value died strictly before, or whose last read
      // happens this very cycle, are reusable (VLIW words read before
      // they write). A dead definition (End == Start) still *writes* its
      // register in its issue cycle, so handing that register to another
      // value defined in the same cycle would put two writes in one VLIW
      // word — the interval must have started strictly earlier.
      for (auto It = Active.begin(); It != Active.end();) {
        if (It->End <= V.Start && It->Start < V.Start &&
            It->VReg != V.VReg) {
          Free.push_back(R.PhysOf[It->VReg]);
          It = Active.erase(It);
        } else {
          ++It;
        }
      }
      if (Free.empty()) {
        R.ConflictVReg = V.VReg;
        return false;
      }
      int P = Free.back();
      Free.pop_back();
      R.PhysOf[V.VReg] = P;
      Active.push_back(V);
      R.PeakLive = std::max<unsigned>(R.PeakLive, Active.size());
    }
    return true;
  };

  if (!RunClass(RegClassKind::GPR))
    return R;
  if (!M.isHomogeneous() && !RunClass(RegClassKind::FPR))
    return R;
  R.Ok = true;
  return R;
}

int ursa::pickSpillVictim(const DependenceDAG &D, const Schedule &S,
                          int ConflictVReg) {
  const Trace &T = D.trace();
  // The class field is irrelevant here; a homogeneous stand-in keeps the
  // interval builder shared.
  std::vector<Interval> Iv =
      buildIntervals(D, S, MachineModel::homogeneous(1, 1));

  // Find the conflicting interval.
  const Interval *Conflict = nullptr;
  for (const Interval &V : Iv)
    if (V.VReg == ConflictVReg)
      Conflict = &V;
  assert(Conflict && "conflict vreg has no interval");

  // Victims: values live across the conflict point whose range actually
  // spans other instructions, the farthest-ending first. Non-reload
  // values are preferred; when only reloads remain (late assignment
  // repair), a stretched reload is re-spilled — it re-reads its existing
  // slot right before each use, which strictly shrinks its range.
  std::vector<std::vector<unsigned>> Uses = computeUses(D);
  int Best = -1, BestEnd = -1;
  int BestReload = -1, BestReloadEnd = -1;
  for (const Interval &V : Iv) {
    if (V.Start > Conflict->Start || V.End < Conflict->Start)
      continue;
    if (V.End == V.Start)
      continue; // dies immediately; spilling frees nothing
    // Same-class values only (homogeneous treats all as one class).
    if (T.vregClass(V.VReg) != T.vregClass(ConflictVReg))
      continue;
    // A value whose remaining uses are all spill stores has already been
    // spilled; spilling again would only chase its own store.
    bool OnlySpillStores = !Uses[V.DefNode].empty();
    for (unsigned U : Uses[V.DefNode])
      if (D.instrAt(U).opcode() != Opcode::SpillStore)
        OnlySpillStores = false;
    if (OnlySpillStores)
      continue;
    if (D.instrAt(V.DefNode).opcode() == Opcode::SpillLoad) {
      // Only worthwhile if the reload is not already glued to its use.
      if (V.End > V.Start + 1 && V.End > BestReloadEnd) {
        BestReloadEnd = V.End;
        BestReload = V.VReg;
      }
      continue;
    }
    if (V.End > BestEnd) {
      BestEnd = V.End;
      Best = V.VReg;
    }
  }
  return Best >= 0 ? Best : BestReload;
}

unsigned ursa::spillValueInTrace(Trace &T, int VReg,
                                 const std::vector<int> *OldBias,
                                 std::vector<int> *NewBias) {
  // Locate the definition.
  int DefIdx = -1;
  for (unsigned Idx = 0, E = T.size(); Idx != E; ++Idx)
    if (T.instr(Idx).dest() == VReg) {
      DefIdx = int(Idx);
      break;
    }
  assert(DefIdx >= 0 && "spilling an undefined vreg");
  assert((!OldBias || OldBias->size() == T.size()) && "bias size mismatch");

  Domain Dom = T.vregDomain(VReg);
  // Re-spilling a reload re-reads its existing slot: no store is needed
  // and the now-useless original reload is dropped.
  bool IsRespill = T.instr(DefIdx).opcode() == Opcode::SpillLoad;
  int Slot = IsRespill ? T.instr(DefIdx).spillSlot() : T.newSpillSlot();
  unsigned Added = 0;

  std::vector<Instruction> Old = T.instructions();
  // Rebuild in place: Trace has no instruction-removal API, so we rewrite
  // through a scratch trace body.
  std::vector<Instruction> New;
  std::vector<int> Bias;
  New.reserve(Old.size() + 4);
  auto BiasAt = [&](unsigned Idx) { return OldBias ? (*OldBias)[Idx] : 0; };
  for (unsigned Idx = 0; Idx != Old.size(); ++Idx) {
    Instruction I = Old[Idx];
    bool UsesVReg = false;
    for (unsigned S = 0; S != I.numOperands(); ++S)
      if (I.operand(S) == VReg)
        UsesVReg = true;
    // Any use gets its own reload, regardless of trace position —
    // transformed traces append reloads after their (earlier) uses.
    if (UsesVReg && int(Idx) != DefIdx) {
      Instruction Ld(Opcode::SpillLoad);
      Ld.setDomain(Dom);
      Ld.setSpillSlot(Slot);
      int Fresh = T.newVReg(Dom);
      Ld.setDest(Fresh);
      New.push_back(Ld);
      Bias.push_back(BiasAt(Idx) - 1); // just before its use
      ++Added;
      for (unsigned S = 0; S != I.numOperands(); ++S)
        if (I.operand(S) == VReg)
          I.setOperand(S, Fresh);
    }
    if (int(Idx) == DefIdx && IsRespill)
      continue; // every use now has its own reload; drop the original
    New.push_back(I);
    Bias.push_back(BiasAt(Idx));
    if (int(Idx) == DefIdx) {
      Instruction St(Opcode::SpillStore);
      St.setDomain(Dom);
      St.setOperand(0, VReg);
      St.setSpillSlot(Slot);
      New.push_back(St);
      Bias.push_back(BiasAt(Idx) + 1); // just after the definition
      ++Added;
    }
  }
  T.replaceInstructions(std::move(New));
  if (NewBias)
    *NewBias = std::move(Bias);
  return Added;
}
