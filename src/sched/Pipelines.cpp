//===- sched/Pipelines.cpp - Baseline compilation pipelines ---------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "sched/Pipelines.h"

#include "graph/Analysis.h"
#include "graph/DAGBuilder.h"
#include "obs/Stats.h"
#include "obs/Tracer.h"
#include "sched/GraphColoring.h"
#include "sched/RegAssign.h"

#include <algorithm>

using namespace ursa;

URSA_STAT(StatSchedRuns, "sched.finish_and_emit.runs",
          "assignment-phase (schedule + assign + emit) invocations");
URSA_STAT(StatSchedSpillRounds, "sched.finish_and_emit.spill_rounds",
          "assignment-phase spill-and-reschedule iterations");

/// A machine is structurally too small when one instruction reads more
/// distinct registers than the file holds — no allocation can fix that.
static bool fileFitsEveryOp(const Trace &T, const MachineModel &M,
                            std::string &Error) {
  for (const Instruction &I : T.instructions()) {
    unsigned Distinct = 0;
    int Seen[3] = {-1, -1, -1};
    for (unsigned S = 0; S != I.numOperands(); ++S) {
      bool New = true;
      for (unsigned P = 0; P != S; ++P)
        New &= I.operand(S) != Seen[P];
      Seen[S] = I.operand(S);
      Distinct += New;
    }
    RegClassKind C = M.isHomogeneous()
                         ? RegClassKind::GPR
                         : (I.numOperands() > 0
                                ? T.vregClass(I.operand(0))
                                : RegClassKind::GPR);
    if (Distinct > M.numRegs(C)) {
      Error = "register file too small for an instruction's operands";
      return false;
    }
  }
  return true;
}

/// Counts spill instructions in a trace.
static unsigned countSpillOps(const Trace &T) {
  unsigned N = 0;
  for (const Instruction &I : T.instructions())
    if (isSpillOp(I.opcode()))
      ++N;
  return N;
}

VLIWProgram ursa::emitSchedule(const DependenceDAG &D, const Schedule &S,
                               const RegAssignment &RA,
                               const MachineModel &M) {
  const Trace &T = D.trace();
  VLIWProgram P(M, T.symbolNames(), T.numSpillSlots());

  // Branch ordinals in trace order.
  std::vector<int64_t> BranchOrdinal(T.size(), -1);
  int64_t NextOrdinal = 0;
  for (unsigned Idx = 0, E = T.size(); Idx != E; ++Idx)
    if (isBranch(T.instr(Idx).opcode()))
      BranchOrdinal[Idx] = NextOrdinal++;

  for (unsigned Cycle = 0; Cycle != S.Cycles.size(); ++Cycle) {
    VLIWWord &W = P.newWord();
    unsigned SlotPerClass[4] = {0, 0, 0, 0};
    for (unsigned N : S.Cycles[Cycle]) {
      unsigned Idx = DependenceDAG::instrOf(N);
      Instruction I = T.instr(Idx);
      if (I.dest() >= 0) {
        assert(RA.PhysOf[I.dest()] >= 0 && "emitting unassigned value");
        I.setDest(RA.PhysOf[I.dest()]);
      }
      for (unsigned Op = 0; Op != I.numOperands(); ++Op) {
        assert(RA.PhysOf[I.operand(Op)] >= 0 && "emitting unassigned use");
        I.setOperand(Op, RA.PhysOf[I.operand(Op)]);
      }
      if (isBranch(I.opcode()))
        I.setIntImm(BranchOrdinal[Idx]);
      unsigned Class = M.isHomogeneous() ? 0u : unsigned(I.fuKind());
      W.Ops.push_back({I, SlotPerClass[Class]++});
    }
  }
  return P;
}

CompileResult ursa::finishAndEmit(DependenceDAG D, const MachineModel &M,
                                  const SchedulerOptions &Opts,
                                  const PipelineHooks &Hooks) {
  URSA_SPAN(SchedSpan, "sched.finish_and_emit", "sched");
  StatSchedRuns.add();
  CompileResult R;
  struct SpillRoundGuard {
    const CompileResult &R;
    ~SpillRoundGuard() { StatSchedSpillRounds.add(R.AssignSpillRounds); }
  } SRG{R};
  if (!fileFitsEveryOp(D.trace(), M, R.Error))
    return R;
  constexpr unsigned MaxSpillRounds = 1024;
  SchedulerOptions SO = Opts;
  for (unsigned Round = 0;; ++Round) {
    Schedule S = listSchedule(D, M, SO);
    RegAssignment RA = assignRegisters(D, S, M);
    R.PeakLive = std::max(R.PeakLive, RA.PeakLive);
    if (RA.Ok) {
      if (Hooks.CheckAssignment) {
        Status St = Hooks.CheckAssignment(D, S, RA, M);
        if (!St.isOk()) {
          R.Error = "assignment verification failed: " + St.message();
          return R;
        }
      }
      VLIWProgram P = emitSchedule(D, S, RA, M);
      std::string Bad = P.validate();
      if (!Bad.empty()) {
        R.Error = "emitted invalid program: " + Bad;
        return R;
      }
      R.Cycles = P.numWords();
      R.Utilization = P.utilization();
      R.SpillOps = countSpillOps(D.trace());
      R.CritPath = DAGAnalysis(D).criticalPathLength();
      R.Prog = std::move(P);
      R.Ok = true;
      return R;
    }
    if (Round == MaxSpillRounds) {
      R.Error = "assignment did not converge (machine too small?)";
      return R;
    }
    int Victim = pickSpillVictim(D, S, RA.ConflictVReg);
    if (Victim < 0) {
      // Everything live across the conflict is already a reload. The
      // conflicting definition itself (typically a reload whose use
      // slipped under FU contention) is delayed instead, shrinking the
      // overlap — iterative schedule repair.
      const Trace &T = D.trace();
      int DefIdx = -1;
      for (unsigned Idx = 0; Idx != T.size(); ++Idx)
        if (T.instr(Idx).dest() == RA.ConflictVReg)
          DefIdx = int(Idx);
      if (DefIdx < 0) {
        R.Error = "no spillable value; register file too small for an op";
        return R;
      }
      // Rebase on the *current* schedule (anchors must track slips) and
      // push the conflicting definition past the overlap.
      SO.IssueBias.resize(T.size());
      for (unsigned Idx = 0; Idx != T.size(); ++Idx)
        SO.IssueBias[Idx] = S.CycleOf[DependenceDAG::nodeOf(Idx)] * 4;
      SO.IssueBias[DefIdx] += 10;
      ++R.AssignSpillRounds;
      continue;
    }
    // Incorporate the spill into the *existing* schedule (paper Section
    // 1): keep every surviving instruction at its old cycle preference so
    // rescheduling cannot re-float reloads and recreate the pressure.
    Trace T = D.trace();
    std::vector<int> OldBias(T.size());
    for (unsigned Idx = 0; Idx != T.size(); ++Idx)
      OldBias[Idx] = S.CycleOf[DependenceDAG::nodeOf(Idx)] * 4;
    std::vector<int> NewBias;
    spillValueInTrace(T, Victim, &OldBias, &NewBias);
    SO.IssueBias = std::move(NewBias);
    D = buildDAG(std::move(T));
    ++R.AssignSpillRounds;
  }
}

CompileResult ursa::compilePrepass(const Trace &T, const MachineModel &M) {
  return finishAndEmit(buildDAG(T), M);
}

CompileResult ursa::compileIntegrated(const Trace &T, const MachineModel &M) {
  SchedulerOptions SO;
  SO.RegPressureLimit = M.numRegs(RegClassKind::GPR);
  return finishAndEmit(buildDAG(T), M, SO);
}

CompileResult ursa::compilePostpass(const Trace &T, const MachineModel &M) {
  CompileResult R;
  if (!fileFitsEveryOp(T, M, R.Error))
    return R;
  DependenceDAG D = buildDAG(T);

  // Allocate on the sequential order, spilling until the files suffice.
  RegAssignment RA;
  constexpr unsigned MaxSpillRounds = 1024;
  for (unsigned Round = 0;; ++Round) {
    Schedule Seq = sequentialSchedule(D);
    RA = assignRegisters(D, Seq, M);
    R.PeakLive = std::max(R.PeakLive, RA.PeakLive);
    if (RA.Ok)
      break;
    if (Round == MaxSpillRounds) {
      R.Error = "postpass allocation did not converge";
      return R;
    }
    int Victim = pickSpillVictim(D, Seq, RA.ConflictVReg);
    if (Victim < 0) {
      R.Error = "no spillable value; register file too small for an op";
      return R;
    }
    Trace T2 = D.trace();
    spillValueInTrace(T2, Victim);
    D = buildDAG(std::move(T2));
    ++R.AssignSpillRounds;
  }

  // Fix the mapping, add the reuse edges it implies, then schedule.
  R.SeqEdgesAdded = addReuseEdges(D, RA);
  Schedule S = listSchedule(D, M);
  VLIWProgram P = emitSchedule(D, S, RA, M);
  std::string Bad = P.validate();
  if (!Bad.empty()) {
    R.Error = "emitted invalid program: " + Bad;
    return R;
  }
  R.Cycles = P.numWords();
  R.Utilization = P.utilization();
  R.SpillOps = countSpillOps(D.trace());
  R.CritPath = DAGAnalysis(D).criticalPathLength();
  R.Prog = std::move(P);
  R.Ok = true;
  return R;
}
