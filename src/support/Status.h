//===- support/Status.h - Fallible-operation result types -------*- C++ -*-===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Error plumbing for the pipeline's fallible entry points. A Diag is one
/// diagnostic (severity, originating phase, message); a Status is a bag of
/// diagnostics that is "ok" when it holds no errors; StatusOr<T> carries
/// either a value or the Status explaining its absence. Library code must
/// never abort on malformed *input* — it returns one of these instead, and
/// only the explicit `...OrDie` convenience wrappers terminate (after
/// printing the diagnostic). See docs/ROBUSTNESS.md for conventions.
///
//===----------------------------------------------------------------------===//

#ifndef URSA_SUPPORT_STATUS_H
#define URSA_SUPPORT_STATUS_H

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace ursa {

/// Severity of one diagnostic.
enum class Severity { Error, Warning, Note };

/// One diagnostic: what went wrong, how bad it is, and which pipeline
/// phase noticed ("parse", "dag", "measure", "allocate", "assign",
/// "emit", "semantics", ...).
struct Diag {
  Severity Sev = Severity::Error;
  std::string Phase;
  std::string Message;

  /// "error [measure]: chain 3 is not ordered by the relation"
  std::string str() const {
    const char *S = Sev == Severity::Error     ? "error"
                    : Sev == Severity::Warning ? "warning"
                                               : "note";
    return std::string(S) + " [" + Phase + "]: " + Message;
  }
};

/// Outcome of a fallible operation: ok iff no Error-severity diagnostic.
/// Warnings and notes ride along without making the status a failure.
class Status {
public:
  Status() = default;

  static Status ok() { return Status(); }
  static Status error(std::string Phase, std::string Message) {
    Status S;
    S.add({Severity::Error, std::move(Phase), std::move(Message)});
    return S;
  }

  bool isOk() const {
    for (const Diag &D : Ds)
      if (D.Sev == Severity::Error)
        return false;
    return true;
  }
  explicit operator bool() const { return isOk(); }

  void add(Diag D) { Ds.push_back(std::move(D)); }
  void merge(const Status &O) {
    Ds.insert(Ds.end(), O.Ds.begin(), O.Ds.end());
  }

  const std::vector<Diag> &diags() const { return Ds; }
  bool empty() const { return Ds.empty(); }

  /// First error's message, or "ok".
  std::string message() const {
    for (const Diag &D : Ds)
      if (D.Sev == Severity::Error)
        return D.Message;
    return "ok";
  }

  /// Every diagnostic, one per line.
  std::string str() const {
    std::string Out;
    for (const Diag &D : Ds) {
      if (!Out.empty())
        Out += '\n';
      Out += D.str();
    }
    return Out.empty() ? "ok" : Out;
  }

private:
  std::vector<Diag> Ds;
};

/// A value or the Status explaining why there is none.
template <typename T> class StatusOr {
public:
  StatusOr(T Val) : V(std::move(Val)) {}
  StatusOr(Status St) : S(std::move(St)) {
    assert(!this->S.isOk() && "StatusOr from an ok Status carries no value");
  }

  bool isOk() const { return V.has_value(); }
  explicit operator bool() const { return isOk(); }

  const Status &status() const { return S; }

  T &value() {
    assert(isOk() && "value() on a failed StatusOr");
    return *V;
  }
  const T &value() const {
    assert(isOk() && "value() on a failed StatusOr");
    return *V;
  }
  T &operator*() { return value(); }
  T *operator->() { return &value(); }

private:
  Status S;
  std::optional<T> V;
};

} // namespace ursa

#endif // URSA_SUPPORT_STATUS_H
