//===- support/Dot.cpp - Graphviz DOT emission ----------------------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Dot.h"

using namespace ursa;

void DotWriter::addNode(unsigned Id, const std::string &Label,
                        const std::string &Attrs) {
  Nodes.push_back({Id, Label, Attrs});
}

void DotWriter::addEdge(unsigned From, unsigned To, const std::string &Attrs) {
  Edges.push_back({From, To, Attrs});
}

static void escapeInto(std::ostream &OS, const std::string &S) {
  for (char C : S) {
    if (C == '"' || C == '\\')
      OS << '\\';
    OS << C;
  }
}

void DotWriter::print(std::ostream &OS) const {
  OS << "digraph \"" << GraphName << "\" {\n";
  for (const Node &N : Nodes) {
    OS << "  n" << N.Id << " [label=\"";
    escapeInto(OS, N.Label);
    OS << "\"";
    if (!N.Attrs.empty())
      OS << ", " << N.Attrs;
    OS << "];\n";
  }
  for (const Edge &E : Edges) {
    OS << "  n" << E.From << " -> n" << E.To;
    if (!E.Attrs.empty())
      OS << " [" << E.Attrs << "]";
    OS << ";\n";
  }
  OS << "}\n";
}
