//===- support/TiledBitMatrix.h - Blocked sparse bit matrix -----*- C++ -*-===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A square bit matrix stored as 64x64-bit tiles behind a tile-summary
/// grid. Reachability closures of straight-line traces are block
/// structured: row r is empty left of r's topological position and solid
/// past the next hammock boundary, so most tiles are all-zero or all-one.
/// The grid keeps one 4-byte summary per tile (AllZero / AllOne / index of
/// a materialized 512-byte chunk), which collapses the dense O(N^2)-bit
/// footprint to roughly the number of "mixed" tiles along the boundary
/// diagonal.
///
/// Collapse to AllOne happens inline while rows are built (per-chunk
/// saturated-word counters), so *peak* memory tracks the collapsed size,
/// not the dense size. Ragged boundary tiles can never saturate (their
/// tail bits beyond N are never set), so an AllOne summary is always
/// exactly 64x64 ones — no raggedness checks on the query path.
///
//===----------------------------------------------------------------------===//

#ifndef URSA_SUPPORT_TILEDBITMATRIX_H
#define URSA_SUPPORT_TILEDBITMATRIX_H

#include "support/Bitset.h"

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace ursa {

class TiledBitMatrix {
public:
  static constexpr uint32_t AllZero = 0xFFFFFFFFu;
  static constexpr uint32_t AllOne = 0xFFFFFFFEu;
  static constexpr unsigned WordsPerChunk = 64;

  TiledBitMatrix() = default;
  explicit TiledBitMatrix(unsigned Size)
      : N(Size), TPS((Size + 63) / 64), Grid(size_t(TPS) * TPS, AllZero) {}

  unsigned size() const { return N; }

  /// Number of 64-bit words per row (= tiles per side).
  unsigned numRowWords() const { return TPS; }

  bool test(unsigned R, unsigned C) const {
    assert(R < N && C < N && "bit index out of range");
    uint32_t T = Grid[tileIndex(R, C / 64)];
    if (T == AllZero)
      return false;
    if (T == AllOne)
      return true;
    return (Pool[size_t(T) * WordsPerChunk + (R & 63)] >> (C % 64)) & 1;
  }

  void set(unsigned R, unsigned C) {
    assert(R < N && C < N && "bit index out of range");
    orRowWord(R, C / 64, uint64_t(1) << (C % 64));
  }

  /// The 64-bit word covering columns [WI*64, WI*64+64) of row \p R.
  uint64_t rowWord(unsigned R, unsigned WI) const {
    assert(R < N && WI < TPS && "word index out of range");
    uint32_t T = Grid[tileIndex(R, WI)];
    if (T == AllZero)
      return 0;
    if (T == AllOne)
      return ~uint64_t(0);
    return Pool[size_t(T) * WordsPerChunk + (R & 63)];
  }

  /// ORs \p W into the word covering columns [WI*64, ...) of row \p R.
  /// \p W must not carry bits beyond column N.
  void orRowWord(unsigned R, unsigned WI, uint64_t W);

  /// Row[Dst] |= Row[Src], tile-parallel (AllZero source tiles skipped,
  /// AllOne ones become a single full-word OR).
  void orRow(unsigned Dst, unsigned Src);

  /// Row[R] |= B; \p B must be sized like the matrix side.
  void orRowBitset(unsigned R, const Bitset &B);

  /// Materializes row \p R as a dense Bitset.
  Bitset rowBitset(unsigned R) const;

  /// Word-parallel popcount of row \p R (AllOne tiles count as 64).
  unsigned rowCount(unsigned R) const;

  /// First set column >= \p From in row \p R, or size() when none.
  unsigned rowFindNext(unsigned R, unsigned From) const;

  /// Calls \p F with every set column of row \p R, in increasing order.
  template <typename Fn> void rowForEach(unsigned R, Fn F) const {
    for (unsigned WI = 0; WI != TPS; ++WI) {
      uint32_t T = Grid[tileIndex(R, WI)];
      if (T == AllZero)
        continue;
      uint64_t W = T == AllOne ? ~uint64_t(0)
                               : Pool[size_t(T) * WordsPerChunk + (R & 63)];
      while (W) {
        unsigned Bit = __builtin_ctzll(W);
        F(WI * 64 + Bit);
        W &= W - 1;
      }
    }
  }

  /// Zeroes row \p R (AllOne tiles demote to materialized chunks; chunks
  /// that become all-zero are recycled).
  void clearRow(unsigned R);

  /// Heap bytes currently held (grid + chunk pool + bookkeeping).
  size_t memoryBytes() const {
    return Grid.capacity() * sizeof(uint32_t) +
           Pool.capacity() * sizeof(uint64_t) + Sat.capacity() +
           FreeList.capacity() * sizeof(uint32_t);
  }

  /// Grows the matrix side to \p NewSize. Existing bits keep their
  /// indices; new rows and columns start empty. Chunk indices stay valid
  /// (only the grid is reindexed), so this is cheap relative to a copy.
  void growTo(unsigned NewSize);

private:
  size_t tileIndex(unsigned R, unsigned TC) const {
    return size_t(R / 64) * TPS + TC;
  }

  /// Materializes the all-zero tile at \p TI; returns its chunk index.
  uint32_t materialize(size_t TI);

  unsigned N = 0;
  unsigned TPS = 0;               ///< tiles (= 64-bit words) per side
  std::vector<uint32_t> Grid;     ///< per tile: AllZero, AllOne, or chunk
  std::vector<uint64_t> Pool;     ///< materialized chunks, 64 words each
  std::vector<uint8_t> Sat;       ///< per chunk: count of all-ones words
  std::vector<uint32_t> FreeList; ///< recycled chunk indices
};

} // namespace ursa

#endif // URSA_SUPPORT_TILEDBITMATRIX_H
