//===- support/Socket.cpp - Stream sockets + framing ----------------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Socket.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

using namespace ursa;

void ursa::ignoreSigpipe() {
  static std::once_flag Once;
  std::call_once(Once, [] { ::signal(SIGPIPE, SIG_IGN); });
}

Status Socket::fail(const std::string &What) {
  LastErr = errno;
  return Status::error("socket", What + ": " + std::strerror(LastErr));
}

Socket::Socket(Socket &&O) noexcept : Fd(O.Fd), LastErr(O.LastErr) {
  O.Fd = -1;
}

Socket &Socket::operator=(Socket &&O) noexcept {
  if (this != &O) {
    close();
    Fd = O.Fd;
    LastErr = O.LastErr;
    O.Fd = -1;
  }
  return *this;
}

void Socket::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

void Socket::shutdown() {
  if (Fd >= 0)
    ::shutdown(Fd, SHUT_RDWR);
}

//===----------------------------------------------------------------------===//
// Unix-domain
//===----------------------------------------------------------------------===//

static Status fillUnixAddr(const std::string &Path, sockaddr_un &Addr) {
  if (Path.size() >= sizeof(Addr.sun_path))
    return Status::error("socket", "socket path too long: " + Path);
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  return Status::ok();
}

StatusOr<Socket> Socket::listenUnix(const std::string &Path, int Backlog) {
  sockaddr_un Addr;
  if (Status St = fillUnixAddr(Path, Addr); !St.isOk())
    return St;
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return Socket().fail("socket()");
  Socket S(Fd);
  ::unlink(Path.c_str()); // stale socket file from a crashed server
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0)
    return S.fail("bind('" + Path + "')");
  if (::listen(Fd, Backlog) != 0)
    return S.fail("listen('" + Path + "')");
  return S;
}

StatusOr<Socket> Socket::connectUnix(const std::string &Path) {
  sockaddr_un Addr;
  if (Status St = fillUnixAddr(Path, Addr); !St.isOk())
    return St;
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return Socket().fail("socket()");
  Socket S(Fd);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0)
    return S.fail("connect('" + Path + "')");
  return S;
}

//===----------------------------------------------------------------------===//
// TCP
//===----------------------------------------------------------------------===//

static Status fillTcpAddr(const std::string &Host, uint16_t Port,
                          sockaddr_in &Addr) {
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Port);
  const std::string &H = Host.empty() ? std::string("127.0.0.1") : Host;
  if (::inet_pton(AF_INET, H.c_str(), &Addr.sin_addr) != 1)
    return Status::error("socket", "bad IPv4 address: '" + H + "'");
  return Status::ok();
}

static void setNodelay(int Fd) {
  int One = 1;
  ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
}

StatusOr<Socket> Socket::listenTcp(const std::string &Host, uint16_t Port,
                                   int Backlog) {
  sockaddr_in Addr;
  if (Status St = fillTcpAddr(Host, Port, Addr); !St.isOk())
    return St;
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return Socket().fail("socket()");
  Socket S(Fd);
  int One = 1;
  ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0)
    return S.fail("bind(tcp:" + Host + ":" + std::to_string(Port) + ")");
  if (::listen(Fd, Backlog) != 0)
    return S.fail("listen(tcp:" + std::to_string(Port) + ")");
  return S;
}

StatusOr<Socket> Socket::connectTcp(const std::string &Host, uint16_t Port) {
  sockaddr_in Addr;
  if (Status St = fillTcpAddr(Host, Port, Addr); !St.isOk())
    return St;
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return Socket().fail("socket()");
  Socket S(Fd);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0)
    return S.fail("connect(tcp:" + Host + ":" + std::to_string(Port) + ")");
  setNodelay(Fd);
  return S;
}

uint16_t Socket::localPort() const {
  if (Fd < 0)
    return 0;
  sockaddr_storage SS;
  socklen_t Len = sizeof(SS);
  if (::getsockname(Fd, reinterpret_cast<sockaddr *>(&SS), &Len) != 0)
    return 0;
  if (SS.ss_family != AF_INET)
    return 0;
  return ntohs(reinterpret_cast<sockaddr_in *>(&SS)->sin_port);
}

//===----------------------------------------------------------------------===//
// Endpoint strings
//===----------------------------------------------------------------------===//

bool Socket::parseEndpoint(const std::string &Ep, bool &IsTcp,
                           std::string &HostOrPath, uint16_t &Port) {
  IsTcp = false;
  Port = 0;
  if (Ep.rfind("unix:", 0) == 0) {
    HostOrPath = Ep.substr(5);
    return !HostOrPath.empty();
  }
  if (Ep.rfind("tcp:", 0) != 0) {
    HostOrPath = Ep; // bare path = unix socket
    return !HostOrPath.empty();
  }
  IsTcp = true;
  std::string Rest = Ep.substr(4);
  size_t Colon = Rest.rfind(':');
  std::string PortStr = Colon == std::string::npos ? Rest
                                                   : Rest.substr(Colon + 1);
  HostOrPath = Colon == std::string::npos ? std::string() : Rest.substr(0, Colon);
  if (PortStr.empty())
    return false;
  char *End = nullptr;
  long P = std::strtol(PortStr.c_str(), &End, 10);
  if (*End != '\0' || P < 0 || P > 65535)
    return false;
  Port = uint16_t(P);
  return true;
}

StatusOr<Socket> Socket::listenEndpoint(const std::string &Ep, int Backlog) {
  bool IsTcp;
  std::string HostOrPath;
  uint16_t Port;
  if (!parseEndpoint(Ep, IsTcp, HostOrPath, Port))
    return Status::error("socket", "malformed endpoint: '" + Ep + "'");
  return IsTcp ? listenTcp(HostOrPath, Port, Backlog)
               : listenUnix(HostOrPath, Backlog);
}

StatusOr<Socket> Socket::connectEndpoint(const std::string &Ep) {
  bool IsTcp;
  std::string HostOrPath;
  uint16_t Port;
  if (!parseEndpoint(Ep, IsTcp, HostOrPath, Port))
    return Status::error("socket", "malformed endpoint: '" + Ep + "'");
  return IsTcp ? connectTcp(HostOrPath, Port) : connectUnix(HostOrPath);
}

//===----------------------------------------------------------------------===//
// Connections and framing
//===----------------------------------------------------------------------===//

StatusOr<Socket> Socket::accept(int TimeoutMs) {
  if (TimeoutMs >= 0) {
    pollfd P{Fd, POLLIN, 0};
    int N = ::poll(&P, 1, TimeoutMs);
    if (N < 0 && errno != EINTR)
      return fail("poll()");
    if (N <= 0)
      return Socket(); // timeout (or EINTR): let the caller re-check
  }
  int Conn = ::accept(Fd, nullptr, nullptr);
  if (Conn < 0) {
    if (errno == EINTR || errno == ECONNABORTED || errno == EINVAL)
      return Socket(); // racing a shutdown; caller re-checks its flag
    return fail("accept()");
  }
  sockaddr_storage SS;
  socklen_t Len = sizeof(SS);
  if (::getsockname(Conn, reinterpret_cast<sockaddr *>(&SS), &Len) == 0 &&
      SS.ss_family == AF_INET)
    setNodelay(Conn);
  return Socket(Conn);
}

Status Socket::setOpTimeoutMs(unsigned Ms) {
  timeval Tv;
  Tv.tv_sec = Ms / 1000;
  Tv.tv_usec = suseconds_t(Ms % 1000) * 1000;
  if (::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &Tv, sizeof(Tv)) != 0)
    return fail("setsockopt(SO_RCVTIMEO)");
  if (::setsockopt(Fd, SOL_SOCKET, SO_SNDTIMEO, &Tv, sizeof(Tv)) != 0)
    return fail("setsockopt(SO_SNDTIMEO)");
  return Status::ok();
}

/// Writes all of \p Data, riding out EINTR and partial writes. A stall
/// past the per-operation timeout (EAGAIN from SO_SNDTIMEO) is an error:
/// the peer has stopped draining and the frame can never complete.
Status Socket::writeAll(const char *Data, size_t Len) {
  while (Len) {
    ssize_t N = ::send(Fd, Data, Len, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        LastErr = EAGAIN;
        return Status::error("socket", "send() timed out mid-frame");
      }
      return fail("send()");
    }
    Data += N;
    Len -= size_t(N);
  }
  return Status::ok();
}

/// Reads exactly \p Len bytes, riding out EINTR and partial reads.
/// CleanEOF distinguishes a clean end-of-stream on the first byte from a
/// connection dropped mid-message; a stall past the per-operation timeout
/// is an error either way (a torn header is not an idle connection).
Status Socket::readAll(char *Data, size_t Len, bool &CleanEOF) {
  CleanEOF = false;
  bool AtStart = true;
  while (Len) {
    ssize_t N = ::recv(Fd, Data, Len, 0);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        LastErr = EAGAIN;
        return Status::error("socket", AtStart
                                           ? "recv() timed out"
                                           : "recv() timed out mid-frame");
      }
      return fail("recv()");
    }
    if (N == 0) {
      if (AtStart) {
        CleanEOF = true;
        return Status::ok();
      }
      LastErr = ECONNRESET;
      return Status::error("socket", "connection closed mid-frame");
    }
    AtStart = false;
    Data += N;
    Len -= size_t(N);
  }
  return Status::ok();
}

Status Socket::sendRaw(std::string_view Bytes) {
  return writeAll(Bytes.data(), Bytes.size());
}

Status Socket::sendFrame(std::string_view Payload) {
  if (Payload.size() > 0xffffffffu)
    return Status::error("socket", "frame too large to encode");
  unsigned char Hdr[4] = {
      static_cast<unsigned char>(Payload.size() >> 24),
      static_cast<unsigned char>(Payload.size() >> 16),
      static_cast<unsigned char>(Payload.size() >> 8),
      static_cast<unsigned char>(Payload.size()),
  };
  if (Status St = writeAll(reinterpret_cast<char *>(Hdr), 4); !St.isOk())
    return St;
  return writeAll(Payload.data(), Payload.size());
}

Status Socket::recvFrame(std::string &Out, FrameEvent &Ev, size_t MaxBytes,
                         int FirstByteTimeoutMs) {
  Out.clear();
  Ev = FrameEvent::Frame;

  if (FirstByteTimeoutMs >= 0) {
    // Idle wait, distinct from the per-operation deadline: no frame has
    // started, so running out of patience here is reaping, not an error.
    pollfd P{Fd, POLLIN, 0};
    int N;
    do {
      N = ::poll(&P, 1, FirstByteTimeoutMs);
    } while (N < 0 && errno == EINTR);
    if (N < 0)
      return fail("poll()");
    if (N == 0) {
      Ev = FrameEvent::IdleTimeout;
      return Status::ok();
    }
  }

  char Hdr[4];
  bool CleanEOF = false;
  if (Status St = readAll(Hdr, 4, CleanEOF); !St.isOk())
    return St;
  if (CleanEOF) {
    Ev = FrameEvent::PeerClosed;
    return Status::ok();
  }
  size_t Len = (size_t(static_cast<unsigned char>(Hdr[0])) << 24) |
               (size_t(static_cast<unsigned char>(Hdr[1])) << 16) |
               (size_t(static_cast<unsigned char>(Hdr[2])) << 8) |
               size_t(static_cast<unsigned char>(Hdr[3]));
  if (Len > MaxBytes)
    return Status::error("socket", "frame of " + std::to_string(Len) +
                                       " bytes exceeds the limit (" +
                                       std::to_string(MaxBytes) + ")");
  Out.resize(Len);
  if (Status St = readAll(Out.data(), Len, CleanEOF); !St.isOk())
    return St;
  if (CleanEOF) { // closed right after the header: still mid-frame
    LastErr = ECONNRESET;
    return Status::error("socket", "connection closed mid-frame");
  }
  return Status::ok();
}

Status Socket::recvFrame(std::string &Out, bool &PeerClosed,
                         size_t MaxBytes) {
  FrameEvent Ev;
  Status St = recvFrame(Out, Ev, MaxBytes, /*FirstByteTimeoutMs=*/-1);
  PeerClosed = Ev == FrameEvent::PeerClosed;
  return St;
}
