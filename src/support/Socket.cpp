//===- support/Socket.cpp - Stream sockets + framing ----------------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Socket.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

using namespace ursa;

void ursa::ignoreSigpipe() {
  static std::once_flag Once;
  std::call_once(Once, [] { ::signal(SIGPIPE, SIG_IGN); });
}

Status Socket::fail(const std::string &What) {
  LastErr = errno;
  return Status::error("socket", What + ": " + std::strerror(LastErr));
}

Socket::Socket(Socket &&O) noexcept : Fd(O.Fd), LastErr(O.LastErr) {
  O.Fd = -1;
}

Socket &Socket::operator=(Socket &&O) noexcept {
  if (this != &O) {
    close();
    Fd = O.Fd;
    LastErr = O.LastErr;
    O.Fd = -1;
  }
  return *this;
}

void Socket::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

void Socket::shutdown() {
  if (Fd >= 0)
    ::shutdown(Fd, SHUT_RDWR);
}

//===----------------------------------------------------------------------===//
// Unix-domain
//===----------------------------------------------------------------------===//

static Status fillUnixAddr(const std::string &Path, sockaddr_un &Addr) {
  if (Path.size() >= sizeof(Addr.sun_path))
    return Status::error("socket", "socket path too long: " + Path);
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  return Status::ok();
}

StatusOr<Socket> Socket::listenUnix(const std::string &Path, int Backlog) {
  sockaddr_un Addr;
  if (Status St = fillUnixAddr(Path, Addr); !St.isOk())
    return St;
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return Socket().fail("socket()");
  Socket S(Fd);
  ::unlink(Path.c_str()); // stale socket file from a crashed server
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0)
    return S.fail("bind('" + Path + "')");
  if (::listen(Fd, Backlog) != 0)
    return S.fail("listen('" + Path + "')");
  return S;
}

StatusOr<Socket> Socket::connectUnix(const std::string &Path) {
  sockaddr_un Addr;
  if (Status St = fillUnixAddr(Path, Addr); !St.isOk())
    return St;
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return Socket().fail("socket()");
  Socket S(Fd);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0)
    return S.fail("connect('" + Path + "')");
  return S;
}

//===----------------------------------------------------------------------===//
// TCP
//===----------------------------------------------------------------------===//

/// Fills a v4 or v6 socket address for \p Host (bracket-free; a host
/// containing ':' is parsed as IPv6). Empty host = IPv4 loopback.
static Status fillTcpAddr(const std::string &Host, uint16_t Port,
                          sockaddr_storage &SS, socklen_t &Len, int &Family) {
  std::memset(&SS, 0, sizeof(SS));
  const std::string &H = Host.empty() ? std::string("127.0.0.1") : Host;
  if (H.find(':') != std::string::npos) {
    auto *A6 = reinterpret_cast<sockaddr_in6 *>(&SS);
    A6->sin6_family = AF_INET6;
    A6->sin6_port = htons(Port);
    if (::inet_pton(AF_INET6, H.c_str(), &A6->sin6_addr) != 1)
      return Status::error("socket", "bad IPv6 address: '" + H + "'");
    Len = sizeof(sockaddr_in6);
    Family = AF_INET6;
    return Status::ok();
  }
  auto *A4 = reinterpret_cast<sockaddr_in *>(&SS);
  A4->sin_family = AF_INET;
  A4->sin_port = htons(Port);
  if (::inet_pton(AF_INET, H.c_str(), &A4->sin_addr) != 1)
    return Status::error("socket", "bad IPv4 address: '" + H + "'");
  Len = sizeof(sockaddr_in);
  Family = AF_INET;
  return Status::ok();
}

static void setNodelay(int Fd) {
  int One = 1;
  ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
}

/// Renders a host for error messages, re-bracketing IPv6.
static std::string displayHost(const std::string &Host) {
  if (Host.find(':') != std::string::npos)
    return "[" + Host + "]";
  return Host;
}

StatusOr<Socket> Socket::listenTcp(const std::string &Host, uint16_t Port,
                                   int Backlog) {
  sockaddr_storage SS;
  socklen_t Len;
  int Family;
  if (Status St = fillTcpAddr(Host, Port, SS, Len, Family); !St.isOk())
    return St;
  int Fd = ::socket(Family, SOCK_STREAM, 0);
  if (Fd < 0)
    return Socket().fail("socket()");
  Socket S(Fd);
  int One = 1;
  ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&SS), Len) != 0)
    return S.fail("bind(tcp:" + displayHost(Host) + ":" +
                  std::to_string(Port) + ")");
  if (::listen(Fd, Backlog) != 0)
    return S.fail("listen(tcp:" + std::to_string(Port) + ")");
  return S;
}

StatusOr<Socket> Socket::connectTcp(const std::string &Host, uint16_t Port) {
  sockaddr_storage SS;
  socklen_t Len;
  int Family;
  if (Status St = fillTcpAddr(Host, Port, SS, Len, Family); !St.isOk())
    return St;
  int Fd = ::socket(Family, SOCK_STREAM, 0);
  if (Fd < 0)
    return Socket().fail("socket()");
  Socket S(Fd);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&SS), Len) != 0)
    return S.fail("connect(tcp:" + displayHost(Host) + ":" +
                  std::to_string(Port) + ")");
  setNodelay(Fd);
  return S;
}

uint16_t Socket::localPort() const {
  if (Fd < 0)
    return 0;
  sockaddr_storage SS;
  socklen_t Len = sizeof(SS);
  if (::getsockname(Fd, reinterpret_cast<sockaddr *>(&SS), &Len) != 0)
    return 0;
  if (SS.ss_family == AF_INET)
    return ntohs(reinterpret_cast<sockaddr_in *>(&SS)->sin_port);
  if (SS.ss_family == AF_INET6)
    return ntohs(reinterpret_cast<sockaddr_in6 *>(&SS)->sin6_port);
  return 0;
}

//===----------------------------------------------------------------------===//
// Endpoint strings
//===----------------------------------------------------------------------===//

static bool parseFail(std::string *Err, const std::string &Why) {
  if (Err)
    *Err = Why;
  return false;
}

static bool parsePort(const std::string &PortStr, uint16_t &Port,
                      std::string *Err) {
  if (PortStr.empty())
    return parseFail(Err, "missing port");
  char *End = nullptr;
  long P = std::strtol(PortStr.c_str(), &End, 10);
  if (*End != '\0' || P < 0 || P > 65535)
    return parseFail(Err, "bad port: '" + PortStr + "'");
  Port = uint16_t(P);
  return true;
}

bool Socket::parseEndpoint(const std::string &Ep, bool &IsTcp,
                           std::string &HostOrPath, uint16_t &Port,
                           std::string *Err) {
  IsTcp = false;
  Port = 0;
  if (Err)
    Err->clear();
  if (Ep.rfind("unix:", 0) == 0) {
    HostOrPath = Ep.substr(5);
    if (HostOrPath.empty())
      return parseFail(Err, "empty unix socket path");
    return true;
  }
  if (Ep.rfind("tcp:", 0) != 0) {
    HostOrPath = Ep; // bare path = unix socket
    if (HostOrPath.empty())
      return parseFail(Err, "empty endpoint");
    return true;
  }
  IsTcp = true;
  std::string Rest = Ep.substr(4);
  if (!Rest.empty() && Rest[0] == '[') {
    // Bracketed IPv6: tcp:[::1]:PORT. The brackets keep the address's own
    // colons from being mistaken for the host:port separator.
    size_t Close = Rest.find(']');
    if (Close == std::string::npos)
      return parseFail(Err, "unterminated '[' in '" + Ep + "'");
    HostOrPath = Rest.substr(1, Close - 1);
    if (HostOrPath.empty())
      return parseFail(Err, "empty IPv6 address in '" + Ep + "'");
    if (Close + 1 >= Rest.size() || Rest[Close + 1] != ':')
      return parseFail(Err, "expected ':PORT' after ']' in '" + Ep + "'");
    return parsePort(Rest.substr(Close + 2), Port, Err);
  }
  size_t Colon = Rest.rfind(':');
  std::string PortStr = Colon == std::string::npos ? Rest
                                                   : Rest.substr(Colon + 1);
  HostOrPath = Colon == std::string::npos ? std::string() : Rest.substr(0, Colon);
  if (HostOrPath.find(':') != std::string::npos)
    return parseFail(Err, "IPv6 addresses must be bracketed: tcp:[" +
                              HostOrPath + "]:" + PortStr);
  return parsePort(PortStr, Port, Err);
}

std::vector<std::string> Socket::splitEndpointList(const std::string &List) {
  std::vector<std::string> Out;
  size_t Start = 0;
  while (Start <= List.size()) {
    size_t Comma = List.find(',', Start);
    size_t End = Comma == std::string::npos ? List.size() : Comma;
    if (End > Start)
      Out.push_back(List.substr(Start, End - Start));
    if (Comma == std::string::npos)
      break;
    Start = Comma + 1;
  }
  return Out;
}

static Status malformedEndpoint(const std::string &Ep,
                                const std::string &Why) {
  return Status::error("socket", "malformed endpoint '" + Ep + "': " +
                                     (Why.empty() ? "unparseable" : Why));
}

StatusOr<Socket> Socket::listenEndpoint(const std::string &Ep, int Backlog) {
  bool IsTcp;
  std::string HostOrPath;
  uint16_t Port;
  std::string Why;
  if (!parseEndpoint(Ep, IsTcp, HostOrPath, Port, &Why))
    return malformedEndpoint(Ep, Why);
  return IsTcp ? listenTcp(HostOrPath, Port, Backlog)
               : listenUnix(HostOrPath, Backlog);
}

StatusOr<Socket> Socket::connectEndpoint(const std::string &Ep) {
  bool IsTcp;
  std::string HostOrPath;
  uint16_t Port;
  std::string Why;
  if (!parseEndpoint(Ep, IsTcp, HostOrPath, Port, &Why))
    return malformedEndpoint(Ep, Why);
  return IsTcp ? connectTcp(HostOrPath, Port) : connectUnix(HostOrPath);
}

StatusOr<Socket> Socket::connectAnyEndpoint(const std::vector<std::string> &Eps,
                                            size_t *WhichOut) {
  if (Eps.empty())
    return Status::error("socket", "no endpoints to dial");
  Status Last = Status::ok();
  for (size_t I = 0; I < Eps.size(); ++I) {
    StatusOr<Socket> S = connectEndpoint(Eps[I]);
    if (S.isOk()) {
      if (WhichOut)
        *WhichOut = I;
      return S;
    }
    Last = S.status();
  }
  return Last;
}

//===----------------------------------------------------------------------===//
// Connections and framing
//===----------------------------------------------------------------------===//

StatusOr<Socket> Socket::accept(int TimeoutMs) {
  if (TimeoutMs >= 0) {
    pollfd P{Fd, POLLIN, 0};
    int N = ::poll(&P, 1, TimeoutMs);
    if (N < 0 && errno != EINTR)
      return fail("poll()");
    if (N <= 0)
      return Socket(); // timeout (or EINTR): let the caller re-check
  }
  int Conn = ::accept(Fd, nullptr, nullptr);
  if (Conn < 0) {
    if (errno == EINTR || errno == ECONNABORTED || errno == EINVAL)
      return Socket(); // racing a shutdown; caller re-checks its flag
    return fail("accept()");
  }
  sockaddr_storage SS;
  socklen_t Len = sizeof(SS);
  if (::getsockname(Conn, reinterpret_cast<sockaddr *>(&SS), &Len) == 0 &&
      SS.ss_family == AF_INET)
    setNodelay(Conn);
  return Socket(Conn);
}

Status Socket::setOpTimeoutMs(unsigned Ms) {
  timeval Tv;
  Tv.tv_sec = Ms / 1000;
  Tv.tv_usec = suseconds_t(Ms % 1000) * 1000;
  if (::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &Tv, sizeof(Tv)) != 0)
    return fail("setsockopt(SO_RCVTIMEO)");
  if (::setsockopt(Fd, SOL_SOCKET, SO_SNDTIMEO, &Tv, sizeof(Tv)) != 0)
    return fail("setsockopt(SO_SNDTIMEO)");
  return Status::ok();
}

/// Writes all of \p Data, riding out EINTR and partial writes. A stall
/// past the per-operation timeout (EAGAIN from SO_SNDTIMEO) is an error:
/// the peer has stopped draining and the frame can never complete.
Status Socket::writeAll(const char *Data, size_t Len) {
  while (Len) {
    ssize_t N = ::send(Fd, Data, Len, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        LastErr = EAGAIN;
        return Status::error("socket", "send() timed out mid-frame");
      }
      return fail("send()");
    }
    Data += N;
    Len -= size_t(N);
  }
  return Status::ok();
}

/// Reads exactly \p Len bytes, riding out EINTR and partial reads.
/// CleanEOF distinguishes a clean end-of-stream on the first byte from a
/// connection dropped mid-message; a stall past the per-operation timeout
/// is an error either way (a torn header is not an idle connection).
Status Socket::readAll(char *Data, size_t Len, bool &CleanEOF) {
  CleanEOF = false;
  bool AtStart = true;
  while (Len) {
    ssize_t N = ::recv(Fd, Data, Len, 0);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        LastErr = EAGAIN;
        return Status::error("socket", AtStart
                                           ? "recv() timed out"
                                           : "recv() timed out mid-frame");
      }
      return fail("recv()");
    }
    if (N == 0) {
      if (AtStart) {
        CleanEOF = true;
        return Status::ok();
      }
      LastErr = ECONNRESET;
      return Status::error("socket", "connection closed mid-frame");
    }
    AtStart = false;
    Data += N;
    Len -= size_t(N);
  }
  return Status::ok();
}

Status Socket::sendRaw(std::string_view Bytes) {
  return writeAll(Bytes.data(), Bytes.size());
}

Status Socket::sendFrame(std::string_view Payload) {
  if (Payload.size() > 0xffffffffu)
    return Status::error("socket", "frame too large to encode");
  unsigned char Hdr[4] = {
      static_cast<unsigned char>(Payload.size() >> 24),
      static_cast<unsigned char>(Payload.size() >> 16),
      static_cast<unsigned char>(Payload.size() >> 8),
      static_cast<unsigned char>(Payload.size()),
  };
  if (Status St = writeAll(reinterpret_cast<char *>(Hdr), 4); !St.isOk())
    return St;
  return writeAll(Payload.data(), Payload.size());
}

Status Socket::recvFrame(std::string &Out, FrameEvent &Ev, size_t MaxBytes,
                         int FirstByteTimeoutMs) {
  Out.clear();
  Ev = FrameEvent::Frame;

  if (FirstByteTimeoutMs >= 0) {
    // Idle wait, distinct from the per-operation deadline: no frame has
    // started, so running out of patience here is reaping, not an error.
    pollfd P{Fd, POLLIN, 0};
    int N;
    do {
      N = ::poll(&P, 1, FirstByteTimeoutMs);
    } while (N < 0 && errno == EINTR);
    if (N < 0)
      return fail("poll()");
    if (N == 0) {
      Ev = FrameEvent::IdleTimeout;
      return Status::ok();
    }
  }

  char Hdr[4];
  bool CleanEOF = false;
  if (Status St = readAll(Hdr, 4, CleanEOF); !St.isOk())
    return St;
  if (CleanEOF) {
    Ev = FrameEvent::PeerClosed;
    return Status::ok();
  }
  size_t Len = (size_t(static_cast<unsigned char>(Hdr[0])) << 24) |
               (size_t(static_cast<unsigned char>(Hdr[1])) << 16) |
               (size_t(static_cast<unsigned char>(Hdr[2])) << 8) |
               size_t(static_cast<unsigned char>(Hdr[3]));
  if (Len > MaxBytes)
    return Status::error("socket", "frame of " + std::to_string(Len) +
                                       " bytes exceeds the limit (" +
                                       std::to_string(MaxBytes) + ")");
  Out.resize(Len);
  if (Status St = readAll(Out.data(), Len, CleanEOF); !St.isOk())
    return St;
  if (CleanEOF) { // closed right after the header: still mid-frame
    LastErr = ECONNRESET;
    return Status::error("socket", "connection closed mid-frame");
  }
  return Status::ok();
}

Status Socket::recvFrame(std::string &Out, bool &PeerClosed,
                         size_t MaxBytes) {
  FrameEvent Ev;
  Status St = recvFrame(Out, Ev, MaxBytes, /*FirstByteTimeoutMs=*/-1);
  PeerClosed = Ev == FrameEvent::PeerClosed;
  return St;
}
