//===- support/Socket.cpp - Unix-domain socket + framing ------------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Socket.h"

#include <cerrno>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace ursa;

static Status sockError(const std::string &What) {
  return Status::error("socket", What + ": " + std::strerror(errno));
}

UnixSocket &UnixSocket::operator=(UnixSocket &&O) noexcept {
  if (this != &O) {
    close();
    Fd = O.Fd;
    O.Fd = -1;
  }
  return *this;
}

void UnixSocket::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

void UnixSocket::shutdown() {
  if (Fd >= 0)
    ::shutdown(Fd, SHUT_RDWR);
}

static Status fillAddr(const std::string &Path, sockaddr_un &Addr) {
  if (Path.size() >= sizeof(Addr.sun_path))
    return Status::error("socket", "socket path too long: " + Path);
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  return Status::ok();
}

StatusOr<UnixSocket> UnixSocket::listen(const std::string &Path,
                                        int Backlog) {
  sockaddr_un Addr;
  if (Status St = fillAddr(Path, Addr); !St.isOk())
    return St;
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return sockError("socket()");
  UnixSocket S(Fd);
  ::unlink(Path.c_str()); // stale socket file from a crashed server
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0)
    return sockError("bind('" + Path + "')");
  if (::listen(Fd, Backlog) != 0)
    return sockError("listen('" + Path + "')");
  return S;
}

StatusOr<UnixSocket> UnixSocket::connect(const std::string &Path) {
  sockaddr_un Addr;
  if (Status St = fillAddr(Path, Addr); !St.isOk())
    return St;
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return sockError("socket()");
  UnixSocket S(Fd);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0)
    return sockError("connect('" + Path + "')");
  return S;
}

StatusOr<UnixSocket> UnixSocket::accept(int TimeoutMs) {
  if (TimeoutMs >= 0) {
    pollfd P{Fd, POLLIN, 0};
    int N = ::poll(&P, 1, TimeoutMs);
    if (N < 0 && errno != EINTR)
      return sockError("poll()");
    if (N <= 0)
      return UnixSocket(); // timeout (or EINTR): let the caller re-check
  }
  int Conn = ::accept(Fd, nullptr, nullptr);
  if (Conn < 0) {
    if (errno == EINTR || errno == ECONNABORTED || errno == EINVAL)
      return UnixSocket(); // racing a shutdown; caller re-checks its flag
    return sockError("accept()");
  }
  return UnixSocket(Conn);
}

/// Writes all of \p Data, riding out EINTR and partial writes.
static Status writeAll(int Fd, const char *Data, size_t Len) {
  while (Len) {
    ssize_t N = ::send(Fd, Data, Len, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return sockError("send()");
    }
    Data += N;
    Len -= size_t(N);
  }
  return Status::ok();
}

/// Reads exactly \p Len bytes. AtStart distinguishes a clean EOF on the
/// first byte from a connection dropped mid-message.
static Status readAll(int Fd, char *Data, size_t Len, bool &CleanEOF) {
  CleanEOF = false;
  bool AtStart = true;
  while (Len) {
    ssize_t N = ::recv(Fd, Data, Len, 0);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return sockError("recv()");
    }
    if (N == 0) {
      if (AtStart) {
        CleanEOF = true;
        return Status::ok();
      }
      return Status::error("socket", "connection closed mid-frame");
    }
    AtStart = false;
    Data += N;
    Len -= size_t(N);
  }
  return Status::ok();
}

Status UnixSocket::sendFrame(std::string_view Payload) {
  if (Payload.size() > 0xffffffffu)
    return Status::error("socket", "frame too large to encode");
  unsigned char Hdr[4] = {
      static_cast<unsigned char>(Payload.size() >> 24),
      static_cast<unsigned char>(Payload.size() >> 16),
      static_cast<unsigned char>(Payload.size() >> 8),
      static_cast<unsigned char>(Payload.size()),
  };
  if (Status St = writeAll(Fd, reinterpret_cast<char *>(Hdr), 4); !St.isOk())
    return St;
  return writeAll(Fd, Payload.data(), Payload.size());
}

Status UnixSocket::recvFrame(std::string &Out, bool &PeerClosed,
                             size_t MaxBytes) {
  Out.clear();
  PeerClosed = false;
  char Hdr[4];
  bool CleanEOF = false;
  if (Status St = readAll(Fd, Hdr, 4, CleanEOF); !St.isOk())
    return St;
  if (CleanEOF) {
    PeerClosed = true;
    return Status::ok();
  }
  size_t Len = (size_t(static_cast<unsigned char>(Hdr[0])) << 24) |
               (size_t(static_cast<unsigned char>(Hdr[1])) << 16) |
               (size_t(static_cast<unsigned char>(Hdr[2])) << 8) |
               size_t(static_cast<unsigned char>(Hdr[3]));
  if (Len > MaxBytes)
    return Status::error("socket", "frame of " + std::to_string(Len) +
                                       " bytes exceeds the limit (" +
                                       std::to_string(MaxBytes) + ")");
  Out.resize(Len);
  if (Status St = readAll(Fd, Out.data(), Len, CleanEOF); !St.isOk())
    return St;
  if (CleanEOF) // closed right after the header: still mid-frame
    return Status::error("socket", "connection closed mid-frame");
  return Status::ok();
}
