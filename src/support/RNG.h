//===- support/RNG.h - Deterministic random number generation ---*- C++ -*-===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, fast, reproducible PRNG (xoshiro256**). Workload generators and
/// property tests must be bit-for-bit reproducible across platforms, so we
/// do not use std::mt19937 distributions (their mapping is unspecified).
///
//===----------------------------------------------------------------------===//

#ifndef URSA_SUPPORT_RNG_H
#define URSA_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace ursa {

/// xoshiro256** seeded via splitmix64.
class RNG {
public:
  explicit RNG(uint64_t Seed = 0x9e3779b97f4a7c15ULL) {
    uint64_t X = Seed;
    for (uint64_t &W : State) {
      // splitmix64 step.
      X += 0x9e3779b97f4a7c15ULL;
      uint64_t Z = X;
      Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
      W = Z ^ (Z >> 31);
    }
  }

  uint64_t next() {
    uint64_t Result = rotl(State[1] * 5, 7) * 9;
    uint64_t T = State[1] << 17;
    State[2] ^= State[0];
    State[3] ^= State[1];
    State[1] ^= State[2];
    State[0] ^= State[3];
    State[2] ^= T;
    State[3] = rotl(State[3], 45);
    return Result;
  }

  /// Uniform integer in [0, Bound). \p Bound must be positive.
  uint64_t below(uint64_t Bound) {
    assert(Bound > 0 && "below() requires a positive bound");
    // Rejection sampling to avoid modulo bias.
    uint64_t Threshold = (0 - Bound) % Bound;
    for (;;) {
      uint64_t R = next();
      if (R >= Threshold)
        return R % Bound;
    }
  }

  /// Uniform integer in [Lo, Hi] inclusive.
  int64_t range(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "empty range");
    return Lo + int64_t(below(uint64_t(Hi - Lo) + 1));
  }

  /// Uniform double in [0, 1).
  double unit() { return double(next() >> 11) * 0x1.0p-53; }

  /// Bernoulli draw with probability \p P.
  bool chance(double P) { return unit() < P; }

  /// Picks a uniformly random element of \p V (must be non-empty).
  template <typename VecT> auto &pick(VecT &V) {
    assert(!V.empty() && "pick() from empty vector");
    return V[below(V.size())];
  }

private:
  static uint64_t rotl(uint64_t X, int K) {
    return (X << K) | (X >> (64 - K));
  }

  uint64_t State[4];
};

} // namespace ursa

#endif // URSA_SUPPORT_RNG_H
