//===- support/ThreadPool.h - Minimal blocking thread pool ------*- C++ -*-===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fixed-size worker pool with one operation: a blocking
/// parallelFor over an index range. The calling thread participates in
/// the work, so a pool of size N uses N-1 workers and `ThreadPool(1)`
/// spawns no threads at all — the serial path stays exactly serial,
/// which is what lets URSA_THREADS=1 reproduce single-threaded behavior
/// bit for bit (see docs/PERFORMANCE.md).
///
/// Tasks must be independent: indices are handed out through one atomic
/// counter, in no particular order, and parallelFor returns only after
/// every index has been processed. The first exception thrown by any
/// task is captured and rethrown on the calling thread once the batch
/// drains; remaining indices still run (they may be mid-flight on other
/// workers and results must stay deterministic for the reduction).
///
//===----------------------------------------------------------------------===//

#ifndef URSA_SUPPORT_THREADPOOL_H
#define URSA_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ursa {

class ThreadPool {
public:
  /// Creates a pool of total concurrency \p Threads (clamped to at least
  /// 1). The calling thread counts toward the total, so Threads - 1
  /// workers are spawned.
  explicit ThreadPool(unsigned Threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Total concurrency (workers + the calling thread).
  unsigned numThreads() const { return unsigned(Workers.size()) + 1; }

  /// Runs Fn(I) for every I in [0, Count), blocking until all complete.
  /// The caller participates; with no workers this is a plain loop.
  void parallelFor(size_t Count, const std::function<void(size_t)> &Fn);

  /// The thread count URSAOptions::Threads == 0 resolves to: the
  /// URSA_THREADS environment variable when set to a positive integer,
  /// otherwise 1 (serial). Deliberately not hardware_concurrency() —
  /// threading is opt-in so results stay reproducible by default.
  static unsigned defaultThreads();

private:
  void workerLoop();

  // One batch of work, guarded by Mu. Generation increments per batch so
  // sleeping workers can tell a new batch from a spurious wake.
  std::mutex Mu;
  std::condition_variable WorkReady;
  std::condition_variable BatchDone;
  const std::function<void(size_t)> *Fn = nullptr;
  size_t Count = 0;
  size_t Next = 0;      ///< next index to hand out
  size_t Remaining = 0; ///< indices not yet finished
  uint64_t Generation = 0;
  std::exception_ptr FirstError;
  bool ShuttingDown = false;

  std::vector<std::thread> Workers;
};

} // namespace ursa

#endif // URSA_SUPPORT_THREADPOOL_H
