//===- support/Table.cpp - ASCII table rendering --------------------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Table.h"

#include <cassert>
#include <cstdio>

using namespace ursa;

Table::Table(std::vector<std::string> Cols) : Header(std::move(Cols)) {}

void Table::addRow(std::vector<std::string> Cells) {
  assert(Cells.size() == Header.size() && "row arity mismatch");
  Rows.push_back(std::move(Cells));
}

void Table::print(std::ostream &OS) const {
  std::vector<size_t> Width(Header.size(), 0);
  for (size_t C = 0; C != Header.size(); ++C)
    Width[C] = Header[C].size();
  for (const auto &Row : Rows)
    for (size_t C = 0; C != Row.size(); ++C)
      if (Row[C].size() > Width[C])
        Width[C] = Row[C].size();

  auto PrintRow = [&](const std::vector<std::string> &Row) {
    OS << "|";
    for (size_t C = 0; C != Row.size(); ++C) {
      OS << ' ' << Row[C];
      for (size_t P = Row[C].size(); P < Width[C]; ++P)
        OS << ' ';
      OS << " |";
    }
    OS << '\n';
  };

  PrintRow(Header);
  OS << "|";
  for (size_t C = 0; C != Header.size(); ++C) {
    for (size_t P = 0; P < Width[C] + 2; ++P)
      OS << '-';
    OS << "|";
  }
  OS << '\n';
  for (const auto &Row : Rows)
    PrintRow(Row);
}

std::string Table::fmt(double V, int Digits) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Digits, V);
  return Buf;
}

std::string Table::fmt(uint64_t V) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%llu", (unsigned long long)V);
  return Buf;
}

std::string Table::fmt(int64_t V) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%lld", (long long)V);
  return Buf;
}
