//===- support/TiledBitMatrix.cpp - Blocked sparse bit matrix -------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/TiledBitMatrix.h"

#include <algorithm>

using namespace ursa;

uint32_t TiledBitMatrix::materialize(size_t TI) {
  uint32_t T;
  if (!FreeList.empty()) {
    T = FreeList.back();
    FreeList.pop_back();
    std::fill_n(Pool.begin() + size_t(T) * WordsPerChunk, WordsPerChunk,
                uint64_t(0));
  } else {
    T = uint32_t(Pool.size() / WordsPerChunk);
    Pool.resize(Pool.size() + WordsPerChunk, 0);
    Sat.push_back(0);
  }
  Sat[T] = 0;
  Grid[TI] = T;
  return T;
}

void TiledBitMatrix::orRowWord(unsigned R, unsigned WI, uint64_t W) {
  assert(R < N && WI < TPS && "word index out of range");
  assert((WI + 1 < TPS || N % 64 == 0 || (W >> (N % 64)) == 0) &&
         "word carries bits beyond the matrix side");
  if (W == 0)
    return;
  size_t TI = tileIndex(R, WI);
  uint32_t T = Grid[TI];
  if (T == AllOne)
    return;
  if (T == AllZero)
    T = materialize(TI);
  uint64_t &Dst = Pool[size_t(T) * WordsPerChunk + (R & 63)];
  uint64_t Old = Dst;
  Dst |= W;
  if (Dst != Old && Dst == ~uint64_t(0) && ++Sat[T] == WordsPerChunk) {
    // Every word of the chunk is saturated: collapse the tile to its
    // summary and recycle the chunk. Ragged boundary tiles never reach
    // this point (their tail words cannot saturate).
    Grid[TI] = AllOne;
    FreeList.push_back(T);
  }
}

void TiledBitMatrix::orRow(unsigned Dst, unsigned Src) {
  assert(Dst < N && Src < N && "row index out of range");
  size_t SrcBase = size_t(Src / 64) * TPS;
  for (unsigned TC = 0; TC != TPS; ++TC) {
    uint32_t ST = Grid[SrcBase + TC];
    if (ST == AllZero)
      continue;
    // Read by value before orRowWord: materialization may reallocate Pool,
    // and Dst may share the tile row with Src.
    uint64_t W = ST == AllOne ? ~uint64_t(0)
                              : Pool[size_t(ST) * WordsPerChunk + (Src & 63)];
    orRowWord(Dst, TC, W);
  }
}

void TiledBitMatrix::orRowBitset(unsigned R, const Bitset &B) {
  assert(B.size() == N && "bitset/matrix size mismatch");
  for (unsigned WI = 0; WI != TPS; ++WI)
    orRowWord(R, WI, B.word(WI));
}

Bitset TiledBitMatrix::rowBitset(unsigned R) const {
  Bitset B(N);
  for (unsigned WI = 0; WI != TPS; ++WI) {
    uint64_t W = rowWord(R, WI);
    if (W)
      B.orWord(WI, W);
  }
  return B;
}

unsigned TiledBitMatrix::rowCount(unsigned R) const {
  assert(R < N && "row index out of range");
  unsigned Count = 0;
  size_t Base = size_t(R / 64) * TPS;
  for (unsigned TC = 0; TC != TPS; ++TC) {
    uint32_t T = Grid[Base + TC];
    if (T == AllZero)
      continue;
    Count += T == AllOne
                 ? 64
                 : __builtin_popcountll(
                       Pool[size_t(T) * WordsPerChunk + (R & 63)]);
  }
  return Count;
}

unsigned TiledBitMatrix::rowFindNext(unsigned R, unsigned From) const {
  if (From >= N)
    return N;
  unsigned WI = From / 64;
  uint64_t W = rowWord(R, WI) & (~uint64_t(0) << (From % 64));
  while (!W) {
    if (++WI == TPS)
      return N;
    uint32_t T = Grid[tileIndex(R, WI)];
    if (T == AllZero)
      continue;
    W = T == AllOne ? ~uint64_t(0)
                    : Pool[size_t(T) * WordsPerChunk + (R & 63)];
  }
  unsigned Bit = WI * 64 + __builtin_ctzll(W);
  assert(Bit < N && "set bit beyond the matrix side");
  return Bit;
}

void TiledBitMatrix::clearRow(unsigned R) {
  assert(R < N && "row index out of range");
  size_t Base = size_t(R / 64) * TPS;
  for (unsigned TC = 0; TC != TPS; ++TC) {
    uint32_t T = Grid[Base + TC];
    if (T == AllZero)
      continue;
    if (T == AllOne) {
      // Demote: the other 63 rows of the tile stay saturated.
      T = materialize(Base + TC);
      std::fill_n(Pool.begin() + size_t(T) * WordsPerChunk, WordsPerChunk,
                  ~uint64_t(0));
      Pool[size_t(T) * WordsPerChunk + (R & 63)] = 0;
      Sat[T] = WordsPerChunk - 1;
      continue;
    }
    uint64_t &W = Pool[size_t(T) * WordsPerChunk + (R & 63)];
    if (W == ~uint64_t(0))
      --Sat[T];
    W = 0;
    auto ChunkBegin = Pool.begin() + size_t(T) * WordsPerChunk;
    if (std::all_of(ChunkBegin, ChunkBegin + WordsPerChunk,
                    [](uint64_t X) { return X == 0; })) {
      Grid[Base + TC] = AllZero;
      FreeList.push_back(T);
    }
  }
}

void TiledBitMatrix::growTo(unsigned NewSize) {
  assert(NewSize >= N && "matrix can only grow");
  unsigned NewTPS = (NewSize + 63) / 64;
  if (NewTPS != TPS) {
    std::vector<uint32_t> NewGrid(size_t(NewTPS) * NewTPS, AllZero);
    for (unsigned TR = 0; TR != TPS; ++TR)
      std::copy_n(Grid.begin() + size_t(TR) * TPS, TPS,
                  NewGrid.begin() + size_t(TR) * NewTPS);
    Grid = std::move(NewGrid);
    TPS = NewTPS;
  }
  N = NewSize;
}
