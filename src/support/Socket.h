//===- support/Socket.h - Unix-domain socket + framing ----------*- C++ -*-===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The transport under the compile service: RAII Unix-domain stream
/// sockets plus length-prefixed message framing. A frame is a 4-byte
/// big-endian payload length followed by that many bytes (the service
/// puts JSON in them; this layer does not care). All failures come back
/// as Status — short reads, peer resets, and oversized frames are
/// ordinary errors, never aborts.
///
//===----------------------------------------------------------------------===//

#ifndef URSA_SUPPORT_SOCKET_H
#define URSA_SUPPORT_SOCKET_H

#include "support/Status.h"

#include <cstddef>
#include <string>
#include <string_view>

namespace ursa {

/// An owned socket file descriptor (listener or connection).
class UnixSocket {
public:
  UnixSocket() = default;
  ~UnixSocket() { close(); }

  UnixSocket(UnixSocket &&O) noexcept : Fd(O.Fd) { O.Fd = -1; }
  UnixSocket &operator=(UnixSocket &&O) noexcept;
  UnixSocket(const UnixSocket &) = delete;
  UnixSocket &operator=(const UnixSocket &) = delete;

  /// Binds and listens on \p Path, unlinking any stale socket file first.
  static StatusOr<UnixSocket> listen(const std::string &Path,
                                     int Backlog = 16);

  /// Connects to the server listening on \p Path.
  static StatusOr<UnixSocket> connect(const std::string &Path);

  /// Accepts one connection on a listening socket. Blocks up to
  /// \p TimeoutMs (-1 = forever); a timeout returns an invalid socket
  /// with an OK status so accept loops can poll a stop flag.
  StatusOr<UnixSocket> accept(int TimeoutMs = -1);

  /// Writes one length-prefixed frame (the whole payload or an error).
  Status sendFrame(std::string_view Payload);

  /// Reads one length-prefixed frame into \p Out. A clean end-of-stream
  /// before any header byte returns OK with \p Out cleared and
  /// \p PeerClosed set; frames longer than \p MaxBytes are an error (the
  /// connection is then out of sync and should be dropped).
  Status recvFrame(std::string &Out, bool &PeerClosed,
                   size_t MaxBytes = 64u << 20);

  /// Shuts down both directions, unblocking any thread inside
  /// recvFrame/sendFrame on this socket (used for server shutdown).
  void shutdown();

  void close();
  bool valid() const { return Fd >= 0; }
  int fd() const { return Fd; }

private:
  explicit UnixSocket(int FdIn) : Fd(FdIn) {}

  int Fd = -1;
};

} // namespace ursa

#endif // URSA_SUPPORT_SOCKET_H
