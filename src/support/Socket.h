//===- support/Socket.h - Stream sockets + framing --------------*- C++ -*-===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The transport under the compile service: RAII stream sockets —
/// Unix-domain or TCP (loopback by default) — plus length-prefixed message
/// framing. A frame is a 4-byte big-endian payload length followed by that
/// many bytes (the service puts JSON in them; this layer does not care).
///
/// Robustness contract:
///  * all failures come back as Status — short reads, peer resets, torn
///    frames, and oversized frames are ordinary errors, never aborts;
///  * every read/write loops over partial transfers and retries EINTR, so
///    a signal mid-frame never kills a connection;
///  * per-operation deadlines (setOpTimeoutMs) bound how long one peer can
///    stall the other mid-frame, and recvFrame takes a separate first-byte
///    timeout so servers can reap idle connections without cutting off a
///    slow frame in flight;
///  * SIGPIPE is never raised: sends use MSG_NOSIGNAL, and ignoreSigpipe()
///    shields any path that slips past it (call once in process setup).
///
/// Endpoints are spelled as strings shared by server and client flags:
///   "unix:PATH" or a bare path   Unix-domain socket at PATH
///   "tcp:HOST:PORT"              TCP (HOST may be empty = 127.0.0.1)
///   "tcp:[V6]:PORT"              TCP over IPv6 (brackets required, so the
///                                address colons don't split the port)
///   "tcp:PORT"                   TCP on loopback
/// TCP listeners may bind port 0; localPort() reports the kernel's pick.
/// A comma-separated list of endpoints names alternates to dial in order
/// (splitEndpointList / connectAnyEndpoint) — the router front-end and its
/// clients use this for fallback targets.
///
//===----------------------------------------------------------------------===//

#ifndef URSA_SUPPORT_SOCKET_H
#define URSA_SUPPORT_SOCKET_H

#include "support/Status.h"

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ursa {

/// Ignores SIGPIPE process-wide (idempotent). Server and client setup call
/// this so a peer vanishing mid-write surfaces as an EPIPE Status instead
/// of killing the process.
void ignoreSigpipe();

/// An owned socket file descriptor (listener or connection).
class Socket {
public:
  Socket() = default;
  ~Socket() { close(); }

  Socket(Socket &&O) noexcept;
  Socket &operator=(Socket &&O) noexcept;
  Socket(const Socket &) = delete;
  Socket &operator=(const Socket &) = delete;

  //===--- Unix-domain -----------------------------------------------------===//

  /// Binds and listens on \p Path, unlinking any stale socket file first.
  static StatusOr<Socket> listenUnix(const std::string &Path,
                                     int Backlog = 16);

  /// Connects to the server listening on \p Path.
  static StatusOr<Socket> connectUnix(const std::string &Path);

  /// Historical names (the service grew up on Unix sockets).
  static StatusOr<Socket> listen(const std::string &Path, int Backlog = 16) {
    return listenUnix(Path, Backlog);
  }
  static StatusOr<Socket> connect(const std::string &Path) {
    return connectUnix(Path);
  }

  //===--- TCP -------------------------------------------------------------===//

  /// Binds and listens on \p Host:\p Port (empty host = loopback). Port 0
  /// lets the kernel choose; read it back with localPort().
  static StatusOr<Socket> listenTcp(const std::string &Host, uint16_t Port,
                                    int Backlog = 16);

  /// Connects to \p Host:\p Port (empty host = loopback).
  static StatusOr<Socket> connectTcp(const std::string &Host, uint16_t Port);

  //===--- Endpoint strings ------------------------------------------------===//

  /// Splits an endpoint string (see file header) into its parts. Returns
  /// false when \p Ep is not a well-formed endpoint (e.g. "tcp:" with a
  /// non-numeric port, or an unbracketed IPv6 address); \p Err, when
  /// non-null, receives a one-line explanation. IPv6 hosts come back with
  /// their brackets stripped ("tcp:[::1]:80" yields host "::1").
  static bool parseEndpoint(const std::string &Ep, bool &IsTcp,
                            std::string &HostOrPath, uint16_t &Port,
                            std::string *Err = nullptr);

  /// Splits a comma-separated endpoint list ("tcp:9001,tcp:host:9002")
  /// into individual endpoints, dropping empty entries. Unix socket paths
  /// containing commas cannot ride in a list; dial them singly.
  static std::vector<std::string> splitEndpointList(const std::string &List);

  static StatusOr<Socket> listenEndpoint(const std::string &Ep,
                                         int Backlog = 16);
  static StatusOr<Socket> connectEndpoint(const std::string &Ep);

  /// Dials each endpoint in order and returns the first that answers
  /// (multi-endpoint dialing: routers with fallbacks, fleet seeds). On
  /// success \p WhichOut (when non-null) gets the index that connected; on
  /// failure the Status carries the last endpoint's error.
  static StatusOr<Socket> connectAnyEndpoint(const std::vector<std::string> &Eps,
                                             size_t *WhichOut = nullptr);

  //===--- Connections -----------------------------------------------------===//

  /// Accepts one connection on a listening socket. Blocks up to
  /// \p TimeoutMs (-1 = forever); a timeout returns an invalid socket
  /// with an OK status so accept loops can poll a stop flag.
  StatusOr<Socket> accept(int TimeoutMs = -1);

  /// Bounds every subsequent blocking read/write on this socket: an
  /// operation that makes no progress for \p Ms milliseconds fails with a
  /// "timed out" Status (and lastErrno() EAGAIN). 0 restores the
  /// unbounded default. This is the per-operation deadline that keeps a
  /// stalled peer from pinning a worker mid-frame.
  Status setOpTimeoutMs(unsigned Ms);

  /// Writes one length-prefixed frame (the whole payload or an error).
  Status sendFrame(std::string_view Payload);

  /// Writes raw bytes with no framing. The wire-level fault injector and
  /// the malformed-input tests speak through this; production code always
  /// uses sendFrame.
  Status sendRaw(std::string_view Bytes);

  /// What recvFrame observed besides a payload.
  enum class FrameEvent {
    Frame,      ///< a complete frame was read into Out
    PeerClosed, ///< clean end-of-stream before any header byte
    IdleTimeout ///< no header byte within FirstByteTimeoutMs
  };

  /// Reads one length-prefixed frame into \p Out. \p FirstByteTimeoutMs
  /// bounds only the wait for the first header byte (-1 = wait forever);
  /// once a frame has started, the per-operation timeout governs. Frames
  /// longer than \p MaxBytes are an error (the stream is then out of sync
  /// and the connection should be dropped), as are torn headers, mid-frame
  /// EOF, and mid-frame stalls past the op timeout.
  Status recvFrame(std::string &Out, FrameEvent &Ev,
                   size_t MaxBytes = 64u << 20, int FirstByteTimeoutMs = -1);

  /// Compatibility shim: FrameEvent collapsed to a PeerClosed flag (no
  /// idle timeout).
  Status recvFrame(std::string &Out, bool &PeerClosed,
                   size_t MaxBytes = 64u << 20);

  /// Shuts down both directions, unblocking any thread inside
  /// recvFrame/sendFrame on this socket (used for server shutdown).
  void shutdown();

  void close();
  bool valid() const { return Fd >= 0; }
  int fd() const { return Fd; }

  /// The port a TCP socket is bound/connected on (0 for Unix sockets or
  /// errors). After listenTcp(host, 0) this is the kernel-assigned port.
  uint16_t localPort() const;

  /// errno of the last failed operation on this socket (0 if none). The
  /// retry layer classifies failures with this (ECONNREFUSED, EPIPE, ...).
  int lastErrno() const { return LastErr; }

private:
  explicit Socket(int FdIn) : Fd(FdIn) {}

  Status fail(const std::string &What); ///< captures errno into LastErr

  Status writeAll(const char *Data, size_t Len);
  /// Reads exactly Len bytes; CleanEOF reports EOF on the first byte.
  Status readAll(char *Data, size_t Len, bool &CleanEOF);

  int Fd = -1;
  int LastErr = 0;
};

/// Historical name: the transport predates TCP support.
using UnixSocket = Socket;

} // namespace ursa

#endif // URSA_SUPPORT_SOCKET_H
