//===- support/Dot.h - Graphviz DOT emission --------------------*- C++ -*-===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal helper for writing Graphviz digraphs; used to dump dependence
/// DAGs and reuse DAGs for debugging and documentation.
///
//===----------------------------------------------------------------------===//

#ifndef URSA_SUPPORT_DOT_H
#define URSA_SUPPORT_DOT_H

#include <ostream>
#include <string>
#include <vector>

namespace ursa {

/// Collects nodes and edges, then renders a `digraph`.
class DotWriter {
public:
  explicit DotWriter(std::string Name) : GraphName(std::move(Name)) {}

  /// Declares node \p Id with display \p Label; optional DOT \p Attrs like
  /// "shape=box".
  void addNode(unsigned Id, const std::string &Label,
               const std::string &Attrs = "");

  /// Declares edge \p From -> \p To; optional DOT \p Attrs like
  /// "style=dashed".
  void addEdge(unsigned From, unsigned To, const std::string &Attrs = "");

  void print(std::ostream &OS) const;

private:
  struct Node {
    unsigned Id;
    std::string Label;
    std::string Attrs;
  };
  struct Edge {
    unsigned From, To;
    std::string Attrs;
  };

  std::string GraphName;
  std::vector<Node> Nodes;
  std::vector<Edge> Edges;
};

} // namespace ursa

#endif // URSA_SUPPORT_DOT_H
