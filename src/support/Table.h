//===- support/Table.h - ASCII table rendering for harnesses ----*- C++ -*-===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Column-aligned ASCII tables. Every benchmark harness prints its results
/// through this class so EXPERIMENTS.md rows and program output agree.
///
//===----------------------------------------------------------------------===//

#ifndef URSA_SUPPORT_TABLE_H
#define URSA_SUPPORT_TABLE_H

#include <ostream>
#include <string>
#include <vector>

namespace ursa {

/// Accumulates rows of string cells and renders them with padded columns.
class Table {
public:
  explicit Table(std::vector<std::string> Header);

  /// Appends one data row; its arity must match the header.
  void addRow(std::vector<std::string> Cells);

  /// Renders the table (header, separator, rows) to \p OS.
  void print(std::ostream &OS) const;

  /// Formats a double with \p Digits fractional digits.
  static std::string fmt(double V, int Digits = 2);
  static std::string fmt(uint64_t V);
  static std::string fmt(int64_t V);
  static std::string fmt(int V) { return fmt(int64_t(V)); }
  static std::string fmt(unsigned V) { return fmt(uint64_t(V)); }

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace ursa

#endif // URSA_SUPPORT_TABLE_H
