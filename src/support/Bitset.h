//===- support/Bitset.h - Dynamic bitsets and bit matrices ------*- C++ -*-===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small dynamic bitset and a dense square bit matrix. The bit matrix is
/// the workhorse behind reachability closures: URSA's chain machinery asks
/// "is a an ancestor of b?" constantly, so the answer must be O(1), and set
/// operations (union of successor rows) must be word-parallel.
///
//===----------------------------------------------------------------------===//

#ifndef URSA_SUPPORT_BITSET_H
#define URSA_SUPPORT_BITSET_H

#include <cstddef>
#include <cassert>
#include <cstdint>
#include <vector>

namespace ursa {

/// A fixed-capacity dynamic bitset backed by 64-bit words.
class Bitset {
public:
  Bitset() = default;
  explicit Bitset(unsigned Bits)
      : NumBits(Bits), Words((Bits + 63) / 64, 0) {}

  unsigned size() const { return NumBits; }

  bool test(unsigned I) const {
    assert(I < NumBits && "bit index out of range");
    return (Words[I / 64] >> (I % 64)) & 1;
  }

  void set(unsigned I) {
    assert(I < NumBits && "bit index out of range");
    Words[I / 64] |= uint64_t(1) << (I % 64);
  }

  void reset(unsigned I) {
    assert(I < NumBits && "bit index out of range");
    Words[I / 64] &= ~(uint64_t(1) << (I % 64));
  }

  void clear() {
    for (uint64_t &W : Words)
      W = 0;
  }

  /// Sets every bit in [0, size()).
  void setAll() {
    for (uint64_t &W : Words)
      W = ~uint64_t(0);
    trimTail();
  }

  /// In-place union. Both operands must have the same size.
  Bitset &operator|=(const Bitset &O) {
    assert(NumBits == O.NumBits && "size mismatch");
    for (unsigned I = 0, E = Words.size(); I != E; ++I)
      Words[I] |= O.Words[I];
    return *this;
  }

  /// In-place intersection. Both operands must have the same size.
  Bitset &operator&=(const Bitset &O) {
    assert(NumBits == O.NumBits && "size mismatch");
    for (unsigned I = 0, E = Words.size(); I != E; ++I)
      Words[I] &= O.Words[I];
    return *this;
  }

  /// In-place difference (this \ O).
  Bitset &subtract(const Bitset &O) {
    assert(NumBits == O.NumBits && "size mismatch");
    for (unsigned I = 0, E = Words.size(); I != E; ++I)
      Words[I] &= ~O.Words[I];
    return *this;
  }

  bool anyCommon(const Bitset &O) const {
    assert(NumBits == O.NumBits && "size mismatch");
    for (unsigned I = 0, E = Words.size(); I != E; ++I)
      if (Words[I] & O.Words[I])
        return true;
    return false;
  }

  unsigned count() const {
    unsigned N = 0;
    for (uint64_t W : Words)
      N += __builtin_popcountll(W);
    return N;
  }

  /// Population count of the intersection with \p O, without materializing
  /// a temporary bitset.
  unsigned countCommon(const Bitset &O) const {
    assert(NumBits == O.NumBits && "size mismatch");
    unsigned N = 0;
    for (unsigned I = 0, E = Words.size(); I != E; ++I)
      N += __builtin_popcountll(Words[I] & O.Words[I]);
    return N;
  }

  /// Number of backing 64-bit words.
  unsigned numWords() const { return unsigned(Words.size()); }

  /// The word covering bits [WI*64, WI*64+64).
  uint64_t word(unsigned WI) const {
    assert(WI < Words.size() && "word index out of range");
    return Words[WI];
  }

  /// ORs \p W into word \p WI; bits beyond size() are trimmed.
  void orWord(unsigned WI, uint64_t W) {
    assert(WI < Words.size() && "word index out of range");
    Words[WI] |= W;
    if (WI + 1 == Words.size())
      trimTail();
  }

  bool none() const {
    for (uint64_t W : Words)
      if (W)
        return false;
    return true;
  }

  bool operator==(const Bitset &O) const {
    return NumBits == O.NumBits && Words == O.Words;
  }

  /// Index of the first set bit >= \p From, or size() when none — the
  /// resumable counterpart of forEach() for explicit-stack traversals.
  unsigned findNext(unsigned From) const {
    if (From >= NumBits)
      return NumBits;
    unsigned WI = From / 64;
    uint64_t W = Words[WI] & (~uint64_t(0) << (From % 64));
    while (!W) {
      if (++WI == Words.size())
        return NumBits;
      W = Words[WI];
    }
    return WI * 64 + __builtin_ctzll(W);
  }

  /// Calls \p F with the index of every set bit, in increasing order.
  template <typename Fn> void forEach(Fn F) const {
    for (unsigned WI = 0, WE = Words.size(); WI != WE; ++WI) {
      uint64_t W = Words[WI];
      while (W) {
        unsigned Bit = __builtin_ctzll(W);
        F(WI * 64 + Bit);
        W &= W - 1;
      }
    }
  }

private:
  void trimTail() {
    if (NumBits % 64 != 0 && !Words.empty())
      Words.back() &= (uint64_t(1) << (NumBits % 64)) - 1;
  }

  unsigned NumBits = 0;
  std::vector<uint64_t> Words;
};

/// A dense N x N bit matrix; row R answers membership queries about R's
/// relation to every other index (e.g. "which nodes can R reach").
class BitMatrix {
public:
  BitMatrix() = default;
  explicit BitMatrix(unsigned Size) : N(Size), Rows(Size, Bitset(Size)) {}

  unsigned size() const { return N; }

  bool test(unsigned R, unsigned C) const { return Rows[R].test(C); }
  void set(unsigned R, unsigned C) { Rows[R].set(C); }

  Bitset &row(unsigned R) { return Rows[R]; }
  const Bitset &row(unsigned R) const { return Rows[R]; }

  /// Unions row \p Src into row \p Dst (used for closure propagation).
  void unionRows(unsigned Dst, unsigned Src) { Rows[Dst] |= Rows[Src]; }

  /// Word-parallel population count of row \p R — the allocation-free way
  /// to tally relation pairs (no row copy, no per-bit iteration).
  unsigned popcountRow(unsigned R) const { return Rows[R].count(); }

  /// Heap bytes behind the rows.
  size_t memoryBytes() const {
    return Rows.capacity() * sizeof(Bitset) +
           size_t(N) * (((size_t(N) + 63) / 64) * 8);
  }

private:
  unsigned N = 0;
  std::vector<Bitset> Rows;
};

} // namespace ursa

#endif // URSA_SUPPORT_BITSET_H
