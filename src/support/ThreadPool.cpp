//===- support/ThreadPool.cpp - Minimal blocking thread pool --------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <cstdlib>

using namespace ursa;

ThreadPool::ThreadPool(unsigned Threads) {
  if (Threads < 1)
    Threads = 1;
  Workers.reserve(Threads - 1);
  for (unsigned I = 1; I < Threads; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    ShuttingDown = true;
  }
  WorkReady.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

unsigned ThreadPool::defaultThreads() {
  const char *Env = std::getenv("URSA_THREADS");
  if (!Env || !*Env)
    return 1;
  long N = std::strtol(Env, nullptr, 10);
  return N > 0 ? unsigned(N) : 1;
}

void ThreadPool::workerLoop() {
  std::unique_lock<std::mutex> Lock(Mu);
  uint64_t SeenGeneration = 0;
  while (true) {
    WorkReady.wait(Lock, [&] {
      return ShuttingDown || (Fn && Generation != SeenGeneration);
    });
    if (ShuttingDown)
      return;
    SeenGeneration = Generation;
    while (Next < Count) {
      size_t I = Next++;
      Lock.unlock();
      try {
        (*Fn)(I);
      } catch (...) {
        Lock.lock();
        if (!FirstError)
          FirstError = std::current_exception();
        Lock.unlock();
      }
      Lock.lock();
      if (--Remaining == 0)
        BatchDone.notify_all();
    }
  }
}

void ThreadPool::parallelFor(size_t N,
                             const std::function<void(size_t)> &Body) {
  if (N == 0)
    return;
  if (Workers.empty()) {
    for (size_t I = 0; I != N; ++I)
      Body(I);
    return;
  }

  std::unique_lock<std::mutex> Lock(Mu);
  Fn = &Body;
  Count = N;
  Next = 0;
  Remaining = N;
  FirstError = nullptr;
  ++Generation;
  Lock.unlock();
  WorkReady.notify_all();

  // The caller works the same queue, then waits out stragglers.
  Lock.lock();
  while (Next < Count) {
    size_t I = Next++;
    Lock.unlock();
    try {
      Body(I);
    } catch (...) {
      Lock.lock();
      if (!FirstError)
        FirstError = std::current_exception();
      Lock.unlock();
    }
    Lock.lock();
    if (--Remaining == 0)
      BatchDone.notify_all();
  }
  BatchDone.wait(Lock, [&] { return Remaining == 0; });
  Fn = nullptr;
  std::exception_ptr Err = FirstError;
  FirstError = nullptr;
  Lock.unlock();
  if (Err)
    std::rethrow_exception(Err);
}
