//===- graph/Dominators.h - Dominator and postdominator trees ---*- C++ -*-===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dominator and postdominator trees over the dependence DAG (Cooper,
/// Harvey & Kennedy's iterative algorithm). URSA needs them only to find
/// hammocks — the single-entry/single-exit regions its transformations
/// localize to — and to prioritize matching edges by hammock nesting.
///
//===----------------------------------------------------------------------===//

#ifndef URSA_GRAPH_DOMINATORS_H
#define URSA_GRAPH_DOMINATORS_H

#include "graph/Analysis.h"
#include "graph/DAG.h"

#include <vector>

namespace ursa {

/// One dominance tree (forward = dominators rooted at entry, reverse =
/// postdominators rooted at exit).
class DominatorTree {
public:
  /// \p PostDom selects the reverse (postdominator) tree.
  DominatorTree(const DependenceDAG &D, const DAGAnalysis &A, bool PostDom);

  /// Immediate dominator of \p N; the root's idom is itself.
  unsigned idom(unsigned N) const { return IDom[N]; }

  unsigned root() const { return Root; }

  /// True if \p A dominates \p B (reflexive).
  bool dominates(unsigned A, unsigned B) const {
    return TIn[A] <= TIn[B] && TOut[B] <= TOut[A];
  }

private:
  unsigned Root;
  std::vector<unsigned> IDom;
  std::vector<unsigned> TIn, TOut; ///< Euler interval labels on the tree
};

} // namespace ursa

#endif // URSA_GRAPH_DOMINATORS_H
