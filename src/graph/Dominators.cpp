//===- graph/Dominators.cpp - Dominator and postdominator trees -----------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "graph/Dominators.h"

#include <algorithm>

using namespace ursa;

DominatorTree::DominatorTree(const DependenceDAG &D, const DAGAnalysis &A,
                             bool PostDom) {
  unsigned N = D.size();
  Root = PostDom ? DependenceDAG::ExitNode : DependenceDAG::EntryNode;
  IDom.assign(N, ~0u);
  IDom[Root] = Root;

  // Process in topological order from the root; on a DAG one pass
  // suffices because every predecessor is finalized first.
  const std::vector<unsigned> &Topo = A.topoOrder();
  std::vector<unsigned> Order(Topo);
  if (PostDom)
    std::reverse(Order.begin(), Order.end());

  // Intersect walking up by order position. Positions from the processing
  // order: earlier position = closer to root.
  std::vector<unsigned> Pos(N, 0);
  for (unsigned I = 0; I != Order.size(); ++I)
    Pos[Order[I]] = I;

  auto Intersect = [&](unsigned F1, unsigned F2) {
    while (F1 != F2) {
      while (Pos[F1] > Pos[F2])
        F1 = IDom[F1];
      while (Pos[F2] > Pos[F1])
        F2 = IDom[F2];
    }
    return F1;
  };

  for (unsigned U : Order) {
    if (U == Root)
      continue;
    unsigned NewIDom = ~0u;
    const auto &Ins = PostDom ? D.succs(U) : D.preds(U);
    for (const auto &[P, Kind] : Ins) {
      (void)Kind;
      if (IDom[P] == ~0u)
        continue; // unreachable from root (cannot happen post-normalize)
      NewIDom = NewIDom == ~0u ? P : Intersect(NewIDom, P);
    }
    assert(NewIDom != ~0u && "node unreachable from tree root");
    IDom[U] = NewIDom;
  }

  // Euler intervals for O(1) dominance queries: children grouped per
  // parent, DFS without recursion.
  std::vector<std::vector<unsigned>> Kids(N);
  for (unsigned U = 0; U != N; ++U)
    if (U != Root && IDom[U] != ~0u)
      Kids[IDom[U]].push_back(U);
  TIn.assign(N, 0);
  TOut.assign(N, 0);
  unsigned Clock = 0;
  std::vector<std::pair<unsigned, unsigned>> Stack; // (node, child index)
  Stack.emplace_back(Root, 0);
  TIn[Root] = Clock++;
  while (!Stack.empty()) {
    auto &[U, CI] = Stack.back();
    if (CI < Kids[U].size()) {
      unsigned C = Kids[U][CI++];
      TIn[C] = Clock++;
      Stack.emplace_back(C, 0);
    } else {
      TOut[U] = Clock++;
      Stack.pop_back();
    }
  }
}
