//===- graph/Hammocks.h - Hammock (SESE region) forest ----------*- C++ -*-===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hammocks: single-entry/single-exit regions of the dependence DAG. The
/// paper localizes every transformation to the hammock containing an
/// excessive chain set, and its modified matching algorithm prioritizes
/// bipartite edges by the hammock nesting distance of their endpoints so
/// that the chain decomposition projects minimally onto every nested
/// hammock (paper Section 3.1).
///
/// We enumerate canonical hammocks (u, v) with v = ipdom(u) and
/// u = idom(v); these form a laminar family, plus the whole-DAG hammock
/// that the virtual entry/exit guarantee.
///
//===----------------------------------------------------------------------===//

#ifndef URSA_GRAPH_HAMMOCKS_H
#define URSA_GRAPH_HAMMOCKS_H

#include "graph/Analysis.h"
#include "graph/DAG.h"
#include "support/Bitset.h"

#include <vector>

namespace ursa {

/// One single-entry/single-exit region.
struct Hammock {
  unsigned EntryN;  ///< region entry node (dominates all members)
  unsigned ExitN;   ///< region exit node (postdominates all members)
  Bitset Members;   ///< node set, boundary nodes included
  unsigned Parent;  ///< index of smallest enclosing hammock; 0 is the root
  unsigned Level;   ///< nesting depth; the whole-DAG hammock is level 0
};

/// The laminar forest of canonical hammocks of one DAG state.
class HammockForest {
public:
  HammockForest(const DependenceDAG &D, const DAGAnalysis &A);

  unsigned size() const { return Hammocks.size(); }
  const Hammock &hammock(unsigned I) const { return Hammocks[I]; }

  /// Index of the innermost hammock containing \p Node.
  unsigned innermost(unsigned Node) const { return Innermost[Node]; }

  /// Nesting level of the innermost hammock of \p Node.
  unsigned level(unsigned Node) const {
    return Hammocks[Innermost[Node]].Level;
  }

  /// Batch priority of a relation pair (a, b) for the modified matching:
  /// 0 when both endpoints share their innermost hammock, otherwise
  /// 1 + |level(a) - level(b)| (paper: "difference in nesting level
  /// between the source and sink nodes of each edge"). Lower runs first.
  unsigned edgePriority(unsigned A, unsigned B) const {
    if (Innermost[A] == Innermost[B])
      return 0;
    unsigned LA = level(A), LB = level(B);
    return 1 + (LA > LB ? LA - LB : LB - LA);
  }

  /// Hammock indices ordered innermost-first (deepest level first); used
  /// to search for excessive chain sets in the smallest region first.
  const std::vector<unsigned> &innermostFirst() const { return ByDepth; }

private:
  /// Large-trace construction (size above closureThreshold()): dominator
  /// trees and per-hammock member scans are O(N^2)-ish, so instead the
  /// forest is derived from the analysis' separator positions — topo
  /// positions no dependence jumps across. Each separator pair bounds a
  /// single-entry/single-exit region by construction, giving a two-level
  /// forest: the whole-DAG hammock plus one hammock per separator
  /// segment. A subset of the canonical family, but enough to localize
  /// transforms and drive the nesting-distance matching priority.
  void buildFromSeparators(const DependenceDAG &D, const DAGAnalysis &A);

  std::vector<Hammock> Hammocks;
  std::vector<unsigned> Innermost;
  std::vector<unsigned> ByDepth;
};

} // namespace ursa

#endif // URSA_GRAPH_HAMMOCKS_H
