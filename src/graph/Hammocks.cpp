//===- graph/Hammocks.cpp - Hammock (SESE region) forest ------------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "graph/Hammocks.h"

#include "graph/Closure.h"
#include "graph/Dominators.h"

#include <algorithm>

using namespace ursa;

void HammockForest::buildFromSeparators(const DependenceDAG &D,
                                        const DAGAnalysis &A) {
  unsigned N = D.size();
  const std::vector<unsigned> &Topo = A.topoOrder();
  const std::vector<unsigned> &Sep = A.separatorPositions();

  Bitset All(N);
  for (unsigned W = 0; W != N; ++W)
    All.set(W);
  Hammocks.push_back({DependenceDAG::EntryNode, DependenceDAG::ExitNode,
                      std::move(All), 0, 0});

  Innermost.assign(N, 0);
  // Each separator pair (p_i, p_{i+1}) bounds a hammock: no dependence
  // jumps across a separator position, so Topo[p_i] dominates and
  // Topo[p_{i+1}] postdominates every node between them. These are the
  // only hammocks we enumerate at this scale — the full canonical family
  // needs dominator trees and per-hammock member scans we cannot afford.
  for (unsigned I = 0; I + 1 < Sep.size(); ++I) {
    unsigned P0 = Sep[I], P1 = Sep[I + 1];
    if (P1 - P0 < 2)
      continue; // just the boundary pair: no structure
    Bitset M(N);
    for (unsigned P = P0; P <= P1; ++P)
      M.set(Topo[P]);
    unsigned Idx = Hammocks.size();
    Hammocks.push_back({Topo[P0], Topo[P1], std::move(M), 0, 1});
    for (unsigned P = P0; P <= P1; ++P)
      if (Innermost[Topo[P]] == 0)
        Innermost[Topo[P]] = Idx; // shared separator: first segment wins
  }

  ByDepth.resize(Hammocks.size());
  for (unsigned I = 0; I != ByDepth.size(); ++I)
    ByDepth[I] = I;
  std::sort(ByDepth.begin(), ByDepth.end(), [&](unsigned X, unsigned Y) {
    if (Hammocks[X].Level != Hammocks[Y].Level)
      return Hammocks[X].Level > Hammocks[Y].Level;
    return X < Y;
  });
}

HammockForest::HammockForest(const DependenceDAG &D, const DAGAnalysis &A) {
  unsigned N = D.size();
  if (N > closureThreshold()) {
    buildFromSeparators(D, A);
    return;
  }

  DominatorTree Dom(D, A, /*PostDom=*/false);
  DominatorTree PDom(D, A, /*PostDom=*/true);

  auto MembersOf = [&](unsigned U, unsigned V) {
    Bitset M(N);
    for (unsigned W = 0; W != N; ++W)
      if (Dom.dominates(U, W) && PDom.dominates(V, W))
        M.set(W);
    return M;
  };

  // The whole-DAG hammock is index 0 by construction.
  Hammocks.push_back({DependenceDAG::EntryNode, DependenceDAG::ExitNode,
                      MembersOf(DependenceDAG::EntryNode,
                                DependenceDAG::ExitNode),
                      0, 0});

  // Canonical hammocks: v = ipdom(u) and u = idom(v).
  for (unsigned U = 0; U != N; ++U) {
    unsigned V = PDom.idom(U);
    if (V == U || Dom.idom(V) != U)
      continue;
    if (U == DependenceDAG::EntryNode && V == DependenceDAG::ExitNode)
      continue; // already index 0
    Bitset M = MembersOf(U, V);
    // A 2-node region (just the boundary pair) carries no structure.
    if (M.count() <= 2)
      continue;
    Hammocks.push_back({U, V, std::move(M), 0, 0});
  }

  // Parent = smallest strict superset. Containment of canonical hammocks
  // reduces to boundary dominance: I ⊆ J iff J's entry dominates I's
  // entry and J's exit postdominates I's exit — every member of I is
  // then inside J's boundary pair as well. O(1) per candidate instead of
  // a member-set subset scan.
  for (unsigned I = 1; I != Hammocks.size(); ++I) {
    unsigned Best = 0;
    unsigned BestSize = Hammocks[0].Members.count();
    unsigned SI = Hammocks[I].Members.count();
    for (unsigned J = 0; J != Hammocks.size(); ++J) {
      if (J == I)
        continue;
      unsigned SJ = Hammocks[J].Members.count();
      if (SJ <= SI || SJ >= BestSize)
        continue;
      if (Dom.dominates(Hammocks[J].EntryN, Hammocks[I].EntryN) &&
          PDom.dominates(Hammocks[J].ExitN, Hammocks[I].ExitN)) {
        Best = J;
        BestSize = SJ;
      }
    }
    Hammocks[I].Parent = Best;
  }

  // Levels by walking parents (forest is shallow; iterate to fixpoint in
  // index-independent fashion).
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned I = 1; I != Hammocks.size(); ++I) {
      unsigned L = Hammocks[Hammocks[I].Parent].Level + 1;
      if (Hammocks[I].Level != L) {
        Hammocks[I].Level = L;
        Changed = true;
      }
    }
  }

  // Innermost hammock per node: deepest-level member set containing it.
  Innermost.assign(N, 0);
  for (unsigned W = 0; W != N; ++W) {
    unsigned Best = 0;
    for (unsigned I = 1; I != Hammocks.size(); ++I)
      if (Hammocks[I].Members.test(W) &&
          Hammocks[I].Level > Hammocks[Best].Level)
        Best = I;
    Innermost[W] = Best;
  }

  ByDepth.resize(Hammocks.size());
  for (unsigned I = 0; I != ByDepth.size(); ++I)
    ByDepth[I] = I;
  std::sort(ByDepth.begin(), ByDepth.end(), [&](unsigned X, unsigned Y) {
    if (Hammocks[X].Level != Hammocks[Y].Level)
      return Hammocks[X].Level > Hammocks[Y].Level;
    return X < Y;
  });
}
