//===- graph/Hammocks.cpp - Hammock (SESE region) forest ------------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "graph/Hammocks.h"

#include "graph/Dominators.h"

#include <algorithm>

using namespace ursa;

HammockForest::HammockForest(const DependenceDAG &D, const DAGAnalysis &A) {
  unsigned N = D.size();
  DominatorTree Dom(D, A, /*PostDom=*/false);
  DominatorTree PDom(D, A, /*PostDom=*/true);

  auto MembersOf = [&](unsigned U, unsigned V) {
    Bitset M(N);
    for (unsigned W = 0; W != N; ++W)
      if (Dom.dominates(U, W) && PDom.dominates(V, W))
        M.set(W);
    return M;
  };

  // The whole-DAG hammock is index 0 by construction.
  Hammocks.push_back({DependenceDAG::EntryNode, DependenceDAG::ExitNode,
                      MembersOf(DependenceDAG::EntryNode,
                                DependenceDAG::ExitNode),
                      0, 0});

  // Canonical hammocks: v = ipdom(u) and u = idom(v).
  for (unsigned U = 0; U != N; ++U) {
    unsigned V = PDom.idom(U);
    if (V == U || Dom.idom(V) != U)
      continue;
    if (U == DependenceDAG::EntryNode && V == DependenceDAG::ExitNode)
      continue; // already index 0
    Bitset M = MembersOf(U, V);
    // A 2-node region (just the boundary pair) carries no structure.
    if (M.count() <= 2)
      continue;
    Hammocks.push_back({U, V, std::move(M), 0, 0});
  }

  // Parent = smallest strict superset. Laminarity follows from the
  // canonical choice; guard with size comparisons only.
  for (unsigned I = 1; I != Hammocks.size(); ++I) {
    unsigned Best = 0;
    unsigned BestSize = Hammocks[0].Members.count();
    for (unsigned J = 0; J != Hammocks.size(); ++J) {
      if (J == I)
        continue;
      unsigned SJ = Hammocks[J].Members.count();
      unsigned SI = Hammocks[I].Members.count();
      if (SJ <= SI || SJ >= BestSize)
        continue;
      // Superset test: I \ J empty.
      Bitset Diff = Hammocks[I].Members;
      Diff.subtract(Hammocks[J].Members);
      if (Diff.none()) {
        Best = J;
        BestSize = SJ;
      }
    }
    Hammocks[I].Parent = Best;
  }

  // Levels by walking parents (forest is shallow; iterate to fixpoint in
  // index-independent fashion).
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned I = 1; I != Hammocks.size(); ++I) {
      unsigned L = Hammocks[Hammocks[I].Parent].Level + 1;
      if (Hammocks[I].Level != L) {
        Hammocks[I].Level = L;
        Changed = true;
      }
    }
  }

  // Innermost hammock per node: deepest-level member set containing it.
  Innermost.assign(N, 0);
  for (unsigned W = 0; W != N; ++W) {
    unsigned Best = 0;
    for (unsigned I = 1; I != Hammocks.size(); ++I)
      if (Hammocks[I].Members.test(W) &&
          Hammocks[I].Level > Hammocks[Best].Level)
        Best = I;
    Innermost[W] = Best;
  }

  ByDepth.resize(Hammocks.size());
  for (unsigned I = 0; I != ByDepth.size(); ++I)
    ByDepth[I] = I;
  std::sort(ByDepth.begin(), ByDepth.end(), [&](unsigned X, unsigned Y) {
    if (Hammocks[X].Level != Hammocks[Y].Level)
      return Hammocks[X].Level > Hammocks[Y].Level;
    return X < Y;
  });
}
