//===- graph/Analysis.h - Core DAG analyses ---------------------*- C++ -*-===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Topological order, reachability closure, and longest-path metrics for a
/// dependence DAG. URSA's chain machinery is defined over the *partial
/// order* (reachability), not raw edges, so the closure is the central
/// artifact; it also powers O(1) independence tests and cycle checks when
/// transformations propose new sequence edges.
///
/// The closure is stored in a tiered representation (graph/Closure.h):
/// dense BitMatrix rows below the closure threshold, blocked/tiled above
/// it. Large closures are built segment by segment: a *separator* is a
/// topological position no edge jumps across, so the trace decomposes into
/// hammock-shaped segments whose local closures compose through the
/// boundary nodes — peak memory tracks the sum of squared segment sizes,
/// not N^2.
///
//===----------------------------------------------------------------------===//

#ifndef URSA_GRAPH_ANALYSIS_H
#define URSA_GRAPH_ANALYSIS_H

#include "graph/Closure.h"
#include "graph/DAG.h"
#include "support/Bitset.h"

#include <memory>
#include <utility>
#include <vector>

namespace ursa {

/// Immutable snapshot of the derived structure of one DAG state. Any DAG
/// mutation invalidates it; URSA recomputes per transformation round.
class DAGAnalysis {
public:
  explicit DAGAnalysis(const DependenceDAG &D);

  /// Derives the analysis of \p D incrementally, where \p D must be the
  /// DAG \p Base was built from plus exactly \p AddedEdges (minus any
  /// virtual edges normalizeVirtualEdges() dropped as redundant — those
  /// never change reachability). The closure delta of one new edge u->v
  /// is exact: every ancestor of u (and u itself) gains v and all of v's
  /// descendants, and symmetrically for ancestor rows; edges are folded
  /// in sequentially so multi-edge proposals compose. The closure is a
  /// canonical set, so the result is bit-identical to a fresh build.
  /// Topological order and depths/heights are recomputed from \p D
  /// directly (O(V+E), negligible next to the closure).
  ///
  /// Self-edges and out-of-range endpoints are rejected up front, and
  /// repeated pairs in \p AddedEdges are deduplicated (first occurrence
  /// wins) before any folding, so malformed proposals cannot half-update
  /// the closure.
  ///
  /// Returns nullptr when the delta cannot be proven safe: size mismatch
  /// (nodes were inserted), an out-of-range endpoint, or an edge that
  /// would close a cycle against the partially-updated closure. Callers
  /// fall back to a full rebuild.
  static std::unique_ptr<DAGAnalysis> buildIncremental(
      const DependenceDAG &D, const DAGAnalysis &Base,
      const std::vector<std::pair<unsigned, unsigned>> &AddedEdges);

  /// Derives the analysis of \p D from \p Base plus a journaled mutation
  /// delta (edge additions, edge *removals*, and appended nodes), the
  /// general form behind spill transformations and backtracking undo.
  /// Strategy: affected rows are found by a reverse reachability sweep
  /// over the *union* graph (current edges plus removed ones) from the
  /// changed-edge endpoints — any row whose closure could differ reaches
  /// such an endpoint there — and only those rows are recomputed, in
  /// topological order, from already-final neighbor rows. Bit-identical
  /// to a fresh build (the closure is canonical).
  ///
  /// The same strict fallback contract as buildIncremental: returns
  /// nullptr when the delta is incomplete (mutations happened without a
  /// journal), node counts disagree (appends never renumber, so \p D may
  /// only be larger), an endpoint is out of range, or \p D turns out
  /// cyclic.
  static std::unique_ptr<DAGAnalysis>
  buildIncrementalDelta(const DependenceDAG &D, const DAGAnalysis &Base,
                        const EdgeDelta &Delta);

  /// Nodes in a deterministic topological order (entry first, exit last).
  const std::vector<unsigned> &topoOrder() const { return Topo; }

  /// Position of \p N in topoOrder().
  unsigned topoPos(unsigned N) const { return TopoPos[N]; }

  /// True if \p From strictly reaches \p To (From != To on some path).
  bool reaches(unsigned From, unsigned To) const {
    return Desc.test(From, To);
  }

  /// True if neither node reaches the other — the pair can execute in
  /// parallel (paper Definition 1 neighborhood).
  bool independent(unsigned A, unsigned B) const {
    return A != B && !reaches(A, B) && !reaches(B, A);
  }

  /// The whole strict-reachability closure (row N = descendants(N)).
  /// Exposed so relation consumers that are defined *as* reachability
  /// restricted to a node subset (the FU reuse relation) can read it in
  /// place instead of copying rows into their own matrix.
  const Closure &reachabilityClosure() const { return Desc; }

  /// The ancestor-direction closure (row N = ancestors(N)).
  const Closure &ancestorClosure() const { return Anc; }

  /// Strict descendants of \p N as a row view (implicitly materializable
  /// to a Bitset).
  ClosureRow descendants(unsigned N) const { return Desc.row(N); }
  /// Strict ancestors of \p N as a row view.
  ClosureRow ancestors(unsigned N) const { return Anc.row(N); }

  /// Physical representation the closures landed on.
  ClosureRep closureRep() const { return Desc.rep(); }

  /// Current heap bytes held by both closure matrices.
  size_t closureMemoryBytes() const {
    return Desc.memoryBytes() + Anc.memoryBytes();
  }

  /// Topological positions no edge jumps across (always includes entry's
  /// position 0 and exit's position N-1). Consecutive separators bound
  /// the hammock-shaped segments the tiled closure is composed from; the
  /// hammock forest reuses them at scale.
  const std::vector<unsigned> &separatorPositions() const { return SepPos; }

  /// Longest path (edge count) from entry to \p N.
  unsigned depth(unsigned N) const { return Depth[N]; }
  /// Longest path (edge count) from \p N to exit.
  unsigned height(unsigned N) const { return Height[N]; }

  /// Unit-latency critical path length through the whole DAG, in edges.
  unsigned criticalPathLength() const {
    return Depth[DependenceDAG::ExitNode];
  }

  /// True if adding edge \p From -> \p To keeps the graph acyclic.
  bool edgeKeepsAcyclic(unsigned From, unsigned To) const {
    return From != To && !reaches(To, From);
  }

private:
  DAGAnalysis() = default; ///< for buildIncremental[Delta]

  /// Fills Topo/TopoPos/Depth/Height/SepPos from \p D (Kahn's algorithm
  /// plus longest paths); the closure matrices are handled by the caller.
  /// Returns false if \p D has a cycle (Topo stays truncated).
  bool computeOrderAndPaths(const DependenceDAG &D);

  /// Direct reverse/forward-topological closure fold, any representation.
  void buildFold(const DependenceDAG &D);

  /// Separator-segmented build for the tiled representation: a dense
  /// local closure per segment, composed through the boundary nodes.
  void buildTiledSegmented(const DependenceDAG &D);

  std::vector<unsigned> Topo;
  std::vector<unsigned> TopoPos;
  Closure Desc;
  Closure Anc;
  std::vector<unsigned> Depth;
  std::vector<unsigned> Height;
  std::vector<unsigned> SepPos;
};

/// Use sites of every defining node: result[n] lists the nodes reading
/// n's destination register (each use node once). Derived from operands,
/// not edges, so it stays correct across spill rewiring.
std::vector<std::vector<unsigned>> computeUses(const DependenceDAG &D);

/// Computes the transitive reduction of the relation encoded in \p Reach
/// (Desc-style strict reachability): Out[u][v] = 1 iff (u,v) is in the
/// relation and no w has (u,w) and (w,v). Used to build Reuse DAG edges
/// (paper Definition 4, condition 2).
BitMatrix transitiveReduction(const BitMatrix &Reach);

} // namespace ursa

#endif // URSA_GRAPH_ANALYSIS_H
