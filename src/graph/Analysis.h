//===- graph/Analysis.h - Core DAG analyses ---------------------*- C++ -*-===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Topological order, reachability closure, and longest-path metrics for a
/// dependence DAG. URSA's chain machinery is defined over the *partial
/// order* (reachability), not raw edges, so the closure is the central
/// artifact; it also powers O(1) independence tests and cycle checks when
/// transformations propose new sequence edges.
///
//===----------------------------------------------------------------------===//

#ifndef URSA_GRAPH_ANALYSIS_H
#define URSA_GRAPH_ANALYSIS_H

#include "graph/DAG.h"
#include "support/Bitset.h"

#include <memory>
#include <utility>
#include <vector>

namespace ursa {

/// Immutable snapshot of the derived structure of one DAG state. Any DAG
/// mutation invalidates it; URSA recomputes per transformation round.
class DAGAnalysis {
public:
  explicit DAGAnalysis(const DependenceDAG &D);

  /// Derives the analysis of \p D incrementally, where \p D must be the
  /// DAG \p Base was built from plus exactly \p AddedEdges (minus any
  /// virtual edges normalizeVirtualEdges() dropped as redundant — those
  /// never change reachability). The closure delta of one new edge u->v
  /// is exact: every ancestor of u (and u itself) gains v and all of v's
  /// descendants, and symmetrically for ancestor rows; edges are folded
  /// in sequentially so multi-edge proposals compose. The closure is a
  /// canonical set, so the result is bit-identical to a fresh build.
  /// Topological order and depths/heights are recomputed from \p D
  /// directly (O(V+E), negligible next to the closure).
  ///
  /// Returns nullptr when the delta cannot be proven safe: size mismatch
  /// (nodes were inserted), an out-of-range endpoint, or an edge that
  /// would close a cycle against the partially-updated closure. Callers
  /// fall back to a full rebuild.
  static std::unique_ptr<DAGAnalysis> buildIncremental(
      const DependenceDAG &D, const DAGAnalysis &Base,
      const std::vector<std::pair<unsigned, unsigned>> &AddedEdges);

  /// Nodes in a deterministic topological order (entry first, exit last).
  const std::vector<unsigned> &topoOrder() const { return Topo; }

  /// Position of \p N in topoOrder().
  unsigned topoPos(unsigned N) const { return TopoPos[N]; }

  /// True if \p From strictly reaches \p To (From != To on some path).
  bool reaches(unsigned From, unsigned To) const {
    return Desc.test(From, To);
  }

  /// True if neither node reaches the other — the pair can execute in
  /// parallel (paper Definition 1 neighborhood).
  bool independent(unsigned A, unsigned B) const {
    return A != B && !reaches(A, B) && !reaches(B, A);
  }

  /// The whole strict-reachability closure (row N = descendants(N)).
  /// Exposed so relation consumers that are defined *as* reachability
  /// restricted to a node subset (the FU reuse relation) can read it in
  /// place instead of copying rows into their own matrix.
  const BitMatrix &reachabilityClosure() const { return Desc; }

  /// Strict descendants of \p N as a bitset over node ids.
  const Bitset &descendants(unsigned N) const { return Desc.row(N); }
  /// Strict ancestors of \p N as a bitset over node ids.
  const Bitset &ancestors(unsigned N) const { return Anc.row(N); }

  /// Longest path (edge count) from entry to \p N.
  unsigned depth(unsigned N) const { return Depth[N]; }
  /// Longest path (edge count) from \p N to exit.
  unsigned height(unsigned N) const { return Height[N]; }

  /// Unit-latency critical path length through the whole DAG, in edges.
  unsigned criticalPathLength() const {
    return Depth[DependenceDAG::ExitNode];
  }

  /// True if adding edge \p From -> \p To keeps the graph acyclic.
  bool edgeKeepsAcyclic(unsigned From, unsigned To) const {
    return From != To && !reaches(To, From);
  }

private:
  DAGAnalysis() = default; ///< for buildIncremental

  /// Fills Topo/TopoPos/Depth/Height from \p D (Kahn's algorithm plus
  /// longest paths); the closure matrices are handled by the caller.
  void computeOrderAndPaths(const DependenceDAG &D);

  std::vector<unsigned> Topo;
  std::vector<unsigned> TopoPos;
  BitMatrix Desc;
  BitMatrix Anc;
  std::vector<unsigned> Depth;
  std::vector<unsigned> Height;
};

/// Use sites of every defining node: result[n] lists the nodes reading
/// n's destination register (each use node once). Derived from operands,
/// not edges, so it stays correct across spill rewiring.
std::vector<std::vector<unsigned>> computeUses(const DependenceDAG &D);

/// Computes the transitive reduction of the relation encoded in \p Closure
/// (Desc-style strict reachability): Out[u][v] = 1 iff (u,v) is in the
/// relation and no w has (u,w) and (w,v). Used to build Reuse DAG edges
/// (paper Definition 4, condition 2).
BitMatrix transitiveReduction(const BitMatrix &Closure);

} // namespace ursa

#endif // URSA_GRAPH_ANALYSIS_H
