//===- graph/DAGBuilder.cpp - Build dependence DAGs from traces -----------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "graph/DAGBuilder.h"

#include <map>
#include <vector>

using namespace ursa;

DependenceDAG ursa::buildDAG(Trace T) {
  DependenceDAG D(std::move(T));
  const Trace &Tr = D.trace();

  // Definitions first: transformed traces append spill code at the end,
  // so a use may precede its (reload) definition in trace order.
  std::vector<int> DefNode(Tr.numVRegs(), -1);
  for (unsigned Idx = 0, E = Tr.size(); Idx != E; ++Idx)
    if (Tr.instr(Idx).dest() >= 0)
      DefNode[Tr.instr(Idx).dest()] = int(DependenceDAG::nodeOf(Idx));

  std::map<int, unsigned> LastStore;              // symbol -> node
  std::map<int, std::vector<unsigned>> LoadsSince; // symbol -> loads

  // Spill slots are written exactly once, so their store is collected in
  // a pre-pass too (reloads may precede it in a transformed trace).
  std::map<int, unsigned> SlotStore; // spill slot -> node
  for (unsigned Idx = 0, E = Tr.size(); Idx != E; ++Idx) {
    const Instruction &I = Tr.instr(Idx);
    if (effect(I.opcode()) == OpEffect::SpillStore) {
      assert(!SlotStore.count(I.spillSlot()) && "spill slot stored twice");
      SlotStore[I.spillSlot()] = DependenceDAG::nodeOf(Idx);
    }
  }

  int LastBranch = -1;
  std::vector<unsigned> StoresSinceBranch;

  for (unsigned Idx = 0, E = Tr.size(); Idx != E; ++Idx) {
    const Instruction &I = Tr.instr(Idx);
    unsigned N = DependenceDAG::nodeOf(Idx);

    // Register flow dependences.
    for (unsigned S = 0; S != I.numOperands(); ++S) {
      int Def = DefNode[I.operand(S)];
      assert(Def >= 0 && "operand never defined");
      D.addEdge(unsigned(Def), N, EdgeKind::Data);
    }

    // Memory ordering.
    switch (effect(I.opcode())) {
    case OpEffect::MemLoad: {
      auto It = LastStore.find(I.symbol());
      if (It != LastStore.end())
        D.addEdge(It->second, N, EdgeKind::Data);
      LoadsSince[I.symbol()].push_back(N);
      break;
    }
    case OpEffect::MemStore: {
      auto It = LastStore.find(I.symbol());
      if (It != LastStore.end())
        D.addEdge(It->second, N, EdgeKind::Data); // output dependence
      for (unsigned L : LoadsSince[I.symbol()])
        D.addEdge(L, N, EdgeKind::Data); // anti dependence
      LoadsSince[I.symbol()].clear();
      LastStore[I.symbol()] = N;
      // Stores are fenced by the preceding branch and fence the next one.
      if (LastBranch >= 0)
        D.addEdge(unsigned(LastBranch), N, EdgeKind::Sequence);
      StoresSinceBranch.push_back(N);
      break;
    }
    case OpEffect::SpillStore:
      break; // collected by the pre-pass
    case OpEffect::SpillLoad: {
      auto It = SlotStore.find(I.spillSlot());
      assert(It != SlotStore.end() && "spill reload without a store");
      D.addEdge(It->second, N, EdgeKind::Data);
      break;
    }
    case OpEffect::Branch: {
      if (LastBranch >= 0)
        D.addEdge(unsigned(LastBranch), N, EdgeKind::Sequence);
      for (unsigned S : StoresSinceBranch)
        D.addEdge(S, N, EdgeKind::Sequence);
      StoresSinceBranch.clear();
      LastBranch = int(N);
      break;
    }
    case OpEffect::None:
      break;
    }
  }

  D.normalizeVirtualEdges();
  return D;
}
