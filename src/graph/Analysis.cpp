//===- graph/Analysis.cpp - Core DAG analyses -----------------------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "graph/Analysis.h"

#include <algorithm>

using namespace ursa;

bool DAGAnalysis::computeOrderAndPaths(const DependenceDAG &D) {
  unsigned N = D.size();
  TopoPos.assign(N, 0);
  Depth.assign(N, 0);
  Height.assign(N, 0);
  Topo.clear();
  SepPos.clear();

  // Kahn's algorithm, visiting ready nodes in ascending id for
  // determinism.
  std::vector<unsigned> InDeg(N, 0);
  for (unsigned U = 0; U != N; ++U)
    InDeg[U] = D.preds(U).size();
  std::vector<unsigned> Ready;
  for (unsigned U = 0; U != N; ++U)
    if (InDeg[U] == 0)
      Ready.push_back(U);
  Topo.reserve(N);
  while (!Ready.empty()) {
    // Smallest id first; Ready stays small, linear scan is fine.
    unsigned Best = 0;
    for (unsigned I = 1; I != Ready.size(); ++I)
      if (Ready[I] < Ready[Best])
        Best = I;
    unsigned U = Ready[Best];
    Ready[Best] = Ready.back();
    Ready.pop_back();
    TopoPos[U] = Topo.size();
    Topo.push_back(U);
    for (const auto &[V, Kind] : D.succs(U)) {
      (void)Kind;
      if (--InDeg[V] == 0)
        Ready.push_back(V);
    }
  }
  if (Topo.size() != N)
    return false; // cycle

  // Longest paths: heights in reverse topological order, depths forward.
  for (unsigned I = N; I-- > 0;) {
    unsigned U = Topo[I];
    for (const auto &[V, Kind] : D.succs(U)) {
      (void)Kind;
      if (Height[V] + 1 > Height[U])
        Height[U] = Height[V] + 1;
    }
  }
  for (unsigned I = 0; I != N; ++I) {
    unsigned U = Topo[I];
    for (const auto &[V, Kind] : D.preds(U)) {
      (void)Kind;
      if (Depth[V] + 1 > Depth[U])
        Depth[U] = Depth[V] + 1;
    }
  }

  // Separators: position p is one iff no edge (a,b) has pos(a) < p <
  // pos(b). Tracked with a running maximum of target positions of edges
  // leaving positions < p; an O(E) sweep. Paths are position-monotone, so
  // no path jumps a separator either.
  unsigned MaxEnd = 0;
  for (unsigned P = 0; P != N; ++P) {
    if (MaxEnd <= P)
      SepPos.push_back(P);
    for (const auto &[V, Kind] : D.succs(Topo[P])) {
      (void)Kind;
      MaxEnd = std::max(MaxEnd, TopoPos[V]);
    }
  }
  return true;
}

void DAGAnalysis::buildFold(const DependenceDAG &D) {
  unsigned N = D.size();
  // Descendant closure in reverse topological order; ancestors forward.
  for (unsigned I = N; I-- > 0;) {
    unsigned U = Topo[I];
    for (const auto &[V, Kind] : D.succs(U)) {
      (void)Kind;
      Desc.set(U, V);
      Desc.orRow(U, V);
    }
  }
  for (unsigned I = 0; I != N; ++I) {
    unsigned U = Topo[I];
    for (const auto &[V, Kind] : D.preds(U)) {
      (void)Kind;
      Anc.set(U, V);
      Anc.orRow(U, V);
    }
  }
}

void DAGAnalysis::buildTiledSegmented(const DependenceDAG &D) {
  unsigned N = D.size();

  // The separator shortcut (a node reaching its segment's end separator
  // reaches *everything* past it) needs every non-exit node to have a
  // successor and every non-entry node a predecessor — the normalized-DAG
  // invariant. Verify cheaply; fall back to the direct fold otherwise.
  bool Normalized = true;
  for (unsigned U = 0; U != N && Normalized; ++U) {
    if (U != DependenceDAG::ExitNode && D.succs(U).empty())
      Normalized = false;
    if (U != DependenceDAG::EntryNode && D.preds(U).empty())
      Normalized = false;
  }
  if (!Normalized || SepPos.size() < 2) {
    buildFold(D);
    return;
  }

  // Segments larger than this fall back to tile-level folding rather than
  // allocating a big dense local closure.
  constexpr unsigned LocalCap = 8192;

  // Descendants: segments in reverse topological order, so by the time a
  // segment is processed every row past its end separator — including the
  // separator node itself, emitted by the previous iteration — is final.
  Bitset Tail(N); // nodes strictly past the current segment's end
  Bitset Buf(N);
  for (unsigned SI = SepPos.size() - 1; SI-- > 0;) {
    unsigned P0 = SepPos[SI], P1 = SepPos[SI + 1];
    unsigned H = P1 - P0 + 1; // members: positions [P0, P1]
    if (H > LocalCap) {
      for (unsigned I = P1; I-- > P0;) {
        unsigned U = Topo[I];
        for (const auto &[V, Kind] : D.succs(U)) {
          (void)Kind;
          Desc.set(U, V);
          Desc.orRow(U, V);
        }
      }
    } else {
      // Dense local closure over the segment. Successors of every member
      // except the end separator stay inside the segment (edges cannot
      // jump a separator), so local indices cover them all.
      BitMatrix Local(H);
      for (unsigned LI = H - 1; LI-- > 0;) {
        unsigned U = Topo[P0 + LI];
        for (const auto &[V, Kind] : D.succs(U)) {
          (void)Kind;
          unsigned LV = TopoPos[V] - P0;
          Local.set(LI, LV);
          Local.unionRows(LI, LV);
        }
      }
      for (unsigned LI = 0; LI != H - 1; ++LI) {
        unsigned U = Topo[P0 + LI];
        // Reaching the end separator means reaching every node past it:
        // all of them sit behind that separator on position-monotone
        // paths, and the separator reaches them all (normalized DAG).
        if (Local.test(LI, H - 1))
          Buf = Tail;
        else
          Buf.clear();
        Local.row(LI).forEach([&](unsigned LB) { Buf.set(Topo[P0 + LB]); });
        Desc.orRowBitset(U, Buf);
      }
    }
    for (unsigned I = P0 + 1; I <= P1; ++I)
      Tail.set(Topo[I]);
  }

  // Ancestors: the mirror image, segments forward with a prefix set.
  Bitset Prefix(N); // nodes strictly before the current segment's start
  for (unsigned SI = 0; SI + 1 != SepPos.size(); ++SI) {
    unsigned P0 = SepPos[SI], P1 = SepPos[SI + 1];
    unsigned H = P1 - P0 + 1;
    if (H > LocalCap) {
      for (unsigned I = P0 + 1; I <= P1; ++I) {
        unsigned U = Topo[I];
        for (const auto &[V, Kind] : D.preds(U)) {
          (void)Kind;
          Anc.set(U, V);
          Anc.orRow(U, V);
        }
      }
    } else {
      BitMatrix Local(H);
      for (unsigned LI = 1; LI != H; ++LI) {
        unsigned U = Topo[P0 + LI];
        for (const auto &[V, Kind] : D.preds(U)) {
          (void)Kind;
          unsigned LV = TopoPos[V] - P0;
          Local.set(LI, LV);
          Local.unionRows(LI, LV);
        }
      }
      for (unsigned LI = 1; LI != H; ++LI) {
        unsigned U = Topo[P0 + LI];
        if (Local.test(LI, 0))
          Buf = Prefix;
        else
          Buf.clear();
        Local.row(LI).forEach([&](unsigned LB) { Buf.set(Topo[P0 + LB]); });
        Anc.orRowBitset(U, Buf);
      }
    }
    for (unsigned I = P0; I != P1; ++I)
      Prefix.set(Topo[I]);
  }
}

DAGAnalysis::DAGAnalysis(const DependenceDAG &D) {
  bool Acyclic = computeOrderAndPaths(D);
  assert(Acyclic && "dependence graph has a cycle");
  (void)Acyclic;

  unsigned N = D.size();
  ClosureRep Rep = useTiledClosure(N) ? ClosureRep::Tiled : ClosureRep::Dense;
  Desc = Closure(N, Rep);
  Anc = Closure(N, Rep);
  if (Rep == ClosureRep::Dense)
    buildFold(D);
  else
    buildTiledSegmented(D);
}

std::unique_ptr<DAGAnalysis> DAGAnalysis::buildIncremental(
    const DependenceDAG &D, const DAGAnalysis &Base,
    const std::vector<std::pair<unsigned, unsigned>> &AddedEdges) {
  unsigned N = D.size();
  if (N != Base.Desc.size())
    return nullptr; // nodes were inserted or removed: not an edge delta

  // Validate and deduplicate before touching any closure state: reject
  // self-edges and out-of-range endpoints, fold each pair once (first
  // occurrence wins). Proposals are tiny, so the quadratic scan is fine.
  std::vector<std::pair<unsigned, unsigned>> Edges;
  Edges.reserve(AddedEdges.size());
  for (auto E : AddedEdges) {
    if (E.first >= N || E.second >= N || E.first == E.second)
      return nullptr;
    if (std::find(Edges.begin(), Edges.end(), E) == Edges.end())
      Edges.push_back(E);
  }

  std::unique_ptr<DAGAnalysis> A(new DAGAnalysis());
  A->Desc = Base.Desc;
  A->Anc = Base.Anc;
  for (auto [U, V] : Edges) {
    if (A->Desc.test(U, V))
      continue; // already ordered: the closure absorbs the edge
    if (A->Desc.test(V, U))
      return nullptr; // would close a cycle against the edges so far
    // New pairs are exactly (ancestors-of-u + u) x (v + descendants-of-v),
    // taken against the closure updated by the preceding edges. Snapshot
    // both sides before writing: u's own rows are among the targets.
    Bitset NewDesc = A->Desc.rowBitset(V);
    NewDesc.set(V);
    Bitset NewAnc = A->Anc.rowBitset(U);
    NewAnc.set(U);
    NewAnc.forEach([&](unsigned W) { A->Desc.orRowBitset(W, NewDesc); });
    NewDesc.forEach([&](unsigned W) { A->Anc.orRowBitset(W, NewAnc); });
  }
  if (!A->computeOrderAndPaths(D))
    return nullptr; // D is not Base + AddedEdges after all
  return A;
}

std::unique_ptr<DAGAnalysis>
DAGAnalysis::buildIncrementalDelta(const DependenceDAG &D,
                                   const DAGAnalysis &Base,
                                   const EdgeDelta &Delta) {
  if (!Delta.Complete)
    return nullptr; // mutations happened while no journal was attached
  unsigned NB = Base.Desc.size();
  unsigned N = D.size();
  if (Delta.NodesBefore != NB || N < NB)
    return nullptr; // appends never renumber, so D may only be larger

  // Pure edge additions at unchanged size: the exact per-edge fold is
  // cheaper than an affected-set sweep.
  if (Delta.Removed.empty() && N == NB)
    return buildIncremental(D, Base, Delta.Added);

  for (const auto &[U, V] : Delta.Added)
    if (U >= N || V >= N || U == V)
      return nullptr;
  for (const auto &[U, V] : Delta.Removed)
    if (U >= N || V >= N || U == V)
      return nullptr;

  std::unique_ptr<DAGAnalysis> A(new DAGAnalysis());
  if (!A->computeOrderAndPaths(D))
    return nullptr; // the mutated graph is cyclic
  A->Desc = Closure::growFrom(Base.Desc, N);
  A->Anc = Closure::growFrom(Base.Anc, N);

  // Affected rows, found on the *union* graph (current edges plus the
  // removed ones): a node's descendant row can only change if it reaches
  // — in the union graph — the source of some added or removed edge, so
  // a reverse sweep from those sources covers every stale row. New nodes
  // with edges are sources/targets of added edges and thus included;
  // isolated new nodes correctly keep their empty grown rows.
  std::vector<std::vector<unsigned>> ExtraPreds(N), ExtraSuccs(N);
  for (const auto &[U, V] : Delta.Removed) {
    ExtraPreds[V].push_back(U);
    ExtraSuccs[U].push_back(V);
  }

  std::vector<uint8_t> DescAff(N, 0), AncAff(N, 0);
  std::vector<unsigned> Work;
  auto Sweep = [&](std::vector<uint8_t> &Aff, bool Reverse) {
    while (!Work.empty()) {
      unsigned X = Work.back();
      Work.pop_back();
      if (Reverse) {
        for (const auto &[P, Kind] : D.preds(X)) {
          (void)Kind;
          if (!Aff[P]) {
            Aff[P] = 1;
            Work.push_back(P);
          }
        }
        for (unsigned P : ExtraPreds[X])
          if (!Aff[P]) {
            Aff[P] = 1;
            Work.push_back(P);
          }
      } else {
        for (const auto &[S, Kind] : D.succs(X)) {
          (void)Kind;
          if (!Aff[S]) {
            Aff[S] = 1;
            Work.push_back(S);
          }
        }
        for (unsigned S : ExtraSuccs[X])
          if (!Aff[S]) {
            Aff[S] = 1;
            Work.push_back(S);
          }
      }
    }
  };

  auto SeedAll = [&](std::vector<uint8_t> &Aff, bool Sources) {
    for (const auto &[U, V] : Delta.Added) {
      unsigned X = Sources ? U : V;
      if (!Aff[X]) {
        Aff[X] = 1;
        Work.push_back(X);
      }
    }
    for (const auto &[U, V] : Delta.Removed) {
      unsigned X = Sources ? U : V;
      if (!Aff[X]) {
        Aff[X] = 1;
        Work.push_back(X);
      }
    }
  };

  SeedAll(DescAff, /*Sources=*/true);
  Sweep(DescAff, /*Reverse=*/true);
  SeedAll(AncAff, /*Sources=*/false);
  Sweep(AncAff, /*Reverse=*/false);

  // Recompute affected descendant rows in reverse final topological
  // order: every successor row read is either unaffected (hence already
  // correct) or was recomputed in an earlier iteration.
  for (unsigned I = N; I-- > 0;) {
    unsigned U = A->Topo[I];
    if (!DescAff[U])
      continue;
    A->Desc.clearRow(U);
    for (const auto &[V, Kind] : D.succs(U)) {
      (void)Kind;
      A->Desc.set(U, V);
      A->Desc.orRow(U, V);
    }
  }
  for (unsigned I = 0; I != N; ++I) {
    unsigned U = A->Topo[I];
    if (!AncAff[U])
      continue;
    A->Anc.clearRow(U);
    for (const auto &[V, Kind] : D.preds(U)) {
      (void)Kind;
      A->Anc.set(U, V);
      A->Anc.orRow(U, V);
    }
  }
  return A;
}

std::vector<std::vector<unsigned>> ursa::computeUses(const DependenceDAG &D) {
  const Trace &T = D.trace();
  std::vector<int> DefNodeOfVReg(T.numVRegs(), -1);
  for (unsigned Idx = 0, E = T.size(); Idx != E; ++Idx)
    if (T.instr(Idx).dest() >= 0)
      DefNodeOfVReg[T.instr(Idx).dest()] = int(DependenceDAG::nodeOf(Idx));

  std::vector<std::vector<unsigned>> Uses(D.size());
  for (unsigned Idx = 0, E = T.size(); Idx != E; ++Idx) {
    const Instruction &I = T.instr(Idx);
    unsigned N = DependenceDAG::nodeOf(Idx);
    for (unsigned S = 0; S != I.numOperands(); ++S) {
      int Def = DefNodeOfVReg[I.operand(S)];
      assert(Def >= 0 && "operand without a definition");
      std::vector<unsigned> &U = Uses[Def];
      if (std::find(U.begin(), U.end(), N) == U.end())
        U.push_back(N);
    }
  }
  return Uses;
}

BitMatrix ursa::transitiveReduction(const BitMatrix &Reach) {
  unsigned N = Reach.size();
  BitMatrix Out(N);
  // (u,v) is reduced away iff some w with (u,w) also has (w,v). Compute
  // Redundant[u] = union over w in Reach[u] of Reach[w].
  for (unsigned U = 0; U != N; ++U) {
    Bitset Redundant(N);
    Reach.row(U).forEach([&](unsigned W) { Redundant |= Reach.row(W); });
    Bitset Keep = Reach.row(U);
    Keep.subtract(Redundant);
    Out.row(U) = Keep;
  }
  return Out;
}
