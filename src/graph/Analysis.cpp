//===- graph/Analysis.cpp - Core DAG analyses -----------------------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "graph/Analysis.h"

#include <algorithm>

using namespace ursa;

void DAGAnalysis::computeOrderAndPaths(const DependenceDAG &D) {
  unsigned N = D.size();
  TopoPos.assign(N, 0);
  Depth.assign(N, 0);
  Height.assign(N, 0);
  Topo.clear();

  // Kahn's algorithm, visiting ready nodes in ascending id for
  // determinism.
  std::vector<unsigned> InDeg(N, 0);
  for (unsigned U = 0; U != N; ++U)
    InDeg[U] = D.preds(U).size();
  std::vector<unsigned> Ready;
  for (unsigned U = 0; U != N; ++U)
    if (InDeg[U] == 0)
      Ready.push_back(U);
  Topo.reserve(N);
  while (!Ready.empty()) {
    // Smallest id first; Ready stays small, linear scan is fine.
    unsigned Best = 0;
    for (unsigned I = 1; I != Ready.size(); ++I)
      if (Ready[I] < Ready[Best])
        Best = I;
    unsigned U = Ready[Best];
    Ready[Best] = Ready.back();
    Ready.pop_back();
    TopoPos[U] = Topo.size();
    Topo.push_back(U);
    for (const auto &[V, Kind] : D.succs(U)) {
      (void)Kind;
      if (--InDeg[V] == 0)
        Ready.push_back(V);
    }
  }
  assert(Topo.size() == N && "dependence graph has a cycle");

  // Longest paths: heights in reverse topological order, depths forward.
  for (unsigned I = N; I-- > 0;) {
    unsigned U = Topo[I];
    for (const auto &[V, Kind] : D.succs(U)) {
      (void)Kind;
      if (Height[V] + 1 > Height[U])
        Height[U] = Height[V] + 1;
    }
  }
  for (unsigned I = 0; I != N; ++I) {
    unsigned U = Topo[I];
    for (const auto &[V, Kind] : D.preds(U)) {
      (void)Kind;
      if (Depth[V] + 1 > Depth[U])
        Depth[U] = Depth[V] + 1;
    }
  }
}

DAGAnalysis::DAGAnalysis(const DependenceDAG &D)
    : Desc(D.size()), Anc(D.size()) {
  computeOrderAndPaths(D);
  unsigned N = D.size();

  // Descendant closure in reverse topological order; ancestors forward.
  for (unsigned I = N; I-- > 0;) {
    unsigned U = Topo[I];
    for (const auto &[V, Kind] : D.succs(U)) {
      (void)Kind;
      Desc.set(U, V);
      Desc.unionRows(U, V);
    }
  }
  for (unsigned I = 0; I != N; ++I) {
    unsigned U = Topo[I];
    for (const auto &[V, Kind] : D.preds(U)) {
      (void)Kind;
      Anc.set(U, V);
      Anc.unionRows(U, V);
    }
  }
}

std::unique_ptr<DAGAnalysis> DAGAnalysis::buildIncremental(
    const DependenceDAG &D, const DAGAnalysis &Base,
    const std::vector<std::pair<unsigned, unsigned>> &AddedEdges) {
  unsigned N = D.size();
  if (N != Base.Desc.size())
    return nullptr; // nodes were inserted or removed: not an edge delta

  std::unique_ptr<DAGAnalysis> A(new DAGAnalysis());
  A->Desc = Base.Desc;
  A->Anc = Base.Anc;
  for (auto [U, V] : AddedEdges) {
    if (U >= N || V >= N || U == V)
      return nullptr;
    if (A->Desc.test(U, V))
      continue; // already ordered: the closure absorbs the edge
    if (A->Desc.test(V, U))
      return nullptr; // would close a cycle against the edges so far
    // New pairs are exactly (ancestors-of-u + u) x (v + descendants-of-v),
    // taken against the closure updated by the preceding edges. Snapshot
    // both sides before writing: u's own rows are among the targets.
    Bitset NewDesc = A->Desc.row(V);
    NewDesc.set(V);
    Bitset NewAnc = A->Anc.row(U);
    NewAnc.set(U);
    NewAnc.forEach([&](unsigned W) { A->Desc.row(W) |= NewDesc; });
    NewDesc.forEach([&](unsigned W) { A->Anc.row(W) |= NewAnc; });
  }
  A->computeOrderAndPaths(D);
  return A;
}

std::vector<std::vector<unsigned>> ursa::computeUses(const DependenceDAG &D) {
  const Trace &T = D.trace();
  std::vector<int> DefNodeOfVReg(T.numVRegs(), -1);
  for (unsigned Idx = 0, E = T.size(); Idx != E; ++Idx)
    if (T.instr(Idx).dest() >= 0)
      DefNodeOfVReg[T.instr(Idx).dest()] = int(DependenceDAG::nodeOf(Idx));

  std::vector<std::vector<unsigned>> Uses(D.size());
  for (unsigned Idx = 0, E = T.size(); Idx != E; ++Idx) {
    const Instruction &I = T.instr(Idx);
    unsigned N = DependenceDAG::nodeOf(Idx);
    for (unsigned S = 0; S != I.numOperands(); ++S) {
      int Def = DefNodeOfVReg[I.operand(S)];
      assert(Def >= 0 && "operand without a definition");
      std::vector<unsigned> &U = Uses[Def];
      if (std::find(U.begin(), U.end(), N) == U.end())
        U.push_back(N);
    }
  }
  return Uses;
}

BitMatrix ursa::transitiveReduction(const BitMatrix &Closure) {
  unsigned N = Closure.size();
  BitMatrix Out(N);
  // (u,v) is reduced away iff some w with (u,w) also has (w,v). Compute
  // Redundant[u] = union over w in Closure[u] of Closure[w].
  for (unsigned U = 0; U != N; ++U) {
    Bitset Redundant(N);
    Closure.row(U).forEach([&](unsigned W) { Redundant |= Closure.row(W); });
    Bitset Keep = Closure.row(U);
    Keep.subtract(Redundant);
    Out.row(U) = Keep;
  }
  return Out;
}
