//===- graph/Analysis.cpp - Core DAG analyses -----------------------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "graph/Analysis.h"

#include <algorithm>

using namespace ursa;

DAGAnalysis::DAGAnalysis(const DependenceDAG &D)
    : TopoPos(D.size(), 0), Desc(D.size()), Anc(D.size()),
      Depth(D.size(), 0), Height(D.size(), 0) {
  unsigned N = D.size();

  // Kahn's algorithm, visiting ready nodes in ascending id for
  // determinism.
  std::vector<unsigned> InDeg(N, 0);
  for (unsigned U = 0; U != N; ++U)
    InDeg[U] = D.preds(U).size();
  std::vector<unsigned> Ready;
  for (unsigned U = 0; U != N; ++U)
    if (InDeg[U] == 0)
      Ready.push_back(U);
  Topo.reserve(N);
  while (!Ready.empty()) {
    // Smallest id first; Ready stays small, linear scan is fine.
    unsigned Best = 0;
    for (unsigned I = 1; I != Ready.size(); ++I)
      if (Ready[I] < Ready[Best])
        Best = I;
    unsigned U = Ready[Best];
    Ready[Best] = Ready.back();
    Ready.pop_back();
    TopoPos[U] = Topo.size();
    Topo.push_back(U);
    for (const auto &[V, Kind] : D.succs(U)) {
      (void)Kind;
      if (--InDeg[V] == 0)
        Ready.push_back(V);
    }
  }
  assert(Topo.size() == N && "dependence graph has a cycle");

  // Descendant closure and depths in reverse topological order;
  // ancestors and heights forward.
  for (unsigned I = N; I-- > 0;) {
    unsigned U = Topo[I];
    for (const auto &[V, Kind] : D.succs(U)) {
      (void)Kind;
      Desc.set(U, V);
      Desc.unionRows(U, V);
      if (Height[V] + 1 > Height[U])
        Height[U] = Height[V] + 1;
    }
  }
  for (unsigned I = 0; I != N; ++I) {
    unsigned U = Topo[I];
    for (const auto &[V, Kind] : D.preds(U)) {
      (void)Kind;
      Anc.set(U, V);
      Anc.unionRows(U, V);
      if (Depth[V] + 1 > Depth[U])
        Depth[U] = Depth[V] + 1;
    }
  }
}

std::vector<std::vector<unsigned>> ursa::computeUses(const DependenceDAG &D) {
  const Trace &T = D.trace();
  std::vector<int> DefNodeOfVReg(T.numVRegs(), -1);
  for (unsigned Idx = 0, E = T.size(); Idx != E; ++Idx)
    if (T.instr(Idx).dest() >= 0)
      DefNodeOfVReg[T.instr(Idx).dest()] = int(DependenceDAG::nodeOf(Idx));

  std::vector<std::vector<unsigned>> Uses(D.size());
  for (unsigned Idx = 0, E = T.size(); Idx != E; ++Idx) {
    const Instruction &I = T.instr(Idx);
    unsigned N = DependenceDAG::nodeOf(Idx);
    for (unsigned S = 0; S != I.numOperands(); ++S) {
      int Def = DefNodeOfVReg[I.operand(S)];
      assert(Def >= 0 && "operand without a definition");
      std::vector<unsigned> &U = Uses[Def];
      if (std::find(U.begin(), U.end(), N) == U.end())
        U.push_back(N);
    }
  }
  return Uses;
}

BitMatrix ursa::transitiveReduction(const BitMatrix &Closure) {
  unsigned N = Closure.size();
  BitMatrix Out(N);
  // (u,v) is reduced away iff some w with (u,w) also has (w,v). Compute
  // Redundant[u] = union over w in Closure[u] of Closure[w].
  for (unsigned U = 0; U != N; ++U) {
    Bitset Redundant(N);
    Closure.row(U).forEach([&](unsigned W) { Redundant |= Closure.row(W); });
    Bitset Keep = Closure.row(U);
    Keep.subtract(Redundant);
    Out.row(U) = Keep;
  }
  return Out;
}
