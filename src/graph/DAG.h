//===- graph/DAG.h - Dependence DAG over a trace ----------------*- C++ -*-===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dependence DAG URSA operates on (paper Section 2). Nodes are the
/// trace's instructions plus a single virtual entry (root) and exit
/// (leaf), which make the whole DAG a hammock as the paper requires.
/// Edges are either data dependences (register flow and memory ordering,
/// fixed by semantics) or sequence edges (added by the trace scheduler
/// around branches, or by URSA's transformations to remove parallelism).
///
/// The DAG owns its trace: URSA's spill transformation appends store/load
/// instructions, so trace and graph must evolve together, and tentative
/// transformation trials copy the pair as one value.
///
//===----------------------------------------------------------------------===//

#ifndef URSA_GRAPH_DAG_H
#define URSA_GRAPH_DAG_H

#include "ir/Trace.h"

#include <string>
#include <utility>
#include <vector>

namespace ursa {

class DotWriter;

/// Dependence-DAG edge kinds.
enum class EdgeKind : uint8_t {
  Data,    ///< register flow or memory ordering; semantic, never removable
  Sequence ///< ordering only: branch fences and URSA-added sequencing
};

/// A journal of effective DAG mutations between two analysis snapshots:
/// the edges actually added and removed (no-op addEdge/removeEdge calls are
/// not recorded) plus the node count before the mutations. Incremental
/// analysis (DAGAnalysis::buildIncrementalDelta) replays it instead of
/// rebuilding O(N^2) closures; Complete is false when mutations happened
/// while no journal was attached, which voids the delta.
struct EdgeDelta {
  std::vector<std::pair<unsigned, unsigned>> Added;
  std::vector<std::pair<unsigned, unsigned>> Removed;
  unsigned NodesBefore = 0;
  bool Complete = true;

  bool empty() const { return Added.empty() && Removed.empty(); }
};

/// The dependence DAG. Node ids: 0 = virtual entry, 1 = virtual exit,
/// and instruction `i` of the trace is node `i + 2` forever (appends never
/// renumber).
class DependenceDAG {
public:
  static constexpr unsigned EntryNode = 0;
  static constexpr unsigned ExitNode = 1;

  explicit DependenceDAG(Trace Tr) : T(std::move(Tr)) {
    Succs.resize(this->T.size() + 2);
    Preds.resize(this->T.size() + 2);
  }

  /// Total node count including the two virtual nodes.
  unsigned size() const { return Succs.size(); }

  static bool isVirtual(unsigned Node) { return Node < 2; }
  static unsigned nodeOf(unsigned InstrIdx) { return InstrIdx + 2; }
  static unsigned instrOf(unsigned Node) {
    assert(!isVirtual(Node) && "virtual nodes have no instruction");
    return Node - 2;
  }

  Trace &trace() { return T; }
  const Trace &trace() const { return T; }

  /// Instruction behind node \p N (must not be virtual).
  const Instruction &instrAt(unsigned N) const { return T.instr(instrOf(N)); }
  Instruction &instrAt(unsigned N) { return T.instr(instrOf(N)); }

  /// Appends \p I to the trace and creates its node; the caller wires
  /// edges. Returns the new node id.
  unsigned addInstrNode(const Instruction &I) {
    unsigned Idx = T.append(I);
    Succs.emplace_back();
    Preds.emplace_back();
    unsigned Node = nodeOf(Idx);
    assert(Node + 1 == size() && "node numbering out of sync");
    return Node;
  }

  /// Adds \p From -> \p To of kind \p K unless an edge already exists
  /// between the pair (any kind). Returns true if added. Virtual-edge
  /// hygiene (entry/exit attachment) is restored lazily by
  /// normalizeVirtualEdges().
  bool addEdge(unsigned From, unsigned To, EdgeKind K);

  /// True if an edge From -> To of any kind exists.
  bool hasEdge(unsigned From, unsigned To) const;

  /// Removes the edge From -> To if present (used when spilling rewires a
  /// use from the original value to its reload). Returns true if removed.
  bool removeEdge(unsigned From, unsigned To);

  /// Successor / predecessor edge lists: (neighbor, kind) pairs.
  const std::vector<std::pair<unsigned, EdgeKind>> &succs(unsigned N) const {
    return Succs[N];
  }
  const std::vector<std::pair<unsigned, EdgeKind>> &preds(unsigned N) const {
    return Preds[N];
  }

  unsigned numEdges() const;

  /// Restores the single-root/single-leaf invariant: entry feeds exactly
  /// the pred-less real nodes and exit drains exactly the succ-less ones;
  /// redundant virtual edges are removed so dominance sees only real
  /// structure.
  void normalizeVirtualEdges();

  /// Human-readable node label ("ENTRY", "EXIT", or the instruction).
  std::string label(unsigned N) const;

  /// Emits the DAG as Graphviz (data edges solid, sequence edges dashed).
  void toDot(DotWriter &W) const;

  /// Attaches \p J as the mutation journal: every effective addEdge /
  /// removeEdge (including normalizeVirtualEdges' internal rewiring) is
  /// recorded into it until stopJournal(). The journal is a raw observer
  /// owned by the caller; copies/moves of the DAG never inherit it.
  void startJournal(EdgeDelta &J) {
    J.NodesBefore = size();
    Journal = &J;
  }
  void stopJournal() { Journal = nullptr; }

  DependenceDAG(const DependenceDAG &O)
      : T(O.T), Succs(O.Succs), Preds(O.Preds) {}
  DependenceDAG(DependenceDAG &&O) noexcept
      : T(std::move(O.T)), Succs(std::move(O.Succs)),
        Preds(std::move(O.Preds)) {}
  DependenceDAG &operator=(const DependenceDAG &O) {
    T = O.T;
    Succs = O.Succs;
    Preds = O.Preds;
    Journal = nullptr;
    return *this;
  }
  DependenceDAG &operator=(DependenceDAG &&O) noexcept {
    T = std::move(O.T);
    Succs = std::move(O.Succs);
    Preds = std::move(O.Preds);
    Journal = nullptr;
    return *this;
  }

private:
  Trace T;
  std::vector<std::vector<std::pair<unsigned, EdgeKind>>> Succs;
  std::vector<std::vector<std::pair<unsigned, EdgeKind>>> Preds;
  EdgeDelta *Journal = nullptr; ///< never copied; see startJournal()

  /// The fault-injection harness (ursa/FaultInjector.h) plants
  /// deliberately malformed states — e.g. one-sided edges — that the
  /// public mutators rightly refuse to create.
  friend class FaultInjector;
};

} // namespace ursa

#endif // URSA_GRAPH_DAG_H
