//===- graph/DAGBuilder.h - Build dependence DAGs from traces ---*- C++ -*-===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Constructs the dependence DAG of a trace (paper Section 2):
///
///  * register flow dependences (traces are SSA, so flow deps only),
///  * memory ordering on each named variable (store->load flow,
///    load->store anti, store->store output),
///  * spill-slot ordering (store->load per slot),
///  * branch fences as sequence edges: stores and branches may not move
///    across a trace branch in either direction,
///  * virtual entry/exit attachment (single root, single leaf).
///
//===----------------------------------------------------------------------===//

#ifndef URSA_GRAPH_DAGBUILDER_H
#define URSA_GRAPH_DAGBUILDER_H

#include "graph/DAG.h"

namespace ursa {

/// Builds the dependence DAG for \p T (consumed by value; the DAG owns it).
DependenceDAG buildDAG(Trace T);

} // namespace ursa

#endif // URSA_GRAPH_DAGBUILDER_H
