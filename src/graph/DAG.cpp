//===- graph/DAG.cpp - Dependence DAG over a trace ------------------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "graph/DAG.h"

#include "support/Dot.h"

#include <algorithm>

using namespace ursa;

bool DependenceDAG::addEdge(unsigned From, unsigned To, EdgeKind K) {
  assert(From < size() && To < size() && "edge endpoint out of range");
  assert(From != To && "self edge");
  if (hasEdge(From, To))
    return false;
  Succs[From].emplace_back(To, K);
  Preds[To].emplace_back(From, K);
  if (Journal)
    Journal->Added.emplace_back(From, To);
  return true;
}

bool DependenceDAG::hasEdge(unsigned From, unsigned To) const {
  const auto &S = Succs[From];
  const auto &P = Preds[To];
  // Scan the shorter side.
  if (S.size() <= P.size())
    return std::any_of(S.begin(), S.end(),
                       [To](const auto &E) { return E.first == To; });
  return std::any_of(P.begin(), P.end(),
                     [From](const auto &E) { return E.first == From; });
}

bool DependenceDAG::removeEdge(unsigned From, unsigned To) {
  if (!hasEdge(From, To))
    return false;
  auto &S = Succs[From];
  S.erase(std::remove_if(S.begin(), S.end(),
                         [To](const auto &E) { return E.first == To; }),
          S.end());
  auto &P = Preds[To];
  P.erase(std::remove_if(P.begin(), P.end(),
                         [From](const auto &E) { return E.first == From; }),
          P.end());
  if (Journal)
    Journal->Removed.emplace_back(From, To);
  return true;
}

unsigned DependenceDAG::numEdges() const {
  unsigned N = 0;
  for (const auto &S : Succs)
    N += S.size();
  return N;
}

void DependenceDAG::normalizeVirtualEdges() {
  auto HasRealPred = [&](unsigned N) {
    return std::any_of(Preds[N].begin(), Preds[N].end(), [](const auto &E) {
      return E.first != EntryNode;
    });
  };
  auto HasRealSucc = [&](unsigned N) {
    return std::any_of(Succs[N].begin(), Succs[N].end(), [](const auto &E) {
      return E.first != ExitNode;
    });
  };
  auto EraseEdge = [&](unsigned From, unsigned To) {
    auto &S = Succs[From];
    S.erase(std::remove_if(S.begin(), S.end(),
                           [To](const auto &E) { return E.first == To; }),
            S.end());
    auto &P = Preds[To];
    P.erase(std::remove_if(P.begin(), P.end(),
                           [From](const auto &E) { return E.first == From; }),
            P.end());
    if (Journal)
      Journal->Removed.emplace_back(From, To);
  };

  for (unsigned N = 2, E = size(); N != E; ++N) {
    bool FromEntry = hasEdge(EntryNode, N);
    if (HasRealPred(N)) {
      if (FromEntry)
        EraseEdge(EntryNode, N);
    } else if (!FromEntry) {
      addEdge(EntryNode, N, EdgeKind::Sequence);
    }
    bool ToExit = hasEdge(N, ExitNode);
    if (HasRealSucc(N)) {
      if (ToExit)
        EraseEdge(N, ExitNode);
    } else if (!ToExit) {
      addEdge(N, ExitNode, EdgeKind::Sequence);
    }
  }
  if (size() == 2 && !hasEdge(EntryNode, ExitNode))
    addEdge(EntryNode, ExitNode, EdgeKind::Sequence);
}

std::string DependenceDAG::label(unsigned N) const {
  if (N == EntryNode)
    return "ENTRY";
  if (N == ExitNode)
    return "EXIT";
  return instrAt(N).str(&T.symbolNames());
}

void DependenceDAG::toDot(DotWriter &W) const {
  for (unsigned N = 0, E = size(); N != E; ++N)
    W.addNode(N, label(N), isVirtual(N) ? "shape=diamond" : "shape=box");
  for (unsigned N = 0, E = size(); N != E; ++N)
    for (const auto &[To, Kind] : Succs[N])
      W.addEdge(N, To, Kind == EdgeKind::Sequence ? "style=dashed" : "");
}
