//===- graph/Closure.h - Tiered reachability-closure storage ----*- C++ -*-===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Storage tiers for the reachability closure plus the read-side views the
/// rest of the pipeline consumes:
///
///  * Closure — one closure matrix, either a dense BitMatrix (small DAGs:
///    fastest word-parallel row ops) or a TiledBitMatrix (large DAGs:
///    64x64-bit tiles with all-zero/all-one summaries, a small fraction of
///    the dense bytes). Both answer the same row/bit queries with
///    bit-identical semantics; the closure set is canonical, so the stored
///    bits are representation-independent.
///
///  * ClosureRow — a lightweight row view with the Bitset query surface
///    (test/count/findNext/forEach) plus an implicit conversion to a
///    materialized Bitset, so call sites written against `const Bitset &`
///    rows keep compiling unchanged.
///
///  * RelationView — a non-owning relation handle the matching engines
///    read rows through. It abstracts over a dense BitMatrix, a raw
///    Closure, and a *lazy* relation (closure rows remapped and masked on
///    the fly), which is how reuse relations avoid materializing a second
///    O(N^2) matrix at scale.
///
/// The representation policy (dense / blocked / auto by node count) is
/// process-wide: URSA_CLOSURE / URSA_CLOSURE_THRESHOLD environment knobs
/// with programmatic overrides for --closure flags and tests.
///
//===----------------------------------------------------------------------===//

#ifndef URSA_GRAPH_CLOSURE_H
#define URSA_GRAPH_CLOSURE_H

#include "support/Bitset.h"
#include "support/TiledBitMatrix.h"

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace ursa {

/// Physical representation of one Closure instance.
enum class ClosureRep { Dense, Tiled };

/// User-facing representation policy.
enum class ClosureMode {
  Dense,   ///< always dense (the historical representation)
  Blocked, ///< always tiled, any size (differential tests force this)
  Auto     ///< dense below the threshold, tiled above
};

/// The active policy: URSA_CLOSURE env (dense|blocked|auto, default auto)
/// unless overridden by setClosureMode().
ClosureMode closureMode();
void setClosureMode(ClosureMode M);

/// Node count above which Auto switches to the tiled representation and
/// reuse relations go lazy: URSA_CLOSURE_THRESHOLD env (default 4096)
/// unless overridden by setClosureThreshold().
unsigned closureThreshold();
void setClosureThreshold(unsigned N);

/// Policy decision for one DAG of \p NumNodes nodes.
bool useTiledClosure(unsigned NumNodes);

/// Stable report/CLI name of a representation.
inline const char *closureRepName(ClosureRep R) {
  return R == ClosureRep::Dense ? "dense" : "blocked";
}

class Closure;

/// A read-only view of one closure row. Query-compatible with Bitset and
/// implicitly convertible to one (materializing), so consumers written
/// against dense rows keep working on both representations.
class ClosureRow {
public:
  ClosureRow(const Closure &Cl, unsigned Row) : C(&Cl), R(Row) {}

  unsigned size() const;
  bool test(unsigned I) const;
  unsigned count() const;
  unsigned findNext(unsigned From) const;
  template <typename Fn> void forEach(Fn F) const;
  operator Bitset() const;
  bool operator==(const ClosureRow &O) const;
  bool operator==(const Bitset &B) const;

private:
  const Closure *C;
  unsigned R;
};

/// One reachability closure, dense or tiled. Held by value inside
/// DAGAnalysis; rows handed out as ClosureRow views share its lifetime.
class Closure {
public:
  Closure() = default;
  Closure(unsigned Size, ClosureRep R) : Rep(R) {
    if (Rep == ClosureRep::Dense)
      DenseM = BitMatrix(Size);
    else
      TiledM = TiledBitMatrix(Size);
  }

  ClosureRep rep() const { return Rep; }
  bool isDense() const { return Rep == ClosureRep::Dense; }

  unsigned size() const {
    return isDense() ? DenseM.size() : TiledM.size();
  }

  bool test(unsigned R, unsigned C) const {
    return isDense() ? DenseM.test(R, C) : TiledM.test(R, C);
  }

  void set(unsigned R, unsigned C) {
    if (isDense())
      DenseM.set(R, C);
    else
      TiledM.set(R, C);
  }

  uint64_t rowWord(unsigned R, unsigned WI) const {
    return isDense() ? DenseM.row(R).word(WI) : TiledM.rowWord(R, WI);
  }

  unsigned numRowWords() const {
    return isDense() ? (size() + 63) / 64 : TiledM.numRowWords();
  }

  /// Row[Dst] |= Row[Src] — the closure-propagation workhorse.
  void orRow(unsigned Dst, unsigned Src) {
    if (isDense())
      DenseM.unionRows(Dst, Src);
    else
      TiledM.orRow(Dst, Src);
  }

  void orRowBitset(unsigned R, const Bitset &B) {
    if (isDense())
      DenseM.row(R) |= B;
    else
      TiledM.orRowBitset(R, B);
  }

  void clearRow(unsigned R) {
    if (isDense())
      DenseM.row(R).clear();
    else
      TiledM.clearRow(R);
  }

  Bitset rowBitset(unsigned R) const {
    return isDense() ? DenseM.row(R) : TiledM.rowBitset(R);
  }

  unsigned rowCount(unsigned R) const {
    return isDense() ? DenseM.popcountRow(R) : TiledM.rowCount(R);
  }

  unsigned rowFindNext(unsigned R, unsigned From) const {
    return isDense() ? DenseM.row(R).findNext(From)
                     : TiledM.rowFindNext(R, From);
  }

  template <typename Fn> void rowForEach(unsigned R, Fn F) const {
    if (isDense())
      DenseM.row(R).forEach(F);
    else
      TiledM.rowForEach(R, F);
  }

  ClosureRow row(unsigned R) const { return ClosureRow(*this, R); }

  const Bitset &denseRow(unsigned R) const {
    assert(isDense() && "dense row requested from a tiled closure");
    return DenseM.row(R);
  }

  const BitMatrix &denseMatrix() const {
    assert(isDense() && "dense matrix requested from a tiled closure");
    return DenseM;
  }

  size_t memoryBytes() const {
    return isDense() ? DenseM.memoryBytes() : TiledM.memoryBytes();
  }

  /// A copy of \p Old grown to \p NewSize (>= Old.size()); existing bits
  /// keep their indices, new rows/columns start empty.
  static Closure growFrom(const Closure &Old, unsigned NewSize);

private:
  ClosureRep Rep = ClosureRep::Dense;
  BitMatrix DenseM;
  TiledBitMatrix TiledM;
};

inline unsigned ClosureRow::size() const { return C->size(); }
inline bool ClosureRow::test(unsigned I) const { return C->test(R, I); }
inline unsigned ClosureRow::count() const { return C->rowCount(R); }
inline unsigned ClosureRow::findNext(unsigned From) const {
  return C->rowFindNext(R, From);
}
template <typename Fn> void ClosureRow::forEach(Fn F) const {
  C->rowForEach(R, F);
}
inline ClosureRow::operator Bitset() const { return C->rowBitset(R); }
inline bool ClosureRow::operator==(const ClosureRow &O) const {
  if (C->size() != O.C->size())
    return false;
  for (unsigned WI = 0, WE = C->numRowWords(); WI != WE; ++WI)
    if (C->rowWord(R, WI) != O.C->rowWord(O.R, WI))
      return false;
  return true;
}
inline bool ClosureRow::operator==(const Bitset &B) const {
  if (C->size() != B.size())
    return false;
  for (unsigned WI = 0, WE = C->numRowWords(); WI != WE; ++WI)
    if (C->rowWord(R, WI) != B.word(WI))
      return false;
  return true;
}

/// Non-owning relation handle: what the matching/antichain engines read
/// instead of `const BitMatrix &`. Three shapes:
///
///  * a dense BitMatrix (the historical reuse relation storage);
///  * a raw Closure (the FU relation *is* the closure; rows may carry
///    extra bits on inactive columns, which the engines mask themselves);
///  * a lazy relation: row r of the relation is closure row RowOf[r]
///    (or empty when RowOf[r] < 0) plus an optional ExtraBit[r], all
///    masked by an active-set bitmask — exactly how the dense register
///    relation is built, evaluated word by word on demand instead.
class RelationView {
public:
  RelationView(const BitMatrix &M) : BM(&M), N(M.size()) {}
  RelationView(const Closure &Cl) : C(&Cl), N(Cl.size()) {}

  static RelationView lazy(const Closure &Cl, const std::vector<int32_t> &Row,
                           const std::vector<int32_t> &Extra,
                           const Bitset &MaskBits) {
    RelationView V(Cl);
    V.RowOf = Row.data();
    V.ExtraBit = Extra.empty() ? nullptr : Extra.data();
    V.Mask = &MaskBits;
    return V;
  }

  unsigned size() const { return N; }

  uint64_t rowWord(unsigned R, unsigned WI) const {
    if (BM)
      return BM->row(R).word(WI);
    if (!RowOf)
      return C->rowWord(R, WI);
    uint64_t W = RowOf[R] < 0 ? 0 : C->rowWord(unsigned(RowOf[R]), WI);
    if (ExtraBit && ExtraBit[R] >= 0 && unsigned(ExtraBit[R]) / 64 == WI)
      W |= uint64_t(1) << (unsigned(ExtraBit[R]) % 64);
    return W & Mask->word(WI);
  }

  bool test(unsigned R, unsigned Col) const {
    if (BM)
      return BM->test(R, Col);
    if (!RowOf)
      return C->test(R, Col);
    if (!Mask->test(Col))
      return false;
    if (ExtraBit && ExtraBit[R] >= 0 && unsigned(ExtraBit[R]) == Col)
      return true;
    return RowOf[R] >= 0 && C->test(unsigned(RowOf[R]), Col);
  }

  unsigned rowCount(unsigned R) const {
    if (BM)
      return BM->popcountRow(R);
    if (!RowOf)
      return C->rowCount(R);
    unsigned Count = 0;
    for (unsigned WI = 0, WE = numWords(); WI != WE; ++WI)
      Count += __builtin_popcountll(rowWord(R, WI));
    return Count;
  }

  unsigned rowFindNext(unsigned R, unsigned From) const {
    if (BM)
      return BM->row(R).findNext(From);
    if (!RowOf)
      return C->rowFindNext(R, From);
    if (From >= N)
      return N;
    unsigned WI = From / 64;
    uint64_t W = rowWord(R, WI) & (~uint64_t(0) << (From % 64));
    while (!W) {
      if (++WI == numWords())
        return N;
      W = rowWord(R, WI);
    }
    return WI * 64 + __builtin_ctzll(W);
  }

  template <typename Fn> void forEachInRow(unsigned R, Fn F) const {
    if (BM)
      return BM->row(R).forEach(F);
    if (!RowOf)
      return C->rowForEach(R, F);
    for (unsigned WI = 0, WE = numWords(); WI != WE; ++WI) {
      uint64_t W = rowWord(R, WI);
      while (W) {
        unsigned Bit = __builtin_ctzll(W);
        F(WI * 64 + Bit);
        W &= W - 1;
      }
    }
  }

  Bitset rowBitset(unsigned R) const {
    if (BM)
      return BM->row(R);
    if (!RowOf)
      return C->rowBitset(R);
    Bitset B(N);
    for (unsigned WI = 0, WE = numWords(); WI != WE; ++WI) {
      uint64_t W = rowWord(R, WI);
      if (W)
        B.orWord(WI, W);
    }
    return B;
  }

private:
  unsigned numWords() const { return (N + 63) / 64; }

  const BitMatrix *BM = nullptr;
  const Closure *C = nullptr;
  const int32_t *RowOf = nullptr;
  const int32_t *ExtraBit = nullptr;
  const Bitset *Mask = nullptr;
  unsigned N = 0;
};

} // namespace ursa

#endif // URSA_GRAPH_CLOSURE_H
