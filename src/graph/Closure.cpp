//===- graph/Closure.cpp - Tiered reachability-closure storage ------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "graph/Closure.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

using namespace ursa;

namespace {

ClosureMode modeFromEnv() {
  const char *E = std::getenv("URSA_CLOSURE");
  if (!E)
    return ClosureMode::Auto;
  if (!std::strcmp(E, "dense"))
    return ClosureMode::Dense;
  if (!std::strcmp(E, "blocked"))
    return ClosureMode::Blocked;
  return ClosureMode::Auto;
}

unsigned thresholdFromEnv() {
  const char *E = std::getenv("URSA_CLOSURE_THRESHOLD");
  if (!E)
    return 4096;
  long V = std::atol(E);
  return V > 0 ? unsigned(V) : 4096;
}

std::atomic<int> &modeSlot() {
  static std::atomic<int> Slot{int(modeFromEnv())};
  return Slot;
}

std::atomic<unsigned> &thresholdSlot() {
  static std::atomic<unsigned> Slot{thresholdFromEnv()};
  return Slot;
}

} // namespace

ClosureMode ursa::closureMode() {
  return ClosureMode(modeSlot().load(std::memory_order_relaxed));
}

void ursa::setClosureMode(ClosureMode M) {
  modeSlot().store(int(M), std::memory_order_relaxed);
}

unsigned ursa::closureThreshold() {
  return thresholdSlot().load(std::memory_order_relaxed);
}

void ursa::setClosureThreshold(unsigned N) {
  thresholdSlot().store(N, std::memory_order_relaxed);
}

bool ursa::useTiledClosure(unsigned NumNodes) {
  switch (closureMode()) {
  case ClosureMode::Dense:
    return false;
  case ClosureMode::Blocked:
    return true;
  case ClosureMode::Auto:
    return NumNodes > closureThreshold();
  }
  return false;
}

Closure Closure::growFrom(const Closure &Old, unsigned NewSize) {
  assert(NewSize >= Old.size() && "closures can only grow");
  if (Old.isDense()) {
    Closure Out(NewSize, ClosureRep::Dense);
    for (unsigned R = 0, E = Old.size(); R != E; ++R) {
      const Bitset &Row = Old.DenseM.row(R);
      Bitset &Dst = Out.DenseM.row(R);
      for (unsigned WI = 0, WE = Row.numWords(); WI != WE; ++WI)
        if (uint64_t W = Row.word(WI))
          Dst.orWord(WI, W);
    }
    return Out;
  }
  Closure Out;
  Out.Rep = ClosureRep::Tiled;
  Out.TiledM = Old.TiledM;
  Out.TiledM.growTo(NewSize);
  return Out;
}
