file(REMOVE_RECURSE
  "CMakeFiles/ursa_cfg.dir/cfg/CFG.cpp.o"
  "CMakeFiles/ursa_cfg.dir/cfg/CFG.cpp.o.d"
  "CMakeFiles/ursa_cfg.dir/cfg/CFGCompiler.cpp.o"
  "CMakeFiles/ursa_cfg.dir/cfg/CFGCompiler.cpp.o.d"
  "CMakeFiles/ursa_cfg.dir/cfg/CFGParser.cpp.o"
  "CMakeFiles/ursa_cfg.dir/cfg/CFGParser.cpp.o.d"
  "CMakeFiles/ursa_cfg.dir/cfg/SoftwarePipeline.cpp.o"
  "CMakeFiles/ursa_cfg.dir/cfg/SoftwarePipeline.cpp.o.d"
  "CMakeFiles/ursa_cfg.dir/cfg/TraceFormation.cpp.o"
  "CMakeFiles/ursa_cfg.dir/cfg/TraceFormation.cpp.o.d"
  "CMakeFiles/ursa_cfg.dir/cfg/TraceOpt.cpp.o"
  "CMakeFiles/ursa_cfg.dir/cfg/TraceOpt.cpp.o.d"
  "CMakeFiles/ursa_cfg.dir/cfg/Unroll.cpp.o"
  "CMakeFiles/ursa_cfg.dir/cfg/Unroll.cpp.o.d"
  "libursa_cfg.a"
  "libursa_cfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ursa_cfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
