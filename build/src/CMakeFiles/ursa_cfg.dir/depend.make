# Empty dependencies file for ursa_cfg.
# This may be replaced when dependencies are built.
