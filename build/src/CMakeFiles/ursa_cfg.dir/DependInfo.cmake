
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cfg/CFG.cpp" "src/CMakeFiles/ursa_cfg.dir/cfg/CFG.cpp.o" "gcc" "src/CMakeFiles/ursa_cfg.dir/cfg/CFG.cpp.o.d"
  "/root/repo/src/cfg/CFGCompiler.cpp" "src/CMakeFiles/ursa_cfg.dir/cfg/CFGCompiler.cpp.o" "gcc" "src/CMakeFiles/ursa_cfg.dir/cfg/CFGCompiler.cpp.o.d"
  "/root/repo/src/cfg/CFGParser.cpp" "src/CMakeFiles/ursa_cfg.dir/cfg/CFGParser.cpp.o" "gcc" "src/CMakeFiles/ursa_cfg.dir/cfg/CFGParser.cpp.o.d"
  "/root/repo/src/cfg/SoftwarePipeline.cpp" "src/CMakeFiles/ursa_cfg.dir/cfg/SoftwarePipeline.cpp.o" "gcc" "src/CMakeFiles/ursa_cfg.dir/cfg/SoftwarePipeline.cpp.o.d"
  "/root/repo/src/cfg/TraceFormation.cpp" "src/CMakeFiles/ursa_cfg.dir/cfg/TraceFormation.cpp.o" "gcc" "src/CMakeFiles/ursa_cfg.dir/cfg/TraceFormation.cpp.o.d"
  "/root/repo/src/cfg/TraceOpt.cpp" "src/CMakeFiles/ursa_cfg.dir/cfg/TraceOpt.cpp.o" "gcc" "src/CMakeFiles/ursa_cfg.dir/cfg/TraceOpt.cpp.o.d"
  "/root/repo/src/cfg/Unroll.cpp" "src/CMakeFiles/ursa_cfg.dir/cfg/Unroll.cpp.o" "gcc" "src/CMakeFiles/ursa_cfg.dir/cfg/Unroll.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ursa_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ursa_vliw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ursa_order.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ursa_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ursa_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ursa_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ursa_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ursa_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
