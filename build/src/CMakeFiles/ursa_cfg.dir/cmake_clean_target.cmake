file(REMOVE_RECURSE
  "libursa_cfg.a"
)
