file(REMOVE_RECURSE
  "CMakeFiles/ursa_workload.dir/workload/Generators.cpp.o"
  "CMakeFiles/ursa_workload.dir/workload/Generators.cpp.o.d"
  "CMakeFiles/ursa_workload.dir/workload/Kernels.cpp.o"
  "CMakeFiles/ursa_workload.dir/workload/Kernels.cpp.o.d"
  "libursa_workload.a"
  "libursa_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ursa_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
