# Empty dependencies file for ursa_sched.
# This may be replaced when dependencies are built.
