
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/GraphColoring.cpp" "src/CMakeFiles/ursa_sched.dir/sched/GraphColoring.cpp.o" "gcc" "src/CMakeFiles/ursa_sched.dir/sched/GraphColoring.cpp.o.d"
  "/root/repo/src/sched/ListScheduler.cpp" "src/CMakeFiles/ursa_sched.dir/sched/ListScheduler.cpp.o" "gcc" "src/CMakeFiles/ursa_sched.dir/sched/ListScheduler.cpp.o.d"
  "/root/repo/src/sched/Pipelines.cpp" "src/CMakeFiles/ursa_sched.dir/sched/Pipelines.cpp.o" "gcc" "src/CMakeFiles/ursa_sched.dir/sched/Pipelines.cpp.o.d"
  "/root/repo/src/sched/RegAssign.cpp" "src/CMakeFiles/ursa_sched.dir/sched/RegAssign.cpp.o" "gcc" "src/CMakeFiles/ursa_sched.dir/sched/RegAssign.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ursa_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ursa_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ursa_vliw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ursa_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ursa_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
