file(REMOVE_RECURSE
  "CMakeFiles/ursa_sched.dir/sched/GraphColoring.cpp.o"
  "CMakeFiles/ursa_sched.dir/sched/GraphColoring.cpp.o.d"
  "CMakeFiles/ursa_sched.dir/sched/ListScheduler.cpp.o"
  "CMakeFiles/ursa_sched.dir/sched/ListScheduler.cpp.o.d"
  "CMakeFiles/ursa_sched.dir/sched/Pipelines.cpp.o"
  "CMakeFiles/ursa_sched.dir/sched/Pipelines.cpp.o.d"
  "CMakeFiles/ursa_sched.dir/sched/RegAssign.cpp.o"
  "CMakeFiles/ursa_sched.dir/sched/RegAssign.cpp.o.d"
  "libursa_sched.a"
  "libursa_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ursa_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
