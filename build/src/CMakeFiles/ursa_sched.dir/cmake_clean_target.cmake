file(REMOVE_RECURSE
  "libursa_sched.a"
)
