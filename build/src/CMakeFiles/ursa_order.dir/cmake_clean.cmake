file(REMOVE_RECURSE
  "CMakeFiles/ursa_order.dir/order/Chains.cpp.o"
  "CMakeFiles/ursa_order.dir/order/Chains.cpp.o.d"
  "CMakeFiles/ursa_order.dir/order/Matching.cpp.o"
  "CMakeFiles/ursa_order.dir/order/Matching.cpp.o.d"
  "libursa_order.a"
  "libursa_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ursa_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
