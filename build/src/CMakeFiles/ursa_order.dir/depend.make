# Empty dependencies file for ursa_order.
# This may be replaced when dependencies are built.
