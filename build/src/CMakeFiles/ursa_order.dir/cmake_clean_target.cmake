file(REMOVE_RECURSE
  "libursa_order.a"
)
