
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/order/Chains.cpp" "src/CMakeFiles/ursa_order.dir/order/Chains.cpp.o" "gcc" "src/CMakeFiles/ursa_order.dir/order/Chains.cpp.o.d"
  "/root/repo/src/order/Matching.cpp" "src/CMakeFiles/ursa_order.dir/order/Matching.cpp.o" "gcc" "src/CMakeFiles/ursa_order.dir/order/Matching.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ursa_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ursa_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ursa_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
