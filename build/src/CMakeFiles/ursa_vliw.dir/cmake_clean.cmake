file(REMOVE_RECURSE
  "CMakeFiles/ursa_vliw.dir/vliw/Simulator.cpp.o"
  "CMakeFiles/ursa_vliw.dir/vliw/Simulator.cpp.o.d"
  "CMakeFiles/ursa_vliw.dir/vliw/VLIWProgram.cpp.o"
  "CMakeFiles/ursa_vliw.dir/vliw/VLIWProgram.cpp.o.d"
  "libursa_vliw.a"
  "libursa_vliw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ursa_vliw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
