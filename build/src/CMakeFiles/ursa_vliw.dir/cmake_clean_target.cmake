file(REMOVE_RECURSE
  "libursa_vliw.a"
)
