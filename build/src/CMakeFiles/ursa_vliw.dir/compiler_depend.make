# Empty compiler generated dependencies file for ursa_vliw.
# This may be replaced when dependencies are built.
