# Empty compiler generated dependencies file for ursa_support.
# This may be replaced when dependencies are built.
