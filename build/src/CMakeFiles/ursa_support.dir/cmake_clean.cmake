file(REMOVE_RECURSE
  "CMakeFiles/ursa_support.dir/support/Dot.cpp.o"
  "CMakeFiles/ursa_support.dir/support/Dot.cpp.o.d"
  "CMakeFiles/ursa_support.dir/support/Table.cpp.o"
  "CMakeFiles/ursa_support.dir/support/Table.cpp.o.d"
  "libursa_support.a"
  "libursa_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ursa_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
