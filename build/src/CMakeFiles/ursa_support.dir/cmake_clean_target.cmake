file(REMOVE_RECURSE
  "libursa_support.a"
)
