file(REMOVE_RECURSE
  "CMakeFiles/ursa_machine.dir/machine/MachineModel.cpp.o"
  "CMakeFiles/ursa_machine.dir/machine/MachineModel.cpp.o.d"
  "libursa_machine.a"
  "libursa_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ursa_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
