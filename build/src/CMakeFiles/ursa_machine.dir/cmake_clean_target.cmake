file(REMOVE_RECURSE
  "libursa_machine.a"
)
