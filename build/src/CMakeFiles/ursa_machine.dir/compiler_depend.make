# Empty compiler generated dependencies file for ursa_machine.
# This may be replaced when dependencies are built.
