# Empty dependencies file for ursa_graph.
# This may be replaced when dependencies are built.
