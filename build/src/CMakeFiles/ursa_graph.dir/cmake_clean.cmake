file(REMOVE_RECURSE
  "CMakeFiles/ursa_graph.dir/graph/Analysis.cpp.o"
  "CMakeFiles/ursa_graph.dir/graph/Analysis.cpp.o.d"
  "CMakeFiles/ursa_graph.dir/graph/DAG.cpp.o"
  "CMakeFiles/ursa_graph.dir/graph/DAG.cpp.o.d"
  "CMakeFiles/ursa_graph.dir/graph/DAGBuilder.cpp.o"
  "CMakeFiles/ursa_graph.dir/graph/DAGBuilder.cpp.o.d"
  "CMakeFiles/ursa_graph.dir/graph/Dominators.cpp.o"
  "CMakeFiles/ursa_graph.dir/graph/Dominators.cpp.o.d"
  "CMakeFiles/ursa_graph.dir/graph/Hammocks.cpp.o"
  "CMakeFiles/ursa_graph.dir/graph/Hammocks.cpp.o.d"
  "libursa_graph.a"
  "libursa_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ursa_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
