
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/Analysis.cpp" "src/CMakeFiles/ursa_graph.dir/graph/Analysis.cpp.o" "gcc" "src/CMakeFiles/ursa_graph.dir/graph/Analysis.cpp.o.d"
  "/root/repo/src/graph/DAG.cpp" "src/CMakeFiles/ursa_graph.dir/graph/DAG.cpp.o" "gcc" "src/CMakeFiles/ursa_graph.dir/graph/DAG.cpp.o.d"
  "/root/repo/src/graph/DAGBuilder.cpp" "src/CMakeFiles/ursa_graph.dir/graph/DAGBuilder.cpp.o" "gcc" "src/CMakeFiles/ursa_graph.dir/graph/DAGBuilder.cpp.o.d"
  "/root/repo/src/graph/Dominators.cpp" "src/CMakeFiles/ursa_graph.dir/graph/Dominators.cpp.o" "gcc" "src/CMakeFiles/ursa_graph.dir/graph/Dominators.cpp.o.d"
  "/root/repo/src/graph/Hammocks.cpp" "src/CMakeFiles/ursa_graph.dir/graph/Hammocks.cpp.o" "gcc" "src/CMakeFiles/ursa_graph.dir/graph/Hammocks.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ursa_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ursa_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
