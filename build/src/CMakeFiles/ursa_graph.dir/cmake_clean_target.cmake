file(REMOVE_RECURSE
  "libursa_graph.a"
)
