# Empty compiler generated dependencies file for ursa_ir.
# This may be replaced when dependencies are built.
