
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/Instruction.cpp" "src/CMakeFiles/ursa_ir.dir/ir/Instruction.cpp.o" "gcc" "src/CMakeFiles/ursa_ir.dir/ir/Instruction.cpp.o.d"
  "/root/repo/src/ir/Interpreter.cpp" "src/CMakeFiles/ursa_ir.dir/ir/Interpreter.cpp.o" "gcc" "src/CMakeFiles/ursa_ir.dir/ir/Interpreter.cpp.o.d"
  "/root/repo/src/ir/Parser.cpp" "src/CMakeFiles/ursa_ir.dir/ir/Parser.cpp.o" "gcc" "src/CMakeFiles/ursa_ir.dir/ir/Parser.cpp.o.d"
  "/root/repo/src/ir/Trace.cpp" "src/CMakeFiles/ursa_ir.dir/ir/Trace.cpp.o" "gcc" "src/CMakeFiles/ursa_ir.dir/ir/Trace.cpp.o.d"
  "/root/repo/src/ir/Verifier.cpp" "src/CMakeFiles/ursa_ir.dir/ir/Verifier.cpp.o" "gcc" "src/CMakeFiles/ursa_ir.dir/ir/Verifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ursa_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
