file(REMOVE_RECURSE
  "CMakeFiles/ursa_ir.dir/ir/Instruction.cpp.o"
  "CMakeFiles/ursa_ir.dir/ir/Instruction.cpp.o.d"
  "CMakeFiles/ursa_ir.dir/ir/Interpreter.cpp.o"
  "CMakeFiles/ursa_ir.dir/ir/Interpreter.cpp.o.d"
  "CMakeFiles/ursa_ir.dir/ir/Parser.cpp.o"
  "CMakeFiles/ursa_ir.dir/ir/Parser.cpp.o.d"
  "CMakeFiles/ursa_ir.dir/ir/Trace.cpp.o"
  "CMakeFiles/ursa_ir.dir/ir/Trace.cpp.o.d"
  "CMakeFiles/ursa_ir.dir/ir/Verifier.cpp.o"
  "CMakeFiles/ursa_ir.dir/ir/Verifier.cpp.o.d"
  "libursa_ir.a"
  "libursa_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ursa_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
