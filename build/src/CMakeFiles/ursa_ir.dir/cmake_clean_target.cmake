file(REMOVE_RECURSE
  "libursa_ir.a"
)
