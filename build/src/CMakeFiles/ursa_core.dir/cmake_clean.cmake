file(REMOVE_RECURSE
  "CMakeFiles/ursa_core.dir/ursa/ChainAssign.cpp.o"
  "CMakeFiles/ursa_core.dir/ursa/ChainAssign.cpp.o.d"
  "CMakeFiles/ursa_core.dir/ursa/Compiler.cpp.o"
  "CMakeFiles/ursa_core.dir/ursa/Compiler.cpp.o.d"
  "CMakeFiles/ursa_core.dir/ursa/Driver.cpp.o"
  "CMakeFiles/ursa_core.dir/ursa/Driver.cpp.o.d"
  "CMakeFiles/ursa_core.dir/ursa/KillSelection.cpp.o"
  "CMakeFiles/ursa_core.dir/ursa/KillSelection.cpp.o.d"
  "CMakeFiles/ursa_core.dir/ursa/Measure.cpp.o"
  "CMakeFiles/ursa_core.dir/ursa/Measure.cpp.o.d"
  "CMakeFiles/ursa_core.dir/ursa/Report.cpp.o"
  "CMakeFiles/ursa_core.dir/ursa/Report.cpp.o.d"
  "CMakeFiles/ursa_core.dir/ursa/ReuseDAG.cpp.o"
  "CMakeFiles/ursa_core.dir/ursa/ReuseDAG.cpp.o.d"
  "CMakeFiles/ursa_core.dir/ursa/Transforms.cpp.o"
  "CMakeFiles/ursa_core.dir/ursa/Transforms.cpp.o.d"
  "libursa_core.a"
  "libursa_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ursa_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
