
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ursa/ChainAssign.cpp" "src/CMakeFiles/ursa_core.dir/ursa/ChainAssign.cpp.o" "gcc" "src/CMakeFiles/ursa_core.dir/ursa/ChainAssign.cpp.o.d"
  "/root/repo/src/ursa/Compiler.cpp" "src/CMakeFiles/ursa_core.dir/ursa/Compiler.cpp.o" "gcc" "src/CMakeFiles/ursa_core.dir/ursa/Compiler.cpp.o.d"
  "/root/repo/src/ursa/Driver.cpp" "src/CMakeFiles/ursa_core.dir/ursa/Driver.cpp.o" "gcc" "src/CMakeFiles/ursa_core.dir/ursa/Driver.cpp.o.d"
  "/root/repo/src/ursa/KillSelection.cpp" "src/CMakeFiles/ursa_core.dir/ursa/KillSelection.cpp.o" "gcc" "src/CMakeFiles/ursa_core.dir/ursa/KillSelection.cpp.o.d"
  "/root/repo/src/ursa/Measure.cpp" "src/CMakeFiles/ursa_core.dir/ursa/Measure.cpp.o" "gcc" "src/CMakeFiles/ursa_core.dir/ursa/Measure.cpp.o.d"
  "/root/repo/src/ursa/Report.cpp" "src/CMakeFiles/ursa_core.dir/ursa/Report.cpp.o" "gcc" "src/CMakeFiles/ursa_core.dir/ursa/Report.cpp.o.d"
  "/root/repo/src/ursa/ReuseDAG.cpp" "src/CMakeFiles/ursa_core.dir/ursa/ReuseDAG.cpp.o" "gcc" "src/CMakeFiles/ursa_core.dir/ursa/ReuseDAG.cpp.o.d"
  "/root/repo/src/ursa/Transforms.cpp" "src/CMakeFiles/ursa_core.dir/ursa/Transforms.cpp.o" "gcc" "src/CMakeFiles/ursa_core.dir/ursa/Transforms.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ursa_order.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ursa_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ursa_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ursa_vliw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ursa_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ursa_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ursa_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
