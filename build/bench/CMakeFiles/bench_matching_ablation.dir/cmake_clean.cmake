file(REMOVE_RECURSE
  "CMakeFiles/bench_matching_ablation.dir/bench_matching_ablation.cpp.o"
  "CMakeFiles/bench_matching_ablation.dir/bench_matching_ablation.cpp.o.d"
  "bench_matching_ablation"
  "bench_matching_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_matching_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
