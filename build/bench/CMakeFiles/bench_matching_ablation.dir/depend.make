# Empty dependencies file for bench_matching_ablation.
# This may be replaced when dependencies are built.
