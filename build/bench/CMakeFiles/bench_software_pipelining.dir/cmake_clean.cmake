file(REMOVE_RECURSE
  "CMakeFiles/bench_software_pipelining.dir/bench_software_pipelining.cpp.o"
  "CMakeFiles/bench_software_pipelining.dir/bench_software_pipelining.cpp.o.d"
  "bench_software_pipelining"
  "bench_software_pipelining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_software_pipelining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
