# Empty compiler generated dependencies file for bench_pipelined_fus.
# This may be replaced when dependencies are built.
