file(REMOVE_RECURSE
  "CMakeFiles/bench_pipelined_fus.dir/bench_pipelined_fus.cpp.o"
  "CMakeFiles/bench_pipelined_fus.dir/bench_pipelined_fus.cpp.o.d"
  "bench_pipelined_fus"
  "bench_pipelined_fus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pipelined_fus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
