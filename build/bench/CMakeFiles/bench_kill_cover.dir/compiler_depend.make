# Empty compiler generated dependencies file for bench_kill_cover.
# This may be replaced when dependencies are built.
