file(REMOVE_RECURSE
  "CMakeFiles/bench_kill_cover.dir/bench_kill_cover.cpp.o"
  "CMakeFiles/bench_kill_cover.dir/bench_kill_cover.cpp.o.d"
  "bench_kill_cover"
  "bench_kill_cover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kill_cover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
