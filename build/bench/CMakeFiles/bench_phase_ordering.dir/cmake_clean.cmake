file(REMOVE_RECURSE
  "CMakeFiles/bench_phase_ordering.dir/bench_phase_ordering.cpp.o"
  "CMakeFiles/bench_phase_ordering.dir/bench_phase_ordering.cpp.o.d"
  "bench_phase_ordering"
  "bench_phase_ordering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_phase_ordering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
