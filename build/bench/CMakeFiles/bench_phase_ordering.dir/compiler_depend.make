# Empty compiler generated dependencies file for bench_phase_ordering.
# This may be replaced when dependencies are built.
