file(REMOVE_RECURSE
  "CMakeFiles/bench_trace_pipeline.dir/bench_trace_pipeline.cpp.o"
  "CMakeFiles/bench_trace_pipeline.dir/bench_trace_pipeline.cpp.o.d"
  "bench_trace_pipeline"
  "bench_trace_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_trace_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
