# Empty compiler generated dependencies file for bench_transform_order.
# This may be replaced when dependencies are built.
