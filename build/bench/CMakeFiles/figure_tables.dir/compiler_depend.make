# Empty compiler generated dependencies file for figure_tables.
# This may be replaced when dependencies are built.
