file(REMOVE_RECURSE
  "CMakeFiles/figure_tables.dir/figure_tables.cpp.o"
  "CMakeFiles/figure_tables.dir/figure_tables.cpp.o.d"
  "figure_tables"
  "figure_tables.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure_tables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
