file(REMOVE_RECURSE
  "CMakeFiles/bench_matching_driver.dir/bench_matching_driver.cpp.o"
  "CMakeFiles/bench_matching_driver.dir/bench_matching_driver.cpp.o.d"
  "bench_matching_driver"
  "bench_matching_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_matching_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
