# Empty compiler generated dependencies file for bench_matching_driver.
# This may be replaced when dependencies are built.
