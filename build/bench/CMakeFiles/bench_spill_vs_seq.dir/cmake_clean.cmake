file(REMOVE_RECURSE
  "CMakeFiles/bench_spill_vs_seq.dir/bench_spill_vs_seq.cpp.o"
  "CMakeFiles/bench_spill_vs_seq.dir/bench_spill_vs_seq.cpp.o.d"
  "bench_spill_vs_seq"
  "bench_spill_vs_seq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_spill_vs_seq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
