# Empty compiler generated dependencies file for bench_spill_vs_seq.
# This may be replaced when dependencies are built.
