# Empty dependencies file for bench_regclasses.
# This may be replaced when dependencies are built.
