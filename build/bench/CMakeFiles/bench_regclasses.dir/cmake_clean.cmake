file(REMOVE_RECURSE
  "CMakeFiles/bench_regclasses.dir/bench_regclasses.cpp.o"
  "CMakeFiles/bench_regclasses.dir/bench_regclasses.cpp.o.d"
  "bench_regclasses"
  "bench_regclasses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_regclasses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
