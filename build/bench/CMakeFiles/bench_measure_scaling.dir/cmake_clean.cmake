file(REMOVE_RECURSE
  "CMakeFiles/bench_measure_scaling.dir/bench_measure_scaling.cpp.o"
  "CMakeFiles/bench_measure_scaling.dir/bench_measure_scaling.cpp.o.d"
  "bench_measure_scaling"
  "bench_measure_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_measure_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
