# Empty compiler generated dependencies file for bench_measure_scaling.
# This may be replaced when dependencies are built.
