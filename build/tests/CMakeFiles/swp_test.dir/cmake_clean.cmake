file(REMOVE_RECURSE
  "CMakeFiles/swp_test.dir/swp_test.cpp.o"
  "CMakeFiles/swp_test.dir/swp_test.cpp.o.d"
  "swp_test"
  "swp_test.pdb"
  "swp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
