# Empty dependencies file for swp_test.
# This may be replaced when dependencies are built.
