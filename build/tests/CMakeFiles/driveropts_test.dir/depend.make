# Empty dependencies file for driveropts_test.
# This may be replaced when dependencies are built.
