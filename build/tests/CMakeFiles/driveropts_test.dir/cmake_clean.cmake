file(REMOVE_RECURSE
  "CMakeFiles/driveropts_test.dir/driveropts_test.cpp.o"
  "CMakeFiles/driveropts_test.dir/driveropts_test.cpp.o.d"
  "driveropts_test"
  "driveropts_test.pdb"
  "driveropts_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/driveropts_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
