# Empty compiler generated dependencies file for traceopt_test.
# This may be replaced when dependencies are built.
