file(REMOVE_RECURSE
  "CMakeFiles/traceopt_test.dir/traceopt_test.cpp.o"
  "CMakeFiles/traceopt_test.dir/traceopt_test.cpp.o.d"
  "traceopt_test"
  "traceopt_test.pdb"
  "traceopt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traceopt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
