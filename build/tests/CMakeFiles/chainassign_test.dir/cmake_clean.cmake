file(REMOVE_RECURSE
  "CMakeFiles/chainassign_test.dir/chainassign_test.cpp.o"
  "CMakeFiles/chainassign_test.dir/chainassign_test.cpp.o.d"
  "chainassign_test"
  "chainassign_test.pdb"
  "chainassign_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chainassign_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
