# Empty dependencies file for chainassign_test.
# This may be replaced when dependencies are built.
