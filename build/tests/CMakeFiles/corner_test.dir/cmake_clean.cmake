file(REMOVE_RECURSE
  "CMakeFiles/corner_test.dir/corner_test.cpp.o"
  "CMakeFiles/corner_test.dir/corner_test.cpp.o.d"
  "corner_test"
  "corner_test.pdb"
  "corner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
