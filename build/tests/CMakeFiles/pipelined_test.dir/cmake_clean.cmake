file(REMOVE_RECURSE
  "CMakeFiles/pipelined_test.dir/pipelined_test.cpp.o"
  "CMakeFiles/pipelined_test.dir/pipelined_test.cpp.o.d"
  "pipelined_test"
  "pipelined_test.pdb"
  "pipelined_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipelined_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
