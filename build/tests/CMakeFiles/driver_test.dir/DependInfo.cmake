
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/driver_test.cpp" "tests/CMakeFiles/driver_test.dir/driver_test.cpp.o" "gcc" "tests/CMakeFiles/driver_test.dir/driver_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ursa_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ursa_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ursa_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ursa_vliw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ursa_order.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ursa_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ursa_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ursa_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ursa_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ursa_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
