# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/ir_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/order_test[1]_include.cmake")
include("/root/repo/build/tests/measure_test[1]_include.cmake")
include("/root/repo/build/tests/transforms_test[1]_include.cmake")
include("/root/repo/build/tests/driver_test[1]_include.cmake")
include("/root/repo/build/tests/sched_test[1]_include.cmake")
include("/root/repo/build/tests/vliw_test[1]_include.cmake")
include("/root/repo/build/tests/endtoend_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/cfg_test[1]_include.cmake")
include("/root/repo/build/tests/unroll_test[1]_include.cmake")
include("/root/repo/build/tests/traceopt_test[1]_include.cmake")
include("/root/repo/build/tests/pipelined_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/swp_test[1]_include.cmake")
include("/root/repo/build/tests/misc_test[1]_include.cmake")
include("/root/repo/build/tests/kernels2_test[1]_include.cmake")
include("/root/repo/build/tests/corner_test[1]_include.cmake")
include("/root/repo/build/tests/driveropts_test[1]_include.cmake")
include("/root/repo/build/tests/report_test[1]_include.cmake")
include("/root/repo/build/tests/semantics_test[1]_include.cmake")
include("/root/repo/build/tests/chainassign_test[1]_include.cmake")
include("/root/repo/build/tests/squash_test[1]_include.cmake")
