file(REMOVE_RECURSE
  "CMakeFiles/measure_tool.dir/measure_tool.cpp.o"
  "CMakeFiles/measure_tool.dir/measure_tool.cpp.o.d"
  "measure_tool"
  "measure_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/measure_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
