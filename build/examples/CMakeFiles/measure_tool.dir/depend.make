# Empty dependencies file for measure_tool.
# This may be replaced when dependencies are built.
