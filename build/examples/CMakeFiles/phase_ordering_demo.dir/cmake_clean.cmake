file(REMOVE_RECURSE
  "CMakeFiles/phase_ordering_demo.dir/phase_ordering_demo.cpp.o"
  "CMakeFiles/phase_ordering_demo.dir/phase_ordering_demo.cpp.o.d"
  "phase_ordering_demo"
  "phase_ordering_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phase_ordering_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
