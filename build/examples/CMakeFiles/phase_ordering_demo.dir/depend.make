# Empty dependencies file for phase_ordering_demo.
# This may be replaced when dependencies are built.
