file(REMOVE_RECURSE
  "CMakeFiles/trace_compiler.dir/trace_compiler.cpp.o"
  "CMakeFiles/trace_compiler.dir/trace_compiler.cpp.o.d"
  "trace_compiler"
  "trace_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
