# Empty compiler generated dependencies file for trace_compiler.
# This may be replaced when dependencies are built.
