# Empty dependencies file for trace_compiler.
# This may be replaced when dependencies are built.
