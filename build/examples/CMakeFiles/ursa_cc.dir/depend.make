# Empty dependencies file for ursa_cc.
# This may be replaced when dependencies are built.
