file(REMOVE_RECURSE
  "CMakeFiles/ursa_cc.dir/ursa_cc.cpp.o"
  "CMakeFiles/ursa_cc.dir/ursa_cc.cpp.o.d"
  "ursa_cc"
  "ursa_cc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ursa_cc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
