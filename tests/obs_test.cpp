//===- tests/obs_test.cpp - Stats registry, tracer, and JSON reports ------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "graph/DAGBuilder.h"
#include "obs/Json.h"
#include "obs/Stats.h"
#include "obs/Tracer.h"
#include "support/RNG.h"
#include "ursa/Driver.h"
#include "ursa/Report.h"
#include "workload/Kernels.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

using namespace ursa;

//===----------------------------------------------------------------------===//
// Stats registry
//===----------------------------------------------------------------------===//

URSA_STAT(TestCounter, "test.obs.counter", "a test counter");
URSA_STAT(TestGauge, "test.obs.gauge", "a test gauge");

namespace {

uint64_t snapshotValueOf(const char *Name) {
  for (const obs::StatValue &SV : obs::snapshotStats())
    if (SV.Name == Name)
      return SV.Value;
  ADD_FAILURE() << "statistic '" << Name << "' is not registered";
  return ~0ull;
}

} // namespace

TEST(Stats, RegistersAndCounts) {
  obs::setStatsEnabled(true);
  TestCounter.reset();
  TestCounter.add();
  TestCounter.add(4);
  EXPECT_EQ(TestCounter.value(), 5u);
  EXPECT_EQ(snapshotValueOf("test.obs.counter"), 5u);
}

TEST(Stats, GaugeSetAndMax) {
  obs::setStatsEnabled(true);
  TestGauge.reset();
  TestGauge.set(7);
  EXPECT_EQ(TestGauge.value(), 7u);
  TestGauge.noteMax(3); // lower observation must not stick
  EXPECT_EQ(TestGauge.value(), 7u);
  TestGauge.noteMax(12);
  EXPECT_EQ(TestGauge.value(), 12u);
}

TEST(Stats, DisabledSitesDoNotCount) {
  obs::setStatsEnabled(true);
  TestCounter.reset();
  obs::setStatsEnabled(false);
  TestCounter.add(100);
  TestGauge.set(100);
  EXPECT_EQ(TestCounter.value(), 0u);
  obs::setStatsEnabled(true);
  TestCounter.add();
  EXPECT_EQ(TestCounter.value(), 1u);
}

TEST(Stats, ResetZeroesEverything) {
  obs::setStatsEnabled(true);
  TestCounter.add(9);
  obs::resetStats();
  for (const obs::StatValue &SV : obs::snapshotStats())
    EXPECT_EQ(SV.Value, 0u) << SV.Name;
  EXPECT_TRUE(obs::snapshotStats(/*NonZeroOnly=*/true).empty());
}

TEST(Stats, SnapshotIsSortedAndFollowsNaming) {
  std::vector<obs::StatValue> Snap = obs::snapshotStats();
  ASSERT_GT(Snap.size(), 10u) << "pipeline instrumentation missing";
  for (unsigned I = 1; I < Snap.size(); ++I)
    EXPECT_LT(Snap[I - 1].Name, Snap[I].Name);
  for (const obs::StatValue &SV : Snap) {
    EXPECT_FALSE(SV.Desc.empty()) << SV.Name;
    // <layer>.<module>.<what>: at least two dots, lower-case.
    EXPECT_GE(std::count(SV.Name.begin(), SV.Name.end(), '.'), 2) << SV.Name;
    for (char C : SV.Name)
      EXPECT_TRUE((C >= 'a' && C <= 'z') || (C >= '0' && C <= '9') ||
                  C == '.' || C == '_')
          << SV.Name;
  }
}

TEST(Stats, PipelineRunPopulatesCounters) {
  obs::setStatsEnabled(true);
  obs::resetStats();
  MachineModel M = MachineModel::homogeneous(2, 3);
  URSAResult R = runURSA(buildDAG(figure2Trace()), M);
  ASSERT_GT(R.Rounds, 0u);
  EXPECT_EQ(snapshotValueOf("ursa.driver.rounds"), R.Rounds);
  EXPECT_GT(snapshotValueOf("ursa.measure.resources_measured"), 0u);
  EXPECT_GT(snapshotValueOf("order.matching.matched_pairs"), 0u);
}

//===----------------------------------------------------------------------===//
// JSON writer and parser
//===----------------------------------------------------------------------===//

TEST(Json, WriterEscapingRoundTrips) {
  obs::JsonWriter W;
  const std::string Nasty = "a\"b\\c\nd\te\x01z";
  W.beginObject().kv("s", Nasty).key("arr").beginArray();
  W.value(int64_t(-3)).value(2.5).value(true).null().endArray();
  W.endObject();

  obs::JsonValue V;
  std::string Err;
  ASSERT_TRUE(obs::parseJson(W.str(), V, Err)) << Err;
  const obs::JsonValue *S = V.find("s");
  ASSERT_TRUE(S && S->isString());
  EXPECT_EQ(S->Str, Nasty);
  const obs::JsonValue *A = V.find("arr");
  ASSERT_TRUE(A && A->isArray());
  ASSERT_EQ(A->Arr.size(), 4u);
  EXPECT_EQ(A->Arr[0].Num, -3);
  EXPECT_EQ(A->Arr[1].Num, 2.5);
  EXPECT_TRUE(A->Arr[2].B);
  EXPECT_EQ(A->Arr[3].K, obs::JsonValue::Kind::Null);
}

TEST(Json, NonFiniteDoublesClampToNull) {
  // Stats and report documents route every double through value(double);
  // a nan/inf reaching the wire would make the whole document unparsable
  // (JSON has no non-finite literals). The writer is the chokepoint:
  // non-finite values emit null, and the result stays parseable.
  obs::JsonWriter W;
  W.beginObject();
  W.kv("nan", std::nan(""));
  W.kv("pinf", std::numeric_limits<double>::infinity());
  W.kv("ninf", -std::numeric_limits<double>::infinity());
  W.kv("fine", 1.5);
  W.key("arr").beginArray();
  W.value(std::nan("")).value(2.0).endArray();
  W.endObject();
  obs::JsonValue V;
  std::string Err;
  ASSERT_TRUE(obs::parseJson(W.str(), V, Err)) << Err << ": " << W.str();
  EXPECT_EQ(V.find("nan")->K, obs::JsonValue::Kind::Null);
  EXPECT_EQ(V.find("pinf")->K, obs::JsonValue::Kind::Null);
  EXPECT_EQ(V.find("ninf")->K, obs::JsonValue::Kind::Null);
  EXPECT_EQ(V.find("fine")->Num, 1.5);
  ASSERT_EQ(V.find("arr")->Arr.size(), 2u);
  EXPECT_EQ(V.find("arr")->Arr[0].K, obs::JsonValue::Kind::Null);
  EXPECT_EQ(V.find("arr")->Arr[1].Num, 2.0);
}

TEST(Json, ParserRejectsNonFiniteLiterals) {
  // The parser side of the same contract: inputs carrying non-finite
  // literals (which some writers emit) are clean errors, not doubles.
  obs::JsonValue V;
  std::string Err;
  EXPECT_FALSE(obs::parseJson("{\"a\": NaN}", V, Err));
  EXPECT_FALSE(obs::parseJson("{\"a\": Infinity}", V, Err));
  EXPECT_FALSE(obs::parseJson("{\"a\": -Infinity}", V, Err));
  EXPECT_FALSE(obs::parseJson("{\"a\": inf}", V, Err));
}

TEST(Json, EveryControlCharRoundTrips) {
  // Request ids and trace ids are caller-chosen strings that go over the
  // wire inside JSON; every control byte must survive write -> parse.
  std::string All;
  for (char C = 1; C != 0x20; ++C)
    All += C;
  obs::JsonWriter W;
  W.beginObject().kv("id", All).endObject();
  // Control chars must be escaped on the wire, never emitted raw.
  for (char C : W.str())
    EXPECT_GE(static_cast<unsigned char>(C), 0x20u);
  obs::JsonValue V;
  std::string Err;
  ASSERT_TRUE(obs::parseJson(W.str(), V, Err)) << Err;
  EXPECT_EQ(V.find("id")->Str, All);
}

TEST(Json, NonAsciiPassesThroughUnharmed) {
  // UTF-8 multi-byte sequences are not escaped and not mangled.
  const std::string Utf8 = "tracé-идент-標識-🛰";
  obs::JsonWriter W;
  W.beginObject().kv("trace_id", Utf8).endObject();
  EXPECT_NE(W.str().find(Utf8), std::string::npos);
  obs::JsonValue V;
  std::string Err;
  ASSERT_TRUE(obs::parseJson(W.str(), V, Err)) << Err;
  EXPECT_EQ(V.find("trace_id")->Str, Utf8);
}

TEST(Json, ReusedValueDoesNotAccumulate) {
  // Parsing into a JsonValue that already holds a document must replace
  // it, not append to it (objects keep first-match find semantics).
  obs::JsonValue V;
  std::string Err;
  ASSERT_TRUE(obs::parseJson("{\"a\": [1, 2, 3], \"b\": 1}", V, Err));
  ASSERT_TRUE(obs::parseJson("{\"a\": [7]}", V, Err));
  ASSERT_EQ(V.Obj.size(), 1u);
  ASSERT_EQ(V.find("a")->Arr.size(), 1u);
  EXPECT_EQ(V.find("a")->Arr[0].Num, 7);
  EXPECT_EQ(V.find("b"), nullptr);
}

TEST(Json, RawEmbedsVerbatim) {
  obs::JsonWriter Inner;
  Inner.beginObject().kv("x", 1).endObject();
  obs::JsonWriter W;
  W.beginArray().raw(Inner.str()).raw(Inner.str()).endArray();
  obs::JsonValue V;
  std::string Err;
  ASSERT_TRUE(obs::parseJson(W.str(), V, Err)) << Err;
  ASSERT_EQ(V.Arr.size(), 2u);
  EXPECT_EQ(V.Arr[1].find("x")->Num, 1);
}

TEST(Json, ParserRejectsGarbage) {
  obs::JsonValue V;
  std::string Err;
  EXPECT_FALSE(obs::parseJson("{\"a\":}", V, Err));
  EXPECT_FALSE(obs::parseJson("[1,2", V, Err));
  EXPECT_FALSE(obs::parseJson("{} trailing", V, Err));
  EXPECT_TRUE(obs::parseJson("  {\"a\": [1, 2]}  ", V, Err)) << Err;
}

TEST(Json, DepthLimitIsEnforced) {
  // Untrusted-input entry point: nesting beyond MaxDepth is a clean
  // Status error, never unbounded recursion.
  auto Nested = [](size_t Depth) {
    return std::string(Depth, '[') + std::string(Depth, ']');
  };
  obs::JsonValue V;
  obs::JsonParseLimits L;
  L.MaxDepth = 8;
  EXPECT_TRUE(obs::parseJsonLimited(Nested(8), V, L).isOk());
  Status St = obs::parseJsonLimited(Nested(9), V, L);
  EXPECT_FALSE(St.isOk());
  EXPECT_NE(St.message().find("depth"), std::string::npos) << St.str();

  // Objects count like arrays.
  std::string DeepObj;
  for (unsigned I = 0; I != 9; ++I)
    DeepObj += "{\"k\":";
  DeepObj += "1";
  DeepObj += std::string(9, '}');
  EXPECT_FALSE(obs::parseJsonLimited(DeepObj, V, L).isOk());

  // The trusted-input parser stays usable for deep-but-sane documents
  // and still refuses stack-breaking depths (256 levels).
  std::string Err;
  EXPECT_TRUE(obs::parseJson(Nested(200), V, Err)) << Err;
  EXPECT_FALSE(obs::parseJson(Nested(300), V, Err));
}

TEST(Json, ByteLimitIsEnforced) {
  obs::JsonValue V;
  obs::JsonParseLimits L;
  L.MaxBytes = 32;
  std::string Big = "\"" + std::string(64, 'x') + "\"";
  Status St = obs::parseJsonLimited(Big, V, L);
  EXPECT_FALSE(St.isOk());
  EXPECT_NE(St.message().find("exceeds"), std::string::npos) << St.str();
  L.MaxBytes = 0; // 0 = unlimited
  EXPECT_TRUE(obs::parseJsonLimited(Big, V, L).isOk());
  L.MaxBytes = Big.size();
  EXPECT_TRUE(obs::parseJsonLimited(Big, V, L).isOk()) << "cap is inclusive";
}

TEST(Json, MalformedInputNeverCrashes) {
  // Fuzz-style corpus: truncations, bad escapes, wrong literals, stray
  // bytes. Every case must come back as a clean error (or a clean parse),
  // never a crash or an assert.
  const char *Cases[] = {
      "",        "   ",          "nul",        "tru",     "falsy",
      "\"",      "\"\\",         "\"\\u12\"",  "\"\\q\"", "\"\x01\"",
      "-",       "1e",           "0x10",       "--3",     "+5",
      "{",       "{\"a\"",       "{\"a\":1,}", "{,}",     "{\"a\" 1}",
      "[",       "[1 2]",        "[,]",        "]",       "}",
      "{\"a\":1}{\"b\":2}",      "[1,2,]",     "\xff\xfe\x00",
  };
  obs::JsonValue V;
  for (const char *C : Cases) {
    (void)obs::parseJsonLimited(C, V);
    std::string Err;
    (void)obs::parseJson(C, V, Err);
  }

  // Deterministic random byte soup, biased toward JSON punctuation so
  // some documents get deep into the parser before failing.
  RNG Rng(42);
  const char Alphabet[] = "{}[]\",:truefalsnu0123456789.-+eE \\/x";
  for (unsigned Doc = 0; Doc != 500; ++Doc) {
    std::string S;
    unsigned Len = 1 + unsigned(Rng.below(64));
    for (unsigned I = 0; I != Len; ++I)
      S += Alphabet[Rng.below(sizeof(Alphabet) - 1)];
    (void)obs::parseJsonLimited(S, V);
  }
  SUCCEED() << "no crash across the corpus";
}

//===----------------------------------------------------------------------===//
// Span tracer
//===----------------------------------------------------------------------===//

TEST(Tracer, SpansNestAndEmitWellFormedJson) {
  obs::startTrace("obs_test_trace.json");
  {
    URSA_SPAN(Outer, "test.outer", "test");
    {
      URSA_SPAN(Inner, "test.inner", "test");
    }
  }
  std::string Doc = obs::traceJson();
  ASSERT_TRUE(obs::endTrace());
  std::remove("obs_test_trace.json");

  obs::JsonValue V;
  std::string Err;
  ASSERT_TRUE(obs::parseJson(Doc, V, Err)) << Err;
  const obs::JsonValue *Evs = V.find("traceEvents");
  ASSERT_TRUE(Evs && Evs->isArray());
  ASSERT_GE(Evs->Arr.size(), 2u);

  const obs::JsonValue *Outer = nullptr, *Inner = nullptr;
  for (const obs::JsonValue &E : Evs->Arr) {
    for (const char *K : {"name", "cat", "ph", "ts", "dur", "pid", "tid"})
      EXPECT_TRUE(E.find(K)) << "missing trace-event key " << K;
    EXPECT_EQ(E.find("ph")->Str, "X");
    if (E.find("name")->Str == "test.outer")
      Outer = &E;
    if (E.find("name")->Str == "test.inner")
      Inner = &E;
  }
  ASSERT_TRUE(Outer && Inner);
  // Inner is contained within outer on the timeline.
  EXPECT_GE(Inner->find("ts")->Num, Outer->find("ts")->Num);
  EXPECT_LE(Inner->find("ts")->Num + Inner->find("dur")->Num,
            Outer->find("ts")->Num + Outer->find("dur")->Num);
}

TEST(Tracer, DisabledSpansRecordNothing) {
  ASSERT_FALSE(obs::traceEnabled());
  { URSA_SPAN(S, "test.ignored", "test"); }
  obs::startTrace("obs_test_trace2.json");
  std::string Doc = obs::traceJson();
  ASSERT_TRUE(obs::endTrace());
  std::remove("obs_test_trace2.json");
  obs::JsonValue V;
  std::string Err;
  ASSERT_TRUE(obs::parseJson(Doc, V, Err)) << Err;
  for (const obs::JsonValue &E : V.find("traceEvents")->Arr)
    EXPECT_NE(E.find("name")->Str, "test.ignored");
}

TEST(Tracer, PipelineRunProducesPhaseSpans) {
  obs::startTrace("obs_test_trace3.json");
  MachineModel M = MachineModel::homogeneous(2, 3);
  runURSA(buildDAG(figure2Trace()), M);
  std::string Doc = obs::traceJson();
  ASSERT_TRUE(obs::endTrace());
  std::remove("obs_test_trace3.json");
  obs::JsonValue V;
  std::string Err;
  ASSERT_TRUE(obs::parseJson(Doc, V, Err)) << Err;
  std::vector<std::string> Names;
  for (const obs::JsonValue &E : V.find("traceEvents")->Arr)
    Names.push_back(E.find("name")->Str);
  auto Has = [&](const char *N) {
    return std::find(Names.begin(), Names.end(), N) != Names.end();
  };
  EXPECT_TRUE(Has("ursa.allocate"));
  EXPECT_TRUE(Has("ursa.measure"));
}

//===----------------------------------------------------------------------===//
// JSON allocation report
//===----------------------------------------------------------------------===//

TEST(ReportJson, SchemaIsStableAndTelemetryMatches) {
  obs::setStatsEnabled(true);
  MachineModel M = MachineModel::homogeneous(2, 3);
  DependenceDAG D0 = buildDAG(figure2Trace());
  URSAResult R = runURSA(D0, M);
  std::string Doc = formatAllocationReportJSON(D0, R, M);

  obs::JsonValue V;
  std::string Err;
  ASSERT_TRUE(obs::parseJson(Doc, V, Err)) << Err;
  for (const char *K : {"schema", "machine", "requirements", "critical_path",
                        "accounting", "stop_reasons", "round_log", "diags",
                        "stats"})
    EXPECT_TRUE(V.find(K)) << "missing report key " << K;
  EXPECT_EQ(V.find("schema")->Str, "ursa.allocation_report.v1");

  const obs::JsonValue *Acc = V.find("accounting");
  ASSERT_TRUE(Acc && Acc->isObject());
  EXPECT_EQ(uint64_t(Acc->find("rounds")->Num), R.Rounds);
  EXPECT_EQ(Acc->find("within_limits")->B, R.WithinLimits);

  const obs::JsonValue *RL = V.find("round_log");
  ASSERT_TRUE(RL && RL->isArray());
  ASSERT_EQ(RL->Arr.size(), R.Rounds);
  for (unsigned I = 0; I != RL->Arr.size(); ++I) {
    const obs::JsonValue &E = RL->Arr[I];
    EXPECT_EQ(uint64_t(E.find("round")->Num), R.RoundLog[I].Round);
    EXPECT_EQ(uint64_t(E.find("excess_before")->Num),
              R.RoundLog[I].ExcessBefore);
    EXPECT_EQ(uint64_t(E.find("excess_after")->Num),
              R.RoundLog[I].ExcessAfter);
  }

  // Requirements: before >= after for every resource on a converged run.
  for (const obs::JsonValue &Req : V.find("requirements")->Arr)
    EXPECT_GE(Req.find("before")->Num, Req.find("after")->Num);

  // The embedded stats snapshot is the non-zero form.
  for (const auto &[Name, SV] : V.find("stats")->Obj)
    EXPECT_GT(SV.Num, 0) << Name;
}

TEST(ReportJson, StopReasonsSurfaceInBothFormats) {
  MachineModel M = MachineModel::homogeneous(2, 3);
  URSAOptions UO;
  UO.MaxRounds = 1;
  DependenceDAG D0 = buildDAG(figure2Trace());
  URSAResult R = runURSA(D0, M, UO);
  ASSERT_FALSE(R.StopReasons.empty());

  std::string Doc = formatAllocationReportJSON(D0, R, M);
  obs::JsonValue V;
  std::string Err;
  ASSERT_TRUE(obs::parseJson(Doc, V, Err)) << Err;
  const obs::JsonValue *SR = V.find("stop_reasons");
  ASSERT_TRUE(SR && SR->isArray());
  ASSERT_EQ(SR->Arr.size(), R.StopReasons.size());
  EXPECT_EQ(SR->Arr[0].Str, "max_rounds");

  std::string Text = formatAllocationReport(D0, R, M);
  EXPECT_NE(Text.find("max_rounds"), std::string::npos);
}
