//===- tests/chainassign_test.cpp - Schedule-independent assignment -------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "graph/DAGBuilder.h"
#include "ir/Interpreter.h"
#include "ir/Parser.h"
#include "order/Chains.h"
#include "sched/Pipelines.h"
#include "ursa/ChainAssign.h"
#include "ursa/KillSelection.h"
#include "ursa/ReuseDAG.h"
#include "vliw/Simulator.h"
#include "workload/Generators.h"
#include "workload/Kernels.h"

#include <gtest/gtest.h>

using namespace ursa;

TEST(SafeReuse, IsSubrelationOfMeasuredReuse) {
  // Guaranteed reuse implies reuse under the worst-case kill choice.
  GenOptions Opts;
  Opts.NumInstrs = 25;
  for (uint64_t Seed = 1; Seed != 12; ++Seed) {
    Opts.Seed = Seed * 19;
    DependenceDAG D = buildDAG(generateTrace(Opts));
    DAGAnalysis A(D);
    ReuseRelation Safe = buildSafeRegReuse(D, A);
    ReuseRelation Meas = buildRegReuse(D, A, selectKillsGreedy(D, A));
    for (unsigned N : Safe.Active) {
      Bitset Extra = Safe.Rel.row(N);
      Extra.subtract(Meas.Rel.row(N));
      // Safe pairs the measurement misses can only come from a kill
      // choice that was *not* the one guaranteeing reuse — i.e. values
      // with several maximal uses. The widths still satisfy:
      (void)Extra;
    }
    unsigned SafeWidth = decomposeChains(Safe.Rel, Safe.Active).width();
    unsigned MeasWidth = decomposeChains(Meas.Rel, Meas.Active).width();
    EXPECT_GE(SafeWidth, MeasWidth) << "seed " << Seed;
  }
}

TEST(SafeReuse, SingleUseValuesBehaveLikeMeasured) {
  // Every value here has exactly one use, so safe == measured.
  Trace T = parseTraceOrDie("a = load x\n"
                            "b = neg a\n"
                            "c = not b\n"
                            "store out, c\n");
  DependenceDAG D = buildDAG(T);
  DAGAnalysis A(D);
  ReuseRelation Safe = buildSafeRegReuse(D, A);
  ReuseRelation Meas = buildRegReuse(D, A, selectKillsGreedy(D, A));
  for (unsigned N : Safe.Active)
    EXPECT_TRUE(Safe.Rel.row(N) == Meas.Rel.row(N));
}

TEST(SafeReuse, MultiUseValueNeedsCommonDescendant) {
  // v feeds two incomparable uses; only their join may safely reuse it.
  Trace T = parseTraceOrDie("v = load x\n"  // n2
                            "a = neg v\n"   // n3: maximal use
                            "b = not v\n"   // n4: maximal use
                            "c = add a, b\n" // n5: common descendant
                            "store out, c\n");
  DependenceDAG D = buildDAG(T);
  DAGAnalysis A(D);
  ReuseRelation Safe = buildSafeRegReuse(D, A);
  unsigned V = DependenceDAG::nodeOf(0);
  EXPECT_FALSE(Safe.Rel.test(V, DependenceDAG::nodeOf(1)));
  EXPECT_FALSE(Safe.Rel.test(V, DependenceDAG::nodeOf(2)));
  EXPECT_TRUE(Safe.Rel.test(V, DependenceDAG::nodeOf(3)));
}

TEST(ChainAssign, Figure2FitsAmpleFile) {
  DependenceDAG D = buildDAG(figure2Trace());
  DAGAnalysis A(D);
  unsigned Width = guaranteedRegWidth(D, A);
  EXPECT_GE(Width, 5u) << "at least the measured requirement";
  RegAssignment RA =
      assignRegistersByChains(D, A, MachineModel::homogeneous(4, Width));
  EXPECT_TRUE(RA.Ok);
  RegAssignment Tight = assignRegistersByChains(
      D, A, MachineModel::homogeneous(4, Width - 1));
  EXPECT_FALSE(Tight.Ok);
}

TEST(ChainAssign, ValidForEveryScheduleTried) {
  // The point of chain assignment: one register mapping, many schedules,
  // all correct. Perturb the scheduler with issue biases and check each
  // emitted program differentially.
  GenOptions Opts;
  Opts.NumInstrs = 22;
  Opts.MemOpProb = 0.1;
  RNG InputRng(5);
  unsigned Programs = 0;
  for (uint64_t Seed = 1; Seed != 9; ++Seed) {
    Opts.Seed = Seed * 23;
    Trace T = generateTrace(Opts);
    DependenceDAG D = buildDAG(T);
    DAGAnalysis A(D);
    unsigned Width = guaranteedRegWidth(D, A);
    MachineModel M = MachineModel::homogeneous(3, Width);
    RegAssignment RA = assignRegistersByChains(D, A, M);
    ASSERT_TRUE(RA.Ok) << "seed " << Seed;
    MemoryState In = randomInputs(T, InputRng);
    ExecResult Want = interpret(T, In);

    for (unsigned Variant = 0; Variant != 3; ++Variant) {
      SchedulerOptions SO;
      if (Variant == 1) {
        // Reverse-ish order: bias by descending trace index.
        SO.IssueBias.resize(T.size());
        for (unsigned I = 0; I != T.size(); ++I)
          SO.IssueBias[I] = int(T.size() - I);
      } else if (Variant == 2) {
        SO.IssueBias.assign(T.size(), 0); // pure height priority ties
      }
      Schedule S = listSchedule(D, M, SO);
      VLIWProgram P = emitSchedule(D, S, RA, M);
      ASSERT_TRUE(P.validate().empty());
      SimResult Got = simulate(P, In);
      ASSERT_TRUE(Got.Ok) << "seed " << Seed << " variant " << Variant
                          << ": " << Got.Error;
      EXPECT_TRUE(Got.Exec == Want)
          << "seed " << Seed << " variant " << Variant;
      ++Programs;
    }
  }
  EXPECT_GE(Programs, 20u);
}

TEST(ChainAssign, ClassedMachineSplitsFiles) {
  Trace T = mixedClassTrace(2);
  DependenceDAG D = buildDAG(T);
  DAGAnalysis A(D);
  MachineModel M = MachineModel::classed(2, 2, 2, 16, 16);
  RegAssignment RA = assignRegistersByChains(D, A, M);
  ASSERT_TRUE(RA.Ok);
  // Every defined vreg got a register within its class's file.
  for (unsigned Idx = 0; Idx != T.size(); ++Idx) {
    int V = T.instr(Idx).dest();
    if (V < 0)
      continue;
    ASSERT_GE(RA.PhysOf[V], 0);
    EXPECT_LT(unsigned(RA.PhysOf[V]), M.numRegs(T.vregClass(V)));
  }
}
