//===- tests/semantics_test.cpp - Per-opcode semantics ---------------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One check per opcode of the IR's total semantics (README "Semantics
/// notes"), exercised through the interpreter and cross-checked against
/// the VLIW simulator via a 1-wide compilation so evalOperation is hit on
/// both paths.
///
//===----------------------------------------------------------------------===//

#include "ir/Interpreter.h"
#include "ir/Parser.h"
#include "sched/Pipelines.h"
#include "vliw/Simulator.h"

#include <gtest/gtest.h>

using namespace ursa;

namespace {

/// Runs the source through the interpreter and a 1fu/4r compilation; the
/// two must agree; returns the interpreter's "out".
Value runBoth(const std::string &Src, const MemoryState &In = {}) {
  Trace T = parseTraceOrDie(Src);
  ExecResult Want = interpret(T, In);
  CompileResult R = compilePrepass(T, MachineModel::homogeneous(1, 4));
  EXPECT_TRUE(R.Ok) << R.Error;
  if (R.Ok) {
    SimResult Got = simulate(*R.Prog, In);
    EXPECT_TRUE(Got.Ok) << Got.Error;
    EXPECT_TRUE(Got.Exec == Want);
  }
  return Want.Memory.at("out");
}

} // namespace

TEST(Semantics, IntegerBinaryOps) {
  EXPECT_EQ(runBoth("a = ldi 7\nb = ldi 3\nc = add a, b\nstore out, c\n").I,
            10);
  EXPECT_EQ(runBoth("a = ldi 7\nb = ldi 3\nc = sub a, b\nstore out, c\n").I,
            4);
  EXPECT_EQ(runBoth("a = ldi -7\nb = ldi 3\nc = mul a, b\nstore out, c\n").I,
            -21);
  EXPECT_EQ(runBoth("a = ldi 7\nb = ldi 3\nc = div a, b\nstore out, c\n").I,
            2);
  EXPECT_EQ(runBoth("a = ldi 7\nb = ldi 3\nc = rem a, b\nstore out, c\n").I,
            1);
  EXPECT_EQ(runBoth("a = ldi 12\nb = ldi 10\nc = and a, b\nstore out, c\n").I,
            8);
  EXPECT_EQ(runBoth("a = ldi 12\nb = ldi 10\nc = or a, b\nstore out, c\n").I,
            14);
  EXPECT_EQ(runBoth("a = ldi 12\nb = ldi 10\nc = xor a, b\nstore out, c\n").I,
            6);
  EXPECT_EQ(runBoth("a = ldi 3\nb = ldi 2\nc = shl a, b\nstore out, c\n").I,
            12);
  EXPECT_EQ(runBoth("a = ldi -8\nb = ldi 1\nc = shr a, b\nstore out, c\n").I,
            -4)
      << "arithmetic shift";
  EXPECT_EQ(runBoth("a = ldi 7\nb = ldi 3\nc = min a, b\nstore out, c\n").I,
            3);
  EXPECT_EQ(runBoth("a = ldi 7\nb = ldi 3\nc = max a, b\nstore out, c\n").I,
            7);
}

TEST(Semantics, IntegerUnaryOps) {
  EXPECT_EQ(runBoth("a = ldi 5\nc = neg a\nstore out, c\n").I, -5);
  EXPECT_EQ(runBoth("a = ldi 5\nc = not a\nstore out, c\n").I, ~int64_t(5));
  EXPECT_EQ(runBoth("a = ldi 5\nc = mov a\nstore out, c\n").I, 5);
}

TEST(Semantics, ComparesAndSelect) {
  EXPECT_EQ(runBoth("a = ldi 5\nb = ldi 5\nc = cmpeq a, b\nstore out, c\n").I,
            1);
  EXPECT_EQ(runBoth("a = ldi 5\nb = ldi 6\nc = cmpeq a, b\nstore out, c\n").I,
            0);
  EXPECT_EQ(runBoth("a = ldi 5\nb = ldi 6\nc = cmplt a, b\nstore out, c\n").I,
            1);
  EXPECT_EQ(
      runBoth("c = ldi 1\na = ldi 10\nb = ldi 20\ns = sel c, a, b\n"
              "store out, s\n")
          .I,
      10);
  EXPECT_EQ(
      runBoth("c = ldi 0\na = ldi 10\nb = ldi 20\ns = sel c, a, b\n"
              "store out, s\n")
          .I,
      20);
}

TEST(Semantics, TotalityEdges) {
  EXPECT_EQ(runBoth("a = ldi 5\nz = ldi 0\nc = div a, z\nstore out, c\n").I,
            0);
  EXPECT_EQ(runBoth("a = ldi 5\nz = ldi 0\nc = rem a, z\nstore out, c\n").I,
            0);
  // INT64_MIN / -1 would trap natively; defined as 0 here.
  EXPECT_EQ(runBoth("a = ldi -9223372036854775808\nm = ldi -1\n"
                    "c = div a, m\nstore out, c\n")
                .I,
            0);
  // Shift amounts wrap at 64.
  EXPECT_EQ(runBoth("a = ldi 1\nk = ldi 64\nc = shl a, k\nstore out, c\n").I,
            1);
}

TEST(Semantics, FloatOpsAndConversions) {
  Trace T = parseTraceOrDie("a = fldi 1.5\n"
                            "b = fldi 2.5\n"
                            "s = fadd a, b\n"
                            "d = fsub s, a\n"
                            "m = fmul d, b\n"
                            "q = fdiv m, b\n"
                            "n = fneg q\n"
                            "c = fmov n\n"
                            "i = cvtfi c\n"
                            "store out, i\n");
  ExecResult R = interpret(T);
  EXPECT_EQ(R.Memory["out"].I, -2); // -(2.5) truncated toward zero
}

TEST(Semantics, CvtIFRoundTrip) {
  EXPECT_EQ(runBoth("a = ldi 41\nf = cvtif a\n"
                    "g = fldi 1.0\nh = fadd f, g\n"
                    "c = cvtfi h\nstore out, c\n")
                .I,
            42);
}

TEST(Semantics, CvtFITotality) {
  Trace T = parseTraceOrDie("big = fldi 1e300\n"
                            "i = cvtfi big\n"
                            "store out, i\n");
  EXPECT_EQ(interpret(T).Memory["out"].I, 0) << "out of range -> 0";
}

TEST(Semantics, UninitializedLoadsAreZero) {
  EXPECT_EQ(runBoth("a = load nowhere\nstore out, a\n").I, 0);
}
