//===- tests/verifier_test.cpp - Pipeline verifier unit tests -------------===//
//
// Part of the URSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The phase-boundary verifier must accept everything the real pipeline
// produces and reject every fault class the FaultInjector can plant
// (cycle, dangling edge, broken chains, over-capacity cycles, live-range
// conflicts, semantic divergence). Status/StatusOr plumbing and the
// fallible parser entry points ride along.
//
//===----------------------------------------------------------------------===//

#include "cfg/CFGParser.h"
#include "graph/DAGBuilder.h"
#include "ir/Parser.h"
#include "sched/ListScheduler.h"
#include "sched/RegAssign.h"
#include "ursa/Compiler.h"
#include "ursa/FaultInjector.h"
#include "ursa/PipelineVerifier.h"
#include "workload/Generators.h"
#include "workload/Kernels.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace ursa;

namespace {

bool mentions(const Status &St, const std::string &Needle) {
  return St.str().find(Needle) != std::string::npos;
}

} // namespace

//===----------------------------------------------------------------------===//
// Status / StatusOr plumbing
//===----------------------------------------------------------------------===//

TEST(Status, OkAndError) {
  Status Ok = Status::ok();
  EXPECT_TRUE(Ok.isOk());
  EXPECT_EQ(Ok.message(), "ok");

  Status E = Status::error("parse", "boom");
  EXPECT_FALSE(E.isOk());
  EXPECT_EQ(E.message(), "boom");
  EXPECT_NE(E.str().find("error [parse]: boom"), std::string::npos);
}

TEST(Status, WarningsDoNotFail) {
  Status S;
  S.add({Severity::Warning, "allocate", "heads up"});
  S.add({Severity::Note, "allocate", "fyi"});
  EXPECT_TRUE(S.isOk());
  EXPECT_EQ(S.diags().size(), 2u);

  Status E = Status::error("x", "y");
  S.merge(E);
  EXPECT_FALSE(S.isOk());
  EXPECT_EQ(S.diags().size(), 3u);
}

TEST(Status, StatusOrCarriesValueOrStatus) {
  StatusOr<int> Good(42);
  ASSERT_TRUE(Good.isOk());
  EXPECT_EQ(*Good, 42);

  StatusOr<int> Bad(Status::error("p", "no"));
  ASSERT_FALSE(Bad.isOk());
  EXPECT_EQ(Bad.status().message(), "no");
}

TEST(Verifier, ParseVerifyLevel) {
  EXPECT_EQ(parseVerifyLevel(nullptr), VerifyLevel::None);
  EXPECT_EQ(parseVerifyLevel("off"), VerifyLevel::None);
  EXPECT_EQ(parseVerifyLevel("basic"), VerifyLevel::Basic);
  EXPECT_EQ(parseVerifyLevel("1"), VerifyLevel::Basic);
  EXPECT_EQ(parseVerifyLevel("full"), VerifyLevel::Full);
  EXPECT_EQ(parseVerifyLevel("2"), VerifyLevel::Full);
  EXPECT_EQ(parseVerifyLevel("garbage"), VerifyLevel::None);
}

//===----------------------------------------------------------------------===//
// Fallible parser entry points
//===----------------------------------------------------------------------===//

TEST(ParserStatus, GoodTrace) {
  StatusOr<Trace> R = parseTraceStatus("x = load a\nstore b, x\n", "t");
  ASSERT_TRUE(R.isOk());
  EXPECT_EQ(R->size(), 2u);
}

TEST(ParserStatus, BadTraceReturnsDiagnosticNotAbort) {
  StatusOr<Trace> R = parseTraceStatus("x = frobnicate a\n", "t");
  ASSERT_FALSE(R.isOk());
  EXPECT_NE(R.status().message().find("line 1"), std::string::npos);
}

TEST(ParserStatus, BadCFGReturnsDiagnosticNotAbort) {
  StatusOr<CFGFunction> R = parseCFGStatus("func f {\nblock a:\n  jmp b\n}\n");
  ASSERT_FALSE(R.isOk());
  EXPECT_FALSE(R.status().message().empty());
}

TEST(ParserStatus, GoodCFG) {
  StatusOr<CFGFunction> R =
      parseCFGStatus("func f {\nblock entry:\n  ret\n}\n");
  EXPECT_TRUE(R.isOk());
}

//===----------------------------------------------------------------------===//
// DAG structure
//===----------------------------------------------------------------------===//

TEST(Verifier, CleanPipelineStatesPass) {
  MachineModel M = MachineModel::homogeneous(4, 8);
  for (auto &[Name, T] : kernelSuite()) {
    DependenceDAG D = buildDAG(T);
    EXPECT_TRUE(verifyDAGStructure(D).isOk()) << Name;

    DAGAnalysis A(D);
    HammockForest HF(D, A);
    std::vector<Measurement> Meas = measureAll(D, A, HF, M);
    EXPECT_TRUE(verifyMeasurements(Meas).isOk()) << Name;

    Schedule S = listSchedule(D, M);
    RegAssignment RA = assignRegisters(D, S, M);
    // Pressure-heavy kernels legitimately fail one-shot assignment (the
    // pipeline spills and retries); the verifier's contract only covers
    // successful assignments.
    if (RA.Ok)
      EXPECT_TRUE(verifyAssignment(D, S, RA, M).isOk()) << Name;
  }
}

TEST(Verifier, CatchesInjectedCycle) {
  DependenceDAG D = buildDAG(figure2Trace());
  RNG Rng(7);
  ASSERT_TRUE(FaultInjector::injectCycle(D, Rng));
  Status St = verifyDAGStructure(D);
  ASSERT_FALSE(St.isOk());
  EXPECT_TRUE(mentions(St, "cycle")) << St.str();
}

TEST(Verifier, CatchesDanglingEdge) {
  DependenceDAG D = buildDAG(figure2Trace());
  RNG Rng(7);
  ASSERT_TRUE(FaultInjector::injectDanglingEdge(D, Rng));
  Status St = verifyDAGStructure(D);
  ASSERT_FALSE(St.isOk());
  EXPECT_TRUE(mentions(St, "dangling")) << St.str();
}

TEST(Verifier, CatchesMissingDefUseEdge) {
  Trace T = figure2Trace();
  DependenceDAG D = buildDAG(T);
  // Remove one def->use data edge, the way a buggy spill rewiring would.
  bool Removed = false;
  std::vector<int> DefIdx(T.numVRegs(), -1);
  for (unsigned Idx = 0; Idx != T.size() && !Removed; ++Idx)
    if (T.instr(Idx).dest() >= 0)
      DefIdx[T.instr(Idx).dest()] = int(Idx);
  for (unsigned Idx = 0; Idx != T.size() && !Removed; ++Idx) {
    const Instruction &I = T.instr(Idx);
    for (unsigned Op = 0; Op != I.numOperands() && !Removed; ++Op) {
      int Def = DefIdx[I.operand(Op)];
      if (Def < 0)
        continue;
      unsigned From = DependenceDAG::nodeOf(unsigned(Def));
      unsigned To = DependenceDAG::nodeOf(Idx);
      if (D.hasEdge(From, To))
        Removed = D.removeEdge(From, To);
    }
  }
  ASSERT_TRUE(Removed);
  Status St = verifyDAGStructure(D);
  ASSERT_FALSE(St.isOk());
  EXPECT_TRUE(mentions(St, "def->use")) << St.str();
}

//===----------------------------------------------------------------------===//
// Chain decompositions
//===----------------------------------------------------------------------===//

TEST(Verifier, CatchesWidthMismatch) {
  DependenceDAG D = buildDAG(figure2Trace());
  DAGAnalysis A(D);
  HammockForest HF(D, A);
  MachineModel M = MachineModel::homogeneous(4, 8);
  std::vector<Measurement> Meas = measureAll(D, A, HF, M);
  ASSERT_FALSE(Meas.empty());
  Meas.back().MaxRequired += 1; // lie about the requirement
  Status St = verifyMeasurements(Meas);
  ASSERT_FALSE(St.isOk());
  EXPECT_TRUE(mentions(St, "width")) << St.str();
}

TEST(Verifier, CatchesBrokenChainPartition) {
  DependenceDAG D = buildDAG(figure2Trace());
  DAGAnalysis A(D);
  HammockForest HF(D, A);
  MachineModel M = MachineModel::homogeneous(4, 8);
  std::vector<Measurement> Meas = measureAll(D, A, HF, M);
  // Swap the heads of two chains: members stop being related and/or
  // ChainOf disagrees.
  for (Measurement &Ms : Meas) {
    ChainDecomposition &CD = Ms.Chains;
    if (CD.Chains.size() >= 2 && !CD.Chains[0].empty() &&
        !CD.Chains[1].empty()) {
      std::swap(CD.Chains[0].front(), CD.Chains[1].front());
      EXPECT_FALSE(verifyMeasurement(Ms).isOk()) << Ms.Res.describe();
      return;
    }
  }
  GTEST_SKIP() << "no resource with two non-trivial chains";
}

//===----------------------------------------------------------------------===//
// Assignment phase
//===----------------------------------------------------------------------===//

TEST(Verifier, CatchesOverCapacityCycle) {
  // Three independent loads on a 2-wide machine: force the third into
  // cycle 0. No dependence is violated (moving a rootless op earlier only
  // helps its successors), so the only error is FU over-subscription.
  Trace T = parseTraceOrDie("a = ldi 1\n"
                            "b = ldi 2\n"
                            "c = ldi 3\n"
                            "store x, a\n"
                            "store y, b\n"
                            "store z, c\n");
  MachineModel M = MachineModel::homogeneous(2, 8);
  DependenceDAG D = buildDAG(T);
  Schedule S = listSchedule(D, M);
  RegAssignment RA = assignRegisters(D, S, M);
  ASSERT_TRUE(RA.Ok);
  ASSERT_TRUE(verifyAssignment(D, S, RA, M).isOk());

  int Moved = -1;
  for (unsigned Idx = 0; Idx != 3; ++Idx) {
    unsigned N = DependenceDAG::nodeOf(Idx);
    if (S.CycleOf[N] > 0) {
      unsigned From = unsigned(S.CycleOf[N]);
      auto &L = S.Cycles[From];
      L.erase(std::find(L.begin(), L.end(), N));
      S.Cycles[0].push_back(N);
      S.CycleOf[N] = 0;
      Moved = int(N);
      break;
    }
  }
  ASSERT_GE(Moved, 0) << "scheduler packed all three loads into one cycle?";
  Status St = verifyAssignment(D, S, RA, M);
  ASSERT_FALSE(St.isOk());
  EXPECT_TRUE(mentions(St, "over-subscribes")) << St.str();
}

TEST(Verifier, CatchesCorruptedSchedule) {
  DependenceDAG D = buildDAG(figure2Trace());
  MachineModel M = MachineModel::homogeneous(2, 8);
  Schedule S = listSchedule(D, M);
  RegAssignment RA = assignRegisters(D, S, M);
  ASSERT_TRUE(RA.Ok);
  ASSERT_TRUE(verifyAssignment(D, S, RA, M).isOk());
  RNG Rng(3);
  FaultInjector::corruptSchedule(S, Rng);
  EXPECT_FALSE(verifyAssignment(D, S, RA, M).isOk());
}

TEST(Verifier, CatchesLiveRangeConflict) {
  DependenceDAG D = buildDAG(figure2Trace());
  MachineModel M = MachineModel::homogeneous(4, 8);
  Schedule S = listSchedule(D, M);
  RegAssignment RA = assignRegisters(D, S, M);
  ASSERT_TRUE(RA.Ok);
  std::vector<int> Before = RA.PhysOf;
  FaultInjector::corruptAssignment(D, S, RA);
  ASSERT_NE(Before, RA.PhysOf) << "no overlapping pair to corrupt?";
  Status St = verifyAssignment(D, S, RA, M);
  ASSERT_FALSE(St.isOk());
  EXPECT_TRUE(mentions(St, "conflict")) << St.str();
}

//===----------------------------------------------------------------------===//
// Semantics and fingerprints
//===----------------------------------------------------------------------===//

TEST(Verifier, SemanticEquivalenceAcceptsHonestCompile) {
  MachineModel M = MachineModel::homogeneous(2, 4);
  for (auto &[Name, T] : kernelSuite()) {
    URSACompileResult R = compileURSA(T, M);
    ASSERT_TRUE(R.Compile.Ok) << Name;
    EXPECT_TRUE(verifySemanticEquivalence(T, *R.Compile.Prog).isOk()) << Name;
  }
}

TEST(Verifier, SemanticEquivalenceRejectsWrongProgram) {
  MachineModel M = MachineModel::homogeneous(2, 4);
  Trace Want = parseTraceOrDie("x = ldi 1\nstore out, x\n");
  Trace Other = parseTraceOrDie("x = ldi 2\nstore out, x\n");
  URSACompileResult R = compileURSA(Other, M);
  ASSERT_TRUE(R.Compile.Ok);
  Status St = verifySemanticEquivalence(Want, *R.Compile.Prog);
  ASSERT_FALSE(St.isOk());
  EXPECT_TRUE(mentions(St, "diverges")) << St.str();
}

TEST(Verifier, FingerprintTracksDAGChanges) {
  DependenceDAG D1 = buildDAG(figure2Trace());
  DependenceDAG D2 = buildDAG(figure2Trace());
  EXPECT_EQ(dagFingerprint(D1), dagFingerprint(D2));
  RNG Rng(11);
  ASSERT_TRUE(FaultInjector::injectCycle(D2, Rng));
  EXPECT_NE(dagFingerprint(D1), dagFingerprint(D2));
}
